package softbound

import (
	"strings"
	"testing"

	"softbound/internal/driver"
)

func TestPublicAPIQuickstart(t *testing.T) {
	res, err := RunSource(`
int main(void) {
    int* a = (int*)malloc(4 * sizeof(int));
    a[4] = 1;
    return 0;
}`, DefaultConfig(ModeFull))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatalf("expected violation, got %v", res.Err)
	}
}

func TestPublicAPIMultiUnit(t *testing.T) {
	res, err := Run([]Source{
		{Name: "a.c", Text: `int twice(int x) { return 2 * x; }`},
		{Name: "b.c", Text: `
int twice(int x);
int main(void) { return twice(21) == 42 ? 0 : 1; }`},
	}, DefaultConfig(ModeFull))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.ExitCode != 0 {
		t.Fatalf("exit=%d err=%v", res.ExitCode, res.Err)
	}
}

// TestCheckAtArithFalsePositive is the correctness half of the
// check-placement ablation (design decision 3): checking at pointer
// arithmetic time rejects the legal downward-iteration idiom, which is
// why SoftBound checks at dereference time only.
func TestCheckAtArithFalsePositive(t *testing.T) {
	src := `
int main(void) {
    int a[8];
    int* p;
    int n = 0;
    for (p = a + 7; p >= a; p--)   /* final p is a-1: legal, never deref'd */
        n++;
    return n == 8 ? 0 : 1;
}`
	// Dereference-time checking (SoftBound): clean run.
	cfg := DefaultConfig(ModeFull)
	res, err := RunSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("softbound flagged legal code: %v", res.Err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d", res.ExitCode)
	}

	// Arithmetic-time checking: false positive on p--.
	cfg.CheckArith = true
	res, err = RunSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("arithmetic-time checking should reject the a-1 pointer")
	}
}

// TestModesAreOrderedByStrictness pins the semantic ordering the paper
// relies on: everything store-only detects, full detects too.
func TestModesAreOrderedByStrictness(t *testing.T) {
	cases := []string{
		// write overflow
		`int main(void){ int* a=(int*)malloc(8); a[2]=1; return 0; }`,
		// strcpy overflow through instrumented libc
		`int main(void){ char* d=(char*)malloc(4); strcpy(d, "too long"); return 0; }`,
	}
	for i, src := range cases {
		st, err := RunSource(src, DefaultConfig(ModeStoreOnly))
		if err != nil {
			t.Fatal(err)
		}
		fl, err := RunSource(src, DefaultConfig(ModeFull))
		if err != nil {
			t.Fatal(err)
		}
		if st.Violation != nil && fl.Violation == nil {
			t.Errorf("case %d: store-only detected but full did not", i)
		}
		if st.Violation == nil {
			t.Errorf("case %d: store-only missed a write overflow", i)
		}
	}
}

func TestMetaKindsBehaveIdentically(t *testing.T) {
	src := `
typedef struct n { struct n* next; int v; } n;
int main(void) {
    n* head = (n*)0;
    int i;
    int sum = 0;
    for (i = 0; i < 50; i++) {
        n* x = (n*)malloc(sizeof(n));
        x->v = i;
        x->next = head;
        head = x;
    }
    while (head) { sum += head->v; head = head->next; }
    printf("%d\n", sum);
    return 0;
}`
	var out []string
	for _, mk := range []MetaKind{MetaHashTable, MetaShadowSpace} {
		cfg := DefaultConfig(ModeFull)
		cfg.Meta = mk
		res, err := RunSource(src, cfg)
		if err != nil || res.Err != nil {
			t.Fatalf("meta %v: %v %v", mk, err, res.Err)
		}
		out = append(out, res.Output)
	}
	if out[0] != out[1] {
		t.Fatalf("facilities disagree: %q vs %q", out[0], out[1])
	}
	if !strings.Contains(out[0], "1225") {
		t.Fatalf("wrong sum: %q", out[0])
	}
}

// TestDriverAliasTypes pins that the public aliases refer to the driver
// types (compile-time check, plus a sanity assertion).
func TestDriverAliasTypes(t *testing.T) {
	var c Config = driver.DefaultConfig(driver.ModeFull)
	if c.Mode != ModeFull {
		t.Fatal("alias mismatch")
	}
}
