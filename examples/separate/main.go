// Separate demonstrates the paper's separate-compilation story (§3.3,
// §5.2): a library unit and a main unit are each instrumented in
// isolation — no whole-program analysis — and linked. Pointer bounds
// created in one unit flow through the extended calling convention into
// the other, where an overflow is caught inside the library function.
package main

import (
	"fmt"
	"log"

	"softbound"
)

// A string "library" compiled on its own.
const libUnit = `
/* stringlib.c */
int count_until(char* s, char stop) {
    int n = 0;
    while (s[n] != stop)   /* walks until stop — or past the end */
        n++;
    return n;
}
char* duplicate(char* s, int n) {
    char* d = (char*)malloc(n + 1);
    int i;
    for (i = 0; i < n; i++)
        d[i] = s[i];
    d[n] = 0;
    return d;
}`

// The application, compiled separately against the declarations only.
const mainUnit = `
/* app.c */
int count_until(char* s, char stop);
char* duplicate(char* s, int n);

int main(void) {
    char word[6];
    char* copy;
    word[0] = 'h'; word[1] = 'e'; word[2] = 'l';
    word[3] = 'l'; word[4] = 'o'; word[5] = 0;
    copy = duplicate(word, 5);
    printf("dup: %s\n", copy);
    /* The bug: there is no 'x' in the buffer, so the library walks off
       the end of word[] — in a different translation unit than where
       the buffer (and its bounds) were created. */
    return count_until(word, 'x');
}`

func main() {
	sources := []softbound.Source{
		{Name: "stringlib.c", Text: libUnit},
		{Name: "app.c", Text: mainUnit},
	}
	res, err := softbound.Run(sources, softbound.DefaultConfig(softbound.ModeFull))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %s", res.Output)
	if res.Violation == nil {
		log.Fatal("expected the cross-unit overflow to be detected")
	}
	fmt.Printf("caught in the separately compiled library: %v\n", res.Violation)
}
