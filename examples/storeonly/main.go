// Storeonly contrasts the two checking modes on the Olden treeadd
// workload (paper §6.3): store-only checking propagates all metadata but
// checks only writes, trading read-overflow detection for substantially
// lower overhead — while still stopping every attack in the testbed.
package main

import (
	"fmt"
	"log"

	"softbound"
	"softbound/internal/progs"
)

func main() {
	b, _ := progs.Get("treeadd")
	src := b.Source(12)

	base, err := softbound.RunSource(src, softbound.DefaultConfig(softbound.ModeNone))
	if err != nil || base.Err != nil {
		log.Fatalf("baseline: %v %v", err, base.Err)
	}
	fmt.Printf("baseline:   %d simulated instructions\n", base.Stats.SimInsts)

	for _, mode := range []softbound.Mode{softbound.ModeFull, softbound.ModeStoreOnly} {
		for _, mk := range []softbound.MetaKind{softbound.MetaHashTable, softbound.MetaShadowSpace} {
			cfg := softbound.DefaultConfig(mode)
			cfg.Meta = mk
			res, err := softbound.RunSource(src, cfg)
			if err != nil || res.Err != nil {
				log.Fatalf("%v/%v: %v %v", mode, mk, err, res.Err)
			}
			fmt.Printf("%-11v %-12v overhead %5.1f%%  (checks=%d metaloads=%d)\n",
				mode, mk, 100*res.Stats.Overhead(base.Stats),
				res.Stats.Checks, res.Stats.MetaLoads)
		}
	}

	// A read overflow: only full checking sees it.
	readBug := `
int main(void) {
    int* a = (int*)malloc(8 * sizeof(int));
    int i, s = 0;
    for (i = 0; i <= 8; i++)   /* off-by-one read */
        s += a[i];
    return s;
}`
	full, _ := softbound.RunSource(readBug, softbound.DefaultConfig(softbound.ModeFull))
	store, _ := softbound.RunSource(readBug, softbound.DefaultConfig(softbound.ModeStoreOnly))
	fmt.Printf("\nread overflow: full detects=%v, store-only detects=%v\n",
		full.Violation != nil, store.Violation != nil)
}
