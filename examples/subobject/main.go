// Subobject demonstrates the paper's §2.1 completeness argument: an
// overflow of an array *inside* a struct overwrites an adjacent function
// pointer. Object-granularity tools (the Jones–Kelly object-table
// baseline) cannot see it — the access stays inside the struct — while
// SoftBound's bounds shrinking at field-address creation catches it.
package main

import (
	"fmt"
	"log"

	"softbound"
	"softbound/internal/baseline"
)

// The paper's example, §2.1.
const program = `
int pwned;
void payload(void) { pwned = 1; printf("function pointer hijacked!\n"); exit(66); }
void greet(void)   { printf("hello\n"); }

struct node { char str[8]; void (*func)(void); };

int main(void) {
    struct node n;
    char* ptr = n.str;
    long target;
    char* tb;
    int i;
    n.func = greet;
    /* strcpy(ptr, "overflow...") — the overflowing bytes spell the
       address of payload(), as an attacker would arrange. */
    target = (long)payload;
    tb = (char*)&target;
    for (i = 0; i < 16; i++)
        ptr[i] = (i < 8) ? 'A' : tb[i - 8];
    n.func();
    return 0;
}`

func main() {
	// Unprotected: the function pointer is hijacked.
	res, err := softbound.RunSource(program, softbound.DefaultConfig(softbound.ModeNone))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected:  exit=%d output=%q\n", res.ExitCode, res.Output)

	// Object-table baseline: the write stays inside struct node, so the
	// object-granularity check passes and the hijack still happens.
	cfg := softbound.DefaultConfig(softbound.ModeNone)
	cfg.Checker = baseline.NewObjectTable()
	res, err = softbound.RunSource(program, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object-table: exit=%d detected=%v (sub-object blind spot)\n",
		res.ExitCode, res.BaselineHit != nil)

	// SoftBound: &n.str shrinks the pointer's bounds to the 8-byte
	// field; the 9th byte aborts.
	res, err = softbound.RunSource(program, softbound.DefaultConfig(softbound.ModeFull))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("softbound:    %v\n", res.Violation)
}
