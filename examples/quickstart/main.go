// Quickstart: compile and run a small C program under SoftBound, see a
// spatial violation detected, and inspect the execution statistics.
package main

import (
	"fmt"
	"log"

	"softbound"
)

const program = `
int main(void) {
    int i;
    int* a = (int*)malloc(10 * sizeof(int));
    for (i = 0; i < 10; i++)
        a[i] = i * i;
    printf("a[9] = %d\n", a[9]);

    /* The bug: classic off-by-one write. */
    for (i = 0; i <= 10; i++)
        a[i] = 0;
    return 0;
}`

func main() {
	// First, run unchecked: the overflow silently corrupts the heap.
	res, err := softbound.RunSource(program, softbound.DefaultConfig(softbound.ModeNone))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unchecked: exit=%d err=%v\n", res.ExitCode, res.Err)

	// Then under SoftBound full checking: the write to a[10] aborts.
	res, err = softbound.RunSource(program, softbound.DefaultConfig(softbound.ModeFull))
	if err != nil {
		log.Fatal(err)
	}
	if res.Violation == nil {
		log.Fatal("expected a spatial violation")
	}
	fmt.Printf("softbound: %v\n", res.Violation)
	fmt.Printf("stats: %s\n", res.Stats)
}
