// Attackdemo runs the full Wilander attack testbed (paper Table 3) three
// ways: unprotected (the attacks genuinely hijack control flow in the
// simulated machine), under SoftBound store-only checking, and under
// full checking (both stop every attack at the out-of-bounds write).
package main

import (
	"fmt"
	"log"

	"softbound"
	"softbound/internal/attacks"
)

func main() {
	fmt.Printf("%-34s %-10s %-10s %-10s\n", "attack", "unchecked", "store-only", "full")
	for _, a := range attacks.Suite() {
		row := [3]string{}
		for i, mode := range []softbound.Mode{
			softbound.ModeNone, softbound.ModeStoreOnly, softbound.ModeFull,
		} {
			res, err := softbound.RunSource(a.Source, softbound.DefaultConfig(mode))
			if err != nil {
				log.Fatalf("%s: %v", a.Name, err)
			}
			switch {
			case res.Violation != nil:
				row[i] = "DETECTED"
			case res.ExitCode == 66:
				row[i] = "pwned!"
			default:
				row[i] = "?"
			}
		}
		fmt.Printf("%-34s %-10s %-10s %-10s\n", a.Name, row[0], row[1], row[2])
	}
}
