// Command sbload is the serving-path load generator: it drives an
// sbrouter (or a bare sbserve) with closed-loop concurrent mixed
// traffic — clean programs, guaranteed spatial violations, optionally a
// step-limit poison — and emits a BENCH_SERVE.json report (p50/p99
// latency, shed rate, unstructured-response count, restart count read
// from the target's /statz) so the serving trajectory is tracked across
// PRs like the interpreter one is via BENCH.json.
//
// Usage:
//
//	sbload [-addr http://127.0.0.1:8400] [-duration 5s] [-concurrency 8]
//	       [-json BENCH_SERVE.json] [-include-poison]
//	       [-fail-on-unstructured=true]
//
// Exit status: 0 on a clean run; 1 when any unstructured response was
// observed and -fail-on-unstructured is set (the chaos gate), or the
// target was unreachable.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

const (
	okSrc       = `int main() { printf("hi\n"); return 7; }`
	overflowSrc = `int main() { int a[4]; int i; for (i = 0; i <= 4; i = i + 1) a[i] = i; return a[0]; }`
	spinSrc     = `int main() { int i; i = 0; while (1) { i = i + 1; } return i; }`
)

// Report is the BENCH_SERVE.json document (schema v1). All latencies
// are nanoseconds; by_status keys are decimal status codes.
type Report struct {
	Schema      int    `json:"schema"`
	Target      string `json:"target"`
	Concurrency int    `json:"concurrency"`

	Total          int            `json:"total"`
	ByStatus       map[string]int `json:"by_status"`
	OK             int            `json:"ok"`
	Shed           int            `json:"shed"` // 429 + 503
	ShedRate       float64        `json:"shed_rate"`
	Unstructured   int            `json:"unstructured"` // transport errors + non-JSON bodies
	TransportError int            `json:"transport_errors"`

	DurationNanos int64   `json:"duration_nanos"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Nanos      int64   `json:"p50_nanos"`
	P90Nanos      int64   `json:"p90_nanos"`
	P99Nanos      int64   `json:"p99_nanos"`
	MaxNanos      int64   `json:"max_nanos"`

	// RestartsObserved sums backend restarts from the target's /statz
	// (router targets only; 0 for a bare sbserve or when unreadable).
	RestartsObserved uint64 `json:"restarts_observed"`
}

type sample struct {
	status  int
	latency time.Duration
	broken  bool // transport error or non-JSON body
	trans   bool // transport error specifically
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8400", "target base URL (sbrouter or sbserve)")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	concurrency := flag.Int("concurrency", 8, "closed-loop worker count")
	jsonPath := flag.String("json", "BENCH_SERVE.json", "report path (\"\" = stdout only)")
	includePoison := flag.Bool("include-poison", false, "mix in a step-limit poison program (exercises breakers)")
	failOnUnstructured := flag.Bool("fail-on-unstructured", true, "exit 1 if any response was malformed or connection-level")
	flag.Parse()

	mix := []map[string]any{
		{"source": okSrc},
		{"source": overflowSrc},
		{"source": okSrc, "mode": "store-only"},
	}
	if *includePoison {
		mix = append(mix, map[string]any{"source": spinSrc, "steps": 2000})
	}
	bodies := make([][]byte, len(mix))
	for i, m := range mix {
		bodies[i], _ = json.Marshal(m)
	}

	client := &http.Client{Timeout: 30 * time.Second}
	var (
		mu      sync.Mutex
		samples []sample
	)
	start := time.Now()
	stop := start.Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				s := oneRequest(client, *addr, bodies[(w+i)%len(bodies)])
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(samples) == 0 {
		fmt.Fprintln(os.Stderr, "sbload: no requests completed (target unreachable?)")
		os.Exit(1)
	}

	rep := summarize(*addr, *concurrency, elapsed, samples)
	rep.RestartsObserved = restartsFromStatz(client, *addr)

	blob, _ := json.MarshalIndent(rep, "", "  ")
	if *jsonPath != "" {
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "sbload: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
	fmt.Printf("sbload: %d reqs in %v (%.0f rps)  ok=%d shed=%d (%.1f%%)  p50=%v p99=%v  unstructured=%d restarts=%d\n",
		rep.Total, elapsed.Round(time.Millisecond), rep.ThroughputRPS,
		rep.OK, rep.Shed, rep.ShedRate*100,
		time.Duration(rep.P50Nanos).Round(time.Microsecond),
		time.Duration(rep.P99Nanos).Round(time.Microsecond),
		rep.Unstructured, rep.RestartsObserved)
	if *jsonPath == "" {
		fmt.Println(string(blob))
	}

	if *failOnUnstructured && rep.Unstructured > 0 {
		fmt.Fprintf(os.Stderr, "sbload: %d unstructured responses (chaos gate)\n", rep.Unstructured)
		os.Exit(1)
	}
}

// oneRequest fires one POST /run and classifies the answer. Anything
// that is not an HTTP response with a valid JSON body is unstructured —
// exactly what the fabric promises never to produce.
func oneRequest(client *http.Client, addr string, body []byte) sample {
	t0 := time.Now()
	resp, err := client.Post(addr+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{latency: time.Since(t0), broken: true, trans: true}
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	lat := time.Since(t0)
	if err != nil || !json.Valid(blob) {
		return sample{status: resp.StatusCode, latency: lat, broken: true, trans: err != nil}
	}
	return sample{status: resp.StatusCode, latency: lat}
}

func summarize(target string, concurrency int, elapsed time.Duration, samples []sample) Report {
	rep := Report{
		Schema:        1,
		Target:        target,
		Concurrency:   concurrency,
		Total:         len(samples),
		ByStatus:      map[string]int{},
		DurationNanos: elapsed.Nanoseconds(),
	}
	lats := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		lats = append(lats, s.latency)
		if s.broken {
			rep.Unstructured++
			if s.trans {
				rep.TransportError++
			}
			continue
		}
		rep.ByStatus[strconv.Itoa(s.status)]++
		switch s.status {
		case http.StatusOK:
			rep.OK++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			rep.Shed++
		}
	}
	rep.ShedRate = float64(rep.Shed) / float64(rep.Total)
	rep.ThroughputRPS = float64(rep.Total) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(q float64) int64 {
		return lats[int(q*float64(len(lats)-1))].Nanoseconds()
	}
	rep.P50Nanos = pct(0.50)
	rep.P90Nanos = pct(0.90)
	rep.P99Nanos = pct(0.99)
	rep.MaxNanos = lats[len(lats)-1].Nanoseconds()
	return rep
}

// restartsFromStatz sums backend restarts from a router /statz; a bare
// sbserve (no backends array) or an unreachable statz reports 0.
func restartsFromStatz(client *http.Client, addr string) uint64 {
	resp, err := client.Get(addr + "/statz")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var doc struct {
		Backends []struct {
			Restarts uint64 `json:"restarts"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0
	}
	var n uint64
	for _, b := range doc.Backends {
		n += b.Restarts
	}
	return n
}
