// Command sbrouter is the self-healing sharded execution fabric's front
// router: it spawns and supervises N sbserve backend worker processes
// (each with its own port and crash-bundle spool), rendezvous-hashes
// every /run request by program hash onto a backend so compile caches
// and circuit-breaker state shard naturally, and keeps answering
// structured responses while backends crash and are restarted.
//
// Usage:
//
//	sbrouter [-addr :8400] [-backends 3] [-sbserve PATH]
//	         [-backend-args "FLAGS"] [-spool DIR] [-inflight N]
//	         [-probe-interval 250ms] [-probe-timeout 1s] [-eject-after 3]
//	         [-restart-attempts 8] [-restart-base 100ms]
//	         [-restart-max 2s] [-restart-budget 10s]
//	         [-drain-timeout 30s]
//
// Degradation is explicit and ordered: healthy shard → one cross-shard
// retry (connection-level failures only; VM traps and detections are
// answers) → 503 + Retry-After. On SIGTERM/SIGINT the router drains
// first (readyz flips, in-flight requests finish), then the backends
// are SIGTERMed so they drain their own pools; the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"softbound/internal/fabric"
	"softbound/internal/retry"
	"softbound/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8400", "router listen address")
	backends := flag.Int("backends", 3, "backend sbserve worker processes")
	sbservePath := flag.String("sbserve", "", "sbserve binary (default: $PATH, then next to sbrouter)")
	backendArgs := flag.String("backend-args", "", "extra sbserve flags, space separated (e.g. \"-workers 4 -queue 16\")")
	spool := flag.String("spool", "fabric-spool", "base crash-bundle directory; each backend spools under <dir>/<name> (\"\" disables)")
	inflight := flag.Int("inflight", 32, "max concurrently proxied requests per backend; a saturated shard sheds 503")
	probeInterval := flag.Duration("probe-interval", 250*time.Millisecond, "backend /healthz poll period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "one health probe's budget")
	ejectAfter := flag.Int("eject-after", 3, "consecutive probe failures that eject a backend")
	restartAttempts := flag.Int("restart-attempts", 8, "respawn attempts per restart cycle before a backend is marked failed")
	restartBase := flag.Duration("restart-base", 100*time.Millisecond, "restart backoff before the second respawn (doubles per attempt)")
	restartMax := flag.Duration("restart-max", 2*time.Second, "restart backoff cap")
	restartBudget := flag.Duration("restart-budget", 10*time.Second, "cumulative restart backoff budget per cycle (retry.Policy.Budget)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget after SIGTERM")
	flag.Parse()

	bin, err := resolveSbserve(*sbservePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbrouter: %v\n", err)
		os.Exit(1)
	}

	f, err := fabric.New(fabric.Options{
		Backends:      *backends,
		Command:       fabric.SbserveCommand(bin, strings.Fields(*backendArgs)...),
		SpoolDir:      *spool,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		EjectAfter:    *ejectAfter,
		Restart: retry.Policy{
			MaxAttempts: *restartAttempts,
			BaseDelay:   *restartBase,
			MaxDelay:    *restartMax,
			Budget:      *restartBudget,
		},
		InflightPerBackend:  *inflight,
		BackendDrainTimeout: *drainTimeout,
		Log:                 os.Stderr,
		BackendOutput:       os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbrouter: %v\n", err)
		os.Exit(1)
	}
	f.Start()

	httpSrv := serve.NewHTTPServer(*addr, f.Handler())
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sbrouter: listening on %s, supervising %d × %s\n", *addr, *backends, bin)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "sbrouter: %v\n", err)
		f.Close()
		os.Exit(1)
	case <-ctx.Done():
	}

	// Drain router first, then backends: readiness flips, in-flight
	// proxied requests finish, the HTTP server closes out connections,
	// and only then are the backends SIGTERMed to drain their pools.
	fmt.Fprintln(os.Stderr, "sbrouter: signal received, draining")
	f.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "sbrouter: shutdown: %v\n", err)
	}
	f.Close()
	fmt.Fprintln(os.Stderr, "sbrouter: drained, exiting")
}

// resolveSbserve finds the backend binary: an explicit path wins, then
// $PATH, then the router's own directory.
func resolveSbserve(path string) (string, error) {
	if path != "" {
		if strings.ContainsRune(path, os.PathSeparator) {
			return path, nil
		}
		return exec.LookPath(path)
	}
	if p, err := exec.LookPath("sbserve"); err == nil {
		return p, nil
	}
	self, err := os.Executable()
	if err == nil {
		sibling := filepath.Join(filepath.Dir(self), "sbserve")
		if _, statErr := os.Stat(sibling); statErr == nil {
			return sibling, nil
		}
	}
	return "", errors.New("sbserve binary not found (use -sbserve)")
}
