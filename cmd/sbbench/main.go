// Command sbbench regenerates the paper's evaluation artifacts: every
// table and figure of §6, plus the compatibility case study, the related
// scheme comparison, and the ablations called out in DESIGN.md.
//
// It also hosts the parallel benchmark harness, which runs the full
// program × metadata-scheme × protection-mode matrix on a bounded worker
// pool and serializes per-run statistics and overhead-versus-baseline
// figures to the stable BENCH.json schema.
//
// Usage:
//
//	sbbench -experiment=all|table1|table3|table4|figure1|figure2|compat|related
//	        [-scale=N]
//	sbbench -parallel [-json=BENCH.json] [-schemes=hashtable,shadowspace]
//	        [-progs=go,treeadd,...] [-workers=N] [-scale=N]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"softbound/internal/bench"
	"softbound/internal/experiments"
	"softbound/internal/meta"
)

func main() {
	exp := flag.String("experiment", "all",
		"which experiment to run: all, table1, table3, table4, figure1, figure2, compat, related, bench")
	scale := flag.Int("scale", 0, "benchmark problem size (0 = default)")
	parallel := flag.Bool("parallel", false,
		"run the benchmark matrix on a worker pool sized to the CPU count")
	workers := flag.Int("workers", 0,
		"worker pool size for the benchmark matrix (0 = NumCPU with -parallel, else 1)")
	jsonOut := flag.String("json", "",
		"write the benchmark matrix report to this file (BENCH.json schema)")
	schemes := flag.String("schemes", "",
		"comma-separated metadata schemes for the matrix (default: all registered: "+
			strings.Join(meta.SchemeNames(), ", ")+")")
	progList := flag.String("progs", "",
		"comma-separated benchmark subset for the matrix (default: all 15)")
	flag.Parse()

	// The harness path: any of its flags (or -experiment=bench) selects it.
	if *parallel || *jsonOut != "" || *workers > 0 || *schemes != "" ||
		*progList != "" || *exp == "bench" {
		if err := runBench(*scale, *parallel, *workers, *jsonOut, *schemes, *progList); err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Print(experiments.FormatTable1(experiments.Table1()))
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(rows))
		return nil
	})
	run("table4", func() error {
		rows, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(rows))
		return nil
	})
	run("figure1", func() error {
		rows, err := experiments.Figure1(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure1(rows))
		return nil
	})
	run("figure2", func() error {
		rows, err := experiments.Figure2(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure2(rows))
		return nil
	})
	run("compat", func() error {
		r, err := experiments.Compat()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCompat(r))
		return nil
	})
	run("related", func() error {
		rows, err := experiments.Related(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRelated(rows))
		return nil
	})
}

// runBench executes the benchmark matrix and writes the human summary to
// stdout and, if requested, the JSON report to jsonPath.
func runBench(scale int, parallel bool, workers int, jsonPath, schemeList, progList string) error {
	schemes, err := meta.ParseSchemes(schemeList)
	if err != nil {
		return err
	}
	var programs []string
	for _, p := range strings.Split(progList, ",") {
		if p = strings.TrimSpace(p); p != "" {
			programs = append(programs, p)
		}
	}
	if workers <= 0 {
		if parallel {
			workers = runtime.NumCPU()
		} else {
			workers = 1
		}
	}

	rep, err := bench.Execute(bench.Config{
		Workers:  workers,
		Scale:    scale,
		Programs: programs,
		Schemes:  schemes,
		Log:      os.Stderr,
	})
	if err != nil {
		return err
	}
	fmt.Print(bench.Format(rep))

	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (schema v%d, %d runs)\n", jsonPath, rep.Schema, len(rep.Runs))
	}
	return nil
}
