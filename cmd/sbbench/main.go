// Command sbbench regenerates the paper's evaluation artifacts: every
// table and figure of §6, plus the compatibility case study, the related
// scheme comparison, and the ablations called out in DESIGN.md.
//
// It also hosts the parallel benchmark harness, which runs the full
// program × metadata-scheme × protection-mode matrix on a bounded worker
// pool and serializes per-run statistics and overhead-versus-baseline
// figures to the stable BENCH.json schema.
//
// Usage:
//
//	sbbench -experiment=all|table1|table3|table4|figure1|figure2|compat|related
//	        [-scale=N]
//	sbbench -parallel [-json=BENCH.json] [-schemes=hashtable,shadowspace]
//	        [-progs=go,treeadd,...] [-workers=N] [-scale=N]
//	        [-timeout=30s] [-steps=N] [-faults=seed=7,flip=200,oom=4]
//	        [-engine=fast|ref|compiled] [-cpuprofile=cpu.pprof] [-memprofile=mem.pprof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"softbound/internal/bench"
	"softbound/internal/experiments"
	"softbound/internal/faults"
	"softbound/internal/meta"
	"softbound/internal/vm"
)

func main() {
	exp := flag.String("experiment", "all",
		"which experiment to run: all, table1, table3, table4, figure1, figure2, compat, related, bench")
	scale := flag.Int("scale", 0, "benchmark problem size (0 = default)")
	parallel := flag.Bool("parallel", false,
		"run the benchmark matrix on a worker pool sized to the CPU count")
	workers := flag.Int("workers", 0,
		"worker pool size for the benchmark matrix (0 = NumCPU with -parallel, else 1)")
	jsonOut := flag.String("json", "",
		"write the benchmark matrix report to this file (BENCH.json schema)")
	schemes := flag.String("schemes", "",
		"comma-separated metadata schemes for the matrix (default: all registered: "+
			strings.Join(meta.SchemeNames(), ", ")+")")
	progList := flag.String("progs", "",
		"comma-separated benchmark subset for the matrix (default: all 15)")
	timeout := flag.Duration("timeout", 0,
		"per-cell execution deadline for the matrix (0 = unbounded); a hung cell "+
			"is recorded as failed with trap code \"deadline\" and the matrix continues")
	steps := flag.Uint64("steps", 0,
		"per-cell VM instruction budget for the matrix (0 = driver default); "+
			"exceeding it traps with code \"step-limit\"")
	faultSpec := flag.String("faults", "",
		"fault-injection plan for every matrix cell, e.g. \"seed=7,flip=200,drop=500,corrupt=300,oom=4\" "+
			"(empty = no injection); each cell gets a fresh deterministic injector")
	retries := flag.Int("retries", 0,
		"total attempts per cell for contained non-deterministic crashes (0 = harness default of 2, "+
			"1 = no retry); deterministic traps such as deadline and step-limit never retry")
	engine := flag.String("engine", "",
		"interpreter for matrix cells: fast (default), ref, or compiled "+
			"(engine A/B/C wall-clock comparison; modeled stats are identical)")
	refInterp := flag.Bool("ref", false,
		"deprecated alias for -engine=ref")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			pf, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
				return
			}
			defer pf.Close()
			runtime.GC() // settle allocations so the profile shows live heap
			if err := pprof.WriteHeapProfile(pf); err != nil {
				fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			}
		}()
	}

	// The harness path: any of its flags (or -experiment=bench) selects it.
	if *parallel || *jsonOut != "" || *workers > 0 || *schemes != "" ||
		*progList != "" || *timeout != 0 || *steps != 0 || *faultSpec != "" ||
		*retries != 0 || *refInterp || *engine != "" || *exp == "bench" {
		if err := runBench(benchOptions{
			scale:     *scale,
			parallel:  *parallel,
			workers:   *workers,
			jsonPath:  *jsonOut,
			schemes:   *schemes,
			progs:     *progList,
			timeout:   *timeout,
			steps:     *steps,
			faults:    *faultSpec,
			retries:   *retries,
			engine:    *engine,
			refInterp: *refInterp,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "sbbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Print(experiments.FormatTable1(experiments.Table1()))
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(rows))
		return nil
	})
	run("table4", func() error {
		rows, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(rows))
		return nil
	})
	run("figure1", func() error {
		rows, err := experiments.Figure1(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure1(rows))
		return nil
	})
	run("figure2", func() error {
		rows, err := experiments.Figure2(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure2(rows))
		return nil
	})
	run("compat", func() error {
		r, err := experiments.Compat()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCompat(r))
		return nil
	})
	run("related", func() error {
		rows, err := experiments.Related(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRelated(rows))
		return nil
	})
}

// benchOptions carries the harness flag values.
type benchOptions struct {
	scale     int
	parallel  bool
	workers   int
	jsonPath  string
	schemes   string
	progs     string
	timeout   time.Duration
	steps     uint64
	faults    string
	retries   int
	engine    string
	refInterp bool
}

// parseEngine resolves the -engine flag, honoring the deprecated -ref
// alias. -engine wins when both are given and agree with -ref=ref; a
// contradictory combination is an error rather than a silent pick.
func parseEngine(engine string, refAlias bool) (vm.InterpKind, error) {
	if refAlias {
		if engine != "" && engine != "ref" {
			return 0, fmt.Errorf("-ref conflicts with -engine=%s (use -engine alone)", engine)
		}
		fmt.Fprintln(os.Stderr, "sbbench: -ref is deprecated; use -engine=ref")
		return vm.InterpRef, nil
	}
	switch engine {
	case "", "fast":
		return vm.InterpFast, nil
	case "ref":
		return vm.InterpRef, nil
	case "compiled":
		return vm.InterpCompiled, nil
	default:
		return 0, fmt.Errorf("unknown -engine %q (want fast, ref, or compiled)", engine)
	}
}

// runBench executes the benchmark matrix and writes the human summary to
// stdout and, if requested, the JSON report to jsonPath.
func runBench(o benchOptions) error {
	schemes, err := meta.ParseSchemes(o.schemes)
	if err != nil {
		return err
	}
	var programs []string
	for _, p := range strings.Split(o.progs, ",") {
		if p = strings.TrimSpace(p); p != "" {
			programs = append(programs, p)
		}
	}
	workers := o.workers
	if workers <= 0 {
		if o.parallel {
			workers = runtime.NumCPU()
		} else {
			workers = 1
		}
	}
	interp, err := parseEngine(o.engine, o.refInterp)
	if err != nil {
		return err
	}
	var plan *faults.Plan
	if o.faults != "" {
		p, err := faults.ParsePlan(o.faults)
		if err != nil {
			return err
		}
		if p.Enabled() {
			plan = &p
		}
	}

	rep, err := bench.Execute(bench.Config{
		Workers:     workers,
		Scale:       o.scale,
		Programs:    programs,
		Schemes:     schemes,
		Log:         os.Stderr,
		CellTimeout: o.timeout,
		StepLimit:   o.steps,
		Faults:      plan,
		MaxAttempts: o.retries,
		Interp:      interp,
	})
	if err != nil {
		return err
	}
	fmt.Print(bench.Format(rep))

	if o.jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (schema v%d, %d runs)\n", o.jsonPath, rep.Schema, len(rep.Runs))
	}
	return nil
}
