// Command sbbench regenerates the paper's evaluation artifacts: every
// table and figure of §6, plus the compatibility case study, the related
// scheme comparison, and the ablations called out in DESIGN.md.
//
// Usage:
//
//	sbbench -experiment=all|table1|table3|table4|figure1|figure2|compat|related
//	        [-scale=N]
package main

import (
	"flag"
	"fmt"
	"os"

	"softbound/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all",
		"which experiment to run: all, table1, table3, table4, figure1, figure2, compat, related")
	scale := flag.Int("scale", 0, "benchmark problem size (0 = default)")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		fmt.Print(experiments.FormatTable1(experiments.Table1()))
		return nil
	})
	run("table3", func() error {
		rows, err := experiments.Table3()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable3(rows))
		return nil
	})
	run("table4", func() error {
		rows, err := experiments.Table4()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable4(rows))
		return nil
	})
	run("figure1", func() error {
		rows, err := experiments.Figure1(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure1(rows))
		return nil
	})
	run("figure2", func() error {
		rows, err := experiments.Figure2(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure2(rows))
		return nil
	})
	run("compat", func() error {
		r, err := experiments.Compat()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCompat(r))
		return nil
	})
	run("related", func() error {
		rows, err := experiments.Related(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatRelated(rows))
		return nil
	})
}
