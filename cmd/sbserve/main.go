// Command sbserve is the resilient execution service: a long-running
// HTTP/JSON server that compiles and executes C programs under any
// registered metadata scheme and protection mode, with a bounded worker
// pool, admission control (429 shedding), per-program circuit breakers,
// a singleflight compile cache, and crash-replay bundles for every trap.
//
// Usage:
//
//	sbserve [-addr :8080] [-workers N] [-queue N] [-timeout 5s]
//	        [-max-timeout 30s] [-steps N] [-spool DIR] [-cache N]
//	        [-breaker-threshold N] [-breaker-cooldown 5s] [-retries N]
//	sbserve -replay BUNDLE.json
//
// Serve mode runs until SIGTERM/SIGINT, then drains gracefully: /readyz
// flips to 503, new /run work is rejected, admitted work finishes, and
// the process exits 0.
//
// Replay mode re-executes a spooled crash bundle offline under its
// recorded configuration and reports whether the trap reproduced
// (exit 0: identical trap code; exit 1: diverged; exit 2: bad bundle).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"softbound/internal/retry"
	"softbound/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "execution worker pool size (0 = NumCPU)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 2×workers); full queue sheds with 429")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request VM deadline")
	maxTimeout := flag.Duration("max-timeout", 30*time.Second, "cap on client-requested deadlines")
	steps := flag.Uint64("steps", 0, "default per-request VM instruction budget (0 = driver default)")
	maxSteps := flag.Uint64("max-steps", 0, "cap on client-requested instruction budgets (0 = uncapped)")
	spool := flag.String("spool", "crash-spool", "crash-replay bundle directory (\"\" disables spooling)")
	cache := flag.Int("cache", 128, "compile cache entries")
	brThreshold := flag.Int("breaker-threshold", 3,
		"consecutive contained crashes / step-limit traps that open a program's circuit breaker (<= 0 disables)")
	brCooldown := flag.Duration("breaker-cooldown", 5*time.Second,
		"how long an open breaker fast-fails before a half-open probe")
	retries := flag.Int("retries", 2,
		"total attempts for contained non-deterministic crashes (1 = no retry); deterministic traps never retry")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget after SIGTERM")
	replay := flag.String("replay", "", "replay a spooled crash bundle instead of serving")
	restarts := flag.Uint64("restarts", 0,
		"supervisor-reported respawn count, surfaced as /statz restarts_observed (sbrouter sets this)")
	addrFile := flag.String("addr-file", "",
		"write the bound listen address to this file once listening (for supervisors using -addr with port 0)")
	flag.Parse()

	if *replay != "" {
		os.Exit(runReplay(*replay))
	}

	srv := serve.New(serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		StepLimit:      *steps,
		MaxSteps:       *maxSteps,
		SpoolDir:       *spool,
		CacheEntries:   *cache,
		Breaker:        serve.BreakerConfig{Threshold: *brThreshold, Cooldown: *brCooldown},
		Retry:          retry.Policy{MaxAttempts: *retries, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second},
		Restarts:       *restarts,
		Log:            os.Stderr,
	})
	// Hardened listener: header/read deadlines and an idle cap, so slow
	// clients cannot pin connections (see serve.NewHTTPServer).
	httpSrv := serve.NewHTTPServer(*addr, srv.Handler())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// Listen explicitly so -addr may use port 0 and a supervisor can
	// learn the bound address through -addr-file.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbserve: %v\n", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := writeAddrFile(*addrFile, ln.Addr().String()); err != nil {
			fmt.Fprintf(os.Stderr, "sbserve: %v\n", err)
			os.Exit(1)
		}
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "sbserve: listening on %s\n", ln.Addr())

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "sbserve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: readiness flips first so load balancers stop
	// routing here, the execution pool finishes admitted work, then the
	// HTTP server closes out remaining connections.
	fmt.Fprintln(os.Stderr, "sbserve: signal received, draining")
	srv.BeginDrain()
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "sbserve: shutdown: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "sbserve: drained, exiting")
}

// writeAddrFile publishes the bound address atomically (write-to-temp +
// rename), so a supervisor polling the file never reads a half-written
// address.
func writeAddrFile(path, addr string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(addr+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// runReplay re-executes one spooled bundle and compares trap codes.
func runReplay(path string) int {
	b, err := serve.ReadBundle(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbserve: %v\n", err)
		return 2
	}
	res, err := serve.Replay(b)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbserve: replay: %v\n", err)
		return 2
	}
	got := string(res.TrapCode())
	fmt.Printf("bundle:   %s\nprogram:  %s\nconfig:   %s %s\nrecorded: %s\nreplayed: %s\n",
		path, b.ProgramHash[:12], b.Scheme, b.Mode, b.TrapCode, got)
	if res.Err != nil {
		fmt.Printf("error:    %v\n", res.Err)
	}
	if got != b.TrapCode {
		fmt.Println("DIVERGED: replay did not reproduce the recorded trap")
		return 1
	}
	fmt.Println("REPRODUCED: identical trap code")
	return 0
}
