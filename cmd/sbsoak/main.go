// Command sbsoak is the differential soak harness for the generated
// corpus. In its default (matrix) mode it draws seeded programs from
// the internal generator and runs each across every metadata scheme ×
// protection mode × engine, demanding bit-equal behavior on clean cells
// and exact detection on planted ones; every divergence is shrunk to a
// minimal repro and spooled. In -session mode it becomes a workload
// client: a stream of generated FTP-daemon request programs POSTed
// through a live sbserve, asserting structured responses,
// baseline-identical outputs, bounded metadata-table occupancy, and a
// healthy lookaside hit rate.
//
// Usage:
//
//	sbsoak [-cells=N] [-seed=N] [-workers=N] [-plants=N]
//	       [-timeout=10s] [-steps=N] [-shrink-budget=N]
//	       [-spool=DIR] [-json=SOAK.json] [-v]
//	sbsoak -session -addr=http://127.0.0.1:8080 [-requests=N]
//	       [-programs=N] [-concurrency=N] [-seed=N] [-commands=N]
//	       [-sessions-per-run=N] [-scheme=NAME] [-mode=full]
//	       [-max-live=N] [-max-meta-bytes=N] [-min-hitrate=F]
//	       [-json=SOAK_SESSION.json] [-v]
//
// Exit status is 0 only when every invariant held: zero divergences and
// zero unstructured traps (matrix), or zero failures and zero bound
// violations (session).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"softbound/internal/soak"
)

func main() {
	session := flag.Bool("session", false, "run the session soak client against a live sbserve")
	jsonOut := flag.String("json", "", "write the report (SOAK.json / SOAK_SESSION.json schema) to this file")
	verbose := flag.Bool("v", false, "log progress to stderr")
	seed := flag.Uint64("seed", 1, "campaign seed (the campaign is a pure function of seed and size)")

	// Matrix mode.
	cells := flag.Int("cells", 100, "number of generated programs to soak")
	workers := flag.Int("workers", 0, "concurrent cells (0 = GOMAXPROCS)")
	plants := flag.Int("plants", 2, "planted variants exercised per cell")
	timeout := flag.Duration("timeout", 10*time.Second, "per-run VM deadline")
	steps := flag.Uint64("steps", 20_000_000, "per-run VM instruction budget")
	shrinkBudget := flag.Int("shrink-budget", 24, "max re-runs while shrinking one divergence")
	spool := flag.String("spool", "", "directory for shrunk repro bundles")

	// Session mode.
	addr := flag.String("addr", "http://127.0.0.1:8080", "sbserve base URL (session mode)")
	requests := flag.Int("requests", 1000, "total /run requests (session mode)")
	programs := flag.Int("programs", 32, "distinct generated programs to cycle (session mode)")
	concurrency := flag.Int("concurrency", 4, "client workers (session mode)")
	commands := flag.Int("commands", 20, "FTP commands per generated script (session mode)")
	sessionsPerRun := flag.Int("sessions-per-run", 2, "daemon sessions per request program (session mode)")
	scheme := flag.String("scheme", "shadowspace", "metadata scheme for session requests")
	mode := flag.String("mode", "full", "protection mode for session requests")
	maxLive := flag.Int64("max-live", 0, "bound on the server's live metadata entries high-water (0 = unchecked)")
	maxMetaBytes := flag.Int64("max-meta-bytes", 0, "bound on the server's metadata table bytes high-water (0 = unchecked)")
	minHitRate := flag.Float64("min-hitrate", 0, "lookaside hit-rate floor (0 = unchecked)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}

	if *session {
		rep, err := soak.RunSession(ctx, soak.SessionConfig{
			BaseURL:       *addr,
			Requests:      *requests,
			Programs:      *programs,
			Concurrency:   *concurrency,
			Seed:          *seed,
			Commands:      *commands,
			Sessions:      *sessionsPerRun,
			Scheme:        *scheme,
			Mode:          *mode,
			MaxLive:       *maxLive,
			MaxTableBytes: *maxMetaBytes,
			MinHitRate:    *minHitRate,
			Log:           logw,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sbsoak: %v\n", err)
			os.Exit(2)
		}
		writeReport(*jsonOut, rep)
		fmt.Printf("session soak: %d requests (%d cache hits), %d failures; meta live max %d, %d table bytes max, lookaside %.3f\n",
			rep.Requests, rep.CacheHits, rep.Failures, rep.MetaLiveMax, rep.MetaBytesMax, rep.LookasideHitRate)
		for _, v := range rep.BoundViolations {
			fmt.Printf("  bound violated: %s\n", v)
		}
		if rep.Failed() {
			os.Exit(1)
		}
		return
	}

	rep, err := soak.Run(ctx, soak.Config{
		Cells:         *cells,
		Seed:          *seed,
		Workers:       *workers,
		PlantsPerCell: *plants,
		Timeout:       *timeout,
		StepLimit:     *steps,
		SpoolDir:      *spool,
		MaxShrinkRuns: *shrinkBudget,
		Log:           logw,
	})
	if err != nil {
		writeReport(*jsonOut, rep)
		fmt.Fprintf(os.Stderr, "sbsoak: %v\n", err)
		os.Exit(2)
	}
	writeReport(*jsonOut, rep)
	fmt.Printf("soak: %d cells, %d runs; planted %d/%d detected; %d divergences (%d unstructured), %d shrunk\n",
		rep.Cells, rep.Runs, rep.Planted.Detected, rep.Planted.Total,
		rep.Divergences, rep.Unstructured, rep.Shrinks)
	for i, d := range rep.DivergenceList {
		if i == 10 {
			fmt.Printf("  ... %d more\n", len(rep.DivergenceList)-10)
			break
		}
		fmt.Printf("  seed=%d %s %s [%s]: %s\n", d.Seed, d.Variant, d.Check, d.Config, d.Detail)
	}
	if rep.Divergences > 0 || rep.Unstructured > 0 || rep.Planted.Missed > 0 {
		os.Exit(1)
	}
}

func writeReport(path string, rep any) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sbsoak: writing %s: %v\n", path, err)
		os.Exit(2)
	}
}
