// Command softbound compiles and runs a C source file under the
// SoftBound pipeline.
//
// Usage:
//
//	softbound [-mode=none|store|full] [-meta=hash|shadow] [-stats] [-dump]
//	          [-timeout=10s] [-steps=N] [-faults=seed=7,flip=200] file.c...
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"softbound/internal/driver"
	"softbound/internal/faults"
	"softbound/internal/meta"
	"softbound/internal/vm"
)

func main() {
	mode := flag.String("mode", "full", "checking mode: none, store, full")
	metaKind := flag.String("meta", "shadow", "metadata facility: hash, shadow")
	stats := flag.Bool("stats", false, "print execution statistics")
	dump := flag.Bool("dump", false, "dump the instrumented IR instead of running")
	noOpt := flag.Bool("no-opt", false, "disable the optimizer")
	timeout := flag.Duration("timeout", 0,
		"wall-clock execution deadline (0 = unbounded); expiring traps with code \"deadline\"")
	steps := flag.Uint64("steps", 0,
		"VM instruction budget (0 = default); exceeding it traps with code \"step-limit\"")
	faultSpec := flag.String("faults", "",
		"fault-injection plan, e.g. \"seed=7,flip=200,drop=500,corrupt=300,oom=4\" (empty = none)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: softbound [flags] file.c ...")
		os.Exit(2)
	}

	cfg := driver.DefaultConfig(driver.ModeFull)
	switch *mode {
	case "none":
		cfg.Mode = driver.ModeNone
	case "store":
		cfg.Mode = driver.ModeStoreOnly
	case "full":
		cfg.Mode = driver.ModeFull
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *metaKind == "hash" {
		cfg.Meta = meta.KindHashTable
	}
	cfg.Optimize = !*noOpt
	cfg.Stdout = os.Stdout
	cfg.Timeout = *timeout
	if *steps != 0 {
		cfg.StepLimit = *steps
	}
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Faults = faults.NewInjector(plan)
	}

	var sources []driver.Source
	for _, name := range flag.Args() {
		text, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sources = append(sources, driver.Source{Name: name, Text: string(text)})
	}

	mod, err := driver.Compile(sources, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dump {
		fmt.Print(mod.String())
		return
	}
	res := driver.Execute(mod, cfg)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "stats: %s\n", res.Stats)
		if inj := cfg.Faults; inj != nil {
			s := inj.Stats()
			fmt.Fprintf(os.Stderr, "faults: flips=%d drops=%d corrupts=%d ooms=%d\n",
				s.Flips, s.Drops, s.Corrupts, s.OOMs)
		}
	}
	// A trapped run exits with a distinct status so scripts can tell a
	// guard firing (e.g. deadline on a hung program) from the program's
	// own exit code.
	var trap *vm.Trap
	if errors.As(res.Err, &trap) && res.ExitCode == 0 {
		os.Exit(3)
	}
	os.Exit(int(res.ExitCode))
}
