// Command softbound compiles and runs a C source file under the
// SoftBound pipeline.
//
// Usage:
//
//	softbound [-mode=none|store|full] [-meta=<scheme>] [-stats] [-dump]
//	          [-timeout=10s] [-steps=N] [-faults=seed=7,flip=200]
//	          [-format=text|json] file.c...
//
// With -format=json the single-run result is emitted as one JSON
// document on stdout using the BENCH.json field vocabulary (config,
// mode, scheme, exit_code, trap_code, stats, phases, wall_nanos), with
// program output captured into the document instead of echoed. Exit
// status is unchanged: the program's exit code, 3 for a guard trap with
// exit code 0, 1 for a compile failure, 2 for bad usage.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"softbound/internal/driver"
	"softbound/internal/faults"
	"softbound/internal/meta"
	"softbound/internal/metrics"
	"softbound/internal/vm"
)

func main() {
	mode := flag.String("mode", "full", "checking mode: none, store, full")
	metaKind := flag.String("meta", "shadow",
		"metadata scheme: any registered name (shadowspace, hashtable, "+
			"shadow-cets, hashtable-cets) or the aliases hash, shadow")
	stats := flag.Bool("stats", false, "print execution statistics")
	dump := flag.Bool("dump", false, "dump the instrumented IR instead of running")
	noOpt := flag.Bool("no-opt", false, "disable the optimizer")
	timeout := flag.Duration("timeout", 0,
		"wall-clock execution deadline (0 = unbounded); expiring traps with code \"deadline\"")
	steps := flag.Uint64("steps", 0,
		"VM instruction budget (0 = default); exceeding it traps with code \"step-limit\"")
	faultSpec := flag.String("faults", "",
		"fault-injection plan, e.g. \"seed=7,flip=200,drop=500,corrupt=300,oom=4\" (empty = none)")
	format := flag.String("format", "text",
		"output format: text (program output to stdout, diagnostics to stderr) or "+
			"json (one BENCH.json-vocabulary result document on stdout)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: softbound [flags] file.c ...")
		os.Exit(2)
	}
	asJSON := false
	switch *format {
	case "text":
	case "json":
		asJSON = true
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	cfg := driver.DefaultConfig(driver.ModeFull)
	switch *mode {
	case "none":
		cfg.Mode = driver.ModeNone
	case "store":
		cfg.Mode = driver.ModeStoreOnly
	case "full":
		cfg.Mode = driver.ModeFull
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	schemeName := *metaKind
	switch *metaKind { // short aliases kept for compatibility
	case "shadow":
		schemeName = "shadowspace"
	case "hash":
		schemeName = "hashtable"
	}
	if sc, ok := meta.SchemeByName(schemeName); ok {
		cfg.Meta = sc.Kind
		if ctor := sc.New; ctor != nil {
			cfg.MetaFacility = func() (meta.Facility, error) { return ctor(), nil }
		}
	} else {
		fmt.Fprintf(os.Stderr, "unknown metadata scheme %q (have %v)\n",
			*metaKind, meta.SchemeNames())
		os.Exit(2)
	}
	cfg.Optimize = !*noOpt
	cfg.Stdout = os.Stdout
	cfg.Timeout = *timeout
	if *steps != 0 {
		cfg.StepLimit = *steps
	}
	if *faultSpec != "" {
		plan, err := faults.ParsePlan(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Faults = faults.NewInjector(plan)
	}

	var sources []driver.Source
	var names []string
	for _, name := range flag.Args() {
		text, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sources = append(sources, driver.Source{Name: name, Text: string(text)})
		names = append(names, name)
	}

	if asJSON {
		os.Exit(runJSON(sources, cfg, jsonMeta{
			program: strings.Join(names, ","),
			mode:    cfg.Mode,
			scheme:  schemeName,
		}))
	}

	mod, err := driver.Compile(sources, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dump {
		fmt.Print(mod.String())
		return
	}
	res := driver.Execute(mod, cfg)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "stats: %s\n", res.Stats)
		if inj := cfg.Faults; inj != nil {
			s := inj.Stats()
			fmt.Fprintf(os.Stderr, "faults: flips=%d drops=%d corrupts=%d ooms=%d\n",
				s.Flips, s.Drops, s.Corrupts, s.OOMs)
		}
	}
	// A trapped run exits with a distinct status so scripts can tell a
	// guard firing (e.g. deadline on a hung program) from the program's
	// own exit code.
	var trap *vm.Trap
	if errors.As(res.Err, &trap) && res.ExitCode == 0 {
		os.Exit(3)
	}
	os.Exit(int(res.ExitCode))
}

// jsonMeta carries the run identity for the JSON document.
type jsonMeta struct {
	program string
	mode    driver.Mode
	scheme  string
}

// jsonResult is the -format=json document. Field names follow the
// BENCH.json schema (and the sbserve /run response) so one decoder
// handles all three producers.
type jsonResult struct {
	Program   string                `json:"program"`
	Config    string                `json:"config"`
	Mode      string                `json:"mode"`
	Scheme    string                `json:"scheme,omitempty"`
	ExitCode  int64                 `json:"exit_code"`
	Output    string                `json:"output,omitempty"`
	TrapCode  string                `json:"trap_code,omitempty"`
	Error     string                `json:"error,omitempty"`
	Violation string                `json:"violation,omitempty"`
	Stats     *metrics.Report       `json:"stats,omitempty"`
	Phases    []metrics.PhaseTiming `json:"phases,omitempty"`
	WallNanos int64                 `json:"wall_nanos"`
	Faults    *faults.Stats         `json:"faults,omitempty"`
	// Compile identifies the pipeline stage that rejected the input,
	// present only on compile failures.
	Compile *jsonCompileError `json:"compile,omitempty"`
}

type jsonCompileError struct {
	Stage string `json:"stage"`
	Unit  string `json:"unit,omitempty"`
}

// runJSON compiles, executes, and emits the result document; the return
// value is the process exit status (same policy as text mode).
func runJSON(sources []driver.Source, cfg driver.Config, m jsonMeta) int {
	doc := jsonResult{
		Program: m.program,
		Mode:    m.mode.String(),
	}
	if m.mode == driver.ModeNone {
		doc.Config = "baseline"
	} else {
		doc.Config = m.scheme + "-" + m.mode.String()
		doc.Scheme = m.scheme
	}

	var out strings.Builder
	cfg.Stdout = &out

	var timer metrics.PhaseTimer
	start := time.Now()
	doneCompile := timer.Start("compile")
	mod, counters, err := driver.CompileWithStats(sources, cfg)
	doneCompile()
	if err != nil {
		doc.Error = err.Error()
		var ce *driver.CompileError
		if errors.As(err, &ce) {
			doc.Compile = &jsonCompileError{Stage: ce.Stage, Unit: ce.Unit}
		}
		doc.Phases = timer.Phases()
		doc.WallNanos = time.Since(start).Nanoseconds()
		emitJSON(doc)
		return 1
	}

	doneExec := timer.Start("execute")
	res := driver.Execute(mod, cfg)
	doneExec()
	doc.WallNanos = time.Since(start).Nanoseconds()
	doc.Phases = timer.Phases()
	doc.ExitCode = res.ExitCode
	doc.Output = out.String()
	if res.Err != nil {
		doc.Error = res.Err.Error()
	}
	if res.Violation != nil {
		doc.Violation = res.Violation.Error()
	}
	doc.TrapCode = string(res.TrapCode())
	if res.Stats != nil {
		res.Stats.Opt = counters
		res.Stats.CheckElims = counters.ChecksRemoved()
		res.Stats.TrapCode = doc.TrapCode
		rep := res.Stats.Report()
		doc.Stats = &rep
	}
	if inj := cfg.Faults; inj != nil {
		fs := inj.Stats()
		doc.Faults = &fs
	}
	emitJSON(doc)

	var trap *vm.Trap
	if errors.As(res.Err, &trap) && res.ExitCode == 0 {
		return 3
	}
	return int(res.ExitCode)
}

func emitJSON(doc jsonResult) {
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(append(blob, '\n'))
}
