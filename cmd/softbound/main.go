// Command softbound compiles and runs a C source file under the
// SoftBound pipeline.
//
// Usage:
//
//	softbound [-mode=none|store|full] [-meta=hash|shadow] [-stats] [-dump] file.c...
package main

import (
	"flag"
	"fmt"
	"os"

	"softbound/internal/driver"
	"softbound/internal/meta"
)

func main() {
	mode := flag.String("mode", "full", "checking mode: none, store, full")
	metaKind := flag.String("meta", "shadow", "metadata facility: hash, shadow")
	stats := flag.Bool("stats", false, "print execution statistics")
	dump := flag.Bool("dump", false, "dump the instrumented IR instead of running")
	noOpt := flag.Bool("no-opt", false, "disable the optimizer")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: softbound [flags] file.c ...")
		os.Exit(2)
	}

	cfg := driver.DefaultConfig(driver.ModeFull)
	switch *mode {
	case "none":
		cfg.Mode = driver.ModeNone
	case "store":
		cfg.Mode = driver.ModeStoreOnly
	case "full":
		cfg.Mode = driver.ModeFull
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *metaKind == "hash" {
		cfg.Meta = meta.KindHashTable
	}
	cfg.Optimize = !*noOpt
	cfg.Stdout = os.Stdout

	var sources []driver.Source
	for _, name := range flag.Args() {
		text, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sources = append(sources, driver.Source{Name: name, Text: string(text)})
	}

	mod, err := driver.Compile(sources, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *dump {
		fmt.Print(mod.String())
		return
	}
	res := driver.Execute(mod, cfg)
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "stats: %s\n", res.Stats)
	}
	os.Exit(int(res.ExitCode))
}
