package softbound

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§6), per-benchmark Figure 2 series, metadata
// facility micro-benchmarks, and ablation benchmarks for the design
// decisions DESIGN.md calls out.
//
// Figures report their headline quantities through b.ReportMetric:
// overhead% (relative simulated-instruction overhead vs the
// uninstrumented baseline — the Figure 2 y-axis) and ptrmem% (the
// Figure 1 y-axis).

import (
	"fmt"
	"testing"

	"softbound/internal/driver"
	"softbound/internal/experiments"
	"softbound/internal/ir"
	"softbound/internal/meta"
	"softbound/internal/progs"
	"softbound/internal/splay"
)

// benchScale keeps benchmark iterations fast while preserving each
// workload's memory-operation mix.
var benchScale = map[string]int{
	"go": 10, "lbm": 4, "hmmer": 8, "compress": 4, "ijpeg": 2,
	"bh": 24, "tsp": 7, "libquantum": 2, "perimeter": 5, "health": 16,
	"bisort": 8, "mst": 32, "li": 5, "em3d": 60, "treeadd": 10,
}

func mustCompile(b *testing.B, src string, cfg driver.Config) *ir.Module {
	b.Helper()
	mod, err := driver.Compile([]driver.Source{{Name: "bench.c", Text: src}}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return mod
}

func mustExecute(b *testing.B, mod *ir.Module, cfg driver.Config) *driver.Result {
	b.Helper()
	res := driver.Execute(mod, cfg)
	if res.Err != nil {
		b.Fatalf("run: %v", res.Err)
	}
	return res
}

// ------------------------------------------------------------- Figure 1

// BenchmarkFigure1 measures, for each of the 15 workloads, the fraction
// of memory operations that load or store a pointer (the Figure 1 bars),
// reported as the ptrmem% metric.
func BenchmarkFigure1(b *testing.B) {
	for _, bench := range progs.All() {
		bench := bench
		b.Run(bench.Name, func(b *testing.B) {
			cfg := driver.DefaultConfig(driver.ModeNone)
			mod := mustCompile(b, bench.Source(benchScale[bench.Name]), cfg)
			var frac float64
			for i := 0; i < b.N; i++ {
				res := mustExecute(b, mod, cfg)
				frac = res.Stats.PtrMemFrac()
			}
			b.ReportMetric(100*frac, "ptrmem%")
		})
	}
}

// ------------------------------------------------------------- Figure 2

// BenchmarkFigure2 regenerates the Figure 2 series: for every benchmark
// and each of the four instrumentation configurations, the overhead%
// metric is the simulated-instruction overhead over the uninstrumented
// baseline (the figure's y-axis).
func BenchmarkFigure2(b *testing.B) {
	for _, bench := range progs.All() {
		bench := bench
		src := bench.Source(benchScale[bench.Name])
		baseCfg := driver.DefaultConfig(driver.ModeNone)
		baseMod := mustCompile(b, src, baseCfg)
		base := mustExecute(b, baseMod, baseCfg)

		for _, cfg := range experiments.Figure2Configs() {
			cfg := cfg
			b.Run(bench.Name+"/"+cfg.Name, func(b *testing.B) {
				c := driver.DefaultConfig(cfg.Mode)
				c.Meta = cfg.Meta
				mod := mustCompile(b, src, c)
				var ovh float64
				for i := 0; i < b.N; i++ {
					res := mustExecute(b, mod, c)
					ovh = res.Stats.Overhead(base.Stats)
				}
				b.ReportMetric(100*ovh, "overhead%")
			})
		}
	}
}

// ---------------------------------------------------------------- Tables

// BenchmarkTable1 regenerates the qualitative scheme comparison.
func BenchmarkTable1(b *testing.B) {
	var s string
	for i := 0; i < b.N; i++ {
		s = experiments.FormatTable1(experiments.Table1())
	}
	if len(s) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkTable3 runs the 18-attack Wilander suite through all three
// modes per iteration and asserts the paper's 18/18 detection result.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Succeeded || !r.DetectedFull || !r.DetectedStore {
				b.Fatalf("attack %s: succeeded=%v full=%v store=%v",
					r.Attack.Name, r.Succeeded, r.DetectedFull, r.DetectedStore)
			}
		}
	}
}

// BenchmarkTable4 runs the BugBench matrix per iteration and asserts the
// paper's detection pattern.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Valgrind != r.Program.Valgrind || r.Mudflap != r.Program.Mudflap ||
				r.Store != r.Program.StoreOnly || r.Full != r.Program.Full {
				b.Fatalf("%s: matrix mismatch", r.Program.Name)
			}
		}
	}
}

// ---------------------------------------------------- §6.4 / §6.5 extras

// BenchmarkCompat runs the two multi-module daemon case studies (§6.4)
// per iteration.
func BenchmarkCompat(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Compat()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rs {
			if !r.OutputsMatch {
				b.Fatalf("%s: outputs differ across modes", r.Daemon)
			}
		}
	}
}

// BenchmarkRelatedMSCC compares SoftBound with the MSCC-style cost model
// on the treeadd workload (§6.5 shape: MSCC overhead is uniformly higher).
func BenchmarkRelatedMSCC(b *testing.B) {
	bench, _ := progs.Get("treeadd")
	src := bench.Source(benchScale["treeadd"])
	baseCfg := driver.DefaultConfig(driver.ModeNone)
	base := mustExecute(b, mustCompile(b, src, baseCfg), baseCfg)

	b.Run("softbound", func(b *testing.B) {
		cfg := driver.DefaultConfig(driver.ModeFull)
		mod := mustCompile(b, src, cfg)
		var ovh float64
		for i := 0; i < b.N; i++ {
			ovh = mustExecute(b, mod, cfg).Stats.Overhead(base.Stats)
		}
		b.ReportMetric(100*ovh, "overhead%")
	})
	b.Run("mscc-model", func(b *testing.B) {
		cfg := driver.DefaultConfig(driver.ModeFull)
		cfg.Meta = meta.KindHashTable
		cfg.MSCCModel = true
		mod := mustCompile(b, src, cfg)
		var ovh float64
		for i := 0; i < b.N; i++ {
			ovh = mustExecute(b, mod, cfg).Stats.Overhead(base.Stats)
		}
		b.ReportMetric(100*ovh, "overhead%")
	})
}

// ------------------------------------------------------------- Ablations

// ablationOverhead measures the overhead of a configuration on treeadd
// (pointer-heavy, so metadata choices show) and ijpeg (scalar, so check
// placement shows).
func ablationOverhead(b *testing.B, name string, mutate func(*driver.Config)) {
	for _, bn := range []string{"treeadd", "ijpeg"} {
		bn := bn
		b.Run(name+"/"+bn, func(b *testing.B) {
			bench, _ := progs.Get(bn)
			src := bench.Source(benchScale[bn])
			baseCfg := driver.DefaultConfig(driver.ModeNone)
			base := mustExecute(b, mustCompile(b, src, baseCfg), baseCfg)
			cfg := driver.DefaultConfig(driver.ModeFull)
			mutate(&cfg)
			mod := mustCompile(b, src, cfg)
			var ovh float64
			for i := 0; i < b.N; i++ {
				ovh = mustExecute(b, mod, cfg).Stats.Overhead(base.Stats)
			}
			b.ReportMetric(100*ovh, "overhead%")
		})
	}
}

// BenchmarkAblationShrinkBounds compares full checking with and without
// sub-object bounds shrinking (design decision 5 in DESIGN.md).
func BenchmarkAblationShrinkBounds(b *testing.B) {
	ablationOverhead(b, "on", func(c *driver.Config) { c.ShrinkBounds = true })
	ablationOverhead(b, "off", func(c *driver.Config) { c.ShrinkBounds = false })
}

// BenchmarkAblationOptimizer compares instrumented execution with and
// without the post-pass cleanup optimizer (redundant-check elimination,
// metadata-load CSE, DCE — design decision 6).
func BenchmarkAblationOptimizer(b *testing.B) {
	ablationOverhead(b, "opt", func(c *driver.Config) { c.Optimize = true })
	ablationOverhead(b, "noopt", func(c *driver.Config) { c.Optimize = false })
}

// BenchmarkAblationClearOnReturn compares with and without epilogue
// metadata clearing (paper §5.2 stale-metadata hygiene).
func BenchmarkAblationClearOnReturn(b *testing.B) {
	ablationOverhead(b, "on", func(c *driver.Config) { c.ClearOnReturn = true })
	ablationOverhead(b, "off", func(c *driver.Config) { c.ClearOnReturn = false })
}

// BenchmarkAblationCheckAtArith quantifies the extra cost of checking at
// pointer-arithmetic time instead of dereference time (design decision 3;
// the correctness argument is TestCheckAtArithFalsePositive).
func BenchmarkAblationCheckAtArith(b *testing.B) {
	ablationOverhead(b, "deref-time", func(c *driver.Config) { c.CheckArith = false })
	ablationOverhead(b, "arith-time", func(c *driver.Config) { c.CheckArith = true })
}

// ----------------------------------------------------- micro-benchmarks

// BenchmarkMetaHashTable and BenchmarkMetaShadowSpace measure raw
// facility operation throughput (design decision 2).
func BenchmarkMetaHashTable(b *testing.B) {
	benchFacility(b, meta.MustHashTable(1<<16))
}

// BenchmarkMetaShadowSpace measures the shadow-space facility.
func BenchmarkMetaShadowSpace(b *testing.B) {
	benchFacility(b, meta.NewShadowSpace())
}

func benchFacility(b *testing.B, f meta.Facility) {
	b.Run("update", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a := uint64(i%4096) * 8
			f.Update(a, meta.Entry{Base: a, Bound: a + 64})
		}
	})
	b.Run("lookup", func(b *testing.B) {
		for i := 0; i < 4096; i++ {
			a := uint64(i) * 8
			f.Update(a, meta.Entry{Base: a, Bound: a + 64})
		}
		b.ResetTimer()
		var e meta.Entry
		for i := 0; i < b.N; i++ {
			e = f.Lookup(uint64(i%4096) * 8)
		}
		_ = e
	})
	b.Run("copyrange", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.CopyRange(1<<20, 0, 512)
		}
	})
}

// BenchmarkSplayTree measures the object-table substrate the baselines
// use (and the paper blames for object-table overhead).
func BenchmarkSplayTree(b *testing.B) {
	b.Run("insert-find", func(b *testing.B) {
		t := splay.New()
		for i := 0; i < 4096; i++ {
			a := uint64(i) * 64
			t.Insert(splay.Range{Start: a, End: a + 48})
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Find(uint64(i%4096)*64 + 16)
		}
	})
}

// BenchmarkPipeline measures the compiler itself: parse→check→lower→
// optimize→instrument→link for a representative workload.
func BenchmarkPipeline(b *testing.B) {
	bench, _ := progs.Get("li")
	src := bench.Source(2)
	for _, mode := range []driver.Mode{driver.ModeNone, driver.ModeFull} {
		mode := mode
		b.Run(fmt.Sprint(mode), func(b *testing.B) {
			cfg := driver.DefaultConfig(mode)
			for i := 0; i < b.N; i++ {
				if _, err := driver.Compile([]driver.Source{{Name: "li.c", Text: src}}, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
