// Package cparser implements a recursive-descent parser for the C subset.
//
// The parser is responsible for declaration syntax (including the full
// declarator grammar: pointers, arrays, function parameter lists), typedef
// and struct/union/enum scoping, and the complete C expression grammar via
// precedence climbing. It produces an untyped AST; internal/sema resolves
// names and types.
package cparser

import (
	"fmt"

	"softbound/internal/cast"
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
)

// ParseError is a syntax error with position.
type ParseError struct {
	Pos ctoken.Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []ctoken.Token
	pos  int
	unit *cast.TranslationUnit

	// typedefs in scope (file scope only in this subset).
	typedefs map[string]*ctypes.Type
	structs  map[string]*ctypes.Type
	enums    map[string]int64

	// lastParams records the named parameter list of the most recently
	// parsed function declarator suffix, so function definitions can
	// recover parameter names (the type alone stores only param types).
	lastParams []cast.ParamDecl
}

// Parse parses a translation unit.
func Parse(file, src string) (*cast.TranslationUnit, error) {
	toks, err := ctoken.ScanAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks: toks,
		unit: &cast.TranslationUnit{
			File:     file,
			Structs:  make(map[string]*ctypes.Type),
			Enums:    make(map[string]int64),
			Typedefs: make(map[string]*ctypes.Type),
		},
	}
	p.typedefs = p.unit.Typedefs
	p.structs = p.unit.Structs
	p.enums = p.unit.Enums
	if err := p.parseUnit(); err != nil {
		return nil, err
	}
	return p.unit, nil
}

// ---------------------------------------------------------------- plumbing

func (p *parser) cur() ctoken.Token  { return p.toks[p.pos] }
func (p *parser) peek() ctoken.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) next() ctoken.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k ctoken.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k ctoken.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k ctoken.Kind) (ctoken.Token, error) {
	if !p.at(k) {
		return ctoken.Token{}, p.errorf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

// ------------------------------------------------------------ type parsing

// isTypeStart reports whether the current token begins a type specifier.
func (p *parser) isTypeStart() bool {
	switch p.cur().Kind {
	case ctoken.KwVoid, ctoken.KwChar, ctoken.KwShort, ctoken.KwInt,
		ctoken.KwLong, ctoken.KwFloat, ctoken.KwDouble, ctoken.KwSigned,
		ctoken.KwUnsigned, ctoken.KwStruct, ctoken.KwUnion, ctoken.KwEnum,
		ctoken.KwConst, ctoken.KwVolatile, ctoken.KwStatic, ctoken.KwExtern,
		ctoken.KwTypedef, ctoken.KwRegister, ctoken.KwAuto:
		return true
	case ctoken.Ident:
		_, ok := p.typedefs[p.cur().Text]
		return ok
	}
	return false
}

type declSpecs struct {
	base    *ctypes.Type
	typedef bool
	static  bool
	extern  bool
}

// parseDeclSpecs parses storage-class specifiers, qualifiers, and a type
// specifier sequence, returning the base type.
func (p *parser) parseDeclSpecs() (declSpecs, error) {
	var ds declSpecs
	var sawSigned, sawUnsigned bool
	var kind ctypes.Kind = -1
	longCount := 0
	for {
		t := p.cur()
		switch t.Kind {
		case ctoken.KwConst, ctoken.KwVolatile, ctoken.KwRegister, ctoken.KwAuto:
			p.next() // qualifiers are accepted and ignored
		case ctoken.KwStatic:
			ds.static = true
			p.next()
		case ctoken.KwExtern:
			ds.extern = true
			p.next()
		case ctoken.KwTypedef:
			ds.typedef = true
			p.next()
		case ctoken.KwVoid:
			kind = ctypes.Void
			p.next()
		case ctoken.KwChar:
			kind = ctypes.Char
			p.next()
		case ctoken.KwShort:
			kind = ctypes.Short
			p.next()
			if p.at(ctoken.KwInt) {
				p.next()
			}
		case ctoken.KwInt:
			if kind == -1 {
				kind = ctypes.Int
			}
			p.next()
		case ctoken.KwLong:
			longCount++
			kind = ctypes.Long
			p.next()
			if p.at(ctoken.KwInt) {
				p.next()
			}
		case ctoken.KwFloat:
			kind = ctypes.Float
			p.next()
		case ctoken.KwDouble:
			kind = ctypes.Double
			p.next()
		case ctoken.KwSigned:
			sawSigned = true
			p.next()
		case ctoken.KwUnsigned:
			sawUnsigned = true
			p.next()
		case ctoken.KwStruct, ctoken.KwUnion:
			st, err := p.parseStructSpec(t.Kind == ctoken.KwUnion)
			if err != nil {
				return ds, err
			}
			ds.base = st
		case ctoken.KwEnum:
			et, err := p.parseEnumSpec()
			if err != nil {
				return ds, err
			}
			ds.base = et
		case ctoken.Ident:
			if td, ok := p.typedefs[t.Text]; ok && ds.base == nil && kind == -1 && !sawSigned && !sawUnsigned {
				ds.base = td
				p.next()
			} else {
				goto done
			}
		default:
			goto done
		}
	}
done:
	if ds.base == nil {
		if kind == -1 {
			if sawSigned || sawUnsigned {
				kind = ctypes.Int
			} else {
				return ds, p.errorf("expected type specifier, found %s", p.cur())
			}
		}
		switch kind {
		case ctypes.Void:
			ds.base = ctypes.VoidType
		case ctypes.Float:
			ds.base = ctypes.FloatType
		case ctypes.Double:
			ds.base = ctypes.DoubleType
		default:
			ds.base = &ctypes.Type{Kind: kind, Unsigned: sawUnsigned}
		}
		_ = longCount
	}
	return ds, nil
}

// parseStructSpec parses struct/union specifiers including bodies.
func (p *parser) parseStructSpec(isUnion bool) (*ctypes.Type, error) {
	p.next() // struct / union
	tag := ""
	if p.at(ctoken.Ident) {
		tag = p.next().Text
	}
	var st *ctypes.Type
	if tag != "" {
		key := tag
		if isUnion {
			key = "union " + tag
		}
		if existing, ok := p.structs[key]; ok {
			st = existing
		} else {
			st = ctypes.NewStruct(tag, isUnion)
			p.structs[key] = st
		}
	} else {
		st = ctypes.NewStruct("", isUnion)
	}
	if !p.at(ctoken.LBrace) {
		return st, nil
	}
	p.next() // {
	var fields []ctypes.Field
	for !p.at(ctoken.RBrace) {
		ds, err := p.parseDeclSpecs()
		if err != nil {
			return nil, err
		}
		for {
			name, typ, err := p.parseDeclarator(ds.base)
			if err != nil {
				return nil, err
			}
			if name == "" {
				return nil, p.errorf("struct field missing name")
			}
			fields = append(fields, ctypes.Field{Name: name, Type: typ})
			if !p.accept(ctoken.Comma) {
				break
			}
		}
		if _, err := p.expect(ctoken.Semi); err != nil {
			return nil, err
		}
	}
	p.next() // }
	if err := st.Complete(fields); err != nil {
		return nil, p.errorf("%v", err)
	}
	return st, nil
}

// parseEnumSpec parses enum specifiers; enum types are int.
func (p *parser) parseEnumSpec() (*ctypes.Type, error) {
	p.next() // enum
	if p.at(ctoken.Ident) {
		p.next() // tag, ignored: enums are just ints here
	}
	if p.accept(ctoken.LBrace) {
		next := int64(0)
		for !p.at(ctoken.RBrace) {
			nameTok, err := p.expect(ctoken.Ident)
			if err != nil {
				return nil, err
			}
			if p.accept(ctoken.Assign) {
				v, err := p.parseConstExpr()
				if err != nil {
					return nil, err
				}
				next = v
			}
			p.enums[nameTok.Text] = next
			next++
			if !p.accept(ctoken.Comma) {
				break
			}
		}
		if _, err := p.expect(ctoken.RBrace); err != nil {
			return nil, err
		}
	}
	return ctypes.IntType, nil
}

// parseDeclarator parses a (possibly abstract) declarator given the base
// type: pointer stars, the direct declarator name, array suffixes, and
// function parameter lists.
func (p *parser) parseDeclarator(base *ctypes.Type) (string, *ctypes.Type, error) {
	for p.accept(ctoken.Star) {
		base = ctypes.PointerTo(base)
		for p.at(ctoken.KwConst) || p.at(ctoken.KwVolatile) {
			p.next()
		}
	}
	// Parenthesized declarator, e.g. int (*fp)(int).
	if p.at(ctoken.LParen) && (p.peek().Kind == ctoken.Star || p.peek().Kind == ctoken.Ident && !p.isTypeTok(p.peek())) {
		p.next() // (
		// Parse the inner declarator against a placeholder, then wrap.
		name, inner, err := p.parseDeclarator(nil)
		if err != nil {
			return "", nil, err
		}
		if _, err := p.expect(ctoken.RParen); err != nil {
			return "", nil, err
		}
		outer, err := p.parseDeclSuffix(base)
		if err != nil {
			return "", nil, err
		}
		return name, substituteHole(inner, outer), nil
	}
	name := ""
	if p.at(ctoken.Ident) {
		name = p.next().Text
	}
	t, err := p.parseDeclSuffix(base)
	if err != nil {
		return "", nil, err
	}
	return name, t, nil
}

func (p *parser) isTypeTok(t ctoken.Token) bool {
	if t.Kind != ctoken.Ident {
		return true
	}
	_, ok := p.typedefs[t.Text]
	return ok
}

// substituteHole replaces the nil "hole" left by a parenthesized inner
// declarator with the outer type.
func substituteHole(inner, outer *ctypes.Type) *ctypes.Type {
	if inner == nil {
		return outer
	}
	cp := *inner
	switch inner.Kind {
	case ctypes.Pointer, ctypes.Array:
		cp.Elem = substituteHole(inner.Elem, outer)
	case ctypes.Func:
		cp.Elem = substituteHole(inner.Elem, outer)
	}
	return &cp
}

// parseDeclSuffix parses array and function suffixes.
func (p *parser) parseDeclSuffix(base *ctypes.Type) (*ctypes.Type, error) {
	switch {
	case p.at(ctoken.LBracket):
		p.next()
		if p.accept(ctoken.RBracket) {
			rest, err := p.parseDeclSuffix(base)
			if err != nil {
				return nil, err
			}
			return ctypes.IncompleteArrayOf(rest), nil
		}
		n, err := p.parseConstExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ctoken.RBracket); err != nil {
			return nil, err
		}
		rest, err := p.parseDeclSuffix(base)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, p.errorf("negative array size %d", n)
		}
		return ctypes.ArrayOf(rest, n), nil
	case p.at(ctoken.LParen):
		p.next()
		params, variadic, err := p.parseParamTypes()
		if err != nil {
			return nil, err
		}
		p.lastParams = params
		types := make([]*ctypes.Type, len(params))
		for i := range params {
			types[i] = params[i].Type.Decay()
		}
		return ctypes.FuncOf(base, types, variadic), nil
	}
	return base, nil
}

// parseParamTypes parses a parameter list after '(' up to and including ')'.
func (p *parser) parseParamTypes() ([]cast.ParamDecl, bool, error) {
	var params []cast.ParamDecl
	variadic := false
	if p.accept(ctoken.RParen) {
		return params, false, nil
	}
	// (void)
	if p.at(ctoken.KwVoid) && p.peek().Kind == ctoken.RParen {
		p.next()
		p.next()
		return params, false, nil
	}
	for {
		if p.accept(ctoken.Ellipsis) {
			variadic = true
			break
		}
		ds, err := p.parseDeclSpecs()
		if err != nil {
			return nil, false, err
		}
		name, typ, err := p.parseDeclarator(ds.base)
		if err != nil {
			return nil, false, err
		}
		params = append(params, cast.ParamDecl{Name: name, Type: typ})
		if !p.accept(ctoken.Comma) {
			break
		}
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, false, err
	}
	return params, variadic, nil
}

// ----------------------------------------------------------- constant fold

// parseConstExpr parses and folds an integer constant expression.
func (p *parser) parseConstExpr() (int64, error) {
	e, err := p.parseCondExpr()
	if err != nil {
		return 0, err
	}
	return p.foldConst(e)
}

func (p *parser) foldConst(e cast.Expr) (int64, error) {
	switch x := e.(type) {
	case *cast.IntLit:
		return int64(x.Value), nil
	case *cast.Ident:
		if v, ok := p.enums[x.Name]; ok {
			return v, nil
		}
		return 0, &ParseError{Pos: x.Pos(), Msg: fmt.Sprintf("%q is not a constant", x.Name)}
	case *cast.Unary:
		v, err := p.foldConst(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case ctoken.Minus:
			return -v, nil
		case ctoken.Plus:
			return v, nil
		case ctoken.Tilde:
			return ^v, nil
		case ctoken.Not:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *cast.Binary:
		a, err := p.foldConst(x.X)
		if err != nil {
			return 0, err
		}
		b, err := p.foldConst(x.Y)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case ctoken.Plus:
			return a + b, nil
		case ctoken.Minus:
			return a - b, nil
		case ctoken.Star:
			return a * b, nil
		case ctoken.Slash:
			if b == 0 {
				return 0, &ParseError{Pos: x.Pos(), Msg: "division by zero in constant"}
			}
			return a / b, nil
		case ctoken.Percent:
			if b == 0 {
				return 0, &ParseError{Pos: x.Pos(), Msg: "modulo by zero in constant"}
			}
			return a % b, nil
		case ctoken.Shl:
			return a << uint(b), nil
		case ctoken.Shr:
			return a >> uint(b), nil
		case ctoken.Amp:
			return a & b, nil
		case ctoken.Pipe:
			return a | b, nil
		case ctoken.Caret:
			return a ^ b, nil
		case ctoken.Lt:
			return b2i(a < b), nil
		case ctoken.Gt:
			return b2i(a > b), nil
		case ctoken.Le:
			return b2i(a <= b), nil
		case ctoken.Ge:
			return b2i(a >= b), nil
		case ctoken.Eq:
			return b2i(a == b), nil
		case ctoken.Ne:
			return b2i(a != b), nil
		case ctoken.AndAnd:
			return b2i(a != 0 && b != 0), nil
		case ctoken.OrOr:
			return b2i(a != 0 || b != 0), nil
		}
	case *cast.Cond:
		c, err := p.foldConst(x.C)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return p.foldConst(x.Then)
		}
		return p.foldConst(x.Else)
	case *cast.SizeofType:
		if x.Of != nil {
			return x.Of.Size(), nil
		}
	case *cast.Cast:
		return p.foldConst(x.X)
	}
	return 0, &ParseError{Pos: e.Pos(), Msg: "expression is not constant"}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
