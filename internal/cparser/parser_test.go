package cparser

import (
	"strings"
	"testing"

	"softbound/internal/cast"
	"softbound/internal/ctypes"
)

func parse(t *testing.T, src string) *cast.TranslationUnit {
	t.Helper()
	unit, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return unit
}

func TestGlobalDeclarations(t *testing.T) {
	unit := parse(t, `
int x;
int y = 5;
char buf[64];
double d = 1.5;
int* p;
int arr[3] = {1, 2, 3};
char msg[] = "hello";
static int s;
`)
	if len(unit.Globals) != 8 {
		t.Fatalf("got %d globals", len(unit.Globals))
	}
	byName := map[string]*cast.VarDecl{}
	for _, g := range unit.Globals {
		byName[g.Name] = g
	}
	if byName["buf"].Type.Kind != ctypes.Array || byName["buf"].Type.ArrayLen != 64 {
		t.Errorf("buf type %s", byName["buf"].Type)
	}
	if !byName["p"].Type.IsPointer() {
		t.Errorf("p type %s", byName["p"].Type)
	}
	if !byName["s"].Static {
		t.Error("s not static")
	}
}

func TestDeclaratorShapes(t *testing.T) {
	unit := parse(t, `
int* a[4];         /* array of 4 pointer-to-int */
int (*fp)(int, char*);   /* pointer to function */
int** pp;
char* (*g)(void);
int m[2][3];
`)
	byName := map[string]*ctypes.Type{}
	for _, g := range unit.Globals {
		byName[g.Name] = g.Type
	}
	a := byName["a"]
	if a.Kind != ctypes.Array || !a.Elem.IsPointer() {
		t.Errorf("a = %s", a)
	}
	fp := byName["fp"]
	if !fp.IsFuncPointer() || len(fp.Elem.Params) != 2 {
		t.Errorf("fp = %s", fp)
	}
	pp := byName["pp"]
	if !pp.IsPointer() || !pp.Elem.IsPointer() {
		t.Errorf("pp = %s", pp)
	}
	g := byName["g"]
	if !g.IsFuncPointer() || !g.Elem.Elem.IsPointer() {
		t.Errorf("g = %s", g)
	}
	m := byName["m"]
	if m.Kind != ctypes.Array || m.ArrayLen != 2 ||
		m.Elem.Kind != ctypes.Array || m.Elem.ArrayLen != 3 {
		t.Errorf("m = %s", m)
	}
}

func TestStructUnionEnumTypedef(t *testing.T) {
	unit := parse(t, `
struct point { int x; int y; };
typedef struct point point_t;
union u { int i; char c[4]; };
enum color { RED, GREEN = 5, BLUE };
struct node { int v; struct node* next; };
point_t origin;
`)
	if unit.Enums["RED"] != 0 || unit.Enums["GREEN"] != 5 || unit.Enums["BLUE"] != 6 {
		t.Errorf("enum values: %v", unit.Enums)
	}
	pt := unit.Typedefs["point_t"]
	if pt == nil || pt.Kind != ctypes.Struct || pt.Size() != 8 {
		t.Errorf("typedef point_t: %v", pt)
	}
	node := unit.Structs["node"]
	if node == nil || node.Size() != 16 {
		t.Errorf("recursive struct node: %v", node)
	}
	u := unit.Structs["union u"]
	if u == nil || !u.IsUnion || u.Size() != 4 {
		t.Errorf("union u: %v", u)
	}
}

func TestFunctionDefinitions(t *testing.T) {
	unit := parse(t, `
int add(int a, int b) { return a + b; }
void nothing(void) {}
int variadic(char* fmt, ...);
char* ptrret(int n) { return (char*)0; }
`)
	if len(unit.Funcs) != 4 {
		t.Fatalf("got %d funcs", len(unit.Funcs))
	}
	add := unit.Funcs[0]
	if add.Name != "add" || len(add.Params) != 2 || add.Params[0].Name != "a" {
		t.Errorf("add: %+v", add)
	}
	if unit.Funcs[1].Body == nil {
		t.Error("nothing has no body")
	}
	v := unit.Funcs[2]
	if !v.Variadic || v.Body != nil {
		t.Errorf("variadic: %+v", v)
	}
	if !unit.Funcs[3].Ret.IsPointer() {
		t.Error("ptrret return type")
	}
}

func TestExpressionPrecedence(t *testing.T) {
	unit := parse(t, `int f(void) { return 1 + 2 * 3 - 4 / 2; }`)
	ret := unit.Funcs[0].Body.Stmts[0].(*cast.Return)
	// ((1 + (2*3)) - (4/2))
	top, ok := ret.X.(*cast.Binary)
	if !ok {
		t.Fatalf("top is %T", ret.X)
	}
	if top.Op.String() != "-" {
		t.Errorf("top op %v", top.Op)
	}
	l := top.X.(*cast.Binary)
	if l.Op.String() != "+" {
		t.Errorf("left op %v", l.Op)
	}
	if l.Y.(*cast.Binary).Op.String() != "*" {
		t.Errorf("mul missing")
	}
}

func TestStatementsParse(t *testing.T) {
	parse(t, `
int f(int n) {
    int i;
    int sum = 0;
    for (i = 0; i < n; i++) {
        if (i % 2 == 0)
            sum += i;
        else
            continue;
        while (sum > 100) { sum -= 10; break; }
    }
    do { sum--; } while (sum > 50);
    switch (n) {
    case 0:
        return 0;
    case 1:
    case 2:
        sum = 1;
        break;
    default:
        sum = 2;
    }
    goto done;
done:
    return sum;
}`)
}

func TestCastVsParenExpr(t *testing.T) {
	unit := parse(t, `
typedef unsigned long size_t;
int f(int x) {
    int a = (x) + 1;          /* paren expr */
    long b = (long)x;         /* cast */
    size_t c = (size_t)x;     /* typedef cast */
    char* p = (char*)(x + 1); /* cast of paren */
    return a + (int)b + (int)c + (p != (char*)0);
}`)
	if len(unit.Funcs) != 1 {
		t.Fatal("parse failed")
	}
}

func TestConstExprFolding(t *testing.T) {
	unit := parse(t, `
int a[3 + 4];
int b[1 << 4];
int c[24 / 2 % 5];
enum { K = 3 * 5 };
int d[K];
int e[sizeof(long)];
`)
	sizes := map[string]int64{}
	for _, g := range unit.Globals {
		sizes[g.Name] = g.Type.ArrayLen
	}
	want := map[string]int64{"a": 7, "b": 16, "c": 2, "d": 15, "e": 8}
	for name, n := range want {
		if sizes[name] != n {
			t.Errorf("%s: len %d want %d", name, sizes[name], n)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"int f( {",
		"int x = ;",
		"struct { int a; int a; } s;",
		"int a[-1];",
		"int f(void) { return 1 }",      // missing semicolon
		"int f(void) { if (1 return; }", // missing paren
		"int f(void) { switch (1) { foo: } }",
	} {
		if _, err := Parse("bad.c", src); err == nil {
			t.Errorf("%q: expected parse error", src)
		} else if !strings.Contains(err.Error(), "bad.c") {
			t.Errorf("%q: error lacks position: %v", src, err)
		}
	}
}

func TestCommaAndTernary(t *testing.T) {
	unit := parse(t, `int f(int x) { return x > 0 ? (x--, x) : -x; }`)
	ret := unit.Funcs[0].Body.Stmts[0].(*cast.Return)
	if _, ok := ret.X.(*cast.Cond); !ok {
		t.Fatalf("top is %T", ret.X)
	}
}
