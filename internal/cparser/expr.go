package cparser

import (
	"softbound/internal/cast"
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
)

// Expression parsing: precedence climbing over the full C operator set
// (except GNU extensions). Assignment and the conditional operator are
// right-associative; everything else is left-associative.

// binary precedence levels, higher binds tighter.
var binPrec = map[ctoken.Kind]int{
	ctoken.OrOr:   1,
	ctoken.AndAnd: 2,
	ctoken.Pipe:   3,
	ctoken.Caret:  4,
	ctoken.Amp:    5,
	ctoken.Eq:     6, ctoken.Ne: 6,
	ctoken.Lt: 7, ctoken.Gt: 7, ctoken.Le: 7, ctoken.Ge: 7,
	ctoken.Shl: 8, ctoken.Shr: 8,
	ctoken.Plus: 9, ctoken.Minus: 9,
	ctoken.Star: 10, ctoken.Slash: 10, ctoken.Percent: 10,
}

var compoundOps = map[ctoken.Kind]ctoken.Kind{
	ctoken.PlusAssign:    ctoken.Plus,
	ctoken.MinusAssign:   ctoken.Minus,
	ctoken.StarAssign:    ctoken.Star,
	ctoken.SlashAssign:   ctoken.Slash,
	ctoken.PercentAssign: ctoken.Percent,
	ctoken.AmpAssign:     ctoken.Amp,
	ctoken.PipeAssign:    ctoken.Pipe,
	ctoken.CaretAssign:   ctoken.Caret,
	ctoken.ShlAssign:     ctoken.Shl,
	ctoken.ShrAssign:     ctoken.Shr,
}

// parseExpr parses a full expression including the comma operator.
func (p *parser) parseExpr() (cast.Expr, error) {
	e, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	for p.at(ctoken.Comma) {
		pos := p.next().Pos
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		c := &cast.Comma{X: e, Y: rhs}
		c.P = pos
		e = c
	}
	return e, nil
}

// parseAssignExpr parses an assignment-expression.
func (p *parser) parseAssignExpr() (cast.Expr, error) {
	lhs, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	k := p.cur().Kind
	if k == ctoken.Assign {
		pos := p.next().Pos
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		a := &cast.Assign{Op: ctoken.Assign, L: lhs, R: rhs}
		a.P = pos
		return a, nil
	}
	if _, ok := compoundOps[k]; ok {
		pos := p.next().Pos
		rhs, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		a := &cast.Assign{Op: k, L: lhs, R: rhs}
		a.P = pos
		return a, nil
	}
	return lhs, nil
}

// parseCondExpr parses a conditional-expression (?:).
func (p *parser) parseCondExpr() (cast.Expr, error) {
	c, err := p.parseBinaryExpr(1)
	if err != nil {
		return nil, err
	}
	if !p.at(ctoken.Question) {
		return c, nil
	}
	pos := p.next().Pos
	thenE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.Colon); err != nil {
		return nil, err
	}
	elseE, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	e := &cast.Cond{C: c, Then: thenE, Else: elseE}
	e.P = pos
	return e, nil
}

// parseBinaryExpr climbs precedence from minPrec.
func (p *parser) parseBinaryExpr(minPrec int) (cast.Expr, error) {
	lhs, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		prec, ok := binPrec[k]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		pos := p.next().Pos
		rhs, err := p.parseBinaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		b := &cast.Binary{Op: k, X: lhs, Y: rhs}
		b.P = pos
		lhs = b
	}
}

// parseUnaryExpr parses prefix operators, casts, and sizeof.
func (p *parser) parseUnaryExpr() (cast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case ctoken.Plus, ctoken.Minus, ctoken.Not, ctoken.Tilde,
		ctoken.Star, ctoken.Amp, ctoken.Inc, ctoken.Dec:
		p.next()
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		u := &cast.Unary{Op: t.Kind, X: x}
		u.P = t.Pos
		return u, nil
	case ctoken.KwSizeof:
		p.next()
		if p.at(ctoken.LParen) && p.startsTypeName(p.peek()) {
			return p.parseSizeofType(t.Pos)
		}
		x, err := p.parseUnaryExpr()
		if err != nil {
			return nil, err
		}
		s := &cast.SizeofType{OfEx: x}
		s.P = t.Pos
		return s, nil
	case ctoken.LParen:
		// A cast iff the token after '(' begins a type name.
		if p.startsTypeName(p.peek()) {
			return p.parseCast(t.Pos)
		}
	}
	return p.parsePostfixExpr()
}

// startsTypeName reports whether tok begins a type name (used to
// disambiguate casts from parenthesized expressions).
func (p *parser) startsTypeName(tok ctoken.Token) bool {
	switch tok.Kind {
	case ctoken.KwVoid, ctoken.KwChar, ctoken.KwShort, ctoken.KwInt,
		ctoken.KwLong, ctoken.KwFloat, ctoken.KwDouble, ctoken.KwSigned,
		ctoken.KwUnsigned, ctoken.KwStruct, ctoken.KwUnion, ctoken.KwEnum,
		ctoken.KwConst, ctoken.KwVolatile:
		return true
	case ctoken.Ident:
		_, ok := p.typedefs[tok.Text]
		return ok
	}
	return false
}

func (p *parser) parseTypeName() (*ctypes.Type, error) {
	ds, err := p.parseDeclSpecs()
	if err != nil {
		return nil, err
	}
	name, typ, err := p.parseDeclarator(ds.base)
	if err != nil {
		return nil, err
	}
	if name != "" {
		return nil, p.errorf("unexpected name %q in type name", name)
	}
	return typ, nil
}

func (p *parser) parseSizeofType(pos ctoken.Pos) (cast.Expr, error) {
	p.next() // (
	typ, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, err
	}
	s := &cast.SizeofType{Of: typ}
	s.P = pos
	return s, nil
}

func (p *parser) parseCast(pos ctoken.Pos) (cast.Expr, error) {
	p.next() // (
	typ, err := p.parseTypeName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, err
	}
	x, err := p.parseUnaryExpr()
	if err != nil {
		return nil, err
	}
	c := &cast.Cast{To: typ, X: x}
	c.P = pos
	return c, nil
}

// parsePostfixExpr parses primary expressions followed by call, index,
// member, and postfix ++/-- suffixes.
func (p *parser) parsePostfixExpr() (cast.Expr, error) {
	e, err := p.parsePrimaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case ctoken.LParen:
			p.next()
			var args []cast.Expr
			if !p.at(ctoken.RParen) {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(ctoken.Comma) {
						break
					}
				}
			}
			if _, err := p.expect(ctoken.RParen); err != nil {
				return nil, err
			}
			c := &cast.Call{Target: e, Args: args}
			c.P = t.Pos
			e = c
		case ctoken.LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(ctoken.RBracket); err != nil {
				return nil, err
			}
			ix := &cast.Index{X: e, I: idx}
			ix.P = t.Pos
			e = ix
		case ctoken.Dot, ctoken.Arrow:
			p.next()
			nameTok, err := p.expect(ctoken.Ident)
			if err != nil {
				return nil, err
			}
			m := &cast.Member{X: e, Name: nameTok.Text, Arrow: t.Kind == ctoken.Arrow}
			m.P = t.Pos
			e = m
		case ctoken.Inc, ctoken.Dec:
			p.next()
			pf := &cast.Postfix{Op: t.Kind, X: e}
			pf.P = t.Pos
			e = pf
		default:
			return e, nil
		}
	}
}

// parsePrimaryExpr parses identifiers, literals, and parens.
func (p *parser) parsePrimaryExpr() (cast.Expr, error) {
	t := p.cur()
	switch t.Kind {
	case ctoken.Ident:
		p.next()
		id := &cast.Ident{Name: t.Text}
		id.P = t.Pos
		return id, nil
	case ctoken.IntLit, ctoken.CharLit:
		p.next()
		l := &cast.IntLit{Value: t.IntVal}
		l.P = t.Pos
		return l, nil
	case ctoken.FloatLit:
		p.next()
		l := &cast.FloatLit{Value: t.FloatVal}
		l.P = t.Pos
		return l, nil
	case ctoken.StringLit:
		p.next()
		l := &cast.StringLit{Value: t.StrVal}
		l.P = t.Pos
		return l, nil
	case ctoken.LParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ctoken.RParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errorf("expected expression, found %s", t)
}
