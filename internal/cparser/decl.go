package cparser

import (
	"softbound/internal/cast"
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
)

// parseUnit parses all top-level declarations.
func (p *parser) parseUnit() error {
	for !p.at(ctoken.EOF) {
		if p.accept(ctoken.Semi) {
			continue
		}
		if err := p.parseTopLevel(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseTopLevel() error {
	startPos := p.cur().Pos
	ds, err := p.parseDeclSpecs()
	if err != nil {
		return err
	}
	// Bare struct/union/enum declaration: "struct foo { ... };"
	if p.accept(ctoken.Semi) {
		return nil
	}
	name, typ, err := p.parseDeclarator(ds.base)
	if err != nil {
		return err
	}
	if ds.typedef {
		if name == "" {
			return p.errorf("typedef missing name")
		}
		p.typedefs[name] = typ
		for p.accept(ctoken.Comma) {
			n2, t2, err := p.parseDeclarator(ds.base)
			if err != nil {
				return err
			}
			p.typedefs[n2] = t2
		}
		_, err := p.expect(ctoken.Semi)
		return err
	}
	if typ.Kind == ctypes.Func {
		return p.parseFuncRest(startPos, name, typ, ds)
	}
	return p.parseGlobalRest(startPos, name, typ, ds)
}

// parseFuncRest handles a function prototype or definition whose declarator
// has already been parsed. Because parseDeclarator used parseParamTypes we
// re-derive parameter names by reparsing is unnecessary: parseDeclarator
// loses names, so for functions we instead detect the '(' early. To keep
// the grammar simple we reconstruct parameters from the recorded
// lastParams.
func (p *parser) parseFuncRest(pos ctoken.Pos, name string, typ *ctypes.Type, ds declSpecs) error {
	params := p.lastParams
	variadic := typ.Variadic
	fd := &cast.FuncDecl{
		NamePos:  pos,
		Name:     name,
		Ret:      typ.Elem,
		Params:   params,
		Variadic: variadic,
		Static:   ds.static,
	}
	if p.accept(ctoken.Semi) {
		p.unit.Funcs = append(p.unit.Funcs, fd)
		return nil
	}
	if !p.at(ctoken.LBrace) {
		return p.errorf("expected ; or { after function declarator")
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	fd.Body = body
	p.unit.Funcs = append(p.unit.Funcs, fd)
	return nil
}

func (p *parser) parseGlobalRest(pos ctoken.Pos, name string, typ *ctypes.Type, ds declSpecs) error {
	for {
		if name == "" {
			return p.errorf("declaration missing name")
		}
		vd := &cast.VarDecl{
			NamePos: pos,
			Name:    name,
			Type:    typ,
			Static:  ds.static,
			Extern:  ds.extern,
		}
		if p.accept(ctoken.Assign) {
			init, err := p.parseInit()
			if err != nil {
				return err
			}
			vd.Init = init
		}
		p.unit.Globals = append(p.unit.Globals, vd)
		if !p.accept(ctoken.Comma) {
			break
		}
		var err error
		name, typ, err = p.parseDeclarator(ds.base)
		if err != nil {
			return err
		}
	}
	_, err := p.expect(ctoken.Semi)
	return err
}

// parseInit parses an initializer (scalar expression or brace list).
func (p *parser) parseInit() (*cast.Init, error) {
	pos := p.cur().Pos
	if p.accept(ctoken.LBrace) {
		var list []*cast.Init
		for !p.at(ctoken.RBrace) {
			item, err := p.parseInit()
			if err != nil {
				return nil, err
			}
			list = append(list, item)
			if !p.accept(ctoken.Comma) {
				break
			}
		}
		if _, err := p.expect(ctoken.RBrace); err != nil {
			return nil, err
		}
		return &cast.Init{Pos: pos, List: list}, nil
	}
	e, err := p.parseAssignExpr()
	if err != nil {
		return nil, err
	}
	return &cast.Init{Pos: pos, Expr: e}, nil
}

// ---------------------------------------------------------------- statements

func (p *parser) parseBlock() (*cast.Block, error) {
	tok, err := p.expect(ctoken.LBrace)
	if err != nil {
		return nil, err
	}
	b := &cast.Block{}
	b.P = tok.Pos
	for !p.at(ctoken.RBrace) {
		if p.at(ctoken.EOF) {
			return nil, p.errorf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) parseStmt() (cast.Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case ctoken.LBrace:
		return p.parseBlock()
	case ctoken.KwIf:
		return p.parseIf()
	case ctoken.KwWhile:
		return p.parseWhile()
	case ctoken.KwDo:
		return p.parseDoWhile()
	case ctoken.KwFor:
		return p.parseFor()
	case ctoken.KwSwitch:
		return p.parseSwitch()
	case ctoken.KwReturn:
		p.next()
		r := &cast.Return{}
		r.P = t.Pos
		if !p.at(ctoken.Semi) {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.X = e
		}
		_, err := p.expect(ctoken.Semi)
		return r, err
	case ctoken.KwBreak:
		p.next()
		s := &cast.Break{}
		s.P = t.Pos
		_, err := p.expect(ctoken.Semi)
		return s, err
	case ctoken.KwContinue:
		p.next()
		s := &cast.Continue{}
		s.P = t.Pos
		_, err := p.expect(ctoken.Semi)
		return s, err
	case ctoken.KwGoto:
		p.next()
		lbl, err := p.expect(ctoken.Ident)
		if err != nil {
			return nil, err
		}
		s := &cast.Goto{Label: lbl.Text}
		s.P = t.Pos
		_, err = p.expect(ctoken.Semi)
		return s, err
	case ctoken.Semi:
		p.next()
		s := &cast.Block{}
		s.P = t.Pos
		return s, nil
	case ctoken.Ident:
		// Label?
		if p.peek().Kind == ctoken.Colon {
			p.next()
			p.next()
			inner, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			s := &cast.Labeled{Label: t.Text, Stmt: inner}
			s.P = t.Pos
			return s, nil
		}
	}
	if p.isTypeStart() {
		return p.parseDeclStmt()
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.Semi); err != nil {
		return nil, err
	}
	s := &cast.ExprStmt{X: e}
	s.P = t.Pos
	return s, nil
}

func (p *parser) parseDeclStmt() (cast.Stmt, error) {
	pos := p.cur().Pos
	ds, err := p.parseDeclSpecs()
	if err != nil {
		return nil, err
	}
	st := &cast.DeclStmt{}
	st.P = pos
	if p.accept(ctoken.Semi) {
		return st, nil // bare struct declaration inside a function
	}
	for {
		name, typ, err := p.parseDeclarator(ds.base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, p.errorf("declaration missing name")
		}
		vd := &cast.VarDecl{NamePos: pos, Name: name, Type: typ, Static: ds.static}
		if p.accept(ctoken.Assign) {
			init, err := p.parseInit()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		st.Decls = append(st.Decls, vd)
		if !p.accept(ctoken.Comma) {
			break
		}
	}
	if _, err := p.expect(ctoken.Semi); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseIf() (cast.Stmt, error) {
	pos := p.next().Pos // if
	if _, err := p.expect(ctoken.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, err
	}
	thenS, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &cast.If{Cond: cond, Then: thenS}
	s.P = pos
	if p.accept(ctoken.KwElse) {
		elseS, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = elseS
	}
	return s, nil
}

func (p *parser) parseWhile() (cast.Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(ctoken.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &cast.While{Cond: cond, Body: body}
	s.P = pos
	return s, nil
}

func (p *parser) parseDoWhile() (cast.Stmt, error) {
	pos := p.next().Pos
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.KwWhile); err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.Semi); err != nil {
		return nil, err
	}
	s := &cast.DoWhile{Body: body, Cond: cond}
	s.P = pos
	return s, nil
}

func (p *parser) parseFor() (cast.Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(ctoken.LParen); err != nil {
		return nil, err
	}
	s := &cast.For{}
	s.P = pos
	if !p.at(ctoken.Semi) {
		if p.isTypeStart() {
			d, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			es := &cast.ExprStmt{X: e}
			es.P = e.Pos()
			s.Init = es
			if _, err := p.expect(ctoken.Semi); err != nil {
				return nil, err
			}
		}
	} else {
		p.next()
	}
	if !p.at(ctoken.Semi) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = e
	}
	if _, err := p.expect(ctoken.Semi); err != nil {
		return nil, err
	}
	if !p.at(ctoken.RParen) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = e
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

func (p *parser) parseSwitch() (cast.Stmt, error) {
	pos := p.next().Pos
	if _, err := p.expect(ctoken.LParen); err != nil {
		return nil, err
	}
	tag, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.LBrace); err != nil {
		return nil, err
	}
	s := &cast.Switch{Tag: tag}
	s.P = pos
	for !p.at(ctoken.RBrace) {
		var sc cast.SwitchCase
		sc.Pos = p.cur().Pos
		switch p.cur().Kind {
		case ctoken.KwCase:
			p.next()
			v, err := p.parseConstExpr()
			if err != nil {
				return nil, err
			}
			sc.Value = v
		case ctoken.KwDefault:
			p.next()
			sc.IsDefault = true
		default:
			return nil, p.errorf("expected case or default in switch, found %s", p.cur())
		}
		if _, err := p.expect(ctoken.Colon); err != nil {
			return nil, err
		}
		for !p.at(ctoken.KwCase) && !p.at(ctoken.KwDefault) && !p.at(ctoken.RBrace) {
			st, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			sc.Body = append(sc.Body, st)
		}
		s.Cases = append(s.Cases, sc)
	}
	p.next() // }
	return s, nil
}
