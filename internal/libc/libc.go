// Package libc provides the C runtime library for the pipeline, in two
// layers that mirror the paper's treatment of libraries (§5.2):
//
//   - Prototypes declares the functions implemented as VM builtins with
//     metadata-aware wrappers (allocation, raw memory ops, I/O, math,
//     setjmp/longjmp) — the "library wrappers" of the paper.
//   - Source implements the string/ctype/conversion functions in the C
//     subset itself. These are compiled and *instrumented by SoftBound
//     like any user code*, demonstrating the paper's claim that library
//     code can be recompiled with SoftBound and linked, extending
//     checking into the library: an overflowing strcpy is caught inside
//     strcpy by the dst pointer's own metadata.
package libc

// Prototypes declares the builtin (VM-implemented) runtime functions.
const Prototypes = `
/* Allocation. */
void* malloc(unsigned long size);
void* calloc(unsigned long n, unsigned long size);
void* realloc(void* p, unsigned long size);
void free(void* p);

/* Raw memory. */
void* memcpy(void* dst, void* src, unsigned long n);
void* memmove(void* dst, void* src, unsigned long n);
void* memset(void* dst, int c, unsigned long n);
int memcmp(void* a, void* b, unsigned long n);

/* I/O. */
int printf(char* fmt, ...);
int sprintf(char* dst, char* fmt, ...);
int puts(char* s);
int putchar(int c);

/* Process control. */
void exit(int code);
void abort(void);

/* Non-local jumps: jmp_buf is a caller-provided long[4]. */
int setjmp(long* env);
void longjmp(long* env, int val);

/* Misc. */
int rand(void);
void srand(unsigned int seed);
long clock(void);
long time(long* t);

/* SoftBound extension (paper 5.2): explicitly set a pointer's bounds. */
void* setbound(void* p, unsigned long size);

/* Variable-argument decoding (paper 5.2): the preprocessed forms of the
   va_* macros. Decoding past the passed arguments is checked under
   SoftBound; va_arg_ptr carries the argument's bounds metadata. */
void va_start(long* ap, ...);
void va_end(long* ap);
int va_arg_int(long* ap);
long va_arg_long(long* ap);
double va_arg_double(long* ap);
void* va_arg_ptr(long* ap);

/* Math. */
double sqrt(double x);
double fabs(double x);
double pow(double x, double y);
double sin(double x);
double cos(double x);
double tan(double x);
double exp(double x);
double log(double x);
double floor(double x);
double ceil(double x);
double atan(double x);
double atan2(double y, double x);
double fmod(double x, double y);
`

// Source implements the C-coded portion of the library. It is compiled
// with the same front end and instrumented with the same SoftBound pass
// as user code.
const Source = `
unsigned long strlen(char* s) {
    char* p = s;
    while (*p)
        p++;
    return (unsigned long)(p - s);
}

char* strcpy(char* dst, char* src) {
    char* d = dst;
    while ((*d = *src) != 0) {
        d++;
        src++;
    }
    return dst;
}

char* strncpy(char* dst, char* src, unsigned long n) {
    unsigned long i;
    for (i = 0; i < n && src[i] != 0; i++)
        dst[i] = src[i];
    for (; i < n; i++)
        dst[i] = 0;
    return dst;
}

char* strcat(char* dst, char* src) {
    char* d = dst;
    while (*d)
        d++;
    while ((*d = *src) != 0) {
        d++;
        src++;
    }
    return dst;
}

char* strncat(char* dst, char* src, unsigned long n) {
    char* d = dst;
    unsigned long i;
    while (*d)
        d++;
    for (i = 0; i < n && src[i] != 0; i++)
        d[i] = src[i];
    d[i] = 0;
    return dst;
}

int strcmp(char* a, char* b) {
    while (*a && *a == *b) {
        a++;
        b++;
    }
    return (int)(unsigned char)*a - (int)(unsigned char)*b;
}

int strncmp(char* a, char* b, unsigned long n) {
    unsigned long i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i])
            return (int)(unsigned char)a[i] - (int)(unsigned char)b[i];
        if (a[i] == 0)
            return 0;
    }
    return 0;
}

char* strchr(char* s, int c) {
    while (*s) {
        if (*s == (char)c)
            return s;
        s++;
    }
    if (c == 0)
        return s;
    return (char*)0;
}

char* strrchr(char* s, int c) {
    char* found = (char*)0;
    while (*s) {
        if (*s == (char)c)
            found = s;
        s++;
    }
    if (c == 0)
        return s;
    return found;
}

char* strstr(char* hay, char* needle) {
    unsigned long nl = strlen(needle);
    if (nl == 0)
        return hay;
    while (*hay) {
        if (*hay == *needle && strncmp(hay, needle, nl) == 0)
            return hay;
        hay++;
    }
    return (char*)0;
}

char* strdup(char* s) {
    unsigned long n = strlen(s) + 1;
    char* p = (char*)malloc(n);
    if (p)
        memcpy(p, s, n);
    return p;
}

int isdigit(int c) { return c >= '0' && c <= '9'; }
int isalpha(int c) { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'); }
int isalnum(int c) { return isdigit(c) || isalpha(c); }
int isspace(int c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == 11 || c == 12; }
int isupper(int c) { return c >= 'A' && c <= 'Z'; }
int islower(int c) { return c >= 'a' && c <= 'z'; }
int toupper(int c) { if (islower(c)) return c - 'a' + 'A'; return c; }
int tolower(int c) { if (isupper(c)) return c - 'A' + 'a'; return c; }

int abs(int x) { if (x < 0) return -x; return x; }
long labs(long x) { if (x < 0) return -x; return x; }

int atoi(char* s) {
    int v = 0;
    int sign = 1;
    while (isspace((int)*s))
        s++;
    if (*s == '-') {
        sign = -1;
        s++;
    } else if (*s == '+') {
        s++;
    }
    while (isdigit((int)*s)) {
        v = v * 10 + (*s - '0');
        s++;
    }
    return v * sign;
}

long atol(char* s) {
    long v = 0;
    long sign = 1;
    while (isspace((int)*s))
        s++;
    if (*s == '-') {
        sign = -1;
        s++;
    } else if (*s == '+') {
        s++;
    }
    while (isdigit((int)*s)) {
        v = v * 10 + (long)(*s - '0');
        s++;
    }
    return v * sign;
}
`

// Unit returns the complete libc translation unit source.
func Unit() string { return Prototypes + Source }
