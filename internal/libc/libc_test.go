package libc_test

import (
	"fmt"
	"testing"

	"softbound/internal/driver"
)

// run executes a C main body (with result returned via exit code) under
// full checking, so the libc implementations are exercised *instrumented*.
func run(t *testing.T, body string) int64 {
	t.Helper()
	res, err := driver.RunSource("int main(void) {\n"+body+"\n}",
		driver.DefaultConfig(driver.ModeFull))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("run: %v (output %q)", res.Err, res.Output)
	}
	return res.ExitCode
}

func expect(t *testing.T, body string, want int64) {
	t.Helper()
	if got := run(t, body); got != want {
		t.Errorf("got %d want %d for:\n%s", got, want, body)
	}
}

func TestStrlen(t *testing.T) {
	expect(t, `return (int)strlen("");`, 0)
	expect(t, `return (int)strlen("hello");`, 5)
}

func TestStrcpyStrncpy(t *testing.T) {
	expect(t, `
char buf[16];
strcpy(buf, "abc");
return buf[0] == 'a' && buf[2] == 'c' && buf[3] == 0;`, 1)
	expect(t, `
char buf[8];
strncpy(buf, "abcdef", 3);
return buf[2] == 'c' && buf[3] == 0 && buf[7] == 0;`, 1)
}

func TestStrcatStrncat(t *testing.T) {
	expect(t, `
char buf[16];
strcpy(buf, "ab");
strcat(buf, "cd");
return strcmp(buf, "abcd") == 0;`, 1)
	expect(t, `
char buf[16];
strcpy(buf, "ab");
strncat(buf, "cdef", 2);
return strcmp(buf, "abcd") == 0;`, 1)
}

func TestStrcmpFamily(t *testing.T) {
	expect(t, `return strcmp("abc", "abc") == 0;`, 1)
	expect(t, `return strcmp("abc", "abd") < 0;`, 1)
	expect(t, `return strcmp("b", "a") > 0;`, 1)
	expect(t, `return strncmp("abcX", "abcY", 3) == 0;`, 1)
}

func TestStrchrStrrchrStrstr(t *testing.T) {
	expect(t, `
char* s = "hello";
char* p = strchr(s, 'l');
return p == s + 2;`, 1)
	expect(t, `
char* s = "hello";
return strrchr(s, 'l') == s + 3;`, 1)
	expect(t, `return strchr("abc", 'z') == (char*)0;`, 1)
	expect(t, `
char* s = "needle in haystack";
return strstr(s, "in") == s + 7;`, 1)
	expect(t, `return strstr("abc", "zzz") == (char*)0;`, 1)
}

func TestStrdup(t *testing.T) {
	expect(t, `
char* d = strdup("copy me");
return strcmp(d, "copy me") == 0;`, 1)
}

func TestCtype(t *testing.T) {
	expect(t, `return isdigit('5') && !isdigit('a');`, 1)
	expect(t, `return isalpha('x') && !isalpha('1');`, 1)
	expect(t, `return isspace(' ') && isspace('\n') && !isspace('x');`, 1)
	expect(t, `return toupper('a') == 'A' && toupper('A') == 'A';`, 1)
	expect(t, `return tolower('Z') == 'z' && tolower('3') == '3';`, 1)
}

func TestAtoiAtolAbs(t *testing.T) {
	expect(t, `return atoi("123");`, 123)
	expect(t, `return atoi("  -45xyz");`, -45)
	expect(t, `return atoi("+7");`, 7)
	expect(t, `return (int)atol("100000");`, 100000)
	expect(t, `return abs(-9) + abs(9);`, 18)
	expect(t, `return (int)labs(-12345L);`, 12345)
}

// TestLibcCheckingCatchesOverflows is the payoff of compiling libc with
// SoftBound (paper §5.2): the overflow is detected *inside* the library
// function, using the caller's bounds.
func TestLibcCheckingCatchesOverflows(t *testing.T) {
	cases := []string{
		`char buf[4]; strcpy(buf, "way too long"); return 0;`,
		`char buf[4]; strcat(buf, "0123456789"); return 0;`,
		`char a[2]; strncpy(a, "xx", 5); return 0;`,
	}
	for i, body := range cases {
		src := fmt.Sprintf("int main(void) {\nchar pad[64];\npad[0]=0;\n%s\n}", body)
		res, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeFull))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if res.Violation == nil {
			t.Errorf("case %d: libc overflow not caught (err=%v)", i, res.Err)
		}
	}
}
