package ctypes

import (
	"testing"
	"testing/quick"
)

func TestScalarSizes(t *testing.T) {
	cases := []struct {
		t    *Type
		size int64
		algn int64
	}{
		{CharType, 1, 1},
		{UCharType, 1, 1},
		{ShortType, 2, 2},
		{IntType, 4, 4},
		{UIntType, 4, 4},
		{LongType, 8, 8},
		{FloatType, 4, 4},
		{DoubleType, 8, 8},
		{PointerTo(IntType), 8, 8},
		{PointerTo(PointerTo(CharType)), 8, 8},
		{ArrayOf(IntType, 10), 40, 4},
		{ArrayOf(ArrayOf(DoubleType, 3), 2), 48, 8},
	}
	for _, c := range cases {
		if got := c.t.Size(); got != c.size {
			t.Errorf("%s: size %d want %d", c.t, got, c.size)
		}
		if got := c.t.Align(); got != c.algn {
			t.Errorf("%s: align %d want %d", c.t, got, c.algn)
		}
	}
}

func TestStructLayout(t *testing.T) {
	// struct { char c; int i; char d; long l; } — classic padding case.
	st := NewStruct("s", false)
	err := st.Complete([]Field{
		{Name: "c", Type: CharType},
		{Name: "i", Type: IntType},
		{Name: "d", Type: CharType},
		{Name: "l", Type: LongType},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantOffsets := map[string]int64{"c": 0, "i": 4, "d": 8, "l": 16}
	for name, off := range wantOffsets {
		if f := st.FieldByName(name); f == nil || f.Offset != off {
			t.Errorf("field %s: %+v want offset %d", name, f, off)
		}
	}
	if st.Size() != 24 {
		t.Errorf("size %d want 24", st.Size())
	}
	if st.Align() != 8 {
		t.Errorf("align %d want 8", st.Align())
	}
}

func TestUnionLayout(t *testing.T) {
	u := NewStruct("u", true)
	err := u.Complete([]Field{
		{Name: "i", Type: IntType},
		{Name: "d", Type: DoubleType},
		{Name: "c", Type: ArrayOf(CharType, 3)},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range u.Fields {
		if f.Offset != 0 {
			t.Errorf("union field %s at offset %d", f.Name, f.Offset)
		}
	}
	if u.Size() != 8 {
		t.Errorf("union size %d want 8", u.Size())
	}
}

func TestStructErrors(t *testing.T) {
	st := NewStruct("s", false)
	if err := st.Complete([]Field{
		{Name: "a", Type: IntType},
		{Name: "a", Type: IntType},
	}); err == nil {
		t.Error("duplicate field accepted")
	}
	st2 := NewStruct("s2", false)
	if err := st2.Complete([]Field{{Name: "v", Type: VoidType}}); err == nil {
		t.Error("incomplete member accepted")
	}
	st3 := NewStruct("s3", false)
	if err := st3.Complete(nil); err != nil {
		t.Errorf("empty struct: %v", err)
	}
	if err := st3.Complete(nil); err == nil {
		t.Error("redefinition accepted")
	}
}

func TestRecursiveStructViaPointer(t *testing.T) {
	node := NewStruct("node", false)
	err := node.Complete([]Field{
		{Name: "v", Type: IntType},
		{Name: "next", Type: PointerTo(node)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if node.Size() != 16 {
		t.Errorf("size %d want 16", node.Size())
	}
	if !node.ContainsPointer() {
		t.Error("ContainsPointer false")
	}
}

func TestContainsPointer(t *testing.T) {
	if IntType.ContainsPointer() {
		t.Error("int contains pointer")
	}
	if !ArrayOf(PointerTo(CharType), 4).ContainsPointer() {
		t.Error("array of pointers should contain pointer")
	}
	st := NewStruct("s", false)
	st.Complete([]Field{{Name: "a", Type: ArrayOf(IntType, 4)}})
	if st.ContainsPointer() {
		t.Error("scalar struct contains pointer")
	}
}

func TestDecay(t *testing.T) {
	arr := ArrayOf(IntType, 5)
	if d := arr.Decay(); !d.IsPointer() || d.Elem != IntType {
		t.Errorf("array decay: %s", d)
	}
	fn := FuncOf(IntType, nil, false)
	if d := fn.Decay(); !d.IsFuncPointer() {
		t.Errorf("func decay: %s", d)
	}
	if d := IntType.Decay(); d != IntType {
		t.Errorf("int decay changed: %s", d)
	}
}

func TestUsualArithmetic(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{CharType, CharType, IntType},       // promotion
		{ShortType, IntType, IntType},       //
		{IntType, LongType, LongType},       // rank
		{IntType, UIntType, UIntType},       // unsigned wins at equal rank
		{IntType, DoubleType, DoubleType},   // float wins
		{FloatType, IntType, FloatType},     //
		{FloatType, DoubleType, DoubleType}, //
		{ULongType, LongType, ULongType},    //
	}
	for _, c := range cases {
		got := UsualArithmetic(c.a, c.b)
		if got.Kind != c.want.Kind || got.Unsigned != c.want.Unsigned {
			t.Errorf("UsualArithmetic(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestUsualArithmeticCommutes(t *testing.T) {
	types := []*Type{CharType, UCharType, ShortType, IntType, UIntType,
		LongType, ULongType, FloatType, DoubleType}
	f := func(i, j uint8) bool {
		a := types[int(i)%len(types)]
		b := types[int(j)%len(types)]
		x := UsualArithmetic(a, b)
		y := UsualArithmetic(b, a)
		return x.Kind == y.Kind && x.Unsigned == y.Unsigned
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualAndAssignCompatible(t *testing.T) {
	if !Equal(PointerTo(IntType), PointerTo(IntType)) {
		t.Error("identical pointer types unequal")
	}
	if Equal(PointerTo(IntType), PointerTo(CharType)) {
		t.Error("different pointer types equal")
	}
	if !AssignCompatible(PointerTo(IntType), PointerTo(CharType)) {
		t.Error("wild pointer conversion rejected")
	}
	if !AssignCompatible(PointerTo(IntType), IntType) {
		t.Error("int->pointer rejected (paper allows with NULL bounds)")
	}
	st := NewStruct("s", false)
	st.Complete([]Field{{Name: "x", Type: IntType}})
	if AssignCompatible(IntType, st) {
		t.Error("struct->int accepted")
	}
}

func TestFuncTypeEquality(t *testing.T) {
	f1 := FuncOf(IntType, []*Type{PointerTo(CharType)}, false)
	f2 := FuncOf(IntType, []*Type{PointerTo(CharType)}, false)
	f3 := FuncOf(IntType, []*Type{PointerTo(CharType)}, true)
	if !Equal(f1, f2) {
		t.Error("identical func types unequal")
	}
	if Equal(f1, f3) {
		t.Error("variadic difference ignored")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]*Type{
		"int":          IntType,
		"unsigned int": UIntType,
		"char*":        PointerTo(CharType),
		"int[3]":       ArrayOf(IntType, 3),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q want %q", got, want)
		}
	}
}

// TestLayoutInvariants property-checks struct layout: offsets are
// aligned, non-overlapping, increasing, and covered by the struct size.
func TestLayoutInvariants(t *testing.T) {
	scalars := []*Type{CharType, ShortType, IntType, LongType, FloatType,
		DoubleType, PointerTo(IntType)}
	f := func(picks []uint8) bool {
		if len(picks) == 0 || len(picks) > 12 {
			return true
		}
		var fields []Field
		for i, p := range picks {
			fields = append(fields, Field{
				Name: string(rune('a' + i)),
				Type: scalars[int(p)%len(scalars)],
			})
		}
		st := NewStruct("q", false)
		if err := st.Complete(fields); err != nil {
			return false
		}
		var prevEnd int64
		for _, fl := range st.Fields {
			if fl.Offset%fl.Type.Align() != 0 {
				return false // misaligned
			}
			if fl.Offset < prevEnd {
				return false // overlap
			}
			prevEnd = fl.Offset + fl.Type.Size()
		}
		return st.Size() >= prevEnd && st.Size()%st.Align() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
