// Package ctypes implements the C type system used by the SoftBound front
// end: sizes, alignment, struct layout, and the usual-arithmetic-conversion
// and compatibility rules needed by the typechecker and IR lowering.
//
// The target model is LP64 little-endian (the paper evaluates on 64-bit
// x86): char=1, short=2, int=4, long=8, pointer=8, float=4, double=8.
package ctypes

import (
	"fmt"
	"strings"
)

// Kind discriminates the type variants.
type Kind int

// Type kinds.
const (
	Void Kind = iota
	Char
	Short
	Int
	Long
	Float
	Double
	Pointer
	Array
	Struct // also used for unions (IsUnion set)
	Func
	Enum
)

// Target sizes in bytes (LP64).
const (
	PtrSize  = 8
	WordSize = 8
)

// Type describes a C type. Types are immutable after construction except
// that struct bodies may be completed in place (to permit recursive types,
// mirroring the paper's "named structure types").
type Type struct {
	Kind     Kind
	Unsigned bool // for Char/Short/Int/Long

	// Pointer and Array element type; Func return type.
	Elem *Type

	// Array length in elements. Negative means incomplete ([]).
	ArrayLen int64

	// Struct/union.
	StructName string // tag; "" for anonymous
	Fields     []Field
	IsUnion    bool
	complete   bool
	size       int64
	align      int64

	// Func.
	Params   []*Type
	Variadic bool
}

// Field is a struct or union member.
type Field struct {
	Name   string
	Type   *Type
	Offset int64 // byte offset within the struct (0 for union members)
}

// Singleton basic types. These are shared; never mutate them.
var (
	VoidType   = &Type{Kind: Void}
	CharType   = &Type{Kind: Char}
	UCharType  = &Type{Kind: Char, Unsigned: true}
	ShortType  = &Type{Kind: Short}
	UShortType = &Type{Kind: Short, Unsigned: true}
	IntType    = &Type{Kind: Int}
	UIntType   = &Type{Kind: Int, Unsigned: true}
	LongType   = &Type{Kind: Long}
	ULongType  = &Type{Kind: Long, Unsigned: true}
	FloatType  = &Type{Kind: Float}
	DoubleType = &Type{Kind: Double}
)

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Pointer, Elem: elem} }

// ArrayOf returns an array type of n elems.
func ArrayOf(elem *Type, n int64) *Type {
	return &Type{Kind: Array, Elem: elem, ArrayLen: n}
}

// IncompleteArrayOf returns an array type of unknown length.
func IncompleteArrayOf(elem *Type) *Type {
	return &Type{Kind: Array, Elem: elem, ArrayLen: -1}
}

// FuncOf returns a function type.
func FuncOf(ret *Type, params []*Type, variadic bool) *Type {
	return &Type{Kind: Func, Elem: ret, Params: params, Variadic: variadic}
}

// NewStruct returns an incomplete struct (or union) type with the given tag.
func NewStruct(tag string, isUnion bool) *Type {
	return &Type{Kind: Struct, StructName: tag, IsUnion: isUnion}
}

// Complete lays out the given fields into t, computing offsets, size, and
// alignment. It returns an error on duplicate field names or incomplete
// member types.
func (t *Type) Complete(fields []Field) error {
	if t.Kind != Struct {
		return fmt.Errorf("Complete on non-struct type %s", t)
	}
	if t.complete {
		return fmt.Errorf("struct %s redefined", t.StructName)
	}
	seen := make(map[string]bool)
	var off, maxAlign, maxSize int64
	maxAlign = 1
	for i := range fields {
		f := &fields[i]
		if seen[f.Name] {
			return fmt.Errorf("duplicate field %q in struct %s", f.Name, t.StructName)
		}
		seen[f.Name] = true
		if !f.Type.IsComplete() {
			return fmt.Errorf("field %q has incomplete type %s", f.Name, f.Type)
		}
		a := f.Type.Align()
		if a > maxAlign {
			maxAlign = a
		}
		if t.IsUnion {
			f.Offset = 0
			if sz := f.Type.Size(); sz > maxSize {
				maxSize = sz
			}
		} else {
			off = alignUp(off, a)
			f.Offset = off
			off += f.Type.Size()
		}
	}
	if t.IsUnion {
		off = maxSize
	}
	t.Fields = fields
	t.size = alignUp(off, maxAlign)
	if t.size == 0 {
		t.size = 1 // empty structs occupy one byte, as in practice
	}
	t.align = maxAlign
	t.complete = true
	return nil
}

func alignUp(n, a int64) int64 { return (n + a - 1) / a * a }

// IsComplete reports whether the type's size is known.
func (t *Type) IsComplete() bool {
	switch t.Kind {
	case Void:
		return false
	case Struct:
		return t.complete
	case Array:
		return t.ArrayLen >= 0 && t.Elem.IsComplete()
	}
	return true
}

// Size returns the size of the type in bytes. Incomplete types and
// functions have size 0; void has size 1 for the benefit of void* pointer
// arithmetic (a GCC extension the benchmarks rely on).
func (t *Type) Size() int64 {
	switch t.Kind {
	case Void:
		return 1
	case Char:
		return 1
	case Short:
		return 2
	case Int, Enum:
		return 4
	case Long:
		return 8
	case Float:
		return 4
	case Double:
		return 8
	case Pointer:
		return PtrSize
	case Array:
		if t.ArrayLen < 0 {
			return 0
		}
		return t.ArrayLen * t.Elem.Size()
	case Struct:
		return t.size
	case Func:
		return 0
	}
	return 0
}

// Align returns the alignment requirement of the type in bytes.
func (t *Type) Align() int64 {
	switch t.Kind {
	case Array:
		return t.Elem.Align()
	case Struct:
		if t.align == 0 {
			return 1
		}
		return t.align
	case Void, Char:
		return 1
	default:
		return t.Size()
	}
}

// FieldByName returns the field with the given name, or nil.
func (t *Type) FieldByName(name string) *Field {
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return &t.Fields[i]
		}
	}
	return nil
}

// Predicates.

// IsInteger reports whether t is an integer (or enum) type.
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case Char, Short, Int, Long, Enum:
		return true
	}
	return false
}

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == Float || t.Kind == Double }

// IsArithmetic reports whether t is integer or floating.
func (t *Type) IsArithmetic() bool { return t.IsInteger() || t.IsFloat() }

// IsScalar reports whether t is arithmetic or a pointer.
func (t *Type) IsScalar() bool { return t.IsArithmetic() || t.Kind == Pointer }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == Pointer }

// IsVoidPointer reports whether t is void*.
func (t *Type) IsVoidPointer() bool {
	return t.Kind == Pointer && t.Elem.Kind == Void
}

// IsFuncPointer reports whether t is a pointer to function.
func (t *Type) IsFuncPointer() bool {
	return t.Kind == Pointer && t.Elem.Kind == Func
}

// ContainsPointer reports whether a value of type t contains any pointer
// (directly or within a struct/array/union). SoftBound uses this to decide
// which frees/returns must clear metadata and whether memcpy must copy
// metadata (paper §5.2).
func (t *Type) ContainsPointer() bool {
	switch t.Kind {
	case Pointer:
		return true
	case Array:
		return t.Elem.ContainsPointer()
	case Struct:
		for i := range t.Fields {
			if t.Fields[i].Type.ContainsPointer() {
				return true
			}
		}
	}
	return false
}

// Decay converts array and function types to the pointer types they decay
// to in expression contexts; other types pass through.
func (t *Type) Decay() *Type {
	switch t.Kind {
	case Array:
		return PointerTo(t.Elem)
	case Func:
		return PointerTo(t)
	}
	return t
}

// IntegerRank orders integer types for the usual arithmetic conversions.
func (t *Type) IntegerRank() int {
	switch t.Kind {
	case Char:
		return 1
	case Short:
		return 2
	case Int, Enum:
		return 3
	case Long:
		return 4
	}
	return 0
}

// Promote applies the integer promotions: types narrower than int promote
// to int.
func (t *Type) Promote() *Type {
	if t.IsInteger() && t.IntegerRank() < IntType.IntegerRank() {
		return IntType
	}
	if t.Kind == Enum {
		return IntType
	}
	return t
}

// UsualArithmetic returns the common type of a binary arithmetic operation
// on a and b per C's usual arithmetic conversions.
func UsualArithmetic(a, b *Type) *Type {
	if a.Kind == Double || b.Kind == Double {
		return DoubleType
	}
	if a.Kind == Float || b.Kind == Float {
		return FloatType
	}
	a, b = a.Promote(), b.Promote()
	if a.IntegerRank() == b.IntegerRank() {
		if a.Unsigned || b.Unsigned {
			return &Type{Kind: a.Kind, Unsigned: true}
		}
		return a
	}
	if a.IntegerRank() > b.IntegerRank() {
		return a
	}
	return b
}

// Equal reports structural type equality. Named structs compare by
// identity (they are interned per translation unit by the parser).
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind || a.Unsigned != b.Unsigned {
		return false
	}
	switch a.Kind {
	case Pointer:
		return Equal(a.Elem, b.Elem)
	case Array:
		return a.ArrayLen == b.ArrayLen && Equal(a.Elem, b.Elem)
	case Struct:
		return false // distinct struct objects are distinct types
	case Func:
		if len(a.Params) != len(b.Params) || a.Variadic != b.Variadic {
			return false
		}
		if !Equal(a.Elem, b.Elem) {
			return false
		}
		for i := range a.Params {
			if !Equal(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return true
}

// AssignCompatible reports whether a value of type src may be assigned to
// dst without an explicit cast (possibly with an implicit conversion). The
// subset is permissive about pointer conversions — SoftBound explicitly
// supports arbitrary casts — but we still warn-level reject obvious
// nonsense like struct-to-int.
func AssignCompatible(dst, src *Type) bool {
	dst, src = dst.Decay(), src.Decay()
	if Equal(dst, src) {
		return true
	}
	if dst.IsArithmetic() && src.IsArithmetic() {
		return true
	}
	if dst.IsPointer() && src.IsPointer() {
		return true // arbitrary pointer conversions allowed (wild casts)
	}
	if dst.IsPointer() && src.IsInteger() {
		return true // integer→pointer: metadata becomes NULL bounds (§5.2)
	}
	if dst.IsInteger() && src.IsPointer() {
		return true
	}
	if dst.Kind == Struct && src.Kind == Struct && dst == src {
		return true
	}
	return false
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Void:
		return "void"
	case Char, Short, Int, Long:
		name := map[Kind]string{Char: "char", Short: "short", Int: "int", Long: "long"}[t.Kind]
		if t.Unsigned {
			return "unsigned " + name
		}
		return name
	case Float:
		return "float"
	case Double:
		return "double"
	case Enum:
		return "enum"
	case Pointer:
		return t.Elem.String() + "*"
	case Array:
		if t.ArrayLen < 0 {
			return t.Elem.String() + "[]"
		}
		return fmt.Sprintf("%s[%d]", t.Elem, t.ArrayLen)
	case Struct:
		kw := "struct"
		if t.IsUnion {
			kw = "union"
		}
		if t.StructName != "" {
			return kw + " " + t.StructName
		}
		var b strings.Builder
		b.WriteString(kw + " {")
		for i := range t.Fields {
			if i > 0 {
				b.WriteString("; ")
			}
			fmt.Fprintf(&b, "%s %s", t.Fields[i].Type, t.Fields[i].Name)
		}
		b.WriteString("}")
		return b.String()
	case Func:
		var b strings.Builder
		b.WriteString(t.Elem.String())
		b.WriteString(" (")
		for i, p := range t.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		if t.Variadic {
			if len(t.Params) > 0 {
				b.WriteString(", ")
			}
			b.WriteString("...")
		}
		b.WriteString(")")
		return b.String()
	}
	return fmt.Sprintf("type(%d)", t.Kind)
}
