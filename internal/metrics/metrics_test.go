package metrics

import (
	"strings"
	"testing"
)

func TestDerivedQuantities(t *testing.T) {
	s := &Stats{
		Loads: 60, Stores: 40,
		PtrLoads: 20, PtrStores: 5,
		SimInsts: 150,
	}
	if s.MemOps() != 100 {
		t.Errorf("MemOps = %d", s.MemOps())
	}
	if s.PtrMemOps() != 25 {
		t.Errorf("PtrMemOps = %d", s.PtrMemOps())
	}
	if got := s.PtrMemFrac(); got != 0.25 {
		t.Errorf("PtrMemFrac = %f", got)
	}
	base := &Stats{SimInsts: 100}
	if got := s.Overhead(base); got != 0.5 {
		t.Errorf("Overhead = %f", got)
	}
}

func TestZeroSafety(t *testing.T) {
	s := &Stats{}
	if s.PtrMemFrac() != 0 {
		t.Error("PtrMemFrac on empty stats")
	}
	if s.Overhead(&Stats{}) != 0 {
		t.Error("Overhead against zero baseline")
	}
}

func TestStringIncludesHeadlines(t *testing.T) {
	s := &Stats{Insts: 5, SimInsts: 9, Loads: 2, PtrLoads: 1, Checks: 3}
	out := s.String()
	for _, frag := range []string{"insts=5", "sim=9", "checks=3"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() missing %q: %s", frag, out)
		}
	}
}
