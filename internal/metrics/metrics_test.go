package metrics

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestDerivedQuantities(t *testing.T) {
	s := &Stats{
		Loads: 60, Stores: 40,
		PtrLoads: 20, PtrStores: 5,
		SimInsts: 150,
	}
	if s.MemOps() != 100 {
		t.Errorf("MemOps = %d", s.MemOps())
	}
	if s.PtrMemOps() != 25 {
		t.Errorf("PtrMemOps = %d", s.PtrMemOps())
	}
	if got := s.PtrMemFrac(); got != 0.25 {
		t.Errorf("PtrMemFrac = %f", got)
	}
	base := &Stats{SimInsts: 100}
	if got := s.Overhead(base); got != 0.5 {
		t.Errorf("Overhead = %f", got)
	}
}

func TestZeroSafety(t *testing.T) {
	s := &Stats{}
	if s.PtrMemFrac() != 0 {
		t.Error("PtrMemFrac on empty stats")
	}
	if s.Overhead(&Stats{}) != 0 {
		t.Error("Overhead against zero baseline")
	}
}

func TestReportRoundTrip(t *testing.T) {
	s := &Stats{
		Insts: 100, SimInsts: 180, Loads: 60, Stores: 40,
		PtrLoads: 20, PtrStores: 5, Checks: 30, MetaLoads: 25,
		MetaStores: 7, Mallocs: 3, MetaBytes: 4096,
	}
	r := s.Report()
	if r.Insts != 100 || r.SimInsts != 180 || r.MetaBytes != 4096 {
		t.Errorf("Report dropped counters: %+v", r)
	}
	if r.PtrMemFrac != 0.25 {
		t.Errorf("Report.PtrMemFrac = %f", r.PtrMemFrac)
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("JSON round trip changed report: %+v != %+v", back, r)
	}
	// The wire names are part of the BENCH.json schema contract.
	for _, key := range []string{`"sim_insts"`, `"ptr_mem_frac"`, `"meta_bytes"`} {
		if !strings.Contains(string(blob), key) {
			t.Errorf("schema key %s missing from %s", key, blob)
		}
	}
}

func TestPhaseTimer(t *testing.T) {
	var pt PhaseTimer
	done := pt.Start("compile")
	time.Sleep(time.Millisecond)
	done()
	pt.Time("execute", func() { time.Sleep(time.Millisecond) })
	phases := pt.Phases()
	if len(phases) != 2 || phases[0].Phase != "compile" || phases[1].Phase != "execute" {
		t.Fatalf("phases = %+v", phases)
	}
	for _, p := range phases {
		if p.Nanos <= 0 {
			t.Errorf("phase %s has non-positive duration %d", p.Phase, p.Nanos)
		}
	}
	if pt.Total() < phases[0].Duration() {
		t.Errorf("Total %v < first phase %v", pt.Total(), phases[0].Duration())
	}
}

func TestStringIncludesHeadlines(t *testing.T) {
	s := &Stats{Insts: 5, SimInsts: 9, Loads: 2, PtrLoads: 1, Checks: 3}
	out := s.String()
	for _, frag := range []string{"insts=5", "sim=9", "checks=3"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String() missing %q: %s", frag, out)
		}
	}
}
