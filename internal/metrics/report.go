package metrics

import "time"

// Report is the JSON-marshalable snapshot of a run's Stats. Field names
// form the stable BENCH.json vocabulary, so renames here are schema
// changes; derived quantities the evaluation plots are precomputed.
type Report struct {
	Insts       uint64 `json:"insts"`
	SimInsts    uint64 `json:"sim_insts"`
	Loads       uint64 `json:"loads"`
	Stores      uint64 `json:"stores"`
	PtrLoads    uint64 `json:"ptr_loads"`
	PtrStores   uint64 `json:"ptr_stores"`
	Checks      uint64 `json:"checks"`
	LoadChecks  uint64 `json:"load_checks"`
	StoreChecks uint64 `json:"store_checks"`
	CallChecks  uint64 `json:"call_checks"`
	// TemporalChecks counts CETS lock-and-key verifications (an additive
	// schema-v1 extension; zero/omitted under spatial-only schemes).
	TemporalChecks uint64 `json:"temporal_checks,omitempty"`
	MetaLoads      uint64 `json:"meta_loads"`
	MetaStores     uint64 `json:"meta_stores"`
	MetaClears     uint64 `json:"meta_clears"`
	Calls          uint64 `json:"calls"`
	Mallocs        uint64 `json:"mallocs"`
	Frees          uint64 `json:"frees"`
	HeapBytes      uint64 `json:"heap_bytes"`
	MaxHeap        uint64 `json:"max_heap"`
	MetaBytes      int64  `json:"meta_bytes"`
	// MetaLive is the facility's live entry count at exit (an additive
	// schema-v1 extension; the soak and session harnesses watch it for
	// unbounded metadata growth).
	MetaLive   int64  `json:"meta_live,omitempty"`
	CheckElims uint64 `json:"check_elims"`

	// Metadata-lookup-cache counters (additive schema-v1 extension;
	// zero/omitted under the reference engine or with the cache disabled).
	// meta_cache_sim_insts is the modeled cost of the run's metadata
	// lookups with the lookaside in front of the facility; sim_insts
	// always uses the cache-less accounting.
	MetaCacheHits     uint64 `json:"meta_cache_hits,omitempty"`
	MetaCacheMisses   uint64 `json:"meta_cache_misses,omitempty"`
	MetaCacheSimInsts uint64 `json:"meta_cache_sim_insts,omitempty"`

	// Opt carries the compile-time optimizer pass counters (an additive
	// schema-v1 extension; see DESIGN.md "BENCH.json").
	Opt OptCounters `json:"opt"`

	// TrapCode classifies how the run ended ("" = clean exit, omitted);
	// values are vm.TrapCode strings. An additive schema-v1 extension
	// (DESIGN.md "Failure model").
	TrapCode string `json:"trap_code,omitempty"`

	PtrMemFrac float64 `json:"ptr_mem_frac"`
}

// Report converts the counters into their serializable form.
func (s *Stats) Report() Report {
	return Report{
		Insts:             s.Insts,
		SimInsts:          s.SimInsts,
		Loads:             s.Loads,
		Stores:            s.Stores,
		PtrLoads:          s.PtrLoads,
		PtrStores:         s.PtrStores,
		Checks:            s.Checks,
		LoadChecks:        s.LoadChecks,
		StoreChecks:       s.StoreChecks,
		CallChecks:        s.CallChecks,
		TemporalChecks:    s.TemporalChecks,
		MetaLoads:         s.MetaLoads,
		MetaStores:        s.MetaStores,
		MetaClears:        s.MetaClears,
		Calls:             s.Calls,
		Mallocs:           s.Mallocs,
		Frees:             s.Frees,
		HeapBytes:         s.HeapBytes,
		MaxHeap:           s.MaxHeap,
		MetaBytes:         s.MetaBytes,
		MetaLive:          s.MetaLive,
		CheckElims:        s.CheckElims,
		MetaCacheHits:     s.MetaCacheHits,
		MetaCacheMisses:   s.MetaCacheMisses,
		MetaCacheSimInsts: s.MetaCacheSimInsts,

		Opt:        s.Opt,
		TrapCode:   s.TrapCode,
		PtrMemFrac: s.PtrMemFrac(),
	}
}

// PhaseTiming is one timed phase of a run (compile, execute, ...).
type PhaseTiming struct {
	Phase string `json:"phase"`
	Nanos int64  `json:"nanos"`
}

// Duration returns the phase's wall-clock time.
func (p PhaseTiming) Duration() time.Duration { return time.Duration(p.Nanos) }

// PhaseTimer accumulates per-phase wall-clock timings for one run. It is
// not safe for concurrent use; the benchmark harness gives every run its
// own timer.
type PhaseTimer struct {
	phases []PhaseTiming
}

// Start begins timing the named phase and returns the function that ends
// it. Typical use:
//
//	done := timer.Start("compile")
//	... work ...
//	done()
func (t *PhaseTimer) Start(phase string) func() {
	begin := time.Now()
	return func() {
		t.phases = append(t.phases, PhaseTiming{Phase: phase, Nanos: time.Since(begin).Nanoseconds()})
	}
}

// Time runs fn under the named phase.
func (t *PhaseTimer) Time(phase string, fn func()) {
	done := t.Start(phase)
	fn()
	done()
}

// Phases returns the recorded timings in completion order.
func (t *PhaseTimer) Phases() []PhaseTiming { return t.phases }

// Total sums all recorded phases.
func (t *PhaseTimer) Total() time.Duration {
	var sum time.Duration
	for _, p := range t.phases {
		sum += p.Duration()
	}
	return sum
}
