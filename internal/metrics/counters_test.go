package metrics

import (
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	c := NewCounterSet()
	if c.Get("missing") != 0 {
		t.Fatal("unwritten counter not zero")
	}
	c.Inc("a")
	c.Add("a", 2)
	c.Inc("b")
	if got := c.Get("a"); got != 3 {
		t.Fatalf("a = %d, want 3", got)
	}
	snap := c.Snapshot()
	if snap["a"] != 3 || snap["b"] != 1 {
		t.Fatalf("snapshot %v, want a=3 b=1", snap)
	}
	snap["a"] = 99 // mutating the snapshot must not touch the set
	if c.Get("a") != 3 {
		t.Fatal("snapshot aliases live state")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names %v, want [a b]", names)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("n")
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Fatalf("n = %d, want 8000", got)
	}
}
