// Package metrics collects the execution statistics the paper's
// evaluation reports: the memory-operation mix that drives Figure 1 and
// the simulated-instruction accounting that drives Figure 2.
package metrics

import "fmt"

// Stats accumulates per-run counters.
type Stats struct {
	// Dynamic IR operation counts.
	Insts uint64 // all executed IR instructions

	Loads       uint64 // memory loads
	Stores      uint64 // memory stores
	PtrLoads    uint64 // loads of pointer values (need metadata access)
	PtrStores   uint64 // stores of pointer values
	Checks      uint64 // bounds checks executed
	LoadChecks  uint64
	StoreChecks uint64
	CallChecks  uint64
	// TemporalChecks counts CETS lock-and-key verifications, performed
	// before the spatial compare of checks that carry temporal operands
	// (zero under the spatial-only schemes).
	TemporalChecks uint64
	MetaLoads      uint64 // metadata table lookups
	MetaStores     uint64 // metadata table updates
	MetaClears     uint64

	Calls uint64

	// SimInsts models the x86 instruction count of the run: each IR
	// operation contributes its approximate lowered instruction count,
	// and metadata operations contribute the facility's modeled cost
	// (9 for hash table, 5 for shadow space — paper §5.1).
	SimInsts uint64

	// Allocations.
	Mallocs   uint64
	Frees     uint64
	HeapBytes uint64
	MaxHeap   uint64
	MetaBytes int64 // metadata facility footprint at exit
	MetaLive  int64 // live metadata entries at exit (facility occupancy)
	// CheckElims is the total number of spatial checks the optimizer
	// removed at compile time (local + global passes); Opt has the
	// per-pass breakdown.
	CheckElims uint64

	// Metadata lookup cache (fast engine only; all zero under the
	// reference engine or when the cache is disabled). SimInsts keeps the
	// cache-less facility accounting so the two engines stay bit-identical;
	// MetaCacheSimInsts is the alternative modeled cost of the metadata
	// lookups with a hardware-style lookaside in front of the facility:
	// every probe pays the hit cost, misses additionally pay the
	// facility's full lookup.
	MetaCacheHits     uint64
	MetaCacheMisses   uint64
	MetaCacheSimInsts uint64

	// Opt records the compile-time optimizer counters for the module
	// this run executed (zero when the optimizer was off).
	Opt OptCounters

	// TrapCode is the machine-readable classification of how the run
	// ended ("" = clean exit); values come from vm.TrapCode. The harness
	// fills it from the execution error after the run.
	TrapCode string
}

// OptCounters breaks down what the optimizer passes changed for one
// compiled module. The struct is flat and comparable: Stats and Report
// embed it by value and tests compare reports with ==.
type OptCounters struct {
	FoldedConsts        uint64 `json:"folded_consts"`
	RemovedInsts        uint64 `json:"removed_insts"`
	ChecksRemovedLocal  uint64 `json:"checks_removed_local"`
	ChecksRemovedGlobal uint64 `json:"checks_removed_global"`
	MetaLoadsMerged     uint64 `json:"meta_loads_merged"`
	MetaLoadsHoisted    uint64 `json:"meta_loads_hoisted"`
	DeadMetaLoads       uint64 `json:"dead_meta_loads"`
}

// ChecksRemoved is the total checks eliminated across both passes.
func (o OptCounters) ChecksRemoved() uint64 {
	return o.ChecksRemovedLocal + o.ChecksRemovedGlobal
}

// MemOps returns the total dynamic memory operations.
func (s *Stats) MemOps() uint64 { return s.Loads + s.Stores }

// PtrMemOps returns loads+stores that move pointer values.
func (s *Stats) PtrMemOps() uint64 { return s.PtrLoads + s.PtrStores }

// PtrMemFrac returns the fraction of memory operations that load or store
// a pointer — the quantity Figure 1 plots.
func (s *Stats) PtrMemFrac() float64 {
	if s.MemOps() == 0 {
		return 0
	}
	return float64(s.PtrMemOps()) / float64(s.MemOps())
}

// Overhead returns the relative simulated-instruction overhead of this
// run versus a baseline run, as a fraction (0.79 = 79%).
func (s *Stats) Overhead(baseline *Stats) float64 {
	if baseline.SimInsts == 0 {
		return 0
	}
	return float64(s.SimInsts)/float64(baseline.SimInsts) - 1
}

// String summarizes the stats.
func (s *Stats) String() string {
	return fmt.Sprintf(
		"insts=%d sim=%d mem=%d (ptr %.1f%%) checks=%d meta=%d/%d heap=%d",
		s.Insts, s.SimInsts, s.MemOps(), 100*s.PtrMemFrac(),
		s.Checks, s.MetaLoads, s.MetaStores, s.MaxHeap)
}
