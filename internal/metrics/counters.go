package metrics

import (
	"sort"
	"sync"
)

// CounterSet is a concurrency-safe set of named monotonically increasing
// counters. The execution service keeps one per process and snapshots it
// at /statz; names are dotted paths ("run.shed", "trap.spatial-violation")
// so consumers can aggregate by prefix.
type CounterSet struct {
	mu sync.Mutex
	m  map[string]uint64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: make(map[string]uint64)}
}

// Add increments the named counter by n.
func (c *CounterSet) Add(name string, n uint64) {
	c.mu.Lock()
	c.m[name] += n
	c.mu.Unlock()
}

// Inc increments the named counter by one.
func (c *CounterSet) Inc(name string) { c.Add(name, 1) }

// Get returns the named counter's current value (0 if never written).
func (c *CounterSet) Get(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of every counter, safe to marshal or mutate.
func (c *CounterSet) Snapshot() map[string]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Names returns the sorted counter names (stable /statz rendering).
func (c *CounterSet) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
