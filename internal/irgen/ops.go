package irgen

import (
	"softbound/internal/cast"
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
	"softbound/internal/ir"
)

// genUnary lowers prefix unary operators.
func (g *generator) genUnary(x *cast.Unary) (ir.Value, error) {
	switch x.Op {
	case ctoken.Amp:
		if id, ok := x.X.(*cast.Ident); ok && id.Kind == cast.VarFunc {
			return ir.FV(id.Name), nil
		}
		lv, err := g.genLValue(x.X)
		if err != nil {
			return ir.Value{}, err
		}
		if lv.isReg {
			return ir.Value{}, errAt(x.Pos(), "internal: address of promoted register")
		}
		return lv.addr, nil

	case ctoken.Star:
		pt := exprType(x.X)
		if pt != nil && pt.IsFuncPointer() {
			// *fp is the function designator; value is the pointer.
			return g.genExpr(x.X)
		}
		lv, err := g.genLValue(x)
		if err != nil {
			return ir.Value{}, err
		}
		return g.loadLValue(lv, x.Pos())

	case ctoken.Minus:
		v, err := g.genExpr(x.X)
		if err != nil {
			return ir.Value{}, err
		}
		t := exprType(x)
		if t.IsFloat() {
			dst := g.newReg(ir.ClassFloat)
			g.emit(ir.Inst{Kind: ir.KUn, Dst: dst, Op: ir.OpFNeg, A: v,
				IntWidth: int(t.Size()) * 8})
			return ir.R(dst), nil
		}
		dst := g.newReg(ir.ClassInt)
		g.emit(ir.Inst{Kind: ir.KUn, Dst: dst, Op: ir.OpNeg, A: v,
			IntWidth: int(t.Size()) * 8, Signed: !t.Unsigned})
		return ir.R(dst), nil

	case ctoken.Plus:
		return g.genExpr(x.X)

	case ctoken.Tilde:
		v, err := g.genExpr(x.X)
		if err != nil {
			return ir.Value{}, err
		}
		t := exprType(x)
		dst := g.newReg(ir.ClassInt)
		g.emit(ir.Inst{Kind: ir.KUn, Dst: dst, Op: ir.OpNot, A: v,
			IntWidth: int(t.Size()) * 8, Signed: !t.Unsigned})
		return ir.R(dst), nil

	case ctoken.Not:
		xt := exprType(x.X)
		v, err := g.genExpr(x.X)
		if err != nil {
			return ir.Value{}, err
		}
		dst := g.newReg(ir.ClassInt)
		if xt != nil && xt.IsFloat() {
			g.emit(ir.Inst{Kind: ir.KCmp, Dst: dst, Pred: ir.PredFEQ, A: v, B: ir.CF(0)})
		} else {
			g.emit(ir.Inst{Kind: ir.KCmp, Dst: dst, Pred: ir.PredEQ, A: v, B: ir.CI(0)})
		}
		return ir.R(dst), nil

	case ctoken.Inc, ctoken.Dec:
		_, newV, err := g.genIncDec(x.X, x.Op, x.Pos())
		return newV, err
	}
	return ir.Value{}, errAt(x.Pos(), "internal: unary %s", x.Op)
}

// genIncDec lowers ++/-- (pre and post share this), returning the old and
// new values.
func (g *generator) genIncDec(target cast.Expr, op ctoken.Kind, pos ctoken.Pos) (ir.Value, ir.Value, error) {
	lv, err := g.genLValue(target)
	if err != nil {
		return ir.Value{}, ir.Value{}, err
	}
	old, err := g.loadLValue(lv, pos)
	if err != nil {
		return ir.Value{}, ir.Value{}, err
	}
	if lv.isReg {
		// Snapshot the promoted register: the in-place update below
		// would otherwise clobber the "old" value postfix ++/-- yields.
		snap := g.newReg(classOf(lv.t))
		g.emit(ir.Inst{Kind: ir.KMov, Dst: snap, A: old})
		old = ir.R(snap)
	}
	t := lv.t
	var newV ir.Value
	switch {
	case t.IsPointer():
		step := int64(1)
		if op == ctoken.Dec {
			step = -1
		}
		newV = g.addrPlusDynamic(old, step*t.Elem.Size())
	case t.IsFloat():
		dst := g.newReg(ir.ClassFloat)
		o := ir.OpFAdd
		if op == ctoken.Dec {
			o = ir.OpFSub
		}
		g.emit(ir.Inst{Kind: ir.KBin, Dst: dst, Op: o, A: old, B: ir.CF(1),
			IntWidth: int(t.Size()) * 8})
		newV = ir.R(dst)
	default:
		dst := g.newReg(ir.ClassInt)
		o := ir.OpAdd
		if op == ctoken.Dec {
			o = ir.OpSub
		}
		g.emit(ir.Inst{Kind: ir.KBin, Dst: dst, Op: o, A: old, B: ir.CI(1),
			IntWidth: int(t.Size()) * 8, Signed: !t.Unsigned})
		newV = ir.R(dst)
	}
	if err := g.storeLValue(lv, newV, pos); err != nil {
		return ir.Value{}, ir.Value{}, err
	}
	return old, newV, nil
}

// addrPlusDynamic emits a pointer bump by a constant byte delta through a
// GEP so metadata propagation sees it as address arithmetic.
func (g *generator) addrPlusDynamic(base ir.Value, delta int64) ir.Value {
	r := g.newReg(ir.ClassPtr)
	g.emit(ir.Inst{Kind: ir.KGEP, Dst: r, A: base, B: ir.CI(0), Size: 1, C: ir.CI(delta)})
	return ir.R(r)
}

// genBinary lowers binary operators including pointer arithmetic and
// short-circuit logicals.
func (g *generator) genBinary(x *cast.Binary) (ir.Value, error) {
	switch x.Op {
	case ctoken.AndAnd, ctoken.OrOr:
		return g.genLogical(x)
	}
	lt, rt := exprType(x.X), exprType(x.Y)
	lhs, err := g.genExpr(x.X)
	if err != nil {
		return ir.Value{}, err
	}
	rhs, err := g.genExpr(x.Y)
	if err != nil {
		return ir.Value{}, err
	}
	return g.genBinOpValues(x.Op, lhs, rhs, lt, rt, exprType(x), x.Pos())
}

// genBinOpValues implements the operator given already-lowered operands;
// shared by Binary and compound assignment.
func (g *generator) genBinOpValues(op ctoken.Kind, lhs, rhs ir.Value, lt, rt, resT *ctypes.Type, pos ctoken.Pos) (ir.Value, error) {
	// Pointer arithmetic.
	if op == ctoken.Plus || op == ctoken.Minus {
		switch {
		case lt.IsPointer() && rt.IsInteger():
			idx := rhs
			if op == ctoken.Minus {
				neg := g.newReg(ir.ClassInt)
				g.emit(ir.Inst{Kind: ir.KUn, Dst: neg, Op: ir.OpNeg, A: rhs, IntWidth: 64, Signed: true})
				idx = ir.R(neg)
			}
			return g.gep(lhs, idx, lt.Elem.Size()), nil
		case lt.IsInteger() && rt.IsPointer() && op == ctoken.Plus:
			return g.gep(rhs, lhs, rt.Elem.Size()), nil
		case lt.IsPointer() && rt.IsPointer() && op == ctoken.Minus:
			diff := g.newReg(ir.ClassInt)
			g.emit(ir.Inst{Kind: ir.KBin, Dst: diff, Op: ir.OpSub, A: lhs, B: rhs,
				IntWidth: 64, Signed: true})
			size := lt.Elem.Size()
			if size <= 1 {
				return ir.R(diff), nil
			}
			q := g.newReg(ir.ClassInt)
			g.emit(ir.Inst{Kind: ir.KBin, Dst: q, Op: ir.OpDiv, A: ir.R(diff), B: ir.CI(size),
				IntWidth: 64, Signed: true})
			return ir.R(q), nil
		}
	}

	// Comparisons.
	if pred, isCmp := cmpPred(op); isCmp {
		dst := g.newReg(ir.ClassInt)
		switch {
		case lt.IsFloat() || rt.IsFloat():
			common := ctypes.UsualArithmetic(lt, rt)
			lhs = g.convert(lhs, lt, common)
			rhs = g.convert(rhs, rt, common)
			g.emit(ir.Inst{Kind: ir.KCmp, Dst: dst, Pred: floatPred(pred), A: lhs, B: rhs})
		case lt.IsPointer() || rt.IsPointer():
			g.emit(ir.Inst{Kind: ir.KCmp, Dst: dst, Pred: pred, A: lhs, B: rhs, Signed: false})
		default:
			common := ctypes.UsualArithmetic(lt, rt)
			lhs = g.convert(lhs, lt, common)
			rhs = g.convert(rhs, rt, common)
			g.emit(ir.Inst{Kind: ir.KCmp, Dst: dst, Pred: pred, A: lhs, B: rhs,
				Signed: !common.Unsigned})
		}
		return ir.R(dst), nil
	}

	// Arithmetic / bitwise.
	common := resT
	if common == nil || !common.IsArithmetic() {
		common = ctypes.UsualArithmetic(lt, rt)
	}
	if common.IsFloat() {
		lhs = g.convert(lhs, lt, common)
		rhs = g.convert(rhs, rt, common)
		var o ir.Op
		switch op {
		case ctoken.Plus:
			o = ir.OpFAdd
		case ctoken.Minus:
			o = ir.OpFSub
		case ctoken.Star:
			o = ir.OpFMul
		case ctoken.Slash:
			o = ir.OpFDiv
		default:
			return ir.Value{}, errAt(pos, "invalid float operator %s", op)
		}
		dst := g.newReg(ir.ClassFloat)
		g.emit(ir.Inst{Kind: ir.KBin, Dst: dst, Op: o, A: lhs, B: rhs,
			IntWidth: int(common.Size()) * 8})
		return ir.R(dst), nil
	}

	// Shifts keep the (promoted) left operand type.
	if op == ctoken.Shl || op == ctoken.Shr {
		common = lt.Promote()
	} else {
		lhs = g.convert(lhs, lt, common)
		rhs = g.convert(rhs, rt, common)
	}
	var o ir.Op
	switch op {
	case ctoken.Plus:
		o = ir.OpAdd
	case ctoken.Minus:
		o = ir.OpSub
	case ctoken.Star:
		o = ir.OpMul
	case ctoken.Slash:
		o = ir.OpDiv
	case ctoken.Percent:
		o = ir.OpRem
	case ctoken.Amp:
		o = ir.OpAnd
	case ctoken.Pipe:
		o = ir.OpOr
	case ctoken.Caret:
		o = ir.OpXor
	case ctoken.Shl:
		o = ir.OpShl
	case ctoken.Shr:
		o = ir.OpShr
	default:
		return ir.Value{}, errAt(pos, "invalid operator %s", op)
	}
	dst := g.newReg(ir.ClassInt)
	g.emit(ir.Inst{Kind: ir.KBin, Dst: dst, Op: o, A: lhs, B: rhs,
		IntWidth: int(common.Size()) * 8, Signed: !common.Unsigned})
	return ir.R(dst), nil
}

func cmpPred(op ctoken.Kind) (ir.Pred, bool) {
	switch op {
	case ctoken.Eq:
		return ir.PredEQ, true
	case ctoken.Ne:
		return ir.PredNE, true
	case ctoken.Lt:
		return ir.PredLT, true
	case ctoken.Le:
		return ir.PredLE, true
	case ctoken.Gt:
		return ir.PredGT, true
	case ctoken.Ge:
		return ir.PredGE, true
	}
	return 0, false
}

func floatPred(p ir.Pred) ir.Pred {
	switch p {
	case ir.PredEQ:
		return ir.PredFEQ
	case ir.PredNE:
		return ir.PredFNE
	case ir.PredLT:
		return ir.PredFLT
	case ir.PredLE:
		return ir.PredFLE
	case ir.PredGT:
		return ir.PredFGT
	case ir.PredGE:
		return ir.PredFGE
	}
	return p
}

// genLogical lowers && and || with short-circuit evaluation, producing a
// 0/1 integer in a register.
func (g *generator) genLogical(x *cast.Binary) (ir.Value, error) {
	dst := g.newReg(ir.ClassInt)
	rhsB := g.fn.NewBlock("logic.rhs")
	endB := g.fn.NewBlock("logic.end")

	lhs, err := g.genCond(x.X)
	if err != nil {
		return ir.Value{}, err
	}
	// Normalize lhs to 0/1 into dst, then branch.
	g.emit(ir.Inst{Kind: ir.KCmp, Dst: dst, Pred: ir.PredNE, A: lhs, B: ir.CI(0)})
	if x.Op == ctoken.AndAnd {
		g.condBr(ir.R(dst), rhsB, endB)
	} else {
		g.condBr(ir.R(dst), endB, rhsB)
	}
	g.setBlock(rhsB)
	rhs, err := g.genCond(x.Y)
	if err != nil {
		return ir.Value{}, err
	}
	g.emit(ir.Inst{Kind: ir.KCmp, Dst: dst, Pred: ir.PredNE, A: rhs, B: ir.CI(0)})
	g.br(endB)
	g.setBlock(endB)
	return ir.R(dst), nil
}

// genCondExpr lowers c ? a : b.
func (g *generator) genCondExpr(x *cast.Cond) (ir.Value, error) {
	t := exprType(x)
	dst := g.newReg(classOf(t))
	thenB := g.fn.NewBlock("cond.then")
	elseB := g.fn.NewBlock("cond.else")
	endB := g.fn.NewBlock("cond.end")

	c, err := g.genCond(x.C)
	if err != nil {
		return ir.Value{}, err
	}
	g.condBr(c, thenB, elseB)

	g.setBlock(thenB)
	tv, err := g.genExprConverted(x.Then, t)
	if err != nil {
		return ir.Value{}, err
	}
	g.emit(ir.Inst{Kind: ir.KMov, Dst: dst, A: tv})
	g.br(endB)

	g.setBlock(elseB)
	ev, err := g.genExprConverted(x.Else, t)
	if err != nil {
		return ir.Value{}, err
	}
	g.emit(ir.Inst{Kind: ir.KMov, Dst: dst, A: ev})
	g.br(endB)

	g.setBlock(endB)
	return ir.R(dst), nil
}

// genAssign lowers simple and compound assignment; its value is the
// stored value.
func (g *generator) genAssign(x *cast.Assign) (ir.Value, error) {
	lv, err := g.genLValue(x.L)
	if err != nil {
		return ir.Value{}, err
	}
	if x.Op == ctoken.Assign {
		if lv.t.Kind == ctypes.Struct {
			src, err := g.genExpr(x.R)
			if err != nil {
				return ir.Value{}, err
			}
			if err := g.storeLValue(lv, src, x.Pos()); err != nil {
				return ir.Value{}, err
			}
			return src, nil
		}
		v, err := g.genExprConverted(x.R, lv.t)
		if err != nil {
			return ir.Value{}, err
		}
		if err := g.storeLValue(lv, v, x.Pos()); err != nil {
			return ir.Value{}, err
		}
		return v, nil
	}
	// Compound: load, op, store.
	old, err := g.loadLValue(lv, x.Pos())
	if err != nil {
		return ir.Value{}, err
	}
	rt := exprType(x.R)
	rhs, err := g.genExpr(x.R)
	if err != nil {
		return ir.Value{}, err
	}
	op := compoundBase(x.Op)
	nv, err := g.genBinOpValues(op, old, rhs, lv.t.Decay(), rt, nil, x.Pos())
	if err != nil {
		return ir.Value{}, err
	}
	nv = g.convert(nv, resultTypeOf(op, lv.t, rt), lv.t)
	if err := g.storeLValue(lv, nv, x.Pos()); err != nil {
		return ir.Value{}, err
	}
	return nv, nil
}

func resultTypeOf(op ctoken.Kind, lt, rt *ctypes.Type) *ctypes.Type {
	l := lt.Decay()
	if l.IsPointer() {
		return l
	}
	if op == ctoken.Shl || op == ctoken.Shr {
		return l.Promote()
	}
	return ctypes.UsualArithmetic(l, rt)
}

func compoundBase(k ctoken.Kind) ctoken.Kind {
	switch k {
	case ctoken.PlusAssign:
		return ctoken.Plus
	case ctoken.MinusAssign:
		return ctoken.Minus
	case ctoken.StarAssign:
		return ctoken.Star
	case ctoken.SlashAssign:
		return ctoken.Slash
	case ctoken.PercentAssign:
		return ctoken.Percent
	case ctoken.AmpAssign:
		return ctoken.Amp
	case ctoken.PipeAssign:
		return ctoken.Pipe
	case ctoken.CaretAssign:
		return ctoken.Caret
	case ctoken.ShlAssign:
		return ctoken.Shl
	case ctoken.ShrAssign:
		return ctoken.Shr
	}
	return k
}

// genCall lowers a function call.
func (g *generator) genCall(x *cast.Call) (ir.Value, error) {
	var callee ir.Value
	var paramTypes []*ctypes.Type
	retT := exprType(x)

	if x.Direct != "" {
		callee = ir.FV(x.Direct)
		if id, ok := x.Target.(*cast.Ident); ok {
			if ft := id.Type(); ft != nil {
				fn := ft
				if fn.IsFuncPointer() {
					fn = fn.Elem
				}
				paramTypes = fn.Params
			}
		}
	} else {
		v, err := g.genExpr(x.Target)
		if err != nil {
			return ir.Value{}, err
		}
		callee = v
		tt := exprType(x.Target)
		fn := tt
		if fn.IsFuncPointer() {
			fn = fn.Elem
		}
		if fn.Kind == ctypes.Func {
			paramTypes = fn.Params
		}
	}

	args := make([]ir.Value, 0, len(x.Args))
	for i, a := range x.Args {
		at := exprType(a)
		v, err := g.genExpr(a)
		if err != nil {
			return ir.Value{}, err
		}
		if i < len(paramTypes) {
			v = g.convert(v, at, paramTypes[i])
		} else if at != nil && at.Kind == ctypes.Float {
			// Default argument promotion for varargs.
			v = g.convert(v, at, ctypes.DoubleType)
		}
		args = append(args, v)
	}

	dst := ir.NoReg
	if retT != nil && retT.Kind != ctypes.Void {
		if retT.Kind == ctypes.Struct {
			return ir.Value{}, errAt(x.Pos(), "struct return by value not supported")
		}
		dst = g.newReg(classOf(retT))
	}
	g.emit(ir.Inst{Kind: ir.KCall, Dst: dst, Callee: callee, Args: args,
		DstBase: ir.NoReg, DstBound: ir.NoReg})
	if dst == ir.NoReg {
		return ir.CI(0), nil
	}
	return ir.R(dst), nil
}
