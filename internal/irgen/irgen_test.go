package irgen

import (
	"strings"
	"testing"

	"softbound/internal/cparser"
	"softbound/internal/ir"
	"softbound/internal/sema"
)

func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	unit, err := cparser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Analyze(unit)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Generate(info)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func count(f *ir.Func, k ir.InstKind) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Kind == k {
				n++
			}
		}
	}
	return n
}

// TestRegisterPromotion: scalar locals without & never touch memory —
// the property that keeps Figure 1's SPEC pointer-op counts near zero.
func TestRegisterPromotion(t *testing.T) {
	mod := lower(t, `
int f(int n) {
    int i;
    int sum = 0;
    for (i = 0; i < n; i++)
        sum += i;
    return sum;
}`)
	f := mod.Lookup("f")
	if n := count(f, ir.KAlloca); n != 0 {
		t.Errorf("promoted function has %d allocas", n)
	}
	if n := count(f, ir.KLoad) + count(f, ir.KStore); n != 0 {
		t.Errorf("promoted function has %d memory ops", n)
	}
}

// TestAddressTakenDemotion: taking &x forces a stack slot.
func TestAddressTakenDemotion(t *testing.T) {
	mod := lower(t, `
void set(int* p) { *p = 1; }
int f(void) {
    int x = 0;
    set(&x);
    return x;
}`)
	f := mod.Lookup("f")
	if n := count(f, ir.KAlloca); n != 1 {
		t.Errorf("address-taken local: %d allocas, want 1", n)
	}
	if n := count(f, ir.KLoad); n < 1 {
		t.Error("demoted local is never loaded")
	}
}

// TestFrameLayoutParamsAboveLocals pins the x86-like spill layout the
// attack suite depends on: locals first, demoted parameters above them.
func TestFrameLayoutParamsAboveLocals(t *testing.T) {
	mod := lower(t, `
int f(int p) {
    char buf[16];
    int* fp = (int*)&p;
    buf[0] = (char)*fp;
    return buf[0];
}`)
	f := mod.Lookup("f")
	if len(f.Allocas) != 2 {
		t.Fatalf("allocas: %+v", f.Allocas)
	}
	var bufOff, pOff int64 = -1, -1
	for _, a := range f.Allocas {
		switch a.Name {
		case "buf":
			bufOff = a.Offset
		case "p":
			pOff = a.Offset
		}
	}
	if bufOff < 0 || pOff < 0 || pOff <= bufOff {
		t.Fatalf("param slot not above locals: buf=%d p=%d", bufOff, pOff)
	}
}

// TestFieldGEPsCarryShrinkMarks: every struct-field address is marked
// for SoftBound bounds shrinking.
func TestFieldGEPsCarryShrinkMarks(t *testing.T) {
	mod := lower(t, `
struct s { int a; char name[12]; };
int f(struct s* p) { return p->name[3]; }
`)
	f := mod.Lookup("f")
	shrinks := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Kind == ir.KGEP && in.Shrink {
				shrinks++
				if in.ShrinkLen != 12 {
					t.Errorf("shrink len %d, want 12", in.ShrinkLen)
				}
			}
		}
	}
	if shrinks != 1 {
		t.Errorf("shrink GEPs = %d, want 1", shrinks)
	}
}

// TestStructAssignmentUsesMemcpy: aggregates copy via the intrinsic, so
// SoftBound's memcpy metadata handling covers embedded pointers.
func TestStructAssignmentUsesMemcpy(t *testing.T) {
	mod := lower(t, `
struct s { int a; int* p; };
void f(struct s* d, struct s* x) { *d = *x; }
`)
	f := mod.Lookup("f")
	foundMemcpy := false
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Kind == ir.KCall && in.Callee.Sym == "memcpy" {
				foundMemcpy = true
				if in.DstBase != ir.NoReg || in.DstBound != ir.NoReg {
					t.Error("intrinsic memcpy call has live metadata dst registers")
				}
			}
		}
	}
	if !foundMemcpy {
		t.Error("struct assignment did not lower to memcpy")
	}
}

// TestStringLiteralInterning: identical literals share one read-only
// global.
func TestStringLiteralInterning(t *testing.T) {
	mod := lower(t, `
char* a(void) { return "shared"; }
char* b(void) { return "shared"; }
char* c(void) { return "different"; }
`)
	ro := 0
	for _, g := range mod.Globals {
		if g.ReadOnly {
			ro++
		}
	}
	if ro != 2 {
		t.Errorf("read-only globals = %d, want 2 (interned)", ro)
	}
}

// TestGlobalPointerInitsRelocated: pointer-valued global initializers
// become relocations, not bytes.
func TestGlobalPointerInitsRelocated(t *testing.T) {
	mod := lower(t, `
int target[4];
int* direct = target;
int* offset = &target[2];
int (*fptr)(void);
int getter(void) { return 1; }
int (*initfp)(void) = getter;
`)
	byName := map[string]*ir.Global{}
	for _, g := range mod.Globals {
		byName[g.Name] = g
	}
	d := byName["direct"]
	if len(d.PtrInits) != 1 || d.PtrInits[0].Sym != "target" || d.PtrInits[0].Addend != 0 {
		t.Errorf("direct: %+v", d.PtrInits)
	}
	o := byName["offset"]
	if len(o.PtrInits) != 1 || o.PtrInits[0].Addend != 8 {
		t.Errorf("offset: %+v", o.PtrInits)
	}
	fp := byName["initfp"]
	if len(fp.PtrInits) != 1 || fp.PtrInits[0].Func != "getter" {
		t.Errorf("initfp: %+v", fp.PtrInits)
	}
	if !d.ContainsPtr {
		t.Error("pointer global not marked ContainsPtr")
	}
}

// TestShortCircuitProducesBranches: && lowers to control flow, not
// eager evaluation.
func TestShortCircuitProducesBranches(t *testing.T) {
	mod := lower(t, `
int g(void);
int f(int a) { return a && g(); }
`)
	f := mod.Lookup("f")
	if len(f.Blocks) < 3 {
		t.Fatalf("short-circuit produced %d blocks", len(f.Blocks))
	}
	// The call to g must not be in the entry block.
	for i := range f.Blocks[0].Insts {
		in := &f.Blocks[0].Insts[i]
		if in.Kind == ir.KCall && in.Callee.Sym == "g" {
			t.Fatal("g() evaluated eagerly")
		}
	}
}

// TestSwitchLowersToComparisonChain with fallthrough edges.
func TestSwitchLowersToComparisonChain(t *testing.T) {
	mod := lower(t, `
int f(int x) {
    switch (x) {
    case 1: return 10;
    case 2: return 20;
    default: return 0;
    }
}`)
	f := mod.Lookup("f")
	cmps := count(f, ir.KCmp)
	if cmps != 2 {
		t.Errorf("switch comparisons = %d, want 2", cmps)
	}
}

// TestPointerArithmeticIsGEP: pointer math lowers to address arithmetic
// (which instrumentation treats as metadata-inheriting), never to plain
// integer ops.
func TestPointerArithmeticIsGEP(t *testing.T) {
	mod := lower(t, `
int* f(int* p, int i) { return p + i * 2; }
`)
	f := mod.Lookup("f")
	if n := count(f, ir.KGEP); n != 1 {
		t.Errorf("GEPs = %d, want 1", n)
	}
}

// TestClearSlotsTrackPointerBearingFrames: only pointer-containing
// allocas are listed for epilogue metadata clearing (paper §5.2).
func TestClearSlotsTrackPointerBearingFrames(t *testing.T) {
	mod := lower(t, `
struct withptr { int n; char* s; };
int f(void) {
    int plain[8];
    struct withptr w;
    char* escaped;
    char** force = &escaped;
    plain[0] = 0;
    w.n = 1;
    escaped = (char*)0;
    return plain[0] + w.n;
}`)
	f := mod.Lookup("f")
	names := map[string]bool{}
	for _, s := range f.ClearSlots {
		names[s.Name] = true
	}
	if !names["w"] || !names["escaped"] {
		t.Errorf("clear slots: %+v", f.ClearSlots)
	}
	if names["plain"] {
		t.Error("scalar array listed for metadata clearing")
	}
}

// TestDumpIsStable: lowering the same source twice yields identical IR
// (determinism matters for the experiment harness).
func TestDumpIsStable(t *testing.T) {
	src := `
int g;
int f(int* p, int n) {
    int i;
    for (i = 0; i < n; i++)
        g += p[i];
    return g;
}`
	a := lower(t, src).String()
	b := lower(t, src).String()
	if a != b {
		t.Fatal("non-deterministic lowering")
	}
	if !strings.Contains(a, "func f") {
		t.Fatal("dump missing function")
	}
}
