// Package irgen lowers the type-annotated AST to the register IR.
//
// Register promotion happens here: scalar locals and parameters whose
// address is never taken live directly in virtual registers and never
// touch memory. This mirrors the paper's setup, where the SoftBound pass
// runs after LLVM's optimizations (notably register promotion) so only
// genuine memory operations remain to be instrumented (§6.1).
package irgen

import (
	"fmt"

	"softbound/internal/cast"
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
	"softbound/internal/ir"
	"softbound/internal/sema"
)

// GenError is a lowering error.
type GenError struct {
	Pos ctoken.Pos
	Msg string
}

func (e *GenError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type generator struct {
	mod  *ir.Module
	info *sema.Info

	fn *ir.Func
	fi *sema.FuncInfo
	// cur is the index of the block under construction.
	cur int

	// regOf maps promoted symbols to their register.
	regOf map[*sema.Symbol]ir.Reg
	// addrOf maps memory-resident locals to the register holding their
	// alloca address.
	addrOf map[*sema.Symbol]ir.Reg
	// typeOf maps symbols to their (undecayed) C type.
	typeOf map[*sema.Symbol]*ctypes.Type

	// loop context for break/continue.
	breakTargets    []int
	continueTargets []int

	// labelBlocks maps goto labels to block indices.
	labelBlocks map[string]int

	// strLits dedups string-literal globals.
	strLits map[string]string
	nStr    int

	frameOff int64
	clear    []ir.AllocaSlot
}

// Generate lowers an analyzed translation unit into an IR module.
func Generate(info *sema.Info) (*ir.Module, error) {
	g := &generator{
		mod:     ir.NewModule(info.Unit.File),
		info:    info,
		strLits: make(map[string]string),
	}
	for _, gs := range info.Globals {
		if err := g.genGlobal(gs); err != nil {
			return nil, err
		}
	}
	for _, f := range info.Unit.Funcs {
		if f.Body == nil {
			continue
		}
		if err := g.genFunc(info.Funcs[f.Name]); err != nil {
			return nil, err
		}
	}
	return g.mod, nil
}

func errAt(pos ctoken.Pos, format string, args ...interface{}) error {
	return &GenError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ------------------------------------------------------------------ helpers

func classOf(t *ctypes.Type) ir.Class {
	switch {
	case t.IsFloat():
		return ir.ClassFloat
	case t.Kind == ctypes.Pointer, t.Kind == ctypes.Array, t.Kind == ctypes.Func:
		return ir.ClassPtr
	default:
		return ir.ClassInt
	}
}

// memTypeOf maps a scalar C type to a memory access type.
func memTypeOf(t *ctypes.Type) (ir.MemType, error) {
	switch t.Kind {
	case ctypes.Char:
		if t.Unsigned {
			return ir.MemU8, nil
		}
		return ir.MemI8, nil
	case ctypes.Short:
		if t.Unsigned {
			return ir.MemU16, nil
		}
		return ir.MemI16, nil
	case ctypes.Int, ctypes.Enum:
		if t.Unsigned {
			return ir.MemU32, nil
		}
		return ir.MemI32, nil
	case ctypes.Long:
		return ir.MemI64, nil
	case ctypes.Float:
		return ir.MemF32, nil
	case ctypes.Double:
		return ir.MemF64, nil
	case ctypes.Pointer:
		return ir.MemPtr, nil
	case ctypes.Void:
		// Dereferencing a void* is invalid, but appears via memcpy-like
		// generic code paths; treat as byte.
		return ir.MemU8, nil
	}
	return ir.MemI64, fmt.Errorf("no memory type for %s", t)
}

func (g *generator) block() *ir.Block { return g.fn.Blocks[g.cur] }

func (g *generator) emit(in ir.Inst) {
	// Don't append to a block that already has a terminator; create an
	// unreachable successor instead (dead code after return/break).
	b := g.block()
	if t := b.Terminator(); t != nil && t.IsTerminator() {
		g.cur = g.fn.NewBlock("dead")
		b = g.block()
	}
	b.Insts = append(b.Insts, in)
}

func (g *generator) newReg(c ir.Class) ir.Reg { return g.fn.NewReg(c) }

func (g *generator) setBlock(i int) { g.cur = i }

// terminated reports whether the current block already ends control flow.
func (g *generator) terminated() bool {
	t := g.block().Terminator()
	return t != nil && t.IsTerminator()
}

func (g *generator) br(target int) {
	if !g.terminated() {
		g.emit(ir.Inst{Kind: ir.KBr, Target: target})
	}
}

func (g *generator) condBr(cond ir.Value, then, els int) {
	g.emit(ir.Inst{Kind: ir.KCondBr, A: cond, Target: then, Else: els})
}

// ------------------------------------------------------------------ globals

func (g *generator) genGlobal(sym *sema.Symbol) error {
	d := sym.Decl.(*cast.VarDecl)
	if d.Extern && d.Init == nil {
		return nil // definition lives in another unit
	}
	t := sym.Type
	if t.Kind == ctypes.Array && t.ArrayLen < 0 && d.Init != nil {
		// char g[] = "..." at file scope.
		t = completeFromInit(t, d.Init)
		sym.Type = t
		d.Type = t
	}
	size := t.Size()
	if size == 0 {
		return errAt(d.Pos(), "global %q has incomplete type %s", d.Name, t)
	}
	gv := &ir.Global{
		Name:        d.Name,
		Size:        size,
		Align:       t.Align(),
		ContainsPtr: t.ContainsPointer(),
	}
	if d.Init != nil {
		buf := make([]byte, size)
		if err := g.layoutInit(gv, buf, 0, t, d.Init); err != nil {
			return err
		}
		gv.Init = buf
	}
	g.mod.Globals = append(g.mod.Globals, gv)
	return nil
}

func completeFromInit(t *ctypes.Type, init *cast.Init) *ctypes.Type {
	if init.Expr != nil {
		if s, ok := init.Expr.(*cast.StringLit); ok {
			return ctypes.ArrayOf(t.Elem, int64(len(s.Value))+1)
		}
		return t
	}
	return ctypes.ArrayOf(t.Elem, int64(len(init.List)))
}

// constVal is a folded compile-time initializer value.
type constVal struct {
	isFloat bool
	isAddr  bool
	i       int64
	f       float64
	sym     string // global symbol (or "" with fn set)
	fn      string // function symbol
	off     int64
}

// layoutInit writes the initializer for type t at offset off into buf,
// recording pointer relocations on gv.
func (g *generator) layoutInit(gv *ir.Global, buf []byte, off int64, t *ctypes.Type, init *cast.Init) error {
	if init.Expr != nil {
		if s, ok := init.Expr.(*cast.StringLit); ok && t.Kind == ctypes.Array {
			copy(buf[off:], s.Value)
			return nil
		}
		cv, err := g.evalConst(init.Expr)
		if err != nil {
			return err
		}
		return g.writeConst(gv, buf, off, t, cv, init.Pos)
	}
	switch t.Kind {
	case ctypes.Array:
		for i, item := range init.List {
			if err := g.layoutInit(gv, buf, off+int64(i)*t.Elem.Size(), t.Elem, item); err != nil {
				return err
			}
		}
	case ctypes.Struct:
		for i, item := range init.List {
			if i >= len(t.Fields) {
				break
			}
			f := t.Fields[i]
			if err := g.layoutInit(gv, buf, off+f.Offset, f.Type, item); err != nil {
				return err
			}
		}
	default:
		if len(init.List) == 1 {
			return g.layoutInit(gv, buf, off, t, init.List[0])
		}
		return errAt(init.Pos, "brace initializer for scalar")
	}
	return nil
}

func (g *generator) writeConst(gv *ir.Global, buf []byte, off int64, t *ctypes.Type, cv constVal, pos ctoken.Pos) error {
	if cv.isAddr {
		if t.Kind != ctypes.Pointer && !t.IsInteger() {
			return errAt(pos, "address initializer for non-pointer")
		}
		gv.PtrInits = append(gv.PtrInits, ir.PtrInit{
			Offset: off, Sym: cv.sym, Func: cv.fn, Addend: cv.off,
		})
		return nil
	}
	if cv.isFloat || t.IsFloat() {
		f := cv.f
		if !cv.isFloat {
			f = float64(cv.i)
		}
		switch t.Kind {
		case ctypes.Float:
			putU32(buf[off:], floatBits32(f))
		case ctypes.Double:
			putU64(buf[off:], floatBits64(f))
		default:
			return errAt(pos, "float initializer for %s", t)
		}
		return nil
	}
	v := cv.i
	switch t.Size() {
	case 1:
		buf[off] = byte(v)
	case 2:
		putU16(buf[off:], uint16(v))
	case 4:
		putU32(buf[off:], uint32(v))
	case 8:
		putU64(buf[off:], uint64(v))
	default:
		return errAt(pos, "bad scalar size %d", t.Size())
	}
	return nil
}

// evalConst folds a compile-time constant expression for a global
// initializer: integer/float arithmetic, enum constants, sizeof, casts,
// string literals, and addresses of globals/functions (&g, g.f, &g[i],
// and array designators).
func (g *generator) evalConst(e cast.Expr) (constVal, error) {
	switch x := e.(type) {
	case *cast.IntLit:
		return constVal{i: int64(x.Value)}, nil
	case *cast.FloatLit:
		return constVal{isFloat: true, f: x.Value}, nil
	case *cast.StringLit:
		name := g.internString(x.Value)
		return constVal{isAddr: true, sym: name}, nil
	case *cast.Ident:
		if x.Kind == cast.VarEnumConst {
			return constVal{i: x.EnumVal}, nil
		}
		if x.Kind == cast.VarFunc {
			return constVal{isAddr: true, fn: x.Name}, nil
		}
		if x.Kind == cast.VarGlobal {
			sym := g.info.Refs[x]
			if sym != nil && sym.Type.Kind == ctypes.Array {
				// Array designator decays to its address.
				return constVal{isAddr: true, sym: x.Name}, nil
			}
		}
		return constVal{}, errAt(x.Pos(), "initializer element is not constant")
	case *cast.SizeofType:
		if x.Of != nil {
			return constVal{i: x.Of.Size()}, nil
		}
		return constVal{}, errAt(x.Pos(), "unresolved sizeof in constant")
	case *cast.Cast:
		return g.evalConst(x.X)
	case *cast.Unary:
		if x.Op == ctoken.Amp {
			return g.evalConstAddr(x.X)
		}
		cv, err := g.evalConst(x.X)
		if err != nil {
			return cv, err
		}
		switch x.Op {
		case ctoken.Minus:
			if cv.isFloat {
				cv.f = -cv.f
			} else {
				cv.i = -cv.i
			}
			return cv, nil
		case ctoken.Plus:
			return cv, nil
		case ctoken.Tilde:
			cv.i = ^cv.i
			return cv, nil
		case ctoken.Not:
			if cv.i == 0 {
				cv.i = 1
			} else {
				cv.i = 0
			}
			return cv, nil
		}
		return cv, errAt(x.Pos(), "non-constant unary %s", x.Op)
	case *cast.Binary:
		a, err := g.evalConst(x.X)
		if err != nil {
			return a, err
		}
		b, err := g.evalConst(x.Y)
		if err != nil {
			return b, err
		}
		if a.isAddr || b.isAddr {
			// &g + k style arithmetic.
			if x.Op == ctoken.Plus && a.isAddr && !b.isAddr {
				a.off += b.i
				return a, nil
			}
			if x.Op == ctoken.Minus && a.isAddr && !b.isAddr {
				a.off -= b.i
				return a, nil
			}
			return a, errAt(x.Pos(), "invalid constant address arithmetic")
		}
		if a.isFloat || b.isFloat {
			af, bf := a.f, b.f
			if !a.isFloat {
				af = float64(a.i)
			}
			if !b.isFloat {
				bf = float64(b.i)
			}
			r := constVal{isFloat: true}
			switch x.Op {
			case ctoken.Plus:
				r.f = af + bf
			case ctoken.Minus:
				r.f = af - bf
			case ctoken.Star:
				r.f = af * bf
			case ctoken.Slash:
				r.f = af / bf
			default:
				return r, errAt(x.Pos(), "non-constant float op")
			}
			return r, nil
		}
		r := constVal{}
		av, bv := a.i, b.i
		switch x.Op {
		case ctoken.Plus:
			r.i = av + bv
		case ctoken.Minus:
			r.i = av - bv
		case ctoken.Star:
			r.i = av * bv
		case ctoken.Slash:
			if bv == 0 {
				return r, errAt(x.Pos(), "constant division by zero")
			}
			r.i = av / bv
		case ctoken.Percent:
			if bv == 0 {
				return r, errAt(x.Pos(), "constant modulo by zero")
			}
			r.i = av % bv
		case ctoken.Shl:
			r.i = av << uint(bv)
		case ctoken.Shr:
			r.i = av >> uint(bv)
		case ctoken.Amp:
			r.i = av & bv
		case ctoken.Pipe:
			r.i = av | bv
		case ctoken.Caret:
			r.i = av ^ bv
		default:
			return r, errAt(x.Pos(), "non-constant binary %s", x.Op)
		}
		return r, nil
	}
	return constVal{}, errAt(e.Pos(), "initializer element is not constant")
}

// evalConstAddr folds &lvalue for globals.
func (g *generator) evalConstAddr(e cast.Expr) (constVal, error) {
	switch x := e.(type) {
	case *cast.Ident:
		switch x.Kind {
		case cast.VarGlobal:
			return constVal{isAddr: true, sym: x.Name}, nil
		case cast.VarFunc:
			return constVal{isAddr: true, fn: x.Name}, nil
		}
	case *cast.Index:
		base, err := g.evalConstAddr(x.X)
		if err != nil {
			return base, err
		}
		idx, err := g.evalConst(x.I)
		if err != nil {
			return idx, err
		}
		base.off += idx.i * x.Type().Size()
		return base, nil
	case *cast.Member:
		if x.Arrow {
			return constVal{}, errAt(x.Pos(), "non-constant address")
		}
		base, err := g.evalConstAddr(x.X)
		if err != nil {
			return base, err
		}
		base.off += x.Field.Offset
		return base, nil
	}
	return constVal{}, errAt(e.Pos(), "non-constant address expression")
}

// internString creates (or reuses) a read-only global for a string
// literal. The symbol embeds the unit name: literal globals from
// different translation units must not collide at link time.
func (g *generator) internString(s string) string {
	if name, ok := g.strLits[s]; ok {
		return name
	}
	name := fmt.Sprintf(".str.%s.%d", g.mod.Name, g.nStr)
	g.nStr++
	data := append([]byte(s), 0)
	g.mod.Globals = append(g.mod.Globals, &ir.Global{
		Name: name, Size: int64(len(data)), Align: 1, Init: data, ReadOnly: true,
	})
	g.strLits[s] = name
	return name
}

func putU16(b []byte, v uint16) { b[0] = byte(v); b[1] = byte(v >> 8) }
func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
func putU64(b []byte, v uint64) {
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}
