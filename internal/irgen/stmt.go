package irgen

import (
	"math"

	"softbound/internal/cast"
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
	"softbound/internal/ir"
	"softbound/internal/sema"
)

func floatBits32(f float64) uint32 { return math.Float32bits(float32(f)) }
func floatBits64(f float64) uint64 { return math.Float64bits(f) }

// ---------------------------------------------------------------- functions

func (g *generator) genFunc(fi *sema.FuncInfo) error {
	d := fi.Decl
	f := &ir.Func{
		Name:     d.Name,
		RetClass: classOf(d.Ret),
		RetIsPtr: d.Ret.Kind == ctypes.Pointer,
		HasRet:   d.Ret.Kind != ctypes.Void,
		Variadic: d.Variadic,
	}
	g.fn = f
	g.fi = fi
	g.regOf = make(map[*sema.Symbol]ir.Reg)
	g.addrOf = make(map[*sema.Symbol]ir.Reg)
	g.typeOf = make(map[*sema.Symbol]*ctypes.Type)
	g.labelBlocks = make(map[string]int)
	g.breakTargets = nil
	g.continueTargets = nil
	g.frameOff = 0
	g.clear = nil

	// Address-taken analysis decides register promotion.
	taken := make(map[*sema.Symbol]bool)
	g.findAddressTaken(d.Body, taken)

	// Parameters occupy the first registers, in order.
	for _, ps := range fi.Params {
		c := classOf(ps.Type)
		r := f.NewReg(c)
		g.typeOf[ps] = ps.Type
		f.Params = append(f.Params, ir.Param{
			Name:  ps.Name,
			Class: c,
			IsPtr: ps.Type.Kind == ctypes.Pointer,
		})
		f.ParamRegs = append(f.ParamRegs, r)
		g.regOf[ps] = r
	}
	f.OrigParams = len(f.Params)

	g.cur = f.NewBlock("entry")

	// Pre-create alloca slots for all locals (storage has function
	// lifetime; initialization happens at the declaration point). Also
	// decide promotion. Locals are laid out before spilled parameters,
	// matching the x86 convention that callee-saved parameter spills
	// sit above the locals.
	for _, ls := range fi.Locals {
		g.typeOf[ls] = ls.Type
		d := ls.Decl.(*cast.VarDecl)
		if d.Static {
			// Block-scope statics become module globals with a
			// function-qualified name.
			name := f.Name + "." + ls.Name
			gv := &ir.Global{
				Name: name, Size: ls.Type.Size(), Align: ls.Type.Align(),
				ContainsPtr: ls.Type.ContainsPointer(),
			}
			if d.Init != nil {
				buf := make([]byte, gv.Size)
				if err := g.layoutInit(gv, buf, 0, ls.Type, d.Init); err != nil {
					return err
				}
				gv.Init = buf
			}
			g.mod.Globals = append(g.mod.Globals, gv)
			continue
		}
		if g.promotable(ls, taken) {
			r := f.NewReg(classOf(ls.Type))
			g.regOf[ls] = r
			continue
		}
		g.addrOf[ls] = g.alloca(ls.Type, ls.Name)
	}

	// Demote address-taken parameters to stack slots (above the locals).
	for _, ps := range fi.Params {
		if !taken[ps] {
			continue
		}
		addr := g.alloca(ps.Type, ps.Name)
		mt, err := memTypeOf(ps.Type)
		if err != nil {
			return errAt(d.Pos(), "parameter %q: %v", ps.Name, err)
		}
		g.emit(ir.Inst{Kind: ir.KStore, A: ir.R(addr), B: ir.R(g.regOf[ps]), Mem: mt})
		delete(g.regOf, ps)
		g.addrOf[ps] = addr
	}

	// Pre-create blocks for labels so forward gotos resolve.
	for lbl := range fi.Labels {
		g.labelBlocks[lbl] = f.NewBlock("label." + lbl)
	}

	if err := g.genStmt(d.Body); err != nil {
		return err
	}
	// Implicit return.
	if !g.terminated() {
		g.emitDefaultReturn()
	}
	// Ensure every block is terminated (label blocks never branched to,
	// dead blocks).
	for _, b := range f.Blocks {
		t := b.Terminator()
		if t == nil || !t.IsTerminator() {
			b.Insts = append(b.Insts, ir.Inst{Kind: ir.KUnreachable})
		}
	}
	f.FrameSize = alignUp(g.frameOff, 16)
	f.ClearSlots = g.clear
	g.mod.AddFunc(f)
	return nil
}

func (g *generator) emitDefaultReturn() {
	if !g.fn.HasRet {
		g.emit(ir.Inst{Kind: ir.KRet})
		return
	}
	if g.fn.RetClass == ir.ClassFloat {
		g.emit(ir.Inst{Kind: ir.KRet, HasVal: true, A: ir.CF(0)})
		return
	}
	g.emit(ir.Inst{Kind: ir.KRet, HasVal: true, A: ir.CI(0)})
}

func alignUp(n, a int64) int64 { return (n + a - 1) / a * a }

// promotable reports whether the local can live in a register.
func (g *generator) promotable(s *sema.Symbol, taken map[*sema.Symbol]bool) bool {
	if taken[s] {
		return false
	}
	switch s.Type.Kind {
	case ctypes.Array, ctypes.Struct:
		return false
	}
	return true
}

// alloca reserves a frame slot and emits the address computation.
func (g *generator) alloca(t *ctypes.Type, name string) ir.Reg {
	size := t.Size()
	if size == 0 {
		size = 1
	}
	align := t.Align()
	g.frameOff = alignUp(g.frameOff, align)
	off := g.frameOff
	g.frameOff += size
	r := g.fn.NewReg(ir.ClassPtr)
	g.fn.Allocas = append(g.fn.Allocas, ir.AllocaSlot{Offset: off, Size: size, Name: name})
	g.emit(ir.Inst{Kind: ir.KAlloca, Dst: r, Size: size, Align: align, Name: name,
		C: ir.CI(off)})
	if t.ContainsPointer() {
		g.clear = append(g.clear, ir.AllocaSlot{Offset: off, Size: size, Name: name})
	}
	return r
}

// findAddressTaken marks symbols whose address escapes via &.
func (g *generator) findAddressTaken(s cast.Stmt, out map[*sema.Symbol]bool) {
	var walkExpr func(e cast.Expr)
	markAddr := func(e cast.Expr) {
		if id, ok := e.(*cast.Ident); ok {
			if sym := g.info.Refs[id]; sym != nil {
				out[sym] = true
			}
		}
	}
	walkExpr = func(e cast.Expr) {
		switch x := e.(type) {
		case *cast.Unary:
			if x.Op == ctoken.Amp {
				// &x.f or &x[i] still requires x in memory when x is
				// the direct operand chain base.
				base := x.X
				for {
					switch b := base.(type) {
					case *cast.Member:
						if b.Arrow {
							base = nil
						} else {
							base = b.X
							continue
						}
					case *cast.Index:
						base = b.X
						continue
					}
					break
				}
				if base != nil {
					markAddr(base)
				}
			}
			if x.X != nil {
				walkExpr(x.X)
			}
		case *cast.Postfix:
			walkExpr(x.X)
		case *cast.Binary:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *cast.Assign:
			walkExpr(x.L)
			walkExpr(x.R)
		case *cast.Cond:
			walkExpr(x.C)
			walkExpr(x.Then)
			walkExpr(x.Else)
		case *cast.Comma:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *cast.Cast:
			walkExpr(x.X)
		case *cast.SizeofType:
			// sizeof does not evaluate its operand.
		case *cast.Index:
			walkExpr(x.X)
			walkExpr(x.I)
		case *cast.Member:
			walkExpr(x.X)
		case *cast.Call:
			walkExpr(x.Target)
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	var walkInit func(in *cast.Init)
	walkInit = func(in *cast.Init) {
		if in == nil {
			return
		}
		if in.Expr != nil {
			walkExpr(in.Expr)
		}
		for _, item := range in.List {
			walkInit(item)
		}
	}
	var walk func(s cast.Stmt)
	walk = func(s cast.Stmt) {
		switch x := s.(type) {
		case *cast.Block:
			for _, st := range x.Stmts {
				walk(st)
			}
		case *cast.ExprStmt:
			walkExpr(x.X)
		case *cast.DeclStmt:
			for _, d := range x.Decls {
				walkInit(d.Init)
			}
		case *cast.If:
			walkExpr(x.Cond)
			walk(x.Then)
			if x.Else != nil {
				walk(x.Else)
			}
		case *cast.While:
			walkExpr(x.Cond)
			walk(x.Body)
		case *cast.DoWhile:
			walk(x.Body)
			walkExpr(x.Cond)
		case *cast.For:
			if x.Init != nil {
				walk(x.Init)
			}
			if x.Cond != nil {
				walkExpr(x.Cond)
			}
			if x.Post != nil {
				walkExpr(x.Post)
			}
			walk(x.Body)
		case *cast.Return:
			if x.X != nil {
				walkExpr(x.X)
			}
		case *cast.Labeled:
			walk(x.Stmt)
		case *cast.Switch:
			walkExpr(x.Tag)
			for _, cs := range x.Cases {
				for _, st := range cs.Body {
					walk(st)
				}
			}
		}
	}
	walk(s)
}

// --------------------------------------------------------------- statements

func (g *generator) genStmt(s cast.Stmt) error {
	switch x := s.(type) {
	case *cast.Block:
		for _, st := range x.Stmts {
			if err := g.genStmt(st); err != nil {
				return err
			}
		}
		return nil

	case *cast.ExprStmt:
		_, err := g.genExpr(x.X)
		return err

	case *cast.DeclStmt:
		for _, d := range x.Decls {
			if err := g.genLocalDecl(d); err != nil {
				return err
			}
		}
		return nil

	case *cast.If:
		cond, err := g.genCond(x.Cond)
		if err != nil {
			return err
		}
		thenB := g.fn.NewBlock("if.then")
		endB := g.fn.NewBlock("if.end")
		elseB := endB
		if x.Else != nil {
			elseB = g.fn.NewBlock("if.else")
		}
		g.condBr(cond, thenB, elseB)
		g.setBlock(thenB)
		if err := g.genStmt(x.Then); err != nil {
			return err
		}
		g.br(endB)
		if x.Else != nil {
			g.setBlock(elseB)
			if err := g.genStmt(x.Else); err != nil {
				return err
			}
			g.br(endB)
		}
		g.setBlock(endB)
		return nil

	case *cast.While:
		condB := g.fn.NewBlock("while.cond")
		bodyB := g.fn.NewBlock("while.body")
		endB := g.fn.NewBlock("while.end")
		g.br(condB)
		g.setBlock(condB)
		cond, err := g.genCond(x.Cond)
		if err != nil {
			return err
		}
		g.condBr(cond, bodyB, endB)
		g.setBlock(bodyB)
		g.pushLoop(endB, condB)
		if err := g.genStmt(x.Body); err != nil {
			return err
		}
		g.popLoop()
		g.br(condB)
		g.setBlock(endB)
		return nil

	case *cast.DoWhile:
		bodyB := g.fn.NewBlock("do.body")
		condB := g.fn.NewBlock("do.cond")
		endB := g.fn.NewBlock("do.end")
		g.br(bodyB)
		g.setBlock(bodyB)
		g.pushLoop(endB, condB)
		if err := g.genStmt(x.Body); err != nil {
			return err
		}
		g.popLoop()
		g.br(condB)
		g.setBlock(condB)
		cond, err := g.genCond(x.Cond)
		if err != nil {
			return err
		}
		g.condBr(cond, bodyB, endB)
		g.setBlock(endB)
		return nil

	case *cast.For:
		if x.Init != nil {
			if err := g.genStmt(x.Init); err != nil {
				return err
			}
		}
		condB := g.fn.NewBlock("for.cond")
		bodyB := g.fn.NewBlock("for.body")
		postB := g.fn.NewBlock("for.post")
		endB := g.fn.NewBlock("for.end")
		g.br(condB)
		g.setBlock(condB)
		if x.Cond != nil {
			cond, err := g.genCond(x.Cond)
			if err != nil {
				return err
			}
			g.condBr(cond, bodyB, endB)
		} else {
			g.br(bodyB)
		}
		g.setBlock(bodyB)
		g.pushLoop(endB, postB)
		if err := g.genStmt(x.Body); err != nil {
			return err
		}
		g.popLoop()
		g.br(postB)
		g.setBlock(postB)
		if x.Post != nil {
			if _, err := g.genExpr(x.Post); err != nil {
				return err
			}
		}
		g.br(condB)
		g.setBlock(endB)
		return nil

	case *cast.Return:
		if x.X == nil {
			if g.fn.HasRet {
				g.emitDefaultReturn()
			} else {
				g.emit(ir.Inst{Kind: ir.KRet})
			}
			return nil
		}
		v, err := g.genExprConverted(x.X, g.fi.Decl.Ret)
		if err != nil {
			return err
		}
		g.emit(ir.Inst{Kind: ir.KRet, HasVal: true, A: v})
		return nil

	case *cast.Break:
		if len(g.breakTargets) == 0 {
			return errAt(x.Pos(), "break outside loop or switch")
		}
		g.br(g.breakTargets[len(g.breakTargets)-1])
		return nil

	case *cast.Continue:
		if len(g.continueTargets) == 0 {
			return errAt(x.Pos(), "continue outside loop")
		}
		g.br(g.continueTargets[len(g.continueTargets)-1])
		return nil

	case *cast.Goto:
		g.br(g.labelBlocks[x.Label])
		return nil

	case *cast.Labeled:
		b := g.labelBlocks[x.Label]
		g.br(b)
		g.setBlock(b)
		return g.genStmt(x.Stmt)

	case *cast.Switch:
		return g.genSwitch(x)
	}
	return errAt(s.Pos(), "internal: cannot lower %T", s)
}

func (g *generator) pushLoop(brk, cont int) {
	g.breakTargets = append(g.breakTargets, brk)
	g.continueTargets = append(g.continueTargets, cont)
}

func (g *generator) popLoop() {
	g.breakTargets = g.breakTargets[:len(g.breakTargets)-1]
	g.continueTargets = g.continueTargets[:len(g.continueTargets)-1]
}

func (g *generator) genSwitch(x *cast.Switch) error {
	tag, err := g.genExpr(x.Tag)
	if err != nil {
		return err
	}
	endB := g.fn.NewBlock("switch.end")
	// Create a body block per case, then a comparison chain.
	bodyBlocks := make([]int, len(x.Cases))
	for i := range x.Cases {
		bodyBlocks[i] = g.fn.NewBlock("case.body")
	}
	defaultB := endB
	for i, cs := range x.Cases {
		if cs.IsDefault {
			defaultB = bodyBlocks[i]
		}
	}
	// Comparison chain.
	for i, cs := range x.Cases {
		if cs.IsDefault {
			continue
		}
		r := g.newReg(ir.ClassInt)
		g.emit(ir.Inst{Kind: ir.KCmp, Dst: r, Pred: ir.PredEQ, A: tag, B: ir.CI(cs.Value)})
		next := g.fn.NewBlock("case.test")
		g.condBr(ir.R(r), bodyBlocks[i], next)
		g.setBlock(next)
		_ = i
	}
	g.br(defaultB)
	// Bodies with fallthrough.
	g.breakTargets = append(g.breakTargets, endB)
	for i, cs := range x.Cases {
		g.setBlock(bodyBlocks[i])
		for _, st := range cs.Body {
			if err := g.genStmt(st); err != nil {
				return err
			}
		}
		if i+1 < len(x.Cases) {
			g.br(bodyBlocks[i+1]) // fallthrough
		} else {
			g.br(endB)
		}
	}
	g.breakTargets = g.breakTargets[:len(g.breakTargets)-1]
	g.setBlock(endB)
	return nil
}

func (g *generator) genLocalDecl(d *cast.VarDecl) error {
	sym := g.findLocalSym(d)
	if sym == nil {
		return errAt(d.Pos(), "internal: unresolved local %q", d.Name)
	}
	if d.Static {
		return nil // storage emitted as a global in genFunc
	}
	if d.Init == nil {
		return nil
	}
	if r, ok := g.regOf[sym]; ok {
		v, err := g.genExprConverted(d.Init.Expr, sym.Type)
		if err != nil {
			return err
		}
		g.emit(ir.Inst{Kind: ir.KMov, Dst: r, A: v})
		return nil
	}
	addr := g.addrOf[sym]
	return g.genInitInto(ir.R(addr), sym.Type, d.Init)
}

// genInitInto stores an initializer into memory at addr.
func (g *generator) genInitInto(addr ir.Value, t *ctypes.Type, init *cast.Init) error {
	if init.Expr != nil {
		if s, ok := init.Expr.(*cast.StringLit); ok && t.Kind == ctypes.Array {
			// char buf[N] = "str": copy the literal (memcpy semantics).
			name := g.internString(s.Value)
			n := int64(len(s.Value)) + 1
			if t.ArrayLen >= 0 && n > t.ArrayLen {
				n = t.ArrayLen
			}
			g.emit(ir.Inst{Kind: ir.KCall, Dst: ir.NoReg,
				Callee:  ir.FV("memcpy"),
				Args:    []ir.Value{addr, ir.GV(name, 0), ir.CI(n)},
				DstBase: ir.NoReg, DstBound: ir.NoReg})
			return nil
		}
		v, err := g.genExprConverted(init.Expr, t)
		if err != nil {
			return err
		}
		if t.Kind == ctypes.Struct {
			// Struct assignment from another struct lvalue: the
			// expression evaluates to the source address.
			g.emit(ir.Inst{Kind: ir.KCall, Dst: ir.NoReg,
				Callee:  ir.FV("memcpy"),
				Args:    []ir.Value{addr, v, ir.CI(t.Size())},
				DstBase: ir.NoReg, DstBound: ir.NoReg})
			return nil
		}
		mt, err := memTypeOf(t)
		if err != nil {
			return errAt(init.Pos, "%v", err)
		}
		g.emit(ir.Inst{Kind: ir.KStore, A: addr, B: v, Mem: mt})
		return nil
	}
	// Brace list: zero the whole object, then store the listed elements.
	g.emit(ir.Inst{Kind: ir.KCall, Dst: ir.NoReg, Callee: ir.FV("memset"),
		Args:    []ir.Value{addr, ir.CI(0), ir.CI(t.Size())},
		DstBase: ir.NoReg, DstBound: ir.NoReg})
	return g.genBraceInto(addr, t, init)
}

func (g *generator) genBraceInto(addr ir.Value, t *ctypes.Type, init *cast.Init) error {
	switch t.Kind {
	case ctypes.Array:
		for i, item := range init.List {
			off := int64(i) * t.Elem.Size()
			ea := g.addrPlus(addr, off)
			if item.List != nil {
				if err := g.genBraceInto(ea, t.Elem, item); err != nil {
					return err
				}
			} else if err := g.genInitInto(ea, t.Elem, item); err != nil {
				return err
			}
		}
	case ctypes.Struct:
		for i, item := range init.List {
			if i >= len(t.Fields) {
				break
			}
			f := t.Fields[i]
			ea := g.addrPlus(addr, f.Offset)
			if item.List != nil {
				if err := g.genBraceInto(ea, f.Type, item); err != nil {
					return err
				}
			} else if err := g.genInitInto(ea, f.Type, item); err != nil {
				return err
			}
		}
	default:
		if len(init.List) >= 1 {
			return g.genInitInto(addr, t, init.List[0])
		}
	}
	return nil
}

// fieldAddr emits the address of a struct field and marks the GEP for
// bounds shrinking: the resulting pointer's metadata narrows to the field
// (paper §3.1 "Shrinking Pointer Bounds"), which is what lets SoftBound
// catch the sub-object overflows object-table schemes miss (§2.1).
func (g *generator) fieldAddr(base ir.Value, off, fieldSize int64) ir.Value {
	r := g.newReg(ir.ClassPtr)
	g.emit(ir.Inst{Kind: ir.KGEP, Dst: r, A: base, B: ir.CI(0), Size: 1,
		C: ir.CI(off), Shrink: true, ShrinkLen: fieldSize})
	return ir.R(r)
}

// addrPlus emits addr+off (folding into the operand when possible).
func (g *generator) addrPlus(addr ir.Value, off int64) ir.Value {
	if off == 0 {
		return addr
	}
	if addr.Kind == ir.VGlobal {
		a := addr
		a.Off += off
		return a
	}
	r := g.newReg(ir.ClassPtr)
	g.emit(ir.Inst{Kind: ir.KGEP, Dst: r, A: addr, B: ir.CI(0), Size: 1, C: ir.CI(off)})
	return ir.R(r)
}

func (g *generator) findLocalSym(d *cast.VarDecl) *sema.Symbol {
	for _, s := range g.fi.Locals {
		if s.Decl == d {
			return s
		}
	}
	return nil
}
