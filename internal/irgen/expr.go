package irgen

import (
	"softbound/internal/cast"
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
	"softbound/internal/ir"
)

// lvalue describes a resolved assignable location: either a promoted
// register or a memory address.
type lvalue struct {
	isReg bool
	reg   ir.Reg
	addr  ir.Value
	t     *ctypes.Type // object type, undecayed
}

// genExpr lowers e to an rvalue.
func (g *generator) genExpr(e cast.Expr) (ir.Value, error) {
	switch x := e.(type) {
	case *cast.IntLit:
		return ir.CI(int64(x.Value)), nil
	case *cast.FloatLit:
		return ir.CF(x.Value), nil
	case *cast.StringLit:
		return ir.GV(g.internString(x.Value), 0), nil

	case *cast.Ident:
		switch x.Kind {
		case cast.VarEnumConst:
			return ir.CI(x.EnumVal), nil
		case cast.VarFunc:
			return ir.FV(x.Name), nil
		}
		lv, err := g.genLValue(x)
		if err != nil {
			return ir.Value{}, err
		}
		return g.loadLValue(lv, x.Pos())

	case *cast.Unary:
		return g.genUnary(x)

	case *cast.Postfix:
		old, _, err := g.genIncDec(x.X, x.Op, x.Pos())
		return old, err

	case *cast.Binary:
		return g.genBinary(x)

	case *cast.Assign:
		return g.genAssign(x)

	case *cast.Cond:
		return g.genCondExpr(x)

	case *cast.Comma:
		if _, err := g.genExpr(x.X); err != nil {
			return ir.Value{}, err
		}
		return g.genExpr(x.Y)

	case *cast.Cast:
		st := exprType(x.X)
		if x.To.Kind == ctypes.Void {
			if _, err := g.genExpr(x.X); err != nil {
				return ir.Value{}, err
			}
			return ir.CI(0), nil
		}
		v, err := g.genExpr(x.X)
		if err != nil {
			return ir.Value{}, err
		}
		return g.convert(v, st, x.To.Decay()), nil

	case *cast.SizeofType:
		if x.Of == nil {
			return ir.Value{}, errAt(x.Pos(), "internal: unresolved sizeof")
		}
		return ir.CI(x.Of.Size()), nil

	case *cast.Index, *cast.Member:
		lv, err := g.genLValue(e)
		if err != nil {
			return ir.Value{}, err
		}
		return g.loadLValue(lv, e.Pos())

	case *cast.Call:
		return g.genCall(x)
	}
	return ir.Value{}, errAt(e.Pos(), "internal: cannot lower expression %T", e)
}

// exprType returns the sema-resolved (decayed) type of e.
func exprType(e cast.Expr) *ctypes.Type { return e.Type() }

// loadLValue produces the rvalue of an lvalue: a load for scalars, the
// address for arrays/structs/functions (decay).
func (g *generator) loadLValue(lv lvalue, pos ctoken.Pos) (ir.Value, error) {
	if lv.isReg {
		return ir.R(lv.reg), nil
	}
	switch lv.t.Kind {
	case ctypes.Array, ctypes.Struct, ctypes.Func:
		return lv.addr, nil
	}
	mt, err := memTypeOf(lv.t)
	if err != nil {
		return ir.Value{}, errAt(pos, "%v", err)
	}
	dst := g.newReg(mt.Class())
	g.emit(ir.Inst{Kind: ir.KLoad, Dst: dst, A: lv.addr, Mem: mt})
	return ir.R(dst), nil
}

// genLValue resolves an assignable expression to an lvalue.
func (g *generator) genLValue(e cast.Expr) (lvalue, error) {
	switch x := e.(type) {
	case *cast.Ident:
		sym := g.info.Refs[x]
		if sym == nil {
			return lvalue{}, errAt(x.Pos(), "internal: unresolved %q", x.Name)
		}
		if r, ok := g.regOf[sym]; ok {
			return lvalue{isReg: true, reg: r, t: g.typeOf[sym]}, nil
		}
		if a, ok := g.addrOf[sym]; ok {
			return lvalue{addr: ir.R(a), t: g.typeOf[sym]}, nil
		}
		if x.Kind == cast.VarGlobal {
			return lvalue{addr: ir.GV(x.Name, 0), t: sym.Type}, nil
		}
		if x.Kind == cast.VarLocal {
			// Block-scope static: module global under a mangled name.
			return lvalue{addr: ir.GV(g.fn.Name+"."+x.Name, 0), t: sym.Type}, nil
		}
		return lvalue{}, errAt(x.Pos(), "%q is not an lvalue", x.Name)

	case *cast.StringLit:
		name := g.internString(x.Value)
		return lvalue{addr: ir.GV(name, 0),
			t: ctypes.ArrayOf(ctypes.CharType, int64(len(x.Value))+1)}, nil

	case *cast.Unary:
		if x.Op != ctoken.Star {
			return lvalue{}, errAt(x.Pos(), "not an lvalue")
		}
		v, err := g.genExpr(x.X)
		if err != nil {
			return lvalue{}, err
		}
		pt := exprType(x.X)
		if pt == nil || !pt.IsPointer() {
			return lvalue{}, errAt(x.Pos(), "dereference of non-pointer")
		}
		return lvalue{addr: v, t: pt.Elem}, nil

	case *cast.Index:
		base, err := g.genExpr(x.X)
		if err != nil {
			return lvalue{}, err
		}
		idx, err := g.genExpr(x.I)
		if err != nil {
			return lvalue{}, err
		}
		pt := exprType(x.X)
		elem := pt.Elem
		addr := g.gep(base, idx, elem.Size())
		return lvalue{addr: addr, t: elem}, nil

	case *cast.Member:
		var baseAddr ir.Value
		if x.Arrow {
			v, err := g.genExpr(x.X)
			if err != nil {
				return lvalue{}, err
			}
			baseAddr = v
		} else {
			lv, err := g.genLValue(x.X)
			if err != nil {
				return lvalue{}, err
			}
			if lv.isReg {
				return lvalue{}, errAt(x.Pos(), "internal: struct in register")
			}
			baseAddr = lv.addr
		}
		addr := g.fieldAddr(baseAddr, x.Field.Offset, x.Field.Type.Size())
		return lvalue{addr: addr, t: x.Field.Type}, nil
	}
	return lvalue{}, errAt(e.Pos(), "expression is not an lvalue")
}

// gep emits base + idx*scale.
func (g *generator) gep(base, idx ir.Value, scale int64) ir.Value {
	if idx.Kind == ir.VConstInt {
		return g.addrPlus(base, idx.Int*scale)
	}
	r := g.newReg(ir.ClassPtr)
	g.emit(ir.Inst{Kind: ir.KGEP, Dst: r, A: base, B: idx, Size: scale, C: ir.CI(0)})
	return ir.R(r)
}

// storeLValue assigns v (already converted to lv.t) to the location.
func (g *generator) storeLValue(lv lvalue, v ir.Value, pos ctoken.Pos) error {
	if lv.isReg {
		g.emit(ir.Inst{Kind: ir.KMov, Dst: lv.reg, A: v})
		return nil
	}
	if lv.t.Kind == ctypes.Struct {
		g.emit(ir.Inst{Kind: ir.KCall, Dst: ir.NoReg, Callee: ir.FV("memcpy"),
			Args:    []ir.Value{lv.addr, v, ir.CI(lv.t.Size())},
			DstBase: ir.NoReg, DstBound: ir.NoReg})
		return nil
	}
	mt, err := memTypeOf(lv.t)
	if err != nil {
		return errAt(pos, "%v", err)
	}
	g.emit(ir.Inst{Kind: ir.KStore, A: lv.addr, B: v, Mem: mt})
	return nil
}

// ------------------------------------------------------------- conversions

// convert coerces v from type `from` to type `to`, emitting KConv when a
// representation change is required.
func (g *generator) convert(v ir.Value, from, to *ctypes.Type) ir.Value {
	if from == nil || to == nil {
		return v
	}
	from, to = from.Decay(), to.Decay()
	switch {
	case from.IsInteger() && to.IsInteger():
		// Registers hold 64-bit extended values; a conversion is only
		// needed when narrowing (or re-extending with different sign).
		if to.Size() >= 8 && from.Size() <= to.Size() {
			return v
		}
		if to.Size() >= from.Size() && to.Unsigned == from.Unsigned && to.Size() >= 8 {
			return v
		}
		if v.Kind == ir.VConstInt {
			return ir.CI(truncExtend(v.Int, int(to.Size())*8, !to.Unsigned))
		}
		if to.Size() == from.Size() && to.Unsigned == from.Unsigned {
			return v
		}
		if to.Size() > from.Size() {
			// Widening: value already extended per source signedness.
			return v
		}
		dst := g.newReg(ir.ClassInt)
		mt, _ := memTypeOf(to)
		g.emit(ir.Inst{Kind: ir.KConv, Dst: dst, A: v, Mem: mt,
			ConvSrc: ir.MemI64, IntWidth: int(to.Size()) * 8, Signed: !to.Unsigned})
		return ir.R(dst)

	case from.IsInteger() && to.IsFloat():
		dst := g.newReg(ir.ClassFloat)
		mt, _ := memTypeOf(to)
		src := ir.MemI64
		if from.Unsigned {
			src = ir.MemU32 // marker: unsigned integer source
		}
		g.emit(ir.Inst{Kind: ir.KConv, Dst: dst, A: v, Mem: mt, ConvSrc: src,
			Signed: !from.Unsigned})
		return ir.R(dst)

	case from.IsFloat() && to.IsInteger():
		dst := g.newReg(ir.ClassInt)
		mt, _ := memTypeOf(to)
		g.emit(ir.Inst{Kind: ir.KConv, Dst: dst, A: v, Mem: mt, ConvSrc: ir.MemF64,
			IntWidth: int(to.Size()) * 8, Signed: !to.Unsigned})
		return ir.R(dst)

	case from.IsFloat() && to.IsFloat():
		if from.Size() == to.Size() {
			return v
		}
		dst := g.newReg(ir.ClassFloat)
		mt, _ := memTypeOf(to)
		g.emit(ir.Inst{Kind: ir.KConv, Dst: dst, A: v, Mem: mt, ConvSrc: ir.MemF64})
		return ir.R(dst)

	case from.IsInteger() && to.IsPointer():
		// Integer to pointer: the SoftBound pass gives the result NULL
		// bounds (paper §5.2 "creating pointers from integers").
		dst := g.newReg(ir.ClassPtr)
		g.emit(ir.Inst{Kind: ir.KConv, Dst: dst, A: v, Mem: ir.MemPtr, ConvSrc: ir.MemI64})
		return ir.R(dst)

	case from.IsPointer() && to.IsInteger():
		if to.Size() >= 8 {
			return v // same bits
		}
		dst := g.newReg(ir.ClassInt)
		mt, _ := memTypeOf(to)
		g.emit(ir.Inst{Kind: ir.KConv, Dst: dst, A: v, Mem: mt, ConvSrc: ir.MemI64,
			IntWidth: int(to.Size()) * 8, Signed: !to.Unsigned})
		return ir.R(dst)

	case from.IsPointer() && to.IsPointer():
		return v // bounds metadata flows with the register (wild casts ok)
	}
	return v
}

func truncExtend(v int64, bits int, signed bool) int64 {
	if bits >= 64 {
		return v
	}
	mask := (uint64(1) << uint(bits)) - 1
	u := uint64(v) & mask
	if signed && u&(1<<uint(bits-1)) != 0 {
		u |= ^mask
	}
	return int64(u)
}

// genExprConverted lowers e and converts the result to type t.
func (g *generator) genExprConverted(e cast.Expr, t *ctypes.Type) (ir.Value, error) {
	v, err := g.genExpr(e)
	if err != nil {
		return ir.Value{}, err
	}
	return g.convert(v, exprType(e), t), nil
}

// genCond lowers a condition to a scalar value suitable for KCondBr.
func (g *generator) genCond(e cast.Expr) (ir.Value, error) {
	t := exprType(e)
	v, err := g.genExpr(e)
	if err != nil {
		return ir.Value{}, err
	}
	if t != nil && t.IsFloat() {
		dst := g.newReg(ir.ClassInt)
		g.emit(ir.Inst{Kind: ir.KCmp, Dst: dst, Pred: ir.PredFNE, A: v, B: ir.CF(0)})
		return ir.R(dst), nil
	}
	return v, nil
}
