package bugbench

import (
	"testing"

	"softbound/internal/baseline"
	"softbound/internal/driver"
	"softbound/internal/vm"
)

// runWith executes a program with an optional baseline checker and mode.
func runWith(t *testing.T, src string, mode driver.Mode, checker vm.Checker) *driver.Result {
	t.Helper()
	cfg := driver.DefaultConfig(mode)
	cfg.Checker = checker
	res, err := driver.RunSource(src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

// TestTable4DetectionMatrix reproduces the paper's Table 4: which tools
// detect each BugBench overflow.
func TestTable4DetectionMatrix(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			// Valgrind-style (uninstrumented + heap checker).
			res := runWith(t, p.Source, driver.ModeNone, baseline.NewValgrind())
			if got := res.BaselineHit != nil; got != p.Valgrind {
				t.Errorf("valgrind detection = %v, want %v (err=%v)", got, p.Valgrind, res.Err)
			}
			// Mudflap-style (uninstrumented + object DB checker).
			res = runWith(t, p.Source, driver.ModeNone, baseline.NewMudflap())
			if got := res.BaselineHit != nil; got != p.Mudflap {
				t.Errorf("mudflap detection = %v, want %v (err=%v)", got, p.Mudflap, res.Err)
			}
			// SoftBound store-only.
			res = runWith(t, p.Source, driver.ModeStoreOnly, nil)
			if got := res.Violation != nil; got != p.StoreOnly {
				t.Errorf("store-only detection = %v, want %v (err=%v)", got, p.StoreOnly, res.Err)
			}
			// SoftBound full.
			res = runWith(t, p.Source, driver.ModeFull, nil)
			if got := res.Violation != nil; got != p.Full {
				t.Errorf("full detection = %v, want %v (err=%v)", got, p.Full, res.Err)
			}
		})
	}
}

// TestProgramsRunCleanWithoutChecking confirms the bugs are silent
// corruption, not crashes, when unchecked (that is what makes them
// dangerous).
func TestProgramsRunCleanWithoutChecking(t *testing.T) {
	for _, p := range Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			res := runWith(t, p.Source, driver.ModeNone, nil)
			if res.Err != nil {
				t.Fatalf("unchecked run crashed: %v (output %q)", res.Err, res.Output)
			}
			if res.Output == "" {
				t.Fatal("program produced no output")
			}
		})
	}
}
