// Package bugbench reproduces the BugBench programs of the paper's
// Table 4: four workloads (go, compress, polymorph, gzip) containing the
// documented classes of real overflow bugs, used to compare SoftBound
// against Valgrind- and Mudflap-style tools.
//
// Each program performs its characteristic computation and then triggers
// the documented overflow. The bug *classes* match what drives the
// paper's detection matrix:
//
//   - go: a read overflow of a global array that lands inside the
//     adjacent global — invisible to object-granularity tools and to
//     heap-only tools, and unchecked by store-only mode.
//   - compress: a write overflow of a global array that straddles the
//     object's end — visible at object granularity (Mudflap) but not to
//     a heap-only tool (Valgrind).
//   - polymorph: a heap write overflow into allocator padding while
//     converting a too-long filename.
//   - gzip: a strcpy-driven heap write overflow of a fixed-size name
//     buffer.
package bugbench

// Program is one BugBench entry with its expected detection matrix
// (Table 4 of the paper).
type Program struct {
	Name   string
	Source string
	// Expected detections, per tool.
	Valgrind  bool
	Mudflap   bool
	StoreOnly bool
	Full      bool
}

// Suite returns the four BugBench programs in Table 4 order.
func Suite() []Program {
	return []Program{
		{
			Name:     "go",
			Valgrind: false, Mudflap: false, StoreOnly: false, Full: true,
			Source: goSource,
		},
		{
			Name:     "compress",
			Valgrind: false, Mudflap: true, StoreOnly: true, Full: true,
			Source: compressSource,
		},
		{
			Name:     "polymorph",
			Valgrind: true, Mudflap: true, StoreOnly: true, Full: true,
			Source: polymorphSource,
		},
		{
			Name:     "gzip",
			Valgrind: true, Mudflap: true, StoreOnly: true, Full: true,
			Source: gzipSource,
		},
	}
}

// goSource models SPEC go's board evaluator: liberty counting over a
// 19x19 board with a distance table. The documented bug class is an
// out-of-bounds *read* of a global array with an unvalidated index; the
// read lands in the adjacent global table.
const goSource = `
int board[361];        /* 19x19 */
int dist[361];         /* distance table; read overflowed */
int libs[361];         /* adjacent global absorbs the overflow */

int wrap_index(int x, int y) {
    /* BUG: no bounds validation; y can reach 19 making idx 361+. */
    return y * 19 + x;
}

int count_region(int x, int y) {
    int idx = wrap_index(x, y);
    return dist[idx] + board[idx % 361];
}

int main(void) {
    int x, y, i;
    int total = 0;
    for (i = 0; i < 361; i++) {
        board[i] = (i * 7) % 3;
        dist[i] = (i * 13) % 5;
        libs[i] = i;
    }
    for (y = 0; y < 19; y++)
        for (x = 0; x < 19; x++)
            total += count_region(x, y);
    /* The buggy evaluation: a ko-threat scan walks one row too far,
       reading dist[361..379] which is inside libs[]. */
    for (x = 0; x < 19; x++)
        total += count_region(x, 19);
    printf("go total %d\n", total);
    return 0;
}`

// compressSource models SPEC compress's hash-table coder. The documented
// bug class is a write overflow of a global table; the overflowing write
// straddles the end of the object.
const compressSource = `
char htab_tail[6];     /* documented short buffer */
long codetab[64];

int hash_step(int code, int c) {
    return ((code << 3) ^ c) & 63;
}

int main(void) {
    int i, c;
    int code = 1;
    long checksum = 0;
    char input[256];
    for (i = 0; i < 255; i++)
        input[i] = (char)('a' + (i * 17) % 26);
    input[255] = 0;
    for (i = 0; input[i]; i++) {
        c = input[i];
        code = hash_step(code, c);
        codetab[code] = codetab[code] + c;
        checksum += codetab[code];
    }
    /* BUG: the tail marker is written with a 4-byte store at offset 4,
       straddling the 6-byte object's end. */
    *(int*)(htab_tail + 4) = code;
    printf("compress checksum %ld\n", checksum);
    return 0;
}`

// polymorphSource models polymorph's filename converter: it normalizes
// DOS-style names into a fixed heap buffer. The documented bug is the
// unchecked copy of a long name.
const polymorphSource = `
int main(void) {
    char* clean = (char*)malloc(20);
    char* orig = (char*)malloc(64);
    int i, n;
    long hash = 0;
    /* Build a 40-char filename. */
    for (i = 0; i < 40; i++)
        orig[i] = (char)('A' + (i % 26));
    orig[40] = 0;
    n = (int)strlen(orig);
    /* BUG: convert_filename copies without checking the 20-byte clean
       buffer. The write overflows into allocator padding (Valgrind's
       red-zone territory). */
    for (i = 0; i <= n; i++) {
        char c = orig[i];
        if (c >= 'A' && c <= 'Z')
            c = c - 'A' + 'a';
        clean[i] = c;
    }
    for (i = 0; clean[i]; i++)
        hash = hash * 31 + clean[i];
    printf("polymorph %ld\n", hash);
    return 0;
}`

// gzipSource models gzip's file-name handling: the input name is copied
// into a fixed-size buffer with strcpy (the documented 1024-byte ifname
// overflow, scaled down).
const gzipSource = `
int main(void) {
    char* ifname = (char*)malloc(40);
    char* window = (char*)malloc(256);
    char name[80];
    int i;
    long crc = 0;
    /* Deflate-ish work over the window. */
    for (i = 0; i < 256; i++)
        window[i] = (char)((i * 31) % 251);
    for (i = 0; i < 256; i++)
        crc = (crc << 1) ^ window[i];
    /* A 60-character command-line name. */
    for (i = 0; i < 60; i++)
        name[i] = (char)('a' + (i % 26));
    name[60] = 0;
    /* BUG: get_istat() does strcpy(ifname, name) with no length check. */
    strcpy(ifname, name);
    printf("gzip crc %ld %s\n", crc, ifname);
    return 0;
}`
