// Package faults is a deterministic, seeded fault injector for the
// execution substrate: it can flip bits in stored pointer words, drop or
// corrupt metadata-table entries, and force allocator OOM at a chosen
// allocation — the adversarial inputs behind the fail-closed hardening
// suite (DESIGN.md "Failure model").
//
// Determinism contract: an Injector's schedule is a pure function of its
// Plan (seed included) and the sequence of events the run feeds it. The
// VM is deterministic, so two runs of the same program under equal plans
// deliver bit-identical fault schedules — a failing seed is a
// reproducible test case, mirroring how the paper replays its attack
// suite.
//
// The injector threads into a run through two narrow surfaces:
//
//   - vm.Config.PtrStoreFault / vm.Config.AllocFault take the injector's
//     PtrStoreMask and AllowAlloc hooks (the driver wires these).
//   - WrapFacility decorates a meta.Facility so scheduled Lookups return
//     dropped (zero) or clobbered entries.
//
// An Injector serves one VM run on one goroutine; harnesses build one
// injector per cell from a shared Plan.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"softbound/internal/meta"
)

// Plan configures an injector: which fault classes fire and how often.
// Every *Every field is a mean event gap (0 disables the class); the
// concrete schedule is drawn pseudo-randomly from Seed.
type Plan struct {
	// Seed selects the fault schedule; equal seeds replay identically.
	Seed uint64 `json:"seed"`
	// FlipEvery flips one high bit (20–39) of roughly every Nth committed
	// non-NULL pointer store, displacing the pointer by ≥1 MiB so any
	// later dereference leaves its object.
	FlipEvery uint64 `json:"flip_every,omitempty"`
	// DropEvery zeroes roughly every Nth non-empty metadata lookup
	// (simulating lost table entries; zero bounds fail every check).
	DropEvery uint64 `json:"drop_every,omitempty"`
	// CorruptEvery clobbers roughly every Nth non-empty metadata lookup
	// with garbage low-memory bounds (simulating overwritten entries).
	CorruptEvery uint64 `json:"corrupt_every,omitempty"`
	// OOMAt forces the Nth heap allocation of the run to fail (malloc
	// returns NULL), 1-based.
	OOMAt uint64 `json:"oom_at,omitempty"`
	// StaleEvery perturbs the key of roughly every Nth metadata lookup
	// that carries a temporal identity (Key != 0), simulating a stale or
	// damaged lock-and-key word. Under the CETS schemes the perturbed key
	// no longer matches its lock, so the next dereference through the
	// entry fails closed as a temporal violation. No-op under spatial-only
	// schemes, whose entries never carry keys.
	StaleEvery uint64 `json:"stale_every,omitempty"`
}

// Enabled reports whether any fault class is active.
func (p Plan) Enabled() bool {
	return p.FlipEvery != 0 || p.DropEvery != 0 || p.CorruptEvery != 0 ||
		p.OOMAt != 0 || p.StaleEvery != 0
}

// String renders the plan in ParsePlan's spec format.
func (p Plan) String() string {
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	for _, kv := range []struct {
		k string
		v uint64
	}{{"flip", p.FlipEvery}, {"drop", p.DropEvery}, {"corrupt", p.CorruptEvery},
		{"oom", p.OOMAt}, {"stale", p.StaleEvery}} {
		if kv.v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", kv.k, kv.v))
		}
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a comma-separated spec like
// "seed=7,flip=200,drop=500,corrupt=300,oom=4,stale=100". Keys: seed,
// flip, drop, corrupt, oom, stale; omitted keys stay zero, the empty
// string is the zero Plan.
//
// The parser is strict so a typo cannot silently turn a fault arm into a
// no-op control arm: unknown keys, negative values, and repeated keys
// are all hard errors (a repeated key would otherwise last-win, hiding
// the earlier value).
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	fields := map[string]*uint64{
		"seed": &p.Seed, "flip": &p.FlipEvery, "drop": &p.DropEvery,
		"corrupt": &p.CorruptEvery, "oom": &p.OOMAt, "stale": &p.StaleEvery,
	}
	seen := map[string]bool{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, vs, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: bad plan field %q (want key=value)", field)
		}
		k = strings.TrimSpace(k)
		dst, known := fields[k]
		if !known {
			keys := make([]string, 0, len(fields))
			for key := range fields {
				keys = append(keys, key)
			}
			sort.Strings(keys)
			return Plan{}, fmt.Errorf("faults: unknown plan key %q (have %s)",
				k, strings.Join(keys, ", "))
		}
		if seen[k] {
			return Plan{}, fmt.Errorf("faults: duplicate plan key %q", k)
		}
		seen[k] = true
		vs = strings.TrimSpace(vs)
		if strings.HasPrefix(vs, "-") {
			return Plan{}, fmt.Errorf("faults: negative value in %q (event gaps and counts must be >= 0)", field)
		}
		v, err := strconv.ParseUint(vs, 10, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("faults: bad value in %q: %v", field, err)
		}
		*dst = v
	}
	return p, nil
}

// Stats counts faults the injector actually delivered (scheduled faults
// that landed on NULL stores or empty metadata slots are deferred, not
// counted).
type Stats struct {
	Flips    uint64 `json:"flips"`
	Drops    uint64 `json:"drops"`
	Corrupts uint64 `json:"corrupts"`
	OOMs     uint64 `json:"ooms"`
	Stales   uint64 `json:"stales"`
}

// Total is the number of faults delivered across all classes.
func (s Stats) Total() uint64 { return s.Flips + s.Drops + s.Corrupts + s.OOMs + s.Stales }

// Injector delivers one plan's fault schedule into one run. Not safe for
// concurrent use: it serves the single goroutine executing its VM.
type Injector struct {
	plan Plan
	rng  uint64

	// Absolute event indices of the next scheduled fault per class.
	nextFlip, nextDrop, nextCorrupt, nextStale uint64
	// Event counters.
	stores, lookups, allocs uint64

	stats Stats
}

// NewInjector builds an injector; equal plans yield equal schedules.
func NewInjector(p Plan) *Injector {
	i := &Injector{plan: p, rng: p.Seed*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9}
	if p.FlipEvery > 0 {
		i.nextFlip = i.gap(p.FlipEvery)
	}
	if p.DropEvery > 0 {
		i.nextDrop = i.gap(p.DropEvery)
	}
	if p.CorruptEvery > 0 {
		i.nextCorrupt = i.gap(p.CorruptEvery)
	}
	if p.StaleEvery > 0 {
		i.nextStale = i.gap(p.StaleEvery)
	}
	return i
}

// Plan returns the injector's configuration.
func (i *Injector) Plan() Plan { return i.plan }

// Stats returns the delivered-fault counters so far.
func (i *Injector) Stats() Stats { return i.stats }

// next advances the splitmix64 stream.
func (i *Injector) next() uint64 {
	i.rng += 0x9e3779b97f4a7c15
	z := i.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// gap draws a schedule gap uniform on [1, 2*period-1] (mean ≈ period).
func (i *Injector) gap(period uint64) uint64 {
	return 1 + i.next()%(2*period-1)
}

// PtrStoreMask is the vm.Config.PtrStoreFault hook: consulted on every
// committed pointer store, it returns a one-bit XOR mask when a flip is
// scheduled (0 otherwise). NULL stores defer the schedule by one event —
// flipping a NULL would fabricate a pointer out of nothing rather than
// corrupt an existing one.
func (i *Injector) PtrStoreMask(addr, val uint64) uint64 {
	if i.plan.FlipEvery == 0 {
		return 0
	}
	i.stores++
	if i.stores < i.nextFlip {
		return 0
	}
	if val == 0 {
		i.nextFlip++
		return 0
	}
	i.nextFlip = i.stores + i.gap(i.plan.FlipEvery)
	i.stats.Flips++
	return 1 << (20 + i.next()%20)
}

// AllowAlloc is the vm.Config.AllocFault hook: it forces the plan's Nth
// heap allocation to fail, modeling sudden OOM.
func (i *Injector) AllowAlloc(size uint64) bool {
	if i.plan.OOMAt == 0 {
		return true
	}
	i.allocs++
	if i.allocs == i.plan.OOMAt {
		i.stats.OOMs++
		return false
	}
	return true
}

// WrapFacility decorates a metadata facility with the metadata fault
// classes: scheduled Lookups return a dropped (zero) or clobbered entry.
// Updates, clears, and copies pass through untouched — the faults model
// table damage, not tracking bugs. Returns f unchanged when neither
// metadata class is enabled.
func (i *Injector) WrapFacility(f meta.Facility) meta.Facility {
	if i.plan.DropEvery == 0 && i.plan.CorruptEvery == 0 && i.plan.StaleEvery == 0 {
		return f
	}
	return &faultyFacility{Facility: f, inj: i}
}

type faultyFacility struct {
	meta.Facility
	inj *Injector
}

func (f *faultyFacility) Lookup(addr uint64) meta.Entry {
	return f.inj.mutateLookup(f.Facility.Lookup(addr))
}

func (f *faultyFacility) Name() string { return f.Facility.Name() + "+faults" }

// mutateLookup applies the metadata fault schedule to one lookup result.
// Empty entries defer the schedule (dropping or clobbering a slot that is
// already zero changes nothing).
func (i *Injector) mutateLookup(e meta.Entry) meta.Entry {
	i.lookups++
	if i.plan.DropEvery > 0 && i.lookups >= i.nextDrop {
		if e == (meta.Entry{}) {
			i.nextDrop++
		} else {
			i.nextDrop = i.lookups + i.gap(i.plan.DropEvery)
			i.stats.Drops++
			return meta.Entry{}
		}
	}
	if i.plan.CorruptEvery > 0 && i.lookups >= i.nextCorrupt {
		if e == (meta.Entry{}) {
			i.nextCorrupt++
		} else {
			i.nextCorrupt = i.lookups + i.gap(i.plan.CorruptEvery)
			i.stats.Corrupts++
			// Clobber with garbage bounds in unmapped low memory: no
			// mapped address lies inside [b, b+1), so any dereference
			// through the damaged entry fails its check — the corruption
			// is detected, never widens access.
			b := 16 + i.next()%4096
			return meta.Entry{Base: b, Bound: b + 1}
		}
	}
	if i.plan.StaleEvery > 0 && i.lookups >= i.nextStale {
		if e.Key == 0 {
			// Only entries carrying a temporal identity can go stale;
			// spatial-only entries defer the schedule.
			i.nextStale++
		} else {
			i.nextStale = i.lookups + i.gap(i.plan.StaleEvery)
			i.stats.Stales++
			// Perturb the key so it no longer matches its lock's word:
			// the dereference fails closed as a temporal violation.
			e.Key ^= 1 + i.next()%255
		}
	}
	return e
}
