package faults

import (
	"strings"
	"testing"

	"softbound/internal/meta"
)

func TestParsePlanRoundTrip(t *testing.T) {
	p, err := ParsePlan("seed=7,flip=200,drop=500,corrupt=300,oom=4")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{Seed: 7, FlipEvery: 200, DropEvery: 500, CorruptEvery: 300, OOMAt: 4}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	back, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("round trip %+v != %+v", back, p)
	}
}

func TestParsePlanEmptyAndErrors(t *testing.T) {
	if p, err := ParsePlan(""); err != nil || p.Enabled() {
		t.Fatalf("empty spec: %+v, %v", p, err)
	}
	if p, err := ParsePlan("  "); err != nil || p.Enabled() {
		t.Fatalf("blank spec: %+v, %v", p, err)
	}
	for _, bad := range []string{"flip", "flip=x", "bogus=1", "seed=-3"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q): expected error", bad)
		}
	}
}

// TestParsePlanRejectsUnknownKeys pins the failure mode the soak relies
// on: a typo'd key must be a hard error, never a silently-ignored no-op
// control arm. The unknown-key diagnostic must name the key even when
// the value would not parse either.
func TestParsePlanRejectsUnknownKeys(t *testing.T) {
	for _, spec := range []string{"flp=10", "seed=1,dorp=5", "oom=2,extra=1", "bogus=x"} {
		_, err := ParsePlan(spec)
		if err == nil {
			t.Fatalf("ParsePlan(%q): expected unknown-key error", spec)
		}
		if !strings.Contains(err.Error(), "unknown plan key") {
			t.Errorf("ParsePlan(%q): error %v does not identify the unknown key", spec, err)
		}
	}
}

// TestParsePlanRejectsNegativeValues pins the explicit negative-value
// diagnostic (not just a generic uint parse failure).
func TestParsePlanRejectsNegativeValues(t *testing.T) {
	for _, spec := range []string{"flip=-1", "seed=5,drop=-200", "oom=-0"} {
		_, err := ParsePlan(spec)
		if err == nil {
			t.Fatalf("ParsePlan(%q): expected negative-value error", spec)
		}
		if !strings.Contains(err.Error(), "negative value") {
			t.Errorf("ParsePlan(%q): error %v does not call out the negative value", spec, err)
		}
	}
}

// TestParsePlanRejectsDuplicateKeys: a repeated key would last-win and
// silently hide the earlier value, so it is a hard error too.
func TestParsePlanRejectsDuplicateKeys(t *testing.T) {
	for _, spec := range []string{"flip=1,flip=2", "seed=1,drop=2,seed=3"} {
		_, err := ParsePlan(spec)
		if err == nil {
			t.Fatalf("ParsePlan(%q): expected duplicate-key error", spec)
		}
		if !strings.Contains(err.Error(), "duplicate plan key") {
			t.Errorf("ParsePlan(%q): error %v does not identify the duplicate", spec, err)
		}
	}
}

// replay records an injector's full observable schedule over a synthetic
// event stream.
func replay(p Plan, events int) []uint64 {
	inj := NewInjector(p)
	var out []uint64
	for i := 0; i < events; i++ {
		addr := uint64(0x1000 + 8*i)
		val := uint64(0x200000 + 16*i)
		out = append(out, inj.PtrStoreMask(addr, val))
		e := inj.mutateLookup(meta.Entry{Base: val, Bound: val + 64})
		out = append(out, e.Base, e.Bound)
		if inj.AllowAlloc(64) {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
	}
	return out
}

func TestDeterminism(t *testing.T) {
	p := Plan{Seed: 42, FlipEvery: 7, DropEvery: 11, CorruptEvery: 13, OOMAt: 23}
	a := replay(p, 500)
	b := replay(p, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at event %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := replay(Plan{Seed: 43, FlipEvery: 7, DropEvery: 11, CorruptEvery: 13, OOMAt: 23}, 500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPtrStoreMaskSkipsNull(t *testing.T) {
	inj := NewInjector(Plan{Seed: 1, FlipEvery: 1})
	for i := 0; i < 100; i++ {
		if m := inj.PtrStoreMask(uint64(8*i), 0); m != 0 {
			t.Fatalf("NULL store %d got mask %#x", i, m)
		}
	}
	if inj.Stats().Flips != 0 {
		t.Fatalf("flips counted on NULL stores: %+v", inj.Stats())
	}
	// The deferred schedule must still fire on the next real pointer.
	if m := inj.PtrStoreMask(0x800, 0x300000); m == 0 {
		t.Fatal("deferred flip never delivered")
	}
	if inj.Stats().Flips != 1 {
		t.Fatalf("flip not counted: %+v", inj.Stats())
	}
}

func TestMaskBitsDisplaceFar(t *testing.T) {
	inj := NewInjector(Plan{Seed: 9, FlipEvery: 1})
	for i := 0; i < 200; i++ {
		m := inj.PtrStoreMask(uint64(8*i), 0x400000)
		if m == 0 {
			continue
		}
		if m&(m-1) != 0 {
			t.Fatalf("mask %#x is not a single bit", m)
		}
		if m < 1<<20 || m >= 1<<40 {
			t.Fatalf("mask %#x outside bit range [20,40)", m)
		}
	}
}

func TestAllowAllocFailsExactlyNth(t *testing.T) {
	inj := NewInjector(Plan{Seed: 5, OOMAt: 3})
	var failed []int
	for i := 1; i <= 10; i++ {
		if !inj.AllowAlloc(64) {
			failed = append(failed, i)
		}
	}
	if len(failed) != 1 || failed[0] != 3 {
		t.Fatalf("failed allocations %v, want [3]", failed)
	}
	if inj.Stats().OOMs != 1 {
		t.Fatalf("OOM count %d, want 1", inj.Stats().OOMs)
	}
}

// recorder is a minimal in-memory facility for wrapper tests.
type recorder struct {
	entries map[uint64]meta.Entry
}

func (r *recorder) Lookup(addr uint64) meta.Entry { return r.entries[addr&^7] }
func (r *recorder) Update(addr uint64, e meta.Entry) {
	r.entries[addr&^7] = e
}
func (r *recorder) Clear(addr, size uint64) {
	for a := addr &^ 7; a < addr+size; a += 8 {
		delete(r.entries, a)
	}
}
func (r *recorder) CopyRange(dst, src, size uint64) {}
func (r *recorder) Costs() meta.Costs               { return meta.Costs{} }
func (r *recorder) Footprint() int64                { return 0 }
func (r *recorder) Occupancy() meta.Occupancy {
	return meta.Occupancy{Live: int64(len(r.entries))}
}
func (r *recorder) Name() string { return "recorder" }

func TestWrapFacilityDropAndCorrupt(t *testing.T) {
	base := &recorder{entries: map[uint64]meta.Entry{}}
	good := meta.Entry{Base: 0x100000, Bound: 0x100040}
	for i := uint64(0); i < 64; i++ {
		base.Update(0x1000+8*i, good)
	}
	inj := NewInjector(Plan{Seed: 3, DropEvery: 4, CorruptEvery: 4})
	wrapped := inj.WrapFacility(base)
	if wrapped == meta.Facility(base) {
		t.Fatal("enabled metadata faults did not wrap the facility")
	}

	var drops, corrupts, clean int
	for i := uint64(0); i < 64; i++ {
		e := wrapped.Lookup(0x1000 + 8*i)
		switch {
		case e == (meta.Entry{}):
			drops++
		case e == good:
			clean++
		default:
			corrupts++
			// Corrupted bounds must be garbage that can never satisfy a
			// check against real objects: tiny and in low memory.
			if e.Bound-e.Base != 1 || e.Base >= 16+4096 {
				t.Fatalf("corrupt entry %+v not fail-closed garbage", e)
			}
		}
	}
	if drops == 0 || corrupts == 0 || clean == 0 {
		t.Fatalf("want a mix of outcomes, got drops=%d corrupts=%d clean=%d", drops, corrupts, clean)
	}
	st := inj.Stats()
	if int(st.Drops) != drops || int(st.Corrupts) != corrupts {
		t.Fatalf("stats %+v disagree with observed drops=%d corrupts=%d", st, drops, corrupts)
	}
}

func TestWrapFacilityPassthroughWhenDisabled(t *testing.T) {
	base := &recorder{entries: map[uint64]meta.Entry{}}
	inj := NewInjector(Plan{Seed: 1, FlipEvery: 10, OOMAt: 2})
	if inj.WrapFacility(base) != meta.Facility(base) {
		t.Fatal("facility wrapped although no metadata fault class is enabled")
	}
}

func TestWrapFacilityDefersEmptyEntries(t *testing.T) {
	base := &recorder{entries: map[uint64]meta.Entry{}}
	inj := NewInjector(Plan{Seed: 2, DropEvery: 1})
	wrapped := inj.WrapFacility(base)
	for i := uint64(0); i < 50; i++ {
		wrapped.Lookup(0x9000 + 8*i) // all empty: nothing to drop
	}
	if inj.Stats().Drops != 0 {
		t.Fatalf("drops counted on empty entries: %+v", inj.Stats())
	}
	base.Update(0x400, meta.Entry{Base: 0x400, Bound: 0x500})
	if e := wrapped.Lookup(0x400); e != (meta.Entry{}) {
		t.Fatalf("deferred drop not delivered on first real entry: %+v", e)
	}
}
