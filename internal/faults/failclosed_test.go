// Fail-closed integration suite (external test package: it drives the
// whole pipeline through internal/driver, which itself imports faults).
//
// The contract under test is the tentpole of the failure model: with full
// checking on, a run under injected faults either behaves identically to
// the fault-free reference or stops with a typed trap — it never silently
// diverges. With checking off, the same faults visibly corrupt at least
// some runs, demonstrating the fault classes are real hazards rather than
// no-ops the checked configuration trivially survives.
package faults_test

import (
	"fmt"
	"testing"

	"softbound/internal/attacks"
	"softbound/internal/driver"
	"softbound/internal/faults"
	"softbound/internal/meta"
	"softbound/internal/progs"
	"softbound/internal/vm"
)

// failClosedPrograms is the benchmark subset the suite sweeps: pointer-
// dense Olden programs plus compress (dense array traffic), at a small
// scale so the full matrix stays fast.
var failClosedPrograms = []string{"treeadd", "health", "mst", "compress"}

const failClosedScale = 3

// plans covers every fault class, alone, each under two seeds, plus one
// combined plan. Periods are tight so small-scale runs still see faults.
func plans() []faults.Plan {
	var out []faults.Plan
	for _, seed := range []uint64{1, 99} {
		out = append(out,
			faults.Plan{Seed: seed, FlipEvery: 50},
			faults.Plan{Seed: seed, DropEvery: 40},
			faults.Plan{Seed: seed, CorruptEvery: 40},
			faults.Plan{Seed: seed, OOMAt: 2 + seed%5},
		)
	}
	out = append(out, faults.Plan{Seed: 7, FlipEvery: 80, DropEvery: 60, CorruptEvery: 70, OOMAt: 6})
	return out
}

// runProg executes one benchmark under the given mode/scheme/injector.
func runProg(t *testing.T, src string, mode driver.Mode, scheme meta.Scheme, inj *faults.Injector) *driver.Result {
	t.Helper()
	cfg := driver.DefaultConfig(mode)
	if mode != driver.ModeNone {
		ctor := scheme.New
		cfg.Meta = scheme.Kind // the Kind drives temporal lowering for CETS schemes
		cfg.MetaFacility = func() (meta.Facility, error) { return ctor(), nil }
	}
	cfg.Faults = inj
	res, err := driver.RunSource(src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

// assertFailClosed checks the checked-build contract for one faulted run
// against its fault-free reference.
func assertFailClosed(t *testing.T, label string, ref, got *driver.Result, inj *faults.Injector) {
	t.Helper()
	if inj.Stats().Total() == 0 {
		// The schedule never fired (short run); the run must then be
		// identical to the reference.
		if got.Output != ref.Output || got.ExitCode != ref.ExitCode {
			t.Errorf("%s: no faults delivered yet run diverged (exit %d vs %d)",
				label, got.ExitCode, ref.ExitCode)
		}
		return
	}
	if got.Err != nil {
		// Detected: the error must carry a machine-readable trap code.
		if vm.CodeOf(got.Err) == "" {
			t.Errorf("%s: error without trap classification: %v", label, got.Err)
		}
		return
	}
	// Not detected: only acceptable if the run is indistinguishable from
	// the reference (the faults landed somewhere truly dead — e.g. a
	// dropped entry for a pointer never dereferenced again).
	if got.Output != ref.Output || got.ExitCode != ref.ExitCode {
		t.Errorf("%s: SILENT DIVERGENCE under %s: exit %d vs %d, faults %+v",
			label, inj.Plan(), got.ExitCode, ref.ExitCode, inj.Stats())
	}
}

// TestFailClosedPrograms sweeps programs × schemes × plans with full
// checking: every faulted run must detect-or-match, never silently
// diverge. It also requires a minimum number of detections across the
// sweep — the whole suite is deterministic (seeded injector, deterministic
// VM), and without this floor a regression that quietly disables checking
// would pass every per-run assertion by "matching" trivially.
func TestFailClosedPrograms(t *testing.T) {
	schemes := []string{"hashtable", "shadowspace"}
	var detections int
	for _, name := range failClosedPrograms {
		b, ok := progs.Get(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		src := b.Source(failClosedScale)
		for _, schemeName := range schemes {
			scheme, ok := meta.SchemeByName(schemeName)
			if !ok {
				t.Fatalf("unknown scheme %q", schemeName)
			}
			ref := runProg(t, src, driver.ModeFull, scheme, nil)
			if ref.Err != nil {
				t.Fatalf("%s/%s: fault-free reference failed: %v", name, schemeName, ref.Err)
			}
			for pi, plan := range plans() {
				label := fmt.Sprintf("%s/%s/plan%d(%s)", name, schemeName, pi, plan)
				inj := faults.NewInjector(plan)
				got := runProg(t, src, driver.ModeFull, scheme, inj)
				assertFailClosed(t, label, ref, got, inj)
				if got.Err != nil {
					detections++
				}
			}
		}
	}
	// Empirically ~40 of 72 cells detect; 20 leaves slack for benign
	// schedule shifts while still catching a neutered checker.
	if detections < 20 {
		t.Errorf("only %d detections across the sweep; checking looks ineffective", detections)
	}
}

// TestFailClosedAttacks repeats the sweep over a slice of the attack
// suite: programs that are already out to corrupt memory must stay
// detected (or identical) under injected faults too.
func TestFailClosedAttacks(t *testing.T) {
	scheme, _ := meta.SchemeByName("shadowspace")
	suite := attacks.Suite()
	if len(suite) > 4 {
		suite = suite[:4]
	}
	for _, a := range suite {
		ref := runProg(t, a.Source, driver.ModeFull, scheme, nil)
		for pi, plan := range plans() {
			label := fmt.Sprintf("attack/%s/plan%d", a.Name, pi)
			inj := faults.NewInjector(plan)
			got := runProg(t, a.Source, driver.ModeFull, scheme, inj)
			// For attacks the reference itself usually traps; the faulted
			// run must also end in a classified state or match exactly.
			if got.Err != nil {
				if vm.CodeOf(got.Err) == "" {
					t.Errorf("%s: unclassified error: %v", label, got.Err)
				}
				continue
			}
			if inj.Stats().Total() == 0 {
				continue
			}
			if ref.Err == nil && (got.Output != ref.Output || got.ExitCode != ref.ExitCode) {
				t.Errorf("%s: silent divergence under %s", label, plan)
			}
			if ref.Err != nil {
				// The reference trapped but the faulted run sailed through:
				// an injected fault must not mask a real violation...
				// unless it legitimately stopped the program earlier
				// (e.g. forced OOM starved the attack of its buffer). A
				// clean exit with matching output is the only pass.
				if got.ExitCode != ref.ExitCode && plan.OOMAt == 0 {
					t.Errorf("%s: faults masked a violation: ref %v, got clean exit %d",
						label, ref.Err, got.ExitCode)
				}
			}
		}
	}
}

// TestStaleKeyFaultsFailClosed (ISSUE 7): StaleEvery perturbs the key of
// metadata lookups that carry a temporal identity. Under the CETS schemes
// the perturbed key no longer matches its lock, so every affected
// dereference must fail closed as a typed temporal violation — or the run
// must be indistinguishable from the fault-free reference (the damaged
// entry was never checked again). A stale key can never widen access or
// silently change program output.
func TestStaleKeyFaultsFailClosed(t *testing.T) {
	var detections int
	for _, name := range failClosedPrograms {
		b, ok := progs.Get(name)
		if !ok {
			t.Fatalf("unknown benchmark %q", name)
		}
		src := b.Source(failClosedScale)
		for _, schemeName := range []string{"hashtable-cets", "shadow-cets"} {
			scheme, ok := meta.SchemeByName(schemeName)
			if !ok {
				t.Fatalf("unknown scheme %q", schemeName)
			}
			ref := runProg(t, src, driver.ModeFull, scheme, nil)
			if ref.Err != nil {
				t.Fatalf("%s/%s: fault-free reference failed: %v", name, schemeName, ref.Err)
			}
			for _, seed := range []uint64{1, 99} {
				label := fmt.Sprintf("%s/%s/seed%d", name, schemeName, seed)
				inj := faults.NewInjector(faults.Plan{Seed: seed, StaleEvery: 40})
				got := runProg(t, src, driver.ModeFull, scheme, inj)
				if got.Err != nil {
					if code := vm.CodeOf(got.Err); code != vm.TrapTemporal {
						t.Errorf("%s: stale key surfaced as %q, want %q (%v)",
							label, code, vm.TrapTemporal, got.Err)
					}
					detections++
					continue
				}
				if inj.Stats().Stales == 0 {
					continue
				}
				if got.Output != ref.Output || got.ExitCode != ref.ExitCode {
					t.Errorf("%s: SILENT DIVERGENCE under stale keys: exit %d vs %d, faults %+v",
						label, got.ExitCode, ref.ExitCode, inj.Stats())
				}
			}
		}
	}
	if detections == 0 {
		t.Error("no stale-key fault was ever detected; the class looks like a no-op")
	}

	// Control arm: spatial-only entries carry no keys, so the stale
	// schedule only defers — the class is a no-op there by construction.
	spatial, _ := meta.SchemeByName("shadowspace")
	b, _ := progs.Get("treeadd")
	inj := faults.NewInjector(faults.Plan{Seed: 1, StaleEvery: 40})
	res := runProg(t, b.Source(failClosedScale), driver.ModeFull, spatial, inj)
	if res.Err != nil {
		t.Errorf("spatial-only run failed under stale plan: %v", res.Err)
	}
	if inj.Stats().Stales != 0 {
		t.Errorf("stale faults delivered to a keyless scheme: %+v", inj.Stats())
	}
}

// TestUncheckedCorruption is the control arm: with checking off, the same
// fault plans must produce at least one visibly corrupted or crashed run
// across the sweep — otherwise the injector is a no-op and the fail-closed
// results above are vacuous.
func TestUncheckedCorruption(t *testing.T) {
	var divergences int
	scheme := meta.Scheme{} // unused in ModeNone
	for _, name := range failClosedPrograms {
		b, _ := progs.Get(name)
		src := b.Source(failClosedScale)
		ref := runProg(t, src, driver.ModeNone, scheme, nil)
		if ref.Err != nil {
			t.Fatalf("%s: unchecked reference failed: %v", name, ref.Err)
		}
		for _, plan := range plans() {
			if plan.DropEvery != 0 || plan.CorruptEvery != 0 {
				// Metadata faults need metadata; skip plans that are
				// no-ops without instrumentation.
				if plan.FlipEvery == 0 && plan.OOMAt == 0 {
					continue
				}
			}
			inj := faults.NewInjector(plan)
			got := runProg(t, src, driver.ModeNone, scheme, inj)
			if inj.Stats().Total() == 0 {
				continue
			}
			if got.Err != nil || got.Output != ref.Output || got.ExitCode != ref.ExitCode {
				divergences++
			}
		}
	}
	if divergences == 0 {
		t.Fatal("unchecked runs never diverged under faults: injector is a no-op")
	}
}
