package soak

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"softbound/internal/gen"
	"softbound/internal/serve"
	"softbound/internal/vm"
)

// TestSoakCampaignClean: a small campaign over the full matrix must
// come back with zero divergences, zero unstructured traps, and every
// planted violation detected — the harness's CI contract in miniature.
func TestSoakCampaignClean(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Cells:   6,
		Seed:    42,
		Workers: runtime.NumCPU(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Divergences != 0 || rep.Unstructured != 0 {
		t.Fatalf("divergences=%d unstructured=%d: %+v", rep.Divergences, rep.Unstructured, rep.DivergenceList)
	}
	if rep.Planted.Total == 0 || rep.Planted.Missed != 0 || rep.Planted.Detected != rep.Planted.Total {
		t.Fatalf("planted summary off: %+v", rep.Planted)
	}
	// 23 matrix runs per variant, 1 clean + up to 2 planted variants per
	// cell, no compile failures.
	if rep.Runs < rep.Cells*23 {
		t.Fatalf("only %d runs for %d cells", rep.Runs, rep.Cells)
	}
	// Planted variants trapped somewhere; the histogram must only ever
	// hold violation codes.
	total := 0
	for code, n := range rep.TrapHistogram {
		if code != string(vm.TrapSpatial) && code != string(vm.TrapTemporal) {
			t.Errorf("non-violation trap %q in histogram", code)
		}
		total += n
	}
	if total == 0 {
		t.Error("no traps recorded despite planted variants")
	}
	if len(rep.Schemes) < 4 || len(rep.Engines) != 3 || len(rep.Modes) != 2 {
		t.Fatalf("matrix description off: %+v", rep)
	}
}

// TestSoakDeterministicCellSeeds: the campaign's cell seeds are a pure
// function of the campaign seed (worker scheduling must not matter).
func TestSoakDeterministicCellSeeds(t *testing.T) {
	if cellSeed(1, 0) == cellSeed(1, 1) {
		t.Fatal("adjacent cells share a seed")
	}
	if cellSeed(1, 0) != cellSeed(1, 0) {
		t.Fatal("cell seed not deterministic")
	}
	if cellSeed(1, 0) == cellSeed(2, 0) {
		t.Fatal("campaign seed ignored")
	}
}

// TestShrinkMask: the mask-narrowing loop against synthetic predicates
// — it must reach the minimal subset, respect the pin, and honor the
// budget.
func TestShrinkMask(t *testing.T) {
	// Find a program with enough chunks to make shrinking interesting.
	var prog *gen.Program
	for seed := uint64(1); ; seed++ {
		if p := gen.Generate(seed); p.NumChunks() >= 5 {
			prog = p
			break
		}
	}
	target := 2 // the divergence "needs" only chunk 2

	min := shrinkMask(prog, -1, 100, func(p *gen.Program) bool {
		return p.KeepMask()[target]
	})
	if min.Kept() != 1 || !min.KeepMask()[target] {
		t.Fatalf("shrunk to %d chunks, mask %v; want only chunk %d", min.Kept(), min.KeepMask(), target)
	}

	// Pinning keeps the pinned chunk even when the predicate never
	// needs it.
	pinned := shrinkMask(prog, 0, 100, func(p *gen.Program) bool {
		return p.KeepMask()[target]
	})
	if !pinned.KeepMask()[0] || !pinned.KeepMask()[target] || pinned.Kept() != 2 {
		t.Fatalf("pin violated: mask %v", pinned.KeepMask())
	}

	// A zero budget returns the input untouched.
	if got := shrinkMask(prog, -1, 0, func(*gen.Program) bool { return true }); got.Kept() != prog.Kept() {
		t.Fatalf("budget 0 still shrank: %d -> %d", prog.Kept(), got.Kept())
	}
}

// TestSoakShrinksAndSpoolsInjectedDivergence drives the full
// record/shrink/spool path by checking a planted variant against a
// deliberately-wrong expectation: asking the battery about a plant in a
// chunk the program has — but with a fabricated site that the detection
// configs won't corroborate is impossible, so instead we reuse a real
// plant and corrupt the expected trap kind. The resulting wrong-trap
// divergences must be shrunk and spooled as replayable bundles.
func TestSoakShrinksAndSpoolsInjectedDivergence(t *testing.T) {
	var prog *gen.Program
	var pl gen.Plant
	found := false
	for seed := uint64(1); seed < 200 && !found; seed++ {
		p := gen.Generate(seed)
		for _, cand := range p.Plants() {
			if cand.Kind == gen.PlantSpatial && p.NumChunks() >= 4 {
				prog, pl, found = p, cand, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no spatial plant found in 200 seeds")
	}
	// Lie about the plant's kind: a spatial plant declared temporal
	// makes every CETS detection a "wrong trap" and every non-CETS
	// detection a "false positive".
	lie := pl
	lie.Kind = gen.PlantTemporal

	spool := t.TempDir()
	s := &soaker{
		cfg:   Config{Timeout: 10 * time.Second, StepLimit: 20_000_000, MaxShrinkRuns: 6, SpoolDir: spool}.withDefaults(),
		rep:   &Report{TrapHistogram: map[string]int{}},
		spool: spooler{dir: spool},
	}
	divs, runs, _ := s.battery(context.Background(), prog, &lie)
	if len(divs) == 0 || runs == 0 {
		t.Fatal("corrupted expectation produced no divergences")
	}
	s.record(context.Background(), prog, &lie, divs, runs, nil)

	if s.rep.Divergences != len(divs) || s.rep.Shrinks != 1 || s.rep.ShrinkRuns == 0 {
		t.Fatalf("report after record: %+v", s.rep)
	}
	first := s.rep.DivergenceList[0]
	if first.ShrunkFrom < first.ShrunkTo || first.ShrunkTo < 1 {
		t.Fatalf("shrink bookkeeping off: %+v", first)
	}
	if first.Bundle == "" || !strings.HasPrefix(first.Bundle, spool) {
		t.Fatalf("no spooled bundle: %+v", first)
	}
	data, err := os.ReadFile(first.Bundle)
	if err != nil {
		t.Fatalf("bundle unreadable: %v", err)
	}
	if !strings.Contains(string(data), "\"source\"") || !strings.Contains(string(data), "sb_sum") {
		t.Fatalf("bundle lacks replayable source: %s", data)
	}
	if files, _ := filepath.Glob(filepath.Join(spool, "soak-*.json")); len(files) != 1 {
		t.Fatalf("expected exactly one bundle, got %v", files)
	}
}

// TestSessionSoakLive: the session soak against an in-process sbserve —
// every response structured and baseline-identical, occupancy bounded,
// lookaside healthy.
func TestSessionSoakLive(t *testing.T) {
	srv := serve.New(serve.Options{Workers: 2, DefaultTimeout: 10 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	rep, err := RunSession(context.Background(), SessionConfig{
		BaseURL:     ts.URL,
		Requests:    60,
		Programs:    6,
		Concurrency: 3,
		Seed:        7,
		// Generous but real bounds: the ftpd workload's live metadata
		// footprint is small and must stay that way across the stream.
		MaxLive:       1 << 20,
		MaxTableBytes: 1 << 30,
		MinHitRate:    0.10,
	})
	if err != nil {
		t.Fatalf("RunSession: %v", err)
	}
	if rep.Failed() {
		t.Fatalf("session soak failed: failures=%v bounds=%v", rep.FailureList, rep.BoundViolations)
	}
	if rep.MetaRuns == 0 || rep.MetaLiveMax == 0 || rep.MetaBytesMax == 0 {
		t.Fatalf("meta statz never moved: %+v", rep)
	}
	if rep.CacheHits == 0 {
		t.Error("compile cache never hit despite cycling 6 programs over 60 requests")
	}
	if rep.LookasideHitRate <= 0 {
		t.Errorf("lookaside hit rate %v", rep.LookasideHitRate)
	}
}
