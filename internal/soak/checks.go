package soak

import (
	"fmt"

	"softbound/internal/driver"
	"softbound/internal/gen"
	"softbound/internal/metrics"
	"softbound/internal/vm"
)

// checkRuns applies the differential invariants to one variant's matrix
// results. results[i] corresponds to cfgs[i]; nil entries (compile
// failures, cancelled runs) are skipped — the compile divergence was
// already recorded.
//
// Invariants:
//
//   - structured: every run ends in a clean exit or an expected
//     violation trap — never panic, memory-fault, step-limit, oom, ...
//   - detection: a planted variant traps exactly in the configurations
//     its Detected predicate names, with the matching trap code, and a
//     clean variant never traps.
//   - engine agreement: every engine in a config (ref and compiled
//     against the fast witness) produces identical exit, output, trap,
//     and modeled stats (lookaside counters excluded — the ref engine
//     has no lookaside).
//   - scheme agreement: schemes of equal temporality are behaviorally
//     indistinguishable (exit/output/trap; stats differ by facility
//     cost model).
//   - baseline agreement: every non-detecting run matches the unchecked
//     baseline's exit and output bit-for-bit.
func checkRuns(seed uint64, variant string, pl *gen.Plant, cfgs []runCfg, results []*driver.Result) (divs []Divergence, traps []string) {
	add := func(check, config, detail string) {
		divs = append(divs, Divergence{
			Seed: seed, Variant: variant, Check: check, Config: config, Detail: detail,
		})
	}

	wantCode := string(vm.TrapSpatial)
	if pl != nil && pl.Kind == gen.PlantTemporal {
		wantCode = string(vm.TrapTemporal)
	}

	// Per-run structural and detection checks, plus the trap histogram.
	for i, res := range results {
		if res == nil {
			continue
		}
		rc := cfgs[i]
		code := string(res.TrapCode())
		if code != "" {
			traps = append(traps, code)
		}

		violation := code == string(vm.TrapSpatial) || code == string(vm.TrapTemporal)
		if code != "" && !violation {
			add(CheckUnstructured, rc.String(), fmt.Sprintf("trap %q: %v", code, res.Err))
			continue
		}

		want := false
		if pl != nil && rc.scheme != nil {
			want = pl.Detected(rc.mode == driver.ModeFull, rc.scheme.Kind.Temporal())
		}
		switch {
		case want && !res.Detected():
			add(CheckMissed, rc.String(),
				fmt.Sprintf("plant %s (%v) not detected", pl.Site, pl.Kind))
		case want && code != wantCode:
			add(CheckWrongTrap, rc.String(),
				fmt.Sprintf("trap %q, want %q for plant %s", code, wantCode, pl.Site))
		case !want && res.Detected():
			add(CheckFalse, rc.String(),
				fmt.Sprintf("unexpected %s (violation=%v temporal=%v)", code, res.Violation, res.TemporalHit))
		}
	}

	// Engine agreement: within each config, every engine (ref, compiled)
	// must match the fast witness.
	witness := map[string]int{}
	for i, rc := range cfgs {
		if rc.interp == vm.InterpFast && results[i] != nil {
			witness[rc.configName()] = i
		}
	}
	for i, res := range results {
		rc := cfgs[i]
		if res == nil || rc.interp == vm.InterpFast {
			continue
		}
		wi, ok := witness[rc.configName()]
		if !ok {
			continue
		}
		fast, eng := results[wi], rc.interp.String()
		if fast.ExitCode != res.ExitCode || fast.Output != res.Output ||
			fast.TrapCode() != res.TrapCode() {
			add(CheckEngine, rc.String(), fmt.Sprintf(
				"fast(exit=%d trap=%q) vs %s(exit=%d trap=%q); output equal=%v",
				fast.ExitCode, fast.TrapCode(), eng, res.ExitCode, res.TrapCode(),
				fast.Output == res.Output))
			continue
		}
		if fk, rk := statsKey(fast.Stats), statsKey(res.Stats); fk != rk {
			add(CheckEngine, rc.String(),
				fmt.Sprintf("modeled stats diverge:\nfast: %s\n%s: %s", fk, eng, rk))
		}
	}

	// Baseline and scheme agreement, fast engine as the witness.
	baseline := pick(cfgs, results, func(rc runCfg) bool {
		return rc.scheme == nil && rc.interp == vm.InterpFast
	})
	classes := map[string]int{} // "temporal/mode" -> index of first scheme's run
	for i, res := range results {
		rc := cfgs[i]
		if res == nil || rc.scheme == nil || rc.interp != vm.InterpFast {
			continue
		}
		if baseline != nil && res.Trap == nil && !res.Detected() {
			if res.ExitCode != baseline.ExitCode || res.Output != baseline.Output {
				add(CheckBaseline, rc.String(), fmt.Sprintf(
					"exit=%d output %q, baseline exit=%d output %q",
					res.ExitCode, clip(res.Output), baseline.ExitCode, clip(baseline.Output)))
			}
		}
		class := fmt.Sprintf("%v/%v", rc.scheme.Kind.Temporal(), rc.mode)
		if j, ok := classes[class]; ok {
			peer, prc := results[j], cfgs[j]
			if res.ExitCode != peer.ExitCode || res.Output != peer.Output ||
				res.TrapCode() != peer.TrapCode() {
				add(CheckScheme, rc.String(), fmt.Sprintf(
					"disagrees with %s: exit %d vs %d, trap %q vs %q, output equal=%v",
					prc.String(), res.ExitCode, peer.ExitCode,
					res.TrapCode(), peer.TrapCode(), res.Output == peer.Output))
			}
		} else {
			classes[class] = i
		}
	}
	return divs, traps
}

// pick returns the first non-nil result whose config satisfies f.
func pick(cfgs []runCfg, results []*driver.Result, f func(runCfg) bool) *driver.Result {
	for i, rc := range cfgs {
		if f(rc) && results[i] != nil {
			return results[i]
		}
	}
	return nil
}

// statsKey renders modeled stats for bit-equality comparison, zeroing
// the lookaside counters: the fast engine's LookupCache is a
// transparent wrapper, so everything else must match the ref engine
// exactly (the engine-differential suite's idiom).
func statsKey(st *metrics.Stats) string {
	if st == nil {
		return "<nil>"
	}
	c := *st
	c.MetaCacheHits, c.MetaCacheMisses, c.MetaCacheSimInsts = 0, 0, 0
	return fmt.Sprintf("%+v", c)
}

// clip bounds strings embedded in divergence details.
func clip(s string) string {
	if len(s) > 160 {
		return s[:160] + "..."
	}
	return s
}
