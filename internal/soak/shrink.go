package soak

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"softbound/internal/gen"
)

// shrinkDivergence delta-debugs a diverging variant down to a minimal
// chunk subset: it greedily drops chunks one at a time, keeping a drop
// only if the same check still fails on the subset, and repeats until a
// full pass removes nothing (a fixpoint) or the run budget is spent.
// The plant's chunk is pinned — a planted repro without its violation
// site reproduces nothing.
//
// The generator's determinism contract makes this cheap to ship: the
// minimal repro is (seed, keep mask, plant), and the bundle re-renders
// the exact source from those three values.
func (s *soaker) shrinkDivergence(ctx context.Context, prog *gen.Program, pl *gen.Plant, check string) (*gen.Program, int) {
	pin := -1
	if pl != nil {
		pin = pl.Chunk
	}
	evals := 0
	pred := func(p *gen.Program) bool {
		if ctx.Err() != nil {
			return false
		}
		evals++
		divs, _, _ := s.battery(ctx, p, pl)
		for _, d := range divs {
			if d.Check == check {
				return true
			}
		}
		return false
	}
	min := shrinkMask(prog, pin, s.cfg.MaxShrinkRuns, pred)
	return min, evals
}

// shrinkMask is the mask-narrowing loop, separated from the battery so
// it can be tested against synthetic predicates. pred must hold on prog
// itself; the result is the smallest subset found on which pred still
// holds. pin (-1 for none) names a chunk that is never dropped. budget
// bounds predicate evaluations.
func shrinkMask(prog *gen.Program, pin int, budget int, pred func(*gen.Program) bool) *gen.Program {
	cur := prog
	mask := prog.KeepMask()
	for changed := true; changed; {
		changed = false
		for i := range mask {
			if !mask[i] || i == pin || cur.Kept() <= 1 {
				continue
			}
			if budget <= 0 {
				return cur
			}
			budget--
			mask[i] = false
			cand := prog.Subset(mask)
			if pred(cand) {
				cur = cand
				changed = true
			} else {
				mask[i] = true
			}
		}
	}
	return cur
}

// Bundle is the spooled repro: everything needed to replay a divergence
// without the campaign that found it.
type Bundle struct {
	Schema  int        `json:"schema"`
	Seed    uint64     `json:"seed"`
	Keep    []bool     `json:"keep"`
	Variant string     `json:"variant"`
	Plant   *gen.Plant `json:"plant,omitempty"`
	Check   string     `json:"check"`
	Config  string     `json:"config,omitempty"`
	Detail  string     `json:"detail"`
	// Source is the shrunk program (planted when Plant is set), inlined
	// so the bundle replays even if the generator changes.
	Source string `json:"source"`
}

// spooler writes repro bundles with unique names under a directory.
type spooler struct {
	dir string
	mu  sync.Mutex
	n   int
}

func (sp *spooler) write(prog *gen.Program, pl *gen.Plant, d Divergence) (string, error) {
	if sp.dir == "" {
		return "", nil
	}
	src := prog.Source()
	if pl != nil {
		src = prog.PlantedSource(*pl)
	}
	b := Bundle{
		Schema: 1, Seed: prog.Seed, Keep: prog.KeepMask(),
		Variant: d.Variant, Plant: pl,
		Check: d.Check, Config: d.Config, Detail: d.Detail,
		Source: src,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return "", err
	}
	sp.mu.Lock()
	sp.n++
	n := sp.n
	sp.mu.Unlock()
	if err := os.MkdirAll(sp.dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(sp.dir, fmt.Sprintf("soak-%d-%03d-%s.json", prog.Seed, n, d.Check))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}
