// Package soak is the generated-corpus differential soak harness: it
// draws seeded programs from internal/gen and runs each one across the
// full scheme × mode × engine matrix, holding the pipeline to the
// generator's contract. Clean cells must run to identical output with
// zero violations everywhere; planted cells must trap exactly where the
// plant's Detected predicate says a configuration checks that access,
// with both engines agreeing on the trap. Every divergence is shrunk to
// a minimal chunk subset and spooled as a crash-replay bundle, and the
// whole campaign is summarized as a SOAK.json report.
//
// The harness never dies on a hostile cell: compiler panics surface as
// typed CompileErrors at the driver boundary, and VM panics are
// recovered here into TrapPanic results (the same containment the
// execution service uses), so one bad program is one divergence line,
// not a dead campaign.
package soak

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"softbound/internal/driver"
	"softbound/internal/gen"
	"softbound/internal/ir"
	"softbound/internal/meta"
	"softbound/internal/metrics"
	"softbound/internal/vm"
)

// Config controls a matrix soak campaign.
type Config struct {
	// Cells is the number of generated programs to soak.
	Cells int
	// Seed salts every cell seed; the campaign is a pure function of
	// (Seed, Cells) and the code under test.
	Seed uint64
	// Workers bounds concurrent cells (default: GOMAXPROCS).
	Workers int
	// PlantsPerCell caps how many planted variants each cell exercises
	// (default 2; the selection is deterministic in the cell seed).
	PlantsPerCell int
	// Timeout and StepLimit bound each VM run.
	Timeout   time.Duration
	StepLimit uint64
	// SpoolDir, when set, receives one JSON repro bundle per shrunk
	// divergence.
	SpoolDir string
	// MaxShrinkRuns bounds predicate evaluations per shrink (default 24).
	MaxShrinkRuns int
	// Log, when set, receives progress lines.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Cells <= 0 {
		c.Cells = 100
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PlantsPerCell <= 0 {
		c.PlantsPerCell = 2
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.StepLimit == 0 {
		c.StepLimit = 20_000_000
	}
	if c.MaxShrinkRuns <= 0 {
		c.MaxShrinkRuns = 24
	}
	return c
}

// Divergence is one broken invariant: a cell, the variant (clean or a
// plant site), the check that failed, and where.
type Divergence struct {
	Seed    uint64 `json:"seed"`
	Variant string `json:"variant"`
	Check   string `json:"check"`
	Config  string `json:"config,omitempty"`
	Detail  string `json:"detail"`
	// ShrunkFrom/ShrunkTo record the chunk counts before and after
	// delta-debugging (first divergence per variant only).
	ShrunkFrom int `json:"shrunk_from,omitempty"`
	ShrunkTo   int `json:"shrunk_to,omitempty"`
	// Bundle is the spooled repro path, when spooling is configured.
	Bundle string `json:"bundle,omitempty"`
}

// Check identifiers.
const (
	CheckCompile      = "compile-error"     // a variant failed to compile
	CheckUnstructured = "unstructured"      // a run ended in a non-violation trap
	CheckEngine       = "engine-mismatch"   // fast and ref engines disagree
	CheckScheme       = "scheme-mismatch"   // same-temporality schemes disagree
	CheckBaseline     = "baseline-mismatch" // a non-detecting run diverged from baseline
	CheckMissed       = "missed-detection"  // a plant went undetected where required
	CheckFalse        = "false-positive"    // a violation where none was planted
	CheckWrongTrap    = "wrong-trap"        // detected, but with the wrong trap code
)

// PlantedSummary aggregates planted-variant outcomes.
type PlantedSummary struct {
	// Total is the number of planted variants exercised.
	Total int `json:"total"`
	// Detected counts variants caught by every configuration that must
	// catch them; Missed counts variants with at least one miss.
	Detected int `json:"detected"`
	Missed   int `json:"missed"`
}

// Report is the SOAK.json schema (schema 1).
type Report struct {
	Schema  int      `json:"schema"`
	Seed    uint64   `json:"seed"`
	Cells   int      `json:"cells"`
	Runs    int      `json:"runs"`
	Schemes []string `json:"schemes"`
	Modes   []string `json:"modes"`
	Engines []string `json:"engines"`

	Planted       PlantedSummary `json:"planted"`
	TrapHistogram map[string]int `json:"trap_histogram"`

	Divergences    int          `json:"divergences"`
	Unstructured   int          `json:"unstructured"`
	DivergenceList []Divergence `json:"divergence_list,omitempty"`
	Shrinks        int          `json:"shrinks"`
	ShrinkRuns     int          `json:"shrink_runs"`
	WallNanos      int64        `json:"wall_nanos"`
}

// runCfg is one point of the execution matrix. A nil scheme is the
// unchecked baseline (mode "none").
type runCfg struct {
	scheme *meta.Scheme
	mode   driver.Mode
	interp vm.InterpKind
}

// configName matches the BENCH.json vocabulary: "baseline" or
// "<scheme>-<mode>".
func (rc runCfg) configName() string {
	if rc.scheme == nil {
		return "baseline"
	}
	return rc.scheme.Name + "-" + rc.mode.String()
}

func (rc runCfg) String() string {
	return rc.configName() + "/" + rc.interp.String()
}

// matrix enumerates baseline × engines plus every registered scheme ×
// checked mode × engine. All three engines cover the baseline and every
// scheme's full mode; store-only cells run the fast/ref pair (the
// compiled tier shares the fast engine's decode, so full mode exercises
// its distinct code paths — the closure chains — under every scheme).
func matrix() []runCfg {
	schemes := meta.Schemes()
	out := make([]runCfg, 0, 3+len(schemes)*5)
	for _, eng := range []vm.InterpKind{vm.InterpFast, vm.InterpRef, vm.InterpCompiled} {
		out = append(out, runCfg{mode: driver.ModeNone, interp: eng})
	}
	for i := range schemes {
		s := &schemes[i]
		for _, eng := range []vm.InterpKind{vm.InterpFast, vm.InterpRef} {
			out = append(out, runCfg{scheme: s, mode: driver.ModeStoreOnly, interp: eng})
		}
		for _, eng := range []vm.InterpKind{vm.InterpFast, vm.InterpRef, vm.InterpCompiled} {
			out = append(out, runCfg{scheme: s, mode: driver.ModeFull, interp: eng})
		}
	}
	return out
}

// soaker carries campaign state shared across workers.
type soaker struct {
	cfg   Config
	mu    sync.Mutex
	rep   *Report
	spool spooler
}

// Run executes a soak campaign. The returned Report is complete even
// when divergences occurred; the error is reserved for setup failures
// and context cancellation.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	schemes := meta.Schemes()
	rep := &Report{
		Schema:        1,
		Seed:          cfg.Seed,
		Cells:         cfg.Cells,
		Modes:         []string{driver.ModeStoreOnly.String(), driver.ModeFull.String()},
		Engines:       []string{"fast", "ref", "compiled"},
		TrapHistogram: map[string]int{},
	}
	for _, s := range schemes {
		rep.Schemes = append(rep.Schemes, s.Name)
	}

	s := &soaker{cfg: cfg, rep: rep, spool: spooler{dir: cfg.SpoolDir}}

	cells := make(chan int)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range cells {
				if err := ctx.Err(); err != nil {
					errOnce.Do(func() { firstErr = err })
					return
				}
				s.soakCell(ctx, cellSeed(cfg.Seed, i))
			}
		}()
	}
	done := 0
	for i := 0; i < cfg.Cells; i++ {
		select {
		case cells <- i:
			done++
			if cfg.Log != nil && done%100 == 0 {
				fmt.Fprintf(cfg.Log, "soak: %d/%d cells dispatched, %d divergences\n",
					done, cfg.Cells, s.divergenceCount())
			}
		case <-ctx.Done():
			i = cfg.Cells // stop dispatching; workers drain
		}
	}
	close(cells)
	wg.Wait()

	sort.Slice(rep.DivergenceList, func(i, j int) bool {
		a, b := rep.DivergenceList[i], rep.DivergenceList[j]
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		if a.Variant != b.Variant {
			return a.Variant < b.Variant
		}
		if a.Config != b.Config {
			return a.Config < b.Config
		}
		return a.Check < b.Check
	})
	rep.WallNanos = time.Since(start).Nanoseconds()
	if firstErr != nil {
		return rep, firstErr
	}
	return rep, ctx.Err()
}

func (s *soaker) divergenceCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rep.Divergences
}

// cellSeed derives cell i's generator seed from the campaign seed with
// a splitmix64 finalizer, so neighbouring cells share no structure.
func cellSeed(base uint64, i int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// soakCell runs one generated program: the clean variant plus up to
// PlantsPerCell planted variants, each across the full matrix.
func (s *soaker) soakCell(ctx context.Context, seed uint64) {
	prog := gen.Generate(seed)

	divs, runs, traps := s.battery(ctx, prog, nil)
	s.record(ctx, prog, nil, divs, runs, traps)

	for _, pl := range selectPlants(prog, seed, s.cfg.PlantsPerCell) {
		pl := pl
		divs, runs, traps := s.battery(ctx, prog, &pl)
		s.record(ctx, prog, &pl, divs, runs, traps)
	}
}

// selectPlants picks up to n of the program's plants, deterministically
// in the cell seed (evenly strided from a seeded offset, so a long
// campaign covers every template's plant kinds).
func selectPlants(prog *gen.Program, seed uint64, n int) []gen.Plant {
	plants := prog.Plants()
	if len(plants) <= n {
		return plants
	}
	offset := int(seed>>17) % len(plants)
	out := make([]gen.Plant, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, plants[(offset+k*len(plants)/n)%len(plants)])
	}
	return out
}

// record folds one variant's outcome into the report, shrinking and
// spooling the first divergence.
func (s *soaker) record(ctx context.Context, prog *gen.Program, pl *gen.Plant, divs []Divergence, runs int, traps []string) {
	var shrinkRuns int
	if len(divs) > 0 {
		// Shrink the first divergence to a minimal chunk subset; the
		// rest of the variant's divergences ride along unshrunk.
		min, evals := s.shrinkDivergence(ctx, prog, pl, divs[0].Check)
		shrinkRuns = evals
		divs[0].ShrunkFrom = prog.Kept()
		divs[0].ShrunkTo = min.Kept()
		if path, err := s.spool.write(min, pl, divs[0]); err == nil && path != "" {
			divs[0].Bundle = path
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.rep.Runs += runs
	for _, code := range traps {
		s.rep.TrapHistogram[code]++
	}
	s.rep.Divergences += len(divs)
	s.rep.DivergenceList = append(s.rep.DivergenceList, divs...)
	if shrinkRuns > 0 {
		s.rep.Shrinks++
		s.rep.ShrinkRuns += shrinkRuns
	}
	for _, d := range divs {
		if d.Check == CheckUnstructured || d.Check == CheckCompile {
			s.rep.Unstructured++
		}
	}
	if pl != nil {
		s.rep.Planted.Total++
		missed := false
		for _, d := range divs {
			if d.Check == CheckMissed {
				missed = true
			}
		}
		if missed {
			s.rep.Planted.Missed++
		} else {
			s.rep.Planted.Detected++
		}
	}
}

// variantName labels a variant in reports.
func variantName(pl *gen.Plant) string {
	if pl == nil {
		return "clean"
	}
	return "plant:" + pl.Site
}

// battery compiles and runs one variant across the matrix and returns
// every broken invariant plus the trap codes observed. It is pure with
// respect to campaign state so the shrinker can re-evaluate it on chunk
// subsets.
func (s *soaker) battery(ctx context.Context, prog *gen.Program, pl *gen.Plant) ([]Divergence, int, []string) {
	seed := prog.Seed
	variant := variantName(pl)
	var src string
	if pl == nil {
		src = prog.Source()
	} else {
		src = prog.PlantedSource(*pl)
	}

	// Compile once per distinct artifact: modules depend on (mode,
	// temporality) only, so 23 runs share 5 compiles.
	type modKey struct {
		mode     driver.Mode
		temporal bool
	}
	mods := map[modKey]*compiled{}
	cfgs := matrix()
	results := make([]*driver.Result, len(cfgs))
	var divs []Divergence
	runs := 0
	for i, rc := range cfgs {
		key := modKey{mode: rc.mode}
		kind := meta.KindShadowSpace
		if rc.scheme != nil {
			key.temporal = rc.scheme.Kind.Temporal()
			kind = rc.scheme.Kind
		}
		m, ok := mods[key]
		if !ok {
			m = compileVariant(src, rc.mode, kind)
			mods[key] = m
			if m.err != nil {
				divs = append(divs, Divergence{
					Seed: seed, Variant: variant, Check: CheckCompile,
					Config: rc.configName(),
					Detail: fmt.Sprintf("compile failed: %v", m.err),
				})
			}
		}
		if m.err != nil {
			continue
		}
		results[i] = s.runContained(ctx, m, rc)
		runs++
	}

	checked, traps := checkRuns(seed, variant, pl, cfgs, results)
	return append(divs, checked...), runs, traps
}

// compiled pairs a module with its compile error; exactly one is set.
type compiled struct {
	mod *ir.Module
	err error
}

func compileVariant(src string, mode driver.Mode, kind meta.Kind) *compiled {
	cfg := driver.DefaultConfig(mode)
	cfg.Meta = kind
	mod, _, err := driver.CompileWithStats([]driver.Source{{Name: "main.c", Text: src}}, cfg)
	if err != nil {
		return &compiled{err: err}
	}
	return &compiled{mod: mod}
}

// runContained executes one matrix cell with the service's panic
// containment: a crashing VM becomes a TrapPanic result, never a dead
// worker goroutine.
func (s *soaker) runContained(ctx context.Context, m *compiled, rc runCfg) (res *driver.Result) {
	defer func() {
		if r := recover(); r != nil {
			trap := &vm.Trap{Code: vm.TrapPanic, Cause: fmt.Errorf("recovered panic: %v", r)}
			res = &driver.Result{Err: trap, Trap: trap, Stats: &metrics.Stats{}}
		}
	}()
	cfg := driver.DefaultConfig(rc.mode)
	cfg.Timeout = s.cfg.Timeout
	cfg.StepLimit = s.cfg.StepLimit
	cfg.Interp = rc.interp
	if rc.scheme != nil {
		cfg.Meta = rc.scheme.Kind
		sch := rc.scheme
		cfg.MetaFacility = func() (meta.Facility, error) { return sch.New(), nil }
	}
	return driver.ExecuteContext(ctx, m.mod, cfg)
}
