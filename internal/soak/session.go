package soak

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"softbound/internal/driver"
	"softbound/internal/experiments"
	"softbound/internal/gen"
	"softbound/internal/serve"
)

// SessionConfig controls a long-running session soak: a stream of
// generated FTP-daemon request programs POSTed through a live sbserve,
// holding the service to structured responses, baseline-identical
// outputs, bounded metadata-table occupancy, and a healthy lookaside.
type SessionConfig struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Requests is the total number of /run POSTs (default 1000).
	Requests int
	// Programs is how many distinct generated programs the stream cycles
	// through (default 32) — a compile-cache-friendly working set.
	Programs int
	// Concurrency is the number of client workers (default 4).
	Concurrency int
	// Seed salts the generated scripts.
	Seed uint64
	// Commands per script (default 20) and daemon sessions per run
	// (default 2) size each request's work.
	Commands int
	Sessions int
	// Scheme and Mode select the checked configuration (defaults
	// "shadowspace", "full").
	Scheme string
	Mode   string
	// MaxLive / MaxTableBytes bound the server's per-run metadata
	// occupancy high-water marks (0 disables the bound). MinHitRate is
	// the lookaside floor (0 disables).
	MaxLive       int64
	MaxTableBytes int64
	MinHitRate    float64
	// Log, when set, receives progress lines.
	Log io.Writer
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Programs <= 0 {
		c.Programs = 32
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Commands <= 0 {
		c.Commands = 20
	}
	if c.Sessions <= 0 {
		c.Sessions = 2
	}
	if c.Scheme == "" {
		c.Scheme = "shadowspace"
	}
	if c.Mode == "" {
		c.Mode = "full"
	}
	return c
}

// SessionReport is the SOAK_SESSION.json schema (schema 1).
type SessionReport struct {
	Schema      int      `json:"schema"`
	Seed        uint64   `json:"seed"`
	Requests    int      `json:"requests"`
	Programs    int      `json:"programs"`
	CacheHits   int64    `json:"cache_hits"`
	Failures    int      `json:"failures"`
	FailureList []string `json:"failure_list,omitempty"`

	// Server-side metadata health at the end of the stream.
	MetaRuns         uint64  `json:"meta_runs"`
	MetaLiveMax      int64   `json:"meta_live_max"`
	MetaBytesMax     int64   `json:"meta_bytes_max"`
	LookasideHitRate float64 `json:"lookaside_hit_rate"`

	BoundViolations []string `json:"bound_violations,omitempty"`
	WallNanos       int64    `json:"wall_nanos"`
}

// Failed reports whether the session soak broke any invariant.
func (r *SessionReport) Failed() bool {
	return r.Failures > 0 || len(r.BoundViolations) > 0
}

// expected is a request program plus the locally-computed ground truth
// every server response must reproduce.
type expected struct {
	source string
	exit   int64
	output string
}

// RunSession drives a session soak against a live server. The returned
// error covers setup problems (unreachable server, a generated program
// that fails its local baseline); request-level failures and bound
// violations are reported in the SessionReport.
func RunSession(ctx context.Context, cfg SessionConfig) (*SessionReport, error) {
	cfg = cfg.withDefaults()
	start := time.Now()

	// Ground truth first: each program's exit and output computed
	// locally with checking off. The server runs the same program
	// checked; any difference is a finding.
	programs := make([]expected, cfg.Programs)
	for i := range programs {
		script := gen.FTPScript(cfg.Seed+uint64(i), cfg.Commands)
		src := experiments.FtpdSession(script, cfg.Sessions)
		res, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeNone))
		if err != nil {
			return nil, fmt.Errorf("session program %d failed local baseline: %w", i, err)
		}
		if res.Trap != nil || res.ExitCode != 0 {
			return nil, fmt.Errorf("session program %d: local baseline exit=%d trap=%v", i, res.ExitCode, res.TrapCode())
		}
		programs[i] = expected{source: src, exit: res.ExitCode, output: res.Output}
	}

	rep := &SessionReport{Schema: 1, Seed: cfg.Seed, Requests: cfg.Requests, Programs: cfg.Programs}
	client := &http.Client{Timeout: 60 * time.Second}

	var next, cacheHits int64
	var mu sync.Mutex
	fail := func(format string, a ...any) {
		mu.Lock()
		defer mu.Unlock()
		rep.Failures++
		if len(rep.FailureList) < 20 {
			rep.FailureList = append(rep.FailureList, fmt.Sprintf(format, a...))
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(cfg.Requests) || ctx.Err() != nil {
					return
				}
				p := programs[i%int64(len(programs))]
				resp, err := postRun(ctx, client, cfg, p.source)
				if err != nil {
					fail("request %d: %v", i, err)
					continue
				}
				if resp.CacheHit {
					atomic.AddInt64(&cacheHits, 1)
				}
				switch {
				case resp.TrapCode != "" || resp.Error != "":
					fail("request %d: unstructured response trap=%q error=%q", i, resp.TrapCode, resp.Error)
				case resp.ExitCode != p.exit || resp.Output != p.output:
					fail("request %d: exit=%d output %q, want exit=%d output %q",
						i, resp.ExitCode, clip(resp.Output), p.exit, clip(p.output))
				}
				if cfg.Log != nil && (i+1)%1000 == 0 {
					fmt.Fprintf(cfg.Log, "session: %d/%d requests, %d failures\n", i+1, cfg.Requests, rep.Failures)
				}
			}
		}()
	}
	wg.Wait()
	rep.CacheHits = atomic.LoadInt64(&cacheHits)

	statz, err := getStatz(ctx, client, cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("final /statz poll: %w", err)
	}
	rep.MetaRuns = statz.Meta.Runs
	rep.MetaLiveMax = statz.Meta.LiveMax
	rep.MetaBytesMax = statz.Meta.TableBytesMax
	rep.LookasideHitRate = statz.Meta.LookasideHitRate

	if cfg.MaxLive > 0 && statz.Meta.LiveMax > cfg.MaxLive {
		rep.BoundViolations = append(rep.BoundViolations,
			fmt.Sprintf("live entries high-water %d exceeds bound %d", statz.Meta.LiveMax, cfg.MaxLive))
	}
	if cfg.MaxTableBytes > 0 && statz.Meta.TableBytesMax > cfg.MaxTableBytes {
		rep.BoundViolations = append(rep.BoundViolations,
			fmt.Sprintf("table bytes high-water %d exceeds bound %d", statz.Meta.TableBytesMax, cfg.MaxTableBytes))
	}
	if cfg.MinHitRate > 0 && statz.Meta.LookasideHitRate < cfg.MinHitRate {
		rep.BoundViolations = append(rep.BoundViolations,
			fmt.Sprintf("lookaside hit rate %.3f below floor %.3f", statz.Meta.LookasideHitRate, cfg.MinHitRate))
	}
	rep.WallNanos = time.Since(start).Nanoseconds()
	return rep, nil
}

// postRun POSTs one /run request, absorbing backpressure: 429/503
// responses sleep out their Retry-After and try again rather than
// counting as failures — an overloaded-but-honest server is healthy.
func postRun(ctx context.Context, client *http.Client, cfg SessionConfig, source string) (*serve.Response, error) {
	body, err := json.Marshal(serve.Request{Source: source, Scheme: cfg.Scheme, Mode: cfg.Mode})
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/run", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		httpResp, err := client.Do(req)
		if err != nil {
			return nil, err
		}
		data, err := io.ReadAll(httpResp.Body)
		httpResp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch httpResp.StatusCode {
		case http.StatusOK:
			var resp serve.Response
			if err := json.Unmarshal(data, &resp); err != nil {
				return nil, fmt.Errorf("bad 200 body: %w", err)
			}
			return &resp, nil
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if attempt >= 100 {
				return nil, fmt.Errorf("still %d after %d attempts", httpResp.StatusCode, attempt+1)
			}
			delay := 25 * time.Millisecond
			var eb serve.ErrorBody
			if json.Unmarshal(data, &eb) == nil && eb.RetryAfterMillis > 0 {
				delay = time.Duration(eb.RetryAfterMillis) * time.Millisecond
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		default:
			return nil, fmt.Errorf("status %d: %s", httpResp.StatusCode, clip(string(data)))
		}
	}
}

func getStatz(ctx context.Context, client *http.Client, base string) (*serve.Statz, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/statz", nil)
	if err != nil {
		return nil, err
	}
	httpResp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", httpResp.StatusCode)
	}
	var st serve.Statz
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}
