// Package baseline implements the comparison tools of the paper's
// evaluation (Table 4 and §2): checkers that watch an *uninstrumented*
// program at runtime, the way Valgrind, GCC Mudflap, and Jones–Kelly-style
// object-table systems do. Each deliberately reproduces the blind spots
// the paper attributes to it:
//
//   - ObjectTable (Jones–Kelly lineage): every allocation is tracked in a
//     splay tree; accesses must land inside *some* object. Sub-object
//     overflows (paper §2.1's node.str example) are invisible because the
//     containing object is still valid. Overflows that land inside a
//     *neighbouring* object are also invisible.
//   - Valgrind-style: tracks heap allocations with red zones; stack and
//     global overflows are not tracked at all ("Valgrind does not detect
//     overflows on the stack", §6.2).
//   - Mudflap-style: an object database covering heap, globals, and
//     stack objects, checked at object granularity; like the object
//     table it misses sub-object overflows, and its heap red zones are
//     narrow.
package baseline

import (
	"fmt"

	"softbound/internal/splay"
	"softbound/internal/vm"
)

// ObjectTable is the Jones–Kelly-style object-granularity checker.
type ObjectTable struct {
	tree *splay.Tree
	// Lookups counts checked accesses (benchmarks report splay cost).
	Lookups uint64
}

// NewObjectTable returns an empty object table.
func NewObjectTable() *ObjectTable { return &ObjectTable{tree: splay.New()} }

// Name identifies the tool.
func (o *ObjectTable) Name() string { return "objecttable" }

// OnAlloc registers an object.
func (o *ObjectTable) OnAlloc(addr, size uint64, zone string) {
	if size == 0 {
		size = 1
	}
	o.tree.Remove(addr) // address reuse replaces the old object
	o.tree.Insert(splay.Range{Start: addr, End: addr + size, Tag: zone})
}

// OnFree forgets an object.
func (o *ObjectTable) OnFree(addr uint64) { o.tree.Remove(addr) }

// OnLoad checks that the access stays inside a known object.
func (o *ObjectTable) OnLoad(addr, size uint64) error { return o.check(addr, size, "read") }

// OnStore checks that the access stays inside a known object.
func (o *ObjectTable) OnStore(addr, size uint64) error { return o.check(addr, size, "write") }

func (o *ObjectTable) check(addr, size uint64, op string) error {
	o.Lookups++
	r, ok := o.tree.Find(addr)
	if !ok {
		// Every program memory access flows through a tracked object
		// (globals, heap blocks, and stack slots are all registered),
		// so an access outside all of them is an out-of-bounds
		// dereference landing in padding or control data. An overflow
		// that lands *inside a neighbouring object* is NOT caught —
		// the object-table blind spot the paper describes (§2.1).
		return &vm.BaselineViolation{Tool: o.Name(), Msg: fmt.Sprintf(
			"%s of %d bytes at 0x%x outside any object", op, size, addr)}
	}
	if addr+size > r.End {
		return &vm.BaselineViolation{Tool: o.Name(), Msg: fmt.Sprintf(
			"%s of %d bytes at 0x%x crosses object [0x%x,0x%x)", op, size, addr, r.Start, r.End)}
	}
	return nil
}

var _ vm.Checker = (*ObjectTable)(nil)

// Valgrind approximates memcheck: heap blocks get red zones; accesses in
// a red zone or in freed memory are reported. Stack and global memory is
// not tracked, so overflows there pass silently (Table 4: go, compress).
type Valgrind struct {
	blocks  *splay.Tree
	redzone uint64
}

// NewValgrind returns the checker with the standard 16-byte red zone.
func NewValgrind() *Valgrind {
	return &Valgrind{blocks: splay.New(), redzone: 16}
}

// Name identifies the tool.
func (v *Valgrind) Name() string { return "valgrind" }

// OnAlloc tracks heap blocks only, with surrounding red zones.
func (v *Valgrind) OnAlloc(addr, size uint64, zone string) {
	if zone != "heap" {
		return
	}
	v.blocks.Remove(addr) // reuse of a freed block replaces its range
	v.blocks.Insert(splay.Range{Start: addr, End: addr + size, Tag: "live"})
}

// OnFree marks the block's range as freed (accesses will be flagged).
func (v *Valgrind) OnFree(addr uint64) {
	if r, ok := v.blocks.Remove(addr); ok {
		v.blocks.Insert(splay.Range{Start: r.Start, End: r.End, Tag: "freed"})
	}
}

// OnLoad checks heap accesses.
func (v *Valgrind) OnLoad(addr, size uint64) error { return v.check(addr, size, "read") }

// OnStore checks heap accesses.
func (v *Valgrind) OnStore(addr, size uint64) error { return v.check(addr, size, "write") }

func (v *Valgrind) check(addr, size uint64, op string) error {
	if addr < vm.HeapBase || addr >= vm.StackTop-vm.DefaultStackSize {
		// Not heap: memcheck has no bounds data for globals/stack.
		return nil
	}
	r, ok := v.blocks.Find(addr)
	if !ok {
		// Within the heap segment but not inside any block: red-zone
		// territory.
		return &vm.BaselineViolation{Tool: v.Name(), Msg: fmt.Sprintf(
			"invalid heap %s of %d bytes at 0x%x", op, size, addr)}
	}
	if r.Tag == "freed" {
		return &vm.BaselineViolation{Tool: v.Name(), Msg: fmt.Sprintf(
			"%s of freed block at 0x%x", op, addr)}
	}
	if addr+size > r.End {
		return &vm.BaselineViolation{Tool: v.Name(), Msg: fmt.Sprintf(
			"heap %s of %d bytes at 0x%x overruns block [0x%x,0x%x)", op, size, addr, r.Start, r.End)}
	}
	return nil
}

var _ vm.Checker = (*Valgrind)(nil)

// Mudflap approximates GCC's Mudflap: an object database across heap,
// globals, and registered stack objects, checked at object granularity.
// Unlike Valgrind it sees global and stack objects; like every
// object-based scheme it cannot see sub-object overflows.
type Mudflap struct {
	objects *splay.Tree
}

// NewMudflap returns an empty object database.
func NewMudflap() *Mudflap { return &Mudflap{objects: splay.New()} }

// Name identifies the tool.
func (m *Mudflap) Name() string { return "mudflap" }

// OnAlloc registers any object (heap, global, stack).
func (m *Mudflap) OnAlloc(addr, size uint64, zone string) {
	if size == 0 {
		size = 1
	}
	m.objects.Remove(addr)
	m.objects.Insert(splay.Range{Start: addr, End: addr + size, Tag: zone})
}

// OnFree unregisters.
func (m *Mudflap) OnFree(addr uint64) { m.objects.Remove(addr) }

// OnLoad checks object membership.
func (m *Mudflap) OnLoad(addr, size uint64) error { return m.check(addr, size, "read") }

// OnStore checks object membership.
func (m *Mudflap) OnStore(addr, size uint64) error { return m.check(addr, size, "write") }

func (m *Mudflap) check(addr, size uint64, op string) error {
	r, ok := m.objects.Find(addr)
	if !ok {
		// All program traffic lands in registered objects, so an
		// access outside every object (padding, control data, freed
		// memory) is flagged. An access landing *inside a neighbouring
		// object* is the scheme's blind spot.
		return &vm.BaselineViolation{Tool: m.Name(), Msg: fmt.Sprintf(
			"unregistered %s at 0x%x", op, addr)}
	}
	if addr+size > r.End {
		return &vm.BaselineViolation{Tool: m.Name(), Msg: fmt.Sprintf(
			"%s of %d bytes at 0x%x overruns object [0x%x,0x%x)", op, size, addr, r.Start, r.End)}
	}
	return nil
}

var _ vm.Checker = (*Mudflap)(nil)
