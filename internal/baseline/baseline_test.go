package baseline

import (
	"testing"

	"softbound/internal/vm"
)

func TestObjectTableCatchesCrossings(t *testing.T) {
	o := NewObjectTable()
	o.OnAlloc(0x1000, 64, "heap")
	o.OnAlloc(0x1040, 64, "heap")

	if err := o.OnLoad(0x1000, 8); err != nil {
		t.Errorf("in-bounds load flagged: %v", err)
	}
	// A straddling access crosses the object boundary.
	if err := o.OnStore(0x103c, 8); err == nil {
		t.Error("straddling store not flagged")
	}
	// An access fully inside the *neighbouring* object is the blind
	// spot: it passes (paper §2.1).
	if err := o.OnStore(0x1040, 8); err != nil {
		t.Errorf("neighbour access flagged: %v", err)
	}
	// Outside all objects: flagged.
	if err := o.OnStore(0x2000, 8); err == nil {
		t.Error("out-of-object store not flagged")
	}
	// Freed memory: flagged.
	o.OnFree(0x1000)
	if err := o.OnLoad(0x1000, 8); err == nil {
		t.Error("use-after-free not flagged")
	}
}

func TestValgrindHeapOnly(t *testing.T) {
	v := NewValgrind()
	v.OnAlloc(vm.HeapBase+0x100, 32, "heap")
	v.OnAlloc(0x20000, 64, "global") // ignored: not heap

	// In-bounds heap.
	if err := v.OnLoad(vm.HeapBase+0x100, 8); err != nil {
		t.Errorf("heap load flagged: %v", err)
	}
	// Past the block, into red-zone territory.
	if err := v.OnStore(vm.HeapBase+0x120, 8); err == nil {
		t.Error("heap overflow not flagged")
	}
	// Straddle.
	if err := v.OnStore(vm.HeapBase+0x11c, 8); err == nil {
		t.Error("straddling heap store not flagged")
	}
	// Globals and stack: invisible to a heap-only tool.
	if err := v.OnStore(0x20040, 8); err != nil {
		t.Errorf("global overflow flagged by heap-only tool: %v", err)
	}
	if err := v.OnStore(vm.StackTop-64, 8); err != nil {
		t.Errorf("stack access flagged by heap-only tool: %v", err)
	}
	// Freed heap block.
	v.OnFree(vm.HeapBase + 0x100)
	if err := v.OnLoad(vm.HeapBase+0x100, 4); err == nil {
		t.Error("use-after-free not flagged")
	}
	// Reuse after free re-registers cleanly.
	v.OnAlloc(vm.HeapBase+0x100, 32, "heap")
	if err := v.OnLoad(vm.HeapBase+0x100, 4); err != nil {
		t.Errorf("reused block flagged: %v", err)
	}
}

func TestMudflapSeesAllSegmentsAtObjectGranularity(t *testing.T) {
	m := NewMudflap()
	m.OnAlloc(0x20000, 16, "global")
	m.OnAlloc(vm.HeapBase, 32, "heap")
	m.OnAlloc(vm.StackTop-128, 24, "stack")

	// In-bounds everywhere.
	for _, a := range []uint64{0x20000, vm.HeapBase + 8, vm.StackTop - 128} {
		if err := m.OnLoad(a, 8); err != nil {
			t.Errorf("in-bounds access at %x flagged: %v", a, err)
		}
	}
	// Straddles are caught in every segment.
	if err := m.OnStore(0x2000c, 8); err == nil {
		t.Error("global straddle missed")
	}
	// Outside any object: caught.
	if err := m.OnStore(0x30000, 4); err == nil {
		t.Error("unregistered access missed")
	}
	// The object-granularity blind spot: an access inside a
	// neighbouring registered object passes.
	m.OnAlloc(0x20010, 16, "global")
	if err := m.OnStore(0x20010, 4); err != nil {
		t.Errorf("neighbour-object access flagged: %v", err)
	}
}

func TestCheckersImplementVMInterface(t *testing.T) {
	var _ vm.Checker = NewObjectTable()
	var _ vm.Checker = NewValgrind()
	var _ vm.Checker = NewMudflap()
	for _, c := range []vm.Checker{NewObjectTable(), NewValgrind(), NewMudflap()} {
		if c.Name() == "" {
			t.Error("empty checker name")
		}
	}
}
