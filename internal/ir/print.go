package ir

import (
	"fmt"
	"strings"
)

// String renders the module in a textual assembly-like form, used by
// golden tests and -dump debugging.
func (m *Module) String() string {
	var b strings.Builder
	for _, g := range m.Globals {
		fmt.Fprintf(&b, "global @%s size=%d", g.Name, g.Size)
		if g.ReadOnly {
			b.WriteString(" ro")
		}
		if g.ContainsPtr {
			b.WriteString(" hasptr")
		}
		b.WriteString("\n")
	}
	for _, f := range m.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

// String renders the function.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nfunc %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%%%d:%s", i, p.Class)
		if p.IsPtr {
			b.WriteString("*")
		}
	}
	if f.Variadic {
		b.WriteString(", ...")
	}
	b.WriteString(")")
	if f.Transformed {
		fmt.Fprintf(&b, " ; softbound as %s", f.SBName)
	}
	b.WriteString("\n")
	for bi, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d: ; %s\n", bi, blk.Name)
		for i := range blk.Insts {
			fmt.Fprintf(&b, "  %s\n", blk.Insts[i].String())
		}
	}
	return b.String()
}

// String renders one instruction.
func (in *Inst) String() string {
	switch in.Kind {
	case KConst, KMov:
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Kind, in.A)
	case KBin:
		s := fmt.Sprintf("%s = %s %s, %s", in.Dst, in.Op, in.A, in.B)
		if in.IntWidth != 0 && in.IntWidth != 64 {
			s += fmt.Sprintf(" w%d", in.IntWidth)
		}
		if in.Signed {
			s += " signed"
		}
		return s
	case KUn:
		return fmt.Sprintf("%s = %s %s", in.Dst, in.Op, in.A)
	case KCmp:
		return fmt.Sprintf("%s = cmp %s %s, %s", in.Dst, in.Pred, in.A, in.B)
	case KConv:
		return fmt.Sprintf("%s = conv %s to %s (w%d signed=%v)", in.Dst, in.A, in.Mem, in.IntWidth, in.Signed)
	case KAlloca:
		return fmt.Sprintf("%s = alloca %d ; %s", in.Dst, in.Size, in.Name)
	case KLoad:
		return fmt.Sprintf("%s = load %s %s", in.Dst, in.Mem, in.A)
	case KStore:
		return fmt.Sprintf("store %s %s, %s", in.Mem, in.A, in.B)
	case KGEP:
		return fmt.Sprintf("%s = gep %s + %s*%d + %d", in.Dst, in.A, in.B, in.Size, in.C.Int)
	case KCall:
		var args []string
		for _, a := range in.Args {
			args = append(args, a.String())
		}
		dst := ""
		if in.Dst != NoReg {
			dst = fmt.Sprintf("%s = ", in.Dst)
			if in.DstBase != NoReg {
				dst = fmt.Sprintf("%s,%s,%s = ", in.Dst, in.DstBase, in.DstBound)
				if in.TMeta {
					dst = fmt.Sprintf("%s,%s,%s,%s,%s = ", in.Dst,
						in.DstBase, in.DstBound, in.DstKey, in.DstLock)
				}
			}
		}
		s := fmt.Sprintf("%scall %s(%s)", dst, in.Callee, strings.Join(args, ", "))
		// Every shadow-stack slot the caller fills is printed, including
		// slots whose Arg index does not name an argument (a malformed
		// module prints what would actually flow, never a truncation).
		if len(in.Shadow) > 0 {
			var slots []string
			for _, sl := range in.Shadow {
				if sl.Temporal {
					slots = append(slots, fmt.Sprintf("%d:[%s,%s,%s,%s]",
						sl.Arg, sl.Base, sl.Bound, sl.Key, sl.Lock))
				} else {
					slots = append(slots, fmt.Sprintf("%d:[%s,%s]", sl.Arg, sl.Base, sl.Bound))
				}
			}
			s += fmt.Sprintf(" shadow{%s}", strings.Join(slots, ", "))
		}
		return s
	case KRet:
		if !in.HasVal {
			return "ret"
		}
		if in.RetMetaValid {
			if in.TMeta {
				return fmt.Sprintf("ret %s [%s,%s,%s,%s]", in.A,
					in.RetBase, in.RetBound, in.RetKey, in.RetLock)
			}
			return fmt.Sprintf("ret %s [%s,%s]", in.A, in.RetBase, in.RetBound)
		}
		return fmt.Sprintf("ret %s", in.A)
	case KBr:
		return fmt.Sprintf("br b%d", in.Target)
	case KCondBr:
		return fmt.Sprintf("condbr %s, b%d, b%d", in.A, in.Target, in.Else)
	case KCheck:
		if in.TMeta {
			return fmt.Sprintf("check.%s %s in [%s, %s) size=%d key=%s lock=%s",
				in.CheckK, in.A, in.Base, in.Bound, in.AccessSize, in.Key, in.Lock)
		}
		return fmt.Sprintf("check.%s %s in [%s, %s) size=%d", in.CheckK, in.A, in.Base, in.Bound, in.AccessSize)
	case KMetaLoad:
		if in.TMeta {
			return fmt.Sprintf("%s,%s,%s,%s = metaload %s",
				in.DstBaseR, in.DstBndR, in.DstKeyR, in.DstLockR, in.A)
		}
		return fmt.Sprintf("%s,%s = metaload %s", in.DstBaseR, in.DstBndR, in.A)
	case KMetaStore:
		if in.TMeta {
			return fmt.Sprintf("metastore %s, [%s,%s,%s,%s]", in.A,
				in.SrcBase, in.SrcBound, in.SrcKey, in.SrcLock)
		}
		return fmt.Sprintf("metastore %s, [%s,%s]", in.A, in.SrcBase, in.SrcBound)
	case KMetaClear:
		return fmt.Sprintf("metaclear %s, %s", in.A, in.MemSize)
	case KUnreachable:
		return "unreachable"
	}
	return fmt.Sprintf("inst(%d)", in.Kind)
}

// IsTerminator reports whether the instruction ends a block.
func (in *Inst) IsTerminator() bool {
	switch in.Kind {
	case KRet, KBr, KCondBr, KUnreachable:
		return true
	}
	return false
}
