// Package ir defines the typed intermediate representation the SoftBound
// pipeline operates on. It is a register-based three-address code with
// explicit memory operations, modeled on the relevant slice of LLVM IR:
// unlimited virtual registers, alloca/load/store, a GEP-like address
// instruction, calls, and branch terminators.
//
// SoftBound instruments exactly this form (paper §3.1): every pointer
// register acquires companion base/bound registers, dereferences get Check
// instructions, pointer loads/stores get MetaLoad/MetaStore instructions,
// and calls get extra metadata arguments. Those metadata instructions are
// first-class here so the optimizer can see (and eliminate) them and the
// VM can cost them per the chosen metadata facility.
package ir

import (
	"fmt"
	"sync"
)

// Class is the register class of a value.
type Class int

// Register classes.
const (
	ClassInt Class = iota
	ClassFloat
	ClassPtr
)

func (c Class) String() string {
	switch c {
	case ClassInt:
		return "i"
	case ClassFloat:
		return "f"
	case ClassPtr:
		return "p"
	}
	return "?"
}

// MemType describes the width and interpretation of a memory access.
type MemType int

// Memory access types.
const (
	MemI8 MemType = iota
	MemU8
	MemI16
	MemU16
	MemI32
	MemU32
	MemI64
	MemF32
	MemF64
	MemPtr
)

// Size returns the access size in bytes.
func (m MemType) Size() int64 {
	switch m {
	case MemI8, MemU8:
		return 1
	case MemI16, MemU16:
		return 2
	case MemI32, MemU32, MemF32:
		return 4
	default:
		return 8
	}
}

// Class returns the register class loaded/stored by this access.
func (m MemType) Class() Class {
	switch m {
	case MemF32, MemF64:
		return ClassFloat
	case MemPtr:
		return ClassPtr
	default:
		return ClassInt
	}
}

func (m MemType) String() string {
	return [...]string{"i8", "u8", "i16", "u16", "i32", "u32", "i64", "f32", "f64", "ptr"}[m]
}

// Op is a binary/unary arithmetic operator.
type Op int

// Operators. Signedness and width are carried by the instruction.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpNeg // unary
	OpNot // unary bitwise complement
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg
)

func (o Op) String() string {
	return [...]string{"add", "sub", "mul", "div", "rem", "and", "or", "xor",
		"shl", "shr", "neg", "not", "fadd", "fsub", "fmul", "fdiv", "fneg"}[o]
}

// Pred is a comparison predicate.
type Pred int

// Comparison predicates.
const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
	PredFEQ
	PredFNE
	PredFLT
	PredFLE
	PredFGT
	PredFGE
)

func (p Pred) String() string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge",
		"feq", "fne", "flt", "fle", "fgt", "fge"}[p]
}

// Reg is a virtual register number. Register 0 is valid.
type Reg int

// NoReg marks an absent register operand.
const NoReg Reg = -1

func (r Reg) String() string { return fmt.Sprintf("%%%d", int(r)) }

// Value is an instruction operand: a register, an immediate, or a symbol
// reference.
type Value struct {
	Kind  ValueKind
	Reg   Reg
	Int   int64
	Float float64
	Sym   string // global or function name
	Off   int64  // constant byte offset added to a symbol address
}

// ValueKind discriminates operand variants.
type ValueKind int

// Operand kinds.
const (
	VReg ValueKind = iota
	VConstInt
	VConstFloat
	VGlobal // address of a global (+Off)
	VFunc   // address of a function
)

// R makes a register operand.
func R(r Reg) Value { return Value{Kind: VReg, Reg: r} }

// CI makes an integer-constant operand.
func CI(v int64) Value { return Value{Kind: VConstInt, Int: v} }

// CF makes a float-constant operand.
func CF(v float64) Value { return Value{Kind: VConstFloat, Float: v} }

// GV makes a global-address operand.
func GV(name string, off int64) Value { return Value{Kind: VGlobal, Sym: name, Off: off} }

// FV makes a function-address operand.
func FV(name string) Value { return Value{Kind: VFunc, Sym: name} }

// IsReg reports whether v is the given register.
func (v Value) IsReg() bool { return v.Kind == VReg }

func (v Value) String() string {
	switch v.Kind {
	case VReg:
		return v.Reg.String()
	case VConstInt:
		return fmt.Sprintf("%d", v.Int)
	case VConstFloat:
		return fmt.Sprintf("%g", v.Float)
	case VGlobal:
		if v.Off != 0 {
			return fmt.Sprintf("@%s+%d", v.Sym, v.Off)
		}
		return "@" + v.Sym
	case VFunc:
		return "&" + v.Sym
	}
	return "?"
}

// CheckKind distinguishes what a Check guards, so store-only mode can
// filter and the metrics can attribute costs.
type CheckKind int

// Check kinds.
const (
	CheckLoad CheckKind = iota
	CheckStore
	CheckCall // function-pointer call check (base==ptr==bound encoding)
)

func (k CheckKind) String() string {
	return [...]string{"load", "store", "call"}[k]
}

// Inst is a single IR instruction. A compact struct-with-kind encoding is
// used rather than one type per instruction: the passes switch on Kind and
// the uniform shape keeps rewriting (instrumentation inserts) simple.
type Inst struct {
	Kind InstKind

	Dst Reg   // result register (NoReg if none)
	A   Value // first operand
	B   Value // second operand
	C   Value // third operand (Check bound, CondBr false target index, ...)

	Op   Op      // for KBin / KUn
	Pred Pred    // for KCmp
	Mem  MemType // for KLoad / KStore and conversion source/dest encoding

	// Width/signedness for KBin on sub-64-bit integer ops, and for KConv.
	IntWidth int  // 8, 16, 32, 64 (0 means 64)
	Signed   bool // signed arithmetic / conversion

	// ConvSrc describes the source interpretation for KConv (Mem is the
	// destination interpretation).
	ConvSrc MemType

	// KAlloca.
	Size  int64
	Align int64
	Name  string // local variable name for diagnostics

	// KCall.
	Callee Value   // VFunc for direct calls or VReg holding a function pointer
	Args   []Value // regular arguments
	// Shadow lists the shadow-stack slots the caller fills for this
	// call's metadata window: one entry per pointer argument, identified
	// by argument index. At runtime the VM reserves a window of
	// 1+len(Args) (base, bound) slots per call — slot 0 receives the
	// callee's return metadata, slot 1+i carries argument i's metadata —
	// and the callee pops slots by its *own* parameter layout, so
	// metadata survives indirect calls whose static site signature
	// disagrees with the dynamic callee (paper §3.3, §5.2).
	Shadow []ShadowSlot
	// DstBase/DstBound receive the returned pointer's metadata when the
	// callee returns a pointer and instrumentation is on.
	DstBase, DstBound Reg

	// KCheck: A=ptr, Base, Bound, AccessSize. CheckK gives the kind.
	Base, Bound Value
	AccessSize  int64
	CheckK      CheckKind

	// KGEP bounds shrinking (paper §3.1 "Shrinking Pointer Bounds"):
	// when the GEP creates a pointer to a struct field, the SoftBound
	// pass narrows the result's metadata to [dst, dst+ShrinkLen).
	Shrink    bool
	ShrinkLen int64

	// Branch targets (indices into Func.Blocks).
	Target, Else int

	// Ret: A = value (or absent); RetBase/RetBound = metadata when
	// returning a pointer under instrumentation.
	HasVal             bool
	RetBase, RetBound  Value
	RetMetaValid       bool
	SrcBase, SrcBound  Value // KMetaStore: metadata to store for the pointer at addr A
	DstBaseR, DstBndR  Reg   // KMetaLoad: receive metadata for pointer loaded from addr A
	MemcpyLen, MemSize Value // KMemMeta ops

	// Temporal (CETS lock-and-key) operands. TMeta gates every field
	// below: the zero Value/Reg are VALID operands (register 0), so the
	// VM and the optimizer must consult these only when TMeta is set —
	// spatial-only lowering leaves TMeta false and the temporal operands
	// are then meaningless zero values that nothing reads.
	TMeta             bool
	Key, Lock         Value // KCheck: allocation key + lock index of A's metadata
	SrcKey, SrcLock   Value // KMetaStore: temporal metadata to store
	DstKeyR, DstLockR Reg   // KMetaLoad: receive temporal metadata
	DstKey, DstLock   Reg   // KCall: receive returned pointer's temporal metadata
	RetKey, RetLock   Value // KRet: temporal metadata of a returned pointer
}

// ShadowSlot is one caller-filled slot of a call's shadow-stack metadata
// window: the (base, bound) pair for the pointer passed as argument Arg.
// Arguments without a slot (non-pointers) leave their window slot zeroed,
// which the runtime treats as "no metadata" (fail-closed NULL bounds).
type ShadowSlot struct {
	Arg         int // argument index; rides in window slot 1+Arg
	Base, Bound Value
	// Key/Lock carry the argument's temporal metadata when Temporal is
	// set (the zero Value is a valid register operand, so the flag gates
	// them exactly like Inst.TMeta gates the instruction-level fields).
	Key, Lock Value
	Temporal  bool
}

// InstKind discriminates instructions.
type InstKind int

// Instruction kinds.
const (
	KConst     InstKind = iota // Dst = A (constant or symbol address)
	KMov                       // Dst = A
	KBin                       // Dst = A op B
	KUn                        // Dst = op A
	KCmp                       // Dst = A pred B (0/1)
	KConv                      // Dst = conv(A) per Mem/IntWidth/Signed
	KAlloca                    // Dst = &stackslot(Size)
	KLoad                      // Dst = *(A) with Mem
	KStore                     // *(A) = B with Mem
	KGEP                       // Dst = A + B*Size + C(imm offset)  [address arithmetic]
	KCall                      // Dst? = call Callee(Args)
	KRet                       // return A?
	KBr                        // br Target
	KCondBr                    // if A != 0 br Target else Else
	KCheck                     // spatial check(A in [Base, Bound-AccessSize])
	KMetaLoad                  // DstBaseR/DstBndR = table_lookup(A)
	KMetaStore                 // table_update(A, SrcBase, SrcBound)
	KMetaClear                 // table_clear(A, MemSize) — clear metadata range
	KUnreachable
)

func (k InstKind) String() string {
	return [...]string{"const", "mov", "bin", "un", "cmp", "conv", "alloca",
		"load", "store", "gep", "call", "ret", "br", "condbr", "check",
		"metaload", "metastore", "metaclear", "unreachable"}[k]
}

// Block is a basic block: straight-line instructions ending in a
// terminator (KRet, KBr, KCondBr, KUnreachable).
type Block struct {
	Name  string
	Insts []Inst
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() *Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	return &b.Insts[len(b.Insts)-1]
}

// Param describes a function parameter.
type Param struct {
	Name  string
	Class Class
	// IsPtr is true for pointer parameters: under SoftBound these gain
	// base/bound companion parameters (paper §3.3).
	IsPtr bool
}

// Func is a function body.
type Func struct {
	Name     string
	Params   []Param
	RetClass Class
	RetIsPtr bool
	HasRet   bool // returns a value
	Variadic bool
	Blocks   []*Block
	NumRegs  int
	// ParamRegs maps parameter position to the register receiving it.
	// irgen assigns 0..n-1; the SoftBound pass appends registers for
	// the base/bound companion parameters.
	ParamRegs []Reg
	// OrigParams is the parameter count before SoftBound extended the
	// signature (callers pass metadata for the first OrigParams only).
	OrigParams int
	// RegClass records each virtual register's class; SoftBound uses it
	// to find the pointer registers that need base/bound companions.
	RegClass []Class

	// Transformed marks functions already instrumented by SoftBound
	// (the paper renames them with an _sb_ prefix; we keep the name and
	// set this flag plus the SBName).
	Transformed bool
	SBName      string

	// FrameSize is the total alloca footprint, computed by Finalize.
	FrameSize int64
	// Allocas lists (offset, size, name); allocas execute as
	// frame-pointer offsets.
	Allocas []AllocaSlot

	// ClearSlots lists frame ranges holding pointers whose metadata the
	// SoftBound epilogue must clear on return (paper §5.2 "memory reuse
	// and stale metadata").
	ClearSlots []AllocaSlot

	// Temporal marks functions lowered with CETS lock-and-key metadata:
	// pointer parameters carry four metadata registers (base, bound, key,
	// lock) instead of two, the VM issues a frame lock on entry (seeded
	// into FrameKeyReg/FrameLockReg for alloca'd pointers) and revokes it
	// on every frame exit. The registers are meaningful only when
	// Temporal is set — Reg's zero value is the valid register 0.
	Temporal                  bool
	FrameKeyReg, FrameLockReg Reg
}

// AllocaSlot records a stack slot in the frame.
type AllocaSlot struct {
	Offset int64
	Size   int64
	Name   string
}

// NewReg allocates a fresh virtual register of the given class.
func (f *Func) NewReg(c Class) Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	f.RegClass = append(f.RegClass, c)
	return r
}

// NewBlock appends a new basic block and returns its index.
func (f *Func) NewBlock(name string) int {
	f.Blocks = append(f.Blocks, &Block{Name: name})
	return len(f.Blocks) - 1
}

// PtrInit records a pointer-valued word in a global's initializer that
// must be relocated at layout time (and whose metadata must be seeded —
// paper §5.2 "global variables").
type PtrInit struct {
	Offset int64  // byte offset within the global
	Sym    string // target global name, or "" when Func != ""
	Func   string // target function name
	Addend int64
	// Bounds of the target object for metadata seeding; filled by the
	// linker from the target's size.
}

// Global is a global variable definition.
type Global struct {
	Name  string
	Size  int64
	Align int64
	// Init is the initial bytes (len <= Size; rest zero). Pointer words
	// within are listed in PtrInits and patched at layout time.
	Init     []byte
	PtrInits []PtrInit
	// ContainsPtr notes whether the global's type contains pointers
	// (drives metadata clearing decisions).
	ContainsPtr bool
	// ReadOnly marks string-literal storage.
	ReadOnly bool
}

// Module is a linkage unit: functions plus globals.
type Module struct {
	Name    string
	Funcs   []*Func
	Globals []*Global

	funcIdx map[string]*Func

	decodedMu sync.Mutex
	decoded   any

	compiledMu sync.Mutex
	compiled   any
}

// Decoded returns the module's cached pre-decoded program, building it
// with build on first use. The VM's decode stage uses this so concurrent
// VMs over one module (the serve compile cache, the parallel bench
// harness) share a single decode. The cache assumes the module is frozen
// by the time the first VM runs — the same read-only contract the VM
// already imposes — and the stored value is opaque to this package so ir
// does not depend on the VM's decoded representation.
func (m *Module) Decoded(build func() any) any {
	m.decodedMu.Lock()
	defer m.decodedMu.Unlock()
	if m.decoded == nil {
		m.decoded = build()
	}
	return m.decoded
}

// Compiled returns the module's cached threaded-code program, building
// it with build on first use — the compiled-engine analogue of Decoded,
// with the same singleflight and frozen-module contract. Kept as a
// separate slot (not keyed off Decoded's) so a module serving mixed
// engine traffic caches both forms independently.
func (m *Module) Compiled(build func() any) any {
	m.compiledMu.Lock()
	defer m.compiledMu.Unlock()
	if m.compiled == nil {
		m.compiled = build()
	}
	return m.compiled
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, funcIdx: make(map[string]*Func)}
}

// AddFunc appends f, indexing it by name.
func (m *Module) AddFunc(f *Func) {
	m.Funcs = append(m.Funcs, f)
	if m.funcIdx == nil {
		m.funcIdx = make(map[string]*Func)
	}
	m.funcIdx[f.Name] = f
}

// Lookup returns the function with the given name, or nil.
func (m *Module) Lookup(name string) *Func {
	if m.funcIdx == nil {
		m.funcIdx = make(map[string]*Func)
		for _, f := range m.Funcs {
			m.funcIdx[f.Name] = f
		}
	}
	return m.funcIdx[name]
}

// GlobalByName returns the named global, or nil.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// Link merges other into m. Duplicate function definitions are an error;
// a duplicate global keeps the first definition (tentative definitions).
func (m *Module) Link(other *Module) error {
	for _, f := range other.Funcs {
		if m.Lookup(f.Name) != nil {
			return fmt.Errorf("link: duplicate definition of function %q", f.Name)
		}
		m.AddFunc(f)
	}
	for _, g := range other.Globals {
		if m.GlobalByName(g.Name) == nil {
			m.Globals = append(m.Globals, g)
		}
	}
	return nil
}
