// CFG analysis over a Func's basic blocks: successor/predecessor edges,
// reverse postorder, a dominator tree (the Cooper–Harvey–Kennedy
// iterative algorithm from "A Simple, Fast Dominance Algorithm"), and
// natural-loop detection. The optimizer's whole-function passes —
// cross-block redundant-check elimination and loop-invariant metadata
// hoisting — are built on this; the paper gets the same effect by
// re-running LLVM's optimizer after instrumentation (§6.1).
//
// A CFG is a snapshot: any pass that edits terminators or adds blocks
// must rebuild it before relying on it again.
package ir

// CFG is the control-flow graph of one function.
type CFG struct {
	Func *Func
	// Succs/Preds are per-block edge lists (block indices). Predecessor
	// lists include only edges from reachable blocks.
	Succs [][]int
	Preds [][]int
	// RPO lists the reachable blocks in reverse postorder (entry first).
	RPO []int
	// RPONum maps a block index to its position in RPO, -1 when the
	// block is unreachable from the entry.
	RPONum []int
	// idom[b] is b's immediate dominator; the entry block is its own
	// idom, and unreachable blocks hold -1.
	idom []int
}

// successors returns the blocks a block's terminator can branch to. A
// block without a terminator (or ending in KRet/KUnreachable) has none.
func successors(b *Block) []int {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Kind {
	case KBr:
		return []int{t.Target}
	case KCondBr:
		if t.Target == t.Else {
			return []int{t.Target}
		}
		return []int{t.Target, t.Else}
	}
	return nil
}

// BuildCFG computes edges, reverse postorder, and the dominator tree for
// f. Block 0 is the entry. Functions with no blocks yield an empty CFG.
func BuildCFG(f *Func) *CFG {
	n := len(f.Blocks)
	c := &CFG{
		Func:   f,
		Succs:  make([][]int, n),
		Preds:  make([][]int, n),
		RPONum: make([]int, n),
		idom:   make([]int, n),
	}
	for i := range c.RPONum {
		c.RPONum[i] = -1
		c.idom[i] = -1
	}
	if n == 0 {
		return c
	}
	for i, b := range f.Blocks {
		c.Succs[i] = successors(b)
	}

	// Iterative postorder DFS from the entry; reachability falls out.
	type dfsFrame struct{ block, next int }
	visited := make([]bool, n)
	var post []int
	stack := []dfsFrame{{0, 0}}
	visited[0] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(c.Succs[top.block]) {
			s := c.Succs[top.block][top.next]
			top.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, dfsFrame{s, 0})
			}
			continue
		}
		post = append(post, top.block)
		stack = stack[:len(stack)-1]
	}
	c.RPO = make([]int, len(post))
	for i, b := range post {
		r := len(post) - 1 - i
		c.RPO[r] = b
		c.RPONum[b] = r
	}

	// Predecessors, from reachable blocks only.
	for _, b := range c.RPO {
		for _, s := range c.Succs[b] {
			c.Preds[s] = append(c.Preds[s], b)
		}
	}

	c.computeDominators()
	return c
}

// computeDominators runs the Cooper–Harvey–Kennedy iteration: process
// blocks in reverse postorder, intersecting the dominator sets of
// processed predecessors, until a fixpoint.
func (c *CFG) computeDominators() {
	if len(c.RPO) == 0 {
		return
	}
	entry := c.RPO[0]
	c.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range c.RPO[1:] {
			newIdom := -1
			for _, p := range c.Preds[b] {
				if c.idom[p] == -1 {
					continue // not yet processed this round
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = c.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && c.idom[b] != newIdom {
				c.idom[b] = newIdom
				changed = true
			}
		}
	}
}

// intersect walks the two dominator chains up to their common ancestor,
// comparing by reverse-postorder number.
func (c *CFG) intersect(a, b int) int {
	for a != b {
		for c.RPONum[a] > c.RPONum[b] {
			a = c.idom[a]
		}
		for c.RPONum[b] > c.RPONum[a] {
			b = c.idom[b]
		}
	}
	return a
}

// Idom returns b's immediate dominator, or -1 for the entry block and
// for unreachable blocks.
func (c *CFG) Idom(b int) int {
	if len(c.RPO) == 0 || b == c.RPO[0] || c.RPONum[b] == -1 {
		return -1
	}
	return c.idom[b]
}

// Reachable reports whether block b is reachable from the entry.
func (c *CFG) Reachable(b int) bool {
	return b >= 0 && b < len(c.RPONum) && c.RPONum[b] != -1
}

// Dominates reports whether block a dominates block b (reflexively).
// Unreachable blocks dominate nothing and are dominated by nothing.
func (c *CFG) Dominates(a, b int) bool {
	if !c.Reachable(a) || !c.Reachable(b) {
		return false
	}
	entry := c.RPO[0]
	for {
		if a == b {
			return true
		}
		if b == entry {
			return false
		}
		b = c.idom[b]
	}
}

// Loop is one natural loop: the blocks (header included) of every back
// edge targeting Header, merged when several back edges share a header.
type Loop struct {
	Header int
	// Blocks lists the loop body in ascending block order, header
	// included.
	Blocks []int
	// Latches are the back-edge sources.
	Latches []int

	in map[int]bool
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool { return l.in[b] }

// NaturalLoops finds every natural loop: for each back edge u→h (an edge
// whose target h dominates its source u), the loop body is h plus all
// blocks that reach u without passing through h. Loops sharing a header
// are merged. The result is sorted by body size, innermost (smallest)
// first.
func (c *CFG) NaturalLoops() []*Loop {
	byHeader := make(map[int]*Loop)
	var order []int
	for _, u := range c.RPO {
		for _, h := range c.Succs[u] {
			if !c.Dominates(h, u) {
				continue // not a back edge
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, in: map[int]bool{h: true}}
				byHeader[h] = l
				order = append(order, h)
			}
			l.Latches = append(l.Latches, u)
			// Walk predecessors backwards from the latch, stopping at
			// the header.
			work := []int{u}
			for len(work) > 0 {
				b := work[len(work)-1]
				work = work[:len(work)-1]
				if l.in[b] {
					continue
				}
				l.in[b] = true
				work = append(work, c.Preds[b]...)
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		l := byHeader[h]
		for b := range l.in {
			l.Blocks = append(l.Blocks, b)
		}
		sortInts(l.Blocks)
		loops = append(loops, l)
	}
	// Innermost first: a nested loop has strictly fewer blocks than any
	// loop enclosing it.
	for i := 1; i < len(loops); i++ {
		for j := i; j > 0 && len(loops[j].Blocks) < len(loops[j-1].Blocks); j-- {
			loops[j], loops[j-1] = loops[j-1], loops[j]
		}
	}
	return loops
}

// ExitBlocks returns the loop blocks having a successor outside the
// loop, in ascending order.
func (c *CFG) ExitBlocks(l *Loop) []int {
	var out []int
	for _, b := range l.Blocks {
		for _, s := range c.Succs[b] {
			if !l.Contains(s) {
				out = append(out, b)
				break
			}
		}
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
