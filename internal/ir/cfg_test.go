package ir

import "testing"

// mkFunc builds a function whose blocks are given as terminator specs:
// each entry is either {KBr, target}, {KCondBr, target, else}, or {KRet}.
func mkFunc(blocks ...[]int) *Func {
	f := &Func{Name: "t"}
	for range blocks {
		f.NewBlock("b")
	}
	for i, spec := range blocks {
		var t Inst
		switch spec[0] {
		case int(KBr):
			t = Inst{Kind: KBr, Target: spec[1]}
		case int(KCondBr):
			t = Inst{Kind: KCondBr, A: R(0), Target: spec[1], Else: spec[2]}
		default:
			t = Inst{Kind: KRet}
		}
		f.Blocks[i].Insts = []Inst{t}
	}
	f.NewReg(ClassInt)
	return f
}

func TestCFGDiamond(t *testing.T) {
	// 0 → {1, 2} → 3 → ret
	f := mkFunc(
		[]int{int(KCondBr), 1, 2},
		[]int{int(KBr), 3},
		[]int{int(KBr), 3},
		[]int{int(KRet)},
	)
	c := BuildCFG(f)
	if got := c.Succs[0]; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("succs(0) = %v", got)
	}
	if got := c.Preds[3]; len(got) != 2 {
		t.Fatalf("preds(3) = %v", got)
	}
	if c.RPO[0] != 0 {
		t.Fatalf("RPO must start at entry: %v", c.RPO)
	}
	// Entry dominates everything; join is not dominated by either arm.
	for b := 0; b < 4; b++ {
		if !c.Dominates(0, b) {
			t.Errorf("entry should dominate %d", b)
		}
	}
	if c.Dominates(1, 3) || c.Dominates(2, 3) {
		t.Error("diamond arm must not dominate the join")
	}
	if c.Idom(3) != 0 {
		t.Errorf("idom(3) = %d, want 0", c.Idom(3))
	}
	if len(c.NaturalLoops()) != 0 {
		t.Error("acyclic CFG reported loops")
	}
}

func TestCFGLoop(t *testing.T) {
	// 0 → 1(header) → {2(body), 3(exit)}; 2 → 1.
	f := mkFunc(
		[]int{int(KBr), 1},
		[]int{int(KCondBr), 2, 3},
		[]int{int(KBr), 1},
		[]int{int(KRet)},
	)
	c := BuildCFG(f)
	loops := c.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Errorf("header = %d", l.Header)
	}
	if !l.Contains(1) || !l.Contains(2) || l.Contains(0) || l.Contains(3) {
		t.Errorf("loop body = %v", l.Blocks)
	}
	if len(l.Latches) != 1 || l.Latches[0] != 2 {
		t.Errorf("latches = %v", l.Latches)
	}
	exits := c.ExitBlocks(l)
	if len(exits) != 1 || exits[0] != 1 {
		t.Errorf("exits = %v", exits)
	}
	if !c.Dominates(1, 2) {
		t.Error("header must dominate body")
	}
}

func TestCFGNestedLoops(t *testing.T) {
	// 0 → 1(outer hdr) → 2(inner hdr) → {3(inner body→2), 4(outer latch→1)};
	// 1 can also exit to 5.
	f := mkFunc(
		[]int{int(KBr), 1},
		[]int{int(KCondBr), 2, 5},
		[]int{int(KCondBr), 3, 4},
		[]int{int(KBr), 2},
		[]int{int(KBr), 1},
		[]int{int(KRet)},
	)
	c := BuildCFG(f)
	loops := c.NaturalLoops()
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	// Innermost first.
	if loops[0].Header != 2 || loops[1].Header != 1 {
		t.Fatalf("loop order: headers %d, %d", loops[0].Header, loops[1].Header)
	}
	inner, outer := loops[0], loops[1]
	if inner.Contains(4) || inner.Contains(1) {
		t.Errorf("inner body = %v", inner.Blocks)
	}
	for _, b := range []int{1, 2, 3, 4} {
		if !outer.Contains(b) {
			t.Errorf("outer loop missing block %d (body %v)", b, outer.Blocks)
		}
	}
}

func TestCFGUnreachable(t *testing.T) {
	// Block 1 is unreachable; block 2 is the real successor.
	f := mkFunc(
		[]int{int(KBr), 2},
		[]int{int(KBr), 2},
		[]int{int(KRet)},
	)
	c := BuildCFG(f)
	if c.Reachable(1) {
		t.Error("block 1 should be unreachable")
	}
	if c.RPONum[1] != -1 {
		t.Errorf("RPONum of unreachable block = %d", c.RPONum[1])
	}
	// Unreachable preds must not pollute the predecessor lists.
	if got := c.Preds[2]; len(got) != 1 || got[0] != 0 {
		t.Errorf("preds(2) = %v", got)
	}
	if c.Dominates(1, 2) || c.Dominates(1, 1) {
		t.Error("unreachable block should dominate nothing")
	}
}

func TestCFGSelfLoop(t *testing.T) {
	// 0 → 1; 1 → {1, 2}.
	f := mkFunc(
		[]int{int(KBr), 1},
		[]int{int(KCondBr), 1, 2},
		[]int{int(KRet)},
	)
	c := BuildCFG(f)
	loops := c.NaturalLoops()
	if len(loops) != 1 || loops[0].Header != 1 || len(loops[0].Blocks) != 1 {
		t.Fatalf("self loop not detected: %+v", loops)
	}
}
