package ir

import (
	"strings"
	"testing"
)

func TestValueConstructors(t *testing.T) {
	if v := R(3); !v.IsReg() || v.Reg != 3 {
		t.Errorf("R: %+v", v)
	}
	if v := CI(-7); v.Kind != VConstInt || v.Int != -7 {
		t.Errorf("CI: %+v", v)
	}
	if v := CF(2.5); v.Kind != VConstFloat || v.Float != 2.5 {
		t.Errorf("CF: %+v", v)
	}
	if v := GV("g", 8); v.Kind != VGlobal || v.Sym != "g" || v.Off != 8 {
		t.Errorf("GV: %+v", v)
	}
	if v := FV("f"); v.Kind != VFunc || v.Sym != "f" {
		t.Errorf("FV: %+v", v)
	}
}

func TestMemTypeProperties(t *testing.T) {
	sizes := map[MemType]int64{
		MemI8: 1, MemU8: 1, MemI16: 2, MemU16: 2,
		MemI32: 4, MemU32: 4, MemF32: 4,
		MemI64: 8, MemF64: 8, MemPtr: 8,
	}
	for mt, want := range sizes {
		if mt.Size() != want {
			t.Errorf("%v.Size() = %d want %d", mt, mt.Size(), want)
		}
	}
	if MemPtr.Class() != ClassPtr || MemF32.Class() != ClassFloat || MemI8.Class() != ClassInt {
		t.Error("MemType.Class misclassifies")
	}
}

func TestNewRegTracksClasses(t *testing.T) {
	f := &Func{Name: "f"}
	r0 := f.NewReg(ClassInt)
	r1 := f.NewReg(ClassPtr)
	if r0 != 0 || r1 != 1 || f.NumRegs != 2 {
		t.Fatalf("regs: %d %d %d", r0, r1, f.NumRegs)
	}
	if f.RegClass[0] != ClassInt || f.RegClass[1] != ClassPtr {
		t.Fatal("classes not recorded")
	}
}

func TestModuleLookupAndLink(t *testing.T) {
	m1 := NewModule("a")
	m1.AddFunc(&Func{Name: "f"})
	m1.Globals = append(m1.Globals, &Global{Name: "g", Size: 8})

	m2 := NewModule("b")
	m2.AddFunc(&Func{Name: "h"})
	m2.Globals = append(m2.Globals, &Global{Name: "g", Size: 8}) // tentative dup

	if err := m1.Link(m2); err != nil {
		t.Fatal(err)
	}
	if m1.Lookup("h") == nil || m1.Lookup("f") == nil {
		t.Fatal("lookup after link failed")
	}
	if len(m1.Globals) != 1 {
		t.Fatalf("dup global not collapsed: %d", len(m1.Globals))
	}

	m3 := NewModule("c")
	m3.AddFunc(&Func{Name: "f"})
	if err := m1.Link(m3); err == nil {
		t.Fatal("duplicate function definition linked")
	}
}

func TestInstStringCoverage(t *testing.T) {
	insts := []Inst{
		{Kind: KConst, Dst: 0, A: CI(1)},
		{Kind: KBin, Dst: 1, Op: OpAdd, A: R(0), B: CI(2), IntWidth: 32, Signed: true},
		{Kind: KCmp, Dst: 2, Pred: PredLT, A: R(0), B: R(1)},
		{Kind: KLoad, Dst: 3, A: R(0), Mem: MemPtr},
		{Kind: KStore, A: R(0), B: R(3), Mem: MemI32},
		{Kind: KGEP, Dst: 4, A: R(0), B: R(1), Size: 4, C: CI(8)},
		{Kind: KCall, Dst: 5, Callee: FV("malloc"), Args: []Value{CI(8)},
			DstBase: NoReg, DstBound: NoReg},
		{Kind: KRet, HasVal: true, A: R(5)},
		{Kind: KCheck, A: R(0), Base: R(1), Bound: R(2), AccessSize: 4, CheckK: CheckStore},
		{Kind: KMetaLoad, A: R(0), DstBaseR: 6, DstBndR: 7},
		{Kind: KMetaStore, A: R(0), SrcBase: R(6), SrcBound: R(7)},
		{Kind: KMetaClear, A: R(0), MemSize: CI(16)},
		{Kind: KBr, Target: 2},
		{Kind: KCondBr, A: R(2), Target: 1, Else: 2},
		{Kind: KUnreachable},
		{Kind: KAlloca, Dst: 8, Size: 32, Name: "buf", C: CI(0)},
		{Kind: KConv, Dst: 9, A: R(1), Mem: MemF64, ConvSrc: MemI64},
		{Kind: KUn, Dst: 10, Op: OpNeg, A: R(1)},
		{Kind: KMov, Dst: 11, A: R(10)},
	}
	for _, in := range insts {
		s := in.String()
		if s == "" {
			t.Errorf("empty render for kind %v", in.Kind)
		}
	}
	term := 0
	for _, in := range insts {
		if in.IsTerminator() {
			term++
		}
	}
	if term != 4 { // ret, br, condbr, unreachable
		t.Errorf("terminators = %d", term)
	}
}

func TestFuncAndModuleString(t *testing.T) {
	f := &Func{Name: "f", Params: []Param{{Name: "p", Class: ClassPtr, IsPtr: true}},
		Transformed: true, SBName: "_sb_f"}
	f.NewReg(ClassPtr)
	f.Blocks = []*Block{{Name: "entry", Insts: []Inst{{Kind: KRet}}}}
	m := NewModule("t")
	m.AddFunc(f)
	m.Globals = append(m.Globals, &Global{Name: "g", Size: 4, ReadOnly: true, ContainsPtr: true})
	s := m.String()
	for _, frag := range []string{"func f", "_sb_f", "global @g", "ro", "hasptr"} {
		if !strings.Contains(s, frag) {
			t.Errorf("module dump missing %q:\n%s", frag, s)
		}
	}
}

// TestCallShadowSlotsPrinted pins the ISSUE 6 print fix: a call's
// shadow-stack slots render explicitly — every slot the caller fills,
// keyed by argument index — with no silent truncation when the slot
// list is shorter than (or disjoint from) the argument list.
func TestCallShadowSlotsPrinted(t *testing.T) {
	in := Inst{Kind: KCall, Dst: 0, Callee: FV("sink"),
		DstBase: NoReg, DstBound: NoReg,
		Args: []Value{R(1), R(2), R(3)},
		Shadow: []ShadowSlot{
			{Arg: 2, Base: R(4), Bound: R(5)},
		}}
	s := in.String()
	if !strings.Contains(s, "shadow{2:[%4,%5]}") {
		t.Fatalf("shadow slot not printed explicitly: %q", s)
	}
	// No slots → no shadow clause, rather than an empty brace pair.
	in.Shadow = nil
	if s := in.String(); strings.Contains(s, "shadow") {
		t.Fatalf("slot-free call printed a shadow clause: %q", s)
	}
}
