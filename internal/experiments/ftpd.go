package experiments

import (
	"fmt"
	"strings"
)

// The second §6.4 daemon: an FTP-style command interpreter (the paper's
// tinyftp-0.2 counterpart). A session state machine processes a scripted
// command stream — USER/PASS authentication, CWD path normalization with
// ".." handling, LIST over an in-memory directory tree, RETR/STOR byte
// accounting — exercising the string handling and buffer management an
// FTP server actually does.
//
// The daemon exists in two forms built from the same fragments:
//
//   - The three-unit compat experiment (fs.c / session.c / ftpd.c with a
//     fixed script), exercising separate compilation.
//   - FtpdSession: a single-unit request program with a caller-supplied
//     command script, the request-driven workload the session soak
//     POSTs through sbserve (each distinct script is one cacheable
//     program; the live server ages across thousands of them).

// ftpdFsC: the in-memory filesystem module.
const ftpdFsC = `
/* fs.c: a tiny in-memory directory tree. */
struct fsnode {
    char name[24];
    int is_dir;
    int size;
    struct fsnode* child;    /* first child (dirs) */
    struct fsnode* sibling;  /* next entry in parent */
};

struct fsnode* fs_new(char* name, int is_dir, int size) {
    struct fsnode* n = (struct fsnode*)malloc(sizeof(struct fsnode));
    strncpy(n->name, name, 23);
    n->name[23] = 0;
    n->is_dir = is_dir;
    n->size = size;
    n->child = (struct fsnode*)0;
    n->sibling = (struct fsnode*)0;
    return n;
}

void fs_add(struct fsnode* dir, struct fsnode* entry) {
    entry->sibling = dir->child;
    dir->child = entry;
}

struct fsnode* fs_find(struct fsnode* dir, char* name) {
    struct fsnode* c;
    for (c = dir->child; c; c = c->sibling)
        if (strcmp(c->name, name) == 0)
            return c;
    return (struct fsnode*)0;
}

struct fsnode* fs_build_root(void) {
    struct fsnode* root = fs_new("/", 1, 0);
    struct fsnode* pub = fs_new("pub", 1, 0);
    struct fsnode* docs = fs_new("docs", 1, 0);
    fs_add(root, pub);
    fs_add(root, docs);
    fs_add(root, fs_new("welcome.msg", 0, 128));
    fs_add(pub, fs_new("paper.pdf", 0, 4096));
    fs_add(pub, fs_new("data.tar", 0, 9000));
    fs_add(docs, fs_new("readme.txt", 0, 640));
    return root;
}`

// ftpdSessionHdrC repeats the fsnode shape and the fs_find prototype, as
// a header would supply them to a separately-compiled session.c.
const ftpdSessionHdrC = `
/* session.c: one control-connection state machine.
   (struct fsnode repeats here as a header would supply it.) */
struct fsnode {
    char name[24];
    int is_dir;
    int size;
    struct fsnode* child;
    struct fsnode* sibling;
};
struct fsnode* fs_find(struct fsnode* dir, char* name);
`

// ftpdSessionBodyC: the session state machine proper, composable into a
// unit that already defines struct fsnode.
const ftpdSessionBodyC = `
struct session {
    int authed;
    char user[16];
    struct fsnode* root;
    struct fsnode* cwd;
    struct fsnode* dirstack[8];  /* for ".." */
    int depth;
    long bytes_out;
    long bytes_in;
};

void sess_init(struct session* s, struct fsnode* root) {
    s->authed = 0;
    s->user[0] = 0;
    s->root = root;
    s->cwd = root;
    s->depth = 0;
    s->bytes_out = 0;
    s->bytes_in = 0;
}

/* Returns an FTP-ish status code. */
int cmd_user(struct session* s, char* arg) {
    strncpy(s->user, arg, 15);
    s->user[15] = 0;
    return 331;
}

int cmd_pass(struct session* s, char* arg) {
    /* anonymous only, like tinyftp */
    if (strcmp(s->user, "anonymous") == 0 && strlen(arg) > 0) {
        s->authed = 1;
        return 230;
    }
    return 530;
}

int cmd_cwd(struct session* s, char* arg) {
    struct fsnode* next;
    if (!s->authed)
        return 530;
    if (strcmp(arg, "..") == 0) {
        if (s->depth > 0)
            s->cwd = s->dirstack[--s->depth];
        return 250;
    }
    if (strcmp(arg, "/") == 0) {
        s->cwd = s->root;
        s->depth = 0;
        return 250;
    }
    next = fs_find(s->cwd, arg);
    if (!next)
        return 550;
    if (s->depth < 8)
        s->dirstack[s->depth++] = s->cwd;
    s->cwd = next;
    return 250;
}

int cmd_retr(struct session* s, char* arg) {
    struct fsnode* f;
    if (!s->authed)
        return 530;
    f = fs_find(s->cwd, arg);
    if (!f)
        return 550;
    s->bytes_out += f->size;
    return 226;
}

int cmd_stor(struct session* s, char* arg, int size) {
    if (!s->authed)
        return 530;
    s->bytes_in += size;
    return 226;
}`

// ftpdSessionC: the session/state-machine module (separate-compilation
// form).
const ftpdSessionC = ftpdSessionHdrC + ftpdSessionBodyC

// ftpdMainHdrC re-declares the shapes ftpd.c needs from the other units.
const ftpdMainHdrC = `
/* ftpd.c: parse and dispatch a scripted command stream. */
struct fsnode;
struct fsnode* fs_build_root(void);
struct session {
    int authed;
    char user[16];
    struct fsnode* root;
    struct fsnode* cwd;
    struct fsnode* dirstack[8];
    int depth;
    long bytes_out;
    long bytes_in;
};
void sess_init(struct session* s, struct fsnode* root);
int cmd_user(struct session* s, char* arg);
int cmd_pass(struct session* s, char* arg);
int cmd_cwd(struct session* s, char* arg);
int cmd_retr(struct session* s, char* arg);
int cmd_stor(struct session* s, char* arg, int size);
`

// ftpdDispatchC: split a command line and route it, shared by both
// forms of the daemon.
const ftpdDispatchC = `
int dispatch(struct session* s, char* line) {
    char cmd[8];
    char arg[32];
    int i = 0;
    int j = 0;
    while (line[i] && line[i] != ' ' && i < 7) {
        cmd[i] = line[i];
        i++;
    }
    cmd[i] = 0;
    if (line[i] == ' ')
        i++;
    while (line[i] && j < 31)
        arg[j++] = line[i++];
    arg[j] = 0;

    if (strcmp(cmd, "USER") == 0) return cmd_user(s, arg);
    if (strcmp(cmd, "PASS") == 0) return cmd_pass(s, arg);
    if (strcmp(cmd, "CWD") == 0)  return cmd_cwd(s, arg);
    if (strcmp(cmd, "RETR") == 0) return cmd_retr(s, arg);
    if (strcmp(cmd, "STOR") == 0) return cmd_stor(s, arg, 512);
    if (strcmp(cmd, "QUIT") == 0) return 221;
    return 500;
}
`

// ftpdFixedScriptC: the compat experiment's fixed 14-command script and
// driver loop.
const ftpdFixedScriptC = `
char* script[14];

void load_script(void) {
    script[0]  = "USER anonymous";
    script[1]  = "PASS guest@";
    script[2]  = "CWD pub";
    script[3]  = "RETR paper.pdf";
    script[4]  = "RETR data.tar";
    script[5]  = "CWD ..";
    script[6]  = "CWD docs";
    script[7]  = "RETR readme.txt";
    script[8]  = "RETR missing.bin";
    script[9]  = "STOR upload.log";
    script[10] = "CWD /";
    script[11] = "RETR welcome.msg";
    script[12] = "CWD nosuchdir";
    script[13] = "QUIT";
}

int main(void) {
    struct session sess;
    long codes = 0;
    int i, sessions;
    load_script();
    for (sessions = 0; sessions < 25; sessions++) {
        sess_init(&sess, fs_build_root());
        for (i = 0; i < 14; i++)
            codes += dispatch(&sess, script[i]);
    }
    printf("ftpd codes %ld out %ld in %ld\n", codes, sess.bytes_out, sess.bytes_in);
    return 0;
}`

// ftpdMainC: the command-stream driver module (separate-compilation
// form).
const ftpdMainC = ftpdMainHdrC + ftpdDispatchC + ftpdFixedScriptC

// FtpdSession renders the FTP daemon as one self-contained translation
// unit that processes the given command script `sessions` times and
// prints the usual "ftpd codes ..." accounting line. This is the
// request-driven form: a soak client renders one program per generated
// script and POSTs it to a live sbserve, so the server's compile cache,
// metadata tables, and lookaside age across an arbitrarily long stream
// of distinct-but-similar requests.
//
// Commands must fit dispatch's fixed fields: ≤7 command chars and ≤31
// argument chars. Quotes and backslashes are escaped into the C string
// literal; control characters are not supported.
func FtpdSession(script []string, sessions int) string {
	if sessions < 1 {
		sessions = 1
	}
	var b strings.Builder
	b.WriteString(ftpdFsC)
	b.WriteString(ftpdSessionBodyC)
	b.WriteString(ftpdDispatchC)
	fmt.Fprintf(&b, "\nchar* script[%d];\n\nvoid load_script(void) {\n", len(script))
	for i, cmd := range script {
		fmt.Fprintf(&b, "    script[%d] = \"%s\";\n", i, escapeC(cmd))
	}
	b.WriteString("}\n")
	fmt.Fprintf(&b, `
int main(void) {
    struct session sess;
    long codes = 0;
    int i;
    int sessions;
    load_script();
    for (sessions = 0; sessions < %d; sessions = sessions + 1) {
        sess_init(&sess, fs_build_root());
        for (i = 0; i < %d; i = i + 1)
            codes += dispatch(&sess, script[i]);
    }
    printf("ftpd codes %%ld out %%ld in %%ld\\n", codes, sess.bytes_out, sess.bytes_in);
    return 0;
}
`, sessions, len(script))
	return b.String()
}

func escapeC(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
