package experiments

import (
	"fmt"
	"strings"

	"softbound/internal/driver"
	"softbound/internal/meta"
	"softbound/internal/progs"
)

// §6.4 source-compatibility case study. The paper applies SoftBound to
// two unmodified network daemons (an FTP server and a multithreaded HTTP
// server) built from many modules. Network and threads do not exist in
// the simulated substrate, so the case study is reproduced with its
// essential ingredients intact: a multi-module server-shaped program —
// request parsing, routing, header tables, and response formatting over
// C strings — compiled module-by-module (separate compilation), linked
// against the instrumented libc, driven by a batch of synthetic
// requests, and executed unmodified under both checking modes.

// serverUtilC: string/table helpers module.
const serverUtilC = `
/* util.c: header table and helpers. */
struct header {
    char name[32];
    char value[96];
    struct header* next;
};

struct header* header_add(struct header* list, char* name, char* value) {
    struct header* h = (struct header*)malloc(sizeof(struct header));
    strncpy(h->name, name, 31);
    h->name[31] = 0;
    strncpy(h->value, value, 95);
    h->value[95] = 0;
    h->next = list;
    return h;
}

char* header_get(struct header* list, char* name) {
    while (list) {
        if (strcmp(list->name, name) == 0)
            return list->value;
        list = list->next;
    }
    return (char*)0;
}

void header_free(struct header* list) {
    while (list) {
        struct header* n = list->next;
        free(list);
        list = n;
    }
}

int url_decode(char* dst, char* src, int max) {
    int i = 0;
    while (*src && i < max - 1) {
        if (*src == '+') {
            dst[i++] = ' ';
            src++;
        } else if (*src == '%' && src[1] && src[2]) {
            int hi = src[1] >= 'a' ? src[1] - 'a' + 10 : src[1] - '0';
            int lo = src[2] >= 'a' ? src[2] - 'a' + 10 : src[2] - '0';
            dst[i++] = (char)(hi * 16 + lo);
            src += 3;
        } else {
            dst[i++] = *src++;
        }
    }
    dst[i] = 0;
    return i;
}`

// serverParserC: request-line and header parsing module.
const serverParserC = `
/* parser.c: HTTP-ish request parsing. */
struct header;
struct header* header_add(struct header* list, char* name, char* value);

struct request {
    char method[8];
    char path[64];
    struct header* headers;
    int ok;
};

int token_until(char* dst, char* src, int max, char stop) {
    int i = 0;
    while (src[i] && src[i] != stop && i < max - 1) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
    return i;
}

struct request* parse_request(char* raw) {
    struct request* r = (struct request*)malloc(sizeof(struct request));
    char line[128];
    int n, off;
    r->headers = (struct header*)0;
    r->ok = 0;
    n = token_until(r->method, raw, 8, ' ');
    off = n + 1;
    n = token_until(r->path, raw + off, 64, ' ');
    off += n + 1;
    /* Skip protocol token. */
    n = token_until(line, raw + off, 128, 10);
    off += n + 1;
    /* Headers: name:value separated by newlines, empty line ends. */
    for (;;) {
        char name[32];
        char* colon;
        n = token_until(line, raw + off, 128, 10);
        off += n + 1;
        if (n == 0)
            break;
        colon = strchr(line, ':');
        if (!colon)
            continue;
        *colon = 0;
        strncpy(name, line, 31);
        name[31] = 0;
        r->headers = header_add(r->headers, name, colon + 1);
        if (raw[off - 1] == 0)
            break;
    }
    r->ok = 1;
    return r;
}`

// serverMainC: routing and the synthetic-traffic driver module.
const serverMainC = `
/* server.c: routing and response generation. */
struct header;
struct request {
    char method[8];
    char path[64];
    struct header* headers;
    int ok;
};
struct request* parse_request(char* raw);
char* header_get(struct header* list, char* name);
void header_free(struct header* list);
int url_decode(char* dst, char* src, int max);

char response[256];

int handle(struct request* r) {
    char decoded[64];
    char* agent;
    int len = 0;
    url_decode(decoded, r->path, 64);
    agent = header_get(r->headers, "Agent");
    if (strcmp(r->method, "GET") == 0) {
        strcpy(response, "200 ");
        strcat(response, decoded);
        len = 200;
    } else if (strcmp(r->method, "POST") == 0) {
        strcpy(response, "201 created ");
        strcat(response, decoded);
        len = 201;
    } else {
        strcpy(response, "405 nope");
        len = 405;
    }
    if (agent) {
        strcat(response, " via ");
        strcat(response, agent);
    }
    return len;
}

char reqbuf[256];

void build_request(int i) {
    /* Alternate methods, paths with %-escapes, and a header. */
    if (i % 3 == 0)
        strcpy(reqbuf, "GET /index%2ehtml HTTP/1.0");
    else if (i % 3 == 1)
        strcpy(reqbuf, "POST /form+data HTTP/1.0");
    else
        strcpy(reqbuf, "PUT /nope HTTP/1.0");
    strcat(reqbuf, "\nAgent:sb-bench\nHost:localhost\n\n");
}

int main(void) {
    int i;
    long status_sum = 0;
    int requests = 200;
    for (i = 0; i < requests; i++) {
        struct request* r;
        build_request(i);
        r = parse_request(reqbuf);
        if (r->ok)
            status_sum += handle(r);
        header_free(r->headers);
        free(r);
    }
    printf("served %d status_sum %ld last %s\n", requests, status_sum, response);
    return 0;
}`

// CompatResult summarizes the §6.4 case study for one daemon.
type CompatResult struct {
	Daemon         string
	Modules        int
	Lines          int
	Output         string
	FalsePositives map[string]bool // per mode: true if a violation fired
	OutputsMatch   bool
}

// compatDaemons mirrors the paper's two case-study programs: an HTTP-ish
// multithreaded server (nhttpd) and an FTP server (tinyftp), both
// reproduced as multi-module command processors over synthetic traffic.
func compatDaemons() map[string][]driver.Source {
	return map[string][]driver.Source{
		"nhttpd": {
			{Name: "util.c", Text: serverUtilC},
			{Name: "parser.c", Text: serverParserC},
			{Name: "server.c", Text: serverMainC},
		},
		"tinyftp": {
			{Name: "fs.c", Text: ftpdFsC},
			{Name: "session.c", Text: ftpdSessionC},
			{Name: "ftpd.c", Text: ftpdMainC},
		},
	}
}

// Compat runs both multi-module daemons under none/store/full and
// reports whether the unmodified sources run identically with no false
// positives.
func Compat() ([]*CompatResult, error) {
	var results []*CompatResult
	for _, name := range []string{"nhttpd", "tinyftp"} {
		sources := compatDaemons()[name]
		lines := 0
		for _, s := range sources {
			lines += strings.Count(s.Text, "\n")
		}
		out := &CompatResult{
			Daemon:         name,
			Modules:        len(sources),
			Lines:          lines,
			FalsePositives: make(map[string]bool),
			OutputsMatch:   true,
		}
		var ref string
		for _, mode := range []driver.Mode{driver.ModeNone, driver.ModeStoreOnly, driver.ModeFull} {
			res, err := driver.Run(sources, driver.DefaultConfig(mode))
			if err != nil {
				return nil, fmt.Errorf("%s mode %v: %w", name, mode, err)
			}
			out.FalsePositives[mode.String()] = res.Err != nil
			if ref == "" {
				ref = res.Output
				out.Output = res.Output
			} else if res.Output != ref {
				out.OutputsMatch = false
			}
		}
		results = append(results, out)
	}
	return results, nil
}

// FormatCompat renders the case-study summary.
func FormatCompat(rs []*CompatResult) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "§6.4 case study %s: %d modules, %d lines, separate compilation\n",
			r.Daemon, r.Modules, r.Lines)
		for _, mode := range []string{"none", "store-only", "full"} {
			fmt.Fprintf(&b, "  mode %-10s false positives: %v\n", mode, r.FalsePositives[mode])
		}
		fmt.Fprintf(&b, "  outputs identical across modes: %v\n", r.OutputsMatch)
		fmt.Fprintf(&b, "  output: %s", r.Output)
	}
	return b.String()
}

// ------------------------------------------------------------- §6.5

// RelatedRow compares SoftBound against an MSCC-style cost model on one
// benchmark.
type RelatedRow struct {
	Bench     string
	SoftBound float64
	MSCC      float64
}

// Related reproduces the §6.5 comparison shape: MSCC also keeps disjoint
// per-pointer metadata but uses linked shadow structures (costlier
// lookups) and heavier check sequences; its overhead is uniformly higher
// than SoftBound's. The MSCC configuration is modeled as full checking
// with a 14-instruction two-level metadata lookup and a 6-instruction
// check sequence (vs shadow space's 5 and the 3-instruction compare pair).
func Related(scale int) ([]RelatedRow, error) {
	benches := []string{"go", "compress", "bisort", "em3d"}
	var out []RelatedRow
	for _, name := range benches {
		b, ok := progs.Get(name)
		if !ok {
			return nil, fmt.Errorf("no benchmark %s", name)
		}
		src := b.Source(scale)
		base, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeNone))
		if err != nil || base.Err != nil {
			return nil, firstErr(err, base)
		}
		sb, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeFull))
		if err != nil || sb.Err != nil {
			return nil, firstErr(err, sb)
		}
		msccCfg := driver.DefaultConfig(driver.ModeFull)
		msccCfg.Meta = meta.KindHashTable
		msccCfg.MSCCModel = true
		mscc, err := driver.RunSource(src, msccCfg)
		if err != nil || mscc.Err != nil {
			return nil, firstErr(err, mscc)
		}
		out = append(out, RelatedRow{
			Bench:     name,
			SoftBound: sb.Stats.Overhead(base.Stats),
			MSCC:      mscc.Stats.Overhead(base.Stats),
		})
	}
	return out, nil
}

func firstErr(err error, res *driver.Result) error {
	if err != nil {
		return err
	}
	return res.Err
}

// FormatRelated renders the §6.5 comparison.
func FormatRelated(rows []RelatedRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.5 comparison with MSCC-style checking (overhead %%)\n")
	fmt.Fprintf(&b, "%-10s %10s %10s\n", "bench", "SoftBound", "MSCC-like")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9.1f%% %9.1f%%\n", r.Bench, 100*r.SoftBound, 100*r.MSCC)
	}
	return b.String()
}
