package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the paper's claims (the shapes), not
// absolute numbers. They use a reduced problem size for speed.
const testScale = 3

func TestTable1SoftBoundDominates(t *testing.T) {
	rows := Table1()
	var sb *SchemeRow
	for i := range rows {
		if rows[i].Scheme == "SoftBound" {
			sb = &rows[i]
		}
	}
	if sb == nil {
		t.Fatal("no SoftBound row")
	}
	if !(sb.NoSrcChange && sb.Complete && sb.MemLayout && sb.ArbCasts && sb.DynLinkLib) {
		t.Fatalf("SoftBound row incomplete: %+v", sb)
	}
	// Every other scheme lacks at least one attribute (the paper's
	// Table 1 point).
	for _, r := range rows {
		if r.Scheme == "SoftBound" {
			continue
		}
		if r.NoSrcChange && r.Complete && r.MemLayout && r.ArbCasts && r.DynLinkLib {
			t.Errorf("%s matches SoftBound on all attributes", r.Scheme)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "SoftBound") {
		t.Error("format lost the SoftBound row")
	}
}

func TestTable3AllDetected(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("%d rows, want 18", len(rows))
	}
	for _, r := range rows {
		if !r.Succeeded {
			t.Errorf("%s: attack failed unprotected", r.Attack.Name)
		}
		if !r.DetectedFull || !r.DetectedStore {
			t.Errorf("%s: full=%v store=%v", r.Attack.Name, r.DetectedFull, r.DetectedStore)
		}
	}
	if s := FormatTable3(rows); !strings.Contains(s, "stack-direct-retaddr") {
		t.Error("format broken")
	}
}

func TestTable4MatchesPaperMatrix(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		p := r.Program
		if r.Valgrind != p.Valgrind || r.Mudflap != p.Mudflap ||
			r.Store != p.StoreOnly || r.Full != p.Full {
			t.Errorf("%s: got V=%v M=%v S=%v F=%v, paper says V=%v M=%v S=%v F=%v",
				p.Name, r.Valgrind, r.Mudflap, r.Store, r.Full,
				p.Valgrind, p.Mudflap, p.StoreOnly, p.Full)
		}
	}
	if s := FormatTable4(rows); !strings.Contains(s, "polymorph") {
		t.Error("format broken")
	}
}

func TestFigure1SortedAndShaped(t *testing.T) {
	rows, err := Figure1(testScale)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PtrFrac < rows[i-1].PtrFrac {
			t.Errorf("not sorted at %s", rows[i].Bench.Name)
		}
	}
	// SPEC-style codes sit on the left, pointer codes on the right.
	if rows[0].PtrFrac > 0.05 {
		t.Errorf("leftmost %s has %f", rows[0].Bench.Name, rows[0].PtrFrac)
	}
	if rows[len(rows)-1].PtrFrac < 0.3 {
		t.Errorf("rightmost %s has %f", rows[len(rows)-1].Bench.Name, rows[len(rows)-1].PtrFrac)
	}
	if s := FormatFigure1(rows); !strings.Contains(s, "%") {
		t.Error("format broken")
	}
}

func TestFigure2Shape(t *testing.T) {
	rows, err := Figure2(testScale)
	if err != nil {
		t.Fatal(err)
	}
	avg := Averages(rows)
	// The paper's ordering: hash-full > shadow-full > hash-store >
	// shadow-store; all positive.
	hf, sf := avg["HashTable-Complete"], avg["ShadowSpace-Complete"]
	hs, ss := avg["HashTable-Stores"], avg["ShadowSpace-Stores"]
	if !(hf >= sf && sf > ss && hf >= hs && hs >= ss) {
		t.Errorf("overhead ordering violated: hf=%.2f sf=%.2f hs=%.2f ss=%.2f", hf, sf, hs, ss)
	}
	if ss <= 0 || hf <= 0 {
		t.Error("non-positive overheads")
	}
	// Pointer-heavy benchmarks must separate hash from shadow (the
	// metadata encoding matters only where metadata traffic exists).
	var ptrHeavy, scalar *OverheadResult
	for i := range rows {
		if rows[i].Bench.Name == "treeadd" {
			ptrHeavy = &rows[i]
		}
		if rows[i].Bench.Name == "lbm" {
			scalar = &rows[i]
		}
	}
	dPtr := ptrHeavy.Overheads["HashTable-Complete"] - ptrHeavy.Overheads["ShadowSpace-Complete"]
	dScalar := scalar.Overheads["HashTable-Complete"] - scalar.Overheads["ShadowSpace-Complete"]
	if dPtr <= dScalar {
		t.Errorf("hash-vs-shadow gap should grow with pointer intensity: treeadd %.3f vs lbm %.3f",
			dPtr, dScalar)
	}
	if s := FormatFigure2(rows); !strings.Contains(s, "average") {
		t.Error("format broken")
	}
}

func TestCompatCaseStudy(t *testing.T) {
	rs, err := Compat()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("expected both daemons, got %d", len(rs))
	}
	for _, r := range rs {
		for mode, fp := range r.FalsePositives {
			if fp {
				t.Errorf("%s mode %s produced a false positive", r.Daemon, mode)
			}
		}
		if !r.OutputsMatch {
			t.Errorf("%s: instrumentation changed program behaviour", r.Daemon)
		}
	}
	if !strings.Contains(rs[0].Output, "served 200") {
		t.Errorf("http output: %q", rs[0].Output)
	}
	if !strings.Contains(rs[1].Output, "ftpd codes") {
		t.Errorf("ftp output: %q", rs[1].Output)
	}
	if s := FormatCompat(rs); !strings.Contains(s, "separate compilation") {
		t.Error("format broken")
	}
}

func TestRelatedMSCCUniformlyHigher(t *testing.T) {
	rows, err := Related(testScale)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.MSCC <= r.SoftBound {
			t.Errorf("%s: MSCC %.3f not above SoftBound %.3f (paper §6.5 shape)",
				r.Bench, r.MSCC, r.SoftBound)
		}
	}
	if s := FormatRelated(rows); !strings.Contains(s, "MSCC") {
		t.Error("format broken")
	}
}
