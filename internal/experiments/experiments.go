// Package experiments regenerates every table and figure of the paper's
// evaluation (§6). Each experiment returns structured results; the
// sbbench command and the module's benchmarks format them. Absolute
// numbers come from this reproduction's simulated substrate; the claims
// being reproduced are the *shapes*: who detects what (Tables 3, 4),
// which scheme is qualitatively stronger (Table 1), how the pointer mix
// drives overhead (Figures 1, 2), and the relative cost of the two
// metadata organizations and two checking modes.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"softbound/internal/attacks"
	"softbound/internal/baseline"
	"softbound/internal/bugbench"
	"softbound/internal/driver"
	"softbound/internal/meta"
	"softbound/internal/metrics"
	"softbound/internal/progs"
	"softbound/internal/vm"
)

// ------------------------------------------------------------- Table 1

// SchemeRow is one row of the qualitative comparison (Table 1).
type SchemeRow struct {
	Scheme       string
	NoSrcChange  bool
	Complete     bool // detects sub-field overflows
	MemLayout    bool // memory layout unchanged
	ArbCasts     bool
	DynLinkLib   bool
	Demonstrated string // which experiment in this repo demonstrates it
}

// Table1 returns the scheme comparison. SoftBound's row is backed by the
// executable demonstrations in this repository; the comparison rows for
// schemes this repo implements (the object-table baseline) are measured,
// and the literature rows reproduce the paper's summary.
func Table1() []SchemeRow {
	return []SchemeRow{
		{Scheme: "SafeC", NoSrcChange: true, Complete: true, MemLayout: false, ArbCasts: true, DynLinkLib: false,
			Demonstrated: "paper §2.2 (fat pointers change layout)"},
		{Scheme: "JKRLDA (object-table)", NoSrcChange: true, Complete: false, MemLayout: true, ArbCasts: true, DynLinkLib: true,
			Demonstrated: "baseline.ObjectTable misses the §2.1 sub-object overflow"},
		{Scheme: "CCured Safe/Seq", NoSrcChange: false, Complete: true, MemLayout: false, ArbCasts: false, DynLinkLib: false,
			Demonstrated: "paper §2.2"},
		{Scheme: "CCured Wild", NoSrcChange: true, Complete: true, MemLayout: false, ArbCasts: true, DynLinkLib: false,
			Demonstrated: "paper §3.4"},
		{Scheme: "MSCC", NoSrcChange: true, Complete: false, MemLayout: true, ArbCasts: false, DynLinkLib: true,
			Demonstrated: "paper §2.2"},
		{Scheme: "SoftBound", NoSrcChange: true, Complete: true, MemLayout: true, ArbCasts: true, DynLinkLib: true,
			Demonstrated: "driver tests: sub-object, wild casts, separate compilation"},
	}
}

// FormatTable1 renders Table 1.
func FormatTable1(rows []SchemeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: comparison of approaches\n")
	fmt.Fprintf(&b, "%-22s %-8s %-9s %-7s %-6s %-8s\n",
		"Scheme", "NoSrc", "Complete", "Layout", "Casts", "DynLink")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-8s %-9s %-7s %-6s %-8s\n",
			r.Scheme, yn(r.NoSrcChange), yn(r.Complete), yn(r.MemLayout),
			yn(r.ArbCasts), yn(r.DynLinkLib))
	}
	return b.String()
}

func yn(v bool) string {
	if v {
		return "Yes"
	}
	return "No"
}

// ------------------------------------------------------------- Table 3

// AttackResult is one Table 3 row.
type AttackResult struct {
	Attack attacks.Attack
	// Succeeded: the attack hijacked control when run unprotected.
	Succeeded bool
	// DetectedFull / DetectedStore: SoftBound stopped it.
	DetectedFull  bool
	DetectedStore bool
}

// Table3 runs the 18-attack Wilander suite under no checking, full
// checking, and store-only checking.
func Table3() ([]AttackResult, error) {
	var out []AttackResult
	for _, a := range attacks.Suite() {
		r := AttackResult{Attack: a}
		res, err := driver.RunSource(a.Source, driver.DefaultConfig(driver.ModeNone))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		r.Succeeded = res.ExitCode == 66 || strings.Contains(res.Output, "ATTACK SUCCESSFUL")

		res, err = driver.RunSource(a.Source, driver.DefaultConfig(driver.ModeFull))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		r.DetectedFull = res.Violation != nil

		res, err = driver.RunSource(a.Source, driver.DefaultConfig(driver.ModeStoreOnly))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		r.DetectedStore = res.Violation != nil
		out = append(out, r)
	}
	return out, nil
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []AttackResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: Wilander attack suite detection\n")
	fmt.Fprintf(&b, "%-34s %-9s %-9s %-6s %-6s\n",
		"Attack (technique/location)", "Target", "Exploits", "Full", "Store")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-34s %-9.9s %-9s %-6s %-6s\n",
			r.Attack.Name, r.Attack.Target, yn(r.Succeeded),
			yn(r.DetectedFull), yn(r.DetectedStore))
	}
	return b.String()
}

// ------------------------------------------------------------- Table 4

// BugResult is one Table 4 row.
type BugResult struct {
	Program  bugbench.Program
	Valgrind bool
	Mudflap  bool
	Store    bool
	Full     bool
}

// Table4 runs the BugBench suite under the two baseline tools and the
// two SoftBound modes.
func Table4() ([]BugResult, error) {
	var out []BugResult
	for _, p := range bugbench.Suite() {
		r := BugResult{Program: p}
		runTool := func(mode driver.Mode, ck vm.Checker) (bool, error) {
			cfg := driver.DefaultConfig(mode)
			cfg.Checker = ck
			res, err := driver.RunSource(p.Source, cfg)
			if err != nil {
				return false, fmt.Errorf("%s: %w", p.Name, err)
			}
			return res.Detected(), nil
		}
		var err error
		if r.Valgrind, err = runTool(driver.ModeNone, baseline.NewValgrind()); err != nil {
			return nil, err
		}
		if r.Mudflap, err = runTool(driver.ModeNone, baseline.NewMudflap()); err != nil {
			return nil, err
		}
		if r.Store, err = runTool(driver.ModeStoreOnly, nil); err != nil {
			return nil, err
		}
		if r.Full, err = runTool(driver.ModeFull, nil); err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []BugResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: BugBench detection efficacy\n")
	fmt.Fprintf(&b, "%-12s %-9s %-8s %-6s %-5s\n", "Benchmark", "Valgrind", "MudFlap", "Store", "Full")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-9s %-8s %-6s %-5s\n",
			r.Program.Name, yn(r.Valgrind), yn(r.Mudflap), yn(r.Store), yn(r.Full))
	}
	return b.String()
}

// ------------------------------------------------------------- Figure 1

// MixResult is one Figure 1 bar.
type MixResult struct {
	Bench   progs.Benchmark
	PtrFrac float64 // fraction of memory ops that move pointers
	Stats   *metrics.Stats
}

// Figure1 measures the pointer-memory-operation frequency for all 15
// benchmarks (uninstrumented, post-optimization), the quantity Figure 1
// plots.
func Figure1(scale int) ([]MixResult, error) {
	var out []MixResult
	for _, b := range progs.All() {
		res, err := driver.RunSource(b.Source(scale), driver.DefaultConfig(driver.ModeNone))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		if res.Err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, res.Err)
		}
		out = append(out, MixResult{Bench: b, PtrFrac: res.Stats.PtrMemFrac(), Stats: res.Stats})
	}
	// The paper presents benchmarks sorted by this fraction.
	sort.SliceStable(out, func(i, j int) bool { return out[i].PtrFrac < out[j].PtrFrac })
	return out, nil
}

// FormatFigure1 renders Figure 1 as a text bar chart.
func FormatFigure1(rows []MixResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: frequency of pointer memory operations\n")
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.PtrFrac*60))
		fmt.Fprintf(&b, "%-11s %5.1f%% |%s\n", r.Bench.Name, 100*r.PtrFrac, bar)
	}
	return b.String()
}

// ------------------------------------------------------------- Figure 2

// OverheadConfig is one bar group member of Figure 2.
type OverheadConfig struct {
	Name string
	Mode driver.Mode
	Meta meta.Kind
}

// Figure2Configs returns the four configurations of Figure 2, enumerated
// from the metadata scheme registry: every registered backend under both
// checking modes.
func Figure2Configs() []OverheadConfig {
	return MatrixConfigs(meta.Schemes(), []driver.Mode{driver.ModeFull, driver.ModeStoreOnly})
}

// MatrixConfigs expands schemes × modes into instrumentation configs with
// the paper's display names ("HashTable-Complete", ...). The benchmark
// harness and Figure 2 share this enumeration, so a newly registered
// metadata backend shows up in both without further wiring.
func MatrixConfigs(schemes []meta.Scheme, modes []driver.Mode) []OverheadConfig {
	var out []OverheadConfig
	for _, m := range modes {
		if m == driver.ModeNone {
			continue
		}
		for _, s := range schemes {
			out = append(out, OverheadConfig{
				Name: schemeDisplay(s.Name) + "-" + modeDisplay(m),
				Mode: m,
				Meta: s.Kind,
			})
		}
	}
	return out
}

func schemeDisplay(name string) string {
	switch name {
	case "hashtable":
		return "HashTable"
	case "shadowspace":
		return "ShadowSpace"
	}
	return name
}

func modeDisplay(m driver.Mode) string {
	if m == driver.ModeStoreOnly {
		return "Stores"
	}
	return "Complete"
}

// OverheadResult is one benchmark's Figure 2 bar group.
type OverheadResult struct {
	Bench    progs.Benchmark
	PtrFrac  float64
	Baseline *metrics.Stats
	// Overheads maps config name to fractional overhead in simulated
	// instructions (0.79 = 79%).
	Overheads map[string]float64
	// WallOverheads maps config name to wall-clock overhead.
	WallOverheads map[string]float64
}

// Figure2 measures runtime overhead for every benchmark under the four
// instrumentation configurations, against the uninstrumented baseline.
func Figure2(scale int) ([]OverheadResult, error) {
	mix, err := Figure1(scale)
	if err != nil {
		return nil, err
	}
	var out []OverheadResult
	for _, m := range mix {
		b := m.Bench
		src := b.Source(scale)

		baseStart := time.Now()
		base, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeNone))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		if base.Err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, base.Err)
		}
		baseWall := time.Since(baseStart)

		r := OverheadResult{
			Bench: b, PtrFrac: m.PtrFrac, Baseline: base.Stats,
			Overheads:     make(map[string]float64),
			WallOverheads: make(map[string]float64),
		}
		for _, cfg := range Figure2Configs() {
			c := driver.DefaultConfig(cfg.Mode)
			c.Meta = cfg.Meta
			start := time.Now()
			res, err := driver.RunSource(src, c)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", b.Name, cfg.Name, err)
			}
			if res.Err != nil {
				return nil, fmt.Errorf("%s/%s: %w", b.Name, cfg.Name, res.Err)
			}
			r.Overheads[cfg.Name] = res.Stats.Overhead(base.Stats)
			r.WallOverheads[cfg.Name] = float64(time.Since(start))/float64(baseWall) - 1
		}
		out = append(out, r)
	}
	return out, nil
}

// Averages computes the per-config mean overhead across benchmarks.
func Averages(rows []OverheadResult) map[string]float64 {
	avg := make(map[string]float64)
	for _, r := range rows {
		for k, v := range r.Overheads {
			avg[k] += v
		}
	}
	for k := range avg {
		avg[k] /= float64(len(rows))
	}
	return avg
}

// FormatFigure2 renders Figure 2 as a table (benchmarks in Figure 1
// order, four config columns, average row).
func FormatFigure2(rows []OverheadResult) string {
	var b strings.Builder
	configs := Figure2Configs()
	fmt.Fprintf(&b, "Figure 2: runtime overhead (%% over uninstrumented, simulated instructions)\n")
	fmt.Fprintf(&b, "%-11s %6s", "bench", "ptr%")
	for _, c := range configs {
		fmt.Fprintf(&b, " %21s", c.Name)
	}
	fmt.Fprintf(&b, "\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %5.1f%%", r.Bench.Name, 100*r.PtrFrac)
		for _, c := range configs {
			fmt.Fprintf(&b, " %20.1f%%", 100*r.Overheads[c.Name])
		}
		fmt.Fprintf(&b, "\n")
	}
	avg := Averages(rows)
	fmt.Fprintf(&b, "%-11s %6s", "average", "")
	for _, c := range configs {
		fmt.Fprintf(&b, " %20.1f%%", 100*avg[c.Name])
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}
