// Package core implements the SoftBound transformation — the paper's
// primary contribution (§3). It rewrites each function of an IR module to:
//
//  1. give every pointer-holding virtual register companion base and bound
//     registers and propagate them through pointer creation, assignment,
//     casts, and address arithmetic (§3.1);
//  2. insert a spatial check before every load and store through a
//     pointer (full mode) or before stores only (store-only mode);
//  3. insert disjoint-metadata accesses (metaload/metastore) at every load
//     and store OF a pointer value (§3.2) — the only places metadata
//     touches memory;
//  4. extend function signatures with base/bound parameters for pointer
//     arguments and metadata for pointer returns, renaming the function
//     with an _sb_ prefix marker (§3.3);
//  5. shrink bounds when a pointer to a struct field is created (§3.1),
//     which is what catches the sub-object overflows that object-table
//     approaches miss (§2.1);
//  6. clear the metadata of pointer-bearing stack slots in the function
//     epilogue, and seed global metadata, per §5.2.
//
// The transformation is strictly intra-procedural: each function is
// rewritten using only its own body plus the sizes of named globals,
// which is what gives SoftBound separate compilation (§5.2). Callers and
// callees agree purely through the name-based calling convention.
package core

import (
	"softbound/internal/ir"
)

// Mode selects the checking mode.
type Mode int

// Checking modes (paper §1).
const (
	// ModeFull checks every dereference: complete spatial safety.
	ModeFull Mode = iota
	// ModeStoreOnly propagates all metadata but checks only writes:
	// the low-overhead mode that still stops security vulnerabilities.
	ModeStoreOnly
)

func (m Mode) String() string {
	if m == ModeFull {
		return "full"
	}
	return "store-only"
}

// GlobalSizer resolves a global's object size (for bounds of address-of-
// global constants). With separate compilation this is satisfied by the
// extern declaration's type, so the pass never needs other units' code.
type GlobalSizer func(name string) (int64, bool)

// Options configures the transformation.
type Options struct {
	Mode Mode
	// ShrinkBounds enables sub-object bounds narrowing at field-address
	// creation (on by default in the paper; exposed for the ablation).
	ShrinkBounds bool
	// ClearOnReturn emits metadata clearing for pointer-bearing stack
	// slots in function epilogues (paper §5.2).
	ClearOnReturn bool
	// CheckFuncPtrCalls inserts the base==ptr==bound encoding check at
	// indirect call sites (paper §5.2 "function pointers").
	CheckFuncPtrCalls bool
	// CheckArith additionally checks pointers at *arithmetic* time (the
	// design SoftBound §3.1 argues against: C legally creates
	// out-of-bounds pointers, e.g. the one-past-the-end idiom, and an
	// arithmetic-time check both costs more and raises false positives
	// on downward iteration). Exposed only for the ablation benchmark.
	CheckArith bool
	// Temporal lowers CETS lock-and-key metadata alongside the spatial
	// bounds: every pointer register gains key/lock companions, pointer
	// loads/stores move four metadata words, dereference checks carry the
	// key/lock operands (verified before the spatial compare), and
	// functions get a frame lock for their allocas. Off by default; the
	// driver enables it when a -cets metadata scheme is selected.
	Temporal bool
}

// DefaultOptions returns the paper's default configuration for a mode.
func DefaultOptions(m Mode) Options {
	return Options{
		Mode:              m,
		ShrinkBounds:      true,
		ClearOnReturn:     true,
		CheckFuncPtrCalls: m == ModeFull,
	}
}

// Transform instruments every function in the module in place. sizes must
// resolve at least every global the module references; the module's own
// globals are consulted first.
func Transform(m *ir.Module, sizes GlobalSizer, opts Options) {
	resolver := func(name string) (int64, bool) {
		if g := m.GlobalByName(name); g != nil {
			return g.Size, true
		}
		if sizes != nil {
			return sizes(name)
		}
		return 0, false
	}
	for _, f := range m.Funcs {
		if !f.Transformed {
			transformFunc(f, resolver, opts)
		}
	}
}

// xform carries per-function instrumentation state.
type xform struct {
	f     *ir.Func
	opts  Options
	sizes GlobalSizer

	// base/bound shadow registers for each pointer register.
	base  map[ir.Reg]ir.Reg
	bound map[ir.Reg]ir.Reg

	// key/lock shadow registers (temporal lowering only).
	key  map[ir.Reg]ir.Reg
	lock map[ir.Reg]ir.Reg

	// allocaRegs maps frame offsets to the register holding the slot
	// address (for epilogue metadata clearing).
	allocaRegs map[int64]ir.Reg

	out []ir.Inst
}

func transformFunc(f *ir.Func, sizes GlobalSizer, opts Options) {
	x := &xform{
		f:          f,
		opts:       opts,
		sizes:      sizes,
		base:       make(map[ir.Reg]ir.Reg),
		bound:      make(map[ir.Reg]ir.Reg),
		allocaRegs: make(map[int64]ir.Reg),
	}
	if opts.Temporal {
		x.key = make(map[ir.Reg]ir.Reg)
		x.lock = make(map[ir.Reg]ir.Reg)
	}

	// Extend the signature: metadata parameters for pointer parameters
	// (paper §3.3); under temporal lowering each pointer parameter
	// carries four metadata registers (base, bound, key, lock — the
	// softboundcets convention). The function is renamed with the _sb_
	// marker.
	for i := 0; i < f.OrigParams; i++ {
		if !f.Params[i].IsPtr {
			continue
		}
		pr := f.ParamRegs[i]
		br := f.NewReg(ir.ClassPtr)
		er := f.NewReg(ir.ClassPtr)
		f.Params = append(f.Params,
			ir.Param{Name: f.Params[i].Name + ".base", Class: ir.ClassPtr},
			ir.Param{Name: f.Params[i].Name + ".bound", Class: ir.ClassPtr},
		)
		f.ParamRegs = append(f.ParamRegs, br, er)
		x.base[pr] = br
		x.bound[pr] = er
		if opts.Temporal {
			kr := f.NewReg(ir.ClassInt)
			lr := f.NewReg(ir.ClassInt)
			f.Params = append(f.Params,
				ir.Param{Name: f.Params[i].Name + ".key", Class: ir.ClassInt},
				ir.Param{Name: f.Params[i].Name + ".lock", Class: ir.ClassInt},
			)
			f.ParamRegs = append(f.ParamRegs, kr, lr)
			x.key[pr] = kr
			x.lock[pr] = lr
		}
	}
	f.Transformed = true
	f.SBName = "_sb_" + f.Name
	if opts.Temporal {
		// The VM issues a frame lock on entry and seeds its (key, lock)
		// into these registers; alloca'd pointers inherit them, so every
		// retained pointer into the frame dies with the frame.
		f.Temporal = true
		f.FrameKeyReg = f.NewReg(ir.ClassInt)
		f.FrameLockReg = f.NewReg(ir.ClassInt)
	}

	// Pre-scan for alloca address registers (needed by epilogue clears
	// that may precede the textual alloca in block order — allocas all
	// live in the entry block in practice).
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Kind == ir.KAlloca {
				x.allocaRegs[in.C.Int] = in.Dst
			}
		}
	}

	for _, b := range f.Blocks {
		x.out = x.out[:0]
		for i := range b.Insts {
			x.rewrite(&b.Insts[i])
		}
		b.Insts = append([]ir.Inst(nil), x.out...)
	}
}

// ensure returns the shadow base/bound registers for a pointer register.
func (x *xform) ensure(r ir.Reg) (ir.Reg, ir.Reg) {
	b, ok := x.base[r]
	if !ok {
		b = x.f.NewReg(ir.ClassPtr)
		x.base[r] = b
	}
	e, ok := x.bound[r]
	if !ok {
		e = x.f.NewReg(ir.ClassPtr)
		x.bound[r] = e
	}
	return b, e
}

// ensureT returns the shadow key/lock registers for a pointer register
// (temporal lowering only).
func (x *xform) ensureT(r ir.Reg) (ir.Reg, ir.Reg) {
	k, ok := x.key[r]
	if !ok {
		k = x.f.NewReg(ir.ClassInt)
		x.key[r] = k
	}
	l, ok := x.lock[r]
	if !ok {
		l = x.f.NewReg(ir.ClassInt)
		x.lock[r] = l
	}
	return k, l
}

// metaOf returns base/bound values describing the metadata of a pointer
// operand (paper §3.1 "creating pointers"):
//
//   - a register: its shadow registers;
//   - a global address: [global, global+size) — compile-time constants;
//   - a function address: base == bound == ptr (the function-pointer
//     encoding of §5.2);
//   - an integer constant (e.g. NULL or a cast integer): NULL bounds.
func (x *xform) metaOf(v ir.Value) (ir.Value, ir.Value) {
	switch v.Kind {
	case ir.VReg:
		b, e := x.ensure(v.Reg)
		return ir.R(b), ir.R(e)
	case ir.VGlobal:
		if size, ok := x.sizes(v.Sym); ok {
			return ir.GV(v.Sym, 0), ir.GV(v.Sym, size)
		}
		return ir.CI(0), ir.CI(0)
	case ir.VFunc:
		return v, v
	default:
		return ir.CI(0), ir.CI(0)
	}
}

// metaOfT returns key/lock values describing the temporal metadata of a
// pointer operand: shadow registers for registers; the never-revoked
// global lock (key 1, lock 1) for globals and functions; zero — which
// fails the temporal check, fail-closed — for integer-manufactured
// pointers. Only meaningful under Options.Temporal.
func (x *xform) metaOfT(v ir.Value) (ir.Value, ir.Value) {
	switch v.Kind {
	case ir.VReg:
		k, l := x.ensureT(v.Reg)
		return ir.R(k), ir.R(l)
	case ir.VGlobal:
		if _, ok := x.sizes(v.Sym); ok {
			return ir.CI(1), ir.CI(1)
		}
		return ir.CI(0), ir.CI(0)
	case ir.VFunc:
		return ir.CI(1), ir.CI(1)
	default:
		return ir.CI(0), ir.CI(0)
	}
}

func (x *xform) emit(in ir.Inst) { x.out = append(x.out, in) }

// setMeta emits assignments of the shadow registers for dst; under
// temporal lowering the key/lock companions are assigned from the same
// source operand's temporal metadata.
func (x *xform) setMeta(dst ir.Reg, base, bound ir.Value) {
	b, e := x.ensure(dst)
	x.emit(ir.Inst{Kind: ir.KMov, Dst: b, A: base})
	x.emit(ir.Inst{Kind: ir.KMov, Dst: e, A: bound})
}

// setMetaT emits assignments of the temporal shadow registers for dst.
func (x *xform) setMetaT(dst ir.Reg, key, lock ir.Value) {
	k, l := x.ensureT(dst)
	x.emit(ir.Inst{Kind: ir.KMov, Dst: k, A: key})
	x.emit(ir.Inst{Kind: ir.KMov, Dst: l, A: lock})
}

// isPtrReg reports whether r holds pointers.
func (x *xform) isPtrReg(r ir.Reg) bool {
	return int(r) < len(x.f.RegClass) && x.f.RegClass[r] == ir.ClassPtr
}

// emitCheck inserts a spatial dereference check for an access of size
// bytes through addr (paper §3.1 check()). Accesses through compile-time
// global addresses are checked *statically*: an in-bounds constant access
// carries no runtime check (matching the paper's treatment of scalar
// locals and globals), while a constant out-of-bounds access gets a check
// that is guaranteed to fire.
func (x *xform) emitCheck(addr ir.Value, size int64, kind ir.CheckKind) {
	if x.opts.Mode == ModeStoreOnly && kind == ir.CheckLoad {
		return
	}
	switch addr.Kind {
	case ir.VReg:
		b, e := x.metaOf(addr)
		chk := ir.Inst{Kind: ir.KCheck, A: addr, Base: b, Bound: e,
			AccessSize: size, CheckK: kind}
		if x.opts.Temporal {
			// The lock-and-key check runs BEFORE the spatial compare: a
			// revoked allocation traps as temporal-violation even when
			// the stale bounds still bracket the access.
			chk.TMeta = true
			chk.Key, chk.Lock = x.metaOfT(addr)
		}
		x.emit(chk)
	case ir.VGlobal:
		objSize, ok := x.sizes(addr.Sym)
		if ok && addr.Off >= 0 && addr.Off+size <= objSize {
			return // statically in bounds
		}
		x.emit(ir.Inst{Kind: ir.KCheck, A: addr,
			Base: ir.GV(addr.Sym, 0), Bound: ir.GV(addr.Sym, objSize),
			AccessSize: size, CheckK: kind})
	}
}

// rewrite instruments one instruction.
func (x *xform) rewrite(in *ir.Inst) {
	switch in.Kind {
	case ir.KConst, ir.KMov:
		x.emit(*in)
		if x.isPtrReg(in.Dst) {
			b, e := x.metaOf(in.A)
			x.setMeta(in.Dst, b, e)
			if x.opts.Temporal {
				k, l := x.metaOfT(in.A)
				x.setMetaT(in.Dst, k, l)
			}
		}

	case ir.KConv:
		x.emit(*in)
		if in.Mem == ir.MemPtr && x.isPtrReg(in.Dst) {
			// Pointer manufactured from an integer: NULL bounds
			// (safe default, paper §5.2). setbound() can widen later.
			x.setMeta(in.Dst, ir.CI(0), ir.CI(0))
			if x.opts.Temporal {
				x.setMetaT(in.Dst, ir.CI(0), ir.CI(0))
			}
		}

	case ir.KAlloca:
		x.emit(*in)
		// base = ptr; bound = ptr + size (paper §3.1).
		b, e := x.ensure(in.Dst)
		x.emit(ir.Inst{Kind: ir.KMov, Dst: b, A: ir.R(in.Dst)})
		x.emit(ir.Inst{Kind: ir.KGEP, Dst: e, A: ir.R(in.Dst), B: ir.CI(0),
			Size: 1, C: ir.CI(in.Size)})
		if x.opts.Temporal {
			// Stack storage dies with the frame: the slot's temporal
			// identity is the frame lock the VM issued on entry.
			x.setMetaT(in.Dst, ir.R(x.f.FrameKeyReg), ir.R(x.f.FrameLockReg))
		}

	case ir.KGEP:
		x.emit(*in)
		if !x.isPtrReg(in.Dst) {
			break
		}
		if in.Shrink && x.opts.ShrinkBounds {
			// Creating a pointer to a struct field narrows the
			// metadata to the field (paper §3.1) — by INTERSECTION with
			// the incoming bounds, never replacement. Replacing would
			// make the field-deref check the tautology ptr ∈
			// [ptr, ptr+len), so a forged pointer or corrupted metadata
			// entry would pass every field access: exactly the silent
			// divergence the fault-injection suite exists to catch.
			// Branch-free select: max(sb,d) = d + (sb>d)*(sb-d), and
			// symmetrically min(se,fe) = fe + (se<fe)*(se-fe).
			sb, se := x.metaOf(in.A)
			b, e := x.ensure(in.Dst)
			d := ir.R(in.Dst)
			fe := x.f.NewReg(ir.ClassPtr)
			x.emit(ir.Inst{Kind: ir.KGEP, Dst: fe, A: d,
				B: ir.CI(0), Size: 1, C: ir.CI(in.ShrinkLen)})
			cb := x.f.NewReg(ir.ClassInt)
			db := x.f.NewReg(ir.ClassPtr)
			mb := x.f.NewReg(ir.ClassPtr)
			x.emit(ir.Inst{Kind: ir.KCmp, Dst: cb, Pred: ir.PredGT, A: sb, B: d})
			x.emit(ir.Inst{Kind: ir.KBin, Op: ir.OpSub, Dst: db, A: sb, B: d})
			x.emit(ir.Inst{Kind: ir.KBin, Op: ir.OpMul, Dst: mb, A: ir.R(cb), B: ir.R(db)})
			x.emit(ir.Inst{Kind: ir.KBin, Op: ir.OpAdd, Dst: b, A: d, B: ir.R(mb)})
			ce := x.f.NewReg(ir.ClassInt)
			de := x.f.NewReg(ir.ClassPtr)
			me := x.f.NewReg(ir.ClassPtr)
			x.emit(ir.Inst{Kind: ir.KCmp, Dst: ce, Pred: ir.PredLT, A: se, B: ir.R(fe)})
			x.emit(ir.Inst{Kind: ir.KBin, Op: ir.OpSub, Dst: de, A: se, B: ir.R(fe)})
			x.emit(ir.Inst{Kind: ir.KBin, Op: ir.OpMul, Dst: me, A: ir.R(ce), B: ir.R(de)})
			x.emit(ir.Inst{Kind: ir.KBin, Op: ir.OpAdd, Dst: e, A: ir.R(fe), B: ir.R(me)})
			if x.opts.Temporal {
				// Narrowing is spatial-only; the field keeps the
				// allocation's temporal identity unchanged.
				k, l := x.metaOfT(in.A)
				x.setMetaT(in.Dst, k, l)
			}
			break
		}
		// Pointer arithmetic: result inherits the source bounds; no
		// check happens until dereference (§3.1).
		b, e := x.metaOf(in.A)
		x.setMeta(in.Dst, b, e)
		if x.opts.Temporal {
			k, l := x.metaOfT(in.A)
			x.setMetaT(in.Dst, k, l)
		}
		if x.opts.CheckArith && x.opts.Mode == ModeFull {
			// Ablation: arithmetic-time check, permitting only
			// [base, bound] (one-past-the-end allowed, size 0).
			x.emit(ir.Inst{Kind: ir.KCheck, A: ir.R(in.Dst), Base: b,
				Bound: e, AccessSize: 0, CheckK: ir.CheckLoad})
		}

	case ir.KLoad:
		x.emitCheck(in.A, in.Mem.Size(), ir.CheckLoad)
		x.emit(*in)
		if in.Mem == ir.MemPtr && x.isPtrReg(in.Dst) {
			// Loading a pointer pulls its metadata from the disjoint
			// table (paper §3.2).
			b, e := x.ensure(in.Dst)
			ml := ir.Inst{Kind: ir.KMetaLoad, A: in.A, DstBaseR: b, DstBndR: e}
			if x.opts.Temporal {
				ml.TMeta = true
				ml.DstKeyR, ml.DstLockR = x.ensureT(in.Dst)
			}
			x.emit(ml)
		}

	case ir.KStore:
		x.emitCheck(in.A, in.Mem.Size(), ir.CheckStore)
		x.emit(*in)
		if in.Mem == ir.MemPtr {
			// Storing a pointer records its metadata (paper §3.2).
			b, e := x.metaOf(in.B)
			ms := ir.Inst{Kind: ir.KMetaStore, A: in.A, SrcBase: b, SrcBound: e}
			if x.opts.Temporal {
				ms.TMeta = true
				ms.SrcKey, ms.SrcLock = x.metaOfT(in.B)
			}
			x.emit(ms)
		}

	case ir.KCall:
		x.rewriteCall(in)

	case ir.KRet:
		if x.opts.ClearOnReturn {
			// Paper §5.2 "memory reuse and stale metadata": zero the
			// metadata of pointer-bearing stack slots before return.
			for _, slot := range x.f.ClearSlots {
				if r, ok := x.allocaRegs[slot.Offset]; ok {
					x.emit(ir.Inst{Kind: ir.KMetaClear, A: ir.R(r),
						MemSize: ir.CI(slot.Size)})
				}
			}
		}
		out := *in
		if out.HasVal && x.f.RetIsPtr {
			b, e := x.metaOf(out.A)
			out.RetBase, out.RetBound = b, e
			out.RetMetaValid = true
			if x.opts.Temporal {
				out.TMeta = true
				out.RetKey, out.RetLock = x.metaOfT(out.A)
			}
		}
		x.emit(out)

	default:
		x.emit(*in)
	}
}

// rewriteCall fills shadow-stack slots for pointer arguments, inserts
// the function-pointer check for indirect calls, and receives metadata
// for pointer-returning calls (paper §3.3). Slots are positional (one
// per pointer argument, keyed by argument index), so the runtime can
// hand them to the *dynamic* callee by its own parameter layout even
// when an indirect call site's static signature disagrees.
func (x *xform) rewriteCall(in *ir.Inst) {
	out := *in
	if out.Callee.Kind == ir.VReg && x.opts.CheckFuncPtrCalls {
		b, e := x.metaOf(out.Callee)
		x.emit(ir.Inst{Kind: ir.KCheck, A: out.Callee, Base: b, Bound: e,
			AccessSize: 0, CheckK: ir.CheckCall})
	}
	out.Shadow = nil
	for i, a := range out.Args {
		if x.valueIsPtr(a) {
			b, e := x.metaOf(a)
			sl := ir.ShadowSlot{Arg: i, Base: b, Bound: e}
			if x.opts.Temporal {
				sl.Temporal = true
				sl.Key, sl.Lock = x.metaOfT(a)
			}
			out.Shadow = append(out.Shadow, sl)
		}
	}
	if out.Dst != ir.NoReg && x.isPtrReg(out.Dst) {
		b, e := x.ensure(out.Dst)
		out.DstBase, out.DstBound = b, e
		if x.opts.Temporal {
			out.DstKey, out.DstLock = x.ensureT(out.Dst)
		}
	} else {
		out.DstBase, out.DstBound = ir.NoReg, ir.NoReg
	}
	if x.opts.Temporal {
		// TMeta on the call gates the wider shadow window (key/lock ride
		// in every slot) and the temporal return registers.
		out.TMeta = true
	}
	x.emit(out)
}

// valueIsPtr reports whether the operand denotes a pointer value.
func (x *xform) valueIsPtr(v ir.Value) bool {
	switch v.Kind {
	case ir.VReg:
		return x.isPtrReg(v.Reg)
	case ir.VGlobal, ir.VFunc:
		return true
	}
	return false
}
