package core

import (
	"strings"
	"testing"

	"softbound/internal/cparser"
	"softbound/internal/ir"
	"softbound/internal/irgen"
	"softbound/internal/sema"
)

// lower compiles a source into an un-instrumented module.
func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	unit, err := cparser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := sema.Analyze(unit)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := irgen.Generate(info)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func countInsts(f *ir.Func, k ir.InstKind) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Kind == k {
				n++
			}
		}
	}
	return n
}

func countChecks(f *ir.Func, kind ir.CheckKind) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Kind == ir.KCheck && b.Insts[i].CheckK == kind {
				n++
			}
		}
	}
	return n
}

const ptrProg = `
int deref(int* p) { return *p; }
void store(int* p, int v) { *p = v; }
int* bump(int* p) { return p + 1; }
`

func TestSignatureExtension(t *testing.T) {
	mod := lower(t, ptrProg)
	Transform(mod, nil, DefaultOptions(ModeFull))
	f := mod.Lookup("deref")
	if !f.Transformed || f.SBName != "_sb_deref" {
		t.Fatalf("not marked transformed: %+v", f)
	}
	// One pointer param gains two metadata params (paper §3.3).
	if len(f.Params) != 3 {
		t.Fatalf("params = %d, want 3", len(f.Params))
	}
	if len(f.ParamRegs) != 3 || f.OrigParams != 1 {
		t.Fatalf("ParamRegs=%v OrigParams=%d", f.ParamRegs, f.OrigParams)
	}
	// Pointer-returning function carries return metadata.
	bump := mod.Lookup("bump")
	found := false
	for _, b := range bump.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Kind == ir.KRet && b.Insts[i].RetMetaValid {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("bump's return carries no metadata")
	}
}

func TestFullModeChecksLoadsAndStores(t *testing.T) {
	mod := lower(t, ptrProg)
	Transform(mod, nil, DefaultOptions(ModeFull))
	if n := countChecks(mod.Lookup("deref"), ir.CheckLoad); n != 1 {
		t.Errorf("deref load checks = %d, want 1", n)
	}
	if n := countChecks(mod.Lookup("store"), ir.CheckStore); n != 1 {
		t.Errorf("store store-checks = %d, want 1", n)
	}
}

func TestStoreOnlyModeSkipsLoadChecks(t *testing.T) {
	mod := lower(t, ptrProg)
	Transform(mod, nil, DefaultOptions(ModeStoreOnly))
	if n := countChecks(mod.Lookup("deref"), ir.CheckLoad); n != 0 {
		t.Errorf("store-only emitted %d load checks", n)
	}
	if n := countChecks(mod.Lookup("store"), ir.CheckStore); n != 1 {
		t.Errorf("store-only store-checks = %d, want 1", n)
	}
	// Metadata still propagates in store-only mode ("fully propagates
	// all metadata", paper §1): pointer loads still metaload.
	mod2 := lower(t, `int* chase(int** pp) { return *pp; }`)
	Transform(mod2, nil, DefaultOptions(ModeStoreOnly))
	if n := countInsts(mod2.Lookup("chase"), ir.KMetaLoad); n != 1 {
		t.Errorf("store-only metaloads = %d, want 1", n)
	}
}

func TestMetadataAccessesOnlyForPointerMemOps(t *testing.T) {
	// Loads/stores of non-pointer values get no metadata ops (§3.2:
	// "Only load and stores of pointers are annotated").
	mod := lower(t, `
long sum(long* a, int n) {
    long s = 0;
    int i;
    for (i = 0; i < n; i++)
        s += a[i];
    return s;
}`)
	Transform(mod, nil, DefaultOptions(ModeFull))
	f := mod.Lookup("sum")
	if n := countInsts(f, ir.KMetaLoad); n != 0 {
		t.Errorf("scalar loads produced %d metaloads", n)
	}
	if n := countInsts(f, ir.KMetaStore); n != 0 {
		t.Errorf("scalar stores produced %d metastores", n)
	}
}

func TestPointerStoreEmitsMetaStore(t *testing.T) {
	mod := lower(t, `void put(int** pp, int* p) { *pp = p; }`)
	Transform(mod, nil, DefaultOptions(ModeFull))
	f := mod.Lookup("put")
	if n := countInsts(f, ir.KMetaStore); n != 1 {
		t.Errorf("metastores = %d, want 1", n)
	}
}

func TestShrinkOnFieldGEP(t *testing.T) {
	src := `
struct s { char str[8]; long tail; };
char* fieldptr(struct s* p) { return p->str; }
`
	mod := lower(t, src)
	Transform(mod, nil, DefaultOptions(ModeFull))
	f := mod.Lookup("fieldptr")
	// With shrinking, the field GEP's metadata is derived from the GEP
	// result (base := dst), not inherited: look for a KMov of the GEP
	// dst into a shadow register right after a shrink GEP.
	sawShrink := false
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Kind == ir.KGEP && b.Insts[i].Shrink {
				sawShrink = true
				if b.Insts[i].ShrinkLen != 8 {
					t.Errorf("shrink len = %d, want 8", b.Insts[i].ShrinkLen)
				}
			}
		}
	}
	if !sawShrink {
		t.Fatal("no shrink-marked GEP for the field address")
	}

	// With shrinking disabled (ablation), metadata is inherited.
	mod2 := lower(t, src)
	opts := DefaultOptions(ModeFull)
	opts.ShrinkBounds = false
	Transform(mod2, nil, opts)
	// Still compiles and instruments; the semantic difference is
	// covered end-to-end in the driver/bugbench tests.
}

func TestGlobalBoundsAreCompileTimeConstants(t *testing.T) {
	mod := lower(t, `
int garr[10];
int* gp(void) { return garr; }
`)
	sizer := func(name string) (int64, bool) { return 0, false }
	Transform(mod, sizer, DefaultOptions(ModeFull))
	f := mod.Lookup("gp")
	// The return metadata must reference @garr+0 and @garr+40.
	s := f.String()
	if !strings.Contains(s, "@garr") || !strings.Contains(s, "@garr+40") {
		t.Fatalf("global bounds missing:\n%s", s)
	}
}

func TestIndirectCallCheckFullOnly(t *testing.T) {
	src := `
typedef int (*fn)(int);
int call(fn f, int x) { return f(x); }
`
	mod := lower(t, src)
	Transform(mod, nil, DefaultOptions(ModeFull))
	if n := countChecks(mod.Lookup("call"), ir.CheckCall); n != 1 {
		t.Errorf("full mode call checks = %d, want 1", n)
	}
	mod2 := lower(t, src)
	Transform(mod2, nil, DefaultOptions(ModeStoreOnly))
	if n := countChecks(mod2.Lookup("call"), ir.CheckCall); n != 0 {
		t.Errorf("store-only call checks = %d, want 0", n)
	}
}

func TestCallSiteMetadataArgs(t *testing.T) {
	mod := lower(t, `
int callee(int* p);
int caller(int* p) { return callee(p); }
`)
	Transform(mod, nil, DefaultOptions(ModeFull))
	f := mod.Lookup("caller")
	found := false
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			if in.Kind == ir.KCall {
				if len(in.Shadow) == 1 && in.Shadow[0].Arg == 0 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("call site carries no metadata for its pointer argument")
	}
}

func TestIntToPointerGetsNullBounds(t *testing.T) {
	mod := lower(t, `int read_at(long a) { return *(int*)a; }`)
	Transform(mod, nil, DefaultOptions(ModeFull))
	f := mod.Lookup("read_at")
	// The conv to pointer must be followed by metadata zeroing: the
	// check's Base operand is a register fed by constants 0.
	s := f.String()
	if !strings.Contains(s, "conv") || !strings.Contains(s, "check.load") {
		t.Fatalf("missing conv/check:\n%s", s)
	}
}

func TestTransformIsIdempotent(t *testing.T) {
	mod := lower(t, ptrProg)
	Transform(mod, nil, DefaultOptions(ModeFull))
	before := mod.Lookup("deref").String()
	Transform(mod, nil, DefaultOptions(ModeFull)) // second run: no-op
	after := mod.Lookup("deref").String()
	if before != after {
		t.Fatal("double transformation changed the function")
	}
}
