package fabric

import (
	"context"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Backend lifecycle states, as reported in the router's /statz. The
// state machine, owned entirely by the backend's supervisor goroutine:
//
//	starting ──(addr file + /healthz ok)──▶ healthy
//	healthy ──(probe failure)──▶ suspect ──(probe ok)──▶ healthy
//	suspect ──(EjectAfter consecutive failures)──▶ restarting
//	healthy/suspect ──(process exit observed)──▶ restarting
//	restarting ──(backoff slept, respawn)──▶ starting
//	restarting ──(restart budget exhausted)──▶ failed
//	failed ──(FailedCooldown, fresh budget)──▶ starting
//	any ──(fabric Close)──▶ stopped
//
// healthy and suspect are ROUTABLE (a suspect backend still gets
// traffic until ejection — single blips shouldn't unbalance the ring);
// everything else is not.
const (
	StateStarting   = "starting"
	StateHealthy    = "healthy"
	StateSuspect    = "suspect"
	StateRestarting = "restarting"
	StateFailed     = "failed"
	StateStopped    = "stopped"
)

// BackendParams is what the fabric hands the Command constructor when
// (re)spawning a backend process.
type BackendParams struct {
	// Name is the backend's stable identity ("backend-0"): the
	// rendezvous key, constant across restarts.
	Name string
	// SpoolDir is this backend's private crash-bundle spool directory.
	SpoolDir string
	// AddrFile is the file the backend must write its bound listen
	// address to (sbserve -addr-file); the supervisor removes it before
	// each spawn and polls it to learn the new port.
	AddrFile string
	// Restarts is how many times this backend has been respawned before
	// this launch; sbserve surfaces it as /statz restarts_observed.
	Restarts uint64
}

// BackendStatus is one backend's row in the router /statz document.
type BackendStatus struct {
	Name          string `json:"name"`
	State         string `json:"state"`
	Addr          string `json:"addr,omitempty"`
	PID           int    `json:"pid,omitempty"`
	Restarts      uint64 `json:"restarts"`
	Inflight      int    `json:"inflight"`
	ProbeFailures int    `json:"probe_failures,omitempty"`
}

// backend is one supervised worker process. The supervisor goroutine
// owns the lifecycle (spawn/probe/eject/restart); the proxy path only
// reads routing state and bumps the failure counter on connection
// errors.
type backend struct {
	f        *Fabric
	name     string
	spoolDir string
	addrFile string
	sem      chan struct{} // in-flight bound

	mu          sync.Mutex
	state       string
	addr        string
	pid         int
	spawns      uint64
	consecFails int
	proc        *os.Process
}

func (b *backend) status() BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	restarts := uint64(0)
	if b.spawns > 0 {
		restarts = b.spawns - 1
	}
	return BackendStatus{
		Name:          b.name,
		State:         b.state,
		Addr:          b.addr,
		PID:           b.pid,
		Restarts:      restarts,
		Inflight:      len(b.sem),
		ProbeFailures: b.consecFails,
	}
}

// routable reports whether the proxy may send this backend traffic, and
// at which address.
func (b *backend) routable() (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if (b.state == StateHealthy || b.state == StateSuspect) && b.addr != "" {
		return b.addr, true
	}
	return "", false
}

// acquire takes an in-flight slot without blocking; the returned release
// must be called when the proxied request completes.
func (b *backend) acquire() (release func(), ok bool) {
	select {
	case b.sem <- struct{}{}:
		return func() { <-b.sem }, true
	default:
		return nil, false
	}
}

// noteConnFailure records a connection-level proxy failure against the
// probe counter, so a dead-but-not-yet-probed backend is ejected by the
// very next prober tick instead of EjectAfter ticks later.
func (b *backend) noteConnFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == StateHealthy || b.state == StateSuspect {
		b.consecFails++
		b.state = StateSuspect
	}
}

func (b *backend) setState(s string) {
	b.mu.Lock()
	b.state = s
	b.mu.Unlock()
}

func (b *backend) procRef() *os.Process {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.proc
}

// supervise is the backend's lifecycle loop: spawn, watch, and — when
// the process dies or is ejected — restart it under the retry policy's
// backoff schedule. A stint of at least HealthyReset healthy service
// resets the schedule (a weekly crash is not a crash loop); exhausting
// the schedule (MaxAttempts or the cumulative Budget) parks the backend
// in the failed state for FailedCooldown before trying again with a
// fresh budget — self-healing without ever hot-looping respawns.
func (b *backend) supervise(ctx context.Context) {
	defer b.f.wg.Done()
	sched := b.f.opts.Restart.Schedule()
	for {
		healthyFor := b.runOnce(ctx)
		if ctx.Err() != nil {
			b.setState(StateStopped)
			return
		}
		b.f.counters.Inc("fabric.backend_death")
		if healthyFor >= b.f.opts.HealthyReset {
			sched = b.f.opts.Restart.Schedule()
		}
		b.setState(StateRestarting)
		d, ok := sched.Next()
		if !ok {
			b.setState(StateFailed)
			b.f.counters.Inc("fabric.backend_failed")
			b.f.logf("fabric: %s restart budget exhausted; cooling down %v", b.name, b.f.opts.FailedCooldown)
			if !sleepCtx(ctx, b.f.opts.FailedCooldown) {
				b.setState(StateStopped)
				return
			}
			sched = b.f.opts.Restart.Schedule()
			continue
		}
		if !sleepCtx(ctx, d) {
			b.setState(StateStopped)
			return
		}
	}
}

// runOnce runs one process incarnation start to finish and returns how
// long it served healthily (0 if it never came up). On ctx cancellation
// the process is drained gracefully (SIGTERM, then SIGKILL after
// BackendDrainTimeout); on ejection or startup failure it is killed.
func (b *backend) runOnce(ctx context.Context) time.Duration {
	exited, err := b.spawn()
	if err != nil {
		b.f.counters.Inc("fabric.spawn_error")
		b.f.logf("fabric: %s spawn: %v", b.name, err)
		// Nothing to clean up; let the supervisor back off and retry,
		// unless we are shutting down.
		if ctx.Err() == nil {
			sleepCtx(ctx, b.f.opts.ProbeInterval)
		}
		return 0
	}
	var healthyFor time.Duration
	if b.awaitHealthy(ctx, exited) {
		start := time.Now()
		b.probeLoop(ctx, exited)
		healthyFor = time.Since(start)
	}
	if ctx.Err() != nil {
		b.gracefulStop(exited)
	} else {
		b.kill(exited)
	}
	return healthyFor
}

// spawn launches a fresh process incarnation and starts its reaper.
func (b *backend) spawn() (<-chan struct{}, error) {
	_ = os.Remove(b.addrFile) // a stale address must never route traffic
	b.mu.Lock()
	prior := b.spawns
	b.mu.Unlock()
	cmd := b.f.opts.Command(BackendParams{
		Name:     b.name,
		SpoolDir: b.spoolDir,
		AddrFile: b.addrFile,
		Restarts: prior,
	})
	if cmd.Stderr == nil {
		cmd.Stderr = b.f.backendOutput()
	}
	if cmd.Stdout == nil {
		cmd.Stdout = cmd.Stderr
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	exited := make(chan struct{})
	go func() { _ = cmd.Wait(); close(exited) }()
	b.mu.Lock()
	b.proc = cmd.Process
	b.pid = cmd.Process.Pid
	b.spawns++
	b.state = StateStarting
	b.addr = ""
	b.consecFails = 0
	b.mu.Unlock()
	b.f.logf("fabric: %s spawned pid=%d restarts=%d", b.name, cmd.Process.Pid, prior)
	return exited, nil
}

// awaitHealthy polls the addr file and then /healthz until the new
// incarnation is serving, the StartTimeout elapses, the process dies,
// or the fabric shuts down.
func (b *backend) awaitHealthy(ctx context.Context, exited <-chan struct{}) bool {
	deadline := time.Now().Add(b.f.opts.StartTimeout)
	poll := b.f.opts.ProbeInterval / 4
	if poll < 10*time.Millisecond {
		poll = 10 * time.Millisecond
	}
	for time.Now().Before(deadline) {
		select {
		case <-ctx.Done():
			return false
		case <-exited:
			b.f.logf("fabric: %s died during startup", b.name)
			return false
		case <-time.After(poll):
		}
		addr := b.currentAddr()
		if addr == "" {
			blob, err := os.ReadFile(b.addrFile)
			if err != nil {
				continue
			}
			addr = strings.TrimSpace(string(blob))
			if addr == "" {
				continue
			}
			b.mu.Lock()
			b.addr = addr
			b.mu.Unlock()
		}
		if b.probe() {
			b.mu.Lock()
			b.state = StateHealthy
			b.consecFails = 0
			b.mu.Unlock()
			b.f.counters.Inc("fabric.backend_up")
			b.f.logf("fabric: %s healthy at %s", b.name, addr)
			return true
		}
	}
	b.f.counters.Inc("fabric.start_timeout")
	b.f.logf("fabric: %s did not become healthy within %v", b.name, b.f.opts.StartTimeout)
	return false
}

func (b *backend) currentAddr() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.addr
}

// probeLoop watches a healthy incarnation: /healthz every ProbeInterval,
// ejection after EjectAfter consecutive failures (connection-level proxy
// failures count via noteConnFailure), immediate return when the
// process exit is reaped.
func (b *backend) probeLoop(ctx context.Context, exited <-chan struct{}) {
	ticker := time.NewTicker(b.f.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-exited:
			b.f.logf("fabric: %s pid=%d exited", b.name, b.pid)
			return
		case <-ticker.C:
		}
		if b.probe() {
			b.mu.Lock()
			b.consecFails = 0
			b.state = StateHealthy
			b.mu.Unlock()
			continue
		}
		b.f.counters.Inc("fabric.probe_fail")
		b.mu.Lock()
		b.consecFails++
		fails := b.consecFails
		b.state = StateSuspect
		b.mu.Unlock()
		if fails >= b.f.opts.EjectAfter {
			b.f.counters.Inc("fabric.ejected")
			b.f.logf("fabric: %s ejected after %d failed probes", b.name, fails)
			return
		}
	}
}

// probe is one /healthz round trip under ProbeTimeout.
func (b *backend) probe() bool {
	addr := b.currentAddr()
	if addr == "" {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), b.f.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := b.f.client.Do(req)
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// kill forcibly ends the incarnation (ejection path: the process is
// sick, SIGKILL and wait for the reaper so the next spawn can't race
// the addr file).
func (b *backend) kill(exited <-chan struct{}) {
	if p := b.procRef(); p != nil {
		_ = p.Kill()
	}
	select {
	case <-exited:
	case <-time.After(5 * time.Second):
		// SIGKILL cannot be blocked; this is only paranoia against a
		// wedged Wait.
	}
}

// gracefulStop ends the incarnation on fabric shutdown: SIGTERM so
// sbserve drains (readyz flips, admitted work finishes), escalating to
// SIGKILL after BackendDrainTimeout.
func (b *backend) gracefulStop(exited <-chan struct{}) {
	p := b.procRef()
	if p == nil {
		return
	}
	_ = p.Signal(syscall.SIGTERM)
	select {
	case <-exited:
	case <-time.After(b.f.opts.BackendDrainTimeout):
		b.f.logf("fabric: %s did not drain within %v; killing", b.name, b.f.opts.BackendDrainTimeout)
		_ = p.Kill()
		<-exited
	}
}

// sleepCtx sleeps d unless ctx ends first; reports whether the full
// sleep happened.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
