package fabric

import "hash/fnv"

// Rendezvous (highest-random-weight) hashing routes a program hash onto
// a backend: every (backend name, program hash) pair gets a score, and
// the request goes to the highest-scoring backend that is currently
// routable. The properties the fabric leans on:
//
//   - Stability: a program's ranking depends only on the backend NAMES,
//     which are stable across restarts (ports are not), so a backend
//     that dies and comes back resumes serving exactly its old keys —
//     its compile cache is warm for them and its breaker state is still
//     the right breaker state.
//   - Minimal disruption: removing one backend remaps only the keys it
//     owned; every other key keeps its primary, so a single crash never
//     reshuffles the whole fleet's cache/breaker locality.
//   - Built-in failover order: the cross-shard retry is simply "next
//     name in this key's ranking, excluding the failed one" — no
//     separate ring walk.

// rendezvousScore scores one (backend, program) pair. FNV-1a over
// "name\x00hash" plus a splitmix64 finalizer: FNV alone correlates
// scores of sibling names ("backend-0" vs "backend-1"), the avalanche
// step makes the per-key rankings effectively independent.
func rendezvousScore(backendName, programHash string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(backendName))
	h.Write([]byte{0})
	h.Write([]byte(programHash))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalization step (the same mixer the faults
// injector and retry jitter use).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rankNames orders backend names by descending rendezvous score for a
// program hash (ties broken by name for determinism).
func rankNames(names []string, programHash string) []string {
	type scored struct {
		name  string
		score uint64
	}
	ranked := make([]scored, 0, len(names))
	for _, n := range names {
		ranked = append(ranked, scored{n, rendezvousScore(n, programHash)})
	}
	// Insertion sort: N is the backend count (single digits).
	for i := 1; i < len(ranked); i++ {
		for j := i; j > 0; j-- {
			a, b := ranked[j-1], ranked[j]
			if b.score > a.score || (b.score == a.score && b.name < a.name) {
				ranked[j-1], ranked[j] = b, a
			} else {
				break
			}
		}
	}
	out := make([]string, len(ranked))
	for i, s := range ranked {
		out[i] = s.name
	}
	return out
}
