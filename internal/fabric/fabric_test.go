package fabric

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"testing"

	"softbound/internal/serve"
)

func hashOf(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

func TestRendezvousRankingProperties(t *testing.T) {
	names := []string{"backend-0", "backend-1", "backend-2"}
	const keys = 3000

	// Deterministic: the same key always ranks identically.
	for i := 0; i < 5; i++ {
		h := hashOf(fmt.Sprintf("prog-%d", i))
		a, b := rankNames(names, h), rankNames(names, h)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("ranking for %s not deterministic: %v vs %v", h, a, b)
			}
		}
	}

	// Balanced: each backend owns a reasonable share of primaries.
	primaries := map[string]int{}
	for i := 0; i < keys; i++ {
		h := hashOf(fmt.Sprintf("prog-%d", i))
		primaries[rankNames(names, h)[0]]++
	}
	for _, n := range names {
		if primaries[n] < keys/6 {
			t.Fatalf("rendezvous is unbalanced: %v", primaries)
		}
	}

	// Minimal disruption: removing backend-1 must remap ONLY its keys;
	// every other key keeps its primary (this is what keeps compile
	// caches warm and breaker state local through a single crash).
	reduced := []string{"backend-0", "backend-2"}
	for i := 0; i < keys; i++ {
		h := hashOf(fmt.Sprintf("prog-%d", i))
		before := rankNames(names, h)[0]
		after := rankNames(reduced, h)[0]
		if before != "backend-1" && after != before {
			t.Fatalf("key %s moved from %s to %s though its shard never died", h[:12], before, after)
		}
		if before == "backend-1" && after != rankNames(names, h)[1] {
			t.Fatalf("failover for %s went to %s, not the next-ranked backend", h[:12], after)
		}
	}
}

// newIdleFabric builds a fabric whose supervisors are never started:
// request validation and no-backend degradation must work without any
// live process.
func newIdleFabric(t *testing.T, opts Options) (*Fabric, *httptest.Server) {
	t.Helper()
	if opts.Command == nil {
		opts.Command = func(BackendParams) *exec.Cmd { return exec.Command("false") }
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		ts.Close()
		f.Close()
	})
	return f, ts
}

func postRaw(t *testing.T, url string, body []byte) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, blob
}

func TestRouterValidatesBeforeRouting(t *testing.T) {
	_, ts := newIdleFabric(t, Options{MaxBodyBytes: 4096})

	status, _, body := postRaw(t, ts.URL, []byte("{not json"))
	if status != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d (%s)", status, body)
	}
	var eb serve.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("bad JSON rejection unstructured: %s", body)
	}

	status, _, body = postRaw(t, ts.URL, []byte(`{"source":""}`))
	if status != http.StatusBadRequest {
		t.Fatalf("empty source: status %d (%s)", status, body)
	}

	huge := append([]byte(`{"source":"`), bytes.Repeat([]byte("x"), 32*1024)...)
	huge = append(huge, '"', '}')
	status, _, body = postRaw(t, ts.URL, huge)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d (%s)", status, body)
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("413 unstructured: %s", body)
	}

	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: status %d", resp.StatusCode)
	}
}

func TestNoBackendShedsWithRetryAfter(t *testing.T) {
	f, ts := newIdleFabric(t, Options{})
	status, hdr, body := postRaw(t, ts.URL, []byte(`{"source":"int main() { return 0; }"}`))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("no-backend request: status %d (%s)", status, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var eb serve.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.RetryAfterMillis == 0 {
		t.Fatalf("shed body unstructured: %s", body)
	}
	if f.Counters().Get("fabric.shed") == 0 || f.Counters().Get("fabric.no_backend") == 0 {
		t.Errorf("shed counters never moved: %v", f.Counters().Snapshot())
	}

	// readyz mirrors the no-backend state; healthz stays alive.
	resp, _ := http.Get(ts.URL + "/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz %d with zero routable backends, want 503", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/healthz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz %d, want 200", resp.StatusCode)
	}
}

func TestRouterDrainRejectsStructured(t *testing.T) {
	f, ts := newIdleFabric(t, Options{})
	f.BeginDrain()
	status, _, body := postRaw(t, ts.URL, []byte(`{"source":"int main() { return 0; }"}`))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining router: status %d (%s)", status, body)
	}
	var eb serve.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("drain rejection unstructured: %s", body)
	}
	resp, _ := http.Get(ts.URL + "/readyz")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Error("readyz still ready while draining")
	}
}

func TestStatzListsEveryBackend(t *testing.T) {
	_, ts := newIdleFabric(t, Options{Backends: 4})
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var z RouterStatz
	if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
		t.Fatal(err)
	}
	if len(z.Backends) != 4 {
		t.Fatalf("statz lists %d backends, want 4", len(z.Backends))
	}
	seen := map[string]bool{}
	for _, b := range z.Backends {
		if b.Name == "" || b.State == "" {
			t.Fatalf("statz backend row incomplete: %+v", b)
		}
		seen[b.Name] = true
	}
	if len(seen) != 4 {
		t.Fatalf("backend names not unique: %+v", z.Backends)
	}
}
