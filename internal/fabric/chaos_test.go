package fabric

// Chaos harness: the fabric's acceptance gate. A 3-backend fabric takes
// sustained mixed load while one backend is kill -9'd mid-flight. The
// contract under fire:
//
//   1. Zero unstructured client responses — every request gets a JSON
//      body with a sanctioned status, never a reset or torn read.
//   2. The killed backend is respawned and re-admitted within the
//      restart budget.
//   3. Post-recovery, /run through the router is bit-identical
//      (exit/output/trap/violation) to a direct single-process sbserve
//      for the same program matrix.
//   4. A poison program's circuit breaker opens on exactly its shard
//      and nowhere else, and breaker fast-fails are answers — they are
//      never retried cross-shard.
//
// Runs under -race in CI via the ordinary go test run.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"syscall"
	"testing"
	"time"

	"softbound/internal/retry"
	"softbound/internal/serve"
)

const (
	chaosOkSrc       = `int main() { printf("hi\n"); return 7; }`
	chaosOverflowSrc = `int main() { int a[4]; int i; for (i = 0; i <= 4; i = i + 1) a[i] = i; return a[0]; }`
	chaosSpinSrc     = `int main() { int i; i = 0; while (1) { i = i + 1; } return i; }`
)

// chaosBackendArgs tune the worker processes for fast tests: small
// pools, tight budgets, a 2-failure breaker with a long cooldown (so an
// opened breaker stays observable).
var chaosBackendArgs = []string{
	"-workers", "2", "-queue", "8", "-timeout", "2s",
	"-breaker-threshold", "2", "-breaker-cooldown", "60s",
}

func newChaosFabric(t *testing.T) (*Fabric, *httptest.Server) {
	t.Helper()
	bin := requireSbserve(t)
	f, err := New(Options{
		Backends:            3,
		Command:             SbserveCommand(bin, chaosBackendArgs...),
		SpoolDir:            t.TempDir(),
		ProbeInterval:       50 * time.Millisecond,
		ProbeTimeout:        500 * time.Millisecond,
		EjectAfter:          2,
		StartTimeout:        30 * time.Second,
		Restart:             retry.Policy{MaxAttempts: 8, BaseDelay: 50 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Budget: 5 * time.Second},
		HealthyReset:        500 * time.Millisecond,
		FailedCooldown:      time.Second,
		InflightPerBackend:  16,
		BackendDrainTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	ts := httptest.NewServer(f.Handler())
	t.Cleanup(func() {
		ts.Close()
		f.Close()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := f.WaitHealthy(ctx, 3); err != nil {
		t.Fatalf("fabric never became healthy: %v (%+v)", err, f.Backends())
	}
	return f, ts
}

func postJSON(url string, req serve.Request) (status int, hdr http.Header, body []byte, err error) {
	blob, _ := json.Marshal(req)
	resp, err := http.Post(url+"/run", "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

func TestChaosKillMinusNineUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test")
	}
	f, ts := newChaosFabric(t)

	// ---- Phase 1: sustained mixed load with a mid-flight kill -9. ----
	type outcome struct {
		status    int
		body      []byte
		transport error
	}
	var (
		mu       sync.Mutex
		outcomes []outcome
	)
	mixed := []serve.Request{
		{Source: chaosOkSrc},
		{Source: chaosOverflowSrc},
		{Source: chaosOkSrc, Mode: "store-only"},
	}
	stop := time.Now().Add(3 * time.Second)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; time.Now().Before(stop); i++ {
				status, _, body, err := postJSON(ts.URL, mixed[(w+i)%len(mixed)])
				mu.Lock()
				outcomes = append(outcomes, outcome{status, body, err})
				mu.Unlock()
			}
		}(w)
	}

	// Kill one healthy backend, SIGKILL, 500ms into the load.
	time.Sleep(500 * time.Millisecond)
	var victim BackendStatus
	for _, b := range f.Backends() {
		if b.State == StateHealthy && b.PID > 0 {
			victim = b
			break
		}
	}
	if victim.PID == 0 {
		t.Fatal("no healthy backend to kill")
	}
	if err := syscall.Kill(victim.PID, syscall.SIGKILL); err != nil {
		t.Fatalf("kill -9 %d: %v", victim.PID, err)
	}
	t.Logf("killed %s pid=%d", victim.Name, victim.PID)
	wg.Wait()

	// Contract 1: zero unstructured responses.
	served := map[int]int{}
	for _, o := range outcomes {
		if o.transport != nil {
			t.Fatalf("client saw a transport-level failure (connection reset?): %v", o.transport)
		}
		switch o.status {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("unsanctioned status %d under chaos: %s", o.status, o.body)
		}
		if !json.Valid(o.body) {
			t.Fatalf("malformed body under chaos (status %d): %q", o.status, o.body)
		}
		served[o.status]++
	}
	if served[http.StatusOK] == 0 {
		t.Fatalf("nothing served during chaos: %v", served)
	}
	t.Logf("chaos outcomes: %v over %d requests", served, len(outcomes))

	// Contract 2: the victim is restarted and re-admitted within the
	// restart budget.
	deadline := time.Now().Add(20 * time.Second)
	recovered := func() (BackendStatus, bool) {
		for _, b := range f.Backends() {
			if b.Name == victim.Name {
				return b, b.State == StateHealthy && b.Restarts >= 1
			}
		}
		return BackendStatus{}, false
	}
	for {
		if _, ok := recovered(); ok {
			break
		}
		if time.Now().After(deadline) {
			b, _ := recovered()
			t.Fatalf("victim %s never recovered: %+v", victim.Name, b)
		}
		time.Sleep(50 * time.Millisecond)
	}
	b, _ := recovered()
	if b.PID == victim.PID {
		t.Fatalf("victim claims recovery but kept pid %d", b.PID)
	}
	t.Logf("%s recovered: pid=%d restarts=%d", b.Name, b.PID, b.Restarts)

	// Contract 3: post-recovery routed results are bit-identical to a
	// direct single-process sbserve for the same matrix. (The deadline
	// program exercises trap paths without feeding any breaker.)
	directAddr, _ := startSbserve(t, chaosBackendArgs...)
	matrix := []serve.Request{
		{Source: chaosOkSrc},
		{Source: chaosOverflowSrc},
		{Source: chaosOkSrc, Mode: "store-only"},
		{Source: chaosOkSrc, Mode: "none"},
		{Source: chaosSpinSrc, TimeoutMillis: 300},
	}
	for i, req := range matrix {
		status, _, routedBody, err := postJSON(ts.URL, req)
		if err != nil || status != http.StatusOK {
			t.Fatalf("matrix[%d] via router: status %d err %v (%s)", i, status, err, routedBody)
		}
		dStatus, _, directBody, err := postJSON("http://"+directAddr, req)
		if err != nil || dStatus != http.StatusOK {
			t.Fatalf("matrix[%d] direct: status %d err %v", i, dStatus, err)
		}
		var routed, direct serve.Response
		if err := json.Unmarshal(routedBody, &routed); err != nil {
			t.Fatalf("matrix[%d] routed body: %v", i, err)
		}
		if err := json.Unmarshal(directBody, &direct); err != nil {
			t.Fatalf("matrix[%d] direct body: %v", i, err)
		}
		if routed.ExitCode != direct.ExitCode || routed.Output != direct.Output ||
			routed.TrapCode != direct.TrapCode || routed.Violation != direct.Violation ||
			routed.Config != direct.Config {
			t.Fatalf("matrix[%d] diverged through the fabric:\nrouted: %+v\ndirect: %+v", i, routed, direct)
		}
	}

	// Contract 4: the poison program's breaker opens on exactly one
	// shard, fast-fails are forwarded as answers (never retried
	// cross-shard), and the other shards keep serving.
	poison := serve.Request{Source: chaosSpinSrc, Steps: 2000} // deterministic step-limit trap
	retriesBefore := f.Counters().Get("fabric.cross_shard_retry")
	var shard string
	for i := 0; i < 2; i++ {
		status, hdr, body, err := postJSON(ts.URL, poison)
		if err != nil || status != http.StatusOK {
			t.Fatalf("poison %d: status %d err %v (%s)", i, status, err, body)
		}
		if shard == "" {
			shard = hdr.Get("X-Fabric-Backend")
		} else if got := hdr.Get("X-Fabric-Backend"); got != shard {
			t.Fatalf("poison moved shards without a failure: %s then %s", shard, got)
		}
	}
	status, hdr, body, err := postJSON(ts.URL, poison)
	if err != nil || status != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d err %v (%s)", status, err, body)
	}
	var eb serve.ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Breaker == "" {
		t.Fatalf("breaker fast-fail body unstructured: %s", body)
	}
	if got := hdr.Get("X-Fabric-Backend"); got != shard {
		t.Fatalf("breaker 503 answered by %s, expected the poison shard %s", got, shard)
	}
	if got := f.Counters().Get("fabric.cross_shard_retry"); got != retriesBefore {
		t.Fatalf("breaker fast-fail triggered a cross-shard retry (%d → %d): traps are answers", retriesBefore, got)
	}

	// Shard-local: exactly one backend tracks the breaker.
	withBreakers := 0
	for _, bs := range f.Backends() {
		resp, err := http.Get("http://" + bs.Addr + "/statz")
		if err != nil {
			t.Fatalf("backend %s statz: %v", bs.Name, err)
		}
		var z serve.Statz
		if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
			t.Fatalf("backend %s statz decode: %v", bs.Name, err)
		}
		resp.Body.Close()
		if len(z.Breakers) > 0 {
			withBreakers++
			if bs.Name != shard {
				t.Fatalf("breaker leaked to %s (poison shard is %s): %v", bs.Name, shard, z.Breakers)
			}
		}
		// Satellite check: the statz identity fields flow through the
		// fabric's -restarts plumbing.
		if z.PID != bs.PID || z.RestartsObserved != bs.Restarts {
			t.Fatalf("backend %s statz identity mismatch: statz pid=%d restarts=%d, fabric %+v",
				bs.Name, z.PID, z.RestartsObserved, bs)
		}
	}
	if withBreakers != 1 {
		t.Fatalf("poison breaker tracked on %d shards, want exactly 1", withBreakers)
	}

	// Healthy traffic still flows while the poison breaker is open.
	if status, _, body, err := postJSON(ts.URL, serve.Request{Source: chaosOkSrc}); err != nil || status != http.StatusOK {
		t.Fatalf("healthy traffic blocked by a shard-local breaker: status %d err %v (%s)", status, err, body)
	}
}

// TestConnectionFailureRetriesExactlyOnce pins the retry taxonomy at
// the unit of one request: a backend that is killed between health
// checks serves connection errors; the router must re-hash onto the
// next-ranked shard exactly once and still answer 200.
func TestConnectionFailureCrossShardRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("process test")
	}
	f, ts := newChaosFabric(t)

	// Find which backend owns the ok program, then kill it and fire the
	// request immediately — before ejection can catch up on a probe tick
	// the router must retry onto the next shard.
	status, hdr, _, err := postJSON(ts.URL, serve.Request{Source: chaosOkSrc})
	if err != nil || status != http.StatusOK {
		t.Fatalf("warmup failed: %d %v", status, err)
	}
	owner := hdr.Get("X-Fabric-Backend")
	var ownerPID int
	for _, b := range f.Backends() {
		if b.Name == owner {
			ownerPID = b.PID
		}
	}
	if ownerPID == 0 {
		t.Fatalf("owner %s has no pid", owner)
	}
	if err := syscall.Kill(ownerPID, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	// The kill is asynchronous; the very next request either reaches the
	// supervisor's fast death-detection (routed straight to the next
	// shard) or hits a connection error (cross-shard retried). Both must
	// end in a structured 200 from a different backend.
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, hdr, body, err := postJSON(ts.URL, serve.Request{Source: chaosOkSrc})
		if err != nil {
			t.Fatalf("client-visible transport failure: %v", err)
		}
		if status == http.StatusOK {
			if got := hdr.Get("X-Fabric-Backend"); got == owner {
				// The supervisor may already have restarted it; only a
				// served answer matters. Accept and stop.
				t.Logf("owner %s already recovered", owner)
			}
			var r serve.Response
			if err := json.Unmarshal(body, &r); err != nil || r.ExitCode != 7 {
				t.Fatalf("failover answer malformed: %s", body)
			}
			break
		}
		if status != http.StatusServiceUnavailable && status != http.StatusTooManyRequests {
			t.Fatalf("unsanctioned status %d during failover: %s", status, body)
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover never served: last status %d (%s)", status, body)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
