package fabric

// Graceful-drain race coverage for the real sbserve process (satellite
// of the fabric PR): queued + in-flight requests race a SIGTERM, and
// the contract is ordered — /readyz flips to a SERVED 503 while the
// listener is still open (load balancers must observe the flip before
// the socket disappears), every admitted request still gets its
// structured answer, and the process exits 0. The pre-existing load
// tests only covered drain from a clean baseline.

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"os/exec"
	"sync"
	"syscall"
	"testing"
	"time"

	"softbound/internal/serve"
)

func TestSIGTERMDrainRacesInflightRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("process test")
	}
	// 2 workers, queue of 8: with ten 1.5s-deadline spins in flight the
	// drain window is seconds wide, so the readyz observations below are
	// not timing-lucky.
	addr, cmd := startSbserve(t, "-workers", "2", "-queue", "8", "-timeout", "5s")

	slow := serve.Request{Source: chaosSpinSrc, TimeoutMillis: 1500}
	type answer struct {
		status int
		body   []byte
		err    error
	}
	answers := make(chan answer, 10)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, body, err := postJSON("http://"+addr, slow)
			answers <- answer{status, body, err}
		}()
	}
	time.Sleep(200 * time.Millisecond) // let the pool admit and queue

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// Poll /readyz: we must observe at least one SERVED 503 (the flip)
	// before the first connection-level failure (the listener closing).
	client := &http.Client{Timeout: time.Second}
	sawFlip := false
	for deadline := time.Now().Add(15 * time.Second); time.Now().Before(deadline); {
		resp, err := client.Get("http://" + addr + "/readyz")
		if err != nil {
			var opErr *net.OpError
			if !sawFlip && (errors.As(err, &opErr) || errors.Is(err, syscall.ECONNREFUSED)) {
				t.Fatalf("listener closed before /readyz ever served the drain 503: %v", err)
			}
			break // listener closed after the flip: the ordering held
		}
		var body map[string]string
		status := resp.StatusCode
		decodeErr := json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if status == http.StatusServiceUnavailable {
			if decodeErr != nil || body["status"] != "draining" {
				t.Fatalf("drain readyz unstructured: %v %v", body, decodeErr)
			}
			sawFlip = true
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawFlip {
		t.Fatal("/readyz never flipped to 503 during the drain window")
	}

	// Every racing request is answered with a structured result: 200
	// with the deadline trap for admitted work, 429/503 for shed or
	// post-drain arrivals. Never a transport error — the drain must not
	// reset accepted connections.
	wg.Wait()
	close(answers)
	got200 := 0
	for a := range answers {
		if a.err != nil {
			t.Fatalf("request racing SIGTERM got a transport error: %v", a.err)
		}
		switch a.status {
		case http.StatusOK:
			var r serve.Response
			if err := json.Unmarshal(a.body, &r); err != nil || r.TrapCode != "deadline" {
				t.Fatalf("drained request answered oddly: %s", a.body)
			}
			got200++
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if !json.Valid(a.body) {
				t.Fatalf("shed answer unstructured: %q", a.body)
			}
		default:
			t.Fatalf("status %d racing SIGTERM: %s", a.status, a.body)
		}
	}
	if got200 == 0 {
		t.Fatal("no admitted request survived the drain — the race never happened")
	}

	// The process exits 0: a graceful drain, not a crash.
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		var exitErr *exec.ExitError
		if err != nil && (!errors.As(err, &exitErr) || exitErr.ExitCode() != 0) {
			t.Fatalf("sbserve exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("sbserve never exited after SIGTERM")
	}
}
