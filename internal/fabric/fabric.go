// Package fabric is the self-healing sharded execution fabric: a front
// router that spawns and supervises N backend sbserve worker processes,
// rendezvous-hashes each /run request by program hash onto one of them
// (so per-program circuit-breaker state and compile caches shard
// naturally and stay shard-local), and keeps answering structured
// responses while individual backends crash, hang, or are kill -9'd.
//
// The robustness stack, outside in:
//
//   - Supervision: each backend is a separate OS process with its own
//     port and crash-bundle spool dir, watched by a dedicated
//     supervisor goroutine — /healthz probes with consecutive-failure
//     ejection, immediate death detection via process reaping, and
//     automatic restart under the shared internal/retry policy's
//     exponential backoff, bounded by its cumulative Budget so a
//     crash-looping binary can never hot-loop respawns.
//   - Sharding: rendezvous hashing by program hash (see hash.go). A
//     backend restart does not reshuffle the ring — names, not ports,
//     are the hash keys.
//   - Bounded fan-in: an in-flight cap per backend; a saturated shard
//     sheds (503 + Retry-After) rather than spilling its keys onto
//     other shards, which would smear breaker and cache locality.
//   - Retry taxonomy: exactly one cross-shard retry (the next backend
//     in the key's rendezvous ranking) and ONLY for connection-level
//     failures — dial errors, resets, torn response bodies. Anything a
//     backend actually answered is an answer: VM traps, detections,
//     breaker fast-fails, and 429 sheds are forwarded verbatim, never
//     re-executed. Responses are buffered in the router so a backend
//     dying mid-response becomes a retry, not a torn client read.
//   - Explicit degradation: healthy shard → one cross-shard retry →
//     503 + Retry-After with a fabric-wide shed counter. Shutdown
//     drains the router first (readyz flips, in-flight requests
//     finish), then SIGTERMs the backends, so clients never see a
//     connection reset.
//
// Router endpoints: POST /run (proxied), /healthz, /readyz, /statz
// (per-backend state machine + fabric counters).
package fabric

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"softbound/internal/metrics"
	"softbound/internal/retry"
	"softbound/internal/serve"
)

// Options configures a Fabric. Command is required; everything else
// defaults as documented.
type Options struct {
	// Backends is the worker process count (default 3).
	Backends int
	// Command builds the argv for one backend incarnation.
	// SbserveCommand is the standard constructor.
	Command func(BackendParams) *exec.Cmd
	// SpoolDir is the base crash-bundle directory; each backend spools
	// into SpoolDir/<name> ("" = spooling off).
	SpoolDir string
	// WorkDir holds the per-backend address files ("" = a private temp
	// dir, removed on Close).
	WorkDir string
	// ProbeInterval is the /healthz poll period (default 250ms);
	// ProbeTimeout bounds one probe round trip (default 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// EjectAfter is how many consecutive probe failures eject a backend
	// (default 3). Connection-level proxy failures count too.
	EjectAfter int
	// StartTimeout bounds spawn → healthy (default 15s).
	StartTimeout time.Duration
	// Restart is the per-backend restart schedule: MaxAttempts respawns
	// with exponential backoff, the cumulative sleep capped by Budget
	// (default 8 attempts, 100ms base, 2s cap, 10s budget). A backend
	// healthy for HealthyReset gets a fresh schedule.
	Restart      retry.Policy
	HealthyReset time.Duration
	// FailedCooldown is how long an over-budget backend stays in the
	// failed state before the fabric tries a fresh schedule
	// (default 5s).
	FailedCooldown time.Duration
	// InflightPerBackend bounds concurrently proxied requests per
	// backend (default 32); a saturated shard sheds.
	InflightPerBackend int
	// MaxBodyBytes bounds the /run request body (default 2 MiB);
	// MaxResponseBytes bounds a buffered backend response
	// (default 32 MiB).
	MaxBodyBytes     int64
	MaxResponseBytes int64
	// ProxyTimeout bounds one proxied request end to end (default 60s —
	// above any per-request VM budget a backend enforces).
	ProxyTimeout time.Duration
	// BackendDrainTimeout is the grace between SIGTERM and SIGKILL at
	// shutdown (default 10s).
	BackendDrainTimeout time.Duration
	// Log receives router events (nil = silent); BackendOutput receives
	// the worker processes' stderr/stdout (nil = discarded).
	Log           io.Writer
	BackendOutput io.Writer
}

func (o Options) withDefaults() Options {
	if o.Backends <= 0 {
		o.Backends = 3
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.EjectAfter <= 0 {
		o.EjectAfter = 3
	}
	if o.StartTimeout <= 0 {
		o.StartTimeout = 15 * time.Second
	}
	if o.Restart.MaxAttempts == 0 {
		o.Restart = retry.Policy{
			MaxAttempts: 8,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    2 * time.Second,
			Budget:      10 * time.Second,
			Seed:        o.Restart.Seed,
		}
	}
	if o.HealthyReset <= 0 {
		o.HealthyReset = 30 * time.Second
	}
	if o.FailedCooldown <= 0 {
		o.FailedCooldown = 5 * time.Second
	}
	if o.InflightPerBackend <= 0 {
		o.InflightPerBackend = 32
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 2 << 20
	}
	if o.MaxResponseBytes <= 0 {
		o.MaxResponseBytes = 32 << 20
	}
	if o.ProxyTimeout <= 0 {
		o.ProxyTimeout = 60 * time.Second
	}
	if o.BackendDrainTimeout <= 0 {
		o.BackendDrainTimeout = 10 * time.Second
	}
	return o
}

// SbserveCommand returns a backend Command constructor launching the
// sbserve binary at bin. The fabric-owned flags (-addr with port 0,
// -addr-file, -spool, -restarts) are set from the BackendParams; extra
// args (worker pool size, budgets, breaker tuning …) are appended
// verbatim.
func SbserveCommand(bin string, extra ...string) func(BackendParams) *exec.Cmd {
	return func(p BackendParams) *exec.Cmd {
		args := []string{
			"-addr", "127.0.0.1:0",
			"-addr-file", p.AddrFile,
			"-restarts", strconv.FormatUint(p.Restarts, 10),
			"-spool", p.SpoolDir,
		}
		args = append(args, extra...)
		return exec.Command(bin, args...)
	}
}

// Fabric is the router plus its supervised backend fleet. Create with
// New, launch with Start, mount Handler, and Close on shutdown.
type Fabric struct {
	opts     Options
	backends []*backend
	counters *metrics.CounterSet
	client   *http.Client

	workDir    string
	ownWorkDir bool

	cancel   context.CancelFunc
	wg       sync.WaitGroup // supervisors
	inflight sync.WaitGroup // proxied /run requests
	draining atomic.Bool
	drainMu  sync.RWMutex // send barrier: inflight.Add vs Close's Wait
	closed   atomic.Bool
	started  atomic.Bool
	logMu    sync.Mutex
}

// New validates the options and builds the fabric without spawning
// anything; Start launches the supervisors.
func New(opts Options) (*Fabric, error) {
	if opts.Command == nil {
		return nil, errors.New("fabric: Options.Command is required")
	}
	o := opts.withDefaults()
	f := &Fabric{
		opts:     o,
		counters: metrics.NewCounterSet(),
		client: &http.Client{
			Transport: &http.Transport{
				DialContext:         (&net.Dialer{Timeout: 2 * time.Second}).DialContext,
				MaxIdleConnsPerHost: o.InflightPerBackend,
				IdleConnTimeout:     30 * time.Second,
			},
		},
	}
	workDir := o.WorkDir
	if workDir == "" {
		dir, err := os.MkdirTemp("", "sbfabric-")
		if err != nil {
			return nil, fmt.Errorf("fabric: work dir: %w", err)
		}
		workDir, f.ownWorkDir = dir, true
	}
	f.workDir = workDir
	for i := 0; i < o.Backends; i++ {
		name := fmt.Sprintf("backend-%d", i)
		spool := ""
		if o.SpoolDir != "" {
			spool = filepath.Join(o.SpoolDir, name)
		}
		f.backends = append(f.backends, &backend{
			f:        f,
			name:     name,
			spoolDir: spool,
			addrFile: filepath.Join(workDir, name+".addr"),
			sem:      make(chan struct{}, o.InflightPerBackend),
			state:    StateStarting,
		})
	}
	return f, nil
}

// Start launches one supervisor per backend. Idempotent.
func (f *Fabric) Start() {
	if f.started.Swap(true) {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	f.cancel = cancel
	for _, b := range f.backends {
		f.wg.Add(1)
		go b.supervise(ctx)
	}
}

// WaitHealthy blocks until at least n backends are healthy or ctx ends.
func (f *Fabric) WaitHealthy(ctx context.Context, n int) error {
	for {
		if f.healthyCount() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("fabric: %d/%d backends healthy: %w", f.healthyCount(), n, ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}

func (f *Fabric) healthyCount() int {
	n := 0
	for _, b := range f.backends {
		if b.status().State == StateHealthy {
			n++
		}
	}
	return n
}

// Backends snapshots every backend's supervision state.
func (f *Fabric) Backends() []BackendStatus {
	out := make([]BackendStatus, len(f.backends))
	for i, b := range f.backends {
		out[i] = b.status()
	}
	return out
}

// Counters exposes the fabric counters (tests and /statz).
func (f *Fabric) Counters() *metrics.CounterSet { return f.counters }

// BeginDrain flips /readyz to 503 and makes /run reject new work.
func (f *Fabric) BeginDrain() {
	if !f.draining.Swap(true) {
		f.logf("fabric: draining")
	}
}

// Close drains the router, then the backends: new /run work is
// rejected, every in-flight proxied request is answered, then each
// backend gets SIGTERM (so sbserve drains its own pool) escalating to
// SIGKILL after BackendDrainTimeout. Idempotent.
func (f *Fabric) Close() {
	if f.closed.Swap(true) {
		return
	}
	f.BeginDrain()
	// Barrier: after this Lock/Unlock no handler is between its drain
	// check and its inflight.Add, so Wait cannot race an Add.
	f.drainMu.Lock()
	f.drainMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	f.inflight.Wait()
	if f.cancel != nil {
		f.cancel()
	}
	f.wg.Wait()
	if f.ownWorkDir {
		_ = os.RemoveAll(f.workDir)
	}
	f.logf("fabric: closed")
}

// Handler returns the router mux.
func (f *Fabric) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", f.handleRun)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/readyz", f.handleReadyz)
	mux.HandleFunc("/statz", f.handleStatz)
	return mux
}

func (f *Fabric) handleHealthz(w http.ResponseWriter, r *http.Request) {
	f.counters.Inc("http.healthz")
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (f *Fabric) handleReadyz(w http.ResponseWriter, r *http.Request) {
	f.counters.Inc("http.readyz")
	switch {
	case f.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case f.routableCount() == 0:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no-backend"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (f *Fabric) routableCount() int {
	n := 0
	for _, b := range f.backends {
		if _, ok := b.routable(); ok {
			n++
		}
	}
	return n
}

// RouterStatz is the router /statz document.
type RouterStatz struct {
	Backends []BackendStatus   `json:"backends"`
	Counters map[string]uint64 `json:"counters"`
	Draining bool              `json:"draining"`
}

func (f *Fabric) handleStatz(w http.ResponseWriter, r *http.Request) {
	f.counters.Inc("http.statz")
	writeJSON(w, http.StatusOK, RouterStatz{
		Backends: f.Backends(),
		Counters: f.counters.Snapshot(),
		Draining: f.draining.Load(),
	})
}

// handleRun routes one execution request: validate just enough to know
// the program hash, pick the shard by rendezvous ranking, forward the
// raw body verbatim, and degrade explicitly when shards are down.
func (f *Fabric) handleRun(w http.ResponseWriter, r *http.Request) {
	f.counters.Inc("http.run")
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, serve.ErrorBody{Error: "POST only"})
		return
	}

	// Same send-barrier pattern as serve: the drain check and the
	// inflight.Add are atomic with respect to Close's Wait.
	f.drainMu.RLock()
	if f.draining.Load() {
		f.drainMu.RUnlock()
		f.counters.Inc("fabric.draining_reject")
		writeJSON(w, http.StatusServiceUnavailable, serve.ErrorBody{Error: "router draining"})
		return
	}
	f.inflight.Add(1)
	f.drainMu.RUnlock()
	defer f.inflight.Done()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.opts.MaxBodyBytes))
	if err != nil {
		f.counters.Inc("fabric.bad_request")
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				serve.ErrorBody{Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, serve.ErrorBody{Error: "read body: " + err.Error()})
		return
	}
	var req serve.Request
	if err := json.Unmarshal(body, &req); err != nil {
		f.counters.Inc("fabric.bad_request")
		writeJSON(w, http.StatusBadRequest, serve.ErrorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Source == "" {
		f.counters.Inc("fabric.bad_request")
		writeJSON(w, http.StatusBadRequest, serve.ErrorBody{Error: "empty source"})
		return
	}
	sum := sha256.Sum256([]byte(req.Source))
	hash := hex.EncodeToString(sum[:])

	ranked := f.rank(hash)
	if len(ranked) == 0 {
		f.counters.Inc("fabric.no_backend")
		f.shed(w, "no healthy backend")
		return
	}
	// Primary plus at most ONE cross-shard retry, and only for
	// connection-level failures. A saturated shard sheds instead of
	// spilling: its keys' breakers and cache entries live there.
	if len(ranked) > 2 {
		ranked = ranked[:2]
	}
	for i, b := range ranked {
		if i > 0 {
			f.counters.Inc("fabric.cross_shard_retry")
		}
		release, ok := b.acquire()
		if !ok {
			f.counters.Inc("fabric.inflight_full")
			f.shed(w, "shard "+b.name+" saturated")
			return
		}
		status, ctype, respBody, err := f.forward(r.Context(), b, body)
		release()
		if err != nil {
			f.counters.Inc("fabric.conn_error")
			b.noteConnFailure()
			f.logf("fabric: %s /run connection failure: %v", b.name, err)
			continue
		}
		if ctype == "" {
			ctype = "application/json"
		}
		w.Header().Set("Content-Type", ctype)
		w.Header().Set("X-Fabric-Backend", b.name)
		w.WriteHeader(status)
		_, _ = w.Write(respBody)
		f.counters.Inc("fabric.proxied")
		f.counters.Inc(fmt.Sprintf("fabric.upstream_%dxx", status/100))
		return
	}
	f.shed(w, "all routable shards failed at connection level")
}

// rank returns the routable backends in rendezvous order for a program
// hash. Dead/restarting/failed backends are excluded up front — routing
// around them is re-hashing with the dead shard removed.
func (f *Fabric) rank(programHash string) []*backend {
	byName := make(map[string]*backend, len(f.backends))
	names := make([]string, 0, len(f.backends))
	for _, b := range f.backends {
		if _, ok := b.routable(); ok {
			byName[b.name] = b
			names = append(names, b.name)
		}
	}
	ranked := make([]*backend, 0, len(names))
	for _, n := range rankNames(names, programHash) {
		ranked = append(ranked, byName[n])
	}
	return ranked
}

// forward proxies one buffered request to a backend and buffers the
// full response, so a backend dying mid-response surfaces here as an
// error (and becomes a cross-shard retry), never as a torn client read.
// A non-nil error always means connection-level failure; any received
// HTTP response — whatever its status — is a final answer.
func (f *Fabric) forward(ctx context.Context, b *backend, body []byte) (status int, ctype string, respBody []byte, err error) {
	addr, ok := b.routable()
	if !ok {
		return 0, "", nil, errors.New("backend no longer routable")
	}
	ctx, cancel := context.WithTimeout(ctx, f.opts.ProxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+"/run", bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	respBody, err = io.ReadAll(io.LimitReader(resp.Body, f.opts.MaxResponseBytes))
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), respBody, nil
}

// shed is the end of the degradation ladder: a structured 503 with
// Retry-After, counted fabric-wide.
func (f *Fabric) shed(w http.ResponseWriter, reason string) {
	f.counters.Inc("fabric.shed")
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, serve.ErrorBody{
		Error:            reason,
		RetryAfterMillis: 1000,
	})
}

func (f *Fabric) backendOutput() io.Writer {
	if f.opts.BackendOutput != nil {
		return f.opts.BackendOutput
	}
	return io.Discard
}

func (f *Fabric) logf(format string, args ...any) {
	if f.opts.Log == nil {
		return
	}
	f.logMu.Lock()
	fmt.Fprintf(f.opts.Log, format+"\n", args...)
	f.logMu.Unlock()
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}
