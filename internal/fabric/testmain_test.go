package fabric

// The fabric's job is supervising real OS processes, so its tests run
// against the real sbserve binary: TestMain builds it once into a temp
// dir and the process-level tests (chaos, drain) spawn it. When the go
// toolchain is unavailable the build fails soft and those tests skip;
// the pure-logic tests (hashing, routing, validation) never need it.

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var sbserveBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "sbfabric-bin-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabric test: temp dir: %v\n", err)
		os.Exit(1)
	}
	bin := filepath.Join(dir, "sbserve")
	build := exec.Command("go", "build", "-o", bin, "softbound/cmd/sbserve")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "fabric test: building sbserve failed (%v); process tests will skip\n", err)
	} else {
		sbserveBin = bin
	}
	code := m.Run()
	_ = os.RemoveAll(dir)
	os.Exit(code)
}

// requireSbserve skips tests that need the real backend binary.
func requireSbserve(t *testing.T) string {
	t.Helper()
	if sbserveBin == "" {
		t.Skip("sbserve binary unavailable (go build failed in TestMain)")
	}
	return sbserveBin
}

// startSbserve launches one standalone sbserve process (outside any
// fabric) and waits until it is healthy; used by the drain tests and as
// the chaos test's bit-identical reference.
func startSbserve(t *testing.T, args ...string) (addr string, cmd *exec.Cmd) {
	t.Helper()
	bin := requireSbserve(t)
	addrFile := filepath.Join(t.TempDir(), "addr")
	full := append([]string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-spool", ""}, args...)
	cmd = exec.Command(bin, full...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start sbserve: %v", err)
	}
	// Drain stderr so the child never blocks on a full pipe.
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
		}
	}()
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		_ = cmd.Wait()
	})
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		blob, err := os.ReadFile(addrFile)
		if err == nil {
			if a := strings.TrimSpace(string(blob)); a != "" {
				resp, err := http.Get("http://" + a + "/healthz")
				if err == nil {
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						return a, cmd
					}
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatal("standalone sbserve never became healthy")
	return "", nil
}
