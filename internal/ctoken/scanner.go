package ctoken

import (
	"fmt"
	"strconv"
	"strings"
)

// ScanError describes a lexical error at a position.
type ScanError struct {
	Pos Pos
	Msg string
}

func (e *ScanError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Scanner converts C-subset source text into tokens.
type Scanner struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewScanner returns a scanner over src; file is used in positions.
func NewScanner(file, src string) *Scanner {
	return &Scanner{src: src, file: file, line: 1, col: 1}
}

// ScanAll tokenizes the whole input, returning the tokens terminated by an
// EOF token.
func ScanAll(file, src string) ([]Token, error) {
	s := NewScanner(file, src)
	var toks []Token
	for {
		t, err := s.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}

func (s *Scanner) pos() Pos { return Pos{File: s.file, Line: s.line, Col: s.col} }

func (s *Scanner) peek() byte {
	if s.off >= len(s.src) {
		return 0
	}
	return s.src[s.off]
}

func (s *Scanner) peek2() byte {
	if s.off+1 >= len(s.src) {
		return 0
	}
	return s.src[s.off+1]
}

func (s *Scanner) advance() byte {
	c := s.src[s.off]
	s.off++
	if c == '\n' {
		s.line++
		s.col = 1
	} else {
		s.col++
	}
	return c
}

func (s *Scanner) errorf(p Pos, format string, args ...interface{}) error {
	return &ScanError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// skipSpace consumes whitespace, comments, and line markers.
func (s *Scanner) skipSpace() error {
	for s.off < len(s.src) {
		c := s.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			s.advance()
		case c == '/' && s.peek2() == '/':
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		case c == '/' && s.peek2() == '*':
			p := s.pos()
			s.advance()
			s.advance()
			closed := false
			for s.off < len(s.src) {
				if s.peek() == '*' && s.peek2() == '/' {
					s.advance()
					s.advance()
					closed = true
					break
				}
				s.advance()
			}
			if !closed {
				return s.errorf(p, "unterminated block comment")
			}
		case c == '#':
			// We accept and ignore preprocessor-style line directives so
			// hand-preprocessed sources with #line markers still scan.
			for s.off < len(s.src) && s.peek() != '\n' {
				s.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next returns the next token.
func (s *Scanner) Next() (Token, error) {
	if err := s.skipSpace(); err != nil {
		return Token{}, err
	}
	p := s.pos()
	if s.off >= len(s.src) {
		return Token{Kind: EOF, Pos: p}, nil
	}
	c := s.peek()
	switch {
	case isIdentStart(c):
		return s.scanIdent(p), nil
	case isDigit(c) || (c == '.' && isDigit(s.peek2())):
		return s.scanNumber(p)
	case c == '\'':
		return s.scanChar(p)
	case c == '"':
		return s.scanString(p)
	}
	return s.scanOperator(p)
}

func (s *Scanner) scanIdent(p Pos) Token {
	start := s.off
	for s.off < len(s.src) && isIdentCont(s.peek()) {
		s.advance()
	}
	text := s.src[start:s.off]
	return Token{Kind: Lookup(text), Pos: p, Text: text}
}

func (s *Scanner) scanNumber(p Pos) (Token, error) {
	start := s.off
	isFloat := false
	if s.peek() == '0' && (s.peek2() == 'x' || s.peek2() == 'X') {
		s.advance()
		s.advance()
		for s.off < len(s.src) && isHexDigit(s.peek()) {
			s.advance()
		}
	} else {
		for s.off < len(s.src) && isDigit(s.peek()) {
			s.advance()
		}
		if s.peek() == '.' {
			isFloat = true
			s.advance()
			for s.off < len(s.src) && isDigit(s.peek()) {
				s.advance()
			}
		}
		if s.peek() == 'e' || s.peek() == 'E' {
			next := s.peek2()
			if isDigit(next) || next == '+' || next == '-' {
				isFloat = true
				s.advance()
				if s.peek() == '+' || s.peek() == '-' {
					s.advance()
				}
				for s.off < len(s.src) && isDigit(s.peek()) {
					s.advance()
				}
			}
		}
	}
	digits := s.src[start:s.off]

	var unsigned, long bool
	for {
		c := s.peek()
		if c == 'u' || c == 'U' {
			unsigned = true
			s.advance()
		} else if c == 'l' || c == 'L' {
			long = true
			s.advance()
		} else if (c == 'f' || c == 'F') && isFloat {
			s.advance()
		} else {
			break
		}
	}

	if isFloat {
		v, err := strconv.ParseFloat(digits, 64)
		if err != nil {
			return Token{}, s.errorf(p, "bad float literal %q", digits)
		}
		return Token{Kind: FloatLit, Pos: p, Text: digits, FloatVal: v}, nil
	}
	v, err := strconv.ParseUint(digits, 0, 64)
	if err != nil {
		return Token{}, s.errorf(p, "bad integer literal %q", digits)
	}
	return Token{Kind: IntLit, Pos: p, Text: digits, IntVal: v,
		Unsigned: unsigned, Long: long}, nil
}

func (s *Scanner) scanEscape(p Pos) (byte, error) {
	if s.off >= len(s.src) {
		return 0, s.errorf(p, "unterminated escape")
	}
	c := s.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case 'f':
		return 12, nil
	case 'v':
		return 11, nil
	case '\\', '\'', '"', '?':
		return c, nil
	case 'x':
		var v int
		n := 0
		for s.off < len(s.src) && isHexDigit(s.peek()) && n < 2 {
			d, _ := strconv.ParseUint(string(s.advance()), 16, 8)
			v = v*16 + int(d)
			n++
		}
		if n == 0 {
			return 0, s.errorf(p, "\\x with no hex digits")
		}
		return byte(v), nil
	}
	return 0, s.errorf(p, "unknown escape \\%c", c)
}

func (s *Scanner) scanChar(p Pos) (Token, error) {
	s.advance() // '
	if s.off >= len(s.src) {
		return Token{}, s.errorf(p, "unterminated character literal")
	}
	var v byte
	c := s.advance()
	if c == '\\' {
		e, err := s.scanEscape(p)
		if err != nil {
			return Token{}, err
		}
		v = e
	} else {
		v = c
	}
	if s.off >= len(s.src) || s.advance() != '\'' {
		return Token{}, s.errorf(p, "unterminated character literal")
	}
	return Token{Kind: CharLit, Pos: p, Text: string(v), IntVal: uint64(v)}, nil
}

func (s *Scanner) scanString(p Pos) (Token, error) {
	var sb strings.Builder
	for {
		s.advance() // opening quote
		for {
			if s.off >= len(s.src) {
				return Token{}, s.errorf(p, "unterminated string literal")
			}
			c := s.advance()
			if c == '"' {
				break
			}
			if c == '\n' {
				return Token{}, s.errorf(p, "newline in string literal")
			}
			if c == '\\' {
				e, err := s.scanEscape(p)
				if err != nil {
					return Token{}, err
				}
				sb.WriteByte(e)
				continue
			}
			sb.WriteByte(c)
		}
		// Adjacent string literals concatenate, as in C.
		if err := s.skipSpace(); err != nil {
			return Token{}, err
		}
		if s.peek() != '"' {
			break
		}
	}
	return Token{Kind: StringLit, Pos: p, StrVal: sb.String()}, nil
}

// operator table ordered longest-first so maximal munch works.
var operators = []struct {
	text string
	kind Kind
}{
	{"...", Ellipsis}, {"<<=", ShlAssign}, {">>=", ShrAssign},
	{"->", Arrow}, {"++", Inc}, {"--", Dec}, {"<<", Shl}, {">>", Shr},
	{"<=", Le}, {">=", Ge}, {"==", Eq}, {"!=", Ne}, {"&&", AndAnd},
	{"||", OrOr}, {"+=", PlusAssign}, {"-=", MinusAssign},
	{"*=", StarAssign}, {"/=", SlashAssign}, {"%=", PercentAssign},
	{"&=", AmpAssign}, {"|=", PipeAssign}, {"^=", CaretAssign},
	{"(", LParen}, {")", RParen}, {"{", LBrace}, {"}", RBrace},
	{"[", LBracket}, {"]", RBracket}, {";", Semi}, {",", Comma},
	{".", Dot}, {"+", Plus}, {"-", Minus}, {"*", Star}, {"/", Slash},
	{"%", Percent}, {"&", Amp}, {"|", Pipe}, {"^", Caret}, {"~", Tilde},
	{"!", Not}, {"<", Lt}, {">", Gt}, {"=", Assign}, {"?", Question},
	{":", Colon},
}

func (s *Scanner) scanOperator(p Pos) (Token, error) {
	rest := s.src[s.off:]
	for _, op := range operators {
		if strings.HasPrefix(rest, op.text) {
			for range op.text {
				s.advance()
			}
			return Token{Kind: op.kind, Pos: p, Text: op.text}, nil
		}
	}
	return Token{}, s.errorf(p, "unexpected character %q", s.peek())
}
