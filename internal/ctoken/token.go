// Package ctoken defines the lexical tokens of the C subset accepted by the
// SoftBound front end, and a scanner that produces them.
//
// The subset covers the C89 core needed by the paper's workloads: all
// integer and floating types, pointers, arrays, structs, unions, enums,
// typedefs, the full expression grammar, and the usual statements. It
// deliberately omits the preprocessor (sources are preprocessed by hand),
// bitfields, and K&R-style declarations.
package ctoken

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keep the operator block contiguous; the parser relies on
// Kind ordering only within the documented groups.
const (
	EOF Kind = iota
	Ident
	IntLit
	CharLit
	FloatLit
	StringLit

	// Keywords.
	KwAuto
	KwBreak
	KwCase
	KwChar
	KwConst
	KwContinue
	KwDefault
	KwDo
	KwDouble
	KwElse
	KwEnum
	KwExtern
	KwFloat
	KwFor
	KwGoto
	KwIf
	KwInt
	KwLong
	KwRegister
	KwReturn
	KwShort
	KwSigned
	KwSizeof
	KwStatic
	KwStruct
	KwSwitch
	KwTypedef
	KwUnion
	KwUnsigned
	KwVoid
	KwVolatile
	KwWhile

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]
	Semi     // ;
	Comma    // ,
	Dot      // .
	Arrow    // ->
	Ellipsis // ...

	Plus    // +
	Minus   // -
	Star    // *
	Slash   // /
	Percent // %
	Inc     // ++
	Dec     // --

	Amp   // &
	Pipe  // |
	Caret // ^
	Tilde // ~
	Shl   // <<
	Shr   // >>

	Not    // !
	AndAnd // &&
	OrOr   // ||

	Lt // <
	Gt // >
	Le // <=
	Ge // >=
	Eq // ==
	Ne // !=

	Assign        // =
	PlusAssign    // +=
	MinusAssign   // -=
	StarAssign    // *=
	SlashAssign   // /=
	PercentAssign // %=
	AmpAssign     // &=
	PipeAssign    // |=
	CaretAssign   // ^=
	ShlAssign     // <<=
	ShrAssign     // >>=

	Question // ?
	Colon    // :
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	CharLit: "character literal", FloatLit: "float literal",
	StringLit: "string literal",
	KwAuto:    "auto", KwBreak: "break", KwCase: "case", KwChar: "char",
	KwConst: "const", KwContinue: "continue", KwDefault: "default",
	KwDo: "do", KwDouble: "double", KwElse: "else", KwEnum: "enum",
	KwExtern: "extern", KwFloat: "float", KwFor: "for", KwGoto: "goto",
	KwIf: "if", KwInt: "int", KwLong: "long", KwRegister: "register",
	KwReturn: "return", KwShort: "short", KwSigned: "signed",
	KwSizeof: "sizeof", KwStatic: "static", KwStruct: "struct",
	KwSwitch: "switch", KwTypedef: "typedef", KwUnion: "union",
	KwUnsigned: "unsigned", KwVoid: "void", KwVolatile: "volatile",
	KwWhile: "while",
	LParen:  "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Dot: ".",
	Arrow: "->", Ellipsis: "...",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Inc: "++", Dec: "--",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Shl: "<<", Shr: ">>",
	Not: "!", AndAnd: "&&", OrOr: "||",
	Lt: "<", Gt: ">", Le: "<=", Ge: ">=", Eq: "==", Ne: "!=",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", AmpAssign: "&=",
	PipeAssign: "|=", CaretAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	Question: "?", Colon: ":",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"auto": KwAuto, "break": KwBreak, "case": KwCase, "char": KwChar,
	"const": KwConst, "continue": KwContinue, "default": KwDefault,
	"do": KwDo, "double": KwDouble, "else": KwElse, "enum": KwEnum,
	"extern": KwExtern, "float": KwFloat, "for": KwFor, "goto": KwGoto,
	"if": KwIf, "int": KwInt, "long": KwLong, "register": KwRegister,
	"return": KwReturn, "short": KwShort, "signed": KwSigned,
	"sizeof": KwSizeof, "static": KwStatic, "struct": KwStruct,
	"switch": KwSwitch, "typedef": KwTypedef, "union": KwUnion,
	"unsigned": KwUnsigned, "void": KwVoid, "volatile": KwVolatile,
	"while": KwWhile,
}

// Lookup maps an identifier spelling to its keyword kind, or Ident.
func Lookup(name string) Kind {
	if k, ok := keywords[name]; ok {
		return k
	}
	return Ident
}

// Pos is a source position.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // raw spelling (identifiers, literals)

	// Decoded literal values. IntVal holds integer and character
	// literals; FloatVal holds float literals; StrVal holds the decoded
	// (unescaped) contents of string literals.
	IntVal   uint64
	FloatVal float64
	StrVal   string
	Unsigned bool // integer literal had a u/U suffix
	Long     bool // integer literal had an l/L suffix
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, CharLit, FloatLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	case StringLit:
		return fmt.Sprintf("string %q", t.StrVal)
	default:
		return t.Kind.String()
	}
}
