package ctoken

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(t *testing.T, src string) []Kind {
	t.Helper()
	toks, err := ScanAll("test.c", src)
	if err != nil {
		t.Fatalf("scan %q: %v", src, err)
	}
	out := make([]Kind, 0, len(toks))
	for _, tok := range toks {
		out = append(out, tok.Kind)
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "int x while whileX _foo return returns")
	want := []Kind{KwInt, Ident, KwWhile, Ident, Ident, KwReturn, Ident, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestIntegerLiterals(t *testing.T) {
	cases := []struct {
		src      string
		val      uint64
		unsigned bool
		long     bool
	}{
		{"0", 0, false, false},
		{"42", 42, false, false},
		{"0x1f", 31, false, false},
		{"0XFF", 255, false, false},
		{"123u", 123, true, false},
		{"123UL", 123, true, true},
		{"9L", 9, false, true},
		{"010", 8, false, false}, // octal via strconv base-0
	}
	for _, c := range cases {
		toks, err := ScanAll("t.c", c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		tok := toks[0]
		if tok.Kind != IntLit || tok.IntVal != c.val ||
			tok.Unsigned != c.unsigned || tok.Long != c.long {
			t.Errorf("%q: got %+v", c.src, tok)
		}
	}
}

func TestFloatLiterals(t *testing.T) {
	cases := map[string]float64{
		"1.0":    1.0,
		"0.5":    0.5,
		".25":    0.25,
		"1e3":    1000,
		"1.5e-2": 0.015,
		"2.5f":   2.5,
		"3E+2":   300,
	}
	for src, want := range cases {
		toks, err := ScanAll("t.c", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != FloatLit || toks[0].FloatVal != want {
			t.Errorf("%q: got %+v", src, toks[0])
		}
	}
}

func TestCharLiterals(t *testing.T) {
	cases := map[string]uint64{
		"'a'":    'a',
		"'0'":    '0',
		`'\n'`:   '\n',
		`'\t'`:   '\t',
		`'\\'`:   '\\',
		`'\''`:   '\'',
		`'\0'`:   0,
		`'\x41'`: 'A',
	}
	for src, want := range cases {
		toks, err := ScanAll("t.c", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if toks[0].Kind != CharLit || toks[0].IntVal != want {
			t.Errorf("%q: got %+v want %d", src, toks[0], want)
		}
	}
}

func TestStringLiterals(t *testing.T) {
	toks, err := ScanAll("t.c", `"hello\n", "a\tb", "x" "y"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].StrVal != "hello\n" {
		t.Errorf("got %q", toks[0].StrVal)
	}
	if toks[2].StrVal != "a\tb" {
		t.Errorf("got %q", toks[2].StrVal)
	}
	// Adjacent literals concatenate, as in C.
	if toks[4].StrVal != "xy" {
		t.Errorf("concatenation: got %q", toks[4].StrVal)
	}
}

func TestOperatorsMaximalMunch(t *testing.T) {
	got := kinds(t, "a+++b a<<=2 a->b a--b x...")
	want := []Kind{
		Ident, Inc, Plus, Ident,
		Ident, ShlAssign, IntLit,
		Ident, Arrow, Ident,
		Ident, Dec, Ident,
		Ident, Ellipsis, EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestCommentsAndDirectives(t *testing.T) {
	src := `
// line comment
int /* block
spanning lines */ x;
# 1 "file.c"
int y;
`
	got := kinds(t, src)
	want := []Kind{KwInt, Ident, Semi, KwInt, Ident, Semi, EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestPositions(t *testing.T) {
	toks, err := ScanAll("f.c", "int\n  x;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("x at %v", toks[1].Pos)
	}
	if got := toks[1].Pos.String(); got != "f.c:2:3" {
		t.Errorf("Pos.String() = %q", got)
	}
}

func TestScanErrors(t *testing.T) {
	for _, src := range []string{
		"\"unterminated",
		"'",
		"'ab", // unterminated char
		"/* unterminated",
		"@",
		`"bad \q escape"`,
	} {
		if _, err := ScanAll("t.c", src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

// TestScannerNeverPanics fuzzes the scanner with arbitrary strings: it
// must either tokenize or return a ScanError, never panic or loop.
func TestScannerNeverPanics(t *testing.T) {
	f := func(s string) bool {
		// Bound input size to keep the property fast.
		if len(s) > 200 {
			s = s[:200]
		}
		toks, err := ScanAll("fuzz.c", s)
		if err != nil {
			var se *ScanError
			if !errorsAs(err, &se) {
				t.Logf("non-ScanError: %v", err)
				return false
			}
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func errorsAs(err error, target **ScanError) bool {
	se, ok := err.(*ScanError)
	if ok {
		*target = se
	}
	return ok
}

func TestTokenString(t *testing.T) {
	toks, _ := ScanAll("t.c", `foo 42 "s"`)
	for _, tok := range toks[:3] {
		if tok.String() == "" {
			t.Error("empty token string")
		}
	}
	if !strings.Contains(toks[0].String(), "foo") {
		t.Errorf("ident string: %q", toks[0].String())
	}
}
