package gen

import "fmt"

// FTPScript generates a seeded command script for the FtpdSession
// workload (internal/experiments): mostly-valid traffic — login,
// directory walks with ".." and "/", retrievals, uploads — salted with
// misses (absent files, bogus directories), unauthenticated attempts,
// and junk commands, always ending in QUIT. The generator tracks the
// daemon's directory tree so hits and misses are chosen deliberately,
// not by accident.
//
// Scripts are pure functions of (seed, n): byte-identical across runs,
// so a script is a complete request identity for the session soak's
// compile-cache-friendly request stream.
func FTPScript(seed uint64, n int) []string {
	if n < 4 {
		n = 4
	}
	r := newRng(seed ^ 0xf7bd00d5f7bd00d5)
	// The daemon's tree (experiments.fs_build_root): files per directory.
	files := map[string][]string{
		"root": {"welcome.msg"},
		"pub":  {"paper.pdf", "data.tar"},
		"docs": {"readme.txt"},
	}
	dirs := []string{"pub", "docs"}

	script := make([]string, 0, n)
	// A slice of sessions forget to log in, exercising the 530 paths.
	authed := r.intn(10) != 0
	if authed {
		script = append(script, "USER anonymous", "PASS guest@")
	} else {
		script = append(script, "USER mallory", "PASS letmein")
	}
	cwd := "root"
	depth := 0
	for len(script) < n-1 {
		switch r.intn(10) {
		case 0, 1: // enter a subdirectory (only root has them)
			d := dirs[r.intn(len(dirs))]
			script = append(script, "CWD "+d)
			if authed && cwd == "root" {
				cwd, depth = d, depth+1
			}
		case 2: // walk back up
			script = append(script, "CWD ..")
			if authed && depth > 0 {
				cwd, depth = "root", depth-1
			}
		case 3: // jump to root
			script = append(script, "CWD /")
			if authed {
				cwd, depth = "root", 0
			}
		case 4, 5, 6: // retrieve a file that exists here
			fs := files[cwd]
			script = append(script, "RETR "+fs[r.intn(len(fs))])
		case 7: // retrieve a miss
			script = append(script, fmt.Sprintf("RETR no-%d.bin", r.intn(1000)))
		case 8: // upload
			script = append(script, fmt.Sprintf("STOR up-%d.log", r.intn(1000)))
		default: // junk / unsupported commands (550/500 paths)
			junk := []string{"NOOP", "LIST", "DELE x", "CWD nosuchdir", "SYST"}
			script = append(script, junk[r.intn(len(junk))])
		}
	}
	return append(script, "QUIT")
}
