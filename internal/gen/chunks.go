package gen

import "fmt"

// buildChunk draws a template and its parameters for chunk i. Every
// template follows the same contract:
//
//   - The clean rendering is in-bounds and lock-live by construction:
//     loop bounds are derived from the declared sizes, string traffic
//     fits its buffers, and no pointer is used after free.
//   - Plant targets live inside sentinel-padded structs or on mapped
//     heap slack, so a configuration that does NOT detect the planted
//     violation corrupts only scratch memory that is never read again
//     (or reads deterministic bytes), keeping non-detecting runs
//     bit-comparable across schemes and engines.
//   - All identifiers are prefixed c<i>_ so chunks compose into one
//     translation unit in any subset the shrinker picks.
func buildChunk(r *rng, i int) *chunk {
	switch r.intn(6) {
	case 0:
		return genArrayWalk(r, i)
	case 1:
		return genNestedStruct(r, i)
	case 2:
		return genHeapLife(r, i)
	case 3:
		return genFuncPtr(r, i)
	case 4:
		return genStrings(r, i)
	default:
		return genPtrArray(r, i)
	}
}

// genArrayWalk: fill a struct-embedded long array through a decayed
// pointer, then walk it with strided pointer arithmetic.
func genArrayWalk(r *rng, i int) *chunk {
	n := r.rangeInt(8, 24)
	m := r.rangeInt(1, 9)
	k := r.rangeInt(1, 3)
	cst := r.rangeInt(0, 99)

	decls := fmt.Sprintf(
		"struct c%d_box { long a[%d]; long pad[4]; };\nstruct c%d_box c%d_g;\n", i, n, i, i)
	body := func(plant string) string {
		return fmt.Sprintf(`void c%d_run(void) {
    long* p = c%d_g.a;
    long j;
    for (j = 0; j < %d; j = j + 1)
        p[j] = j * %d + %d;
    for (j = 0; j + %d <= %d; j = j + %d)
        sb_sum = sb_sum + *(p + j);
%s}

`, i, i, n, m, cst, k, n, k, plant)
	}
	return &chunk{
		decls: decls,
		funcs: body(""),
		planted: []string{
			body(fmt.Sprintf("    p[%d] = %d;\n", n, cst)),
			body(fmt.Sprintf("    sb_sum = sb_sum + p[%d];\n", n)),
		},
		plants: []Plant{
			{Chunk: i, Index: 0, Kind: PlantSpatial, Store: true,
				Site: fmt.Sprintf("c%d arraywalk: store a[%d], one past a %d-long field", i, n, n)},
			{Chunk: i, Index: 1, Kind: PlantSpatial, Store: false,
				Site: fmt.Sprintf("c%d arraywalk: load a[%d], one past a %d-long field", i, n, n)},
		},
		call: fmt.Sprintf("c%d_run();", i),
	}
}

// genNestedStruct: accesses through a pointer to a nested struct, with
// sub-object plants overflowing an inner char array into its sibling.
func genNestedStruct(r *rng, i int) *chunk {
	m := 8 * r.rangeInt(1, 2) // name size, multiple of 8 so vals is adjacent
	k := r.rangeInt(4, 10)
	rep := r.rangeInt(2, 5)
	lbl := fmt.Sprintf("g%dx", i)

	decls := fmt.Sprintf(`struct c%d_in { char name[%d]; long vals[%d]; };
struct c%d_out { struct c%d_in inner; long tail; };
struct c%d_out c%d_g;
`, i, m, k, i, i, i, i)
	body := func(plant string) string {
		return fmt.Sprintf(`void c%d_run(void) {
    struct c%d_out* p = &c%d_g;
    long* v = p->inner.vals;
    long j;
    long r;
    for (r = 0; r < %d; r = r + 1) {
        for (j = 0; j < %d; j = j + 1)
            v[j] = v[j] + r + j * %d;
        p->tail = p->tail + v[r %% %d];
    }
    strcpy(p->inner.name, "%s");
    sb_sum = sb_sum + strlen(p->inner.name) + p->tail + v[%d];
%s}

`, i, i, i, rep, k, m, k, lbl, k-1, plant)
	}
	return &chunk{
		decls: decls,
		funcs: body(""),
		planted: []string{
			body(fmt.Sprintf("    p->inner.name[%d] = 65;\n", m)),
			body(fmt.Sprintf("    sb_sum = sb_sum + p->inner.name[%d];\n", m)),
		},
		plants: []Plant{
			{Chunk: i, Index: 0, Kind: PlantSpatial, Store: true,
				Site: fmt.Sprintf("c%d nestedstruct: store name[%d], overflowing the inner field into vals", i, m)},
			{Chunk: i, Index: 1, Kind: PlantSpatial, Store: false,
				Site: fmt.Sprintf("c%d nestedstruct: load name[%d], reading past the inner field", i, m)},
		},
		call: fmt.Sprintf("c%d_run();", i),
	}
}

// genHeapLife: a malloc → fill → sum → (realloc) → free lifetime, with
// one-past spatial plants before free and use-after-free plants after.
func genHeapLife(r *rng, i int) *chunk {
	n := r.rangeInt(8, 32)
	cst := r.rangeInt(1, 99)
	doRealloc := r.intn(2) == 1
	n2 := n * 2
	if r.intn(2) == 1 {
		n2 = n/2 + 1
	}
	nn := n // size of the live block right before free
	if doRealloc {
		nn = n2
	}
	nmin := n
	if n2 < n {
		nmin = n2
	}

	reallocPart := ""
	if doRealloc {
		reallocPart = fmt.Sprintf(`    q = (long*)realloc(p, %d * 8);
    if (q == 0) { free(p); return; }
    p = q;
    for (j = 0; j < %d; j = j + 1)
        sb_sum = sb_sum + p[j];
`, n2, nmin)
	}
	body := func(preFree, postFree string) string {
		return fmt.Sprintf(`void c%d_run(void) {
    long* p = (long*)malloc(%d * 8);
    long* q;
    long j;
    if (p == 0) { sb_sum = sb_sum - 1; return; }
    for (j = 0; j < %d; j = j + 1)
        p[j] = j + %d;
    for (j = 0; j < %d; j = j + 1)
        sb_sum = sb_sum + p[j];
%s%s    free(p);
%s}

`, i, n, n, cst, n, reallocPart, preFree, postFree)
	}
	return &chunk{
		decls: "",
		funcs: body("", ""),
		planted: []string{
			body(fmt.Sprintf("    p[%d] = %d;\n", nn, cst), ""),
			body("", fmt.Sprintf("    p[0] = %d;\n", cst)),
			body("", "    sb_sum = sb_sum + p[1];\n"),
		},
		plants: []Plant{
			{Chunk: i, Index: 0, Kind: PlantSpatial, Store: true,
				Site: fmt.Sprintf("c%d heaplife: store p[%d], one past a %d-long heap block", i, nn, nn)},
			{Chunk: i, Index: 1, Kind: PlantTemporal, Store: true,
				Site: fmt.Sprintf("c%d heaplife: store p[0] after free (use-after-free)", i)},
			{Chunk: i, Index: 2, Kind: PlantTemporal, Store: false,
				Site: fmt.Sprintf("c%d heaplife: load p[1] after free (use-after-free)", i)},
		},
		call: fmt.Sprintf("c%d_run();", i),
	}
}

// genFuncPtr: indirect calls through a function-pointer table, passing
// pointer arguments and returning a pointer — metadata flows both ways
// through the shadow-stack ABI.
func genFuncPtr(r *rng, i int) *chunk {
	n := r.rangeInt(8, 16)
	m := r.rangeInt(1, 9)
	cst := r.rangeInt(0, 49)

	decls := fmt.Sprintf(`typedef long (*c%d_fn)(long*, long);
struct c%d_box { long a[%d]; long pad[4]; };
struct c%d_box c%d_g;
`, i, i, n, i, i)
	helpers := fmt.Sprintf(`long c%d_fill(long* p, long n) {
    long j;
    for (j = 0; j < n; j = j + 1)
        p[j] = j * %d + %d;
    return n;
}

long c%d_sum(long* p, long n) {
    long s = 0;
    long j;
    for (j = 0; j < n; j = j + 1)
        s = s + p[j];
    return s;
}

long* c%d_pick(long* p, long n) { return p + (n - 1); }

`, i, m, cst, i, i)
	body := func(plant string) string {
		return helpers + fmt.Sprintf(`void c%d_run(void) {
    c%d_fn tab[2];
    long* q;
    long j;
    tab[0] = c%d_fill;
    tab[1] = c%d_sum;
    sb_sum = sb_sum + tab[0](c%d_g.a, %d);
    for (j = 0; j < 3; j = j + 1)
        sb_sum = sb_sum + tab[1](c%d_g.a + j, %d - j);
    q = c%d_pick(c%d_g.a, %d);
    sb_sum = sb_sum + *q;
%s}

`, i, i, i, i, i, n, i, n, i, i, n, plant)
	}
	return &chunk{
		decls: decls,
		funcs: body(""),
		planted: []string{
			// The indirect callee stores one past the field: the argument's
			// bounds travel through the shadow stack into the check.
			body(fmt.Sprintf("    sb_sum = sb_sum + tab[0](c%d_g.a + %d, 4);\n", i, n-2)),
			// The returned interior pointer is advanced past the field and
			// dereferenced: return metadata travels back the same way.
			body(fmt.Sprintf("    q = c%d_pick(c%d_g.a + 2, %d);\n    sb_sum = sb_sum + *q;\n", i, i, n)),
		},
		plants: []Plant{
			{Chunk: i, Index: 0, Kind: PlantSpatial, Store: true,
				Site: fmt.Sprintf("c%d funcptr: indirect callee stores a[%d..%d], past a %d-long field", i, n-2, n+1, n)},
			{Chunk: i, Index: 1, Kind: PlantSpatial, Store: false,
				Site: fmt.Sprintf("c%d funcptr: load through returned pointer at a[%d]", i, n+1)},
		},
		call: fmt.Sprintf("c%d_run();", i),
	}
}

// genStrings: libc string traffic (strcpy/strlen/strcmp) into a
// padded struct buffer; the store plant overflows inside the
// recompiled strcpy itself.
func genStrings(r *rng, i int) *chunk {
	m := 8 * r.rangeInt(2, 4)
	cst := r.rangeInt(1, 9)

	decls := fmt.Sprintf(
		"struct c%d_box { char buf[%d]; char pad[8]; };\nstruct c%d_box c%d_g;\n", i, m, i, i)
	body := func(tmpSize, fill int, plant string) string {
		return fmt.Sprintf(`void c%d_run(void) {
    char tmp[%d];
    long j;
    for (j = 0; j < %d; j = j + 1)
        tmp[j] = 97 + (j %% 26);
    tmp[%d] = 0;
    strcpy(c%d_g.buf, tmp);
    sb_sum = sb_sum + strlen(c%d_g.buf);
    if (strcmp(c%d_g.buf, tmp) == 0)
        sb_sum = sb_sum + %d;
%s}

`, i, tmpSize, fill, fill, i, i, i, cst, plant)
	}
	return &chunk{
		decls: decls,
		funcs: body(m, m-1, ""),
		planted: []string{
			// tmp is 4 bytes longer than buf, so the clean-looking strcpy
			// overflows buf into pad — detected inside instrumented strcpy.
			body(m+8, m+3, ""),
			body(m, m-1, fmt.Sprintf("    sb_sum = sb_sum + c%d_g.buf[%d];\n", i, m+2)),
		},
		plants: []Plant{
			{Chunk: i, Index: 0, Kind: PlantSpatial, Store: true,
				Site: fmt.Sprintf("c%d strings: strcpy of %d bytes into a %d-char field", i, m+4, m)},
			{Chunk: i, Index: 1, Kind: PlantSpatial, Store: false,
				Site: fmt.Sprintf("c%d strings: load buf[%d], past a %d-char field", i, m+2, m)},
		},
		call: fmt.Sprintf("c%d_run();", i),
	}
}

// genPtrArray: an array of heap pointers stored in global memory, so
// every dereference reloads metadata from the facility (table churn),
// freed in a final loop. The temporal plant dereferences a freed
// pointer loaded back from memory — the facility-mediated CETS path,
// as opposed to heapLife's register-resident one.
func genPtrArray(r *rng, i int) *chunk {
	k := r.rangeInt(4, 8)
	n := r.rangeInt(4, 12)

	decls := fmt.Sprintf("long* c%d_ptrs[%d];\n", i, k)
	body := func(mid, post string) string {
		return fmt.Sprintf(`void c%d_run(void) {
    long j;
    long k;
    for (j = 0; j < %d; j = j + 1) {
        c%d_ptrs[j] = (long*)malloc(%d * 8);
        if (c%d_ptrs[j] == 0) return;
        for (k = 0; k < %d; k = k + 1)
            c%d_ptrs[j][k] = j * 100 + k;
    }
    for (j = 0; j < %d; j = j + 1)
        for (k = 0; k < %d; k = k + 2)
            sb_sum = sb_sum + c%d_ptrs[j][k];
%s    for (j = 0; j < %d; j = j + 1)
        free(c%d_ptrs[j]);
%s}

`, i, k, i, n, i, n, i, k, n, i, mid, k, i, post)
	}
	return &chunk{
		decls: decls,
		funcs: body("", ""),
		planted: []string{
			body(fmt.Sprintf("    c%d_ptrs[%d][%d] = 7;\n", i, k-1, n), ""),
			body("", fmt.Sprintf("    c%d_ptrs[0][0] = 9;\n", i)),
		},
		plants: []Plant{
			{Chunk: i, Index: 0, Kind: PlantSpatial, Store: true,
				Site: fmt.Sprintf("c%d ptrarray: store ptrs[%d][%d], one past a %d-long heap block", i, k-1, n, n)},
			{Chunk: i, Index: 1, Kind: PlantTemporal, Store: true,
				Site: fmt.Sprintf("c%d ptrarray: store through freed ptrs[0] reloaded from memory", i)},
		},
		call: fmt.Sprintf("c%d_run();", i),
	}
}
