// Package gen is a deterministic seeded program generator — a
// csmith-lite for the SoftBound pipeline's C subset. Given a splitmix64
// seed it emits a well-typed program built from independent "chunks"
// (nested structs, array walks, pointer arithmetic, heap lifetimes,
// function-pointer calls through the shadow-stack ABI, libc string
// traffic) whose semantics are known by construction:
//
//   - The clean variant is provably in-bounds and lock-live: every
//     access stays inside its object and no pointer outlives its
//     allocation, so under any checked scheme the program must run to a
//     clean exit with zero violations, and under every scheme × mode ×
//     engine cell it must produce identical output.
//   - Each chunk additionally exposes planted variants: the same program
//     with exactly one spatial or temporal violation inserted at a known
//     site. Plant targets sit inside sentinel-padded structs (or on
//     mapped heap slack), so a non-detecting configuration corrupts only
//     scratch memory and still terminates deterministically — which is
//     what lets the soak harness compare non-detecting runs bit-for-bit
//     while asserting the checked configurations trap.
//
// Determinism contract: Source()/PlantedSource() are pure functions of
// (seed, subset mask, plant), byte-identical across runs and processes.
// The soak shrinker leans on this: a divergence is re-rendered from
// (seed, kept-chunk mask) rather than shipping mutated source around.
package gen

import (
	"fmt"
	"strings"
)

// rng is splitmix64, the same generator the fault injector uses, so a
// seed is a complete description of a generated program.
type rng struct{ state uint64 }

func newRng(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a value in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// PlantKind classifies a planted violation.
type PlantKind int

const (
	// PlantSpatial is an out-of-bounds access (off-by-N past an object
	// or a sub-object overflow into a sibling field).
	PlantSpatial PlantKind = iota
	// PlantTemporal is a use-after-free through a revoked lock.
	PlantTemporal
)

func (k PlantKind) String() string {
	if k == PlantTemporal {
		return "temporal"
	}
	return "spatial"
}

// Plant identifies one derived fault variant: the chunk it lives in,
// its index among that chunk's plants, whether the faulting access is a
// store, and a human-readable site description for reports.
type Plant struct {
	Chunk int
	Index int
	Kind  PlantKind
	Store bool
	Site  string
}

// Detected reports whether a checked configuration with the given
// properties must trap on this plant: full-mode configurations check
// loads and stores, store-only configurations check stores, and
// temporal plants additionally require a lock-and-key (CETS) scheme.
// Unchecked (baseline) runs never detect anything.
func (p Plant) Detected(full, temporal bool) bool {
	if p.Kind == PlantTemporal && !temporal {
		return false
	}
	return p.Store || full
}

// chunk is one self-contained program fragment. decls/funcs hold the
// clean rendering; planted[i] holds the function text with plant i's
// violation inserted (decls are shared — plants only change code).
type chunk struct {
	decls   string
	funcs   string
	planted []string
	plants  []Plant
	call    string
}

// Program is a generated program: an ordered set of chunks plus a keep
// mask (all-true initially) that the shrinker narrows.
type Program struct {
	Seed   uint64
	chunks []*chunk
	keep   []bool
}

// Generate builds the program for a seed. Chunk count and per-chunk
// template/parameters are all drawn from the seed.
func Generate(seed uint64) *Program {
	r := newRng(seed)
	n := r.rangeInt(3, 7)
	p := &Program{Seed: seed, keep: make([]bool, n)}
	for i := 0; i < n; i++ {
		p.keep[i] = true
		p.chunks = append(p.chunks, buildChunk(r, i))
	}
	return p
}

// NumChunks reports the total chunk count (ignoring the keep mask).
func (p *Program) NumChunks() int { return len(p.chunks) }

// Kept reports how many chunks the current mask keeps.
func (p *Program) Kept() int {
	n := 0
	for _, k := range p.keep {
		if k {
			n++
		}
	}
	return n
}

// Subset returns a view of the program that renders only the chunks
// where keep[i] is true. Chunks are shared, not copied.
func (p *Program) Subset(keep []bool) *Program {
	if len(keep) != len(p.chunks) {
		panic("gen: subset mask length mismatch")
	}
	mask := make([]bool, len(keep))
	copy(mask, keep)
	return &Program{Seed: p.Seed, chunks: p.chunks, keep: mask}
}

// KeepMask returns a copy of the current keep mask.
func (p *Program) KeepMask() []bool {
	mask := make([]bool, len(p.keep))
	copy(mask, p.keep)
	return mask
}

// Plants enumerates every planted variant of the kept chunks.
func (p *Program) Plants() []Plant {
	var out []Plant
	for i, c := range p.chunks {
		if !p.keep[i] {
			continue
		}
		out = append(out, c.plants...)
	}
	return out
}

// Source renders the clean variant.
func (p *Program) Source() string { return p.render(-1, -1) }

// PlantedSource renders the program with exactly one violation: plant
// pl of chunk pl.Chunk. The chunk must be kept.
func (p *Program) PlantedSource(pl Plant) string {
	if pl.Chunk < 0 || pl.Chunk >= len(p.chunks) || !p.keep[pl.Chunk] {
		panic("gen: plant refers to a dropped chunk")
	}
	return p.render(pl.Chunk, pl.Index)
}

func (p *Program) render(plantChunk, plantIdx int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "/* generated: seed=%d chunks=%d/%d */\n", p.Seed, p.Kept(), len(p.chunks))
	b.WriteString("long sb_sum = 0;\n\n")
	for i, c := range p.chunks {
		if !p.keep[i] {
			continue
		}
		b.WriteString(c.decls)
	}
	b.WriteString("\n")
	for i, c := range p.chunks {
		if !p.keep[i] {
			continue
		}
		if i == plantChunk {
			b.WriteString(c.planted[plantIdx])
		} else {
			b.WriteString(c.funcs)
		}
	}
	b.WriteString("int main(void) {\n")
	for i, c := range p.chunks {
		if !p.keep[i] {
			continue
		}
		b.WriteString("    " + c.call + "\n")
	}
	b.WriteString("    printf(\"sum %ld\\n\", sb_sum);\n")
	b.WriteString("    return 0;\n}\n")
	return b.String()
}
