package gen

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"softbound/internal/driver"
	"softbound/internal/meta"
)

// TestGeneratorDeterminism: same seed ⇒ byte-identical source, for the
// clean rendering, every planted rendering, and subset renderings.
func TestGeneratorDeterminism(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if a.Source() != b.Source() {
			t.Fatalf("seed %d: clean source differs across generations", seed)
		}
		pa, pb := a.Plants(), b.Plants()
		if len(pa) != len(pb) {
			t.Fatalf("seed %d: plant count differs", seed)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("seed %d: plant %d differs: %+v vs %+v", seed, i, pa[i], pb[i])
			}
			if a.PlantedSource(pa[i]) != b.PlantedSource(pb[i]) {
				t.Fatalf("seed %d: planted source %d differs", seed, i)
			}
		}
		mask := a.KeepMask()
		for i := 1; i < len(mask); i += 2 {
			mask[i] = false
		}
		if a.Subset(mask).Source() != b.Subset(mask).Source() {
			t.Fatalf("seed %d: subset source differs", seed)
		}
	}
	if Generate(1).Source() == Generate(2).Source() {
		t.Fatal("different seeds produced identical programs")
	}
}

// TestGeneratorValidityUnchecked: 1000 clean cells compile and run to a
// clean exit (no trap, exit 0) with checking off — the generator's
// well-typedness and in-bounds-by-construction contract.
func TestGeneratorValidityUnchecked(t *testing.T) {
	const cells = 1000
	cfg := driver.DefaultConfig(driver.ModeNone)
	cfg.Timeout = 10 * time.Second
	cfg.StepLimit = 20_000_000

	seeds := make(chan uint64, cells)
	for s := uint64(1); s <= cells; s++ {
		seeds <- s
	}
	close(seeds)
	var wg sync.WaitGroup
	var mu sync.Mutex
	failed := 0
	for w := 0; w < runtime.NumCPU(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				src := Generate(seed).Source()
				res, err := driver.RunSource(src, cfg)
				if err != nil {
					mu.Lock()
					failed++
					if failed <= 3 {
						t.Errorf("seed %d failed to compile/run: %v\n%s", seed, err, src)
					}
					mu.Unlock()
					continue
				}
				if res.Trap != nil || res.ExitCode != 0 {
					mu.Lock()
					failed++
					if failed <= 3 {
						t.Errorf("seed %d: exit=%d trap=%v\n%s", seed, res.ExitCode, res.TrapCode(), src)
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if failed > 0 {
		t.Fatalf("%d/%d cells invalid", failed, cells)
	}
}

// TestGeneratorCleanUnderChecking: clean cells stay violation-free and
// output-identical under every checked scheme (the in-bounds and
// lock-live halves of the contract).
func TestGeneratorCleanUnderChecking(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		src := Generate(seed).Source()
		base, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeNone))
		if err != nil || base.Trap != nil {
			t.Fatalf("seed %d baseline: %v %v", seed, err, base)
		}
		for _, s := range meta.Schemes() {
			for _, mode := range []driver.Mode{driver.ModeStoreOnly, driver.ModeFull} {
				cfg := driver.DefaultConfig(mode)
				cfg.Meta = s.Kind
				cfg.MetaFacility = func() (meta.Facility, error) { return s.New(), nil }
				res, err := driver.RunSource(src, cfg)
				if err != nil {
					t.Fatalf("seed %d %s-%v: %v", seed, s.Name, mode, err)
				}
				if res.Detected() || res.Trap != nil {
					t.Fatalf("seed %d %s-%v: clean cell detected something: trap=%v violation=%v",
						seed, s.Name, mode, res.TrapCode(), res.Err)
				}
				if res.Output != base.Output || res.ExitCode != base.ExitCode {
					t.Fatalf("seed %d %s-%v: output diverged from baseline:\n%q\nvs\n%q",
						seed, s.Name, mode, res.Output, base.Output)
				}
			}
		}
	}
}

// TestGeneratorPlantsDetected validates the Detected predicate against
// reality: each planted variant must trap exactly when the predicate
// says a (scheme, mode) cell checks that access, and never under the
// unchecked baseline.
func TestGeneratorPlantsDetected(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		prog := Generate(seed)
		for _, pl := range prog.Plants() {
			src := prog.PlantedSource(pl)
			// Unchecked: the plant must be structurally harmless — a
			// deterministic run, not a wild crash.
			base, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeNone))
			if err != nil {
				t.Fatalf("seed %d plant %q baseline: %v", seed, pl.Site, err)
			}
			if base.Detected() {
				t.Fatalf("seed %d plant %q: baseline detected?", seed, pl.Site)
			}
			for _, s := range meta.Schemes() {
				for _, mode := range []driver.Mode{driver.ModeStoreOnly, driver.ModeFull} {
					cfg := driver.DefaultConfig(mode)
					cfg.Meta = s.Kind
					cfg.MetaFacility = func() (meta.Facility, error) { return s.New(), nil }
					res, err := driver.RunSource(src, cfg)
					if err != nil {
						t.Fatalf("seed %d plant %q %s-%v: %v", seed, pl.Site, s.Name, mode, err)
					}
					want := pl.Detected(mode == driver.ModeFull, s.Kind.Temporal())
					if got := res.Detected(); got != want {
						t.Errorf("seed %d plant %q under %s-%v: detected=%v, want %v (trap %v)",
							seed, pl.Site, s.Name, mode, got, want, res.TrapCode())
						continue
					}
					if want {
						code := res.TrapCode()
						wantCode := "spatial-violation"
						if pl.Kind == PlantTemporal {
							wantCode = "temporal-violation"
						}
						if string(code) != wantCode {
							t.Errorf("seed %d plant %q under %s-%v: trap %q, want %q",
								seed, pl.Site, s.Name, mode, code, wantCode)
						}
					}
				}
			}
		}
	}
}
