package gen_test

import (
	"strings"
	"testing"

	"softbound/internal/driver"
	"softbound/internal/experiments"
	"softbound/internal/gen"
)

// TestFTPScriptDeterminismAndShape: same seed ⇒ identical script; the
// script fits dispatch's fixed command/argument fields and ends in QUIT.
func TestFTPScriptDeterminismAndShape(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		a := gen.FTPScript(seed, 24)
		b := gen.FTPScript(seed, 24)
		if len(a) != 24 {
			t.Fatalf("seed %d: %d commands, want 24", seed, len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: command %d differs: %q vs %q", seed, i, a[i], b[i])
			}
			cmd, arg, _ := strings.Cut(a[i], " ")
			if len(cmd) > 7 || len(arg) > 31 {
				t.Fatalf("seed %d: %q overflows dispatch's fields", seed, a[i])
			}
		}
		if a[len(a)-1] != "QUIT" {
			t.Fatalf("seed %d: script does not end in QUIT: %q", seed, a[len(a)-1])
		}
	}
}

// TestFtpdSessionProgramRunsChecked: generated session programs compile
// and run clean under full checking with output identical to the
// unchecked baseline — the request-driven workload is safe traffic.
func TestFtpdSessionProgramRunsChecked(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		src := experiments.FtpdSession(gen.FTPScript(seed, 20), 2)
		base, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeNone))
		if err != nil || base.Trap != nil || base.ExitCode != 0 {
			t.Fatalf("seed %d baseline: err=%v res=%+v\n%s", seed, err, base, src)
		}
		if !strings.Contains(base.Output, "ftpd codes ") {
			t.Fatalf("seed %d: unexpected output %q", seed, base.Output)
		}
		res, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeFull))
		if err != nil {
			t.Fatalf("seed %d checked: %v", seed, err)
		}
		if res.Detected() || res.Trap != nil {
			t.Fatalf("seed %d checked: trap=%v err=%v", seed, res.TrapCode(), res.Err)
		}
		if res.Output != base.Output {
			t.Fatalf("seed %d: checked output %q != baseline %q", seed, res.Output, base.Output)
		}
	}
}
