package sema

import (
	"softbound/internal/cast"
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
)

// checkExpr types an expression, returning its (decayed) type, or nil on
// error (an error has been recorded).
func (c *checker) checkExpr(e cast.Expr) *ctypes.Type {
	t := c.typeExpr(e)
	return t
}

// setType records t on the node and returns the decayed type for use in
// the surrounding expression.
func setType(e cast.Expr, t *ctypes.Type) *ctypes.Type {
	type setter interface{ SetType(*ctypes.Type) }
	if t == nil {
		return nil
	}
	d := t.Decay()
	e.(setter).SetType(d)
	return d
}

// undecayedType returns the type of an lvalue expression without array
// decay (needed for & and sizeof).
func (c *checker) undecayedType(e cast.Expr) *ctypes.Type {
	switch x := e.(type) {
	case *cast.Ident:
		if sym := c.lookup(x.Name); sym != nil {
			return sym.Type
		}
	case *cast.Member:
		if x.Field != nil {
			return x.Field.Type
		}
	case *cast.Index:
		if xt := x.X.Type(); xt != nil && xt.IsPointer() {
			return xt.Elem
		}
	case *cast.Unary:
		if x.Op == ctoken.Star {
			if xt := x.X.Type(); xt != nil && xt.IsPointer() {
				return xt.Elem
			}
		}
	}
	if t := e.Type(); t != nil {
		return t
	}
	return nil
}

func (c *checker) typeExpr(e cast.Expr) *ctypes.Type {
	switch x := e.(type) {
	case *cast.IntLit:
		if x.Value > 0x7fffffff {
			return setType(x, ctypes.LongType)
		}
		return setType(x, ctypes.IntType)

	case *cast.FloatLit:
		return setType(x, ctypes.DoubleType)

	case *cast.StringLit:
		// A string literal is a static char array; in expression context
		// it decays to char*.
		return setType(x, ctypes.ArrayOf(ctypes.CharType, int64(len(x.Value))+1))

	case *cast.Ident:
		if v, ok := c.enums[x.Name]; ok {
			x.Kind = cast.VarEnumConst
			x.EnumVal = v
			return setType(x, ctypes.IntType)
		}
		sym := c.lookup(x.Name)
		if sym == nil {
			c.errorf(x.Pos(), "undeclared identifier %q", x.Name)
			return nil
		}
		c.info.Refs[x] = sym
		switch sym.Kind {
		case SymLocal:
			x.Kind = cast.VarLocal
		case SymParam:
			x.Kind = cast.VarParam
		case SymGlobal:
			x.Kind = cast.VarGlobal
		case SymFunc:
			x.Kind = cast.VarFunc
		}
		return setType(x, sym.Type)

	case *cast.Unary:
		return c.typeUnary(x)

	case *cast.Postfix:
		t := c.typeExpr(x.X)
		if t == nil {
			return nil
		}
		if !c.isLvalue(x.X) {
			c.errorf(x.Pos(), "operand of %s must be an lvalue", x.Op)
		}
		if !t.IsScalar() {
			c.errorf(x.Pos(), "operand of %s must be scalar, have %s", x.Op, t)
		}
		return setType(x, t)

	case *cast.Binary:
		return c.typeBinary(x)

	case *cast.Assign:
		lt := c.typeExpr(x.L)
		rt := c.typeExpr(x.R)
		if lt == nil || rt == nil {
			return nil
		}
		if !c.isLvalue(x.L) {
			c.errorf(x.Pos(), "assignment target is not an lvalue")
		}
		if x.Op == ctoken.Assign {
			if !ctypes.AssignCompatible(lt, rt) {
				c.errorf(x.Pos(), "cannot assign %s to %s", rt, lt)
			}
		} else {
			// Compound assignment: pointer += int is legal; otherwise
			// both sides must be arithmetic (or integer for bit ops).
			op := compoundBase(x.Op)
			if lt.IsPointer() {
				if op != ctoken.Plus && op != ctoken.Minus || !rt.IsInteger() {
					c.errorf(x.Pos(), "invalid compound assignment on pointer")
				}
			} else if !lt.IsArithmetic() || !rt.IsArithmetic() {
				c.errorf(x.Pos(), "invalid operands to compound assignment: %s, %s", lt, rt)
			}
		}
		return setType(x, lt)

	case *cast.Cond:
		c.checkCond(x.C)
		tt := c.typeExpr(x.Then)
		et := c.typeExpr(x.Else)
		if tt == nil || et == nil {
			return nil
		}
		switch {
		case tt.IsArithmetic() && et.IsArithmetic():
			return setType(x, ctypes.UsualArithmetic(tt, et))
		case tt.IsPointer():
			return setType(x, tt)
		case et.IsPointer():
			return setType(x, et)
		default:
			return setType(x, tt)
		}

	case *cast.Comma:
		c.typeExpr(x.X)
		t := c.typeExpr(x.Y)
		if t == nil {
			return nil
		}
		return setType(x, t)

	case *cast.Cast:
		st := c.typeExpr(x.X)
		if st == nil {
			return nil
		}
		// SoftBound supports arbitrary casts; the checker allows every
		// scalar-to-scalar conversion (wild casts included).
		if !x.To.IsScalar() && x.To.Kind != ctypes.Void && !ctypes.Equal(x.To, st) {
			c.errorf(x.Pos(), "invalid cast from %s to %s", st, x.To)
		}
		return setType(x, x.To)

	case *cast.SizeofType:
		if x.OfEx != nil {
			c.typeExpr(x.OfEx)
			x.Of = c.undecayedType(x.OfEx)
			if x.Of == nil {
				return nil
			}
		}
		return setType(x, ctypes.ULongType)

	case *cast.Index:
		xt := c.typeExpr(x.X)
		it := c.typeExpr(x.I)
		if xt == nil || it == nil {
			return nil
		}
		// C allows i[p] as well as p[i].
		if !xt.IsPointer() && it.IsPointer() {
			xt, it = it, xt
			x.X, x.I = x.I, x.X
		}
		if !xt.IsPointer() {
			c.errorf(x.Pos(), "indexed expression is not a pointer or array (%s)", xt)
			return nil
		}
		if !it.IsInteger() {
			c.errorf(x.Pos(), "array index must be integer, have %s", it)
		}
		return setType(x, xt.Elem)

	case *cast.Member:
		xt := c.typeExpr(x.X)
		if xt == nil {
			return nil
		}
		var st *ctypes.Type
		if x.Arrow {
			if !xt.IsPointer() || xt.Elem.Kind != ctypes.Struct {
				c.errorf(x.Pos(), "-> on non-pointer-to-struct (%s)", xt)
				return nil
			}
			st = xt.Elem
		} else {
			// x.X may have pointer type here if it is an array member
			// access chain; require struct.
			if u := c.undecayedType(x.X); u != nil && u.Kind == ctypes.Struct {
				st = u
			} else {
				c.errorf(x.Pos(), ". on non-struct (%s)", xt)
				return nil
			}
		}
		f := st.FieldByName(x.Name)
		if f == nil {
			c.errorf(x.Pos(), "no field %q in %s", x.Name, st)
			return nil
		}
		x.Field = f
		x.Struct = st
		return setType(x, f.Type)

	case *cast.Call:
		return c.typeCall(x)
	}
	c.errorf(e.Pos(), "internal: unknown expression %T", e)
	return nil
}

func compoundBase(k ctoken.Kind) ctoken.Kind {
	switch k {
	case ctoken.PlusAssign:
		return ctoken.Plus
	case ctoken.MinusAssign:
		return ctoken.Minus
	case ctoken.StarAssign:
		return ctoken.Star
	case ctoken.SlashAssign:
		return ctoken.Slash
	case ctoken.PercentAssign:
		return ctoken.Percent
	case ctoken.AmpAssign:
		return ctoken.Amp
	case ctoken.PipeAssign:
		return ctoken.Pipe
	case ctoken.CaretAssign:
		return ctoken.Caret
	case ctoken.ShlAssign:
		return ctoken.Shl
	case ctoken.ShrAssign:
		return ctoken.Shr
	}
	return k
}

func (c *checker) typeUnary(x *cast.Unary) *ctypes.Type {
	switch x.Op {
	case ctoken.Amp:
		t := c.typeExpr(x.X)
		if t == nil {
			return nil
		}
		if !c.isLvalue(x.X) {
			// &func is allowed: function designators are not lvalues
			// but their address may be taken.
			if id, ok := x.X.(*cast.Ident); !ok || id.Kind != cast.VarFunc {
				c.errorf(x.Pos(), "cannot take address of non-lvalue")
				return nil
			}
		}
		u := c.undecayedType(x.X)
		if u == nil {
			u = t
		}
		return setType(x, ctypes.PointerTo(u))
	case ctoken.Star:
		t := c.typeExpr(x.X)
		if t == nil {
			return nil
		}
		if !t.IsPointer() {
			c.errorf(x.Pos(), "cannot dereference non-pointer (%s)", t)
			return nil
		}
		if t.Elem.Kind == ctypes.Func {
			return setType(x, t.Elem) // *fp is the function itself
		}
		return setType(x, t.Elem)
	case ctoken.Minus, ctoken.Plus:
		t := c.typeExpr(x.X)
		if t == nil {
			return nil
		}
		if !t.IsArithmetic() {
			c.errorf(x.Pos(), "unary %s on non-arithmetic type %s", x.Op, t)
			return nil
		}
		return setType(x, t.Promote())
	case ctoken.Tilde:
		t := c.typeExpr(x.X)
		if t == nil {
			return nil
		}
		if !t.IsInteger() {
			c.errorf(x.Pos(), "~ on non-integer type %s", t)
			return nil
		}
		return setType(x, t.Promote())
	case ctoken.Not:
		t := c.typeExpr(x.X)
		if t == nil {
			return nil
		}
		if !t.IsScalar() {
			c.errorf(x.Pos(), "! on non-scalar type %s", t)
		}
		return setType(x, ctypes.IntType)
	case ctoken.Inc, ctoken.Dec:
		t := c.typeExpr(x.X)
		if t == nil {
			return nil
		}
		if !c.isLvalue(x.X) {
			c.errorf(x.Pos(), "operand of %s must be an lvalue", x.Op)
		}
		if !t.IsScalar() {
			c.errorf(x.Pos(), "operand of %s must be scalar, have %s", x.Op, t)
		}
		return setType(x, t)
	}
	c.errorf(x.Pos(), "internal: unknown unary op %s", x.Op)
	return nil
}

func (c *checker) typeBinary(x *cast.Binary) *ctypes.Type {
	lt := c.typeExpr(x.X)
	rt := c.typeExpr(x.Y)
	if lt == nil || rt == nil {
		return nil
	}
	switch x.Op {
	case ctoken.Plus:
		switch {
		case lt.IsPointer() && rt.IsInteger():
			return setType(x, lt)
		case lt.IsInteger() && rt.IsPointer():
			return setType(x, rt)
		case lt.IsArithmetic() && rt.IsArithmetic():
			return setType(x, ctypes.UsualArithmetic(lt, rt))
		}
		c.errorf(x.Pos(), "invalid operands to +: %s, %s", lt, rt)
		return nil
	case ctoken.Minus:
		switch {
		case lt.IsPointer() && rt.IsInteger():
			return setType(x, lt)
		case lt.IsPointer() && rt.IsPointer():
			return setType(x, ctypes.LongType)
		case lt.IsArithmetic() && rt.IsArithmetic():
			return setType(x, ctypes.UsualArithmetic(lt, rt))
		}
		c.errorf(x.Pos(), "invalid operands to -: %s, %s", lt, rt)
		return nil
	case ctoken.Star, ctoken.Slash:
		if !lt.IsArithmetic() || !rt.IsArithmetic() {
			c.errorf(x.Pos(), "invalid operands to %s: %s, %s", x.Op, lt, rt)
			return nil
		}
		return setType(x, ctypes.UsualArithmetic(lt, rt))
	case ctoken.Percent, ctoken.Amp, ctoken.Pipe, ctoken.Caret,
		ctoken.Shl, ctoken.Shr:
		if !lt.IsInteger() || !rt.IsInteger() {
			c.errorf(x.Pos(), "invalid operands to %s: %s, %s", x.Op, lt, rt)
			return nil
		}
		if x.Op == ctoken.Shl || x.Op == ctoken.Shr {
			return setType(x, lt.Promote())
		}
		return setType(x, ctypes.UsualArithmetic(lt, rt))
	case ctoken.Lt, ctoken.Gt, ctoken.Le, ctoken.Ge, ctoken.Eq, ctoken.Ne:
		ok := (lt.IsArithmetic() && rt.IsArithmetic()) ||
			(lt.IsPointer() && rt.IsPointer()) ||
			(lt.IsPointer() && rt.IsInteger()) || // p == 0
			(lt.IsInteger() && rt.IsPointer())
		if !ok {
			c.errorf(x.Pos(), "invalid comparison: %s %s %s", lt, x.Op, rt)
		}
		return setType(x, ctypes.IntType)
	case ctoken.AndAnd, ctoken.OrOr:
		if !lt.IsScalar() || !rt.IsScalar() {
			c.errorf(x.Pos(), "invalid operands to %s: %s, %s", x.Op, lt, rt)
		}
		return setType(x, ctypes.IntType)
	}
	c.errorf(x.Pos(), "internal: unknown binary op %s", x.Op)
	return nil
}

func (c *checker) typeCall(x *cast.Call) *ctypes.Type {
	var ft *ctypes.Type
	if id, ok := x.Target.(*cast.Ident); ok {
		if sym := c.lookup(id.Name); sym != nil && sym.Kind == SymFunc {
			id.Kind = cast.VarFunc
			c.info.Refs[id] = sym
			setType(id, sym.Type)
			x.Direct = id.Name
			ft = sym.Type
		} else if sym == nil {
			// Implicitly declared function: int f(...). This mirrors
			// the paper's observation that incomplete prototypes are
			// common; the call-site transformation still works.
			fnType := ctypes.FuncOf(ctypes.IntType, nil, true)
			fsym := &Symbol{Name: id.Name, Kind: SymFunc, Type: fnType}
			c.scopes[0][id.Name] = fsym
			c.info.FuncSyms[id.Name] = fsym
			c.info.Refs[id] = fsym
			id.Kind = cast.VarFunc
			setType(id, fnType)
			x.Direct = id.Name
			ft = fnType
		}
	}
	if ft == nil {
		t := c.typeExpr(x.Target)
		if t == nil {
			return nil
		}
		switch {
		case t.Kind == ctypes.Func:
			ft = t
		case t.IsFuncPointer():
			ft = t.Elem
		default:
			c.errorf(x.Pos(), "called object is not a function (%s)", t)
			return nil
		}
	}
	// Check arguments.
	nParams := len(ft.Params)
	if len(x.Args) < nParams || (!ft.Variadic && len(x.Args) > nParams) {
		c.errorf(x.Pos(), "call has %d args, function takes %d%s",
			len(x.Args), nParams, variadicSuffix(ft.Variadic))
	}
	for i, a := range x.Args {
		at := c.typeExpr(a)
		if at == nil {
			continue
		}
		if i < nParams && !ctypes.AssignCompatible(ft.Params[i], at) {
			c.errorf(a.Pos(), "argument %d: cannot pass %s as %s", i+1, at, ft.Params[i])
		}
	}
	return setType(x, ft.Elem)
}

func variadicSuffix(v bool) string {
	if v {
		return "+"
	}
	return ""
}

// isLvalue reports whether e designates an object.
func (c *checker) isLvalue(e cast.Expr) bool {
	switch x := e.(type) {
	case *cast.Ident:
		return x.Kind == cast.VarLocal || x.Kind == cast.VarParam || x.Kind == cast.VarGlobal
	case *cast.Unary:
		return x.Op == ctoken.Star
	case *cast.Index:
		return true
	case *cast.Member:
		if x.Arrow {
			return true
		}
		return c.isLvalue(x.X)
	case *cast.StringLit:
		return true
	}
	return false
}
