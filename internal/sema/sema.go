// Package sema implements semantic analysis for the C subset: name
// resolution with block scoping, type checking with C's conversion rules,
// lvalue checking, and call signature checking. It annotates the AST with
// types and produces an Info table that maps identifier uses to symbols,
// which the IR generator consumes.
package sema

import (
	"fmt"
	"strings"

	"softbound/internal/cast"
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
)

// SymKind classifies symbols.
type SymKind int

// Symbol kinds.
const (
	SymLocal SymKind = iota
	SymParam
	SymGlobal
	SymFunc
)

// Symbol is a named program entity.
type Symbol struct {
	Name string
	Kind SymKind
	Type *ctypes.Type
	// ID is unique within a function for locals/params, and unique
	// within the unit for globals. irgen uses it to name storage.
	ID int
	// Decl links back to the declaration (a *cast.VarDecl or *cast.FuncDecl).
	Decl cast.Node
}

// FuncInfo carries per-function analysis results.
type FuncInfo struct {
	Decl   *cast.FuncDecl
	Sym    *Symbol
	Params []*Symbol
	Locals []*Symbol // all block-scoped locals, flattened, unique IDs
	Labels map[string]bool
}

// Info is the result of analysis.
type Info struct {
	Unit  *cast.TranslationUnit
	Refs  map[*cast.Ident]*Symbol
	Funcs map[string]*FuncInfo
	// Globals in declaration order (tentative+extern collapsed).
	Globals []*Symbol
	// FuncSyms maps function name to its symbol.
	FuncSyms map[string]*Symbol
}

// ErrorList accumulates semantic errors.
type ErrorList []error

func (l ErrorList) Error() string {
	var b strings.Builder
	for i, e := range l {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(e.Error())
	}
	return b.String()
}

type checker struct {
	info *Info
	errs ErrorList

	// scopes is a stack of name→symbol maps; scopes[0] is file scope.
	scopes []map[string]*Symbol

	fn      *FuncInfo
	localID int
	enums   map[string]int64
}

// Analyze type-checks the unit. Externs is a set of previously analyzed
// units whose functions and globals are visible (separate compilation);
// it may be nil.
func Analyze(unit *cast.TranslationUnit, externs ...*Info) (*Info, error) {
	c := &checker{
		info: &Info{
			Unit:     unit,
			Refs:     make(map[*cast.Ident]*Symbol),
			Funcs:    make(map[string]*FuncInfo),
			FuncSyms: make(map[string]*Symbol),
		},
		enums: unit.Enums,
	}
	fileScope := make(map[string]*Symbol)
	c.scopes = []map[string]*Symbol{fileScope}

	// Import externally visible symbols from other units.
	for _, ext := range externs {
		if ext == nil {
			continue
		}
		for _, g := range ext.Globals {
			if _, ok := fileScope[g.Name]; !ok {
				fileScope[g.Name] = g
			}
		}
		for name, s := range ext.FuncSyms {
			if _, ok := fileScope[name]; !ok {
				fileScope[name] = s
			}
		}
	}

	// Declare all functions and globals first (C allows forward use of
	// functions declared earlier in the file; we are slightly more
	// permissive and allow any order, which the benchmarks rely on).
	gid := 0
	for _, g := range unit.Globals {
		if prev, ok := fileScope[g.Name]; ok {
			// Tentative redefinition: keep the completed type.
			if prev.Kind == SymGlobal && g.Type.IsComplete() {
				prev.Type = g.Type
			}
			continue
		}
		sym := &Symbol{Name: g.Name, Kind: SymGlobal, Type: g.Type, ID: gid, Decl: g}
		gid++
		fileScope[g.Name] = sym
		c.info.Globals = append(c.info.Globals, sym)
	}
	for _, f := range unit.Funcs {
		if prev, ok := fileScope[f.Name]; ok {
			if prev.Kind != SymFunc {
				c.errorf(f.Pos(), "%q redeclared as function", f.Name)
			}
			c.info.FuncSyms[f.Name] = prev
			continue
		}
		sym := &Symbol{Name: f.Name, Kind: SymFunc, Type: f.FuncType(), Decl: f}
		fileScope[f.Name] = sym
		c.info.FuncSyms[f.Name] = sym
	}

	// Check global initializers (identifiers within them must resolve —
	// address-of-global and function-designator initializers are legal
	// constants).
	for _, g := range unit.Globals {
		if g.Init == nil {
			continue
		}
		if g.Type.Kind == ctypes.Array && g.Type.ArrayLen < 0 {
			g.Type = completeArrayFromInit(g.Type, g.Init)
			if sym := fileScope[g.Name]; sym != nil {
				sym.Type = g.Type
			}
		}
		c.checkInit(g.Type, g.Init)
	}

	// Check function bodies.
	for _, f := range unit.Funcs {
		if f.Body == nil {
			continue
		}
		if prev, ok := c.info.Funcs[f.Name]; ok && prev.Decl.Body != nil {
			c.errorf(f.Pos(), "function %q redefined", f.Name)
			continue
		}
		c.checkFunc(f)
	}
	if len(c.errs) > 0 {
		return c.info, c.errs
	}
	return c.info, nil
}

func (c *checker) errorf(pos ctoken.Pos, format string, args ...interface{}) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol, pos ctoken.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, ok := top[sym.Name]; ok {
		c.errorf(pos, "%q redeclared in this scope", sym.Name)
		return
	}
	top[sym.Name] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) checkFunc(f *cast.FuncDecl) {
	fi := &FuncInfo{
		Decl:   f,
		Sym:    c.scopes[0][f.Name],
		Labels: make(map[string]bool),
	}
	c.info.Funcs[f.Name] = fi
	c.fn = fi
	c.localID = 0
	c.push()
	for _, p := range f.Params {
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type.Decay(), ID: c.localID, Decl: f}
		c.localID++
		fi.Params = append(fi.Params, sym)
		if p.Name != "" {
			c.declare(sym, f.Pos())
		}
	}
	collectLabels(f.Body, fi.Labels)
	c.checkStmt(f.Body)
	c.pop()
	c.fn = nil
}

func collectLabels(s cast.Stmt, labels map[string]bool) {
	switch x := s.(type) {
	case *cast.Labeled:
		labels[x.Label] = true
		collectLabels(x.Stmt, labels)
	case *cast.Block:
		for _, st := range x.Stmts {
			collectLabels(st, labels)
		}
	case *cast.If:
		collectLabels(x.Then, labels)
		if x.Else != nil {
			collectLabels(x.Else, labels)
		}
	case *cast.While:
		collectLabels(x.Body, labels)
	case *cast.DoWhile:
		collectLabels(x.Body, labels)
	case *cast.For:
		collectLabels(x.Body, labels)
	case *cast.Switch:
		for _, cs := range x.Cases {
			for _, st := range cs.Body {
				collectLabels(st, labels)
			}
		}
	}
}

// ---------------------------------------------------------------- statements

func (c *checker) checkStmt(s cast.Stmt) {
	switch x := s.(type) {
	case *cast.Block:
		c.push()
		for _, st := range x.Stmts {
			c.checkStmt(st)
		}
		c.pop()
	case *cast.ExprStmt:
		c.checkExpr(x.X)
	case *cast.DeclStmt:
		for _, d := range x.Decls {
			if !d.Type.IsComplete() && d.Type.Kind != ctypes.Array {
				c.errorf(d.Pos(), "variable %q has incomplete type %s", d.Name, d.Type)
			}
			// An incomplete array completed by its initializer:
			// char s[] = "hi"; int a[] = {1,2,3};
			if d.Type.Kind == ctypes.Array && d.Type.ArrayLen < 0 && d.Init != nil {
				d.Type = completeArrayFromInit(d.Type, d.Init)
			}
			sym := &Symbol{Name: d.Name, Kind: SymLocal, Type: d.Type, ID: c.localID, Decl: d}
			c.localID++
			c.fn.Locals = append(c.fn.Locals, sym)
			c.declare(sym, d.Pos())
			if d.Init != nil {
				c.checkInit(d.Type, d.Init)
			}
		}
	case *cast.If:
		c.checkCond(x.Cond)
		c.checkStmt(x.Then)
		if x.Else != nil {
			c.checkStmt(x.Else)
		}
	case *cast.While:
		c.checkCond(x.Cond)
		c.checkStmt(x.Body)
	case *cast.DoWhile:
		c.checkStmt(x.Body)
		c.checkCond(x.Cond)
	case *cast.For:
		c.push()
		if x.Init != nil {
			c.checkStmt(x.Init)
		}
		if x.Cond != nil {
			c.checkCond(x.Cond)
		}
		if x.Post != nil {
			c.checkExpr(x.Post)
		}
		c.checkStmt(x.Body)
		c.pop()
	case *cast.Return:
		ret := c.fn.Decl.Ret
		if x.X != nil {
			t := c.checkExpr(x.X)
			if ret.Kind == ctypes.Void {
				c.errorf(x.Pos(), "return with value in void function %q", c.fn.Decl.Name)
			} else if t != nil && !ctypes.AssignCompatible(ret, t) {
				c.errorf(x.Pos(), "cannot return %s from function returning %s", t, ret)
			}
		} else if ret.Kind != ctypes.Void {
			// Returning nothing from a non-void function is accepted
			// (common in legacy C); the value is unspecified.
			_ = ret
		}
	case *cast.Break, *cast.Continue:
		// Loop context checking is handled syntactically by irgen.
	case *cast.Goto:
		if !c.fn.Labels[x.Label] {
			c.errorf(x.Pos(), "goto undefined label %q", x.Label)
		}
	case *cast.Labeled:
		c.checkStmt(x.Stmt)
	case *cast.Switch:
		t := c.checkExpr(x.Tag)
		if t != nil && !t.IsInteger() {
			c.errorf(x.Pos(), "switch tag must be integer, have %s", t)
		}
		seen := make(map[int64]bool)
		sawDefault := false
		for _, cs := range x.Cases {
			if cs.IsDefault {
				if sawDefault {
					c.errorf(cs.Pos, "duplicate default case")
				}
				sawDefault = true
			} else {
				if seen[cs.Value] {
					c.errorf(cs.Pos, "duplicate case value %d", cs.Value)
				}
				seen[cs.Value] = true
			}
			c.push()
			for _, st := range cs.Body {
				c.checkStmt(st)
			}
			c.pop()
		}
	default:
		c.errorf(s.Pos(), "internal: unknown statement %T", s)
	}
}

func (c *checker) checkCond(e cast.Expr) {
	t := c.checkExpr(e)
	if t != nil && !t.IsScalar() {
		c.errorf(e.Pos(), "condition must be scalar, have %s", t)
	}
}

func completeArrayFromInit(t *ctypes.Type, init *cast.Init) *ctypes.Type {
	if init.Expr != nil {
		if s, ok := init.Expr.(*cast.StringLit); ok {
			return ctypes.ArrayOf(t.Elem, int64(len(s.Value))+1)
		}
		return t
	}
	return ctypes.ArrayOf(t.Elem, int64(len(init.List)))
}

func (c *checker) checkInit(t *ctypes.Type, init *cast.Init) {
	if init.Expr != nil {
		if s, ok := init.Expr.(*cast.StringLit); ok && t.Kind == ctypes.Array {
			s.SetType(ctypes.ArrayOf(ctypes.CharType, int64(len(s.Value))+1))
			if t.ArrayLen >= 0 && int64(len(s.Value))+1 > t.ArrayLen+1 {
				c.errorf(init.Pos, "string too long for array of %d", t.ArrayLen)
			}
			return
		}
		et := c.checkExpr(init.Expr)
		if et != nil && !ctypes.AssignCompatible(t.Decay(), et) && t.Kind != ctypes.Array {
			c.errorf(init.Pos, "cannot initialize %s with %s", t, et)
		}
		return
	}
	// Brace list.
	switch t.Kind {
	case ctypes.Array:
		for i, item := range init.List {
			if t.ArrayLen >= 0 && int64(i) >= t.ArrayLen {
				c.errorf(item.Pos, "too many initializers for %s", t)
				break
			}
			c.checkInit(t.Elem, item)
		}
	case ctypes.Struct:
		for i, item := range init.List {
			if i >= len(t.Fields) {
				c.errorf(item.Pos, "too many initializers for %s", t)
				break
			}
			c.checkInit(t.Fields[i].Type, item)
		}
	default:
		if len(init.List) == 1 {
			c.checkInit(t, init.List[0])
			return
		}
		c.errorf(init.Pos, "brace initializer for scalar %s", t)
	}
}
