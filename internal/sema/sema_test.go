package sema

import (
	"strings"
	"testing"

	"softbound/internal/cparser"
)

func analyze(t *testing.T, src string) (*Info, error) {
	t.Helper()
	unit, err := cparser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(unit)
}

func mustAnalyze(t *testing.T, src string) *Info {
	t.Helper()
	info, err := analyze(t, src)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func wantError(t *testing.T, src, frag string) {
	t.Helper()
	_, err := analyze(t, src)
	if err == nil {
		t.Fatalf("expected error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

func TestScoping(t *testing.T) {
	info := mustAnalyze(t, `
int x;
int f(int x) {
    int y = x;
    {
        int x = 2;
        y += x;
    }
    return y + x;
}`)
	fi := info.Funcs["f"]
	if fi == nil || len(fi.Locals) != 2 {
		t.Fatalf("locals: %+v", fi)
	}
}

func TestUndeclaredIdentifier(t *testing.T) {
	wantError(t, `int f(void) { return zz; }`, "undeclared")
}

func TestRedeclaration(t *testing.T) {
	wantError(t, `int f(void) { int a; int a; return 0; }`, "redeclared")
}

func TestImplicitFunctionDeclaration(t *testing.T) {
	// Calling an undeclared function implicitly declares int(...)
	// (paper: incomplete prototypes are common; the transformation
	// still works).
	info := mustAnalyze(t, `int f(void) { return g(1, 2); }`)
	if info.FuncSyms["g"] == nil {
		t.Fatal("implicit declaration missing")
	}
}

func TestPointerTypeRules(t *testing.T) {
	mustAnalyze(t, `
int f(void) {
    int a[10];
    int* p = a;          /* decay */
    int* q = p + 3;      /* ptr + int */
    long d = q - p;      /* ptr - ptr */
    int v = *q;
    char* c = (char*)p;  /* wild cast ok */
    p = (int*)c;
    return v + (int)d + (p == q);
}`)
	wantError(t, `int f(int* p, int* q) { return (int)(p + q); }`, "invalid operands")
	wantError(t, `double g; int f(void) { return g % 2; }`, "invalid operands")
}

func TestLvalueChecking(t *testing.T) {
	wantError(t, `int f(int x) { x + 1 = 2; return x; }`, "lvalue")
	wantError(t, `int f(int x) { &(x + 1); return x; }`, "address")
	mustAnalyze(t, `
struct s { int a; };
int f(void) {
    struct s v;
    struct s* p = &v;
    v.a = 1;
    p->a = 2;
    (*p).a = 3;
    return v.a;
}`)
}

func TestMemberResolution(t *testing.T) {
	wantError(t, `
struct s { int a; };
int f(void) { struct s v; return v.b; }`, "no field")
	wantError(t, `int f(int x) { return x.a; }`, "non-struct")
}

func TestCallChecking(t *testing.T) {
	wantError(t, `
int g(int a, int b);
int f(void) { return g(1); }`, "call has 1 args")
	mustAnalyze(t, `
int g(char* fmt, ...);
int f(void) { return g("x", 1, 2, 3); }`)
	wantError(t, `int f(void) { int x; return x(1); }`, "not a function")
}

func TestVoidReturn(t *testing.T) {
	wantError(t, `void f(void) { return 3; }`, "void function")
	mustAnalyze(t, `int f(void) { return; }`) // legacy C allows
}

func TestSwitchChecks(t *testing.T) {
	wantError(t, `
int f(int x) {
    switch (x) {
    case 1: return 1;
    case 1: return 2;
    }
    return 0;
}`, "duplicate case")
	wantError(t, `
double d;
int f(void) { switch (d) { default: return 0; } }`, "integer")
}

func TestGotoUndefinedLabel(t *testing.T) {
	wantError(t, `int f(void) { goto nowhere; return 0; }`, "undefined label")
}

func TestSeparateCompilationImports(t *testing.T) {
	libUnit, err := cparser.Parse("lib.c", `
int helper(int* p, int n) { return p[0] + n; }
int shared_global;
`)
	if err != nil {
		t.Fatal(err)
	}
	libInfo, err := Analyze(libUnit)
	if err != nil {
		t.Fatal(err)
	}
	mainUnit, err := cparser.Parse("main.c", `
int main(void) {
    int a[4];
    shared_global = 2;
    return helper(a, shared_global);
}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(mainUnit, libInfo); err != nil {
		t.Fatalf("cross-unit analysis: %v", err)
	}
}

func TestIncompleteArrayCompletion(t *testing.T) {
	info := mustAnalyze(t, `
int f(void) {
    char s[] = "hello";
    int a[] = {1, 2, 3, 4};
    return (int)sizeof(s) + (int)sizeof(a);
}`)
	fi := info.Funcs["f"]
	if fi.Locals[0].Type.ArrayLen != 6 {
		t.Errorf("s len %d want 6", fi.Locals[0].Type.ArrayLen)
	}
	if fi.Locals[1].Type.ArrayLen != 4 {
		t.Errorf("a len %d want 4", fi.Locals[1].Type.ArrayLen)
	}
}
