// Package formal mechanizes §4 of the paper: a non-standard operational
// semantics for a straight-line fragment of C that propagates base/bound
// metadata and performs the bounds-check assertions SoftBound inserts.
// The paper proves Preservation and Progress in Coq; here the same
// semantics, well-formedness predicate, and theorems are stated
// executably and validated by exhaustive property-based testing
// (testing/quick) over randomly generated well-typed programs.
//
// The fragment (paper §4.1):
//
//	Atomic Types  a ::= int | p*
//	Pointer Types p ::= a | s | n | void
//	Struct Types  s ::= struct{...; id_i : a_i; ...}
//	LHS           lhs ::= x | *lhs | lhs.id
//	RHS           rhs ::= i | rhs+rhs | lhs | &lhs | (a)rhs
//	                    | sizeof(a) | malloc(rhs)
//	Commands      c ::= c ; c | lhs = rhs
//
// Memory is a partial map from abstract locations to values; each stored
// value carries its (base, bound) metadata, modelling SoftBound's
// disjoint metadata space. The semantics is *undefined* (Stuck) exactly
// when an un-instrumented C program would commit a spatial violation;
// the theorems assert instrumented programs never reach that state.
package formal

import (
	"fmt"
	"sort"
)

// ---------------------------------------------------------------- types

// TypeKind discriminates the fragment's types.
type TypeKind int

// Type kinds of the fragment.
const (
	TInt TypeKind = iota
	TPtr
	TStruct
	TVoid
)

// Type is a type of the fragment. Pointers point to any Type; struct
// fields have atomic types (int or pointer), as in the paper's grammar.
type Type struct {
	Kind TypeKind
	Elem *Type // TPtr
	// Fields of a struct: names and atomic types.
	FieldNames []string
	FieldTypes []*Type
	Name       string // named structs permit recursion
}

// IntT and helpers construct types.
var IntT = &Type{Kind: TInt}

// VoidT is the void type.
var VoidT = &Type{Kind: TVoid}

// Ptr returns a pointer type.
func Ptr(t *Type) *Type { return &Type{Kind: TPtr, Elem: t} }

// StructT builds a struct type.
func StructT(name string, fields []string, types []*Type) *Type {
	return &Type{Kind: TStruct, Name: name, FieldNames: fields, FieldTypes: types}
}

// Sizeof returns the size of a type in abstract locations (each location
// holds one scalar, as in the paper's word-level model).
func Sizeof(t *Type) int {
	switch t.Kind {
	case TInt, TPtr:
		return 1
	case TStruct:
		n := 0
		for _, ft := range t.FieldTypes {
			n += Sizeof(ft)
		}
		return n
	}
	return 1
}

// fieldOffset returns the location offset and type of a field.
func (t *Type) fieldOffset(name string) (int, *Type, bool) {
	off := 0
	for i, fn := range t.FieldNames {
		if fn == name {
			return off, t.FieldTypes[i], true
		}
		off += Sizeof(t.FieldTypes[i])
	}
	return 0, nil, false
}

// atomic reports whether t is an atomic type (int or pointer) — the
// only types that can be loaded/stored.
func atomic(t *Type) bool { return t.Kind == TInt || t.Kind == TPtr }

// equalType is structural equality (named structs by name).
func equalType(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case TPtr:
		return equalType(a.Elem, b.Elem)
	case TStruct:
		return a.Name == b.Name
	}
	return true
}

// ---------------------------------------------------------------- syntax

// LHS is a left-hand-side expression.
type LHS interface{ lhs() }

// Var is a variable reference.
type Var struct{ Name string }

// Deref is *lhs.
type Deref struct{ X LHS }

// Field is lhs.id.
type Field struct {
	X  LHS
	ID string
}

func (Var) lhs()   {}
func (Deref) lhs() {}
func (Field) lhs() {}

// RHS is a right-hand-side expression.
type RHS interface{ rhs() }

// IntLit is an integer constant.
type IntLit struct{ V int }

// Add is rhs + rhs (integer addition).
type Add struct{ A, B RHS }

// Use reads an lhs.
type Use struct{ X LHS }

// Addr is &lhs.
type Addr struct{ X LHS }

// Cast is (a)rhs — including wild casts between int and pointers.
type Cast struct {
	To *Type
	X  RHS
}

// SizeofE is sizeof(a).
type SizeofE struct{ Of *Type }

// Malloc is malloc(rhs).
type Malloc struct{ N RHS }

func (IntLit) rhs()  {}
func (Add) rhs()     {}
func (Use) rhs()     {}
func (Addr) rhs()    {}
func (Cast) rhs()    {}
func (SizeofE) rhs() {}
func (Malloc) rhs()  {}

// Cmd is a command.
type Cmd interface{ cmd() }

// Assign is lhs = rhs.
type Assign struct {
	L LHS
	R RHS
}

// Seq is c ; c.
type Seq struct{ A, B Cmd }

func (Assign) cmd() {}
func (Seq) cmd()    {}

// ---------------------------------------------------------------- machine

// Value is a metadata-carrying value v(b,e) (paper §4.2).
type Value struct {
	V    int // the underlying data (an integer or an address)
	B, E int // base and bound metadata
}

// Env is the evaluation environment: the stack frame S mapping variables
// to addresses and atomic types, and the memory M.
type Env struct {
	Vars  map[string]VarBinding
	Mem   *Memory
	Limit int // memory capacity (drives OutOfMem)
}

// VarBinding is S(x): the variable's address and type.
type VarBinding struct {
	Addr int
	Type *Type
}

// Memory is the partial map M from locations to values, with the three
// primitive operations of Table 2 (read, write, malloc).
type Memory struct {
	cells map[int]Value
	next  int
	limit int
}

// NewMemory returns an empty memory with the given capacity.
func NewMemory(limit int) *Memory {
	return &Memory{cells: make(map[int]Value), next: 1, limit: limit}
}

// Read returns the value at l if l is accessible (Table 2: read).
func (m *Memory) Read(l int) (Value, bool) {
	v, ok := m.cells[l]
	return v, ok
}

// Write updates l if accessible (Table 2: write).
func (m *Memory) Write(l int, v Value) bool {
	if _, ok := m.cells[l]; !ok {
		return false
	}
	m.cells[l] = v
	return true
}

// Valid reports whether l is allocated (the val M i predicate).
func (m *Memory) Valid(l int) bool {
	_, ok := m.cells[l]
	return ok
}

// Malloc allocates i fresh consecutive locations (Table 2: malloc). It
// returns 0 when space is exhausted, and the axioms hold by
// construction: the region was previously unallocated and existing
// contents are untouched.
func (m *Memory) Malloc(i int) int {
	if i <= 0 || m.next+i > m.limit {
		return 0
	}
	base := m.next
	for k := 0; k < i; k++ {
		m.cells[base+k] = Value{}
	}
	m.next += i
	return base
}

// MinAddr and MaxAddr bound valid metadata (the paper's minAddr/maxAddr).
func (m *Memory) MinAddr() int { return 1 }

// MaxAddr returns the exclusive upper bound of allocatable addresses.
func (m *Memory) MaxAddr() int { return m.limit }

// ---------------------------------------------------------------- results

// ResultKind classifies evaluation outcomes (paper §4.2: values, Abort,
// OutOfMem, OK — plus Stuck, the state the theorems rule out).
type ResultKind int

// Evaluation outcomes.
const (
	ROK ResultKind = iota
	RAbort
	ROutOfMem
	// RStuck marks undefined behaviour: the un-instrumented semantics
	// would access unallocated memory. Progress asserts instrumented
	// programs never produce it.
	RStuck
)

func (r ResultKind) String() string {
	return [...]string{"ok", "abort", "outofmem", "stuck"}[r]
}

// ---------------------------------------------------------------- eval

// EvalLHS evaluates an lhs to an address and its atomic type:
// (E, lhs) ⇒l r : a.
func EvalLHS(env *Env, l LHS) (addr Value, t *Type, rk ResultKind) {
	switch x := l.(type) {
	case Var:
		vb, ok := env.Vars[x.Name]
		if !ok {
			return Value{}, nil, RStuck
		}
		// Variables live in valid frame locations; their address
		// carries the variable's own extent as metadata.
		return Value{V: vb.Addr, B: vb.Addr, E: vb.Addr + Sizeof(vb.Type)}, vb.Type, ROK

	case Deref:
		a, t, rk := EvalLHS(env, x.X)
		if rk != ROK {
			return Value{}, nil, rk
		}
		if t.Kind != TPtr {
			return Value{}, nil, RStuck
		}
		// Load the pointer value (with metadata) from memory; this is
		// the dereference rule of §4.2: abort when the bounds check
		// fails, read when it succeeds.
		v, ok := env.Mem.Read(a.V)
		if !ok {
			return Value{}, nil, RStuck
		}
		elem := t.Elem
		size := Sizeof(elem)
		if !(v.B <= v.V && v.V+size <= v.E) || v.B == 0 {
			return Value{}, nil, RAbort
		}
		return Value{V: v.V, B: v.B, E: v.E}, elem, ROK

	case Field:
		a, t, rk := EvalLHS(env, x.X)
		if rk != ROK {
			return Value{}, nil, rk
		}
		if t.Kind != TStruct {
			return Value{}, nil, RStuck
		}
		off, ft, ok := t.fieldOffset(x.ID)
		if !ok {
			return Value{}, nil, RStuck
		}
		// Bounds shrink to the field (paper §3.1): the resulting
		// address's metadata covers just the field.
		fa := a.V + off
		return Value{V: fa, B: fa, E: fa + Sizeof(ft)}, ft, ROK
	}
	return Value{}, nil, RStuck
}

// EvalRHS evaluates an rhs to a typed value: (E, rhs) ⇒r (r:a, E').
func EvalRHS(env *Env, r RHS) (Value, *Type, ResultKind) {
	switch x := r.(type) {
	case IntLit:
		return Value{V: x.V}, IntT, ROK

	case Add:
		a, ta, rk := EvalRHS(env, x.A)
		if rk != ROK {
			return Value{}, nil, rk
		}
		b, tb, rk := EvalRHS(env, x.B)
		if rk != ROK {
			return Value{}, nil, rk
		}
		// Pointer arithmetic inherits metadata (paper §3.1); int+int
		// is plain arithmetic.
		switch {
		case ta.Kind == TPtr && tb.Kind == TInt:
			return Value{V: a.V + b.V, B: a.B, E: a.E}, ta, ROK
		case ta.Kind == TInt && tb.Kind == TPtr:
			return Value{V: a.V + b.V, B: b.B, E: b.E}, tb, ROK
		case ta.Kind == TInt && tb.Kind == TInt:
			return Value{V: a.V + b.V}, IntT, ROK
		}
		return Value{}, nil, RStuck

	case Use:
		a, t, rk := EvalLHS(env, x.X)
		if rk != ROK {
			return Value{}, nil, rk
		}
		if !atomic(t) {
			return Value{}, nil, RStuck
		}
		// The access check: a's metadata brackets the object.
		if !(a.B <= a.V && a.V+Sizeof(t) <= a.E) || a.B == 0 {
			return Value{}, nil, RAbort
		}
		v, ok := env.Mem.Read(a.V)
		if !ok {
			return Value{}, nil, RStuck
		}
		if t.Kind == TInt {
			// Loading a non-pointer strips metadata.
			return Value{V: v.V}, IntT, ROK
		}
		return v, t, ROK

	case Addr:
		a, t, rk := EvalLHS(env, x.X)
		if rk != ROK {
			return Value{}, nil, rk
		}
		return a, Ptr(t), ROK

	case Cast:
		v, t, rk := EvalRHS(env, x.X)
		if rk != ROK {
			return Value{}, nil, rk
		}
		switch {
		case x.To.Kind == TPtr && t.Kind == TInt:
			// Manufacturing a pointer from an integer yields NULL
			// bounds (paper §5.2): any dereference aborts.
			return Value{V: v.V, B: 0, E: 0}, x.To, ROK
		case x.To.Kind == TInt && t.Kind == TPtr:
			return Value{V: v.V}, IntT, ROK
		case x.To.Kind == TPtr && t.Kind == TPtr:
			// Wild pointer cast: metadata flows unchanged (§5.2).
			return Value{V: v.V, B: v.B, E: v.E}, x.To, ROK
		case x.To.Kind == TInt && t.Kind == TInt:
			return v, IntT, ROK
		}
		return Value{}, nil, RStuck

	case SizeofE:
		return Value{V: Sizeof(x.Of)}, IntT, ROK

	case Malloc:
		n, t, rk := EvalRHS(env, x.N)
		if rk != ROK {
			return Value{}, nil, rk
		}
		if t.Kind != TInt {
			return Value{}, nil, RStuck
		}
		if n.V <= 0 {
			// malloc(0) / negative: NULL pointer with NULL bounds.
			return Value{V: 0, B: 0, E: 0}, Ptr(VoidT), ROK
		}
		base := env.Mem.Malloc(n.V)
		if base == 0 {
			return Value{}, nil, ROutOfMem
		}
		return Value{V: base, B: base, E: base + n.V}, Ptr(VoidT), ROK
	}
	return Value{}, nil, RStuck
}

// EvalCmd evaluates a command: (E, c) ⇒c (r, E').
func EvalCmd(env *Env, c Cmd) ResultKind {
	switch x := c.(type) {
	case Assign:
		a, t, rk := EvalLHS(env, x.L)
		if rk != ROK {
			return rk
		}
		if !atomic(t) {
			return RStuck
		}
		v, vt, rk := EvalRHS(env, x.R)
		if rk != ROK {
			return rk
		}
		// Store check.
		if !(a.B <= a.V && a.V+Sizeof(t) <= a.E) || a.B == 0 {
			return RAbort
		}
		stored := v
		if t.Kind == TInt {
			// Storing an integer (possibly a cast-away pointer)
			// leaves no pointer metadata at the location.
			stored = Value{V: v.V}
		} else if vt.Kind != TPtr {
			// Storing a non-pointer into a pointer cell clears
			// metadata: the cell can no longer be dereferenced.
			stored = Value{V: v.V}
		}
		if !env.Mem.Write(a.V, stored) {
			return RStuck
		}
		return ROK

	case Seq:
		if rk := EvalCmd(env, x.A); rk != ROK {
			return rk
		}
		return EvalCmd(env, x.B)
	}
	return RStuck
}

// ---------------------------------------------------------- wellformedness

// WFValue is the paper's M ⊢D d(b,e) predicate: metadata is either NULL
// or brackets a fully allocated region within [minAddr, maxAddr).
func WFValue(m *Memory, v Value) bool {
	if v.B == 0 {
		return true
	}
	if !(m.MinAddr() <= v.B && v.B <= v.E && v.E < m.MaxAddr()+1) {
		return false
	}
	for i := v.B; i < v.E; i++ {
		if !m.Valid(i) {
			return false
		}
	}
	return true
}

// WFMem is ⊢M M: every allocated location's stored metadata is
// well-formed.
func WFMem(m *Memory) bool {
	for _, v := range m.cells {
		if !WFValue(m, v) {
			return false
		}
	}
	return true
}

// WFEnv is ⊢E E: a well-formed frame (all variables allocated, with
// valid types) plus a well-formed memory.
func WFEnv(env *Env) bool {
	for _, vb := range env.Vars {
		for i := 0; i < Sizeof(vb.Type); i++ {
			if !env.Mem.Valid(vb.Addr + i) {
				return false
			}
		}
	}
	return WFMem(env.Mem)
}

// ---------------------------------------------------------------- typing

// CheckCmd is S ⊢c c: the command typechecks against the frame under
// standard C conventions.
func CheckCmd(env *Env, c Cmd) bool {
	switch x := c.(type) {
	case Assign:
		lt, ok := typeLHS(env, x.L)
		if !ok || !atomic(lt) {
			return false
		}
		rt, ok := typeRHS(env, x.R)
		if !ok {
			return false
		}
		if lt.Kind == TInt {
			return rt.Kind == TInt
		}
		// Pointer assignment permits any pointer (wild casts are
		// explicit, but void* flows freely as in C).
		return rt.Kind == TPtr
	case Seq:
		return CheckCmd(env, x.A) && CheckCmd(env, x.B)
	}
	return false
}

func typeLHS(env *Env, l LHS) (*Type, bool) {
	switch x := l.(type) {
	case Var:
		vb, ok := env.Vars[x.Name]
		if !ok {
			return nil, false
		}
		return vb.Type, true
	case Deref:
		t, ok := typeLHS(env, x.X)
		if !ok || t.Kind != TPtr {
			return nil, false
		}
		if t.Elem.Kind == TVoid {
			return nil, false // cannot dereference void*
		}
		return t.Elem, true
	case Field:
		t, ok := typeLHS(env, x.X)
		if !ok || t.Kind != TStruct {
			return nil, false
		}
		_, ft, found := t.fieldOffset(x.ID)
		return ft, found
	}
	return nil, false
}

func typeRHS(env *Env, r RHS) (*Type, bool) {
	switch x := r.(type) {
	case IntLit:
		return IntT, true
	case Add:
		ta, ok := typeRHS(env, x.A)
		if !ok {
			return nil, false
		}
		tb, ok := typeRHS(env, x.B)
		if !ok {
			return nil, false
		}
		switch {
		case ta.Kind == TPtr && tb.Kind == TInt:
			return ta, true
		case ta.Kind == TInt && tb.Kind == TPtr:
			return tb, true
		case ta.Kind == TInt && tb.Kind == TInt:
			return IntT, true
		}
		return nil, false
	case Use:
		t, ok := typeLHS(env, x.X)
		if !ok || !atomic(t) {
			return nil, false
		}
		return t, true
	case Addr:
		t, ok := typeLHS(env, x.X)
		if !ok {
			return nil, false
		}
		return Ptr(t), true
	case Cast:
		t, ok := typeRHS(env, x.X)
		if !ok {
			return nil, false
		}
		if !atomic(x.To) && x.To.Kind != TPtr {
			return nil, false
		}
		if !atomic(t) {
			return nil, false
		}
		return x.To, true
	case SizeofE:
		return IntT, true
	case Malloc:
		t, ok := typeRHS(env, x.N)
		if !ok || t.Kind != TInt {
			return nil, false
		}
		return Ptr(VoidT), true
	}
	return nil, false
}

// NewEnv builds a well-formed environment with the given frame variables
// allocated in memory. Variables are laid out in sorted-name order so
// environments built from equal frames are identical (the property-based
// theorem tests replay programs against fresh environments).
func NewEnv(limit int, vars map[string]*Type) *Env {
	mem := NewMemory(limit)
	env := &Env{Vars: make(map[string]VarBinding), Mem: mem, Limit: limit}
	names := make([]string, 0, len(vars))
	for name := range vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := vars[name]
		addr := mem.Malloc(Sizeof(t))
		if addr == 0 {
			panic(fmt.Sprintf("formal: frame does not fit (limit %d)", limit))
		}
		env.Vars[name] = VarBinding{Addr: addr, Type: t}
	}
	return env
}
