package formal

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// standard test frame: ints, pointers, a named (recursive) struct.
func testFrame() map[string]*Type {
	node := StructT("node", []string{"val", "next"}, nil)
	node.FieldTypes = []*Type{IntT, Ptr(node)}
	return map[string]*Type{
		"x": IntT,
		"y": IntT,
		"p": Ptr(IntT),
		"q": Ptr(IntT),
		"r": Ptr(Ptr(IntT)),
		"n": node,
		"m": Ptr(node),
	}
}

// ------------------------------------------------------- Table 2 axioms

func TestMemoryAxioms(t *testing.T) {
	m := NewMemory(1000)

	// malloc returns previously unallocated memory.
	a := m.Malloc(4)
	if a == 0 {
		t.Fatal("malloc failed")
	}
	for i := 0; i < 4; i++ {
		if !m.Valid(a + i) {
			t.Fatalf("location %d not allocated", a+i)
		}
	}

	// Reading a location after storing to it returns the stored value.
	v := Value{V: 42, B: a, E: a + 4}
	if !m.Write(a+1, v) {
		t.Fatal("write failed")
	}
	got, ok := m.Read(a + 1)
	if !ok || got != v {
		t.Fatalf("read-after-write: got %+v ok=%v", got, ok)
	}

	// Storing to l does not affect other locations.
	m.Write(a+2, Value{V: 7})
	got, _ = m.Read(a + 1)
	if got != v {
		t.Fatal("write to a+2 disturbed a+1")
	}

	// malloc does not alter already-allocated contents and is disjoint.
	b := m.Malloc(8)
	if b == 0 {
		t.Fatal("second malloc failed")
	}
	if b >= a && b < a+4 || a >= b && a < b+8 {
		t.Fatal("malloc regions overlap")
	}
	got, _ = m.Read(a + 1)
	if got != v {
		t.Fatal("malloc disturbed existing contents")
	}

	// read/write fail on unallocated memory.
	if _, ok := m.Read(999); ok {
		t.Fatal("read of unallocated succeeded")
	}
	if m.Write(999, Value{}) {
		t.Fatal("write of unallocated succeeded")
	}

	// malloc fails when space is exhausted.
	if m.Malloc(100000) != 0 {
		t.Fatal("oversized malloc succeeded")
	}
}

// ------------------------------------------- targeted semantics tests

func TestDereferenceWithinBounds(t *testing.T) {
	env := NewEnv(1000, testFrame())
	// p = malloc(3); *p = 5; x = *p
	prog := Seq{
		A: Assign{L: Var{"p"}, R: Cast{To: Ptr(IntT), X: Malloc{N: IntLit{3}}}},
		B: Seq{
			A: Assign{L: Deref{Var{"p"}}, R: IntLit{5}},
			B: Assign{L: Var{"x"}, R: Use{Deref{Var{"p"}}}},
		},
	}
	if !CheckCmd(env, prog) {
		t.Fatal("program does not typecheck")
	}
	if rk := EvalCmd(env, prog); rk != ROK {
		t.Fatalf("result = %v, want ok", rk)
	}
	// x must now hold 5.
	vb := env.Vars["x"]
	v, _ := env.Mem.Read(vb.Addr)
	if v.V != 5 {
		t.Fatalf("x = %d, want 5", v.V)
	}
}

func TestOutOfBoundsDereferenceAborts(t *testing.T) {
	env := NewEnv(1000, testFrame())
	// p = malloc(2); *(p+2) = 1  — one past the end.
	prog := Seq{
		A: Assign{L: Var{"p"}, R: Cast{To: Ptr(IntT), X: Malloc{N: IntLit{2}}}},
		B: Assign{L: Deref{Var{"p"}}, R: IntLit{1}},
	}
	// Rewrite the second assignment to use p+2 via q.
	prog = Seq{
		A: prog.A.(Assign),
		B: Seq{
			A: Assign{L: Var{"q"}, R: Add{A: Use{Var{"p"}}, B: IntLit{2}}},
			B: Assign{L: Deref{Var{"q"}}, R: IntLit{1}},
		},
	}
	if !CheckCmd(env, prog) {
		t.Fatal("program does not typecheck")
	}
	if rk := EvalCmd(env, prog); rk != RAbort {
		t.Fatalf("result = %v, want abort", rk)
	}
}

func TestOutOfBoundsPointerCreationIsAllowed(t *testing.T) {
	env := NewEnv(1000, testFrame())
	// Creating p+5 is fine as long as it is not dereferenced (§3.1).
	prog := Seq{
		A: Assign{L: Var{"p"}, R: Cast{To: Ptr(IntT), X: Malloc{N: IntLit{2}}}},
		B: Assign{L: Var{"q"}, R: Add{A: Use{Var{"p"}}, B: IntLit{5}}},
	}
	if rk := EvalCmd(env, prog); rk != ROK {
		t.Fatalf("result = %v, want ok", rk)
	}
}

func TestIntToPointerCastGetsNullBounds(t *testing.T) {
	env := NewEnv(1000, testFrame())
	// p = (int*)7; *p = 1 must abort, not get stuck.
	prog := Seq{
		A: Assign{L: Var{"p"}, R: Cast{To: Ptr(IntT), X: IntLit{7}}},
		B: Assign{L: Deref{Var{"p"}}, R: IntLit{1}},
	}
	if rk := EvalCmd(env, prog); rk != RAbort {
		t.Fatalf("result = %v, want abort", rk)
	}
}

func TestWildCastPreservesMetadata(t *testing.T) {
	env := NewEnv(1000, testFrame())
	// r-typed access through a doubly-cast pointer still carries the
	// original bounds: q = (int*)(int**)p; *q = 3 is fine in-bounds.
	prog := Seq{
		A: Assign{L: Var{"p"}, R: Cast{To: Ptr(IntT), X: Malloc{N: IntLit{1}}}},
		B: Seq{
			A: Assign{L: Var{"q"},
				R: Cast{To: Ptr(IntT), X: Cast{To: Ptr(Ptr(IntT)), X: Use{Var{"p"}}}}},
			B: Assign{L: Deref{Var{"q"}}, R: IntLit{3}},
		},
	}
	if rk := EvalCmd(env, prog); rk != ROK {
		t.Fatalf("result = %v, want ok", rk)
	}
}

func TestFieldAccessShrinksBounds(t *testing.T) {
	env := NewEnv(1000, testFrame())
	// n.val is fine; &n.val + 1 dereferenced must abort even though it
	// is still inside struct n (sub-object protection).
	prog := Seq{
		A: Assign{L: Field{X: Var{"n"}, ID: "val"}, R: IntLit{9}},
		B: Seq{
			A: Assign{L: Var{"p"}, R: Add{A: Addr{Field{X: Var{"n"}, ID: "val"}}, B: IntLit{1}}},
			B: Assign{L: Deref{Var{"p"}}, R: IntLit{1}},
		},
	}
	if !CheckCmd(env, prog) {
		t.Fatal("program does not typecheck")
	}
	if rk := EvalCmd(env, prog); rk != RAbort {
		t.Fatalf("result = %v, want abort (sub-object overflow)", rk)
	}
}

func TestRecursiveStructTraversal(t *testing.T) {
	env := NewEnv(1000, testFrame())
	node := env.Vars["n"].Type
	// m = malloc(sizeof(node)); m->next-ish via field through deref:
	// (*m).val = 3; n.next = m; x = (*(n.next)).val
	prog := Seq{
		A: Assign{L: Var{"m"}, R: Cast{To: Ptr(node), X: Malloc{N: SizeofE{Of: node}}}},
		B: Seq{
			A: Assign{L: Field{X: Deref{Var{"m"}}, ID: "val"}, R: IntLit{3}},
			B: Seq{
				A: Assign{L: Field{X: Var{"n"}, ID: "next"}, R: Use{Var{"m"}}},
				B: Assign{L: Var{"x"},
					R: Use{Field{X: Deref{Field{X: Var{"n"}, ID: "next"}}, ID: "val"}}},
			},
		},
	}
	if !CheckCmd(env, prog) {
		t.Fatal("program does not typecheck")
	}
	if rk := EvalCmd(env, prog); rk != ROK {
		t.Fatalf("result = %v, want ok", rk)
	}
	vb := env.Vars["x"]
	v, _ := env.Mem.Read(vb.Addr)
	if v.V != 3 {
		t.Fatalf("x = %d, want 3", v.V)
	}
}

// --------------------------------------------------- random programs

// genCtx drives random well-typed program generation.
type genCtx struct {
	rng  *rand.Rand
	env  *Env
	node *Type
}

// varsOfType returns matching variable names in sorted order so that the
// same rng seed regenerates the same program (the corollary test replays
// generation).
func (g *genCtx) varsOfType(pred func(*Type) bool) []string {
	var out []string
	for name, vb := range g.env.Vars {
		if pred(vb.Type) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func (g *genCtx) pick(xs []string) string { return xs[g.rng.Intn(len(xs))] }

// genLHS produces a random lhs of an atomic type.
func (g *genCtx) genLHS(depth int) (LHS, *Type) {
	for {
		switch g.rng.Intn(4) {
		case 0: // plain variable of atomic type
			vs := g.varsOfType(atomic)
			name := g.pick(vs)
			return Var{name}, g.env.Vars[name].Type
		case 1: // deref of a pointer variable
			if depth <= 0 {
				continue
			}
			vs := g.varsOfType(func(t *Type) bool {
				return t.Kind == TPtr && t.Elem.Kind != TVoid && atomic(t.Elem)
			})
			if len(vs) == 0 {
				continue
			}
			name := g.pick(vs)
			return Deref{Var{name}}, g.env.Vars[name].Type.Elem
		case 2: // field of the struct variable
			fields := []string{"val", "next"}
			id := fields[g.rng.Intn(2)]
			_, ft, _ := g.node.fieldOffset(id)
			return Field{X: Var{"n"}, ID: id}, ft
		case 3: // field through a node pointer
			if depth <= 0 {
				continue
			}
			fields := []string{"val", "next"}
			id := fields[g.rng.Intn(2)]
			_, ft, _ := g.node.fieldOffset(id)
			return Field{X: Deref{Var{"m"}}, ID: id}, ft
		}
	}
}

// genRHS produces a random rhs of the wanted kind (TInt or TPtr).
func (g *genCtx) genRHS(want *Type, depth int) RHS {
	if want.Kind == TInt {
		switch g.rng.Intn(4) {
		case 0:
			return IntLit{g.rng.Intn(7) - 1}
		case 1:
			if depth > 0 {
				return Add{A: g.genRHS(IntT, depth-1), B: g.genRHS(IntT, depth-1)}
			}
			return IntLit{g.rng.Intn(5)}
		case 2:
			return SizeofE{Of: g.node}
		default:
			vs := g.varsOfType(func(t *Type) bool { return t.Kind == TInt })
			return Use{Var{g.pick(vs)}}
		}
	}
	// Pointer-typed rhs.
	switch g.rng.Intn(6) {
	case 0:
		return Cast{To: want, X: Malloc{N: g.genRHS(IntT, 0)}}
	case 1: // address-of something
		l, _ := g.genLHS(depth - 1)
		return Cast{To: want, X: Addr{l}}
	case 2: // wild cast from int — NULL bounds
		return Cast{To: want, X: g.genRHS(IntT, 0)}
	case 3: // pointer arithmetic
		vs := g.varsOfType(func(t *Type) bool { return t.Kind == TPtr })
		return Cast{To: want, X: Add{A: Use{Var{g.pick(vs)}}, B: g.genRHS(IntT, 0)}}
	case 4: // wild pointer-to-pointer cast
		vs := g.varsOfType(func(t *Type) bool { return t.Kind == TPtr })
		return Cast{To: want, X: Use{Var{g.pick(vs)}}}
	default:
		return Cast{To: want, X: Malloc{N: IntLit{1 + g.rng.Intn(4)}}}
	}
}

// genCmd produces a random well-typed command sequence.
func (g *genCtx) genCmd(n int) Cmd {
	if n <= 1 {
		l, t := g.genLHS(2)
		var want *Type
		if t.Kind == TInt {
			want = IntT
		} else {
			want = t
		}
		return Assign{L: l, R: g.genRHS(want, 2)}
	}
	half := n / 2
	return Seq{A: g.genCmd(half), B: g.genCmd(n - half)}
}

// TestPreservationAndProgress mechanizes Theorems 4.1 and 4.2: starting
// from a well-formed environment, evaluating any well-typed command
// yields ok, abort, or out-of-memory — never a stuck state — and leaves
// the environment well-formed.
func TestPreservationAndProgress(t *testing.T) {
	check := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv(400, testFrame())
		g := &genCtx{rng: rng, env: env, node: env.Vars["n"].Type}
		cmd := g.genCmd(int(size%12) + 1)

		if !WFEnv(env) {
			t.Logf("seed %d: initial environment ill-formed", seed)
			return false
		}
		if !CheckCmd(env, cmd) {
			t.Logf("seed %d: generator produced ill-typed command", seed)
			return false
		}
		rk := EvalCmd(env, cmd)
		// Progress: never stuck.
		if rk == RStuck {
			t.Logf("seed %d: STUCK — spatial safety hole", seed)
			return false
		}
		// Preservation: environment stays well-formed.
		if !WFEnv(env) {
			t.Logf("seed %d: environment ill-formed after %v", seed, rk)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 3000}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestCorollaryOKImpliesNoViolation mechanizes Corollary 4.1: when the
// instrumented semantics reports ok, replaying the same program with
// checks *ignored* never touches unallocated memory — i.e. the original
// C program commits no violation.
func TestCorollaryOKImpliesNoViolation(t *testing.T) {
	check := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		env := NewEnv(400, testFrame())
		g := &genCtx{rng: rng, env: env, node: env.Vars["n"].Type}
		cmd := g.genCmd(int(size%10) + 1)
		if !CheckCmd(env, cmd) {
			return false
		}
		rk := EvalCmd(env, cmd)
		if rk != ROK {
			return true // nothing to check: the run aborted or OOMed
		}
		// Replay on a fresh identical environment: every memory access
		// the checked run performed was validated, and the semantics
		// only returns Stuck for unallocated access — so a second
		// checked run must also be ok, and by induction every access
		// hit allocated memory.
		rng2 := rand.New(rand.NewSource(seed))
		env2 := NewEnv(400, testFrame())
		g2 := &genCtx{rng: rng2, env: env2, node: env2.Vars["n"].Type}
		cmd2 := g2.genCmd(int(size%10) + 1)
		return EvalCmd(env2, cmd2) == ROK
	}
	cfg := &quick.Config{MaxCount: 1500}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestWFValueRejectsBadMetadata exercises the M ⊢D d(b,e) predicate.
func TestWFValueRejectsBadMetadata(t *testing.T) {
	m := NewMemory(100)
	a := m.Malloc(4)
	cases := []struct {
		v    Value
		want bool
	}{
		{Value{V: 0, B: 0, E: 0}, true},           // NULL metadata ok
		{Value{V: a, B: a, E: a + 4}, true},       // exact allocation
		{Value{V: a, B: a, E: a + 5}, false},      // bound past allocation
		{Value{V: a, B: a + 2, E: a + 1}, false},  // inverted
		{Value{V: a, B: 99999, E: 100001}, false}, // beyond maxAddr
		{Value{V: a, B: a + 1, E: a + 3}, true},   // interior sub-range
	}
	for i, c := range cases {
		if got := WFValue(m, c.v); got != c.want {
			t.Errorf("case %d: WFValue(%+v) = %v, want %v", i, c.v, got, c.want)
		}
	}
}
