package driver

import (
	"testing"
	"time"

	"softbound/internal/vm"
)

// infiniteLoopSrc never terminates on its own; only a resource guard can
// stop it.
const infiniteLoopSrc = `
int main() {
    volatile int x = 0;
    while (1) { x = x + 1; }
    return x;
}
`

// TestDeadlineGuard: a hung program must stop with a deadline trap, and in
// well under twice the configured limit (the poll interval is thousands of
// steps, far finer than the limit).
func TestDeadlineGuard(t *testing.T) {
	cfg := DefaultConfig(ModeFull)
	limit := 150 * time.Millisecond
	cfg.Timeout = limit
	start := time.Now()
	res, err := RunSource(infiniteLoopSrc, cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapCode() != vm.TrapDeadline {
		t.Fatalf("hung program: trap %q (err %v), want %q", res.TrapCode(), res.Err, vm.TrapDeadline)
	}
	if elapsed >= 2*limit {
		t.Fatalf("deadline guard fired after %v, want < 2×%v", elapsed, limit)
	}
}

// TestStepBudgetGuard: the same hang stops via the instruction budget.
func TestStepBudgetGuard(t *testing.T) {
	cfg := DefaultConfig(ModeFull)
	cfg.StepLimit = 200_000
	res, err := RunSource(infiniteLoopSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapCode() != vm.TrapStepLimit {
		t.Fatalf("hung program: trap %q (err %v), want %q", res.TrapCode(), res.Err, vm.TrapStepLimit)
	}
}

// TestHeapCapGuard: allocating past the live-byte cap is an OOM trap, not
// a NULL return — the cap models the process being killed, not the C
// allocator running dry.
func TestHeapCapGuard(t *testing.T) {
	src := `
int main() {
    int i;
    for (i = 0; i < 1000; i++) {
        char *p = malloc(4096);
        if (p) p[0] = 1;
    }
    return 0;
}
`
	cfg := DefaultConfig(ModeFull)
	cfg.HeapLimit = 64 * 1024
	res, err := RunSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapCode() != vm.TrapOOM {
		t.Fatalf("over-cap allocation: trap %q (err %v), want %q", res.TrapCode(), res.Err, vm.TrapOOM)
	}
}

// TestExhaustedHeapFailsClosed: when the heap segment itself runs dry,
// malloc returns NULL (C semantics). A checked build must trap the
// subsequent NULL-adjacent dereference as a spatial violation; an
// unchecked build still stops (memory fault), never corrupts silently.
func TestExhaustedHeapFailsClosed(t *testing.T) {
	src := `
int main() {
    char *p;
    char *last = 0;
    int i;
    for (i = 0; i < 100000; i++) {
        p = malloc(65536);
        if (!p) break;
        last = p;
    }
    p[0] = 42; /* p is NULL here: the loop only exits on malloc failure */
    return (int)(long)last;
}
`
	for _, tc := range []struct {
		mode Mode
		want vm.TrapCode
	}{
		{ModeFull, vm.TrapSpatial},
		{ModeNone, vm.TrapMemFault},
	} {
		cfg := DefaultConfig(tc.mode)
		cfg.HeapSize = 1 << 20 // small segment: exhaustion is quick
		res, err := RunSource(src, cfg)
		if err != nil {
			t.Fatalf("%v: %v", tc.mode, err)
		}
		if res.TrapCode() != tc.want {
			t.Fatalf("%v: NULL deref after exhaustion: trap %q (err %v), want %q",
				tc.mode, res.TrapCode(), res.Err, tc.want)
		}
	}
}

// TestZeroHeapAllocation: an allocation that can never fit the heap
// segment yields NULL, and the checked build fails closed on its use
// instead of crashing the harness.
func TestZeroHeapAllocation(t *testing.T) {
	src := `
int main() {
    char *p = malloc(1000000);
    p[0] = 1;
    return 0;
}
`
	cfg := DefaultConfig(ModeFull)
	cfg.HeapSize = 4096 // tiny segment: the request can never succeed
	res, err := RunSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapCode() != vm.TrapSpatial {
		t.Fatalf("oversized malloc use: trap %q (err %v), want %q", res.TrapCode(), res.Err, vm.TrapSpatial)
	}
}

// TestLongjmpCannotResurrectTraps: a longjmp handler must not resurrect
// execution after a resource-guard trap. The program installs a setjmp
// handler that would loop forever; once the step budget fires, execution
// ends — the trap propagates past the handler.
func TestLongjmpCannotResurrectStepLimit(t *testing.T) {
	src := `
int main() {
    long env[3];
    volatile int bounces = 0;
    int r = setjmp(env);
    bounces = bounces + 1;
    longjmp(env, r + 1); /* bounce forever: each longjmp re-enters setjmp */
    return bounces;
}
`
	cfg := DefaultConfig(ModeFull)
	cfg.StepLimit = 100_000
	res, err := RunSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapCode() != vm.TrapStepLimit {
		t.Fatalf("longjmp loop: trap %q (err %v), want %q", res.TrapCode(), res.Err, vm.TrapStepLimit)
	}
}

// TestLongjmpCannotResurrectDeadline is the wall-clock twin.
func TestLongjmpCannotResurrectDeadline(t *testing.T) {
	src := `
int main() {
    long env[3];
    int r = setjmp(env);
    longjmp(env, r + 1);
    return 0;
}
`
	cfg := DefaultConfig(ModeFull)
	limit := 150 * time.Millisecond
	cfg.Timeout = limit
	start := time.Now()
	res, err := RunSource(src, cfg)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapCode() != vm.TrapDeadline {
		t.Fatalf("longjmp loop: trap %q (err %v), want %q", res.TrapCode(), res.Err, vm.TrapDeadline)
	}
	if elapsed >= 2*limit {
		t.Fatalf("deadline fired after %v, want < 2×%v", elapsed, limit)
	}
}

// TestStackDepthGuard: unbounded recursion through the C pipeline ends in
// a stack-overflow trap under the configured frame cap.
func TestStackDepthGuard(t *testing.T) {
	src := `
int deep(int n) { return deep(n + 1); }
int main() { return deep(0); }
`
	cfg := DefaultConfig(ModeFull)
	cfg.MaxStackDepth = 256
	res, err := RunSource(src, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TrapCode() != vm.TrapStackOverflow {
		t.Fatalf("unbounded recursion: trap %q (err %v), want %q",
			res.TrapCode(), res.Err, vm.TrapStackOverflow)
	}
}
