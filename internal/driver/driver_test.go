package driver

import (
	"strings"
	"testing"
)

func mustRun(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	res, err := RunSource(src, cfg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res
}

func TestHelloWorld(t *testing.T) {
	for _, mode := range []Mode{ModeNone, ModeStoreOnly, ModeFull} {
		res := mustRun(t, `
int main(void) {
    printf("hello %s %d\n", "world", 42);
    return 7;
}`, DefaultConfig(mode))
		if res.Err != nil {
			t.Fatalf("mode %v: run: %v", mode, res.Err)
		}
		if res.ExitCode != 7 {
			t.Errorf("mode %v: exit = %d, want 7", mode, res.ExitCode)
		}
		if res.Output != "hello world 42\n" {
			t.Errorf("mode %v: output = %q", mode, res.Output)
		}
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	res := mustRun(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n-1) + fib(n-2);
}
int main(void) {
    int i;
    int total = 0;
    for (i = 0; i < 10; i++)
        total += fib(i);
    /* fib sums: 0+1+1+2+3+5+8+13+21+34 = 88 */
    printf("%d\n", total);
    return total == 88 ? 0 : 1;
}`, DefaultConfig(ModeFull))
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d output=%q", res.ExitCode, res.Output)
	}
}

func TestPointersAndHeap(t *testing.T) {
	res := mustRun(t, `
typedef struct node { int val; struct node* next; } node;
node* push(node* head, int v) {
    node* n = (node*)malloc(sizeof(node));
    n->val = v;
    n->next = head;
    return n;
}
int main(void) {
    node* head = (node*)0;
    int i;
    long sum = 0;
    for (i = 1; i <= 100; i++)
        head = push(head, i);
    while (head) {
        sum += head->val;
        head = head->next;
    }
    return sum == 5050 ? 0 : 1;
}`, DefaultConfig(ModeFull))
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d", res.ExitCode)
	}
}

func TestHeapOverflowDetectedFullMode(t *testing.T) {
	src := `
int main(void) {
    int* a = (int*)malloc(10 * sizeof(int));
    int i;
    for (i = 0; i <= 10; i++)   /* off-by-one write */
        a[i] = i;
    return a[5];
}`
	res := mustRun(t, src, DefaultConfig(ModeFull))
	if res.Violation == nil {
		t.Fatalf("full mode missed heap overflow: err=%v", res.Err)
	}
	res = mustRun(t, src, DefaultConfig(ModeStoreOnly))
	if res.Violation == nil {
		t.Fatalf("store-only mode missed heap write overflow: err=%v", res.Err)
	}
	res = mustRun(t, src, DefaultConfig(ModeNone))
	if res.Violation != nil {
		t.Fatalf("unchecked mode reported a violation: %v", res.Err)
	}
}

func TestReadOverflowOnlyFullModeDetects(t *testing.T) {
	src := `
int main(void) {
    int* a = (int*)malloc(10 * sizeof(int));
    int i, sum = 0;
    for (i = 0; i < 10; i++)
        a[i] = i;
    for (i = 0; i <= 10; i++)   /* off-by-one read */
        sum += a[i];
    return sum;
}`
	res := mustRun(t, src, DefaultConfig(ModeFull))
	if res.Violation == nil {
		t.Fatalf("full mode missed read overflow: err=%v", res.Err)
	}
	res = mustRun(t, src, DefaultConfig(ModeStoreOnly))
	if res.Violation != nil {
		t.Fatalf("store-only checked a read: %v", res.Err)
	}
}

func TestSubObjectOverflowCaught(t *testing.T) {
	// The paper's §2.1 example: overflowing a struct-internal array
	// must not be able to overwrite the adjacent function pointer.
	src := `
void safe(void) { printf("safe\n"); }
struct node { char str[8]; void (*func)(void); };
int main(void) {
    struct node n;
    char* ptr = n.str;
    int i;
    n.func = safe;
    strcpy(ptr, "overflow...");   /* 12 bytes into an 8-byte field */
    n.func();
    return 0;
}`
	res := mustRun(t, src, DefaultConfig(ModeFull))
	if res.Violation == nil {
		t.Fatalf("sub-object overflow not caught: err=%v out=%q", res.Err, res.Output)
	}
}

func TestStringsViaInstrumentedLibc(t *testing.T) {
	res := mustRun(t, `
int main(void) {
    char buf[32];
    strcpy(buf, "hello");
    strcat(buf, ", world");
    if (strcmp(buf, "hello, world") != 0) return 1;
    if (strlen(buf) != 12) return 2;
    if (atoi("  -123") != -123) return 3;
    return 0;
}`, DefaultConfig(ModeFull))
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d", res.ExitCode)
	}
}

func TestNoFalsePositives(t *testing.T) {
	// Exercise legal-but-tricky C: out-of-bounds pointer creation
	// (never dereferenced), arbitrary casts, unions, negative indexing
	// from an interior pointer.
	res := mustRun(t, `
union u { int i; char c[4]; };
int main(void) {
    int a[10];
    int* end = a + 10;          /* one past the end: legal to create */
    int* p;
    union u x;
    long bits;
    int i;
    for (p = a; p < end; p++)
        *p = (int)(p - a);
    p = &a[5];
    if (p[-2] != 3) return 1;   /* negative offset from interior */
    x.i = 0x01020304;
    if (x.c[0] != 4) return 2;  /* little-endian union pun */
    bits = (long)a;             /* pointer -> integer -> pointer */
    p = (int*)bits;
    p = setbound(p, sizeof(a)); /* re-bless with explicit bounds */
    if (p[9] != 9) return 3;
    i = 0;
    for (p = end - 1; p >= a; p--)
        i++;
    return i == 10 ? 0 : 4;
}`, DefaultConfig(ModeFull))
	if res.Err != nil {
		t.Fatalf("false positive: %v (output %q)", res.Err, res.Output)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d", res.ExitCode)
	}
}

func TestSeparateCompilationAcrossUnits(t *testing.T) {
	// A function with pointer parameters defined in one unit and called
	// from another: metadata must flow through the extended calling
	// convention (paper §3.3) with no whole-program analysis.
	lib := Source{Name: "lib.c", Text: `
int sum_array(int* a, int n) {
    int i, s = 0;
    for (i = 0; i < n; i++)
        s += a[i];
    return s;
}
int* make_array(int n) {
    int i;
    int* a = (int*)malloc(n * sizeof(int));
    for (i = 0; i < n; i++)
        a[i] = i;
    return a;
}`}
	mainSrc := Source{Name: "main.c", Text: `
int sum_array(int* a, int n);
int* make_array(int n);
int main(void) {
    int* a = make_array(16);
    if (sum_array(a, 16) != 120) return 1;
    return 0;
}`}
	res, err := Run([]Source{lib, mainSrc}, DefaultConfig(ModeFull))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.Err != nil {
		t.Fatalf("run: %v", res.Err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d", res.ExitCode)
	}

	// The same program, overflowing in the callee, must be detected:
	// bounds created in main travel into the separately compiled unit.
	bad := Source{Name: "main.c", Text: `
int sum_array(int* a, int n);
int* make_array(int n);
int main(void) {
    int* a = make_array(16);
    return sum_array(a, 17);
}`}
	res, err = Run([]Source{lib, bad}, DefaultConfig(ModeFull))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if res.Violation == nil {
		t.Fatalf("cross-unit overflow missed: %v", res.Err)
	}
}

// TestStringLiteralsDoNotCollideAcrossUnits is a regression test: each
// unit's anonymous literal globals must get link-unique names, or
// literals from different units alias each other after linking.
func TestStringLiteralsDoNotCollideAcrossUnits(t *testing.T) {
	a := Source{Name: "a.c", Text: `
char* first(void)  { return "alpha"; }
char* second(void) { return "beta"; }`}
	b := Source{Name: "b.c", Text: `
char* first(void);
char* second(void);
int main(void) {
    if (strcmp(first(), "alpha") != 0) return 1;
    if (strcmp(second(), "beta") != 0) return 2;
    if (strcmp("gamma", "gamma") != 0) return 3;
    return 0;
}`}
	for _, mode := range []Mode{ModeNone, ModeFull} {
		res, err := Run([]Source{a, b}, DefaultConfig(mode))
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Err != nil || res.ExitCode != 0 {
			t.Fatalf("mode %v: exit=%d err=%v", mode, res.ExitCode, res.Err)
		}
	}
}

func TestStackOverflowToReturnAddressHijack(t *testing.T) {
	// Unchecked, an overflow that reaches the return token transfers
	// control (the VM records the hijack); SoftBound stops the write.
	src := `
int pwned_flag;
void attack_payload(void) {
    pwned_flag = 1;
    printf("PWNED\n");
    exit(66);
}
void vulnerable(long target) {
    long buf[2];
    int i;
    for (i = 0; i < 4; i++)   /* writes past buf up to the return slot */
        buf[i] = target;
}
int main(void) {
    vulnerable((long)attack_payload);
    return 0;
}`
	res := mustRun(t, src, DefaultConfig(ModeNone))
	if len(res.Hijacks) == 0 {
		t.Fatalf("attack did not take control: err=%v out=%q", res.Err, res.Output)
	}
	if !strings.Contains(res.Output, "PWNED") {
		t.Fatalf("payload did not run: %q", res.Output)
	}
	res = mustRun(t, src, DefaultConfig(ModeStoreOnly))
	if res.Violation == nil {
		t.Fatalf("store-only missed the attack: %v", res.Err)
	}
	if len(res.Hijacks) != 0 {
		t.Fatal("control was hijacked despite checking")
	}
}
