package driver

import (
	"fmt"
	"testing"
)

// The C-semantics torture tests: each case is a program whose main
// returns 0 on success and a failing-assertion number otherwise. Every
// case runs in all three modes — instrumentation must never change
// program semantics.
func runTorture(t *testing.T, name, src string) {
	t.Helper()
	t.Run(name, func(t *testing.T) {
		t.Parallel()
		for _, mode := range []Mode{ModeNone, ModeStoreOnly, ModeFull} {
			res, err := RunSource(src, DefaultConfig(mode))
			if err != nil {
				t.Fatalf("mode %v: compile: %v", mode, err)
			}
			if res.Err != nil {
				t.Fatalf("mode %v: run: %v (output %q)", mode, res.Err, res.Output)
			}
			if res.ExitCode != 0 {
				t.Fatalf("mode %v: assertion %d failed (output %q)", mode, res.ExitCode, res.Output)
			}
		}
	})
}

func TestIntegerSemantics(t *testing.T) {
	runTorture(t, "wrapping", `
int main(void) {
    int a = 2147483647;     /* INT_MAX */
    unsigned int u = 4294967295u;
    char c = 127;
    short s = 32767;
    a = a + 1;
    if (a != -2147483648 - 0) return 1;   /* two's complement wrap */
    u = u + 1;
    if (u != 0) return 2;
    c = (char)(c + 1);
    if (c != -128) return 3;
    s = (short)(s + 1);
    if (s != -32768) return 4;
    return 0;
}`)
	runTorture(t, "unsigned-compare-divide", `
int main(void) {
    unsigned int big = 3000000000u;
    int neg = -1;
    unsigned int uneg = (unsigned int)neg;
    if (big < 5u) return 1;            /* unsigned compare */
    if (uneg != 4294967295u) return 2;
    if (uneg / 2u != 2147483647u) return 3;
    if (-7 / 2 != -3) return 4;        /* truncation toward zero */
    if (-7 % 2 != -1) return 5;
    if (7 / -2 != -3) return 6;
    return 0;
}`)
	runTorture(t, "shifts", `
int main(void) {
    int a = -8;
    unsigned int u = 0x80000000u;
    if (a >> 1 != -4) return 1;        /* arithmetic shift */
    if (u >> 1 != 0x40000000u) return 2; /* logical shift */
    if (1 << 10 != 1024) return 3;
    if ((5 & 3) != 1 || (5 | 3) != 7 || (5 ^ 3) != 6) return 4;
    if (~0 != -1) return 5;
    return 0;
}`)
	runTorture(t, "char-signedness", `
int main(void) {
    char c = (char)200;          /* signed char: -56 */
    unsigned char uc = 200;
    if (c >= 0) return 1;
    if (uc != 200) return 2;
    if ((int)c != -56) return 3;
    if ((int)uc != 200) return 4;
    return 0;
}`)
	runTorture(t, "promotions-in-expressions", `
int main(void) {
    char a = 100;
    char b = 100;
    int sum = a + b;             /* promoted before the add */
    long big = 1000000;
    long prod = big * big;       /* 64-bit multiply */
    if (sum != 200) return 1;
    if (prod != 1000000000000L) return 2;
    return 0;
}`)
}

func TestFloatSemantics(t *testing.T) {
	runTorture(t, "float-basics", `
int main(void) {
    double d = 0.1 + 0.2;
    float f = 1.5f;
    if (!(d > 0.29 && d < 0.31)) return 1;
    if (f * 2.0 != 3.0) return 2;
    if ((int)3.99 != 3) return 3;
    if ((int)-3.99 != -3) return 4;      /* trunc toward zero */
    if ((double)7 != 7.0) return 5;
    return 0;
}`)
	runTorture(t, "float-narrowing", `
int main(void) {
    double d = 16777217.0;      /* not representable as float */
    float f = (float)d;
    if ((double)f == d) return 1;
    if ((double)f != 16777216.0) return 2;
    return 0;
}`)
	runTorture(t, "math-builtins", `
int main(void) {
    if (sqrt(49.0) != 7.0) return 1;
    if (fabs(-2.5) != 2.5) return 2;
    if (pow(2.0, 10.0) != 1024.0) return 3;
    if (floor(2.7) != 2.0 || ceil(2.1) != 3.0) return 4;
    if (fmod(7.5, 2.0) != 1.5) return 5;
    return 0;
}`)
}

func TestControlFlowSemantics(t *testing.T) {
	runTorture(t, "short-circuit", `
int calls;
int bump(int r) { calls++; return r; }
int main(void) {
    calls = 0;
    if (0 && bump(1)) return 1;
    if (calls != 0) return 2;           /* rhs not evaluated */
    if (!(1 || bump(1))) return 3;
    if (calls != 0) return 4;
    if (!(0 || bump(1))) return 5;
    if (calls != 1) return 6;
    return 0;
}`)
	runTorture(t, "switch-fallthrough", `
int classify(int x) {
    int r = 0;
    switch (x) {
    case 0:
    case 1:
        r += 1;       /* fall through */
    case 2:
        r += 10;
        break;
    case 3:
        r = 99;
        break;
    default:
        r = -1;
    }
    return r;
}
int main(void) {
    if (classify(0) != 11) return 1;
    if (classify(1) != 11) return 2;
    if (classify(2) != 10) return 3;
    if (classify(3) != 99) return 4;
    if (classify(7) != -1) return 5;
    return 0;
}`)
	runTorture(t, "goto-and-labels", `
int main(void) {
    int i = 0;
    int sum = 0;
loop:
    if (i >= 5) goto done;
    sum += i;
    i++;
    goto loop;
done:
    return sum == 10 ? 0 : 1;
}`)
	runTorture(t, "do-while-comma-ternary", `
int main(void) {
    int i = 10;
    int n = 0;
    do { n++; } while (--i > 0);
    if (n != 10) return 1;
    i = (n++, n + 1);
    if (i != 12 || n != 11) return 2;
    i = n > 5 ? n > 10 ? 3 : 2 : 1;   /* nested ternary */
    if (i != 3) return 3;
    return 0;
}`)
	runTorture(t, "break-continue-nested", `
int main(void) {
    int i, j;
    int hits = 0;
    for (i = 0; i < 5; i++) {
        for (j = 0; j < 5; j++) {
            if (j == 2) continue;
            if (j == 4) break;
            hits++;
        }
        if (i == 3) break;
    }
    return hits == 12 ? 0 : 1;
}`)
}

func TestAggregateSemantics(t *testing.T) {
	runTorture(t, "struct-copy", `
struct pair { int a; int b; char tag[4]; };
int main(void) {
    struct pair x;
    struct pair y;
    x.a = 1; x.b = 2;
    x.tag[0] = 'x'; x.tag[1] = 0;
    y = x;                         /* whole-struct assignment */
    x.a = 99;
    if (y.a != 1 || y.b != 2) return 1;
    if (y.tag[0] != 'x') return 2;
    return 0;
}`)
	runTorture(t, "nested-structs-and-arrays", `
struct inner { int v[3]; };
struct outer { struct inner rows[2]; int count; };
int main(void) {
    struct outer o;
    int i, j;
    o.count = 0;
    for (i = 0; i < 2; i++)
        for (j = 0; j < 3; j++) {
            o.rows[i].v[j] = i * 10 + j;
            o.count++;
        }
    if (o.count != 6) return 1;
    if (o.rows[1].v[2] != 12) return 2;
    return 0;
}`)
	runTorture(t, "2d-arrays", `
int m[3][4];
int main(void) {
    int i, j;
    int trace = 0;
    for (i = 0; i < 3; i++)
        for (j = 0; j < 4; j++)
            m[i][j] = i * 4 + j;
    for (i = 0; i < 3; i++)
        trace += m[i][i];
    if (trace != 0 + 5 + 10) return 1;
    if (m[2][3] != 11) return 2;
    return 0;
}`)
	runTorture(t, "unions", `
union mix { long l; double d; char bytes[8]; };
int main(void) {
    union mix u;
    u.l = 0x4142434445464748L;
    if (u.bytes[7] != 'A' || u.bytes[0] != 'H') return 1; /* little endian */
    u.d = 1.0;
    if (u.l != 0x3FF0000000000000L) return 2;  /* IEEE 754 pun */
    return 0;
}`)
	runTorture(t, "global-initializers", `
int scalars[4] = {1, 2, 3};          /* trailing zero */
struct cfg { int id; char* name; } table[2] = {
    {1, "one"},
    {2, "two"},
};
char text[] = "abc";
int* aliased = &scalars[2];
int main(void) {
    if (scalars[2] != 3 || scalars[3] != 0) return 1;
    if (table[1].id != 2) return 2;
    if (strcmp(table[0].name, "one") != 0) return 3;
    if (sizeof(text) != 4) return 4;
    if (*aliased != 3) return 5;
    return 0;
}`)
}

func TestPointerSemantics(t *testing.T) {
	runTorture(t, "function-pointer-table", `
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int mul(int a, int b) { return a * b; }
typedef int (*binop)(int, int);
binop ops[3] = {add, sub, mul};
int main(void) {
    int i;
    int acc = 10;
    for (i = 0; i < 3; i++)
        acc = ops[i](acc, 2);
    return acc == 20 ? 0 : acc;      /* ((10+2)-2)*2 */
}`)
	runTorture(t, "pointer-to-pointer", `
int main(void) {
    int x = 5;
    int* p = &x;
    int** pp = &p;
    int y = 9;
    **pp = 6;
    if (x != 6) return 1;
    *pp = &y;
    **pp = 7;
    if (y != 7 || x != 6) return 2;
    return 0;
}`)
	runTorture(t, "pointer-compare-and-diff", `
int main(void) {
    int a[10];
    int* lo = &a[2];
    int* hi = &a[7];
    if (!(lo < hi)) return 1;
    if (hi - lo != 5) return 2;
    if (lo + 5 != hi) return 3;
    if ((hi - 2)[0] != a[5] && 0) return 4;   /* (hi-2)[0] aliases a[5] */
    return 0;
}`)
	runTorture(t, "interior-pointers-negative-index", `
struct item { int pad; int vals[8]; };
int main(void) {
    struct item it;
    int* mid;
    int k;
    for (k = 0; k < 8; k++)
        it.vals[k] = k * k;
    mid = &it.vals[4];
    if (mid[-2] != 4) return 1;
    if (mid[3] != 49) return 2;
    return 0;
}`)
	runTorture(t, "array-decay-in-calls", `
int sum(int* a, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++)
        s += a[i];
    return s;
}
int main(void) {
    int grid[2][3];
    int i, j;
    for (i = 0; i < 2; i++)
        for (j = 0; j < 3; j++)
            grid[i][j] = 1;
    if (sum(grid[0], 3) != 3) return 1;
    if (sum(grid[1], 3) != 3) return 2;
    return 0;
}`)
	runTorture(t, "sizeof-forms", `
struct s { char c; long l; };
int main(void) {
    int a[12];
    struct s v;
    if (sizeof(int) != 4) return 1;
    if (sizeof(char*) != 8) return 2;
    if (sizeof a != 48) return 3;          /* expression form, no decay */
    if (sizeof(struct s) != 16) return 4;
    if (sizeof v != 16) return 5;
    if (sizeof(a[0]) != 4) return 6;
    return 0;
}`)
	runTorture(t, "static-locals", `
int counter(void) {
    static int n = 100;
    n++;
    return n;
}
int main(void) {
    counter();
    counter();
    return counter() == 103 ? 0 : 1;
}`)
	runTorture(t, "recursion-ackermann", `
int ack(int m, int n) {
    if (m == 0) return n + 1;
    if (n == 0) return ack(m - 1, 1);
    return ack(m - 1, ack(m, n - 1));
}
int main(void) {
    return ack(2, 3) == 9 ? 0 : 1;
}`)
}

// ------------------------------------------------------ failure injection

func TestMallocExhaustionIsSafe(t *testing.T) {
	// When malloc returns NULL, the paper's rule gives the pointer NULL
	// bounds, so dereferencing it is caught (not a wild write).
	src := `
int main(void) {
    char* p;
    long total = 0;
    for (;;) {
        p = (char*)malloc(1 << 20);
        if (!p)
            break;
        total++;
    }
    p[0] = 'x';    /* p is NULL here */
    return (int)total;
}`
	cfg := DefaultConfig(ModeFull)
	cfg.HeapSize = 8 << 20
	res := mustRun(t, src, cfg)
	if res.Violation == nil {
		t.Fatalf("NULL-bounds dereference missed: %v", res.Err)
	}
	// Unchecked, the same program segfaults on the simulated null page
	// rather than silently corrupting.
	cfg = DefaultConfig(ModeNone)
	cfg.HeapSize = 8 << 20
	res = mustRun(t, src, cfg)
	if res.Err == nil {
		t.Fatal("unchecked NULL write succeeded")
	}
}

func TestStackOverflowDiagnosed(t *testing.T) {
	src := `
int deep(int n) {
    int pad[64];
    pad[0] = n;
    if (n <= 0) return pad[0];
    return deep(n - 1) + pad[0];
}
int main(void) {
    return deep(1000000);
}`
	cfg := DefaultConfig(ModeNone)
	cfg.StackSize = 1 << 20
	res := mustRun(t, src, cfg)
	if res.Err == nil {
		t.Fatal("runaway recursion not diagnosed")
	}
}

func TestFreeOfInvalidPointerDiagnosed(t *testing.T) {
	res := mustRun(t, `
int main(void) {
    int x;
    free(&x);      /* not a heap block */
    return 0;
}`, DefaultConfig(ModeNone))
	if res.Err == nil {
		t.Fatal("invalid free not diagnosed")
	}
}

func TestSpatialOnlyScopeUseAfterFree(t *testing.T) {
	// The paper explicitly excludes temporal safety (footnote 1):
	// a use-after-free through a register-held pointer whose bounds are
	// still live is NOT detected. This test pins the documented scope.
	src := `
int main(void) {
    int* p = (int*)malloc(4 * sizeof(int));
    p[0] = 42;
    free(p);
    return p[0] == 42 ? 0 : 1;   /* temporal violation, spatially in-bounds */
}`
	res := mustRun(t, src, DefaultConfig(ModeFull))
	if res.Violation != nil {
		t.Fatalf("unexpectedly detected a temporal violation: %v", res.Violation)
	}
	// But once the freed block's *metadata slots* are reused, stale
	// bounds never resurface: a pointer LOADED from reallocated memory
	// has fresh (or NULL) bounds (paper §5.2 metadata clearing).
	src2 := `
int main(void) {
    int** slot = (int**)malloc(sizeof(int*));
    int* q;
    *slot = (int*)malloc(4 * sizeof(int));
    free(*slot);
    free(slot);
    slot = (int**)malloc(sizeof(int*));   /* same address reused */
    q = *slot;                            /* stale pointer bits, cleared metadata */
    q[0] = 1;                             /* must abort: NULL bounds */
    return 0;
}`
	res = mustRun(t, src2, DefaultConfig(ModeFull))
	if res.Violation == nil {
		t.Fatalf("stale metadata resurfaced: %v", res.Err)
	}
}

func TestDeterministicRand(t *testing.T) {
	src := `
int main(void) {
    int i;
    long h = 0;
    srand(7);
    for (i = 0; i < 10; i++)
        h = h * 31 + rand() % 1000;
    printf("%ld\n", h);
    return 0;
}`
	var first string
	for i := 0; i < 3; i++ {
		res := mustRun(t, src, DefaultConfig(ModeFull))
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if first == "" {
			first = res.Output
		} else if res.Output != first {
			t.Fatalf("run %d differs: %q vs %q", i, res.Output, first)
		}
	}
}

func TestPrintfFormats(t *testing.T) {
	res := mustRun(t, `
int main(void) {
    printf("%d %u %ld %x %X %o %c %s %5d %-5d| %05d %.2f %g %e %%\n",
        -42, 42u, 1234567890123L, 255, 255, 8, 'Z', "str",
        7, 7, 7, 3.14159, 0.5, 12345.678);
    printf("%p\n", (void*)0);
    return 0;
}`, DefaultConfig(ModeFull))
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	want := "-42 42 1234567890123 ff FF 10 Z str     7 7    | 00007 3.14 0.5 1.234568e+04 %\n"
	if res.Output != want+"0x0\n" {
		t.Fatalf("printf output:\n got %q\nwant %q", res.Output, want+"0x0\n")
	}
}

func TestSprintfAndPuts(t *testing.T) {
	res := mustRun(t, `
int main(void) {
    char buf[64];
    int n = sprintf(buf, "x=%d y=%s", 5, "q");
    if (n != 7) return 1;
    if (strcmp(buf, "x=5 y=q") != 0) return 2;
    puts(buf);
    putchar('!');
    putchar(10);
    return 0;
}`, DefaultConfig(ModeFull))
	if res.Err != nil || res.ExitCode != 0 {
		t.Fatalf("exit=%d err=%v out=%q", res.ExitCode, res.Err, res.Output)
	}
	if res.Output != "x=5 y=q\n!\n" {
		t.Fatalf("output %q", res.Output)
	}
}

func TestCallocReallocSemantics(t *testing.T) {
	runTorture(t, "calloc-realloc", fmt.Sprintf(`
int main(void) {
    int i;
    int* a = (int*)calloc(8, sizeof(int));
    for (i = 0; i < 8; i++)
        if (a[i] != 0) return 1;
    for (i = 0; i < 8; i++)
        a[i] = i;
    a = (int*)realloc(a, 16 * sizeof(int));
    for (i = 0; i < 8; i++)
        if (a[i] != i) return 2;
    a[15] = 99;               /* new tail is writable with new bounds */
    if (a[15] != 99) return 3;
    return %d;
}`, 0))
	// And the GROWN bounds are enforced.
	res := mustRun(t, `
int main(void) {
    int* a = (int*)malloc(4 * sizeof(int));
    a = (int*)realloc(a, 8 * sizeof(int));
    a[8] = 1;   /* one past the new end */
    return 0;
}`, DefaultConfig(ModeFull))
	if res.Violation == nil {
		t.Fatalf("realloc bounds not enforced: %v", res.Err)
	}
}
