package driver

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Differential property testing: generate random *memory-safe* C
// programs and require that every checking mode and both metadata
// facilities produce byte-identical output and exit codes. This is the
// repo-level analogue of the paper's compatibility claim — the
// transformation must never change the semantics of a correct program.

// progGen emits a random straight-line-with-loops program over an int
// array, a struct, and a heap block, always indexing within bounds.
type progGen struct {
	rng *rand.Rand
	b   strings.Builder
	n   int // fresh-name counter
}

func (g *progGen) fresh() string {
	g.n++
	return fmt.Sprintf("v%d", g.n)
}

func (g *progGen) expr(depth int) string {
	if depth <= 0 {
		switch g.rng.Intn(4) {
		case 0:
			return fmt.Sprint(g.rng.Intn(100))
		case 1:
			return "arr[" + fmt.Sprint(g.rng.Intn(8)) + "]"
		case 2:
			return "st.a"
		default:
			return "hp[" + fmt.Sprint(g.rng.Intn(4)) + "]"
		}
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.rng.Intn(6) {
	case 0:
		return "(" + a + " + " + b + ")"
	case 1:
		return "(" + a + " - " + b + ")"
	case 2:
		return "(" + a + " * " + b + " % 97)"
	case 3:
		return "(" + a + " ^ " + b + ")"
	case 4:
		return "(" + a + " > " + b + " ? " + a + " : " + b + ")"
	default:
		return "(" + a + " & 255)"
	}
}

func (g *progGen) stmt(depth int) {
	switch g.rng.Intn(6) {
	case 0: // array write, in bounds
		fmt.Fprintf(&g.b, "    arr[%d] = %s;\n", g.rng.Intn(8), g.expr(depth))
	case 1: // struct write
		fmt.Fprintf(&g.b, "    st.%c = %s;\n", 'a'+byte(g.rng.Intn(2)), g.expr(depth))
	case 2: // heap write through pointer
		fmt.Fprintf(&g.b, "    hp[%d] = %s;\n", g.rng.Intn(4), g.expr(depth))
	case 3: // bounded loop accumulating
		v := g.fresh()
		fmt.Fprintf(&g.b, "    { int %s; for (%s = 0; %s < %d; %s++) sum += arr[%s %% 8] + %s; }\n",
			v, v, v, 2+g.rng.Intn(6), v, v, v)
	case 4: // conditional
		fmt.Fprintf(&g.b, "    if (%s > %d) sum += %s; else sum ^= %s;\n",
			g.expr(depth), g.rng.Intn(50), g.expr(depth-1), g.expr(depth-1))
	default: // pointer walk within the array
		v := g.fresh()
		fmt.Fprintf(&g.b, "    { int* %s = arr + %d; sum += %s[0] + %s[-%d]; }\n",
			v, 2+g.rng.Intn(5), v, v, 1+g.rng.Intn(2))
	}
}

func (g *progGen) generate(nStmts int) string {
	g.b.Reset()
	g.b.WriteString(`
struct pair { int a; int b; };
int arr[8];
int main(void) {
    struct pair st;
    int sum = 0;
    int i;
    int* hp = (int*)malloc(4 * sizeof(int));
    st.a = 1; st.b = 2;
    for (i = 0; i < 8; i++) arr[i] = i * 3;
    for (i = 0; i < 4; i++) hp[i] = i + 100;
`)
	for i := 0; i < nStmts; i++ {
		g.stmt(2)
	}
	g.b.WriteString(`
    for (i = 0; i < 8; i++) sum = sum * 31 + arr[i];
    sum = sum * 31 + st.a + st.b + hp[0] + hp[3];
    printf("%d\n", sum);
    free(hp);
    return 0;
}`)
	return g.b.String()
}

func TestDifferentialModesAgree(t *testing.T) {
	configs := func() []Config {
		none := DefaultConfig(ModeNone)
		store := DefaultConfig(ModeStoreOnly)
		fullShadow := DefaultConfig(ModeFull)
		fullHash := DefaultConfig(ModeFull)
		fullHash.Meta = 0 // meta.KindHashTable
		noOpt := DefaultConfig(ModeFull)
		noOpt.Optimize = false
		return []Config{none, store, fullShadow, fullHash, noOpt}
	}

	check := func(seed int64, size uint8) bool {
		g := &progGen{rng: rand.New(rand.NewSource(seed))}
		src := g.generate(int(size%12) + 1)
		var ref string
		for i, cfg := range configs() {
			res, err := RunSource(src, cfg)
			if err != nil {
				t.Logf("seed %d cfg %d: compile: %v\nprogram:\n%s", seed, i, err, src)
				return false
			}
			if res.Err != nil {
				t.Logf("seed %d cfg %d: run: %v\nprogram:\n%s", seed, i, res.Err, src)
				return false
			}
			if i == 0 {
				ref = res.Output
			} else if res.Output != ref {
				t.Logf("seed %d cfg %d: output %q != %q\nprogram:\n%s",
					seed, i, res.Output, ref, src)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
