// Package driver assembles the full pipeline: parse → typecheck → lower →
// optimize → (SoftBound) instrument per translation unit → link → cleanup
// optimize → execute. Instrumentation happens per unit, before linking,
// demonstrating the paper's separate-compilation property (§5.2): every
// unit is transformed with only its own code plus extern declarations.
package driver

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"time"

	"softbound/internal/core"
	"softbound/internal/cparser"
	"softbound/internal/ctypes"
	"softbound/internal/faults"
	"softbound/internal/ir"
	"softbound/internal/irgen"
	"softbound/internal/libc"
	"softbound/internal/meta"
	"softbound/internal/metrics"
	"softbound/internal/opt"
	"softbound/internal/sema"
	"softbound/internal/vm"
)

// Source is one C translation unit.
type Source struct {
	Name string
	Text string
}

// Mode is the end-to-end checking mode.
type Mode int

// Checking modes.
const (
	ModeNone Mode = iota
	ModeStoreOnly
	ModeFull
)

func (m Mode) String() string {
	return [...]string{"none", "store-only", "full"}[m]
}

// Config controls compilation and execution.
type Config struct {
	Mode     Mode
	Meta     meta.Kind
	Optimize bool
	// GlobalOpt enables the whole-function CFG passes in the
	// post-instrumentation cleanup: cross-block redundant-check
	// elimination, loop-invariant metadata-load hoisting, and dead
	// metadata-load removal. It has no effect with Optimize off.
	GlobalOpt bool
	// ShrinkBounds, ClearOnReturn mirror core.Options (both default on
	// via DefaultConfig).
	ShrinkBounds  bool
	ClearOnReturn bool
	// WithLibc links the C-subset libc (default on via DefaultConfig).
	WithLibc bool

	// Execution.
	Checker   vm.Checker
	Stdout    io.Writer
	StepLimit uint64
	HeapSize  uint64
	StackSize uint64
	Args      []string

	// Resource guards (ISSUE 3): zero values leave each guard off.
	// Timeout bounds wall-clock execution; when it fires the VM stops
	// with a deadline trap. ExecuteContext callers can pass their own
	// context instead (or in addition — whichever expires first wins).
	Timeout time.Duration
	// HeapLimit caps live heap bytes; exceeding it is an OOM trap. This
	// is distinct from HeapSize (segment size), whose exhaustion keeps C
	// semantics and returns NULL from malloc.
	HeapLimit uint64
	// MaxStackDepth caps call-frame depth (0 = vm.DefaultMaxStackDepth).
	MaxStackDepth int

	// Faults, when non-nil, injects this run's fault schedule: pointer
	// bit flips and forced OOM through the VM hooks, metadata drops and
	// corruption by wrapping the facility. One injector serves one run.
	Faults *faults.Injector

	// Interp selects the interpreter engine: the pre-decoded fast engine
	// (zero value), the reference per-step switch, or the compiled
	// threaded-code tier. The differential suite runs all three and
	// requires identical results; exposed so harnesses and serve clients
	// can do the same.
	Interp vm.InterpKind

	// RefInterp runs the reference interpreter.
	//
	// Deprecated: set Interp to vm.InterpRef instead. Kept as an override
	// for existing harnesses; when set it wins over Interp.
	RefInterp bool

	// MetaFacility, when non-nil, constructs the metadata facility
	// directly, overriding Meta. The bench harness uses this to run
	// registered schemes whose Kind alone cannot name them.
	MetaFacility func() (meta.Facility, error)

	// MSCCModel applies the related-scheme cost model of §6.5: the same
	// full checking, but with MSCC's costlier linked-shadow metadata
	// lookups (14 instructions) and heavier check sequences (6).
	MSCCModel bool

	// CheckArith enables the arithmetic-time-check ablation (see
	// core.Options.CheckArith).
	CheckArith bool
}

// DefaultConfig returns the standard configuration for a mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:          mode,
		Meta:          meta.KindShadowSpace,
		Optimize:      true,
		GlobalOpt:     true,
		ShrinkBounds:  true,
		ClearOnReturn: true,
		WithLibc:      true,
	}
}

// Result is the outcome of executing a program.
type Result struct {
	ExitCode int64
	Stats    *metrics.Stats
	Output   string
	// Err is the execution error, if any (spatial violation, fault,
	// hijack-free crash...). A nil Err means clean termination.
	Err error
	// Hijacks lists successful control-flow attacks observed by the VM.
	Hijacks []vm.ControlHijack
	// Violation is Err narrowed to a SoftBound detection, if it is one.
	Violation *vm.SpatialViolation
	// TemporalHit is Err narrowed to a CETS lock-and-key detection (only
	// possible under the -cets metadata schemes).
	TemporalHit *vm.TemporalViolation
	// BaselineHit is Err narrowed to a baseline checker detection.
	BaselineHit *vm.BaselineViolation
	// Trap is Err's typed classification (nil on clean termination); its
	// Code is the machine-readable taxonomy surfaced in BENCH.json.
	Trap *vm.Trap
}

// TrapCode returns the machine-readable trap code, or "" if the run
// terminated cleanly.
func (r *Result) TrapCode() vm.TrapCode {
	if r.Trap == nil {
		return ""
	}
	return r.Trap.Code
}

// Detected reports whether SoftBound (or a baseline checker) flagged a
// spatial or temporal violation.
func (r *Result) Detected() bool {
	return r.Violation != nil || r.TemporalHit != nil || r.BaselineHit != nil
}

// CompileError is the typed failure of the compile pipeline: which stage
// rejected the input, on which translation unit, and the underlying
// cause. A Go panic anywhere in the frontend (tokenizer, parser, sema,
// irgen, optimizer, instrumentation, linker) is recovered at this
// boundary and surfaces as Stage "panic" with the captured stack — a
// hostile source becomes a structured error, never a dead process. The
// execution service maps any CompileError to HTTP 400.
type CompileError struct {
	// Stage is "parse", "typecheck", "lower", "link", or "panic".
	Stage string
	// Unit is the translation unit's name ("" when not unit-specific).
	Unit string
	// Err is the underlying cause.
	Err error
	// Stack is the goroutine stack at the point of a recovered panic
	// (nil for ordinary stage errors); fuzzing and service logs use it
	// to localize frontend bugs.
	Stack []byte
}

func (e *CompileError) Error() string {
	if e.Unit != "" {
		return e.Stage + " " + e.Unit + ": " + e.Err.Error()
	}
	return e.Stage + ": " + e.Err.Error()
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *CompileError) Unwrap() error { return e.Err }

// Compile builds, optimizes, instruments, and links the sources into one
// executable module.
func Compile(sources []Source, cfg Config) (*ir.Module, error) {
	mod, _, err := CompileWithStats(sources, cfg)
	return mod, err
}

// CompileWithStats is Compile plus the optimizer pass counters for the
// produced module (zero when cfg.Optimize is off). The benchmark harness
// surfaces these per program in BENCH.json.
//
// Every failure it returns is a *CompileError; a panicking frontend is
// recovered here (Stage "panic") so long-running callers survive inputs
// that crash the compiler.
func CompileWithStats(sources []Source, cfg Config) (mod *ir.Module, counters metrics.OptCounters, err error) {
	defer func() {
		if r := recover(); r != nil {
			mod = nil
			err = &CompileError{
				Stage: "panic",
				Err:   fmt.Errorf("compiler panic: %v", r),
				Stack: debug.Stack(),
			}
		}
	}()
	units := make([]Source, 0, len(sources)+1)
	if cfg.WithLibc {
		units = append(units, Source{Name: "libc.c", Text: libc.Unit()})
	}
	units = append(units, sources...)

	var infos []*sema.Info
	var mods []*ir.Module
	for _, u := range units {
		unit, err := cparser.Parse(u.Name, u.Text)
		if err != nil {
			return nil, counters, &CompileError{Stage: "parse", Unit: u.Name, Err: err}
		}
		info, err := sema.Analyze(unit, infos...)
		if err != nil {
			return nil, counters, &CompileError{Stage: "typecheck", Unit: u.Name, Err: err}
		}
		mod, err := irgen.Generate(info)
		if err != nil {
			return nil, counters, &CompileError{Stage: "lower", Unit: u.Name, Err: err}
		}
		infos = append(infos, info)
		mods = append(mods, mod)
	}

	// Pre-instrumentation optimization (the paper applies SoftBound
	// post-optimization, §6.1). Block-local only: instrumentation has
	// not yet attached checks or metadata.
	if cfg.Optimize {
		for _, m := range mods {
			accumulateOpt(&counters, opt.Optimize(m))
		}
	}

	// Per-unit instrumentation with a size oracle standing in for the
	// extern declarations' types (separate compilation).
	if cfg.Mode != ModeNone {
		sizer := buildSizer(infos, mods)
		opts := core.DefaultOptions(coreMode(cfg.Mode))
		opts.ShrinkBounds = cfg.ShrinkBounds
		opts.ClearOnReturn = cfg.ClearOnReturn
		opts.CheckArith = cfg.CheckArith
		// Temporal lowering follows the metadata scheme: the -cets
		// facilities store (key, lock) words, so selecting one turns the
		// CETS instrumentation on; spatial-only schemes compile exactly
		// as before.
		opts.Temporal = cfg.Meta.Temporal()
		for _, m := range mods {
			core.Transform(m, sizer, opts)
		}
	}

	// Link.
	linked := ir.NewModule("a.out")
	for _, m := range mods {
		if err := linked.Link(m); err != nil {
			return nil, counters, &CompileError{Stage: "link", Err: err}
		}
	}

	// Post-instrumentation cleanup (redundant checks, dead metadata);
	// GlobalOpt adds the whole-function CFG passes here.
	if cfg.Optimize {
		accumulateOpt(&counters, opt.OptimizeWith(linked, opt.Options{Global: cfg.GlobalOpt}))
	}
	return linked, counters, nil
}

// accumulateOpt folds one opt.Result into the run's counters.
func accumulateOpt(c *metrics.OptCounters, r opt.Result) {
	c.FoldedConsts += uint64(r.FoldedConsts)
	c.RemovedInsts += uint64(r.RemovedInsts)
	c.ChecksRemovedLocal += uint64(r.RemovedChecks)
	c.ChecksRemovedGlobal += uint64(r.RemovedChecksGlobal)
	c.MetaLoadsMerged += uint64(r.MergedMetaLoads)
	c.MetaLoadsHoisted += uint64(r.HoistedMetaLoads)
	c.DeadMetaLoads += uint64(r.DeadMetaLoads)
}

func coreMode(m Mode) core.Mode {
	if m == ModeStoreOnly {
		return core.ModeStoreOnly
	}
	return core.ModeFull
}

func vmMode(m Mode) vm.CheckMode {
	switch m {
	case ModeStoreOnly:
		return vm.CheckStoreOnly
	case ModeFull:
		return vm.CheckFull
	}
	return vm.CheckNone
}

// buildSizer resolves global object sizes across all units, standing in
// for the sizes extern declarations provide in real separate compilation.
func buildSizer(infos []*sema.Info, mods []*ir.Module) core.GlobalSizer {
	sizes := make(map[string]int64)
	for _, m := range mods {
		for _, g := range m.Globals {
			sizes[g.Name] = g.Size
		}
	}
	for _, info := range infos {
		for _, g := range info.Globals {
			if _, ok := sizes[g.Name]; !ok && g.Type.Kind != ctypes.Func {
				sizes[g.Name] = g.Type.Size()
			}
		}
	}
	return func(name string) (int64, bool) {
		s, ok := sizes[name]
		return s, ok
	}
}

// Execute runs a compiled module under the configured VM, deriving a
// deadline from cfg.Timeout when set.
func Execute(mod *ir.Module, cfg Config) *Result {
	return ExecuteContext(context.Background(), mod, cfg)
}

// ExecuteContext is Execute under a caller-supplied context: the run stops
// with a deadline trap when ctx expires (or when cfg.Timeout elapses,
// whichever comes first).
func ExecuteContext(ctx context.Context, mod *ir.Module, cfg Config) *Result {
	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}
	var buf bytes.Buffer
	out := cfg.Stdout
	if out == nil {
		out = &buf
	} else {
		out = io.MultiWriter(out, &buf)
	}
	var fac meta.Facility
	var err error
	if cfg.MetaFacility != nil {
		fac, err = cfg.MetaFacility()
	} else {
		fac, err = meta.New(cfg.Meta)
	}
	if err != nil {
		return &Result{Err: err, Stats: &metrics.Stats{}}
	}
	var checkCost uint64
	if cfg.MSCCModel {
		fac = meta.Costed(fac, meta.Costs{Lookup: 14, Update: 14})
		checkCost = 6
	}
	vmCfg := vm.Config{
		Mode:          vmMode(cfg.Mode),
		Meta:          fac,
		Temporal:      cfg.Meta.Temporal(),
		Checker:       cfg.Checker,
		Stdout:        out,
		StepLimit:     cfg.StepLimit,
		HeapSize:      cfg.HeapSize,
		StackSize:     cfg.StackSize,
		Args:          cfg.Args,
		CheckCost:     checkCost,
		HeapLimit:     cfg.HeapLimit,
		MaxStackDepth: cfg.MaxStackDepth,
	}
	vmCfg.Interp = cfg.Interp
	if cfg.RefInterp {
		vmCfg.Interp = vm.InterpRef
	}
	if inj := cfg.Faults; inj != nil {
		vmCfg.Meta = inj.WrapFacility(fac)
		vmCfg.PtrStoreFault = inj.PtrStoreMask
		vmCfg.AllocFault = inj.AllowAlloc
		// The injector's Lookup consumes scheduled metadata drop/corrupt
		// events; a lookaside hit would silently skip them, so the cache
		// stays off for fault-injected runs.
		vmCfg.DisableMetaCache = true
	}
	machine, err := vm.New(mod, vmCfg)
	if err != nil {
		return &Result{Err: err, Stats: &metrics.Stats{}}
	}
	code, runErr := machine.RunContext(ctx)
	res := &Result{
		ExitCode: code,
		Stats:    machine.Stats(),
		Output:   buf.String(),
		Err:      runErr,
		Hijacks:  machine.Hijacks,
	}
	var sv *vm.SpatialViolation
	if errors.As(runErr, &sv) {
		res.Violation = sv
	}
	var tv *vm.TemporalViolation
	if errors.As(runErr, &tv) {
		res.TemporalHit = tv
	}
	var bv *vm.BaselineViolation
	if errors.As(runErr, &bv) {
		res.BaselineHit = bv
	}
	var trap *vm.Trap
	if errors.As(runErr, &trap) {
		res.Trap = trap
	}
	return res
}

// Run compiles and executes in one step.
func Run(sources []Source, cfg Config) (*Result, error) {
	mod, counters, err := CompileWithStats(sources, cfg)
	if err != nil {
		return nil, err
	}
	res := Execute(mod, cfg)
	res.Stats.Opt = counters
	res.Stats.CheckElims = counters.ChecksRemoved()
	return res, nil
}

// RunSource is the single-file convenience used by tests and examples.
func RunSource(src string, cfg Config) (*Result, error) {
	return Run([]Source{{Name: "main.c", Text: src}}, cfg)
}
