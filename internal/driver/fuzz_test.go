package driver_test

// Native Go fuzz targets for the compiler frontend: the tokenizer,
// parser, sema, and irgen must never panic on arbitrary input — a
// hostile translation unit is rejected with an error, not a crash. The
// driver boundary additionally recovers any panic these stages do emit
// (defense in depth for the long-running execution service), and
// FuzzCompile asserts that backstop never fires: a recovered panic is
// still a frontend bug, surfaced here as a fuzz failure with its stack.

import (
	"errors"
	"strings"
	"testing"

	"softbound/internal/cparser"
	"softbound/internal/driver"
	"softbound/internal/gen"
	"softbound/internal/progs"
	"softbound/internal/sema"
)

// fuzzSeeds are the corpus: real benchmark programs (the largest valid
// inputs we have), generated-corpus cells at fixed seeds (clean and
// planted — structurally dense valid programs the mutator can bend),
// plus malformed fragments around the constructs most likely to hide
// index/nil bugs — unterminated tokens, deep nesting, stray
// punctuation, truncated declarations.
func fuzzSeeds(f *testing.F) {
	for _, b := range progs.All() {
		f.Add(b.Source(1))
	}
	for seed := uint64(1); seed <= 8; seed++ {
		prog := gen.Generate(seed)
		f.Add(prog.Source())
		if plants := prog.Plants(); len(plants) > 0 {
			f.Add(prog.PlantedSource(plants[int(seed)%len(plants)]))
		}
	}
	for _, s := range []string{
		"",
		"int main() { return 0; }",
		"int main() { int a[3]; a[5] = 1; return a[0]; }",
		`int main() { char *s = "unterminated`,
		"/* unterminated comment",
		"int main() { return '",
		"struct s { struct s *next; }; int main() { return 0; }",
		"int f(int, char**); int main() { return f; }",
		"typedef struct {} t; t x = 3;",
		strings.Repeat("(", 200),
		strings.Repeat("{", 200) + strings.Repeat("}", 200),
		"int x = 0x",
		"int main() { goto l; l: return 0; }",
		"void f() { f(1,2,3,4,5,6,7,8,9); }",
		"int a[][] = {1};",
		"int main() { return sizeof(int[-1]); }",
		"#define X 1\nint main(){return X;}",
		"int main() { int *p; *p = 1; return 0; }",
		"long main() { return 9999999999999999999999999; }",
	} {
		f.Add(s)
	}
}

// FuzzParse drives the tokenizer and parser (and, when parsing succeeds,
// sema — the next consumer of the AST) on arbitrary input. Any panic is
// a finding.
func FuzzParse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, src string) {
		unit, err := cparser.Parse("fuzz.c", src)
		if err != nil {
			return
		}
		_, _ = sema.Analyze(unit)
	})
}

// FuzzCompile drives the whole pipeline — parse, typecheck, lower,
// optimize, instrument, link — through the driver boundary and asserts
// the panic backstop never fires: Stage "panic" means some stage crashed
// on this input, and the captured stack says where.
func FuzzCompile(f *testing.F) {
	fuzzSeeds(f)
	cfg := driver.DefaultConfig(driver.ModeFull)
	f.Fuzz(func(t *testing.T, src string) {
		_, err := driver.Compile([]driver.Source{{Name: "fuzz.c", Text: src}}, cfg)
		if err == nil {
			return
		}
		var ce *driver.CompileError
		if !errors.As(err, &ce) {
			t.Fatalf("compile error is not a *CompileError: %v", err)
		}
		if ce.Stage == "panic" {
			t.Fatalf("frontend panicked on input %q:\n%v\n%s", src, ce.Err, ce.Stack)
		}
	})
}

// TestCompileErrorStages pins the typed-error contract: each frontend
// stage's rejection surfaces as a *CompileError naming that stage and
// unit, with the legacy message shape preserved.
func TestCompileErrorStages(t *testing.T) {
	cfg := driver.DefaultConfig(driver.ModeFull)
	cases := []struct {
		name, src, stage string
	}{
		{"parse", "int main( {", "parse"},
		{"typecheck", "int main() { return undeclared_symbol; }", "typecheck"},
	}
	for _, c := range cases {
		_, err := driver.Compile([]driver.Source{{Name: "x.c", Text: c.src}}, cfg)
		if err == nil {
			t.Fatalf("%s: compile unexpectedly succeeded", c.name)
		}
		var ce *driver.CompileError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: error %T is not *CompileError: %v", c.name, err, err)
		}
		if ce.Stage != c.stage {
			t.Errorf("%s: stage %q, want %q", c.name, ce.Stage, c.stage)
		}
		if ce.Unit != "x.c" {
			t.Errorf("%s: unit %q, want x.c", c.name, ce.Unit)
		}
		if !strings.HasPrefix(err.Error(), c.stage+" x.c: ") {
			t.Errorf("%s: message %q lost the \"<stage> <unit>: \" shape", c.name, err.Error())
		}
	}
}
