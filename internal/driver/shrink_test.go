package driver

import "testing"

// The paper's §2.1 sub-object example: overflowing a char array inside a
// struct to reach the adjacent function pointer. Bounds shrinking at the
// field-address GEP is what detects it, and the optimizer must never
// discard the shrink marker (ConstFold once folded constant-operand
// shrinking GEPs into bare constants).
const subobjectSrc = `
int pwned;
void payload(void) { pwned = 1; exit(66); }
void greet(void)   { printf("hello\n"); }

struct node { char str[8]; void (*func)(void); };

int main(void) {
    struct node n;
    char* ptr = n.str;
    long target;
    char* tb;
    int i;
    n.func = greet;
    target = (long)payload;
    tb = (char*)&target;
    for (i = 0; i < 16; i++)
        ptr[i] = (i < 8) ? 'A' : tb[i - 8];
    n.func();
    return 0;
}`

func TestShrunkBoundsSurviveOptimizer(t *testing.T) {
	for i, cfg := range optVariants(ModeFull) {
		res, err := RunSource(subobjectSrc, cfg)
		if err != nil {
			t.Fatalf("variant %d: compile: %v", i, err)
		}
		if res.Violation == nil {
			t.Fatalf("variant %d: sub-object overflow not detected (exit=%d output=%q)",
				i, res.ExitCode, res.Output)
		}
		if res.ExitCode == 66 {
			t.Fatalf("variant %d: payload ran", i)
		}
	}
}
