package driver

import (
	"strings"
	"testing"
)

// Variable-argument functions, paper §5.2: SoftBound extends the vararg
// calling convention so the number of arguments (and pointer arguments)
// travels with the call, and va_arg decoding is checked.

func TestVarargSum(t *testing.T) {
	src := `
int sumv(int n, ...) {
    long ap;
    int i;
    int s = 0;
    va_start(&ap, n);
    for (i = 0; i < n; i++)
        s += va_arg_int(&ap);
    va_end(&ap);
    return s;
}
int main(void) {
    if (sumv(3, 10, 20, 30) != 60) return 1;
    if (sumv(0) != 0) return 2;
    if (sumv(1, -5) != -5) return 3;
    return 0;
}`
	for _, mode := range []Mode{ModeNone, ModeStoreOnly, ModeFull} {
		res := mustRun(t, src, DefaultConfig(mode))
		if res.Err != nil {
			t.Fatalf("mode %v: %v", mode, res.Err)
		}
		if res.ExitCode != 0 {
			t.Fatalf("mode %v: exit=%d", mode, res.ExitCode)
		}
	}
}

func TestVarargMixedTypes(t *testing.T) {
	src := `
double mix(int n, ...) {
    long ap;
    double acc = 0.0;
    int i;
    va_start(&ap, n);
    for (i = 0; i < n; i++) {
        if (i % 2 == 0)
            acc += (double)va_arg_long(&ap);
        else
            acc += va_arg_double(&ap);
    }
    va_end(&ap);
    return acc;
}
int main(void) {
    double r = mix(4, 1L, 2.5, 3L, 4.25);
    printf("%g\n", r);
    return r == 10.75 ? 0 : 1;
}`
	res := mustRun(t, src, DefaultConfig(ModeFull))
	if res.Err != nil {
		t.Fatalf("%v", res.Err)
	}
	if res.ExitCode != 0 {
		t.Fatalf("exit=%d output=%q", res.ExitCode, res.Output)
	}
}

// TestVarargPointerMetadataFlows: pointer varargs carry bounds, so an
// overflow through a vararg pointer is caught inside the callee — the
// point of extending the vararg convention (paper §5.2).
func TestVarargPointerMetadataFlows(t *testing.T) {
	src := `
void fill(int count, int val, ...) {
    long ap;
    int i, j;
    va_start(&ap, val);
    for (i = 0; i < count; i++) {
        int* a = (int*)va_arg_ptr(&ap);
        for (j = 0; j <= 4; j++)    /* off-by-one on the 4-int buffer */
            a[j] = val;
    }
    va_end(&ap);
}
int main(void) {
    int buf[4];
    fill(1, 7, buf);
    return buf[0];
}`
	res := mustRun(t, src, DefaultConfig(ModeFull))
	if res.Violation == nil {
		t.Fatalf("vararg pointer overflow missed: %v", res.Err)
	}
	// And a correct variant runs cleanly with metadata intact.
	good := strings.Replace(src, "j <= 4", "j < 4", 1)
	res = mustRun(t, good, DefaultConfig(ModeFull))
	if res.Err != nil {
		t.Fatalf("clean vararg run failed: %v", res.Err)
	}
}

// TestVarargOverdecodeChecked: decoding more arguments than were passed
// is caught under SoftBound ("neither too many arguments nor too many
// pointer arguments are decoded", §5.2) and silently reads zero when
// unchecked, like garbage on a real stack.
func TestVarargOverdecodeChecked(t *testing.T) {
	src := `
int greedy(int n, ...) {
    long ap;
    int s = 0;
    int i;
    va_start(&ap, n);
    for (i = 0; i < n + 2; i++)   /* reads two too many */
        s += va_arg_int(&ap);
    va_end(&ap);
    return s;
}
int main(void) {
    return greedy(2, 5, 6);
}`
	res := mustRun(t, src, DefaultConfig(ModeFull))
	if res.Violation == nil {
		t.Fatalf("over-decode not detected: %v", res.Err)
	}
	res = mustRun(t, src, DefaultConfig(ModeNone))
	if res.Err != nil {
		t.Fatalf("unchecked over-decode crashed: %v", res.Err)
	}
	if res.ExitCode != 11 {
		t.Fatalf("unchecked exit=%d, want 11 (5+6+0+0)", res.ExitCode)
	}
}

// TestVarargThroughSeparateUnits: the extended vararg convention works
// across translation units.
func TestVarargThroughSeparateUnits(t *testing.T) {
	lib := Source{Name: "fmt.c", Text: `
int join(char* dst, int n, ...) {
    long ap;
    int i;
    dst[0] = 0;
    va_start(&ap, n);
    for (i = 0; i < n; i++) {
        char* s = (char*)va_arg_ptr(&ap);
        strcat(dst, s);
    }
    va_end(&ap);
    return (int)strlen(dst);
}`}
	app := Source{Name: "app.c", Text: `
int join(char* dst, int n, ...);
int main(void) {
    char buf[32];
    int n = join(buf, 3, "a", "bc", "def");
    if (n != 6) return 1;
    if (strcmp(buf, "abcdef") != 0) return 2;
    return 0;
}`}
	res, err := Run([]Source{lib, app}, DefaultConfig(ModeFull))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil || res.ExitCode != 0 {
		t.Fatalf("exit=%d err=%v", res.ExitCode, res.Err)
	}
}
