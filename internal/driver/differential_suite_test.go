package driver

import (
	"fmt"
	"testing"

	"softbound/internal/attacks"
	"softbound/internal/bugbench"
	"softbound/internal/progs"
)

// Differential gate for the optimizer over the real suites: an optimized
// instrumented build must be observationally equal to the unoptimized
// one — same output, same exit code, same violation (field for field) —
// on every benchmark, every Wilander attack, and every BugBench program.
// This is the acceptance harness for the global CFG passes.

// suiteSmallScale mirrors the fast problem sizes the progs tests use.
var suiteSmallScale = map[string]int{
	"go": 8, "lbm": 4, "hmmer": 8, "compress": 4, "ijpeg": 3,
	"bh": 16, "tsp": 6, "libquantum": 2, "perimeter": 4, "health": 10,
	"bisort": 6, "mst": 24, "li": 4, "em3d": 40, "treeadd": 8,
}

// optVariants returns the three optimizer settings under comparison.
func optVariants(mode Mode) []Config {
	noOpt := DefaultConfig(mode)
	noOpt.Optimize = false
	localOpt := DefaultConfig(mode)
	localOpt.GlobalOpt = false
	globalOpt := DefaultConfig(mode) // Optimize + GlobalOpt on
	return []Config{noOpt, localOpt, globalOpt}
}

// describe renders the observable outcome of a run for comparison. The
// VM attaches instruction positions to error messages and those move
// under optimization, so violations compare field-wise and other errors
// by presence.
func describe(r *Result) string {
	if r.Violation != nil {
		v := r.Violation
		return fmt.Sprintf("exit=%d out=%q violation=%v ptr=%#x base=%#x bound=%#x size=%d fn=%s",
			r.ExitCode, r.Output, v.Kind, v.Ptr, v.Base, v.Bound, v.Size, v.Func)
	}
	if r.TemporalHit != nil {
		v := r.TemporalHit
		return fmt.Sprintf("exit=%d out=%q temporal=%v ptr=%#x key=%d lock=%d fn=%s",
			r.ExitCode, r.Output, v.Kind, v.Ptr, v.Key, v.Lock, v.Func)
	}
	return fmt.Sprintf("exit=%d out=%q err=%v hijacks=%d",
		r.ExitCode, r.Output, r.Err != nil, len(r.Hijacks))
}

func requireAgreement(t *testing.T, name, src string, mode Mode) *Result {
	t.Helper()
	var ref string
	var last *Result
	for i, cfg := range optVariants(mode) {
		res, err := RunSource(src, cfg)
		if err != nil {
			t.Fatalf("%s variant %d: compile: %v", name, i, err)
		}
		d := describe(res)
		if i == 0 {
			ref = d
		} else if d != ref {
			t.Fatalf("%s variant %d diverged:\n  unoptimized: %s\n  optimized:   %s",
				name, i, ref, d)
		}
		last = res
	}
	return last
}

func TestDifferentialSuiteBenchmarks(t *testing.T) {
	for _, b := range progs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			src := b.Source(suiteSmallScale[b.Name])
			res := requireAgreement(t, b.Name, src, ModeFull)
			if res.Err != nil {
				t.Fatalf("benchmark errored: %v", res.Err)
			}
		})
	}
}

func TestDifferentialSuiteAttacks(t *testing.T) {
	for _, a := range attacks.Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			res := requireAgreement(t, a.Name, a.Source, ModeFull)
			// The optimizer must never eliminate the check that
			// intercepts the attack.
			if !res.Detected() {
				t.Fatalf("attack not intercepted under the optimized build: %s",
					describe(res))
			}
		})
	}
}

func TestDifferentialSuiteBugBench(t *testing.T) {
	for _, p := range bugbench.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			res := requireAgreement(t, p.Name, p.Source, ModeFull)
			if detected := res.Violation != nil; detected != p.Full {
				t.Fatalf("full-mode detection = %v, want %v (%s)",
					detected, p.Full, describe(res))
			}
		})
	}
}

// The CFG availability pass must find strictly more redundancy than the
// block-local pass alone somewhere in the benchmark suite — the paper's
// point that global elimination is where the wins are (§6.1).
func TestDifferentialGlobalPassRemovesMoreChecks(t *testing.T) {
	var localTotal, globalTotal uint64
	for _, b := range progs.All() {
		src := []Source{{Name: b.Name + ".c", Text: b.Source(suiteSmallScale[b.Name])}}
		_, counters, err := CompileWithStats(src, DefaultConfig(ModeFull))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		localTotal += counters.ChecksRemovedLocal
		globalTotal += counters.ChecksRemovedGlobal
	}
	t.Logf("suite totals: local=%d global=%d", localTotal, globalTotal)
	if globalTotal == 0 {
		t.Fatal("global pass removed no checks beyond the block-local pass")
	}
}
