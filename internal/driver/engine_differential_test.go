package driver

import (
	"fmt"
	"testing"

	"softbound/internal/attacks"
	"softbound/internal/bugbench"
	"softbound/internal/meta"
	"softbound/internal/progs"
	"softbound/internal/vm"
)

// Engine differential gate: the fast pre-decoded interpreter and the
// compiled threaded-code tier must both be observationally equal to the
// reference per-step interpreter on every real program — same output,
// same exit code, same violation fields, and the same modeled
// statistics, across schemes and protection modes. Each case compiles
// once and executes the module on all three engines.

// describeWithStats extends describe with the full modeled-cost view.
// The metadata-cache counters are excluded: they exist only on the fast
// engine and are a reporting lookaside, not part of the engine contract.
func describeWithStats(r *Result) string {
	st := *r.Stats
	st.MetaCacheHits, st.MetaCacheMisses, st.MetaCacheSimInsts = 0, 0, 0
	return fmt.Sprintf("%s trap=%q stats=%+v", describe(r), r.TrapCode(), st)
}

func requireEngineAgreement(t *testing.T, name, src string, cfg Config) *Result {
	t.Helper()
	mod, counters, err := CompileWithStats([]Source{{Name: name + ".c", Text: src}}, cfg)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	fastCfg, refCfg, compCfg := cfg, cfg, cfg
	refCfg.Interp = vm.InterpRef
	compCfg.Interp = vm.InterpCompiled
	fast := Execute(mod, fastCfg)
	ref := Execute(mod, refCfg)
	comp := Execute(mod, compCfg)
	fast.Stats.Opt = counters
	ref.Stats.Opt = counters
	comp.Stats.Opt = counters
	rd := describeWithStats(ref)
	if fd := describeWithStats(fast); fd != rd {
		t.Fatalf("%s: engines diverged:\n  fast: %s\n  ref:  %s", name, fd, rd)
	}
	if cd := describeWithStats(comp); cd != rd {
		t.Fatalf("%s: engines diverged:\n  compiled: %s\n  ref:      %s", name, cd, rd)
	}
	return fast
}

// engineConfigs is the mode × scheme matrix each program runs under —
// both spatial-only backends and both CETS temporal backends.
func engineConfigs() []Config {
	var cfgs []Config
	for _, mode := range []Mode{ModeStoreOnly, ModeFull} {
		for _, kind := range []meta.Kind{meta.KindShadowSpace, meta.KindHashTable,
			meta.KindShadowCETS, meta.KindHashTableCETS} {
			cfg := DefaultConfig(mode)
			cfg.Meta = kind
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

func TestEngineDifferentialBenchmarks(t *testing.T) {
	for _, b := range progs.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			src := b.Source(suiteSmallScale[b.Name])
			for _, cfg := range engineConfigs() {
				res := requireEngineAgreement(t, b.Name, src, cfg)
				if res.Err != nil {
					t.Fatalf("benchmark errored: %v", res.Err)
				}
			}
		})
	}
}

func TestEngineDifferentialAttacks(t *testing.T) {
	for _, a := range attacks.Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(ModeFull)
			res := requireEngineAgreement(t, a.Name, a.Source, cfg)
			if !res.Detected() {
				t.Fatalf("attack not intercepted on the fast engine: %s", describe(res))
			}
		})
	}
}

func TestEngineDifferentialBugBench(t *testing.T) {
	for _, p := range bugbench.Suite() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig(ModeFull)
			res := requireEngineAgreement(t, p.Name, p.Source, cfg)
			if detected := res.Violation != nil; detected != p.Full {
				t.Fatalf("full-mode detection = %v, want %v (%s)",
					detected, p.Full, describe(res))
			}
		})
	}
}

// TestEngineDifferentialDanglingAttacks (ISSUE 7): the dangling-pointer
// suite must behave identically on both engines under every scheme —
// detected as a temporal violation under the CETS backends, undetected
// (attack corrupts and exits 66) under the spatial-only ones.
func TestEngineDifferentialDanglingAttacks(t *testing.T) {
	for _, a := range attacks.DanglingSuite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			t.Parallel()
			for _, cfg := range engineConfigs() {
				res := requireEngineAgreement(t, a.Name, a.Source, cfg)
				if cfg.Meta.Temporal() {
					if res.TemporalHit == nil {
						t.Fatalf("mode=%v meta=%v: dangling attack not caught: %s",
							cfg.Mode, cfg.Meta, describe(res))
					}
				} else if res.Detected() {
					t.Fatalf("mode=%v meta=%v: spatial-only scheme flagged a temporal attack: %s",
						cfg.Mode, cfg.Meta, describe(res))
				}
			}
		})
	}
}

// Step limits must trap at the identical instruction on both engines
// even with batched accounting; the sweep lands the budget across block
// boundaries and inside fused superinstructions of a real program.
func TestEngineDifferentialStepLimit(t *testing.T) {
	src := progs.All()[0].Source(suiteSmallScale[progs.All()[0].Name])
	for _, limit := range []uint64{1, 2, 3, 5, 17, 100, 1000, 4095, 4096, 4097, 100_000} {
		cfg := DefaultConfig(ModeFull)
		cfg.StepLimit = limit
		res := requireEngineAgreement(t, fmt.Sprintf("limit%d", limit), src, cfg)
		if limit <= 1000 && res.TrapCode() == "" {
			t.Fatalf("limit %d did not trap", limit)
		}
	}
}

// TestEngineDifferentialIndirectSignatureMismatch (ISSUE 6): indirect
// calls whose static site signature and dynamic callee disagree must be
// handled identically — and detected — across scheme × mode × engine.
// The shadow-stack ABI routes each (base,bound) pair by argument
// position and fails closed (zero bounds) for parameters no slot
// reached, so none of these mismatches can launder wide metadata onto a
// narrow pointer.
func TestEngineDifferentialIndirectSignatureMismatch(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		// The tentpole scenario: same address, different bounds — the
		// callee's pointer param must get the shrunk field bounds.
		{"metadata-laundering", attacks.MetadataLaundering().Source},
		// Site passes more arguments than the dynamic callee declares:
		// the callee's single pointer param pops the slot for arg 0.
		{"site-passes-extra", `
typedef void (*two_ptr)(char *a, char *b);
typedef void (*one_ptr)(char *a);
char g[16];
char h[8];
void write12(char *a) {
    long i;
    for (i = 0; i < 12; i = i + 1)
        a[i] = 'B';
}
one_ptr table[1];
int main(void) {
    two_ptr f;
    table[0] = write12;
    f = *(two_ptr*)&table[0];
    f(h, g);
    printf("%c\n", h[0]);
    return 0;
}`},
		// Site passes fewer arguments than the dynamic callee declares:
		// the unseeded pointer param fails closed to zero bounds.
		{"site-passes-fewer", `
typedef void (*one)(char *a);
typedef void (*two)(char *a, char *b);
char g[8];
void copy2(char *a, char *b) {
    b[0] = a[0];
}
two table[1];
int main(void) {
    one f;
    table[0] = copy2;
    f = *(one*)&table[0];
    f(g);
    printf("ok\n");
    return 0;
}`},
		// A pointer passed both fixed and variadic in one call: the
		// va_arg'd copy carries its own positional slot, so the OOB
		// write through it is caught in the callee.
		{"vararg-fixed-and-variadic", `
char buf[8];
void sink(char *fixed, ...) {
    long ap;
    char *p;
    long i;
    fixed[0] = 'F';
    va_start(&ap, fixed);
    p = (char*)va_arg_ptr(&ap);
    for (i = 0; i < 12; i = i + 1)
        p[i] = 'C';
    va_end(&ap);
}
int main(void) {
    sink(buf, buf);
    printf("%c\n", buf[0]);
    return 0;
}`},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, cfg := range engineConfigs() {
				res := requireEngineAgreement(t, c.name, c.src, cfg)
				if !res.Detected() {
					t.Fatalf("mode=%v meta=%v: mismatch not detected: %s",
						cfg.Mode, cfg.Meta, describe(res))
				}
			}
		})
	}
}
