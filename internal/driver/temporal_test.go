package driver

import (
	"fmt"
	"testing"

	"softbound/internal/meta"
	"softbound/internal/vm"
)

// Trap-classification tests for the deallocation paths (ISSUE 7
// satellites): free of a pointer that never came from the allocator is a
// typed memory-fault trap, a double free under the CETS schemes is a
// typed temporal violation, and both classes are non-retryable — on both
// engines.

const invalidFreeSrc = `
char g[8];
int main(void) {
    free(g);
    return 0;
}`

const doubleFreeSrc = `
int main(void) {
    char *p;
    p = malloc(16);
    free(p);
    free(p);
    return 0;
}`

// runBothEngines executes src under cfg on the fast and reference
// interpreters and hands each result to check.
func runBothEngines(t *testing.T, src string, cfg Config, check func(t *testing.T, res *Result)) {
	t.Helper()
	for _, ref := range []bool{false, true} {
		engine := "fast"
		if ref {
			engine = "ref"
		}
		t.Run(engine, func(t *testing.T) {
			ecfg := cfg
			ecfg.RefInterp = ref
			res, err := RunSource(src, ecfg)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			check(t, res)
		})
	}
}

// TestFreeInvalidPointerIsMemFault: free of an address that is not a live
// heap block (here a global) traps as a memory fault — typed, not a bare
// runtime error — under every scheme.
func TestFreeInvalidPointerIsMemFault(t *testing.T) {
	for _, kind := range []meta.Kind{meta.KindShadowSpace, meta.KindHashTable,
		meta.KindShadowCETS, meta.KindHashTableCETS} {
		kind := kind
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			cfg := DefaultConfig(ModeFull)
			cfg.Meta = kind
			runBothEngines(t, invalidFreeSrc, cfg, func(t *testing.T, res *Result) {
				if res.Err == nil {
					t.Fatal("invalid free did not trap")
				}
				code := vm.CodeOf(res.Err)
				if code != vm.TrapMemFault {
					t.Fatalf("trap code = %q, want %q (err=%v)", code, vm.TrapMemFault, res.Err)
				}
				if code.Retryable() {
					t.Fatal("memory-fault trap must not be retryable")
				}
			})
		})
	}
}

// TestDoubleFreeClassification: the second free of the same block is a
// temporal violation under the CETS schemes (the lock was revoked by the
// first free) and a memory fault under the spatial-only ones (the
// allocator no longer owns the block). Both are deterministic detections:
// non-retryable.
func TestDoubleFreeClassification(t *testing.T) {
	cases := []struct {
		kind meta.Kind
		want vm.TrapCode
	}{
		{meta.KindShadowSpace, vm.TrapMemFault},
		{meta.KindHashTable, vm.TrapMemFault},
		{meta.KindShadowCETS, vm.TrapTemporal},
		{meta.KindHashTableCETS, vm.TrapTemporal},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprint(c.kind), func(t *testing.T) {
			cfg := DefaultConfig(ModeFull)
			cfg.Meta = c.kind
			runBothEngines(t, doubleFreeSrc, cfg, func(t *testing.T, res *Result) {
				if res.Err == nil {
					t.Fatal("double free did not trap")
				}
				code := vm.CodeOf(res.Err)
				if code != c.want {
					t.Fatalf("trap code = %q, want %q (err=%v)", code, c.want, res.Err)
				}
				if code.Retryable() {
					t.Fatal("deallocation trap must not be retryable")
				}
				if c.want == vm.TrapTemporal && res.TemporalHit == nil {
					t.Fatal("temporal trap did not surface through Result.TemporalHit")
				}
			})
		})
	}
}
