package progs

// The SPEC-CPU-style workloads: scalar and array computation with very
// few pointer loads/stores, matching the left side of Figure 1.

func init() {
	register(Benchmark{Name: "go", Class: SPEC, DefaultScale: 40, source: goSrc})
	register(Benchmark{Name: "lbm", Class: SPEC, DefaultScale: 12, source: lbmSrc})
	register(Benchmark{Name: "hmmer", Class: SPEC, DefaultScale: 30, source: hmmerSrc})
	register(Benchmark{Name: "compress", Class: SPEC, DefaultScale: 15, source: compressSrc})
	register(Benchmark{Name: "ijpeg", Class: SPEC, DefaultScale: 6, source: ijpegSrc})
	register(Benchmark{Name: "libquantum", Class: SPEC, DefaultScale: 6, source: libquantumSrc})
}

// goSrc: a 9x9 Go position evaluator — flood-fill liberty counting and
// pattern scoring over int boards, in the style of SPEC 099.go.
const goSrc = `
int board[81];
int marks[81];
int stack_[81];

int liberties(int start, int color) {
    int sp = 0;
    int libs = 0;
    int i;
    for (i = 0; i < 81; i++)
        marks[i] = 0;
    stack_[sp++] = start;
    marks[start] = 1;
    while (sp > 0) {
        int pos = stack_[--sp];
        int x = pos % 9;
        int y = pos / 9;
        int d;
        for (d = 0; d < 4; d++) {
            int nx = x;
            int ny = y;
            int npos;
            if (d == 0) nx = x - 1;
            if (d == 1) nx = x + 1;
            if (d == 2) ny = y - 1;
            if (d == 3) ny = y + 1;
            if (nx < 0 || nx >= 9 || ny < 0 || ny >= 9)
                continue;
            npos = ny * 9 + nx;
            if (marks[npos])
                continue;
            marks[npos] = 1;
            if (board[npos] == 0)
                libs++;
            else if (board[npos] == color)
                stack_[sp++] = npos;
        }
    }
    return libs;
}

int evaluate(void) {
    int score = 0;
    int i;
    for (i = 0; i < 81; i++) {
        if (board[i] != 0) {
            int l = liberties(i, board[i]);
            if (board[i] == 1)
                score += l;
            else
                score -= l;
        }
    }
    return score;
}

int main(void) {
    int moves = @SCALE@;
    int m, i;
    long total = 0;
    unsigned int seed = 12345;
    for (i = 0; i < 81; i++)
        board[i] = 0;
    for (m = 0; m < moves; m++) {
        int tries = 0;
        int pos;
        do {
            seed = seed * 1103515245 + 12345;
            pos = (int)((seed >> 8) % 81);
            tries++;
        } while (board[pos] != 0 && tries < 200);
        board[pos] = (m % 2) + 1;
        total += evaluate();
    }
    printf("go score %ld\n", total);
    return 0;
}`

// lbmSrc: a Lattice-Boltzmann D2Q9 fluid step over double grids, in the
// style of SPEC 470.lbm — pure floating-point streaming.
const lbmSrc = `
double grid[2][20][20][9];
double weights[9];
int cx[9];
int cy[9];

void init_weights(void) {
    int k;
    weights[0] = 4.0 / 9.0;
    for (k = 1; k < 5; k++) weights[k] = 1.0 / 9.0;
    for (k = 5; k < 9; k++) weights[k] = 1.0 / 36.0;
    cx[0] = 0; cy[0] = 0;
    cx[1] = 1; cy[1] = 0;  cx[2] = -1; cy[2] = 0;
    cx[3] = 0; cy[3] = 1;  cx[4] = 0;  cy[4] = -1;
    cx[5] = 1; cy[5] = 1;  cx[6] = -1; cy[6] = -1;
    cx[7] = 1; cy[7] = -1; cx[8] = -1; cy[8] = 1;
}

int main(void) {
    int steps = @SCALE@;
    int t, x, y, k;
    double omega = 1.85;
    double checksum = 0.0;
    init_weights();
    for (x = 0; x < 20; x++)
        for (y = 0; y < 20; y++)
            for (k = 0; k < 9; k++)
                grid[0][x][y][k] = weights[k] * (1.0 + 0.01 * (double)((x * 7 + y * 3) % 5));
    for (t = 0; t < steps; t++) {
        int src = t % 2;
        int dst = 1 - src;
        for (x = 0; x < 20; x++) {
            for (y = 0; y < 20; y++) {
                double rho = 0.0;
                double ux = 0.0;
                double uy = 0.0;
                double usq;
                for (k = 0; k < 9; k++) {
                    double f = grid[src][x][y][k];
                    rho += f;
                    ux += f * (double)cx[k];
                    uy += f * (double)cy[k];
                }
                if (rho > 0.0) {
                    ux /= rho;
                    uy /= rho;
                }
                usq = ux * ux + uy * uy;
                for (k = 0; k < 9; k++) {
                    double cu = 3.0 * ((double)cx[k] * ux + (double)cy[k] * uy);
                    double feq = weights[k] * rho * (1.0 + cu + 0.5 * cu * cu - 1.5 * usq);
                    int nx = (x + cx[k] + 20) % 20;
                    int ny = (y + cy[k] + 20) % 20;
                    grid[dst][nx][ny][k] =
                        grid[src][x][y][k] + omega * (feq - grid[src][x][y][k]);
                }
            }
        }
    }
    for (x = 0; x < 20; x++)
        for (y = 0; y < 20; y++)
            checksum += grid[steps % 2][x][y][0];
    printf("lbm %g\n", checksum);
    return 0;
}`

// hmmerSrc: Viterbi dynamic programming over integer score matrices, in
// the style of SPEC 456.hmmer's P7Viterbi inner loop.
const hmmerSrc = `
int mmx[64][32];
int imx[64][32];
int dmx[64][32];
int tmm[32];
int tim[32];
int tdm[32];
int ems[32][4];

int max2(int a, int b) { return a > b ? a : b; }

int viterbi(int* seq, int len) {
    int i, k;
    for (k = 0; k < 32; k++) {
        mmx[0][k] = -10000;
        imx[0][k] = -10000;
        dmx[0][k] = -10000;
    }
    mmx[0][0] = 0;
    for (i = 1; i < len; i++) {
        int sym = seq[i];
        for (k = 1; k < 32; k++) {
            int sc = max2(mmx[i-1][k-1] + tmm[k], imx[i-1][k-1] + tim[k]);
            sc = max2(sc, dmx[i-1][k-1] + tdm[k]);
            mmx[i][k] = sc + ems[k][sym];
            imx[i][k] = max2(mmx[i-1][k] - 3, imx[i-1][k] - 1);
            dmx[i][k] = max2(mmx[i][k-1] - 4, dmx[i][k-1] - 1);
        }
    }
    {
        int best = -10000;
        for (k = 0; k < 32; k++)
            best = max2(best, mmx[len-1][k]);
        return best;
    }
}

int main(void) {
    int iters = @SCALE@;
    int seq[64];
    int it, i, k;
    long total = 0;
    unsigned int seed = 7;
    for (k = 0; k < 32; k++) {
        tmm[k] = (int)(k * 3 % 7) - 3;
        tim[k] = (int)(k * 5 % 11) - 5;
        tdm[k] = (int)(k * 2 % 5) - 2;
        for (i = 0; i < 4; i++)
            ems[k][i] = (int)((k + i) * 13 % 9) - 4;
    }
    for (it = 0; it < iters; it++) {
        for (i = 0; i < 64; i++) {
            seed = seed * 1103515245 + 12345;
            seq[i] = (int)((seed >> 8) % 4);
        }
        total += viterbi(seq, 64);
    }
    printf("hmmer %ld\n", total);
    return 0;
}`

// compressSrc: an LZW-style compressor over a synthetic text buffer, in
// the style of SPEC 129.compress — hash probing over int tables.
const compressSrc = `
int htab[4096];
int codetab[4096];
char inbuf[2048];
char outbuf[4096];

int compress_block(int n) {
    int next_code = 256;
    int prefix = (int)(unsigned char)inbuf[0];
    int outn = 0;
    int i;
    for (i = 0; i < 4096; i++)
        htab[i] = -1;
    for (i = 1; i < n; i++) {
        int c = (int)(unsigned char)inbuf[i];
        int key = ((prefix << 4) ^ c) & 4095;
        int found = 0;
        while (htab[key] != -1) {
            if (htab[key] == ((prefix << 8) | c)) {
                prefix = codetab[key];
                found = 1;
                break;
            }
            key = (key + 1) & 4095;
        }
        if (!found) {
            outbuf[outn++] = (char)(prefix & 255);
            outbuf[outn++] = (char)(prefix >> 8);
            if (next_code < 65536) {
                htab[key] = (prefix << 8) | c;
                codetab[key] = next_code++;
            }
            prefix = c;
        }
    }
    outbuf[outn++] = (char)(prefix & 255);
    return outn;
}

int main(void) {
    int iters = @SCALE@;
    int it, i;
    long total = 0;
    unsigned int seed = 99;
    for (it = 0; it < iters; it++) {
        for (i = 0; i < 2047; i++) {
            seed = seed * 1103515245 + 12345;
            /* Skewed distribution compresses like text. */
            inbuf[i] = (char)('a' + ((seed >> 8) % 16) % 8);
        }
        inbuf[2047] = 0;
        total += compress_block(2047);
    }
    printf("compress %ld\n", total);
    return 0;
}`

// ijpegSrc: 8x8 forward DCT, quantization, and dequantization over image
// blocks, in the style of SPEC 132.ijpeg.
const ijpegSrc = `
int image[64][64];
int block[8][8];
int coef[8][8];
int quant[8][8];

void fdct_rows(void) {
    int i, j, k;
    int tmp[8];
    for (i = 0; i < 8; i++) {
        for (j = 0; j < 8; j++) {
            int acc = 0;
            for (k = 0; k < 8; k++)
                acc += block[i][k] * ((k + 1) * (2 * j + 1) % 16 - 8);
            tmp[j] = acc >> 3;
        }
        for (j = 0; j < 8; j++)
            block[i][j] = tmp[j];
    }
}

void fdct_cols(void) {
    int i, j, k;
    int tmp[8];
    for (j = 0; j < 8; j++) {
        for (i = 0; i < 8; i++) {
            int acc = 0;
            for (k = 0; k < 8; k++)
                acc += block[k][j] * ((k + 1) * (2 * i + 1) % 16 - 8);
            tmp[i] = acc >> 3;
        }
        for (i = 0; i < 8; i++)
            coef[i][j] = tmp[i];
    }
}

int main(void) {
    int passes = @SCALE@;
    int p, bx, by, i, j;
    long checksum = 0;
    unsigned int seed = 31;
    for (i = 0; i < 8; i++)
        for (j = 0; j < 8; j++)
            quant[i][j] = 1 + ((i + j) * 2);
    for (i = 0; i < 64; i++) {
        for (j = 0; j < 64; j++) {
            seed = seed * 1103515245 + 12345;
            image[i][j] = (int)((seed >> 8) % 256);
        }
    }
    for (p = 0; p < passes; p++) {
        for (by = 0; by < 8; by++) {
            for (bx = 0; bx < 8; bx++) {
                for (i = 0; i < 8; i++)
                    for (j = 0; j < 8; j++)
                        block[i][j] = image[by * 8 + i][bx * 8 + j] - 128;
                fdct_rows();
                fdct_cols();
                for (i = 0; i < 8; i++) {
                    for (j = 0; j < 8; j++) {
                        int q = coef[i][j] / quant[i][j];
                        checksum += q;
                        image[by * 8 + i][bx * 8 + j] = (q * quant[i][j] + 128) & 255;
                    }
                }
            }
        }
    }
    printf("ijpeg %ld\n", checksum);
    return 0;
}`

// libquantumSrc: Grover-style iteration over a quantum register stored
// as an array of amplitude structs, in the style of SPEC 462.libquantum.
// Struct-array access with scalar math; few pointer moves.
const libquantumSrc = `
struct amp { double re; double im; long state; };
struct amp reg[1024];

void hadamard(int target, int n) {
    int i;
    long mask = 1L << target;
    double s = 0.70710678118654752;
    for (i = 0; i < n; i++) {
        if ((reg[i].state & mask) == 0) {
            int partner = i + (int)mask;
            double are = reg[i].re;
            double aim = reg[i].im;
            double bre = reg[partner].re;
            double bim = reg[partner].im;
            reg[i].re = s * (are + bre);
            reg[i].im = s * (aim + bim);
            reg[partner].re = s * (are - bre);
            reg[partner].im = s * (aim - bim);
        }
    }
}

void phase_flip(long needle, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (reg[i].state == needle) {
            reg[i].re = -reg[i].re;
            reg[i].im = -reg[i].im;
        }
    }
}

int main(void) {
    int qubits = 10;
    int n = 1 << qubits;
    int iters = @SCALE@;
    int it, i, q;
    double norm = 0.0;
    for (i = 0; i < n; i++) {
        reg[i].state = (long)i;
        reg[i].re = (i == 0) ? 1.0 : 0.0;
        reg[i].im = 0.0;
    }
    for (it = 0; it < iters; it++) {
        for (q = 0; q < qubits - 1; q++)
            hadamard(q, n);
        phase_flip(42, n);
        for (q = 0; q < qubits - 1; q++)
            hadamard(q, n);
    }
    for (i = 0; i < n; i++)
        norm += reg[i].re * reg[i].re + reg[i].im * reg[i].im;
    printf("libquantum %g\n", norm);
    return 0;
}`
