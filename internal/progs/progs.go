// Package progs contains the 15 benchmark workloads of the paper's
// performance evaluation (§6.3): six SPEC-CPU-style programs and nine
// Olden-style programs. What matters for reproducing Figure 1 and
// Figure 2 is each program's *memory-operation mix*: the SPEC-style
// codes compute over scalar arrays and move almost no pointers, while
// the Olden codes traverse linked data structures where half or more of
// all memory operations load or store a pointer. Each workload is a
// faithful miniature of the original program's algorithm and data
// structures.
package progs

import (
	"fmt"
	"sort"
	"strings"
)

// Class tags the benchmark's provenance in the paper.
type Class int

// Benchmark classes.
const (
	SPEC Class = iota
	Olden
)

func (c Class) String() string {
	if c == SPEC {
		return "spec"
	}
	return "olden"
}

// Benchmark is one workload.
type Benchmark struct {
	Name  string
	Class Class
	// DefaultScale is the problem size used by the harness; tests use
	// smaller scales.
	DefaultScale int
	// source contains "@SCALE@" where the problem size is substituted.
	source string
}

// Source renders the program at the given scale (0 = default).
func (b Benchmark) Source(scale int) string {
	if scale <= 0 {
		scale = b.DefaultScale
	}
	return strings.ReplaceAll(b.source, "@SCALE@", fmt.Sprint(scale))
}

var registry = map[string]Benchmark{}

func register(b Benchmark) {
	if _, dup := registry[b.Name]; dup {
		panic("duplicate benchmark " + b.Name)
	}
	registry[b.Name] = b
}

// Get returns a benchmark by name.
func Get(name string) (Benchmark, bool) {
	b, ok := registry[name]
	return b, ok
}

// All returns every benchmark in the paper's Figure 1 presentation
// order (sorted by pointer-memory-operation frequency).
func All() []Benchmark {
	// Figure 1 order in the paper.
	order := []string{
		"go", "lbm", "hmmer", "compress", "ijpeg",
		"bh", "tsp", "libquantum", "perimeter", "health",
		"bisort", "mst", "li", "em3d", "treeadd",
	}
	out := make([]Benchmark, 0, len(order))
	for _, n := range order {
		b, ok := registry[n]
		if !ok {
			panic("missing benchmark " + n)
		}
		out = append(out, b)
	}
	return out
}

// Names returns all benchmark names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
