package progs

import (
	"testing"

	"softbound/internal/driver"
)

// smallScale gives a fast test problem size per benchmark.
var smallScale = map[string]int{
	"go": 8, "lbm": 4, "hmmer": 8, "compress": 4, "ijpeg": 3,
	"bh": 16, "tsp": 6, "libquantum": 2, "perimeter": 4, "health": 10,
	"bisort": 6, "mst": 24, "li": 4, "em3d": 40, "treeadd": 8,
}

func TestAllFifteenRegistered(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("got %d benchmarks, want 15", len(all))
	}
	spec, olden := 0, 0
	for _, b := range all {
		if b.Class == SPEC {
			spec++
		} else {
			olden++
		}
	}
	if spec != 6 || olden != 9 {
		t.Fatalf("got %d SPEC + %d Olden, want 6 + 9", spec, olden)
	}
}

// TestBenchmarksRunCleanAllModes runs every workload in every mode:
// correct programs must produce identical output with and without
// instrumentation (no false positives, no semantic change).
func TestBenchmarksRunCleanAllModes(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			src := b.Source(smallScale[b.Name])
			var ref string
			for _, mode := range []driver.Mode{driver.ModeNone, driver.ModeStoreOnly, driver.ModeFull} {
				res, err := driver.RunSource(src, driver.DefaultConfig(mode))
				if err != nil {
					t.Fatalf("mode %v: compile: %v", mode, err)
				}
				if res.Err != nil {
					t.Fatalf("mode %v: run: %v (output %q)", mode, res.Err, res.Output)
				}
				if res.Output == "" {
					t.Fatalf("mode %v: no output", mode)
				}
				if ref == "" {
					ref = res.Output
				} else if res.Output != ref {
					t.Fatalf("mode %v: output %q differs from unchecked %q", mode, res.Output, ref)
				}
			}
		})
	}
}

// TestPointerMixMatchesPaperShape checks the property Figure 1 plots:
// SPEC-style workloads move few pointers; Olden-style workloads move
// many. (The paper's dividing line: several SPEC benchmarks below 5%,
// Olden benchmarks up to 50%+.)
func TestPointerMixMatchesPaperShape(t *testing.T) {
	fracs := make(map[string]float64)
	for _, b := range All() {
		src := b.Source(smallScale[b.Name])
		res, err := driver.RunSource(src, driver.DefaultConfig(driver.ModeNone))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if res.Err != nil {
			t.Fatalf("%s: %v", b.Name, res.Err)
		}
		fracs[b.Name] = res.Stats.PtrMemFrac()
	}
	for _, name := range []string{"go", "lbm", "hmmer", "compress", "ijpeg"} {
		if fracs[name] > 0.10 {
			t.Errorf("SPEC-style %s has %.1f%% pointer memory ops, want < 10%%",
				name, 100*fracs[name])
		}
	}
	for _, name := range []string{"treeadd", "em3d", "li", "bisort", "perimeter"} {
		if fracs[name] < 0.25 {
			t.Errorf("Olden-style %s has %.1f%% pointer memory ops, want > 25%%",
				name, 100*fracs[name])
		}
	}
	if fracs["treeadd"] <= fracs["go"] {
		t.Errorf("treeadd (%.1f%%) should exceed go (%.1f%%)",
			100*fracs["treeadd"], 100*fracs["go"])
	}
}
