package progs

// The Olden-style workloads: linked data structures (trees, lists,
// graphs) where a large fraction of memory operations move pointers —
// the right side of Figure 1. These are the benchmarks whose overhead is
// dominated by metadata accesses in Figure 2.

func init() {
	register(Benchmark{Name: "bh", Class: Olden, DefaultScale: 64, source: bhSrc})
	register(Benchmark{Name: "tsp", Class: Olden, DefaultScale: 9, source: tspSrc})
	register(Benchmark{Name: "perimeter", Class: Olden, DefaultScale: 6, source: perimeterSrc})
	register(Benchmark{Name: "health", Class: Olden, DefaultScale: 40, source: healthSrc})
	register(Benchmark{Name: "bisort", Class: Olden, DefaultScale: 10, source: bisortSrc})
	register(Benchmark{Name: "mst", Class: Olden, DefaultScale: 64, source: mstSrc})
	register(Benchmark{Name: "li", Class: Olden, DefaultScale: 10, source: liSrc})
	register(Benchmark{Name: "em3d", Class: Olden, DefaultScale: 120, source: em3dSrc})
	register(Benchmark{Name: "treeadd", Class: Olden, DefaultScale: 14, source: treeaddSrc})
}

// bhSrc: Barnes-Hut style hierarchical n-body — an oct(quad)tree of cell
// nodes over body structs; force walks mix pointer chasing with double
// math.
const bhSrc = `
struct body {
    double x; double y;
    double vx; double vy;
    double mass;
    struct body* next;
};
struct cell {
    double cx; double cy; double mass;
    double x0; double y0; double size;
    struct cell* quad[4];
    struct body* b;
};

struct cell* new_cell(double x0, double y0, double size) {
    struct cell* c = (struct cell*)malloc(sizeof(struct cell));
    int i;
    c->cx = 0.0; c->cy = 0.0; c->mass = 0.0;
    c->x0 = x0; c->y0 = y0; c->size = size;
    for (i = 0; i < 4; i++)
        c->quad[i] = (struct cell*)0;
    c->b = (struct body*)0;
    return c;
}

void insert(struct cell* c, struct body* b) {
    for (;;) {
        int q;
        double half = c->size * 0.5;
        double mx = c->x0 + half;
        double my = c->y0 + half;
        c->mass += b->mass;
        c->cx += b->x * b->mass;
        c->cy += b->y * b->mass;
        if (c->b == (struct body*)0 && c->quad[0] == (struct cell*)0 &&
            c->quad[1] == (struct cell*)0 && c->quad[2] == (struct cell*)0 &&
            c->quad[3] == (struct cell*)0) {
            c->b = b;
            return;
        }
        if (c->b != (struct body*)0 && c->size > 0.001) {
            /* Split: push the resident body down. */
            struct body* old = c->b;
            int oq = (old->x >= mx ? 1 : 0) + (old->y >= my ? 2 : 0);
            c->b = (struct body*)0;
            if (c->quad[oq] == (struct cell*)0)
                c->quad[oq] = new_cell(c->x0 + (oq & 1 ? half : 0.0),
                                       c->y0 + (oq & 2 ? half : 0.0), half);
            insert(c->quad[oq], old);
        }
        q = (b->x >= mx ? 1 : 0) + (b->y >= my ? 2 : 0);
        if (c->quad[q] == (struct cell*)0)
            c->quad[q] = new_cell(c->x0 + (q & 1 ? half : 0.0),
                                  c->y0 + (q & 2 ? half : 0.0), half);
        c = c->quad[q];
        b = b;
    }
}

void force(struct cell* c, struct body* b, double* fx, double* fy) {
    double dx, dy, d2, inv;
    int i;
    if (c == (struct cell*)0 || c->mass == 0.0)
        return;
    dx = c->cx / c->mass - b->x;
    dy = c->cy / c->mass - b->y;
    d2 = dx * dx + dy * dy + 0.0001;
    if (c->size * c->size < 0.25 * d2 || (c->b != (struct body*)0)) {
        if (c->b == b)
            return;
        inv = c->mass / (d2 * sqrt(d2));
        *fx += dx * inv;
        *fy += dy * inv;
        return;
    }
    for (i = 0; i < 4; i++)
        force(c->quad[i], b, fx, fy);
}

int main(void) {
    int n = @SCALE@;
    int steps = 4;
    struct body* bodies = (struct body*)0;
    struct body* b;
    int i, t;
    double checksum = 0.0;
    unsigned int seed = 17;
    for (i = 0; i < n; i++) {
        struct body* nb = (struct body*)malloc(sizeof(struct body));
        seed = seed * 1103515245 + 12345;
        nb->x = (double)((seed >> 8) % 1000) / 1000.0;
        seed = seed * 1103515245 + 12345;
        nb->y = (double)((seed >> 8) % 1000) / 1000.0;
        nb->vx = 0.0;
        nb->vy = 0.0;
        nb->mass = 1.0;
        nb->next = bodies;
        bodies = nb;
    }
    for (t = 0; t < steps; t++) {
        struct cell* root = new_cell(0.0, 0.0, 1.0);
        for (b = bodies; b; b = b->next)
            insert(root, b);
        for (b = bodies; b; b = b->next) {
            double fx = 0.0;
            double fy = 0.0;
            force(root, b, &fx, &fy);
            b->vx += 0.001 * fx;
            b->vy += 0.001 * fy;
            b->x += b->vx;
            b->y += b->vy;
            if (b->x < 0.0) b->x = 0.0;
            if (b->x > 0.999) b->x = 0.999;
            if (b->y < 0.0) b->y = 0.0;
            if (b->y > 0.999) b->y = 0.999;
        }
    }
    for (b = bodies; b; b = b->next)
        checksum += b->x + b->y;
    printf("bh %g\n", checksum);
    return 0;
}`

// tspSrc: Olden tsp — build a balanced binary tree of cities, then form
// a tour by recursive merging of subtree tours (closest-point style).
const tspSrc = `
struct city {
    double x; double y;
    struct city* left;
    struct city* right;
    struct city* next;   /* tour link */
};

unsigned int seed = 91;
double frand(void) {
    seed = seed * 1103515245 + 12345;
    return (double)((seed >> 8) % 10000) / 10000.0;
}

struct city* build(int depth, double x0, double x1, double y0, double y1) {
    struct city* c;
    if (depth == 0)
        return (struct city*)0;
    c = (struct city*)malloc(sizeof(struct city));
    c->x = x0 + (x1 - x0) * frand();
    c->y = y0 + (y1 - y0) * frand();
    c->left = build(depth - 1, x0, (x0 + x1) * 0.5, y0, y1);
    c->right = build(depth - 1, (x0 + x1) * 0.5, x1, y0, y1);
    c->next = (struct city*)0;
    return c;
}

double dist(struct city* a, struct city* b) {
    double dx = a->x - b->x;
    double dy = a->y - b->y;
    return sqrt(dx * dx + dy * dy);
}

/* Merge two circular tours by the cheapest splice. */
struct city* merge_tours(struct city* a, struct city* b) {
    struct city* best_a = a;
    struct city* pa = a;
    double best = 1.0e30;
    if (a == (struct city*)0) return b;
    if (b == (struct city*)0) return a;
    do {
        double d = dist(pa, b);
        if (d < best) {
            best = d;
            best_a = pa;
        }
        pa = pa->next;
    } while (pa != a);
    {
        struct city* an = best_a->next;
        struct city* bn = b->next;
        best_a->next = bn;
        b->next = an;
    }
    return a;
}

/* Build a tour over the tree: leaf tours are self-loops. */
struct city* tour(struct city* t) {
    struct city* lt;
    struct city* rt;
    if (t == (struct city*)0)
        return (struct city*)0;
    lt = tour(t->left);
    rt = tour(t->right);
    t->next = t;
    return merge_tours(merge_tours(t, lt), rt);
}

int main(void) {
    int depth = @SCALE@;
    struct city* root = build(depth, 0.0, 1.0, 0.0, 1.0);
    struct city* start = tour(root);
    struct city* p = start;
    double len = 0.0;
    int n = 0;
    do {
        len += dist(p, p->next);
        p = p->next;
        n++;
    } while (p != start);
    printf("tsp %d %g\n", n, len);
    return 0;
}`

// perimeterSrc: Olden perimeter — quadtree image representation; compute
// the perimeter of the black region by neighbour finding.
const perimeterSrc = `
struct quad {
    int color;                 /* 0 white, 1 black, 2 grey */
    int level;
    struct quad* child[4];     /* nw ne sw se */
    struct quad* parent;
    int childno;
};

unsigned int seed = 5;
int frand255(void) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % 255);
}

struct quad* build(int level, struct quad* parent, int childno) {
    struct quad* q = (struct quad*)malloc(sizeof(struct quad));
    int i;
    q->level = level;
    q->parent = parent;
    q->childno = childno;
    for (i = 0; i < 4; i++)
        q->child[i] = (struct quad*)0;
    if (level == 0) {
        q->color = frand255() < 100 ? 1 : 0;
        return q;
    }
    q->color = 2;
    for (i = 0; i < 4; i++)
        q->child[i] = build(level - 1, q, i);
    /* Collapse uniform children. */
    if (q->child[0]->color != 2) {
        int c = q->child[0]->color;
        int uniform = 1;
        for (i = 1; i < 4; i++)
            if (q->child[i]->color != c)
                uniform = 0;
        if (uniform) {
            q->color = c;
            for (i = 0; i < 4; i++)
                q->child[i] = (struct quad*)0;
        }
    }
    return q;
}

int count_leaves(struct quad* q, int color) {
    int i;
    int n = 0;
    if (q == (struct quad*)0)
        return 0;
    if (q->color != 2)
        return (q->color == color) ? (1 << (2 * q->level)) : 0;
    for (i = 0; i < 4; i++)
        n += count_leaves(q->child[i], color);
    return n;
}

/* Side lengths exposed on each edge: visit tree edges, pairing
   neighbouring quadrants within the same parent. */
int edge_contrib(struct quad* a, struct quad* b) {
    if (a == (struct quad*)0 || b == (struct quad*)0)
        return 0;
    if (a->color == 2 || b->color == 2) {
        int n = 0;
        if (a->color == 2 && b->color == 2) {
            n += edge_contrib(a->child[1], b->child[0]);
            n += edge_contrib(a->child[3], b->child[2]);
        } else if (a->color == 2) {
            n += edge_contrib(a->child[1], b);
            n += edge_contrib(a->child[3], b);
        } else {
            n += edge_contrib(a, b->child[0]);
            n += edge_contrib(a, b->child[2]);
        }
        return n;
    }
    if (a->color != b->color)
        return 1 << (a->level < b->level ? a->level : b->level);
    return 0;
}

int perimeter(struct quad* q) {
    int n = 0;
    if (q == (struct quad*)0 || q->color != 2)
        return 0;
    n += edge_contrib(q->child[0], q->child[1]);
    n += edge_contrib(q->child[2], q->child[3]);
    n += perimeter(q->child[0]);
    n += perimeter(q->child[1]);
    n += perimeter(q->child[2]);
    n += perimeter(q->child[3]);
    return n;
}

int main(void) {
    int levels = @SCALE@;
    struct quad* root = build(levels, (struct quad*)0, 0);
    int black = count_leaves(root, 1);
    int perim = perimeter(root);
    printf("perimeter %d %d\n", black, perim);
    return 0;
}`

// healthSrc: Olden health — a hierarchy of hospital villages with
// patient linked lists flowing up the hierarchy. Dominated by list
// splicing: pointer loads/stores.
const healthSrc = `
struct patient {
    int id;
    int time;
    int hosps;
    struct patient* next;
};
struct village {
    struct village* child[4];
    struct patient* waiting;
    struct patient* assess;
    int seed;
    int level;
    long treated;
};

struct village* build(int level, int seedval) {
    struct village* v = (struct village*)malloc(sizeof(struct village));
    int i;
    v->waiting = (struct patient*)0;
    v->assess = (struct patient*)0;
    v->seed = seedval;
    v->level = level;
    v->treated = 0;
    for (i = 0; i < 4; i++) {
        if (level > 0)
            v->child[i] = build(level - 1, seedval * 4 + i + 1);
        else
            v->child[i] = (struct village*)0;
    }
    return v;
}

int vrand(struct village* v) {
    v->seed = v->seed * 1103515245 + 12345;
    return (v->seed >> 8) & 32767;
}

/* One simulation step: generate patients at leaves, move waiting ->
   assess, bubble unhealed patients to the parent. Returns the list of
   patients this village passes up. */
struct patient* step(struct village* v, int t) {
    struct patient* up = (struct patient*)0;
    struct patient* p;
    struct patient* nextp;
    int i;
    if (v == (struct village*)0)
        return (struct patient*)0;
    /* Collect children's escalations into our waiting list. */
    for (i = 0; i < 4; i++) {
        p = step(v->child[i], t);
        while (p) {
            nextp = p->next;
            p->next = v->waiting;
            v->waiting = p;
            p = nextp;
        }
    }
    /* Leaves generate new patients. */
    if (v->level == 0 && vrand(v) % 3 == 0) {
        p = (struct patient*)malloc(sizeof(struct patient));
        p->id = vrand(v);
        p->time = t;
        p->hosps = 0;
        p->next = v->waiting;
        v->waiting = p;
    }
    /* Treat: each waiting patient is either cured here or escalated. */
    p = v->waiting;
    v->waiting = (struct patient*)0;
    while (p) {
        nextp = p->next;
        p->hosps++;
        if (vrand(v) % 4 == 0 || v->level >= 3) {
            v->treated++;
            free(p);
        } else {
            p->next = up;
            up = p;
        }
        p = nextp;
    }
    return up;
}

long total(struct village* v) {
    long n;
    int i;
    if (v == (struct village*)0)
        return 0;
    n = v->treated;
    for (i = 0; i < 4; i++)
        n += total(v->child[i]);
    return n;
}

int main(void) {
    int steps = @SCALE@;
    struct village* top = build(3, 1);
    int t;
    for (t = 0; t < steps; t++) {
        struct patient* leftover = step(top, t);
        while (leftover) {
            struct patient* n = leftover->next;
            free(leftover);
            leftover = n;
        }
    }
    printf("health %ld\n", total(top));
    return 0;
}`

// bisortSrc: Olden bisort — bitonic sort over a binary tree of integers,
// swapping subtrees in place.
const bisortSrc = `
struct node {
    int value;
    struct node* left;
    struct node* right;
};

unsigned int seed = 23;
int nrand(void) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) & 65535);
}

struct node* build(int depth) {
    struct node* n;
    if (depth == 0)
        return (struct node*)0;
    n = (struct node*)malloc(sizeof(struct node));
    n->value = nrand();
    n->left = build(depth - 1);
    n->right = build(depth - 1);
    return n;
}

void swap_value(struct node* a, struct node* b) {
    int t = a->value;
    a->value = b->value;
    b->value = t;
}

void swap_subtrees(struct node* a, struct node* b) {
    struct node* t = a->left;
    a->left = b->left;
    b->left = t;
    t = a->right;
    a->right = b->right;
    b->right = t;
}

/* Bimerge: merge a bitonic sequence held in the tree. */
void bimerge(struct node* root, int up) {
    struct node* l;
    struct node* r;
    if (root == (struct node*)0)
        return;
    l = root->left;
    r = root->right;
    while (l != (struct node*)0 && r != (struct node*)0) {
        if ((up && l->value > r->value) || (!up && l->value < r->value)) {
            swap_value(l, r);
            swap_subtrees(l, r);
        }
        l = l->right;
        r = r->right;
    }
    bimerge(root->left, up);
    bimerge(root->right, up);
}

void bisort(struct node* root, int up) {
    if (root == (struct node*)0)
        return;
    bisort(root->left, up);
    bisort(root->right, !up);
    bimerge(root, up);
}

long check(struct node* n) {
    if (n == (struct node*)0)
        return 0;
    return (long)n->value + check(n->left) * 3 + check(n->right) * 7;
}

int main(void) {
    int depth = @SCALE@;
    struct node* root = build(depth);
    bisort(root, 1);
    bisort(root, 0);
    printf("bisort %ld\n", check(root) & 0xffffff);
    return 0;
}`

// mstSrc: Olden mst — Prim's minimum spanning tree over a graph with
// per-vertex adjacency hash lists.
const mstSrc = `
struct edge {
    int to;
    int w;
    struct edge* next;
};
struct vertex {
    struct edge* adj;
    int key;
    int inmst;
};

struct vertex* graph;
int nv;

void add_edge(int a, int b, int w) {
    struct edge* e = (struct edge*)malloc(sizeof(struct edge));
    e->to = b;
    e->w = w;
    e->next = graph[a].adj;
    graph[a].adj = e;
}

int main(void) {
    int n = @SCALE@;
    int i, j, it;
    long mst_weight = 0;
    unsigned int seed = 41;
    nv = n;
    graph = (struct vertex*)malloc(n * sizeof(struct vertex));
    for (i = 0; i < n; i++) {
        graph[i].adj = (struct edge*)0;
        graph[i].key = 1 << 30;
        graph[i].inmst = 0;
    }
    /* A connected sparse graph: ring + random chords. */
    for (i = 0; i < n; i++) {
        seed = seed * 1103515245 + 12345;
        add_edge(i, (i + 1) % n, (int)((seed >> 8) % 100) + 1);
        add_edge((i + 1) % n, i, (int)((seed >> 8) % 100) + 1);
        seed = seed * 1103515245 + 12345;
        j = (int)((seed >> 8) % n);
        if (j != i) {
            seed = seed * 1103515245 + 12345;
            add_edge(i, j, (int)((seed >> 8) % 200) + 1);
            add_edge(j, i, (int)((seed >> 8) % 200) + 1);
        }
    }
    /* Prim's algorithm with a linear scan "heap" (as Olden does). */
    graph[0].key = 0;
    for (it = 0; it < n; it++) {
        int best = -1;
        int bestkey = 1 << 30;
        struct edge* e;
        for (i = 0; i < n; i++) {
            if (!graph[i].inmst && graph[i].key < bestkey) {
                bestkey = graph[i].key;
                best = i;
            }
        }
        if (best < 0)
            break;
        graph[best].inmst = 1;
        mst_weight += bestkey;
        for (e = graph[best].adj; e; e = e->next) {
            if (!graph[e->to].inmst && e->w < graph[e->to].key)
                graph[e->to].key = e->w;
        }
    }
    printf("mst %ld\n", mst_weight);
    return 0;
}`

// liSrc: a miniature xlisp — cons cells, an environment a-list, eval
// over lambda/arith special forms. The most pointer-dense workload,
// matching li's position in Figure 1.
const liSrc = `
/* Cell tags. */
enum { NIL_T, NUM_T, SYM_T, CONS_T, LAMBDA_T };

struct cell {
    int tag;
    long num;            /* NUM_T */
    int sym;             /* SYM_T: symbol id */
    struct cell* car;    /* CONS_T / LAMBDA_T: params */
    struct cell* cdr;    /* CONS_T / LAMBDA_T: body   */
    struct cell* env;    /* LAMBDA_T: closure env     */
};

struct cell* nil_cell;

struct cell* new_cell(int tag) {
    struct cell* c = (struct cell*)malloc(sizeof(struct cell));
    c->tag = tag;
    c->num = 0;
    c->sym = 0;
    c->car = nil_cell;
    c->cdr = nil_cell;
    c->env = nil_cell;
    return c;
}

struct cell* mknum(long v) {
    struct cell* c = new_cell(NUM_T);
    c->num = v;
    return c;
}

struct cell* mksym(int s) {
    struct cell* c = new_cell(SYM_T);
    c->sym = s;
    return c;
}

struct cell* cons(struct cell* a, struct cell* d) {
    struct cell* c = new_cell(CONS_T);
    c->car = a;
    c->cdr = d;
    return c;
}

/* env: list of (sym . value) conses. */
struct cell* lookup(struct cell* env, int sym) {
    while (env->tag == CONS_T) {
        if (env->car->car->sym == sym)
            return env->car->cdr;
        env = env->cdr;
    }
    return nil_cell;
}

struct cell* bind(struct cell* env, int sym, struct cell* val) {
    return cons(cons(mksym(sym), val), env);
}

/* Symbols: 0 '+', 1 '-', 2 '*', 3 'if', 4 'lambda', 10.. variables. */
struct cell* eval(struct cell* x, struct cell* env);

struct cell* eval_list_sum(struct cell* args, struct cell* env, int op) {
    long acc;
    struct cell* first = eval(args->car, env);
    acc = first->num;
    args = args->cdr;
    while (args->tag == CONS_T) {
        long v = eval(args->car, env)->num;
        if (op == 0) acc += v;
        if (op == 1) acc -= v;
        if (op == 2) acc *= v;
        args = args->cdr;
    }
    return mknum(acc);
}

struct cell* eval(struct cell* x, struct cell* env) {
    if (x->tag == NUM_T)
        return x;
    if (x->tag == SYM_T)
        return lookup(env, x->sym);
    if (x->tag == CONS_T) {
        struct cell* head = x->car;
        if (head->tag == SYM_T) {
            int s = head->sym;
            if (s <= 2)
                return eval_list_sum(x->cdr, env, s);
            if (s == 3) { /* (if c t e) */
                struct cell* c = eval(x->cdr->car, env);
                if (c->num != 0)
                    return eval(x->cdr->cdr->car, env);
                return eval(x->cdr->cdr->cdr->car, env);
            }
            if (s == 4) { /* (lambda (p) body) */
                struct cell* lam = new_cell(LAMBDA_T);
                lam->car = x->cdr->car;        /* params */
                lam->cdr = x->cdr->cdr->car;   /* body */
                lam->env = env;
                return lam;
            }
        }
        /* Application. */
        {
            struct cell* fn = eval(head, env);
            struct cell* args = x->cdr;
            struct cell* fenv = fn->env;
            struct cell* params = fn->car;
            while (params->tag == CONS_T && args->tag == CONS_T) {
                fenv = bind(fenv, params->car->sym, eval(args->car, env));
                params = params->cdr;
                args = args->cdr;
            }
            return eval(fn->cdr, fenv);
        }
    }
    return nil_cell;
}

int main(void) {
    int iters = @SCALE@;
    int i;
    long total = 0;
    struct cell* env;
    struct cell* fib;
    nil_cell = (struct cell*)malloc(sizeof(struct cell));
    nil_cell->tag = NIL_T;
    nil_cell->car = nil_cell;
    nil_cell->cdr = nil_cell;
    nil_cell->env = nil_cell;
    env = nil_cell;

    /* fib = (lambda (n) (if n (if (- n 1) (+ (fib (- n 1)) (fib (- n 2))) 1) 0))
       built as cell structure; symbol 10 = n, symbol 11 = fib. */
    {
        struct cell* n_ = mksym(10);
        struct cell* fibs = mksym(11);
        struct cell* one = mknum(1);
        struct cell* two = mknum(2);
        struct cell* nm1 = cons(mksym(1), cons(n_, cons(one, nil_cell)));
        struct cell* nm2 = cons(mksym(1), cons(n_, cons(two, nil_cell)));
        struct cell* call1 = cons(fibs, cons(nm1, nil_cell));
        struct cell* call2 = cons(fibs, cons(nm2, nil_cell));
        struct cell* sum = cons(mksym(0), cons(call1, cons(call2, nil_cell)));
        struct cell* inner = cons(mksym(3), cons(nm1, cons(sum, cons(one, nil_cell))));
        struct cell* body = cons(mksym(3), cons(n_, cons(inner, cons(mknum(0), nil_cell))));
        struct cell* lam = cons(mksym(4), cons(cons(n_, nil_cell), cons(body, nil_cell)));
        fib = eval(lam, env);
        env = bind(env, 11, fib);
        fib->env = env;   /* tie the recursive knot */
    }
    for (i = 0; i < iters; i++) {
        struct cell* call = cons(mksym(11), cons(mknum(10 + (i % 3)), nil_cell));
        total += eval(call, env)->num;
    }
    printf("li %ld\n", total);
    return 0;
}`

// em3dSrc: Olden em3d — electromagnetic wave propagation on a bipartite
// graph; each node's value is a weighted sum over pointer arrays of
// neighbours. The highest pointer-load density of the suite.
const em3dSrc = `
struct node {
    double value;
    int degree;
    struct node** to;      /* neighbour pointer array */
    double* coeffs;
    struct node* next;
};

unsigned int seed = 67;
int grand(int m) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % m);
}

struct node* make_list(int n) {
    struct node* head = (struct node*)0;
    int i;
    for (i = 0; i < n; i++) {
        struct node* nd = (struct node*)malloc(sizeof(struct node));
        nd->value = (double)grand(1000) / 1000.0;
        nd->degree = 0;
        nd->to = (struct node**)0;
        nd->coeffs = (double*)0;
        nd->next = head;
        head = nd;
    }
    return head;
}

struct node** index_list(struct node* head, int n) {
    struct node** idx = (struct node**)malloc(n * sizeof(struct node*));
    int i = 0;
    struct node* p;
    for (p = head; p; p = p->next)
        idx[i++] = p;
    return idx;
}

void connect(struct node* from, struct node** pool, int n, int degree) {
    int i;
    from->degree = degree;
    from->to = (struct node**)malloc(degree * sizeof(struct node*));
    from->coeffs = (double*)malloc(degree * sizeof(double));
    for (i = 0; i < degree; i++) {
        from->to[i] = pool[grand(n)];
        from->coeffs[i] = (double)grand(100) / 100.0 - 0.5;
    }
}

void compute(struct node* list) {
    struct node* p;
    for (p = list; p; p = p->next) {
        double v = p->value;
        int i;
        for (i = 0; i < p->degree; i++)
            v -= p->coeffs[i] * p->to[i]->value;
        p->value = v;
    }
}

int main(void) {
    int n = @SCALE@;
    int degree = 4;
    int iters = 12;
    struct node* enodes = make_list(n);
    struct node* hnodes = make_list(n);
    struct node** eidx = index_list(enodes, n);
    struct node** hidx = index_list(hnodes, n);
    struct node* p;
    int t;
    double checksum = 0.0;
    for (p = enodes; p; p = p->next)
        connect(p, hidx, n, degree);
    for (p = hnodes; p; p = p->next)
        connect(p, eidx, n, degree);
    for (t = 0; t < iters; t++) {
        compute(enodes);
        compute(hnodes);
    }
    for (p = enodes; p; p = p->next)
        checksum += p->value;
    printf("em3d %g\n", checksum);
    return 0;
}`

// treeaddSrc: Olden treeadd — build a binary tree, sum it recursively.
// Almost every memory operation is a pointer load.
const treeaddSrc = `
struct tree {
    int value;
    struct tree* left;
    struct tree* right;
};

struct tree* build(int depth) {
    struct tree* t;
    if (depth == 0)
        return (struct tree*)0;
    t = (struct tree*)malloc(sizeof(struct tree));
    t->value = 1;
    t->left = build(depth - 1);
    t->right = build(depth - 1);
    return t;
}

long treeadd(struct tree* t) {
    if (t == (struct tree*)0)
        return 0;
    return (long)t->value + treeadd(t->left) + treeadd(t->right);
}

int main(void) {
    int depth = @SCALE@;
    int passes = 6;
    struct tree* root = build(depth);
    long total = 0;
    int i;
    for (i = 0; i < passes; i++)
        total += treeadd(root);
    printf("treeadd %ld\n", total);
    return 0;
}`
