// Package retry is the shared bounded-retry policy for contained,
// possibly-transient failures. It grew out of the benchmark harness's
// per-cell containment loop (one bounded retry after a recovered panic or
// an abandoned hung cell) and is now also the execution service's policy
// for contained crashes, with exponential backoff and deterministic
// jitter added for the long-running case.
//
// The policy deliberately retries only failures the caller has judged
// transient. Deterministic outcomes — spatial violations, step budgets,
// VM deadline traps — must not be retried: the program genuinely produced
// that answer, and a rerun just doubles the wall time to reach it again
// (vm.TrapCode.Retryable encodes that judgment).
//
// Jitter is deterministic: equal (Policy, Seed) values produce equal
// sleep schedules, mirroring the faults package's replayability contract.
package retry

import (
	"context"
	"time"
)

// Policy is a bounded retry schedule.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (<= 0 behaves as 1: no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it. Zero sleeps not at all (the bench harness's
	// policy — its attempts are already seconds long).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = uncapped).
	MaxDelay time.Duration
	// Seed selects the jitter stream; equal seeds jitter identically.
	Seed uint64
}

// Do invokes fn with attempt = 1, 2, ... until fn reports its failure is
// not retryable, MaxAttempts is reached, or ctx is cancelled during a
// backoff sleep. It returns the number of attempts made. fn returning
// false means "done" — either success or a failure that must stand.
func (p Policy) Do(ctx context.Context, fn func(attempt int) (retryable bool)) int {
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	rng := rngState(p.Seed)
	for attempt := 1; ; attempt++ {
		if !fn(attempt) || attempt == max {
			return attempt
		}
		if d := p.backoff(attempt, &rng); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return attempt
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return attempt
		}
	}
}

// backoff returns the sleep before attempt+1: BaseDelay doubled per prior
// retry, capped at MaxDelay, jittered uniformly into [d/2, d] so synced
// retriers (many requests failing at once) spread back out.
func (p Policy) backoff(attempt int, rng *uint64) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(next(rng)%uint64(half+1))
}

// rngState seeds a splitmix64 stream (the same generator the faults
// injector uses, for the same reason: cheap and replayable).
func rngState(seed uint64) uint64 {
	return seed*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
}

func next(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
