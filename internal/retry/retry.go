// Package retry is the shared bounded-retry policy for contained,
// possibly-transient failures. It grew out of the benchmark harness's
// per-cell containment loop (one bounded retry after a recovered panic or
// an abandoned hung cell) and is now also the execution service's policy
// for contained crashes, with exponential backoff and deterministic
// jitter added for the long-running case.
//
// The policy deliberately retries only failures the caller has judged
// transient. Deterministic outcomes — spatial violations, step budgets,
// VM deadline traps — must not be retried: the program genuinely produced
// that answer, and a rerun just doubles the wall time to reach it again
// (vm.TrapCode.Retryable encodes that judgment).
//
// Jitter is deterministic: equal (Policy, Seed) values produce equal
// sleep schedules, mirroring the faults package's replayability contract.
package retry

import (
	"context"
	"time"
)

// Policy is a bounded retry schedule.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first
	// (<= 0 behaves as 1: no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; each further
	// attempt doubles it. Zero sleeps not at all (the bench harness's
	// policy — its attempts are already seconds long).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (0 = uncapped).
	MaxDelay time.Duration
	// Budget caps the CUMULATIVE backoff across one Do call (or one
	// Schedule): each sleep is truncated to the remaining budget, and
	// once it is spent no further retries are allowed. It bounds how
	// long a call site can spend sleeping in total — a supervision
	// restart loop with a Budget cannot sleep unboundedly no matter how
	// many attempts its policy nominally grants. 0 = unbudgeted. A
	// Budget only meters actual backoff: with BaseDelay 0 nothing is
	// ever charged against it.
	Budget time.Duration
	// Seed selects the jitter stream; equal seeds jitter identically.
	Seed uint64
}

// Do invokes fn with attempt = 1, 2, ... until fn reports its failure is
// not retryable, the Schedule is exhausted (MaxAttempts reached or
// Budget spent), or ctx is cancelled during a backoff sleep. It returns
// the number of attempts made. fn returning false means "done" — either
// success or a failure that must stand.
func (p Policy) Do(ctx context.Context, fn func(attempt int) (retryable bool)) int {
	sched := p.Schedule()
	for attempt := 1; ; attempt++ {
		if !fn(attempt) {
			return attempt
		}
		d, ok := sched.Next()
		if !ok {
			return attempt
		}
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return attempt
			case <-t.C:
			}
		} else if ctx.Err() != nil {
			return attempt
		}
	}
}

// Schedule is the stateful view of a Policy's backoff sequence: each
// Next call yields the sleep before one more retry, with the Budget
// truncation applied. Long-running supervisors that cannot phrase their
// loop as a single Do call (a process restart loop, say) walk a
// Schedule directly and build a fresh one once the supervised thing has
// proven healthy again. Equal (Policy, Seed) values yield equal
// schedules.
type Schedule struct {
	p       Policy
	rng     uint64
	attempt int
	slept   time.Duration
}

// Schedule returns the policy's backoff sequence from the top.
func (p Policy) Schedule() *Schedule {
	return &Schedule{p: p, rng: rngState(p.Seed), attempt: 1}
}

// Next returns the backoff to sleep before the next retry, and whether
// that retry is allowed at all. It reports false once MaxAttempts are
// used up or the cumulative backoff Budget is spent; a sleep that would
// overrun the budget is truncated to exactly the remainder (so the
// schedule's total sleep never exceeds Budget) and the retry after it
// is the last.
func (s *Schedule) Next() (time.Duration, bool) {
	max := s.p.MaxAttempts
	if max < 1 {
		max = 1
	}
	if s.attempt >= max {
		return 0, false
	}
	d := s.p.backoff(s.attempt, &s.rng)
	s.attempt++
	if s.p.Budget > 0 && d > 0 {
		remaining := s.p.Budget - s.slept
		if remaining <= 0 {
			return 0, false
		}
		if d > remaining {
			d = remaining
		}
	}
	s.slept += d
	return d, true
}

// backoff returns the sleep before attempt+1: BaseDelay doubled per prior
// retry, capped at MaxDelay, jittered uniformly into [d/2, d] so synced
// retriers (many requests failing at once) spread back out.
func (p Policy) backoff(attempt int, rng *uint64) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(next(rng)%uint64(half+1))
}

// rngState seeds a splitmix64 stream (the same generator the faults
// injector uses, for the same reason: cheap and replayable).
func rngState(seed uint64) uint64 {
	return seed*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
}

func next(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
