package retry

import (
	"context"
	"testing"
	"time"
)

func TestDoStopsWhenNotRetryable(t *testing.T) {
	p := Policy{MaxAttempts: 5}
	var calls int
	attempts := p.Do(context.Background(), func(attempt int) bool {
		calls++
		if attempt != calls {
			t.Errorf("attempt %d delivered as %d", calls, attempt)
		}
		return false // success first try
	})
	if attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want 1/1", attempts, calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	var calls int
	attempts := p.Do(context.Background(), func(int) bool {
		calls++
		return true // always retryable
	})
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d, want 3/3", attempts, calls)
	}
}

func TestZeroPolicyIsSingleAttempt(t *testing.T) {
	var calls int
	attempts := Policy{}.Do(context.Background(), func(int) bool {
		calls++
		return true
	})
	if attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want 1/1 for the zero policy", attempts, calls)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond}
	rng := rngState(1)
	var prevMax time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		d := p.backoff(attempt, &rng)
		// Nominal delay before jitter: min(base << (attempt-1), cap).
		nominal := p.BaseDelay << (attempt - 1)
		if nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		if d < nominal/2 || d > nominal {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, nominal/2, nominal)
		}
		if nominal == p.MaxDelay && prevMax == p.MaxDelay {
			// Capped region: stays within the cap.
			if d > p.MaxDelay {
				t.Errorf("attempt %d: backoff %v exceeds cap %v", attempt, d, p.MaxDelay)
			}
		}
		prevMax = nominal
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
	seq := func(seed uint64) []time.Duration {
		rng := rngState(seed)
		var out []time.Duration
		for a := 1; a <= 4; a++ {
			out = append(out, p.backoff(a, &rng))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter schedules")
	}
}

func TestBudgetTruncatesScheduleDeterministically(t *testing.T) {
	// Nominal (unjittered) sleeps are 40, 80, 160, ... ms; even the
	// jittered lower bounds (20, 40, 80) overrun a 100ms budget well
	// before the 10 attempts are used, so the schedule must end early
	// with its last sleep truncated to exactly the remainder.
	p := Policy{MaxAttempts: 10, BaseDelay: 40 * time.Millisecond, Budget: 100 * time.Millisecond, Seed: 3}
	walk := func() []time.Duration {
		var out []time.Duration
		sched := p.Schedule()
		for {
			d, ok := sched.Next()
			if !ok {
				return out
			}
			out = append(out, d)
		}
	}
	sleeps := walk()
	var total time.Duration
	for _, d := range sleeps {
		total += d
	}
	if total != p.Budget {
		t.Fatalf("truncated schedule sleeps %v ns in total, want exactly the %v budget (sleeps %v)",
			total, p.Budget, sleeps)
	}
	if len(sleeps) >= p.MaxAttempts-1 {
		t.Fatalf("schedule ran all %d retries despite the budget: %v", len(sleeps), sleeps)
	}
	// Deterministic: an equal (Policy, Seed) walks the identical schedule.
	again := walk()
	if len(again) != len(sleeps) {
		t.Fatalf("schedule length diverged: %v vs %v", again, sleeps)
	}
	for i := range sleeps {
		if again[i] != sleeps[i] {
			t.Fatalf("schedule diverged at %d: %v vs %v", i, again, sleeps)
		}
	}
}

func TestDoStopsWhenBudgetSpent(t *testing.T) {
	p := Policy{MaxAttempts: 100, BaseDelay: 2 * time.Millisecond, Budget: 6 * time.Millisecond, Seed: 1}
	// The schedule itself says how many retries the budget affords.
	want := 1
	sched := p.Schedule()
	for {
		if _, ok := sched.Next(); !ok {
			break
		}
		want++
	}
	if want >= 100 {
		t.Fatalf("budget did not bound the schedule: %d attempts", want)
	}
	var calls int
	attempts := p.Do(context.Background(), func(int) bool {
		calls++
		return true // always retryable: only the budget can stop us
	})
	if attempts != want || calls != want {
		t.Fatalf("attempts=%d calls=%d, want %d (budget-bounded)", attempts, calls, want)
	}
}

func TestZeroBudgetIsUnbudgeted(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Microsecond}
	var calls int
	if attempts := p.Do(context.Background(), func(int) bool { calls++; return true }); attempts != 4 || calls != 4 {
		t.Fatalf("attempts=%d calls=%d, want 4/4 with no budget", attempts, calls)
	}
}

func TestDoHonorsContextDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour}
	var calls int
	start := time.Now()
	attempts := p.Do(ctx, func(int) bool {
		calls++
		cancel() // cancel while "failing"; the backoff sleep must abort
		return true
	})
	if attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want 1/1 after cancellation", attempts, calls)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Do slept %v through a cancelled context", elapsed)
	}
}
