package retry

import (
	"context"
	"testing"
	"time"
)

func TestDoStopsWhenNotRetryable(t *testing.T) {
	p := Policy{MaxAttempts: 5}
	var calls int
	attempts := p.Do(context.Background(), func(attempt int) bool {
		calls++
		if attempt != calls {
			t.Errorf("attempt %d delivered as %d", calls, attempt)
		}
		return false // success first try
	})
	if attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want 1/1", attempts, calls)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{MaxAttempts: 3}
	var calls int
	attempts := p.Do(context.Background(), func(int) bool {
		calls++
		return true // always retryable
	})
	if attempts != 3 || calls != 3 {
		t.Fatalf("attempts=%d calls=%d, want 3/3", attempts, calls)
	}
}

func TestZeroPolicyIsSingleAttempt(t *testing.T) {
	var calls int
	attempts := Policy{}.Do(context.Background(), func(int) bool {
		calls++
		return true
	})
	if attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want 1/1 for the zero policy", attempts, calls)
	}
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := Policy{MaxAttempts: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond}
	rng := rngState(1)
	var prevMax time.Duration
	for attempt := 1; attempt <= 6; attempt++ {
		d := p.backoff(attempt, &rng)
		// Nominal delay before jitter: min(base << (attempt-1), cap).
		nominal := p.BaseDelay << (attempt - 1)
		if nominal > p.MaxDelay {
			nominal = p.MaxDelay
		}
		if d < nominal/2 || d > nominal {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, d, nominal/2, nominal)
		}
		if nominal == p.MaxDelay && prevMax == p.MaxDelay {
			// Capped region: stays within the cap.
			if d > p.MaxDelay {
				t.Errorf("attempt %d: backoff %v exceeds cap %v", attempt, d, p.MaxDelay)
			}
		}
		prevMax = nominal
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
	seq := func(seed uint64) []time.Duration {
		rng := rngState(seed)
		var out []time.Duration
		for a := 1; a <= 4; a++ {
			out = append(out, p.backoff(a, &rng))
		}
		return out
	}
	a, b := seq(7), seq(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := seq(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical jitter schedules")
	}
}

func TestDoHonorsContextDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Hour}
	var calls int
	start := time.Now()
	attempts := p.Do(ctx, func(int) bool {
		calls++
		cancel() // cancel while "failing"; the backoff sleep must abort
		return true
	})
	if attempts != 1 || calls != 1 {
		t.Fatalf("attempts=%d calls=%d, want 1/1 after cancellation", attempts, calls)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Do slept %v through a cancelled context", elapsed)
	}
}
