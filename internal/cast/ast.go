// Package cast defines the abstract syntax tree for the C subset. Nodes
// carry positions for diagnostics and, after semantic analysis, resolved
// types (see internal/sema).
package cast

import (
	"softbound/internal/ctoken"
	"softbound/internal/ctypes"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() ctoken.Pos
}

// Expr is an expression node. After sema, Type() reports the expression's
// (decayed where applicable) C type.
type Expr interface {
	Node
	Type() *ctypes.Type
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// exprBase supplies shared expression plumbing.
type exprBase struct {
	P ctoken.Pos
	T *ctypes.Type // filled by sema
}

func (e *exprBase) Pos() ctoken.Pos    { return e.P }
func (e *exprBase) Type() *ctypes.Type { return e.T }
func (e *exprBase) SetType(t *ctypes.Type) {
	e.T = t
}
func (e *exprBase) exprNode() {}

// ---------------------------------------------------------------- literals

// IntLit is an integer or character constant.
type IntLit struct {
	exprBase
	Value uint64
}

// FloatLit is a floating constant.
type FloatLit struct {
	exprBase
	Value float64
}

// StringLit is a string constant; it denotes a char array in static storage.
type StringLit struct {
	exprBase
	Value string // decoded bytes, no trailing NUL
}

// ------------------------------------------------------------- identifiers

// VarKind classifies what an identifier resolved to.
type VarKind int

// Identifier resolution classes.
const (
	VarUnresolved VarKind = iota
	VarLocal              // stack slot in current function
	VarParam              // function parameter
	VarGlobal             // global variable
	VarFunc               // function designator
	VarEnumConst          // enumeration constant
)

// Ident is a name use.
type Ident struct {
	exprBase
	Name string
	Kind VarKind
	// EnumVal is the value when Kind == VarEnumConst.
	EnumVal int64
}

// --------------------------------------------------------------- operators

// Unary is a prefix unary operation: - ! ~ * & ++ -- (prefix).
type Unary struct {
	exprBase
	Op ctoken.Kind // Minus, Not, Tilde, Star (deref), Amp (addr), Inc, Dec, Plus
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	exprBase
	Op ctoken.Kind // Inc or Dec
	X  Expr
}

// Binary is a binary operation (arithmetic, relational, logical, shifts).
type Binary struct {
	exprBase
	Op   ctoken.Kind
	X, Y Expr
}

// Assign is an assignment, possibly compound (+=, <<=, ...).
type Assign struct {
	exprBase
	Op   ctoken.Kind // Assign or the compound-assign kinds
	L, R Expr
}

// Cond is the ternary operator c ? t : f.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// Comma is the comma operator.
type Comma struct {
	exprBase
	X, Y Expr
}

// Cast is an explicit type conversion.
type Cast struct {
	exprBase
	To *ctypes.Type
	X  Expr
}

// SizeofType is sizeof(type-name); sizeof expr is folded by the parser into
// SizeofType using the expression's type after sema.
type SizeofType struct {
	exprBase
	Of   *ctypes.Type
	OfEx Expr // non-nil when written as sizeof expr
}

// ------------------------------------------------------------ memory forms

// Index is x[i] (desugared by sema into *(x+i) semantics but kept distinct
// for better diagnostics and IR lowering).
type Index struct {
	exprBase
	X, I Expr
}

// Member is x.f (Arrow false) or x->f (Arrow true).
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	// Field is resolved by sema.
	Field *ctypes.Field
	// Struct is the struct type the field belongs to.
	Struct *ctypes.Type
}

// Call is a function call. After sema, Func names the callee when it is a
// direct call; otherwise Target is an expression evaluating to a function
// pointer.
type Call struct {
	exprBase
	Target Expr
	Args   []Expr
	// Direct is the resolved direct-callee name, or "".
	Direct string
}

// --------------------------------------------------------------- statements

type stmtBase struct{ P ctoken.Pos }

func (s *stmtBase) Pos() ctoken.Pos { return s.P }
func (s *stmtBase) stmtNode()       {}

// ExprStmt is an expression statement.
type ExprStmt struct {
	stmtBase
	X Expr
}

// Block is { ... }.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// If statement.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While statement.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhile statement.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// For statement.
type For struct {
	stmtBase
	Init Stmt // may be nil (ExprStmt or DeclStmt)
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
}

// Return statement.
type Return struct {
	stmtBase
	X Expr // may be nil
}

// Break statement.
type Break struct{ stmtBase }

// Continue statement.
type Continue struct{ stmtBase }

// Goto statement.
type Goto struct {
	stmtBase
	Label string
}

// Labeled statement.
type Labeled struct {
	stmtBase
	Label string
	Stmt  Stmt
}

// SwitchCase is one case (or default, when IsDefault) of a switch.
type SwitchCase struct {
	Pos       ctoken.Pos
	IsDefault bool
	Value     int64 // constant case value
	Body      []Stmt
}

// Switch statement.
type Switch struct {
	stmtBase
	Tag   Expr
	Cases []SwitchCase
}

// DeclStmt declares one or more local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// ------------------------------------------------------------- declarations

// Init is an initializer: either a single expression or a brace list.
type Init struct {
	Pos  ctoken.Pos
	Expr Expr    // non-nil for scalar initializers
	List []*Init // non-nil for brace lists
}

// VarDecl declares a variable (local or global).
type VarDecl struct {
	NamePos ctoken.Pos
	Name    string
	Type    *ctypes.Type
	Init    *Init // may be nil
	Static  bool  // static storage duration at file or block scope
	Extern  bool
}

// Pos returns the declaration position.
func (d *VarDecl) Pos() ctoken.Pos { return d.NamePos }

// ParamDecl is a function parameter.
type ParamDecl struct {
	Name string // may be "" in prototypes
	Type *ctypes.Type
}

// FuncDecl is a function definition or prototype (Body nil).
type FuncDecl struct {
	NamePos  ctoken.Pos
	Name     string
	Ret      *ctypes.Type
	Params   []ParamDecl
	Variadic bool
	Body     *Block // nil for prototypes
	Static   bool
}

// Pos returns the function's declaration position.
func (d *FuncDecl) Pos() ctoken.Pos { return d.NamePos }

// FuncType builds the ctypes function type of the declaration.
func (d *FuncDecl) FuncType() *ctypes.Type {
	params := make([]*ctypes.Type, len(d.Params))
	for i, p := range d.Params {
		params[i] = p.Type.Decay()
	}
	return ctypes.FuncOf(d.Ret, params, d.Variadic)
}

// TranslationUnit is a parsed source file.
type TranslationUnit struct {
	File    string
	Funcs   []*FuncDecl
	Globals []*VarDecl
	// Structs holds the interned named struct/union types of the unit.
	Structs map[string]*ctypes.Type
	// Enums maps enumeration constant names to values.
	Enums map[string]int64
	// Typedefs maps names to types.
	Typedefs map[string]*ctypes.Type
}
