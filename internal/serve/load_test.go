package serve

// Load test: the service's reason to exist is surviving sustained hostile
// traffic. This hammers a small pool (W workers, queue depth Q) with
// 10×(Q+W) concurrent mixed requests — valid, malformed, trapping, and
// hung programs — and asserts the resilience contract: every request is
// answered with a structured status (no server death), overload sheds
// with 429 instead of unbounded goroutines, the repeat-crashing program's
// breaker opens, and shutdown drains cleanly back to the baseline
// goroutine count. Run under -race in CI.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"softbound/internal/retry"
	"softbound/internal/vm"
)

func TestServiceSurvivesHostileLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("load test")
	}
	baseline := runtime.NumGoroutine()

	const workers, queue = 4, 4
	s := New(Options{
		Workers:        workers,
		QueueDepth:     queue,
		DefaultTimeout: 300 * time.Millisecond,
		SpoolDir:       t.TempDir(),
		Breaker:        BreakerConfig{Threshold: 3, Cooldown: time.Minute}, // stays open once tripped
		Retry:          retry.Policy{MaxAttempts: 2},
	})
	ts := httptest.NewServer(s.Handler())

	poison := Request{Source: spinSrc, Steps: 2000} // deterministic step-limit trap
	poisonSum := sha256.Sum256([]byte(spinSrc))
	poisonHash := hex.EncodeToString(poisonSum[:])

	// The mixed workload. Each entry: the request plus the statuses it is
	// allowed to produce under load (200 = served, 400 = rejected input,
	// 429 = shed, 503 = breaker fast-fail or drain).
	hung := Request{Source: spinSrc, TimeoutMillis: 100}
	mixed := []Request{
		{Source: okSrc},
		{Source: overflowSrc},
		{Source: badSrc},
		poison,
		hung,
		{Source: okSrc, Mode: "store-only", Scheme: "hashtable"},
	}

	type tally struct {
		mu       sync.Mutex
		byStatus map[int]int
		unknown  []string
	}
	counts := &tally{byStatus: make(map[int]int)}
	record := func(status int, body []byte) {
		counts.mu.Lock()
		defer counts.mu.Unlock()
		counts.byStatus[status]++
		switch status {
		case http.StatusOK, http.StatusBadRequest,
			http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			counts.unknown = append(counts.unknown, string(body))
		}
	}

	// ≥ 10×(Q+W) concurrent requests.
	total := 10 * (queue + workers)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := post(t, ts, mixed[i%len(mixed)])
			record(status, body)
		}(i)
	}
	wg.Wait()

	counts.mu.Lock()
	served, shed := counts.byStatus[200], counts.byStatus[429]
	unknown := counts.unknown
	answered := 0
	for _, n := range counts.byStatus {
		answered += n
	}
	counts.mu.Unlock()

	if answered != total {
		t.Fatalf("answered %d of %d requests; the rest vanished", answered, total)
	}
	if len(unknown) > 0 {
		t.Fatalf("unstructured responses under load: %q", unknown[0])
	}
	if served == 0 {
		t.Fatal("nothing was served under load")
	}
	if shed == 0 {
		t.Fatalf("no 429 shedding with %d concurrent requests against queue %d + workers %d: %v",
			total, queue, workers, counts.byStatus)
	}

	// The repeat-crashing program's breaker must open. The burst may have
	// shed most poison copies, so feed it sequentially until the breaker
	// reports open (bounded attempts: Threshold failures are enough).
	deadline := time.Now().Add(10 * time.Second)
	for s.BreakerState(poisonHash) != "open" && time.Now().Before(deadline) {
		post(t, ts, poison)
	}
	if st := s.BreakerState(poisonHash); st != "open" {
		t.Fatalf("poison program breaker %q, want open (counters %v)", st, s.counters.Snapshot())
	}
	// And fast-fail the next hit.
	if status, body := post(t, ts, poison); status != http.StatusServiceUnavailable {
		t.Fatalf("open breaker served status %d (%s)", status, body)
	}

	// Unrelated programs keep being served while the breaker is open.
	if status, _ := post(t, ts, Request{Source: okSrc}); status != http.StatusOK {
		t.Fatal("healthy traffic failed while a breaker is open")
	}

	// Clean drain: readiness flips, in-flight work completes, workers and
	// connections wind down to (about) the baseline goroutine count.
	s.BeginDrain()
	if status, _ := post(t, ts, Request{Source: okSrc}); status != http.StatusServiceUnavailable {
		t.Fatal("drain still admits work")
	}
	s.Close()
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	const epsilon = 12
	var after int
	for end := time.Now().Add(5 * time.Second); time.Now().Before(end); time.Sleep(50 * time.Millisecond) {
		if after = runtime.NumGoroutine(); after <= baseline+epsilon {
			break
		}
	}
	if after > baseline+epsilon {
		t.Fatalf("goroutines leaked: baseline %d, after drain %d (epsilon %d)", baseline, after, epsilon)
	}
}

// TestDrainUnderLoad closes the server while requests are still arriving:
// every in-flight admitted request must still get its answer, and late
// arrivals must be rejected, never hung or crashed.
func TestDrainUnderLoad(t *testing.T) {
	s := New(Options{
		Workers:        2,
		QueueDepth:     2,
		DefaultTimeout: 200 * time.Millisecond,
		Retry:          retry.Policy{MaxAttempts: 2},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	statuses := make(chan int, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _ := post(t, ts, Request{Source: okSrc, TimeoutMillis: 100})
			statuses <- status
		}()
	}
	time.Sleep(10 * time.Millisecond) // let some requests get admitted
	s.Close()                         // drain mid-flight
	wg.Wait()
	close(statuses)
	for status := range statuses {
		switch status {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Fatalf("request during drain got status %d", status)
		}
	}
	// Post-drain requests are structured rejections, not hangs.
	if status, _ := post(t, ts, Request{Source: okSrc}); status != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request got %d, want 503", status)
	}
}

// TestStatzSchemaUnderLoad pins the /statz document shape the README and
// DESIGN.md document: counters, pool shape, cache stats, breaker map.
func TestStatzSchemaUnderLoad(t *testing.T) {
	s, ts := newTestServer(t, Options{Breaker: BreakerConfig{Threshold: 1, Cooldown: time.Minute}})
	post(t, ts, Request{Source: okSrc})
	post(t, ts, Request{Source: okSrc})
	post(t, ts, Request{Source: spinSrc, Steps: 1000}) // opens its breaker (threshold 1)

	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var z Statz
	if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
		t.Fatal(err)
	}
	if z.Cache.Misses == 0 || z.Cache.Hits == 0 {
		t.Errorf("cache stats empty: %+v", z.Cache)
	}
	if z.Counters["trap."+string(vm.TrapStepLimit)] == 0 {
		t.Errorf("trap counter missing: %v", z.Counters)
	}
	if len(z.Breakers) == 0 {
		t.Errorf("opened breaker missing from statz: %+v", z)
	}
	_ = s
}
