package serve

import (
	"container/list"
	"sync"

	"softbound/internal/ir"
	"softbound/internal/metrics"
)

// cacheKey names one compiled artifact: identical keys are guaranteed to
// produce identical modules, so the cache can hand one *ir.Module to any
// number of concurrent requests (the linked module is immutable under
// execution — internal/vm's isolation test holds that under -race).
type cacheKey struct {
	hash     string // hex SHA-256 of the source text
	scheme   string
	mode     string
	optimize bool
}

// cacheEntry is one compile, possibly still in flight. ready is closed
// when mod/counters/err are final; waiters block on it (singleflight:
// concurrent identical requests compile once and share the result).
type cacheEntry struct {
	ready    chan struct{}
	mod      *ir.Module
	counters metrics.OptCounters
	err      error

	key  cacheKey
	elem *list.Element // LRU position
}

// compileCache is a bounded LRU of compiled modules with singleflight
// semantics. Failed compiles are cached too: a poison source that crashes
// or fails the compiler costs one compile, not one per request.
type compileCache struct {
	mu      sync.Mutex
	cap     int
	entries map[cacheKey]*cacheEntry
	lru     *list.List // front = most recent; values are *cacheEntry

	hits, misses uint64
}

func newCompileCache(capacity int) *compileCache {
	if capacity <= 0 {
		capacity = 128
	}
	return &compileCache{
		cap:     capacity,
		entries: make(map[cacheKey]*cacheEntry),
		lru:     list.New(),
	}
}

// get returns the cached compile for key, building it with build on a
// miss. Exactly one caller runs build per key; the rest block until it
// finishes. hit reports whether this caller found the entry already
// present (in flight counts as a hit — the work is shared either way).
func (c *compileCache) get(key cacheKey, build func() (*ir.Module, metrics.OptCounters, error)) (e *cacheEntry, hit bool) {
	c.mu.Lock()
	if e = c.entries[key]; e != nil {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return e, true
	}
	c.misses++
	e = &cacheEntry{ready: make(chan struct{}), key: key}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.evictLocked()
	c.mu.Unlock()

	e.mod, e.counters, e.err = build()
	close(e.ready)
	return e, false
}

// evictLocked drops least-recently-used entries beyond capacity. In-flight
// entries can be evicted from the map (new requests will recompile) but
// their waiters still complete: the entry's fields are owned by its
// builder and its ready channel closes regardless of residency.
func (c *compileCache) evictLocked() {
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		ent := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, ent.key)
	}
}

// cacheStats is the /statz view of the cache.
type cacheStats struct {
	Size    int     `json:"size"`
	Cap     int     `json:"cap"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

func (c *compileCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := cacheStats{Size: c.lru.Len(), Cap: c.cap, Hits: c.hits, Misses: c.misses}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
