package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"softbound/internal/meta"
	"softbound/internal/retry"
	"softbound/internal/vm"
)

const (
	okSrc       = `int main() { printf("hi\n"); return 7; }`
	overflowSrc = `int main() { int a[4]; int i; for (i = 0; i <= 4; i = i + 1) a[i] = i; return a[0]; }`
	spinSrc     = `int main() { int i; i = 0; while (1) { i = i + 1; } return i; }`
	badSrc      = `int main( {`
)

// newTestServer builds a server + httptest front end with fast budgets.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 2
	}
	if opts.DefaultTimeout == 0 {
		opts.DefaultTimeout = 5 * time.Second
	}
	if opts.Retry.MaxAttempts == 0 {
		// No backoff sleeps in tests; attempts bounded like the bench.
		opts.Retry = retry.Policy{MaxAttempts: 2}
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends one /run request and returns (status, raw body).
func post(t *testing.T, ts *httptest.Server, req Request) (int, []byte) {
	t.Helper()
	blob, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("POST /run: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

func decodeRun(t *testing.T, body []byte) Response {
	t.Helper()
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		t.Fatalf("bad /run body %s: %v", body, err)
	}
	return r
}

func TestRunBasicAndCompileCache(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	status, body := post(t, ts, Request{Source: okSrc})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	r := decodeRun(t, body)
	if r.ExitCode != 7 || r.Output != "hi\n" || r.TrapCode != "" {
		t.Fatalf("unexpected result: %+v", r)
	}
	if r.Config != "shadowspace-full" {
		t.Errorf("config %q, want shadowspace-full", r.Config)
	}
	if r.Stats == nil || r.Stats.Insts == 0 {
		t.Errorf("run reported no execution stats: %+v", r.Stats)
	}
	if r.CacheHit {
		t.Error("first request claimed a cache hit")
	}
	if len(r.Phases) < 2 {
		t.Errorf("phases missing: %+v", r.Phases)
	}

	// Identical request: compile once, serve from cache.
	status, body = post(t, ts, Request{Source: okSrc})
	if status != http.StatusOK {
		t.Fatalf("second status %d", status)
	}
	if r2 := decodeRun(t, body); !r2.CacheHit || r2.ExitCode != 7 {
		t.Fatalf("second request not served from cache: %+v", r2)
	}
	// Different mode is a different artifact.
	status, body = post(t, ts, Request{Source: okSrc, Mode: "none"})
	if status != http.StatusOK {
		t.Fatal("baseline-mode request failed")
	}
	if r3 := decodeRun(t, body); r3.CacheHit || r3.Config != "baseline" {
		t.Fatalf("mode change reused the wrong artifact: %+v", r3)
	}
	if s.counters.Get("cache.hit") != 1 || s.counters.Get("cache.miss") != 2 {
		t.Errorf("cache counters hit=%d miss=%d, want 1/2",
			s.counters.Get("cache.hit"), s.counters.Get("cache.miss"))
	}
}

func TestSpatialViolationIsAServedResult(t *testing.T) {
	s, ts := newTestServer(t, Options{SpoolDir: t.TempDir()})
	status, body := post(t, ts, Request{Source: overflowSrc})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %s", status, body)
	}
	r := decodeRun(t, body)
	if r.TrapCode != string(vm.TrapSpatial) {
		t.Fatalf("trap %q, want spatial-violation (%s)", r.TrapCode, body)
	}
	if r.Violation == "" {
		t.Error("violation message missing")
	}
	if r.Bundle == "" {
		t.Fatal("trap produced no replay bundle")
	}
	// Detections must not trip the breaker: they are the service working.
	if st := s.BreakerState(r.Program); st != "closed" {
		t.Errorf("breaker %q after a detection, want closed", st)
	}
}

func TestMalformedSourceIs400(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := post(t, ts, Request{Source: badSrc})
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", status, body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Compile == nil || eb.Compile.Stage != "parse" {
		t.Fatalf("compile error body %+v, want stage parse", eb.Compile)
	}
	// Bad requests that never execute must not kill the server.
	status, _ = post(t, ts, Request{Source: okSrc})
	if status != http.StatusOK {
		t.Fatal("server unhealthy after malformed input")
	}
}

func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, req := range []Request{
		{},                                    // empty source
		{Source: okSrc, Mode: "sideways"},     // unknown mode
		{Source: okSrc, Scheme: "nope"},       // unknown scheme
		{Source: okSrc, Faults: "bogus-plan"}, // malformed fault plan
		{Source: okSrc, Engine: "turbo"},      // unknown engine
	} {
		if status, body := post(t, ts, req); status != http.StatusBadRequest {
			t.Errorf("%+v: status %d, want 400 (%s)", req, status, body)
		}
	}
}

// All three interpreter engines are selectable per request and must
// serve the same observable result from the same cached artifact.
func TestEngineSelection(t *testing.T) {
	srv, ts := newTestServer(t, Options{})
	var results []Response
	for _, engine := range []string{"", "fast", "ref", "compiled"} {
		status, body := post(t, ts, Request{Source: okSrc, Engine: engine})
		if status != http.StatusOK {
			t.Fatalf("engine %q: status %d, body %s", engine, status, body)
		}
		results = append(results, decodeRun(t, body))
	}
	for i, r := range results {
		if r.ExitCode != results[0].ExitCode || r.Output != results[0].Output ||
			r.TrapCode != results[0].TrapCode ||
			r.Stats.SimInsts != results[0].Stats.SimInsts {
			t.Fatalf("engine variant %d diverged: %+v vs %+v", i, r, results[0])
		}
	}
	// Engine choice affects execution only, never the compiled artifact:
	// the cache key is engine-independent.
	if !results[2].CacheHit || !results[3].CacheHit {
		t.Error("non-default-engine request recompiled instead of reusing the cache")
	}
	// /statz accounts runs per engine.
	counters := srv.Counters().Snapshot()
	if counters["run.engine.fast"] != 2 || counters["run.engine.ref"] != 1 ||
		counters["run.engine.compiled"] != 1 {
		t.Errorf("per-engine run counters off: fast=%d ref=%d compiled=%d",
			counters["run.engine.fast"], counters["run.engine.ref"],
			counters["run.engine.compiled"])
	}
}

func TestStepLimitTrapAndBundleReplay(t *testing.T) {
	spool := t.TempDir()
	_, ts := newTestServer(t, Options{SpoolDir: spool})
	status, body := post(t, ts, Request{Source: spinSrc, Steps: 5000})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, body)
	}
	r := decodeRun(t, body)
	if r.TrapCode != string(vm.TrapStepLimit) {
		t.Fatalf("trap %q, want step-limit", r.TrapCode)
	}
	if r.Bundle == "" {
		t.Fatal("no replay bundle spooled")
	}
	b, err := ReadBundle(r.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if b.TrapCode != r.TrapCode || b.Source != spinSrc || b.StepLimit != 5000 {
		t.Fatalf("bundle does not capture the run: %+v", b)
	}
	res, err := Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(res.TrapCode()); got != b.TrapCode {
		t.Fatalf("replay trap %q, want %q (bundle must reproduce)", got, b.TrapCode)
	}
}

func TestSpatialBundleReplayWithFaults(t *testing.T) {
	spool := t.TempDir()
	_, ts := newTestServer(t, Options{SpoolDir: spool})
	// A clean program plus an aggressive seeded metadata-drop plan: the
	// injected faults trip checks deterministically, and the bundle's
	// recorded seed replays the identical schedule offline.
	status, body := post(t, ts, Request{Source: okSrc, Faults: "seed=9,drop=1"})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, body)
	}
	r := decodeRun(t, body)
	if r.TrapCode == "" {
		t.Skip("fault plan did not trap this program; nothing to replay")
	}
	b, err := ReadBundle(r.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(res.TrapCode()); got != b.TrapCode {
		t.Fatalf("replay trap %q, want %q", got, b.TrapCode)
	}
}

func TestPanickingSchemeIsContainedAndRetried(t *testing.T) {
	// A metadata scheme whose constructor panics models a crashing
	// backend: the worker must survive, the shared retry policy gets its
	// bounded attempts, and the result is a structured trap.
	meta.MustRegister(meta.Scheme{
		Kind: meta.KindShadowSpace, Name: "serve-panicboom",
		New: func() meta.Facility { panic("deliberate backend panic") },
	})
	s, ts := newTestServer(t, Options{SpoolDir: t.TempDir()})
	status, body := post(t, ts, Request{Source: okSrc, Scheme: "serve-panicboom"})
	if status != http.StatusOK {
		t.Fatalf("status %d (%s)", status, body)
	}
	r := decodeRun(t, body)
	if r.TrapCode != string(vm.TrapPanic) {
		t.Fatalf("trap %q, want panic (%s)", r.TrapCode, body)
	}
	if r.Attempts != 2 {
		t.Errorf("attempts %d, want 2 (contained crash gets one retry)", r.Attempts)
	}
	if s.counters.Get("run.retried") == 0 {
		t.Error("retry counter never moved")
	}
	// The server is still alive and serving.
	if status, _ := post(t, ts, Request{Source: okSrc}); status != http.StatusOK {
		t.Fatal("server dead after contained panic")
	}
}

func TestBreakerOpensFastFailsAndRecovers(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Breaker: BreakerConfig{Threshold: 2, Cooldown: 50 * time.Millisecond},
	})
	poison := Request{Source: spinSrc, Steps: 2000} // deterministic step-limit trap

	for i := 0; i < 2; i++ {
		status, body := post(t, ts, poison)
		if status != http.StatusOK {
			t.Fatalf("poison %d: status %d (%s)", i, status, body)
		}
		if r := decodeRun(t, body); r.TrapCode != string(vm.TrapStepLimit) {
			t.Fatalf("poison %d: trap %q", i, r.TrapCode)
		}
	}
	// Threshold reached: fast-fail without executing.
	status, body := post(t, ts, poison)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("breaker did not open: status %d (%s)", status, body)
	}
	var eb ErrorBody
	_ = json.Unmarshal(body, &eb)
	if eb.Breaker == "" {
		t.Errorf("fast-fail body carries no breaker state: %s", body)
	}
	if s.counters.Get("run.breaker_fastfail") == 0 {
		t.Error("fast-fail counter never moved")
	}

	// After the cooldown, a half-open probe runs. Same program hash, but
	// now with a budget it can't blow... spin never exits, so give it a
	// recovered input instead: same source is the identity, so recovery
	// means the program stops tripping — emulate with a huge step budget
	// and a short deadline (deadline traps do not qualify as failures).
	time.Sleep(80 * time.Millisecond)
	status, body = post(t, ts, Request{Source: spinSrc, TimeoutMillis: 50})
	if status != http.StatusOK {
		t.Fatalf("probe rejected: status %d (%s)", status, body)
	}
	if r := decodeRun(t, body); r.TrapCode != string(vm.TrapDeadline) {
		t.Fatalf("probe trap %q, want deadline", r.TrapCode)
	}
	// Deadline is non-qualifying → breaker closed again.
	sum := decodeRun(t, body).Program
	if st := s.BreakerState(sum); st != "closed" {
		t.Errorf("breaker %q after successful probe, want closed", st)
	}
}

// An oversized request body must be a structured 413, whether the limit
// is hit while streaming the body (MaxBytesReader) or by the decoded
// source field — and in neither case may it wedge or kill the server.
func TestOversizedBodyIsStructured413(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxSourceBytes: 1024})

	// A body far beyond the cap: the reader trips while the decoder is
	// still streaming the source string.
	huge := append([]byte(`{"source":"`), bytes.Repeat([]byte("x"), 64*1024)...)
	huge = append(huge, '"', '}')
	resp, err := http.Post(ts.URL+"/run", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized raw body: status %d, want 413 (%s)", resp.StatusCode, body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("413 body not structured: %s (%v)", body, err)
	}

	// Valid JSON whose source field alone exceeds the cap.
	big := Request{Source: "int main() { /*" + string(bytes.Repeat([]byte("y"), 2048)) + "*/ return 0; }"}
	if status, body := post(t, ts, big); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized source: status %d, want 413 (%s)", status, body)
	}

	// The connection-level rejection must not have hurt the server.
	if status, _ := post(t, ts, Request{Source: okSrc}); status != http.StatusOK {
		t.Fatal("server unhealthy after oversized body")
	}
}

// /statz identifies the process incarnation: pid, uptime, and the
// supervisor-reported restart generation (the fabric router feeds
// Options.Restarts so flap detection survives process replacement).
func TestStatzReportsProcessIdentity(t *testing.T) {
	_, ts := newTestServer(t, Options{Restarts: 7})
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var z Statz
	if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
		t.Fatal(err)
	}
	if z.PID != os.Getpid() {
		t.Errorf("statz pid %d, want %d", z.PID, os.Getpid())
	}
	if z.UptimeSeconds < 0 || z.UptimeSeconds > 300 {
		t.Errorf("implausible uptime_seconds %v", z.UptimeSeconds)
	}
	if z.RestartsObserved != 7 {
		t.Errorf("restarts_observed %d, want 7", z.RestartsObserved)
	}
}

func TestHealthReadyStatzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	get := func(path string) (int, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}
	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatal("healthz not ok")
	}
	if st, _ := get("/readyz"); st != http.StatusOK {
		t.Fatal("readyz not ok")
	}
	post(t, ts, Request{Source: okSrc})

	st, body := get("/statz")
	if st != http.StatusOK {
		t.Fatal("statz not ok")
	}
	var z Statz
	if err := json.Unmarshal(body, &z); err != nil {
		t.Fatalf("statz body %s: %v", body, err)
	}
	if z.Counters["http.run"] == 0 || z.Counters["run.ok"] == 0 {
		t.Errorf("statz counters missing run traffic: %v", z.Counters)
	}
	if z.QueueCap == 0 || z.Workers == 0 {
		t.Errorf("statz pool shape empty: %+v", z)
	}

	s.BeginDrain()
	if st, _ := get("/readyz"); st != http.StatusServiceUnavailable {
		t.Fatal("readyz still ready while draining")
	}
	if st, _ := get("/healthz"); st != http.StatusOK {
		t.Fatal("healthz must stay ok while draining (process is alive)")
	}
	if st, _ := post(t, ts, Request{Source: okSrc}); st != http.StatusServiceUnavailable {
		t.Fatal("run accepted while draining")
	}
	s.Close() // idempotent with the cleanup Close
}

// TestStatzMetaSection checks /statz surfaces metadata occupancy and
// lookaside hit-rate after runs: the session soak's growth signals.
func TestStatzMetaSection(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Two runs of a program that dereferences a pointer held in global
	// memory, so every iteration re-loads its metadata from the facility
	// and the gauges and cumulative lookaside counters both move.
	src := `int a[16]; int* p;
		int main() { int i; p = a;
		for (i = 0; i < 16; i = i + 1) p[i] = i;
		printf("%d\n", p[3]); return 0; }`
	for i := 0; i < 2; i++ {
		if status, body := post(t, ts, Request{Source: src}); status != http.StatusOK {
			t.Fatalf("run %d: status %d body %s", i, status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var z Statz
	if err := json.NewDecoder(resp.Body).Decode(&z); err != nil {
		t.Fatal(err)
	}
	if z.Meta.Runs != 2 {
		t.Errorf("meta.runs = %d, want 2", z.Meta.Runs)
	}
	if z.Meta.LiveMax <= 0 || z.Meta.TableBytesMax <= 0 {
		t.Errorf("occupancy gauges did not move: %+v", z.Meta)
	}
	if z.Meta.LiveMax < z.Meta.LiveLast {
		t.Errorf("high-water below last: %+v", z.Meta)
	}
	// The default engine is the fast interpreter, so the lookaside served
	// the loop's repeated metadata lookups.
	if z.Meta.LookasideHits == 0 || z.Meta.LookasideHitRate <= 0 {
		t.Errorf("lookaside counters did not move: %+v", z.Meta)
	}
}
