package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"softbound/internal/driver"
	"softbound/internal/faults"
)

// BundleSchema identifies the replay-bundle layout on disk.
const BundleSchema = 1

// Bundle is a deterministic crash-replay capsule: everything needed to
// re-execute a trapped request offline — the exact source, configuration,
// budgets, and seeded fault plan — plus what the service observed, so a
// replay can be checked against the original trap. The VM and fault
// injector are deterministic functions of these fields, which is what
// makes "reproduces to the identical TrapCode" a testable contract
// (wall-clock deadline traps are the one class that can legitimately
// diverge on a differently-loaded machine).
type Bundle struct {
	Schema int `json:"schema"`
	// ProgramHash is the hex SHA-256 of Source (the breaker/cache key).
	ProgramHash string `json:"program_hash"`
	Source      string `json:"source"`
	Scheme      string `json:"scheme,omitempty"` // "" = uninstrumented baseline
	Mode        string `json:"mode"`
	Optimize    bool   `json:"optimize"`
	// Faults is the seeded fault plan in faults.ParsePlan syntax ("" =
	// none); the seed makes the injected schedule replay bit-identically.
	Faults string `json:"faults,omitempty"`
	// StepLimit and TimeoutNanos are the budgets the run executed under.
	StepLimit    uint64   `json:"step_limit,omitempty"`
	TimeoutNanos int64    `json:"timeout_nanos,omitempty"`
	Args         []string `json:"args,omitempty"`

	// What the service observed (replay compares against these).
	TrapCode string `json:"trap_code"`
	Error    string `json:"error,omitempty"`
}

// WriteBundle spools a bundle as pretty-printed JSON and returns its
// path. name should be unique per bundle (the server derives it from the
// program hash, trap code, and a sequence number).
func WriteBundle(dir, name string, b Bundle) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	blob, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// ReadBundle loads a spooled bundle.
func ReadBundle(path string) (Bundle, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return Bundle{}, err
	}
	var b Bundle
	if err := json.Unmarshal(blob, &b); err != nil {
		return Bundle{}, fmt.Errorf("serve: bad bundle %s: %w", path, err)
	}
	if b.Schema != BundleSchema {
		return Bundle{}, fmt.Errorf("serve: bundle %s has schema %d, want %d", path, b.Schema, BundleSchema)
	}
	return b, nil
}

// Replay re-executes a bundle under its recorded configuration and
// returns the result. The caller compares the result's TrapCode against
// bundle.TrapCode to confirm reproduction.
func Replay(b Bundle) (*driver.Result, error) {
	cfg, err := bundleConfig(b)
	if err != nil {
		return nil, err
	}
	return driver.Run([]driver.Source{{Name: "replay.c", Text: b.Source}}, cfg)
}

// bundleConfig rebuilds the driver configuration a bundle ran under.
func bundleConfig(b Bundle) (driver.Config, error) {
	mode, err := parseMode(b.Mode)
	if err != nil {
		return driver.Config{}, err
	}
	cfg := driver.DefaultConfig(mode)
	cfg.Optimize = b.Optimize
	if mode != driver.ModeNone {
		if err := applyScheme(&cfg, b.Scheme); err != nil {
			return driver.Config{}, err
		}
	}
	cfg.StepLimit = b.StepLimit
	if b.TimeoutNanos > 0 {
		cfg.Timeout = time.Duration(b.TimeoutNanos)
	}
	cfg.Args = b.Args
	if b.Faults != "" {
		plan, err := faults.ParsePlan(b.Faults)
		if err != nil {
			return driver.Config{}, fmt.Errorf("serve: bundle fault plan: %w", err)
		}
		if plan.Enabled() {
			cfg.Faults = faults.NewInjector(plan)
		}
	}
	return cfg, nil
}
