package serve

import (
	"testing"
	"time"

	"softbound/internal/vm"
)

func TestTripsBreakerClassification(t *testing.T) {
	for code, want := range map[vm.TrapCode]bool{
		vm.TrapPanic:     true,
		vm.TrapStepLimit: true,
		vm.TrapSpatial:   false, // detections are the service working
		vm.TrapTemporal:  false, // a caught use-after-free is a detection too
		vm.TrapBaseline:  false,
		vm.TrapMemFault:  false, // deterministic program bug, replays identically
		vm.TrapDeadline:  false, // bounded by construction
		vm.TrapOOM:       false,
		vm.TrapWildJump:  false, // deterministic program bug, replays identically
		"":               false, // clean exit
	} {
		if got := TripsBreaker(code); got != want {
			t.Errorf("TripsBreaker(%q) = %v, want %v", code, got, want)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	bs := newBreakerSet(BreakerConfig{Threshold: 2, Cooldown: time.Second})
	const h = "prog"

	// Closed: allows, and non-consecutive failures never open it.
	if ok, _ := bs.Allow(h, now); !ok {
		t.Fatal("closed breaker rejected")
	}
	bs.Record(h, now, true)
	bs.Record(h, now, false) // success resets the streak
	bs.Record(h, now, true)
	if st := bs.State(h); st != "closed" {
		t.Fatalf("state %q after interleaved failures, want closed", st)
	}

	// Two consecutive qualifying failures: open, fast-failing.
	bs.Record(h, now, true)
	if st := bs.State(h); st != "open" {
		t.Fatalf("state %q after threshold, want open", st)
	}
	if ok, _ := bs.Allow(h, now.Add(500*time.Millisecond)); ok {
		t.Fatal("open breaker admitted before cooldown")
	}

	// Cooldown elapsed: exactly one half-open probe; concurrent requests
	// keep fast-failing until the probe resolves.
	later := now.Add(2 * time.Second)
	ok, probe := bs.Allow(h, later)
	if !ok || !probe {
		t.Fatalf("cooldown probe not admitted (ok=%v probe=%v)", ok, probe)
	}
	if ok, _ := bs.Allow(h, later); ok {
		t.Fatal("second request admitted during probe")
	}

	// Probe fails: open again; a later probe succeeds: closed.
	bs.Record(h, later, true)
	if st := bs.State(h); st != "open" {
		t.Fatalf("state %q after failed probe, want open", st)
	}
	evenLater := later.Add(2 * time.Second)
	if ok, _ := bs.Allow(h, evenLater); !ok {
		t.Fatal("re-probe not admitted")
	}
	bs.Record(h, evenLater, false)
	if st := bs.State(h); st != "closed" {
		t.Fatalf("state %q after successful probe, want closed", st)
	}
	if ok, _ := bs.Allow(h, evenLater); !ok {
		t.Fatal("recovered breaker rejected")
	}
}

func TestBreakerProbeCancelReleasesSlot(t *testing.T) {
	now := time.Unix(1000, 0)
	bs := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	const h = "prog"
	bs.Record(h, now, true) // open

	later := now.Add(2 * time.Second)
	if ok, probe := bs.Allow(h, later); !ok || !probe {
		t.Fatal("probe not admitted after cooldown")
	}
	// The probe was shed before executing (queue full): without Cancel the
	// hash would fast-fail forever.
	bs.Cancel(h)
	if ok, probe := bs.Allow(h, later); !ok || !probe {
		t.Fatal("cancelled probe slot not released")
	}
}

func TestBreakerStaleRecordsIgnoredWhileOpen(t *testing.T) {
	now := time.Unix(1000, 0)
	bs := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	const h = "prog"
	bs.Record(h, now, true) // open at t=1000

	// A stale failure from a request admitted before the breaker opened
	// must not extend the outage window.
	bs.Record(h, now.Add(900*time.Millisecond), true)
	if ok, _ := bs.Allow(h, now.Add(1100*time.Millisecond)); !ok {
		t.Fatal("stale record extended the cooldown")
	}
}

func TestBreakerSetBounded(t *testing.T) {
	bs := newBreakerSet(BreakerConfig{Threshold: 1, Cooldown: time.Second, MaxTracked: 8})
	now := time.Unix(1000, 0)
	// Hostile traffic: many unique crashing programs must not grow state
	// without bound.
	for i := 0; i < 100; i++ {
		bs.Record(string(rune('a'+i%26))+string(rune('0'+i/26)), now.Add(time.Duration(i)*time.Millisecond), true)
	}
	bs.mu.Lock()
	n := len(bs.m)
	bs.mu.Unlock()
	if n > 8 {
		t.Fatalf("breaker set grew to %d entries, cap 8", n)
	}
}
