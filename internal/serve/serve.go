// Package serve is the resilient execution service: a long-running
// HTTP/JSON front end that compiles and executes C programs under any
// registered metadata scheme and protection mode, engineered to stay up
// under hostile input and overload.
//
// The failure-containment stack, outside in:
//
//   - Admission control: a bounded queue feeds a fixed worker pool; when
//     the queue is full the request is shed with 429 + Retry-After rather
//     than spawning goroutines without bound.
//   - Circuit breakers: per program hash (SHA-256 of the source), opened
//     after Threshold consecutive contained crashes or step-limit traps;
//     open breakers fast-fail with 503 while periodic half-open probes
//     test recovery.
//   - Compile cache: keyed by (source hash, scheme, mode, optimize) with
//     singleflight, so a stampede of identical requests compiles once; a
//     compiled module is immutable under execution and shared across
//     concurrent VMs. Compile failures — including recovered compiler
//     panics (driver.CompileError, Stage "panic") — are cached 400s, not
//     dead servers.
//   - Bounded retry: contained non-deterministic crashes (recovered VM
//     panics) are retried with exponential backoff + jitter under the
//     shared internal/retry policy; deterministic traps — deadlines
//     included, per the bench harness's rule — are never retried.
//   - Crash-replay bundles: every trap spools a deterministic Bundle
//     (source, scheme, mode, seeded fault plan, budgets, observed trap)
//     that `sbserve -replay` re-executes offline to the identical
//     TrapCode.
//
// Endpoints: POST /run (execute), /healthz (liveness), /readyz
// (readiness; 503 while draining), /statz (counters, queue, breakers,
// cache — JSON built on metrics.CounterSet).
package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"softbound/internal/driver"
	"softbound/internal/faults"
	"softbound/internal/ir"
	"softbound/internal/meta"
	"softbound/internal/metrics"
	"softbound/internal/retry"
	"softbound/internal/vm"
)

// Options configures a Server. The zero value serves with the documented
// defaults.
type Options struct {
	// Workers is the execution pool size (0 = NumCPU).
	Workers int
	// QueueDepth bounds the admission queue (0 = 2×Workers). A full
	// queue sheds with 429.
	QueueDepth int
	// DefaultTimeout is the per-request VM deadline when the request
	// names none (0 = 5s); MaxTimeout caps client-requested deadlines
	// (0 = 30s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// StepLimit is the default VM instruction budget per request (0 =
	// the driver default); MaxSteps caps client-requested budgets
	// (0 = uncapped).
	StepLimit uint64
	MaxSteps  uint64
	// MaxSourceBytes bounds accepted source size (0 = 1 MiB).
	MaxSourceBytes int64
	// CacheEntries bounds the compile cache (0 = 128).
	CacheEntries int
	// SpoolDir receives crash-replay bundles ("" = spooling off).
	SpoolDir string
	// Breaker tunes the per-program circuit breakers.
	Breaker BreakerConfig
	// Retry is the policy for contained non-deterministic crashes
	// (zero value = 2 attempts, 50ms base backoff, 1s cap).
	Retry retry.Policy
	// Restarts is the supervisor-reported restart generation of this
	// process (how many times a supervisor has respawned this backend).
	// It is surfaced verbatim as /statz restarts_observed so a router —
	// or a human tailing /statz — can detect silent backend flaps even
	// though each incarnation starts from a fresh process.
	Restarts uint64
	// Log receives one line per completed run and service event (nil =
	// silent).
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.NumCPU()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 2 * o.Workers
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 5 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 30 * time.Second
	}
	if o.MaxSourceBytes <= 0 {
		o.MaxSourceBytes = 1 << 20
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = 128
	}
	if o.Breaker.Threshold == 0 {
		o.Breaker.Threshold = 3
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry = retry.Policy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second, Seed: o.Retry.Seed}
	}
	return o
}

// Request is the POST /run body.
type Request struct {
	// Source is the C program (one translation unit).
	Source string `json:"source"`
	// Scheme is a registered metadata scheme name (default "shadowspace";
	// ignored when Mode is "none").
	Scheme string `json:"scheme,omitempty"`
	// Mode is "none", "store-only", or "full" (default "full").
	Mode string `json:"mode,omitempty"`
	// TimeoutMillis overrides the VM deadline, capped at MaxTimeout.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Steps overrides the VM instruction budget, capped at MaxSteps.
	Steps uint64 `json:"steps,omitempty"`
	// Faults is a seeded fault plan in faults.ParsePlan syntax.
	Faults string `json:"faults,omitempty"`
	// Args are the program's argv[1:].
	Args []string `json:"args,omitempty"`
	// NoOptimize disables the optimizer for this request.
	NoOptimize bool `json:"no_optimize,omitempty"`
	// Engine selects the interpreter: "" or "fast" (default) for the
	// pre-decoded fast engine, "ref" for the reference interpreter,
	// "compiled" for the threaded-code compiled tier.
	Engine string `json:"engine,omitempty"`
}

// Response is the /run result. Field names share the BENCH.json
// vocabulary (trap_code, stats, phases, wall_nanos) so scripting against
// the service and against sbbench output is the same code.
type Response struct {
	// Program is the source's hex SHA-256 (the breaker/cache identity).
	Program string `json:"program"`
	// Config is "baseline" or "<scheme>-<mode>", as in BENCH.json.
	Config   string `json:"config"`
	ExitCode int64  `json:"exit_code"`
	Output   string `json:"output"`
	TrapCode string `json:"trap_code,omitempty"`
	Error    string `json:"error,omitempty"`
	// Violation carries the SoftBound detection message when the trap is
	// a spatial violation.
	Violation string                `json:"violation,omitempty"`
	Stats     *metrics.Report       `json:"stats,omitempty"`
	Phases    []metrics.PhaseTiming `json:"phases,omitempty"`
	WallNanos int64                 `json:"wall_nanos"`
	CacheHit  bool                  `json:"cache_hit"`
	// Attempts > 1 records containment retries (shared retry policy).
	Attempts int `json:"attempts,omitempty"`
	// Bundle is the spooled crash-replay bundle path (traps only, and
	// only when spooling is configured).
	Bundle string `json:"bundle,omitempty"`
}

// ErrorBody is every non-200 JSON body.
type ErrorBody struct {
	Error string `json:"error"`
	// Compile carries the typed compiler failure for 400s.
	Compile *CompileErrorBody `json:"compile,omitempty"`
	// RetryAfterMillis mirrors the Retry-After header for 429/503.
	RetryAfterMillis int64 `json:"retry_after_ms,omitempty"`
	// Breaker is the program's breaker state when it caused the failure.
	Breaker string `json:"breaker,omitempty"`
}

// CompileErrorBody is the JSON view of a driver.CompileError.
type CompileErrorBody struct {
	Stage   string `json:"stage"`
	Unit    string `json:"unit,omitempty"`
	Message string `json:"message"`
}

// job is one admitted request travelling from handler to worker.
type job struct {
	req  Request
	key  cacheKey
	hash string
	done chan jobResult
	// ctx is the request context: execution is cancelled with it, so an
	// abandoned client's queued work finishes fast instead of burning a
	// worker for the full budget.
	ctx context.Context
}

type jobResult struct {
	status int
	body   any
}

// Server is the resilient execution service. Create with New, mount
// Handler on an http.Server, and Close on shutdown.
type Server struct {
	opts     Options
	jobs     chan *job
	workers  sync.WaitGroup
	counters *metrics.CounterSet
	cache    *compileCache
	breakers *breakerSet

	// draining flips readiness and rejects new /run work; drainMu is the
	// send barrier that makes closing jobs safe (senders hold RLock for
	// the admission check + enqueue; Close takes Lock after flipping
	// draining, so no sender can race the close).
	draining atomic.Bool
	drainMu  sync.RWMutex
	closed   atomic.Bool

	bundleSeq atomic.Uint64
	logMu     sync.Mutex
	started   time.Time

	// Metadata-facility telemetry aggregated across runs for /statz:
	// occupancy gauges (last / high-water) and cumulative lookaside
	// counters. The session soak polls these to watch the runtime age.
	metaRuns        atomic.Uint64
	metaLiveLast    atomic.Int64
	metaLiveMax     atomic.Int64
	metaBytesLast   atomic.Int64
	metaBytesMax    atomic.Int64
	lookasideHits   atomic.Uint64
	lookasideMisses atomic.Uint64
}

// observeRunMeta folds one run's end-of-run facility stats into the
// /statz meta gauges.
func (s *Server) observeRunMeta(st *metrics.Stats) {
	s.metaRuns.Add(1)
	s.metaLiveLast.Store(st.MetaLive)
	atomicMaxInt64(&s.metaLiveMax, st.MetaLive)
	s.metaBytesLast.Store(st.MetaBytes)
	atomicMaxInt64(&s.metaBytesMax, st.MetaBytes)
	s.lookasideHits.Add(st.MetaCacheHits)
	s.lookasideMisses.Add(st.MetaCacheMisses)
}

func atomicMaxInt64(g *atomic.Int64, v int64) {
	for {
		cur := g.Load()
		if v <= cur || g.CompareAndSwap(cur, v) {
			return
		}
	}
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:     o,
		jobs:     make(chan *job, o.QueueDepth),
		counters: metrics.NewCounterSet(),
		cache:    newCompileCache(o.CacheEntries),
		breakers: newBreakerSet(o.Breaker),
		started:  time.Now(),
	}
	for i := 0; i < o.Workers; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s
}

// NewHTTPServer wraps a handler in an http.Server hardened against slow
// clients: a header deadline (slow-loris headers), a read deadline (a
// request body trickling in one byte at a time cannot pin a connection
// for ever), and an idle keep-alive cap. WriteTimeout is deliberately
// left unset — /run responses legitimately take as long as the
// server-side VM budget allows, and that budget is already enforced per
// request; a write deadline would turn slow-but-legal executions into
// torn responses. Both sbserve and sbrouter listen through this.
func NewHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// Handler returns the service mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", s.handleRun)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statz", s.handleStatz)
	return mux
}

// BeginDrain flips /readyz to 503 and makes /run reject new work, without
// waiting. Call it on SIGTERM so load balancers stop routing here while
// in-flight requests finish.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.logf("serve: draining")
	}
}

// Close drains and stops the worker pool: new work is rejected, every
// admitted job still completes and is answered, then workers exit.
// Idempotent; safe after BeginDrain.
func (s *Server) Close() {
	s.BeginDrain()
	// Taking the write lock after draining is set guarantees no handler
	// is between its admission check and its enqueue, so closing the
	// channel cannot race a send. Queued jobs drain to the workers.
	s.drainMu.Lock()
	s.drainMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	if !s.closed.Swap(true) {
		close(s.jobs)
	}
	s.workers.Wait()
}

// Counters exposes the service counters (tests and /statz).
func (s *Server) Counters() *metrics.CounterSet { return s.counters }

// BreakerState reports a program hash's breaker state name.
func (s *Server) BreakerState(hash string) string { return s.breakers.State(hash) }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log == nil {
		return
	}
	s.logMu.Lock()
	fmt.Fprintf(s.opts.Log, format+"\n", args...)
	s.logMu.Unlock()
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.counters.Inc("http.healthz")
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.counters.Inc("http.readyz")
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// Statz is the /statz document.
type Statz struct {
	Counters   map[string]uint64 `json:"counters"`
	Workers    int               `json:"workers"`
	QueueDepth int               `json:"queue_depth"`
	QueueCap   int               `json:"queue_cap"`
	Cache      cacheStats        `json:"cache"`
	// Breakers lists every non-closed breaker: program hash → state.
	Breakers map[string]string `json:"breakers,omitempty"`
	Draining bool              `json:"draining"`
	// UptimeSeconds and PID identify this incarnation of the process;
	// RestartsObserved is the supervisor-reported respawn count
	// (Options.Restarts). Together they make silent flaps visible: a
	// backend whose uptime keeps resetting while restarts_observed
	// climbs is crash-looping even if every individual poll looks fine.
	UptimeSeconds    float64 `json:"uptime_seconds"`
	PID              int     `json:"pid"`
	RestartsObserved uint64  `json:"restarts_observed"`
	// Meta reports metadata-facility occupancy and lookaside behaviour
	// aggregated over every executed run (additive extension).
	Meta MetaStatz `json:"meta"`
}

// MetaStatz is the /statz "meta" section: per-run metadata-table
// occupancy gauges and cumulative lookaside-cache counters, the signals
// a long session soak asserts bounds on.
type MetaStatz struct {
	Runs             uint64  `json:"runs"`
	LiveLast         int64   `json:"live_entries_last"`
	LiveMax          int64   `json:"live_entries_max"`
	TableBytesLast   int64   `json:"table_bytes_last"`
	TableBytesMax    int64   `json:"table_bytes_max"`
	LookasideHits    uint64  `json:"lookaside_hits"`
	LookasideMisses  uint64  `json:"lookaside_misses"`
	LookasideHitRate float64 `json:"lookaside_hit_rate"`
}

func (s *Server) metaStatz() MetaStatz {
	m := MetaStatz{
		Runs:            s.metaRuns.Load(),
		LiveLast:        s.metaLiveLast.Load(),
		LiveMax:         s.metaLiveMax.Load(),
		TableBytesLast:  s.metaBytesLast.Load(),
		TableBytesMax:   s.metaBytesMax.Load(),
		LookasideHits:   s.lookasideHits.Load(),
		LookasideMisses: s.lookasideMisses.Load(),
	}
	if total := m.LookasideHits + m.LookasideMisses; total > 0 {
		m.LookasideHitRate = float64(m.LookasideHits) / float64(total)
	}
	return m
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	s.counters.Inc("http.statz")
	writeJSON(w, http.StatusOK, Statz{
		Counters:         s.counters.Snapshot(),
		Workers:          s.opts.Workers,
		QueueDepth:       len(s.jobs),
		QueueCap:         cap(s.jobs),
		Cache:            s.cache.stats(),
		Breakers:         s.breakers.Snapshot(),
		Draining:         s.draining.Load(),
		UptimeSeconds:    time.Since(s.started).Seconds(),
		PID:              os.Getpid(),
		RestartsObserved: s.opts.Restarts,
		Meta:             s.metaStatz(),
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.counters.Inc("http.run")
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorBody{Error: "POST only"})
		return
	}
	var req Request
	// MaxBytesReader (not a bare LimitReader) closes the connection once
	// the cap is hit, so a hostile slow body can neither pin the
	// connection nor be silently truncated into a confusing parse error.
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxSourceBytes+4096)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.counters.Inc("run.bad_request")
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				ErrorBody{Error: fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)})
			return
		}
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Source == "" {
		s.counters.Inc("run.bad_request")
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: "empty source"})
		return
	}
	if int64(len(req.Source)) > s.opts.MaxSourceBytes {
		s.counters.Inc("run.bad_request")
		writeJSON(w, http.StatusRequestEntityTooLarge,
			ErrorBody{Error: fmt.Sprintf("source exceeds %d bytes", s.opts.MaxSourceBytes)})
		return
	}
	mode, err := parseMode(req.Mode)
	if err != nil {
		s.counters.Inc("run.bad_request")
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error()})
		return
	}
	scheme := req.Scheme
	if scheme == "" {
		scheme = "shadowspace"
	}
	if mode != driver.ModeNone {
		if _, ok := meta.SchemeByName(scheme); !ok {
			s.counters.Inc("run.bad_request")
			writeJSON(w, http.StatusBadRequest, ErrorBody{Error: fmt.Sprintf(
				"unknown scheme %q (have %v)", scheme, meta.SchemeNames())})
			return
		}
	}
	if req.Faults != "" {
		if _, err := faults.ParsePlan(req.Faults); err != nil {
			s.counters.Inc("run.bad_request")
			writeJSON(w, http.StatusBadRequest, ErrorBody{Error: err.Error()})
			return
		}
	}
	switch req.Engine {
	case "", "fast", "ref", "compiled":
	default:
		s.counters.Inc("run.bad_request")
		writeJSON(w, http.StatusBadRequest, ErrorBody{Error: fmt.Sprintf(
			"unknown engine %q (want \"fast\", \"ref\", or \"compiled\")", req.Engine)})
		return
	}

	sum := sha256.Sum256([]byte(req.Source))
	hash := hex.EncodeToString(sum[:])
	j := &job{
		req:  req,
		hash: hash,
		key:  cacheKey{hash: hash, scheme: scheme, mode: mode.String(), optimize: !req.NoOptimize},
		done: make(chan jobResult, 1),
		ctx:  r.Context(),
	}

	// Circuit breaker: poison programs fast-fail without touching the
	// pool while their breaker is open.
	allowed, _ := s.breakers.Allow(hash, time.Now())
	if !allowed {
		s.counters.Inc("run.breaker_fastfail")
		retryMs := s.breakers.cfg.Cooldown.Milliseconds()
		w.Header().Set("Retry-After", strconv.FormatInt(max64(1, retryMs/1000), 10))
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{
			Error:            "circuit breaker open for program " + hash[:12],
			Breaker:          s.breakers.State(hash),
			RetryAfterMillis: retryMs,
		})
		return
	}

	// Admission: reject while draining, shed when the bounded queue is
	// full. The RLock pairs with Close's Lock so the enqueue can never
	// race the channel close.
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		s.breakers.Cancel(hash)
		s.counters.Inc("run.draining_reject")
		writeJSON(w, http.StatusServiceUnavailable, ErrorBody{Error: "server draining"})
		return
	}
	select {
	case s.jobs <- j:
		s.drainMu.RUnlock()
		s.counters.Inc("run.admitted")
	default:
		s.drainMu.RUnlock()
		s.breakers.Cancel(hash)
		s.counters.Inc("run.shed")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorBody{
			Error:            "admission queue full",
			RetryAfterMillis: 1000,
		})
		return
	}

	select {
	case res := <-j.done:
		writeJSON(w, res.status, res.body)
	case <-r.Context().Done():
		// Client gone. The worker still runs the job (its execution
		// context is cancelled with ours, so it finishes fast) and its
		// result feeds the breaker and spool; only the response is lost.
		s.counters.Inc("run.abandoned")
	}
}

func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.jobs {
		j.done <- s.execute(j)
	}
}

// execute runs one admitted job: compile through the singleflight cache,
// execute with containment + bounded retry, feed the breaker, spool a
// replay bundle on trap.
func (s *Server) execute(j *job) jobResult {
	cfg := s.driverConfig(j.req)
	s.counters.Inc("run.engine." + cfg.Interp.String())

	var pt metrics.PhaseTimer
	var entry *cacheEntry
	var hit bool
	pt.Time("compile", func() {
		entry, hit = s.cache.get(j.key, func() (mod *ir.Module, counters metrics.OptCounters, err error) {
			return driver.CompileWithStats(
				[]driver.Source{{Name: "prog.c", Text: j.req.Source}}, cfg)
		})
	})
	if hit {
		s.counters.Inc("cache.hit")
	} else {
		s.counters.Inc("cache.miss")
	}
	if entry.err != nil {
		return s.compileFailure(j, entry.err)
	}

	var res *driver.Result
	var wall time.Duration
	attempts := s.opts.Retry.Do(j.ctx, func(attempt int) bool {
		execDone := pt.Start("execute")
		start := time.Now()
		res = s.runContained(j.ctx, entry, cfg)
		wall = time.Since(start)
		execDone()
		retryable := res.TrapCode().Retryable()
		if retryable {
			s.counters.Inc("run.retried")
		}
		return retryable
	})

	code := res.TrapCode()
	s.breakers.Record(j.hash, time.Now(), TripsBreaker(code))

	resp := Response{
		Program:   j.hash,
		Config:    configName(j.key),
		ExitCode:  res.ExitCode,
		Output:    res.Output,
		WallNanos: wall.Nanoseconds(),
		CacheHit:  hit,
	}
	if attempts > 1 {
		resp.Attempts = attempts
	}
	if res.Stats != nil {
		res.Stats.Opt = entry.counters
		res.Stats.CheckElims = entry.counters.ChecksRemoved()
		res.Stats.TrapCode = string(code)
		s.observeRunMeta(res.Stats)
		rep := res.Stats.Report()
		resp.Stats = &rep
	}
	resp.Phases = pt.Phases()
	if res.Err != nil {
		resp.Error = res.Err.Error()
		resp.TrapCode = string(code)
		s.counters.Inc("trap." + string(code))
		if res.Violation != nil {
			resp.Violation = res.Violation.Error()
		}
		resp.Bundle = s.spool(j, cfg, code, res.Err.Error())
	} else {
		s.counters.Inc("run.ok")
	}
	s.logf("serve: %s %s trap=%q exit=%d wall=%v cache_hit=%v attempts=%d",
		j.hash[:12], resp.Config, resp.TrapCode, resp.ExitCode, wall, hit, attempts)
	return jobResult{status: http.StatusOK, body: resp}
}

// compileFailure maps a compile error to its response and feeds the
// breaker: a panicking compile is a contained crash (the poison class
// breakers exist for); ordinary rejections are the compiler doing its job.
func (s *Server) compileFailure(j *job, err error) jobResult {
	body := ErrorBody{Error: err.Error()}
	var ce *driver.CompileError
	if errors.As(err, &ce) {
		body.Compile = &CompileErrorBody{Stage: ce.Stage, Unit: ce.Unit, Message: ce.Err.Error()}
	}
	panicked := ce != nil && ce.Stage == "panic"
	s.breakers.Record(j.hash, time.Now(), panicked)
	if panicked {
		s.counters.Inc("run.compile_panic")
	} else {
		s.counters.Inc("run.compile_error")
	}
	s.logf("serve: %s compile error: %v", j.hash[:12], err)
	return jobResult{status: http.StatusBadRequest, body: body}
}

// runContained executes the compiled module with a panic backstop: a
// crashing VM becomes a Result carrying a TrapPanic, never a dead worker.
func (s *Server) runContained(ctx context.Context, entry *cacheEntry, cfg driver.Config) (res *driver.Result) {
	defer func() {
		if r := recover(); r != nil {
			trap := &vm.Trap{Code: vm.TrapPanic, Cause: fmt.Errorf("recovered panic: %v", r)}
			res = &driver.Result{Err: trap, Trap: trap, Stats: &metrics.Stats{}}
		}
	}()
	return driver.ExecuteContext(ctx, entry.mod, cfg)
}

// spool writes the crash-replay bundle for a trapped run ("" when
// spooling is off or the write fails; a spool failure must not fail the
// request).
func (s *Server) spool(j *job, cfg driver.Config, code vm.TrapCode, errMsg string) string {
	if s.opts.SpoolDir == "" {
		return ""
	}
	b := Bundle{
		Schema:       BundleSchema,
		ProgramHash:  j.hash,
		Source:       j.req.Source,
		Mode:         j.key.mode,
		Optimize:     j.key.optimize,
		Faults:       j.req.Faults,
		StepLimit:    cfg.StepLimit,
		TimeoutNanos: int64(cfg.Timeout),
		Args:         j.req.Args,
		TrapCode:     string(code),
		Error:        errMsg,
	}
	if j.key.mode != driver.ModeNone.String() {
		b.Scheme = j.key.scheme
	}
	name := fmt.Sprintf("%s-%s-%06d.json", j.hash[:12], code, s.bundleSeq.Add(1))
	path, err := WriteBundle(s.opts.SpoolDir, name, b)
	if err != nil {
		s.counters.Inc("spool.error")
		s.logf("serve: spool %s: %v", name, err)
		return ""
	}
	s.counters.Inc("spool.written")
	return path
}

// driverConfig builds the per-request driver configuration.
func (s *Server) driverConfig(req Request) driver.Config {
	mode, _ := parseMode(req.Mode) // validated at admission
	cfg := driver.DefaultConfig(mode)
	cfg.Optimize = !req.NoOptimize
	if mode != driver.ModeNone {
		scheme := req.Scheme
		if scheme == "" {
			scheme = "shadowspace"
		}
		_ = applyScheme(&cfg, scheme) // validated at admission
	}
	switch req.Engine {
	case "ref":
		cfg.Interp = vm.InterpRef
	case "compiled":
		cfg.Interp = vm.InterpCompiled
	}
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMillis > 0 {
		timeout = time.Duration(req.TimeoutMillis) * time.Millisecond
		if timeout > s.opts.MaxTimeout {
			timeout = s.opts.MaxTimeout
		}
	}
	cfg.Timeout = timeout
	if s.opts.StepLimit > 0 {
		cfg.StepLimit = s.opts.StepLimit
	}
	if req.Steps > 0 {
		cfg.StepLimit = req.Steps
		if s.opts.MaxSteps > 0 && cfg.StepLimit > s.opts.MaxSteps {
			cfg.StepLimit = s.opts.MaxSteps
		}
	}
	cfg.Args = req.Args
	if req.Faults != "" {
		if plan, err := faults.ParsePlan(req.Faults); err == nil && plan.Enabled() {
			cfg.Faults = faults.NewInjector(plan)
		}
	}
	return cfg
}

// configName renders the BENCH.json config label for a key.
func configName(k cacheKey) string {
	if k.mode == driver.ModeNone.String() {
		return "baseline"
	}
	return k.scheme + "-" + k.mode
}

// parseMode maps the wire mode names (BENCH.json's vocabulary) to
// driver modes; "" defaults to full.
func parseMode(mode string) (driver.Mode, error) {
	switch mode {
	case "", "full":
		return driver.ModeFull, nil
	case "none", "baseline":
		return driver.ModeNone, nil
	case "store-only", "store":
		return driver.ModeStoreOnly, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want none, store-only, or full)", mode)
}

// applyScheme wires a registered scheme into the config by constructor,
// not Kind — registered schemes beyond the built-ins have no Kind of
// their own (the bench harness's rule).
func applyScheme(cfg *driver.Config, name string) error {
	sc, ok := meta.SchemeByName(name)
	if !ok {
		return fmt.Errorf("unknown scheme %q (have %v)", name, meta.SchemeNames())
	}
	cfg.Meta = sc.Kind
	if ctor := sc.New; ctor != nil {
		cfg.MetaFacility = func() (meta.Facility, error) { return ctor(), nil }
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
