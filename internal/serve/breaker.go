package serve

import (
	"sync"
	"time"

	"softbound/internal/vm"
)

// BreakerConfig tunes the per-program-hash circuit breakers.
type BreakerConfig struct {
	// Threshold is how many consecutive qualifying failures (contained
	// crashes or step-limit traps — see TripsBreaker) open the breaker.
	// <= 0 disables breakers entirely.
	Threshold int
	// Cooldown is how long an open breaker fast-fails before admitting a
	// half-open probe (0 = 5s).
	Cooldown time.Duration
	// MaxTracked bounds the number of program hashes with live breaker
	// state; the least-recently-touched entry is evicted beyond it
	// (0 = 1024). Hostile traffic cycling unique poison programs must not
	// grow server memory without bound.
	MaxTracked int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Cooldown == 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.MaxTracked <= 0 {
		c.MaxTracked = 1024
	}
	return c
}

// TripsBreaker reports whether a trap of this class counts against a
// program's breaker. Contained panics and step-limit traps qualify: both
// mean the program (or a compiler/VM bug it tickles) burns a full worker
// budget every time it runs, so repeats should fast-fail instead of
// re-occupying the pool. Detections (spatial/baseline violations) do NOT
// qualify — detecting a violation is the service doing its job, cheaply.
// Deadline traps don't either: they are bounded by construction and often
// reflect client-chosen budgets rather than poison input.
func TripsBreaker(code vm.TrapCode) bool {
	return code == vm.TrapPanic || code == vm.TrapStepLimit
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func stateName(s int) string {
	return [...]string{"closed", "open", "half-open"}[s]
}

// breaker is one program hash's circuit state. All methods are called
// with breakerSet.mu held.
type breaker struct {
	state       int
	consecutive int       // qualifying failures in a row (closed state)
	openedAt    time.Time // when the breaker last opened
	probing     bool      // a half-open probe is in flight
	touched     time.Time // LRU eviction stamp
}

// breakerSet maps program hashes to breakers, bounded by MaxTracked.
type breakerSet struct {
	cfg BreakerConfig
	mu  sync.Mutex
	m   map[string]*breaker
}

func newBreakerSet(cfg BreakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg.withDefaults(), m: make(map[string]*breaker)}
}

// enabled reports whether breakers are active at all.
func (s *breakerSet) enabled() bool { return s.cfg.Threshold > 0 }

// Allow reports whether a request for this program may proceed now. Open
// breakers fast-fail until Cooldown elapses, then admit exactly one
// half-open probe; concurrent requests during the probe keep fast-failing.
// Callers that acquire a probe slot but never run (e.g. the queue shed the
// request) must release it with Cancel.
func (s *breakerSet) Allow(hash string, now time.Time) (ok, probe bool) {
	if !s.enabled() {
		return true, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[hash]
	if b == nil {
		return true, false // no failure history: no state to keep
	}
	b.touched = now
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < s.cfg.Cooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// Cancel releases a half-open probe slot that was admitted but never
// executed, so the next request can probe instead.
func (s *breakerSet) Cancel(hash string) {
	if !s.enabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.m[hash]; b != nil && b.state == breakerHalfOpen {
		b.probing = false
	}
}

// Record feeds one completed execution's outcome. tripped is whether the
// run ended in a breaker-qualifying trap (TripsBreaker). Outcomes arriving
// while the breaker is open (from requests admitted before it opened) are
// ignored so a burst of stale failures cannot extend the outage forever.
func (s *breakerSet) Record(hash string, now time.Time, tripped bool) {
	if !s.enabled() {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.m[hash]
	if b == nil {
		if !tripped {
			return // successes for unknown programs need no state
		}
		b = &breaker{}
		s.m[hash] = b
		s.evictLocked()
	}
	b.touched = now
	switch b.state {
	case breakerClosed:
		if !tripped {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= s.cfg.Threshold {
			b.state = breakerOpen
			b.openedAt = now
		}
	case breakerHalfOpen:
		b.probing = false
		if tripped {
			b.state = breakerOpen
			b.openedAt = now
		} else {
			b.state = breakerClosed
			b.consecutive = 0
		}
	}
}

// State returns the breaker state name for a hash ("closed" if untracked).
func (s *breakerSet) State(hash string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b := s.m[hash]; b != nil {
		return stateName(b.state)
	}
	return stateName(breakerClosed)
}

// Snapshot lists every non-closed breaker (hash → state name).
func (s *breakerSet) Snapshot() map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string)
	for h, b := range s.m {
		if b.state != breakerClosed {
			out[h] = stateName(b.state)
		}
	}
	return out
}

// evictLocked drops the least-recently-touched breaker once the map
// exceeds MaxTracked. Linear scan: MaxTracked is small and eviction only
// runs on insertion of a new failing program.
func (s *breakerSet) evictLocked() {
	for len(s.m) > s.cfg.MaxTracked {
		var oldest string
		var oldestAt time.Time
		first := true
		for h, b := range s.m {
			if first || b.touched.Before(oldestAt) {
				oldest, oldestAt, first = h, b.touched, false
			}
		}
		delete(s.m, oldest)
	}
}
