package bench

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"softbound/internal/driver"
	"softbound/internal/meta"
)

const testScale = 3

func testConfig(workers int) Config {
	return Config{
		Workers:  workers,
		Scale:    testScale,
		Programs: []string{"compress", "treeadd"},
	}
}

func TestMatrixShape(t *testing.T) {
	specs, err := buildMatrix(Config{})
	if err != nil {
		t.Fatal(err)
	}
	// 15 programs × (1 baseline + 2 schemes × 2 modes).
	if want := 15 * (1 + len(meta.Schemes())*2); len(specs) != want {
		t.Fatalf("full matrix has %d cells, want %d", len(specs), want)
	}

	specs, err = buildMatrix(Config{
		Programs: []string{"treeadd"},
		Schemes:  []meta.Scheme{mustScheme(t, "hashtable")},
		Modes:    []driver.Mode{driver.ModeFull},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("restricted matrix has %d cells, want 2", len(specs))
	}
	if specs[0].configName() != "baseline" || specs[1].configName() != "hashtable-full" {
		t.Fatalf("matrix order: %s, %s", specs[0].configName(), specs[1].configName())
	}

	if _, err := buildMatrix(Config{Programs: []string{"nope"}}); err == nil {
		t.Fatal("unknown program accepted")
	}
}

func mustScheme(t *testing.T, name string) meta.Scheme {
	t.Helper()
	s, ok := meta.SchemeByName(name)
	if !ok {
		t.Fatalf("scheme %q not registered", name)
	}
	return s
}

// TestExecuteParallel runs a small matrix on several workers and checks
// the report invariants: complete, error-free, overheads computed against
// the right baselines, and valid JSON under the schema's key names.
func TestExecuteParallel(t *testing.T) {
	rep, err := Execute(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != SchemaVersion {
		t.Errorf("schema = %d", rep.Schema)
	}
	// 2 programs × (1 baseline + every registered scheme × 2 modes).
	if want := 2 * (1 + len(meta.Schemes())*2); len(rep.Runs) != want {
		t.Fatalf("got %d runs, want %d: %+v", len(rep.Runs), want, rep.Runs)
	}
	baselines := map[string]Run{}
	for _, r := range rep.Runs {
		if r.Error != "" {
			t.Fatalf("%s/%s failed: %s", r.Program, r.Config, r.Error)
		}
		if r.Stats.SimInsts == 0 {
			t.Errorf("%s/%s: no simulated instructions recorded", r.Program, r.Config)
		}
		if len(r.Phases) != 2 {
			t.Errorf("%s/%s: phases = %+v", r.Program, r.Config, r.Phases)
		}
		if r.Config == "baseline" {
			if r.OverheadSim != nil {
				t.Errorf("%s baseline has an overhead", r.Program)
			}
			baselines[r.Program] = r
		}
	}
	for _, r := range rep.Runs {
		if r.Config == "baseline" {
			continue
		}
		if r.OverheadSim == nil || r.OverheadWall == nil {
			t.Fatalf("%s/%s: overhead not computed", r.Program, r.Config)
		}
		b := baselines[r.Program]
		want := float64(r.Stats.SimInsts)/float64(b.Stats.SimInsts) - 1
		if *r.OverheadSim != want {
			t.Errorf("%s/%s: overhead %f, want %f", r.Program, r.Config, *r.OverheadSim, want)
		}
		// Instrumentation always executes extra simulated instructions.
		if *r.OverheadSim <= 0 {
			t.Errorf("%s/%s: non-positive sim overhead %f", r.Program, r.Config, *r.OverheadSim)
		}
	}
	if len(rep.Summary) != len(meta.Schemes())*2 {
		t.Errorf("summary has %d configs: %+v", len(rep.Summary), rep.Summary)
	}

	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Runs) != len(rep.Runs) || back.Runs[1].OverheadSim == nil {
		t.Errorf("JSON round trip lost runs: %d", len(back.Runs))
	}
}

// TestOrderStableAcrossWorkerCounts pins the report to matrix order so
// BENCH.json diffs cleanly regardless of parallelism.
func TestOrderStableAcrossWorkerCounts(t *testing.T) {
	serial, err := Execute(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Execute(testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Runs) != len(parallel.Runs) {
		t.Fatalf("run counts differ: %d vs %d", len(serial.Runs), len(parallel.Runs))
	}
	for i := range serial.Runs {
		s, p := serial.Runs[i], parallel.Runs[i]
		if s.Program != p.Program || s.Config != p.Config {
			t.Errorf("run %d: serial %s/%s vs parallel %s/%s",
				i, s.Program, s.Config, p.Program, p.Config)
		}
		// The simulated instruction counts are deterministic; only wall
		// clock may differ between the two executions.
		if s.Stats.SimInsts != p.Stats.SimInsts {
			t.Errorf("run %d (%s/%s): sim insts differ: %d vs %d",
				i, s.Program, s.Config, s.Stats.SimInsts, p.Stats.SimInsts)
		}
	}
}

// TestPoolBoundsConcurrency proves the worker pool genuinely overlaps
// runs and never exceeds its bound — independent of the host's CPU count,
// which is what makes the harness faster than serial on multi-core
// runners.
func TestPoolBoundsConcurrency(t *testing.T) {
	old := runCell
	defer func() { runCell = old }()
	var mu sync.Mutex
	active, maxActive := 0, 0
	runCell = func(s spec) Run {
		mu.Lock()
		active++
		if active > maxActive {
			maxActive = active
		}
		mu.Unlock()
		time.Sleep(30 * time.Millisecond)
		mu.Lock()
		active--
		mu.Unlock()
		return Run{Program: s.bench.Name, Config: s.configName()}
	}
	const workers = 4
	if _, err := Execute(Config{Workers: workers, Scale: testScale}); err != nil {
		t.Fatal(err)
	}
	if maxActive > workers {
		t.Errorf("pool exceeded its bound: %d active > %d workers", maxActive, workers)
	}
	if maxActive < 2 {
		t.Errorf("pool never overlapped runs (max active = %d)", maxActive)
	}
}

func TestFormatMentionsEveryRun(t *testing.T) {
	rep, err := Execute(Config{
		Workers:  2,
		Scale:    testScale,
		Programs: []string{"treeadd"},
		Schemes:  []meta.Scheme{mustScheme(t, "shadowspace")},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := Format(rep)
	for _, frag := range []string{"treeadd", "baseline", "shadowspace-full", "mean overhead"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Format output missing %q:\n%s", frag, out)
		}
	}
}
