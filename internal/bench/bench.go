// Package bench is the parallel, instrumented benchmark harness: it runs
// the full program × metadata-scheme × protection-mode matrix behind the
// paper's Figure 2 on a bounded worker pool, one isolated compile+VM per
// run, and serializes per-run statistics, per-phase wall-clock timings,
// and overhead-versus-baseline figures to the stable BENCH.json schema.
//
// Isolation: every run compiles its own module and constructs its own VM
// and metadata facility, so concurrent runs share no mutable state (the
// compile pipeline and vm package keep no package-level mutable globals;
// internal/vm's isolation test holds this invariant under -race).
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"softbound/internal/driver"
	"softbound/internal/faults"
	"softbound/internal/ir"
	"softbound/internal/meta"
	"softbound/internal/metrics"
	"softbound/internal/progs"
	"softbound/internal/retry"
	"softbound/internal/vm"
)

// SchemaVersion identifies the BENCH.json layout. Bump it whenever a
// field of Report, Run, or metrics.Report is renamed or removed.
const SchemaVersion = 1

// baselineConfig names the uninstrumented runs overheads are computed
// against.
const baselineConfig = "baseline"

// Config selects the matrix and the execution policy.
type Config struct {
	// Workers bounds the worker pool. <= 0 means one worker (serial);
	// callers wanting full parallelism pass runtime.NumCPU().
	Workers int
	// Scale is the benchmark problem size (0 = each program's default).
	Scale int
	// Programs restricts the matrix to a subset of progs.All() by name
	// (nil = all 15, Figure 1 order).
	Programs []string
	// Schemes lists the metadata backends to measure (nil = the full
	// meta registry).
	Schemes []meta.Scheme
	// Modes lists the instrumented protection modes (nil = store-only
	// and full, the paper's two checking modes). The uninstrumented
	// baseline always runs; it is the denominator.
	Modes []driver.Mode
	// Log receives one line per completed run (nil = silent).
	Log io.Writer

	// CellTimeout bounds each cell's execute phase via the VM deadline
	// guard (0 = unbounded). A harness-level wall-clock backstop of
	// 2×CellTimeout+1s contains cells whose VM never reaches the guard.
	CellTimeout time.Duration
	// StepLimit overrides each cell's VM instruction budget (0 = the
	// driver default).
	StepLimit uint64
	// Faults, when non-nil, runs every cell under a fresh fault injector
	// built from this plan (one injector per cell keeps each schedule
	// deterministic and isolated).
	Faults *faults.Plan

	// MaxAttempts bounds the containment retry per cell (how many times a
	// panicking or hung cell runs before its failure is recorded; 0 = the
	// default of 2, i.e. one retry). Cells that fail deterministically —
	// VM deadline, step limit, detections — are never retried regardless.
	MaxAttempts int

	// Interp selects the interpreter engine for every cell (engine A/B
	// measurements; the modeled statistics are identical across engines,
	// only wall clock moves).
	Interp vm.InterpKind

	// RefInterp runs every cell on the reference interpreter.
	//
	// Deprecated: set Interp to vm.InterpRef instead. When set it wins
	// over Interp.
	RefInterp bool
}

// Run is one completed cell of the matrix.
type Run struct {
	Program string `json:"program"`
	Class   string `json:"class"`
	Scale   int    `json:"scale"`
	// Config is "baseline" for the uninstrumented run, otherwise
	// "<scheme>-<mode>".
	Config string `json:"config"`
	Mode   string `json:"mode"`
	Scheme string `json:"scheme,omitempty"`
	// Engine names the interpreter this cell ran on ("fast", "ref",
	// "compiled") so mixed-engine result sets stay distinguishable.
	Engine string `json:"engine"`

	Stats  metrics.Report        `json:"stats"`
	Phases []metrics.PhaseTiming `json:"phases"`
	// WallNanos is the execute-phase wall clock (compile excluded, as in
	// the paper's runtime measurements).
	WallNanos int64 `json:"wall_nanos"`
	// NsPerInst is WallNanos divided by executed IR instructions — the
	// host-side interpreter speed this cell observed. An additive
	// schema-v1 field; omitted when the run executed no instructions.
	NsPerInst float64 `json:"ns_per_inst,omitempty"`

	// OverheadSim and OverheadWall are relative to the same program's
	// baseline run (0.79 = 79%); nil on the baseline itself and on
	// errored runs.
	OverheadSim  *float64 `json:"overhead_sim,omitempty"`
	OverheadWall *float64 `json:"overhead_wall,omitempty"`

	Error string `json:"error,omitempty"`
	// TrapCode classifies how the cell ended ("" = clean exit): a
	// vm.TrapCode string, or "panic" when the harness contained a
	// panicking cell. An additive schema-v1 field.
	TrapCode string `json:"trap_code,omitempty"`
	// Attempts is how many times the harness ran the cell (> 1 after a
	// contained panic or hang triggered the bounded retry); omitted when 1.
	Attempts int `json:"attempts,omitempty"`
}

// ConfigSummary aggregates one configuration across all programs — the
// per-bar-group averages of Figure 2.
type ConfigSummary struct {
	Config           string  `json:"config"`
	Runs             int     `json:"runs"`
	MeanOverheadSim  float64 `json:"mean_overhead_sim"`
	MeanOverheadWall float64 `json:"mean_overhead_wall"`
}

// Report is the BENCH.json document.
type Report struct {
	Schema  int `json:"schema"`
	Workers int `json:"workers"`
	Scale   int `json:"scale"`
	// Engine is the interpreter every cell ran on: "fast" (default) or
	// "ref". An additive schema-v1 field.
	Engine       string          `json:"engine"`
	Programs     []string        `json:"programs"`
	Schemes      []string        `json:"schemes"`
	Modes        []string        `json:"modes"`
	ElapsedNanos int64           `json:"elapsed_nanos"`
	Runs         []Run           `json:"runs"`
	Summary      []ConfigSummary `json:"summary"`
}

// spec is one cell before execution.
type spec struct {
	bench  progs.Benchmark
	scale  int
	mode   driver.Mode
	scheme meta.Scheme // zero value for the baseline

	// Execution policy, copied from Config by buildMatrix.
	timeout time.Duration
	steps   uint64
	plan    *faults.Plan
	interp  vm.InterpKind
}

func (s spec) configName() string {
	if s.mode == driver.ModeNone {
		return baselineConfig
	}
	return s.scheme.Name + "-" + s.mode.String()
}

// engine resolves the effective interpreter selection, honoring the
// deprecated RefInterp override.
func (cfg Config) engine() vm.InterpKind {
	if cfg.RefInterp {
		return vm.InterpRef
	}
	return cfg.Interp
}

// DefaultModes returns the paper's two checking modes.
func DefaultModes() []driver.Mode {
	return []driver.Mode{driver.ModeStoreOnly, driver.ModeFull}
}

// selectPrograms resolves cfg.Programs against the registry, preserving
// Figure 1 order.
func selectPrograms(names []string) ([]progs.Benchmark, error) {
	all := progs.All()
	if len(names) == 0 {
		return all, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := progs.Get(n); !ok {
			return nil, fmt.Errorf("bench: unknown program %q", n)
		}
		want[n] = true
	}
	var out []progs.Benchmark
	for _, b := range all {
		if want[b.Name] {
			out = append(out, b)
		}
	}
	return out, nil
}

// buildMatrix expands the configuration into the ordered run list: for
// each program, the baseline followed by every scheme × mode cell.
func buildMatrix(cfg Config) ([]spec, error) {
	benches, err := selectPrograms(cfg.Programs)
	if err != nil {
		return nil, err
	}
	schemes := cfg.Schemes
	if len(schemes) == 0 {
		schemes = meta.Schemes()
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = DefaultModes()
	}
	var out []spec
	for _, b := range benches {
		cell := spec{bench: b, scale: cfg.Scale, mode: driver.ModeNone,
			timeout: cfg.CellTimeout, steps: cfg.StepLimit, plan: cfg.Faults,
			interp: cfg.engine()}
		out = append(out, cell)
		for _, sc := range schemes {
			for _, m := range modes {
				if m == driver.ModeNone {
					continue // the baseline is implicit
				}
				cell.mode, cell.scheme = m, sc
				out = append(out, cell)
			}
		}
	}
	return out, nil
}

// runCell is the per-cell entry point; a variable so tests can observe
// pool behaviour without doing real compiles.
var runCell = executeRun

// newRun seeds a Run's identity fields from its spec, so every exit path
// (including containment of a panicking or hung cell) reports which cell
// it was.
func newRun(s spec) Run {
	run := Run{
		Program: s.bench.Name,
		Class:   s.bench.Class.String(),
		Scale:   s.scale,
		Config:  s.configName(),
		Mode:    s.mode.String(),
		Engine:  s.interp.String(),
	}
	if s.mode != driver.ModeNone {
		run.Scheme = s.scheme.Name
	}
	return run
}

// executeRun compiles and executes one cell in isolation.
func executeRun(s spec) Run {
	run := newRun(s)

	dcfg := driver.DefaultConfig(s.mode)
	if s.mode != driver.ModeNone {
		dcfg.Meta = s.scheme.Kind
		// Construct the facility from the scheme itself rather than its
		// Kind: registered schemes beyond the two built-ins have no Kind
		// of their own, and Kind-based construction would silently swap
		// in the wrong backend.
		if ctor := s.scheme.New; ctor != nil {
			dcfg.MetaFacility = func() (meta.Facility, error) { return ctor(), nil }
		}
	}
	dcfg.Timeout = s.timeout
	if s.steps != 0 {
		dcfg.StepLimit = s.steps
	}
	if s.plan != nil {
		dcfg.Faults = faults.NewInjector(*s.plan)
	}
	dcfg.Interp = s.interp
	src := s.bench.Source(s.scale)

	var pt metrics.PhaseTimer
	var mod *ir.Module
	var counters metrics.OptCounters
	var err error
	pt.Time("compile", func() {
		mod, counters, err = driver.CompileWithStats(
			[]driver.Source{{Name: s.bench.Name + ".c", Text: src}}, dcfg)
	})
	if err != nil {
		run.Error = err.Error()
		run.Phases = pt.Phases()
		return run
	}

	var res *driver.Result
	execDone := pt.Start("execute")
	execStart := time.Now()
	res = driver.Execute(mod, dcfg)
	run.WallNanos = time.Since(execStart).Nanoseconds()
	execDone()

	run.Phases = pt.Phases()
	run.TrapCode = string(vm.CodeOf(res.Err))
	if res.Stats != nil {
		res.Stats.Opt = counters
		res.Stats.CheckElims = counters.ChecksRemoved()
		res.Stats.TrapCode = run.TrapCode
		run.Stats = res.Stats.Report()
		if run.Stats.Insts > 0 {
			run.NsPerInst = float64(run.WallNanos) / float64(run.Stats.Insts)
		}
	}
	if res.Err != nil {
		run.Error = res.Err.Error()
	}
	return run
}

// maxAttempts bounds the containment retry: a cell that panics or blows
// its wall-clock backstop gets exactly one more chance before its failure
// is recorded and the matrix moves on.
const maxAttempts = 2

// runGuarded executes one cell with crash containment: a panic inside the
// cell becomes a failed Run instead of killing the process, and a cell
// whose goroutine outlives twice its timeout is abandoned as hung. Panicked
// and hung cells are retried under the shared retry.Policy (the failure may
// be a transient artifact of load); a repeat failure is recorded as the
// cell's result and the rest of the matrix still completes. A VM-level
// deadline trap is NOT retried — the program genuinely ran past its budget,
// and a rerun would just double the wall time to the same answer
// (vm.TrapCode.Retryable encodes the same rule for the service).
func runGuarded(s spec, policy retry.Policy) Run {
	var run Run
	attempts := policy.Do(context.Background(), func(int) bool {
		var contained bool
		run, contained = runAttempt(s)
		return contained
	})
	if attempts > 1 {
		run.Attempts = attempts
	}
	return run
}

// runAttempt is one contained execution of a cell. contained reports that
// the harness had to intervene (panic recovery or backstop abandonment)
// rather than the cell finishing on its own.
func runAttempt(s spec) (run Run, contained bool) {
	type outcome struct {
		run       Run
		contained bool
	}
	done := make(chan outcome, 1)
	// Read the runCell hook on the harness goroutine: an abandoned attempt
	// goroutine may outlive Execute, and tests restore the hook after it
	// returns.
	exec := runCell
	go func() {
		defer func() {
			if r := recover(); r != nil {
				failed := newRun(s)
				failed.TrapCode = string(vm.TrapPanic)
				failed.Error = fmt.Sprintf("panic: %v", r)
				done <- outcome{run: failed, contained: true}
			}
		}()
		done <- outcome{run: exec(s)}
	}()

	// The VM deadline guard is the primary timeout; this wall-clock
	// backstop only fires if the cell never reaches the VM (compile hang,
	// stuck builtin). The goroutine cannot be killed, but the harness
	// abandons it and completes the matrix.
	if s.timeout > 0 {
		select {
		case o := <-done:
			return o.run, o.contained
		case <-time.After(2*s.timeout + time.Second):
			run = newRun(s)
			run.TrapCode = string(vm.TrapDeadline)
			run.Error = fmt.Sprintf("cell exceeded wall-clock backstop (%v); abandoned", 2*s.timeout+time.Second)
			return run, true
		}
	}
	o := <-done
	return o.run, o.contained
}

// Execute runs the whole matrix on a bounded worker pool and returns the
// finished report. Results keep matrix order regardless of completion
// order, so BENCH.json is stable across parallelism levels.
func Execute(cfg Config) (*Report, error) {
	specs, err := buildMatrix(cfg)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	policy := retry.Policy{MaxAttempts: cfg.MaxAttempts}
	if policy.MaxAttempts <= 0 {
		policy.MaxAttempts = maxAttempts
	}

	start := time.Now()
	runs := make([]Run, len(specs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var logMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				runs[i] = runGuarded(specs[i], policy)
				if cfg.Log != nil {
					logMu.Lock()
					fmt.Fprintf(cfg.Log, "bench: %-11s %-22s %8.2fms sim=%d\n",
						runs[i].Program, runs[i].Config,
						float64(runs[i].WallNanos)/1e6, runs[i].Stats.SimInsts)
					logMu.Unlock()
				}
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rep := &Report{
		Schema:       SchemaVersion,
		Workers:      workers,
		Scale:        cfg.Scale,
		Engine:       cfg.engine().String(),
		ElapsedNanos: time.Since(start).Nanoseconds(),
		Runs:         runs,
	}
	for _, s := range specs {
		rep.Programs = appendUnique(rep.Programs, s.bench.Name)
		if s.mode != driver.ModeNone {
			rep.Schemes = appendUnique(rep.Schemes, s.scheme.Name)
			rep.Modes = appendUnique(rep.Modes, s.mode.String())
		}
	}
	computeOverheads(rep)
	return rep, nil
}

func appendUnique(list []string, v string) []string {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}

// computeOverheads fills every instrumented run's overhead fields from its
// program's baseline run, then aggregates the per-config summaries.
func computeOverheads(rep *Report) {
	base := make(map[string]*Run)
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.Config == baselineConfig && r.Error == "" {
			base[r.Program] = r
		}
	}
	type agg struct {
		sim, wall float64
		n         int
	}
	sums := make(map[string]*agg)
	for i := range rep.Runs {
		r := &rep.Runs[i]
		if r.Config == baselineConfig || r.Error != "" {
			continue
		}
		b := base[r.Program]
		if b == nil || b.Stats.SimInsts == 0 || b.WallNanos == 0 {
			continue
		}
		sim := float64(r.Stats.SimInsts)/float64(b.Stats.SimInsts) - 1
		wall := float64(r.WallNanos)/float64(b.WallNanos) - 1
		r.OverheadSim = &sim
		r.OverheadWall = &wall
		a := sums[r.Config]
		if a == nil {
			a = &agg{}
			sums[r.Config] = a
		}
		a.sim += sim
		a.wall += wall
		a.n++
	}
	configs := make([]string, 0, len(sums))
	for c := range sums {
		configs = append(configs, c)
	}
	sort.Strings(configs)
	for _, c := range configs {
		a := sums[c]
		rep.Summary = append(rep.Summary, ConfigSummary{
			Config:           c,
			Runs:             a.n,
			MeanOverheadSim:  a.sim / float64(a.n),
			MeanOverheadWall: a.wall / float64(a.n),
		})
	}
}

// Format renders the report as the human-readable companion to the JSON.
func Format(rep *Report) string {
	var b []byte
	out := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	out("Benchmark matrix: %d runs (%d programs × configs), %d workers, %.1fs elapsed\n",
		len(rep.Runs), len(rep.Programs), rep.Workers,
		time.Duration(rep.ElapsedNanos).Seconds())
	out("%-11s %-22s %10s %12s %10s %9s %9s %-10s\n",
		"program", "config", "wall(ms)", "sim insts", "overhead", "chk-elim", "ml-hoist", "trap")
	for _, r := range rep.Runs {
		oh := "-"
		if r.OverheadSim != nil {
			oh = fmt.Sprintf("%.1f%%", 100**r.OverheadSim)
		}
		if r.Error != "" {
			oh = "ERROR"
		}
		trap := r.TrapCode
		if trap == "" {
			trap = "-"
		}
		// chk-elim is "local+global" checks the optimizer removed at
		// compile time; ml-hoist is loop-invariant metaloads hoisted.
		out("%-11s %-22s %10.2f %12d %10s %9s %9d %-10s\n",
			r.Program, r.Config, float64(r.WallNanos)/1e6, r.Stats.SimInsts, oh,
			fmt.Sprintf("%d+%d", r.Stats.Opt.ChecksRemovedLocal, r.Stats.Opt.ChecksRemovedGlobal),
			r.Stats.Opt.MetaLoadsHoisted, trap)
	}
	out("\nPer-config mean overhead vs baseline:\n")
	for _, s := range rep.Summary {
		out("%-22s sim %6.1f%%   wall %6.1f%%   (%d runs)\n",
			s.Config, 100*s.MeanOverheadSim, 100*s.MeanOverheadWall, s.Runs)
	}
	return string(b)
}
