package bench

import (
	"strings"
	"testing"
	"time"

	"softbound/internal/driver"
	"softbound/internal/faults"
	"softbound/internal/meta"
	"softbound/internal/vm"
)

// TestPanickingSchemeIsContained is the regression test for the harness's
// original failure mode: one cell's panic killed the whole process and
// every other result with it. A scheme whose constructor panics must yield
// failed Runs for its cells (trap code "panic", both attempts recorded)
// while the rest of the matrix completes normally.
func TestPanickingSchemeIsContained(t *testing.T) {
	good, ok := meta.SchemeByName("shadowspace")
	if !ok {
		t.Fatal("shadowspace not registered")
	}
	boom := meta.Scheme{
		Kind: meta.KindShadowSpace,
		Name: "panicboom",
		New:  func() meta.Facility { panic("boom: deliberate constructor panic") },
	}
	rep, err := Execute(Config{
		Programs:    []string{"treeadd"},
		Scale:       2,
		Schemes:     []meta.Scheme{good, boom},
		Modes:       []driver.Mode{driver.ModeFull},
		CellTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Matrix: baseline + 2 schemes × 1 mode = 3 runs, all present.
	if len(rep.Runs) != 3 {
		t.Fatalf("report has %d runs, want 3 (matrix must complete)", len(rep.Runs))
	}
	var sawBoom, sawGood, sawBase bool
	for _, r := range rep.Runs {
		switch {
		case r.Scheme == "panicboom":
			sawBoom = true
			if r.TrapCode != string(vm.TrapPanic) {
				t.Errorf("panicking cell trap %q, want %q", r.TrapCode, vm.TrapPanic)
			}
			if r.Attempts != 2 {
				t.Errorf("panicking cell attempts = %d, want 2 (one bounded retry)", r.Attempts)
			}
			if !strings.Contains(r.Error, "boom") {
				t.Errorf("panicking cell error %q does not carry the panic value", r.Error)
			}
		case r.Scheme == "shadowspace":
			sawGood = true
			if r.Error != "" || r.TrapCode != "" {
				t.Errorf("healthy cell failed: trap %q error %q", r.TrapCode, r.Error)
			}
		case r.Config == baselineConfig:
			sawBase = true
			if r.Error != "" {
				t.Errorf("baseline failed: %v", r.Error)
			}
		}
	}
	if !sawBoom || !sawGood || !sawBase {
		t.Fatalf("missing cells: boom=%v good=%v baseline=%v", sawBoom, sawGood, sawBase)
	}
}

// TestHungCellBackstop: a cell that never returns (stubbed runCell) is
// abandoned at the wall-clock backstop with a deadline trap, and the
// harness still completes.
func TestHungCellBackstop(t *testing.T) {
	old := runCell
	defer func() { runCell = old }()
	runCell = func(s spec) Run {
		if s.mode != driver.ModeNone {
			select {} // hang forever: simulates a stuck compile/builtin
		}
		return newRun(s)
	}
	timeout := 200 * time.Millisecond
	start := time.Now()
	rep, err := Execute(Config{
		Programs:    []string{"treeadd"},
		Schemes:     []meta.Scheme{{Kind: meta.KindShadowSpace, Name: "shadowspace", New: func() meta.Facility { return meta.NewShadowSpace() }}},
		Modes:       []driver.Mode{driver.ModeFull},
		CellTimeout: timeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if len(rep.Runs) != 2 {
		t.Fatalf("report has %d runs, want 2", len(rep.Runs))
	}
	var hung *Run
	for i := range rep.Runs {
		if rep.Runs[i].Mode == driver.ModeFull.String() {
			hung = &rep.Runs[i]
		}
	}
	if hung == nil {
		t.Fatal("hung cell missing from report")
	}
	if hung.TrapCode != string(vm.TrapDeadline) {
		t.Fatalf("hung cell trap %q, want %q", hung.TrapCode, vm.TrapDeadline)
	}
	if hung.Attempts != maxAttempts {
		t.Fatalf("hung cell attempts = %d, want %d", hung.Attempts, maxAttempts)
	}
	// Two abandoned attempts at 2×timeout+1s each, plus slack.
	if budget := 2 * (2*timeout + time.Second) * 3; elapsed > budget {
		t.Fatalf("harness took %v, want < %v", elapsed, budget)
	}
}

// TestDeadlineCellInMatrix runs real cells under an unmeetable deadline:
// the instrumented cell must record a VM-level deadline trap — with NO
// containment retry (the program genuinely ran out of time; rerunning
// would double the wall clock to the same answer) — and the matrix still
// completes with every cell present.
func TestDeadlineCellInMatrix(t *testing.T) {
	rep, err := Execute(Config{
		Programs:    []string{"treeadd"},
		Modes:       []driver.Mode{driver.ModeFull},
		CellTimeout: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + len(meta.Schemes()); len(rep.Runs) != want {
		t.Fatalf("report has %d runs, want %d", len(rep.Runs), want)
	}
	var deadlined bool
	for _, r := range rep.Runs {
		if r.TrapCode == string(vm.TrapDeadline) {
			deadlined = true
			if r.Attempts != 0 {
				t.Errorf("%s/%s: VM deadline trap was retried (attempts=%d)",
					r.Program, r.Config, r.Attempts)
			}
		}
	}
	if !deadlined {
		t.Fatal("no cell hit the 1ms deadline; guard not reaching the matrix")
	}
}

// TestStepLimitInMatrix: the per-cell step budget surfaces as a failed
// run with trap code "step-limit" in BENCH.json, overheads skip it, and
// the remaining cells complete.
func TestStepLimitInMatrix(t *testing.T) {
	rep, err := Execute(Config{
		Programs:  []string{"treeadd"},
		Modes:     []driver.Mode{driver.ModeFull},
		StepLimit: 500, // far below what any default-scale cell needs
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if r.TrapCode != string(vm.TrapStepLimit) {
			t.Errorf("%s/%s: trap %q, want step-limit", r.Program, r.Config, r.TrapCode)
		}
		if r.Error == "" {
			t.Errorf("%s/%s: step-limited run has no error", r.Program, r.Config)
		}
		if r.OverheadSim != nil {
			t.Errorf("%s/%s: errored run has an overhead figure", r.Program, r.Config)
		}
		if r.Stats.TrapCode != r.TrapCode {
			t.Errorf("%s/%s: stats trap %q != run trap %q",
				r.Program, r.Config, r.Stats.TrapCode, r.TrapCode)
		}
	}
}

// TestFaultPlanInMatrix: a fault plan threads from Config through to each
// cell; checked cells either trap with a classified code or match their
// own fault-free behaviour, and the report carries the trap codes.
func TestFaultPlanInMatrix(t *testing.T) {
	plan := &faults.Plan{Seed: 1, DropEvery: 40}
	rep, err := Execute(Config{
		Programs: []string{"health"},
		Scale:    3,
		Modes:    []driver.Mode{driver.ModeFull},
		Faults:   plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	var instrumented int
	for _, r := range rep.Runs {
		if r.Config == baselineConfig {
			continue
		}
		instrumented++
		if r.Error != "" && r.TrapCode == "" {
			t.Errorf("%s/%s: error %q without a trap code", r.Program, r.Config, r.Error)
		}
	}
	if instrumented == 0 {
		t.Fatal("no instrumented cells ran")
	}
}
