package attacks

import (
	"fmt"
	"testing"

	"softbound/internal/driver"
	"softbound/internal/meta"
	"softbound/internal/vm"
)

// spatialKinds are the schemes that track bounds only; cetsKinds add the
// CETS lock-and-key temporal identity.
var (
	spatialKinds = []meta.Kind{meta.KindShadowSpace, meta.KindHashTable}
	cetsKinds    = []meta.Kind{meta.KindShadowCETS, meta.KindHashTableCETS}
)

func TestDanglingSuiteComplete(t *testing.T) {
	suite := DanglingSuite()
	if len(suite) != 4 {
		t.Fatalf("dangling suite has %d attacks, want 4", len(suite))
	}
	seen := make(map[string]bool)
	for _, a := range suite {
		if a.Name == "" || a.Source == "" || a.Target == "" {
			t.Errorf("incomplete attack entry %+v", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate attack name %s", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestDanglingAttacksSucceedUnprotected verifies each dangling attack
// genuinely corrupts the recycled allocation when checking is off.
func TestDanglingAttacksSucceedUnprotected(t *testing.T) {
	for _, a := range DanglingSuite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res := run(t, a, driver.ModeNone)
			if !succeeded(res) {
				t.Fatalf("attack did not succeed unprotected: exit=%d err=%v output=%q",
					res.ExitCode, res.Err, res.Output)
			}
		})
	}
}

// TestDanglingAttacksEvadeSpatialChecking pins the gap this suite
// exists for: every write is in bounds of its pointer's original
// object, so full spatial checking under both spatial-only schemes
// passes every check and the attack still corrupts the recycled
// memory. This is the use-after-free bug ISSUE 7 fixes — with CETS off,
// the attacks MUST keep succeeding, or the suite no longer demonstrates
// anything.
func TestDanglingAttacksEvadeSpatialChecking(t *testing.T) {
	for _, a := range DanglingSuite() {
		for _, mode := range []driver.Mode{driver.ModeStoreOnly, driver.ModeFull} {
			for _, kind := range spatialKinds {
				a, mode, kind := a, mode, kind
				t.Run(fmt.Sprintf("%s/%v/%v", a.Name, mode, kind), func(t *testing.T) {
					cfg := driver.DefaultConfig(mode)
					cfg.Meta = kind
					res, err := driver.RunSource(a.Source, cfg)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					if res.Violation != nil || res.TemporalHit != nil {
						t.Fatalf("spatial-only scheme flagged the temporal attack: %v", res.Err)
					}
					if !succeeded(res) {
						t.Fatalf("attack no longer corrupts under spatial-only checking: exit=%d err=%v output=%q",
							res.ExitCode, res.Err, res.Output)
					}
				})
			}
		}
	}
}

// TestDanglingAttacksDetectedUnderCETS is the tentpole acceptance: under
// both -cets schemes, every dangling attack is caught as a typed
// temporal violation, in both checking modes, on both engines.
func TestDanglingAttacksDetectedUnderCETS(t *testing.T) {
	for _, a := range DanglingSuite() {
		for _, mode := range []driver.Mode{driver.ModeStoreOnly, driver.ModeFull} {
			for _, kind := range cetsKinds {
				for _, ref := range []bool{false, true} {
					engine := "fast"
					if ref {
						engine = "ref"
					}
					a, mode, kind, ref := a, mode, kind, ref
					t.Run(fmt.Sprintf("%s/%v/%v/%s", a.Name, mode, kind, engine), func(t *testing.T) {
						cfg := driver.DefaultConfig(mode)
						cfg.Meta = kind
						cfg.RefInterp = ref
						res, err := driver.RunSource(a.Source, cfg)
						if err != nil {
							t.Fatalf("compile: %v", err)
						}
						if succeeded(res) {
							t.Fatalf("attack succeeded despite CETS checking: output=%q", res.Output)
						}
						if res.TemporalHit == nil {
							t.Fatalf("attack not detected as a temporal violation: exit=%d err=%v output=%q",
								res.ExitCode, res.Err, res.Output)
						}
						if code := vm.CodeOf(res.Err); code != vm.TrapTemporal {
							t.Fatalf("trap code = %q, want %q", code, vm.TrapTemporal)
						}
					})
				}
			}
		}
	}
}
