// Package attacks reproduces the Wilander & Kamkar testbed of buffer
// overflow attacks the paper uses for Table 3. The suite covers the full
// taxonomy: direct overflows ("all the way to the target") and indirect
// overflows (corrupt a data pointer, then write through it), on the
// stack, heap, and BSS/data segments, targeting the return address, the
// old base (frame) pointer, function pointers (local variable and
// parameter), and longjmp buffers (local variable and parameter).
//
// Every attack is a complete C program. Executed unchecked, the attack
// genuinely succeeds: the payload runs with the simulated machine's
// control flow redirected, printing ATTACK SUCCESSFUL and exiting with
// status 66. Executed under SoftBound (either mode), the out-of-bounds
// write that every one of these attacks requires is detected and the
// program aborts before control is lost — the paper's Table 3 result.
package attacks

// Attack is one testbed entry.
type Attack struct {
	// Name is a short identifier, e.g. "stack-direct-retaddr".
	Name string
	// Technique is "direct" (overflow all the way to the target) or
	// "indirect" (overflow a pointer, then point it at the target).
	Technique string
	// Location of the overflowed buffer: "stack", "heap", "bss".
	Location string
	// Target of the attack, as in Table 3.
	Target string
	// Source is the complete C program.
	Source string
}

// payloadPrelude is shared by all attacks: the payload the attacker wants
// to run, plus an innocuous function for initializing function pointers.
const payloadPrelude = `
int attack_flag;
void attack_payload(void) {
    attack_flag = 1;
    printf("ATTACK SUCCESSFUL\n");
    exit(66);
}
void normal_func(void) {
    printf("normal\n");
}
long target_addr;
`

// Suite returns the 18 attacks of Table 3 in table order.
func Suite() []Attack {
	return []Attack{
		// ------------------------------------------------------------
		// Buffer overflow on stack all the way to the target.
		{
			Name: "stack-direct-retaddr", Technique: "direct",
			Location: "stack", Target: "return address",
			Source: payloadPrelude + `
void vuln(void) {
    long buf[2];
    int i;
    /* Overflow past buf: saved FP at buf[2], return slot at buf[3]. */
    for (i = 0; i < 4; i++)
        buf[i] = (long)attack_payload;
}
int main(void) {
    vuln();
    printf("returned normally\n");
    return 0;
}`,
		},
		{
			Name: "stack-direct-basepointer", Technique: "direct",
			Location: "stack", Target: "old base pointer",
			Source: payloadPrelude + `
void vuln(void) {
    long buf[2];
    /* Build a fake frame inside buf: when the caller's epilogue runs
       with the redirected frame pointer, it reads its return slot from
       buf[1]. Then overwrite only the saved FP (buf[2]), leaving the
       return slot intact. */
    buf[0] = (long)attack_payload;
    buf[1] = (long)attack_payload;
    buf[2] = (long)&buf[0];
}
int main(void) {
    vuln();
    return 0;
}`,
		},
		{
			Name: "stack-direct-funcptr-local", Technique: "direct",
			Location: "stack", Target: "function pointer local variable",
			Source: payloadPrelude + `
typedef void (*fnptr)(void);
void vuln(void) {
    char buf[16];
    fnptr fp;
    fnptr* force = &fp;   /* fp lives in memory, just above buf */
    char* tb;
    int i;
    fp = normal_func;
    target_addr = (long)attack_payload;
    tb = (char*)&target_addr;
    /* Byte-wise overflow (strcpy-style) through buf into fp. */
    for (i = 0; i < 24; i++)
        buf[i] = (i < 16) ? 'A' : tb[i - 16];
    fp();
}
int main(void) {
    vuln();
    return 0;
}`,
		},
		{
			Name: "stack-direct-funcptr-param", Technique: "direct",
			Location: "stack", Target: "function pointer parameter",
			Source: payloadPrelude + `
typedef void (*fnptr)(void);
void vuln(fnptr fp) {
    char buf[16];
    fnptr* force = &fp;   /* spill the parameter above the locals */
    char* tb;
    int i;
    target_addr = (long)attack_payload;
    tb = (char*)&target_addr;
    for (i = 0; i < 24; i++)
        buf[i] = (i < 16) ? 'A' : tb[i - 16];
    fp();
}
int main(void) {
    vuln(normal_func);
    return 0;
}`,
		},
		{
			Name: "stack-direct-longjmpbuf-local", Technique: "direct",
			Location: "stack", Target: "longjmp buffer local variable",
			Source: payloadPrelude + `
void vuln(void) {
    char buf[16];
    long jb[4];           /* directly above buf */
    char* tb;
    int i;
    if (setjmp(jb) == 0) {
        target_addr = (long)attack_payload;
        tb = (char*)&target_addr;
        for (i = 0; i < 24; i++)  /* rewrite jb[0] */
            buf[i] = (i < 16) ? 'A' : tb[i - 16];
        longjmp(jb, 1);
    }
    printf("longjmp returned normally\n");
}
int main(void) {
    vuln();
    return 0;
}`,
		},
		{
			Name: "stack-direct-longjmpbuf-param", Technique: "direct",
			Location: "stack", Target: "longjmp buffer function parameter",
			Source: payloadPrelude + `
void vuln(long* jb) {
    long buf[2];
    /* The caller's jmp_buf sits one frame above: vuln's frame is
       32 bytes (16 locals + FP/ret slots), so jb[0] == buf[4]. */
    buf[4] = (long)attack_payload;
}
int main(void) {
    long jbuf[4];
    if (setjmp(jbuf) == 0) {
        vuln(jbuf);
        longjmp(jbuf, 1);
    }
    return 0;
}`,
		},

		// ------------------------------------------------------------
		// Buffer overflow on heap/BSS/data all the way to the target.
		{
			Name: "heap-direct-funcptr", Technique: "direct",
			Location: "heap", Target: "function pointer",
			Source: payloadPrelude + `
typedef void (*fnptr)(void);
int main(void) {
    long* buf = (long*)malloc(16);
    fnptr* fpp = (fnptr*)malloc(sizeof(fnptr));
    int i;
    *fpp = normal_func;
    /* The two blocks are adjacent: buf[2] lands in *fpp. */
    for (i = 0; i < 3; i++)
        buf[i] = (long)attack_payload;
    (*fpp)();
    return 0;
}`,
		},
		{
			Name: "bss-direct-longjmpbuf", Technique: "direct",
			Location: "bss", Target: "longjmp buffer",
			Source: `
char gbuf[24];
long gjbuf[4];   /* adjacent to gbuf in the data segment */
` + payloadPrelude + `
int main(void) {
    char* tb;
    int i;
    if (setjmp(gjbuf) == 0) {
        target_addr = (long)attack_payload;
        tb = (char*)&target_addr;
        for (i = 0; i < 32; i++)  /* gbuf[24..31] rewrite gjbuf[0] */
            gbuf[i] = (i < 24) ? 'A' : tb[i - 24];
        longjmp(gjbuf, 1);
    }
    return 0;
}`,
		},

		// ------------------------------------------------------------
		// Overflow of a pointer on the stack, then pointing at the target.
		{
			Name: "stack-indirect-retaddr", Technique: "indirect",
			Location: "stack", Target: "return address",
			Source: payloadPrelude + `
void vuln(void) {
    long buf[2];
    long* p;
    long** force = &p;    /* p lives at buf[2]; return slot at buf[5] */
    p = &buf[0];
    buf[2] = (long)&buf[5];      /* overflow corrupts p */
    *p = (long)attack_payload;   /* attacker-controlled write */
}
int main(void) {
    vuln();
    return 0;
}`,
		},
		{
			Name: "stack-indirect-basepointer", Technique: "indirect",
			Location: "stack", Target: "old base pointer",
			Source: payloadPrelude + `
void vuln(void) {
    long buf[2];
    long* p;
    long** force = &p;
    buf[0] = (long)attack_payload;  /* fake frame's return slot at buf[1] */
    buf[1] = (long)attack_payload;
    buf[2] = (long)&buf[4];         /* p := address of saved FP */
    *p = (long)&buf[0];             /* saved FP := fake frame */
}
int main(void) {
    vuln();
    return 0;
}`,
		},
		{
			Name: "stack-indirect-funcptr-local", Technique: "indirect",
			Location: "stack", Target: "function pointer variable",
			Source: payloadPrelude + `
typedef void (*fnptr)(void);
void vuln(void) {
    long buf[2];
    long* p;
    fnptr fp;
    long** forcep = &p;
    fnptr* forcef = &fp;
    fp = normal_func;
    buf[2] = (long)&fp;           /* overflow corrupts p */
    *p = (long)attack_payload;    /* fp := payload */
    fp();
}
int main(void) {
    vuln();
    return 0;
}`,
		},
		{
			Name: "stack-indirect-funcptr-param", Technique: "indirect",
			Location: "stack", Target: "function pointer parameter",
			Source: payloadPrelude + `
typedef void (*fnptr)(void);
void vuln(fnptr fp) {
    long buf[2];
    long* p;
    long** forcep = &p;
    fnptr* forcef = &fp;
    buf[2] = (long)&fp;
    *p = (long)attack_payload;
    fp();
}
int main(void) {
    vuln(normal_func);
    return 0;
}`,
		},
		{
			Name: "stack-indirect-longjmpbuf-local", Technique: "indirect",
			Location: "stack", Target: "longjmp buffer variable",
			Source: payloadPrelude + `
void vuln(void) {
    long buf[2];
    long* p;
    long jb[4];
    long** force = &p;
    if (setjmp(jb) == 0) {
        buf[2] = (long)&jb[0];
        *p = (long)attack_payload;
        longjmp(jb, 1);
    }
}
int main(void) {
    vuln();
    return 0;
}`,
		},
		{
			Name: "stack-indirect-longjmpbuf-param", Technique: "indirect",
			Location: "stack", Target: "longjmp buffer function parameter",
			Source: payloadPrelude + `
void vuln(long* jb) {
    long buf[2];
    long* p;
    long** force = &p;
    buf[2] = (long)jb;           /* p := the caller's jmp_buf */
    *p = (long)attack_payload;
}
int main(void) {
    long jbuf[4];
    if (setjmp(jbuf) == 0) {
        vuln(jbuf);
        longjmp(jbuf, 1);
    }
    return 0;
}`,
		},

		// ------------------------------------------------------------
		// Overflow of a pointer on heap/BSS, then pointing at the target.
		{
			Name: "heap-indirect-retaddr", Technique: "indirect",
			Location: "heap", Target: "return address",
			Source: payloadPrelude + `
void vuln(void) {
    long anchor[2];     /* return slot at anchor[3] */
    long* buf = (long*)malloc(16);
    long** pp = (long**)malloc(sizeof(long*));
    *pp = &anchor[0];
    buf[2] = (long)&anchor[3];    /* heap overflow corrupts *pp */
    **pp = (long)attack_payload;
}
int main(void) {
    vuln();
    return 0;
}`,
		},
		{
			Name: "heap-indirect-basepointer", Technique: "indirect",
			Location: "heap", Target: "old base pointer",
			Source: payloadPrelude + `
void vuln(void) {
    long anchor[2];
    long* buf = (long*)malloc(16);
    long** pp = (long**)malloc(sizeof(long*));
    *pp = &anchor[0];
    anchor[0] = (long)attack_payload;  /* fake frame */
    anchor[1] = (long)attack_payload;
    buf[2] = (long)&anchor[2];         /* *pp := saved FP slot */
    **pp = (long)&anchor[0];
}
int main(void) {
    vuln();
    return 0;
}`,
		},
		{
			Name: "heap-indirect-funcptr", Technique: "indirect",
			Location: "heap", Target: "function pointer",
			Source: `
typedef void (*fnptr)(void);
fnptr gfp;
` + payloadPrelude + `
int main(void) {
    long* buf = (long*)malloc(16);
    long** pp = (long**)malloc(sizeof(long*));
    gfp = normal_func;
    *pp = (long*)&gfp;
    buf[2] = (long)&gfp;          /* heap overflow re-aims *pp */
    **pp = (long)attack_payload;  /* gfp := payload */
    gfp();
    return 0;
}`,
		},
		{
			Name: "bss-indirect-longjmpbuf", Technique: "indirect",
			Location: "bss", Target: "longjmp buffer",
			Source: `
char gbuf[16];
long* gptr;      /* data-segment pointer directly above gbuf */
long gjbuf[4];
` + payloadPrelude + `
int main(void) {
    char* tb;
    long pv;
    int i;
    if (setjmp(gjbuf) == 0) {
        gptr = (long*)&target_addr;
        pv = (long)&gjbuf[0];
        tb = (char*)&pv;
        /* Overflow gbuf into gptr: gbuf[16..23] rewrite the pointer. */
        for (i = 0; i < 24; i++)
            gbuf[i] = (i < 16) ? 'A' : tb[i - 16];
        *gptr = (long)attack_payload;   /* gjbuf[0] := payload */
        longjmp(gjbuf, 1);
    }
    return 0;
}`,
		},
	}
}

// DanglingSuite returns the dangling-pointer attacks behind the CETS
// lock-and-key extension (ISSUE 7). They are deliberately NOT part of
// Suite(): Table 3 is pinned at 18 entries, and none of these is an
// overflow — every write is *in bounds of the pointer's original
// object*, so spatial checking alone passes it. The violation is
// temporal: the object was freed (or its frame popped) and the memory
// recycled, so the stale alias now writes someone else's live data.
// Executed unchecked OR under a spatial-only scheme the attacks
// genuinely corrupt the recycled allocation (ATTACK SUCCESSFUL, exit
// 66); under the -cets schemes the revoked lock is caught at the first
// dangling use and the run aborts with a temporal violation.
func DanglingSuite() []Attack {
	return []Attack{
		{
			Name: "heap-use-after-free", Technique: "temporal",
			Location: "heap", Target: "recycled heap allocation",
			Source: payloadPrelude + `
int main(void) {
    long* stale;
    long* account;
    stale = (long*)malloc(16);
    stale[0] = 41;
    free(stale);
    /* A same-size allocation recycles the freed address. */
    account = (long*)malloc(16);
    account[0] = 0;      /* 0 = unprivileged */
    /* In bounds of stale's original block, so every spatial check
       passes; the write lands in the live account. */
    stale[0] = 1;
    if (account[0]) {
        printf("ATTACK SUCCESSFUL\n");
        exit(66);
    }
    printf("OK\n");
    return 0;
}`,
		},
		{
			Name: "heap-use-after-realloc", Technique: "temporal",
			Location: "heap", Target: "recycled pre-realloc block",
			Source: payloadPrelude + `
int main(void) {
    long* old;
    long* moved;
    long* account;
    old = (long*)malloc(16);
    old[0] = 7;
    moved = (long*)realloc(old, 32);
    moved[0] = 7;
    /* realloc released the 16-byte block; this allocation recycles it. */
    account = (long*)malloc(16);
    account[0] = 0;      /* 0 = unprivileged */
    old[0] = 1;          /* stale pre-realloc alias, spatially in bounds */
    if (account[0]) {
        printf("ATTACK SUCCESSFUL\n");
        exit(66);
    }
    printf("OK\n");
    return 0;
}`,
		},
		{
			Name: "stack-use-after-return", Technique: "temporal",
			Location: "stack", Target: "recycled stack frame",
			Source: payloadPrelude + `
long* leak;
long* grab(void) {
    long slot[2];
    slot[0] = 0;
    return &slot[0];
}
void victim(void) {
    long secret[2];
    secret[0] = 0;       /* 0 = unprivileged */
    /* grab's frame was popped and victim's frame occupies the same
       stack bytes: leak aliases secret. The write is in bounds of
       slot's original extent, so spatial checks pass. */
    leak[0] = 1;
    if (secret[0]) {
        printf("ATTACK SUCCESSFUL\n");
        exit(66);
    }
}
int main(void) {
    leak = grab();
    victim();
    printf("OK\n");
    return 0;
}`,
		},
		{
			Name: "heap-double-free", Technique: "temporal",
			Location: "heap", Target: "live recycled allocation",
			Source: payloadPrelude + `
int main(void) {
    long* p;
    long* account;
    long* attacker;
    p = (long*)malloc(16);
    free(p);
    /* The recycled address now backs a live allocation... */
    account = (long*)malloc(16);
    account[0] = 7;
    /* ...which this double free releases out from under it: the
       allocator sees a live block at p and frees the account. */
    free(p);
    attacker = (long*)malloc(16);
    attacker[0] = 1;     /* aliases the still-in-use account */
    if (account[0] == 1) {
        printf("ATTACK SUCCESSFUL\n");
        exit(66);
    }
    printf("OK\n");
    return 0;
}`,
		},
	}
}

// MetadataLaundering is the function-pointer metadata-laundering scenario
// that motivated the shadow-stack call ABI (ISSUE 6). It is deliberately
// NOT part of Suite(): Table 3 is pinned at 18 entries, and this attack
// is not an overflow — every store it performs would be in bounds under
// the *caller's* view of its arguments. Instead it exploits call-site
// metadata misrouting: a function pointer is laundered through memory
// with a cast, so the static call-site signature (two pointer args)
// disagrees with the dynamic callee's (one scalar, one pointer). Under
// the old inline-metadata ABI the callee popped the first pushed
// (base,bound) pair — the whole-struct bounds — for its pointer
// parameter, so writing 24 bytes through a pointer to an 8-byte field
// passed every check. The positional shadow-stack ABI routes the
// shrunk field bounds to the parameter that actually received the field
// pointer, and the write traps at byte 8.
func MetadataLaundering() Attack {
	return Attack{
		Name: "indirect-call-metadata-laundering", Technique: "indirect",
		Location: "stack", Target: "call-site bounds metadata",
		Source: `
struct record { char name[8]; long privileged; long secret; };
typedef void (*copy_fn)(char *dst, char *src);
typedef void (*init_fn)(long tag, char *p);
init_fn table[1];
void init_rec(long tag, char *p) {
    long i;
    /* "Initialize" a full 24-byte record through p. The dynamic callee
       believes p spans the whole struct; only the shrunk field bounds
       pushed by the caller say otherwise. */
    for (i = 0; i < 24; i = i + 1)
        p[i] = 'A';
}
int main(void) {
    struct record r;
    copy_fn f;
    r.privileged = 0;
    table[0] = init_rec;
    /* Launder the function pointer through memory with a cast: the call
       site below has signature (char*, char*) while the callee popped
       from the table is (long, char*). */
    f = *(copy_fn*)&table[0];
    /* Arg 0: whole-struct pointer [r, r+24). Arg 1: field pointer with
       shrunk bounds [r.name, r.name+8). Same numeric address. A
       metadata ABI that pops pairs in push order hands the callee's
       pointer parameter the WIDE bounds; positional routing hands it
       the narrow ones. */
    f((char*)&r, r.name);
    if (r.privileged) {
        printf("ATTACK SUCCESSFUL\n");
        exit(66);
    }
    printf("OK\n");
    return 0;
}`,
	}
}
