package attacks

import (
	"strings"
	"testing"

	"softbound/internal/driver"
)

// run executes one attack under the given mode.
func run(t *testing.T, a Attack, mode driver.Mode) *driver.Result {
	t.Helper()
	res, err := driver.RunSource(a.Source, driver.DefaultConfig(mode))
	if err != nil {
		t.Fatalf("%s: compile: %v", a.Name, err)
	}
	return res
}

// succeeded reports whether the attack took control in this run.
func succeeded(res *driver.Result) bool {
	return res.ExitCode == 66 || strings.Contains(res.Output, "ATTACK SUCCESSFUL")
}

func TestSuiteHas18Attacks(t *testing.T) {
	suite := Suite()
	if len(suite) != 18 {
		t.Fatalf("suite has %d attacks, want 18 (Table 3)", len(suite))
	}
	seen := make(map[string]bool)
	for _, a := range suite {
		if a.Name == "" || a.Source == "" || a.Target == "" {
			t.Errorf("incomplete attack entry %+v", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate attack name %s", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestAttacksSucceedUnprotected verifies each attack genuinely redirects
// control flow when checking is off — the testbed is real, not a mock.
func TestAttacksSucceedUnprotected(t *testing.T) {
	for _, a := range Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res := run(t, a, driver.ModeNone)
			if !succeeded(res) {
				t.Fatalf("attack did not succeed unprotected: exit=%d err=%v hijacks=%v output=%q",
					res.ExitCode, res.Err, res.Hijacks, res.Output)
			}
		})
	}
}

// TestFullCheckingDetectsAll is Table 3, "Full" column: 18/18 detected.
func TestFullCheckingDetectsAll(t *testing.T) {
	for _, a := range Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res := run(t, a, driver.ModeFull)
			if res.Violation == nil {
				t.Fatalf("full checking missed the attack: exit=%d err=%v output=%q",
					res.ExitCode, res.Err, res.Output)
			}
			if succeeded(res) {
				t.Fatal("attack succeeded despite full checking")
			}
		})
	}
}

// TestStoreOnlyCheckingDetectsAll is Table 3, "Store" column: every
// attack requires an out-of-bounds write, so store-only checking detects
// all of them too (the paper's key observation about store-only mode).
func TestStoreOnlyCheckingDetectsAll(t *testing.T) {
	for _, a := range Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res := run(t, a, driver.ModeStoreOnly)
			if res.Violation == nil {
				t.Fatalf("store-only checking missed the attack: exit=%d err=%v output=%q",
					res.ExitCode, res.Err, res.Output)
			}
			if succeeded(res) {
				t.Fatal("attack succeeded despite store-only checking")
			}
		})
	}
}
