package attacks

import (
	"fmt"
	"strings"
	"testing"

	"softbound/internal/driver"
	"softbound/internal/meta"
	"softbound/internal/vm"
)

// run executes one attack under the given mode.
func run(t *testing.T, a Attack, mode driver.Mode) *driver.Result {
	t.Helper()
	res, err := driver.RunSource(a.Source, driver.DefaultConfig(mode))
	if err != nil {
		t.Fatalf("%s: compile: %v", a.Name, err)
	}
	return res
}

// succeeded reports whether the attack took control in this run.
func succeeded(res *driver.Result) bool {
	return res.ExitCode == 66 || strings.Contains(res.Output, "ATTACK SUCCESSFUL")
}

func TestSuiteHas18Attacks(t *testing.T) {
	suite := Suite()
	if len(suite) != 18 {
		t.Fatalf("suite has %d attacks, want 18 (Table 3)", len(suite))
	}
	seen := make(map[string]bool)
	for _, a := range suite {
		if a.Name == "" || a.Source == "" || a.Target == "" {
			t.Errorf("incomplete attack entry %+v", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate attack name %s", a.Name)
		}
		seen[a.Name] = true
	}
}

// TestAttacksSucceedUnprotected verifies each attack genuinely redirects
// control flow when checking is off — the testbed is real, not a mock.
func TestAttacksSucceedUnprotected(t *testing.T) {
	for _, a := range Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res := run(t, a, driver.ModeNone)
			if !succeeded(res) {
				t.Fatalf("attack did not succeed unprotected: exit=%d err=%v hijacks=%v output=%q",
					res.ExitCode, res.Err, res.Hijacks, res.Output)
			}
		})
	}
}

// TestFullCheckingDetectsAll is Table 3, "Full" column: 18/18 detected.
func TestFullCheckingDetectsAll(t *testing.T) {
	for _, a := range Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res := run(t, a, driver.ModeFull)
			if res.Violation == nil {
				t.Fatalf("full checking missed the attack: exit=%d err=%v output=%q",
					res.ExitCode, res.Err, res.Output)
			}
			if succeeded(res) {
				t.Fatal("attack succeeded despite full checking")
			}
		})
	}
}

// TestStoreOnlyCheckingDetectsAll is Table 3, "Store" column: every
// attack requires an out-of-bounds write, so store-only checking detects
// all of them too (the paper's key observation about store-only mode).
func TestStoreOnlyCheckingDetectsAll(t *testing.T) {
	for _, a := range Suite() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			res := run(t, a, driver.ModeStoreOnly)
			if res.Violation == nil {
				t.Fatalf("store-only checking missed the attack: exit=%d err=%v output=%q",
					res.ExitCode, res.Err, res.Output)
			}
			if succeeded(res) {
				t.Fatal("attack succeeded despite store-only checking")
			}
		})
	}
}

// TestMetadataLaunderingSucceedsUnprotected verifies the laundering
// attack genuinely corrupts the record when checking is off: the
// in-bounds-per-caller writes really do smash the privileged field.
func TestMetadataLaunderingSucceedsUnprotected(t *testing.T) {
	res := run(t, MetadataLaundering(), driver.ModeNone)
	if !succeeded(res) {
		t.Fatalf("attack did not succeed unprotected: exit=%d err=%v output=%q",
			res.ExitCode, res.Err, res.Output)
	}
}

// TestMetadataLaunderingDetected is the ISSUE 6 regression: the
// signature-mismatched indirect call must route the shrunk field bounds
// to the dynamic callee's pointer parameter, so the 24-byte write
// through the 8-byte field traps — under every checking mode, both
// metadata schemes, and both interpreter engines. The old inline
// push-order ABI missed this under ALL of these configurations.
func TestMetadataLaunderingDetected(t *testing.T) {
	a := MetadataLaundering()
	for _, mode := range []driver.Mode{driver.ModeStoreOnly, driver.ModeFull} {
		for _, kind := range []meta.Kind{meta.KindShadowSpace, meta.KindHashTable} {
			for _, ref := range []bool{false, true} {
				engine := "fast"
				if ref {
					engine = "ref"
				}
				name := fmt.Sprintf("%v/%v/%s", mode, kind, engine)
				t.Run(name, func(t *testing.T) {
					cfg := driver.DefaultConfig(mode)
					cfg.Meta = kind
					cfg.RefInterp = ref
					res, err := driver.RunSource(a.Source, cfg)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					if succeeded(res) {
						t.Fatal("attack succeeded despite checking: call-site metadata was misrouted")
					}
					if res.Violation == nil {
						t.Fatalf("attack not detected as a spatial violation: exit=%d err=%v output=%q",
							res.ExitCode, res.Err, res.Output)
					}
					if code := vm.CodeOf(res.Err); code != vm.TrapSpatial {
						t.Fatalf("trap code = %q, want %q", code, vm.TrapSpatial)
					}
				})
			}
		}
	}
}
