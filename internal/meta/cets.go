package meta

import "fmt"

// CETS-style temporal metadata organizations (Nagarakatte et al., ISMM
// 2010, as combined with SoftBound in the softboundcets runtime): each
// pointer's entry carries, besides [base, bound), the allocation's key
// and the index of its lock in the VM's lock table. A dereference check
// first verifies locks[lock] == key — revoking the lock at free /
// frame-pop invalidates every retained alias at once — then performs the
// usual spatial compare.
//
// Both spatial organizations get a temporal twin here. The entries are
// wider (five words hashed, four words shadowed), so the modeled
// per-operation instruction costs grow by ~4: two extra loads on lookup
// and two extra stores on update.

// HashTableCETS is the open-hashing organization with (tag, base, bound,
// key, lock) entries — 40 bytes per entry with 64-bit pointers.
type HashTableCETS struct {
	tags   []uint64 // pointer address +1 (0 = empty)
	bases  []uint64
	bounds []uint64
	keys   []uint64
	locks  []uint64
	mask   uint64
	used   int
	live   int64 // slots with any nonzero metadata word

	// Probes counts total probe steps, exposing collision behaviour to
	// tests and benchmarks.
	Probes uint64
}

// NewHashTableCETS returns a table with the given power-of-two entry
// count; a non-power-of-two size is a constructor error.
func NewHashTableCETS(entries int) (*HashTableCETS, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("meta: hash table size %d is not a positive power of two", entries)
	}
	return &HashTableCETS{
		tags:   make([]uint64, entries),
		bases:  make([]uint64, entries),
		bounds: make([]uint64, entries),
		keys:   make([]uint64, entries),
		locks:  make([]uint64, entries),
		mask:   uint64(entries - 1),
	}, nil
}

// MustHashTableCETS is NewHashTableCETS for compile-time-constant sizes.
func MustHashTableCETS(entries int) *HashTableCETS {
	h, err := NewHashTableCETS(entries)
	if err != nil {
		panic(err)
	}
	return h
}

func (h *HashTableCETS) hash(addr uint64) uint64 { return (addr >> 3) & h.mask }

// Lookup finds the entry for addr, or the zero entry, keyed like the
// spatial table on the double-word address.
func (h *HashTableCETS) Lookup(addr uint64) Entry {
	addr &^= 7
	key := addr + 1
	i := h.hash(addr)
	for {
		h.Probes++
		tag := h.tags[i]
		if tag == key {
			return Entry{Base: h.bases[i], Bound: h.bounds[i], Key: h.keys[i], Lock: h.locks[i]}
		}
		if tag == 0 {
			return Entry{}
		}
		i = (i + 1) & h.mask
	}
}

// Update inserts or replaces the entry for addr, growing at 70% load.
func (h *HashTableCETS) Update(addr uint64, e Entry) {
	if uint64(h.used)*10 >= uint64(len(h.tags))*7 {
		h.grow()
	}
	addr &^= 7
	key := addr + 1
	i := h.hash(addr)
	for {
		h.Probes++
		tag := h.tags[i]
		if tag == key {
			wasLive := h.bases[i] != 0 || h.bounds[i] != 0 || h.keys[i] != 0 || h.locks[i] != 0
			h.bases[i], h.bounds[i] = e.Base, e.Bound
			h.keys[i], h.locks[i] = e.Key, e.Lock
			h.accountLive(wasLive, e.live())
			return
		}
		if tag == 0 {
			h.tags[i] = key
			h.bases[i], h.bounds[i] = e.Base, e.Bound
			h.keys[i], h.locks[i] = e.Key, e.Lock
			h.used++
			h.accountLive(false, e.live())
			return
		}
		i = (i + 1) & h.mask
	}
}

func (h *HashTableCETS) grow() {
	old := *h
	h.tags = make([]uint64, len(old.tags)*2)
	h.bases = make([]uint64, len(old.bases)*2)
	h.bounds = make([]uint64, len(old.bounds)*2)
	h.keys = make([]uint64, len(old.keys)*2)
	h.locks = make([]uint64, len(old.locks)*2)
	h.mask = uint64(len(h.tags) - 1)
	h.used = 0
	h.live = 0 // Update re-accounts every reinserted entry below
	for i, tag := range old.tags {
		// Rehashing drops cleared tombstones, as in the spatial table;
		// an entry is live if any of its four metadata words is nonzero.
		if tag != 0 && (old.bases[i] != 0 || old.bounds[i] != 0 ||
			old.keys[i] != 0 || old.locks[i] != 0) {
			h.Update(tag-1, Entry{Base: old.bases[i], Bound: old.bounds[i],
				Key: old.keys[i], Lock: old.locks[i]})
		}
	}
}

// Clear zeroes metadata for every double-word slot in [addr, addr+size).
// A zero key fails the temporal check, so clearing stays fail-closed.
func (h *HashTableCETS) Clear(addr, size uint64) {
	if size == 0 {
		return
	}
	start := addr &^ 7
	for a := start; a < addr+size; a += 8 {
		key := a + 1
		i := h.hash(a)
		for {
			tag := h.tags[i]
			if tag == key {
				h.accountLive(h.bases[i] != 0 || h.bounds[i] != 0 ||
					h.keys[i] != 0 || h.locks[i] != 0, false)
				h.bases[i], h.bounds[i] = 0, 0
				h.keys[i], h.locks[i] = 0, 0
				break
			}
			if tag == 0 {
				break
			}
			i = (i + 1) & h.mask
		}
	}
}

// CopyRange copies metadata for each pointer-aligned slot with memmove
// semantics; key and lock travel with the spatial words, so memcpy'd
// pointers keep their allocation identity.
func (h *HashTableCETS) CopyRange(dst, src, size uint64) {
	forEachSlotOffset(dst, src, size, func(off uint64) {
		e := h.Lookup(src + off)
		if e != (Entry{}) {
			h.Update(dst+off, e)
		} else {
			h.Clear(dst+off, 8)
		}
	})
}

// accountLive adjusts the live-entry counter for one slot's liveness
// transition.
func (h *HashTableCETS) accountLive(was, is bool) {
	if is && !was {
		h.live++
	} else if was && !is {
		h.live--
	}
}

// Costs reports the ~13-instruction lookup: the spatial table's 9 plus
// two loads (key, lock) and the lock-table load + compare.
func (h *HashTableCETS) Costs() Costs { return Costs{Lookup: 13, Update: 13} }

// Occupancy reports live (non-tombstone) entries and table bytes.
func (h *HashTableCETS) Occupancy() Occupancy {
	return Occupancy{Live: h.live, Bytes: h.Footprint()}
}

// Footprint reports table bytes (40 per entry).
func (h *HashTableCETS) Footprint() int64 { return int64(len(h.tags)) * 40 }

// Name identifies the scheme.
func (h *HashTableCETS) Name() string { return "hashtable-cets" }

// ShadowCETS is the tag-less direct-map organization with four shadow
// words per pointer slot (base, bound, key, lock).
type ShadowCETS struct {
	pages map[uint64]*shadowCETSPage
	live  int64 // slots with any nonzero metadata word
}

type shadowCETSPage struct {
	base  [shadowPageSlots]uint64
	bound [shadowPageSlots]uint64
	key   [shadowPageSlots]uint64
	lock  [shadowPageSlots]uint64
}

// NewShadowCETS returns an empty temporal shadow space.
func NewShadowCETS() *ShadowCETS {
	return &ShadowCETS{pages: make(map[uint64]*shadowCETSPage)}
}

func (s *ShadowCETS) slot(addr uint64) (uint64, uint64) {
	dw := addr >> 3
	return dw >> shadowPageShift, dw & (shadowPageSlots - 1)
}

// Lookup reads the slot for addr; untouched pages read as zero.
func (s *ShadowCETS) Lookup(addr uint64) Entry {
	pn, idx := s.slot(addr)
	p := s.pages[pn]
	if p == nil {
		return Entry{}
	}
	return Entry{Base: p.base[idx], Bound: p.bound[idx], Key: p.key[idx], Lock: p.lock[idx]}
}

// Update writes the slot for addr, materializing its page on first touch.
func (s *ShadowCETS) Update(addr uint64, e Entry) {
	pn, idx := s.slot(addr)
	p := s.pages[pn]
	if p == nil {
		p = new(shadowCETSPage)
		s.pages[pn] = p
	}
	was := p.base[idx] != 0 || p.bound[idx] != 0 || p.key[idx] != 0 || p.lock[idx] != 0
	if is := e.live(); is && !was {
		s.live++
	} else if was && !is {
		s.live--
	}
	p.base[idx] = e.Base
	p.bound[idx] = e.Bound
	p.key[idx] = e.Key
	p.lock[idx] = e.Lock
}

// Clear zeroes all slots covering [addr, addr+size).
func (s *ShadowCETS) Clear(addr, size uint64) {
	if size == 0 {
		return
	}
	start := addr &^ 7
	for a := start; a < addr+size; a += 8 {
		pn, idx := s.slot(a)
		if p := s.pages[pn]; p != nil {
			if p.base[idx] != 0 || p.bound[idx] != 0 || p.key[idx] != 0 || p.lock[idx] != 0 {
				s.live--
			}
			p.base[idx] = 0
			p.bound[idx] = 0
			p.key[idx] = 0
			p.lock[idx] = 0
		}
	}
}

// CopyRange copies slot metadata from src to dst with memmove semantics.
func (s *ShadowCETS) CopyRange(dst, src, size uint64) {
	forEachSlotOffset(dst, src, size, func(off uint64) {
		e := s.Lookup(src + off)
		if e == (Entry{}) {
			s.Clear(dst+off, 8)
		} else {
			s.Update(dst+off, e)
		}
	})
}

// Costs reports the ~9-instruction lookup: the shadow scheme's 5 plus
// the key/lock loads and the lock-table compare.
func (s *ShadowCETS) Costs() Costs { return Costs{Lookup: 9, Update: 9} }

// Footprint reports bytes of materialized shadow pages (32 per slot).
func (s *ShadowCETS) Footprint() int64 {
	return int64(len(s.pages)) * shadowPageSlots * 32
}

// Occupancy reports live slots and materialized shadow bytes.
func (s *ShadowCETS) Occupancy() Occupancy {
	return Occupancy{Live: s.live, Bytes: s.Footprint()}
}

// Name identifies the scheme.
func (s *ShadowCETS) Name() string { return "shadow-cets" }
