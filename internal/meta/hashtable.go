package meta

import "fmt"

// HashTable is the open-hashing metadata organization (paper §5.1):
// entries of (tag, base, bound), hashed by double-word address with a
// shift-and-mask hash, collisions resolved by open addressing (linear
// probing), and the table sized to keep utilization low. Each entry is 24
// bytes assuming 64-bit pointers.
type HashTable struct {
	tags   []uint64 // pointer address +1 (0 = empty)
	bases  []uint64
	bounds []uint64
	mask   uint64
	used   int
	live   int64 // slots with nonzero base/bound (tombstones excluded)

	// Probes counts total probe steps, exposing collision behaviour to
	// tests and benchmarks.
	Probes uint64
}

// NewHashTable returns a table with the given power-of-two entry count.
// A non-power-of-two size is a constructor error (the shift-and-mask hash
// requires the invariant), propagated so callers can fail closed.
func NewHashTable(entries int) (*HashTable, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("meta: hash table size %d is not a positive power of two", entries)
	}
	return &HashTable{
		tags:   make([]uint64, entries),
		bases:  make([]uint64, entries),
		bounds: make([]uint64, entries),
		mask:   uint64(entries - 1),
	}, nil
}

// MustHashTable is NewHashTable for compile-time-constant sizes, where a
// bad size is a programmer error.
func MustHashTable(entries int) *HashTable {
	h, err := NewHashTable(entries)
	if err != nil {
		panic(err)
	}
	return h
}

// hash implements the paper's simple hash: the double-word address modulo
// the table size (shift and mask).
func (h *HashTable) hash(addr uint64) uint64 { return (addr >> 3) & h.mask }

// Lookup finds the entry for addr, or the zero entry. The key is the
// double-word address (paper §5.1): the low three bits do not participate,
// so all byte addresses within one pointer slot share an entry.
func (h *HashTable) Lookup(addr uint64) Entry {
	addr &^= 7
	key := addr + 1
	i := h.hash(addr)
	for {
		h.Probes++
		tag := h.tags[i]
		if tag == key {
			return Entry{Base: h.bases[i], Bound: h.bounds[i]}
		}
		if tag == 0 {
			return Entry{}
		}
		i = (i + 1) & h.mask
	}
}

// Update inserts or replaces the entry for addr, growing at 70% load.
// Like Lookup, the key is the double-word address, so an update through an
// unaligned byte address lands on the same entry Lookup and Clear use.
func (h *HashTable) Update(addr uint64, e Entry) {
	if uint64(h.used)*10 >= uint64(len(h.tags))*7 {
		h.grow()
	}
	addr &^= 7
	key := addr + 1
	i := h.hash(addr)
	for {
		h.Probes++
		tag := h.tags[i]
		if tag == key {
			wasLive := h.bases[i] != 0 || h.bounds[i] != 0
			h.bases[i], h.bounds[i] = e.Base, e.Bound
			h.accountLive(wasLive, e.Base != 0 || e.Bound != 0)
			return
		}
		if tag == 0 {
			h.tags[i] = key
			h.bases[i], h.bounds[i] = e.Base, e.Bound
			h.used++
			h.accountLive(false, e.Base != 0 || e.Bound != 0)
			return
		}
		i = (i + 1) & h.mask
	}
}

func (h *HashTable) grow() {
	old := *h
	h.tags = make([]uint64, len(old.tags)*2)
	h.bases = make([]uint64, len(old.bases)*2)
	h.bounds = make([]uint64, len(old.bounds)*2)
	h.mask = uint64(len(h.tags) - 1)
	h.used = 0
	h.live = 0 // Update re-accounts every reinserted entry below
	for i, tag := range old.tags {
		// Cleared entries keep their tag (Clear zeroes only base/bound —
		// open addressing cannot break probe chains), but rehashing is
		// the one place dead entries can be dropped: skipping them here
		// lets the load factor recover after update/clear churn.
		if tag != 0 && (old.bases[i] != 0 || old.bounds[i] != 0) {
			h.Update(tag-1, Entry{Base: old.bases[i], Bound: old.bounds[i]})
		}
	}
}

// Clear zeroes metadata for every double-word slot in [addr, addr+size).
// Open addressing cannot delete without tombstones; zeroing base/bound is
// equivalent for safety (NULL bounds fail all checks).
func (h *HashTable) Clear(addr, size uint64) {
	if size == 0 {
		return
	}
	start := addr &^ 7
	for a := start; a < addr+size; a += 8 {
		key := a + 1
		i := h.hash(a)
		for {
			tag := h.tags[i]
			if tag == key {
				h.accountLive(h.bases[i] != 0 || h.bounds[i] != 0, false)
				h.bases[i], h.bounds[i] = 0, 0
				break
			}
			if tag == 0 {
				break
			}
			i = (i + 1) & h.mask
		}
	}
}

// CopyRange copies metadata for each pointer-aligned slot. Overlapping
// ranges follow memmove semantics: when dst overlaps src from above, the
// copy runs backwards so already-copied slots are never read as source.
func (h *HashTable) CopyRange(dst, src, size uint64) {
	forEachSlotOffset(dst, src, size, func(off uint64) {
		e := h.Lookup(src + off)
		if e != (Entry{}) {
			h.Update(dst+off, e)
		} else {
			h.Clear(dst+off, 8)
		}
	})
}

// accountLive adjusts the live-entry counter for one slot's liveness
// transition (shared shape across all four backends).
func (h *HashTable) accountLive(was, is bool) {
	if is && !was {
		h.live++
	} else if was && !is {
		h.live--
	}
}

// Costs reports the paper's ~9-instruction lookup for the hash scheme.
func (h *HashTable) Costs() Costs { return Costs{Lookup: 9, Update: 9} }

// Occupancy reports live (non-tombstone) entries and table bytes.
func (h *HashTable) Occupancy() Occupancy {
	return Occupancy{Live: h.live, Bytes: h.Footprint()}
}

// Footprint reports table bytes (24 per entry).
func (h *HashTable) Footprint() int64 { return int64(len(h.tags)) * 24 }

// Name identifies the scheme.
func (h *HashTable) Name() string { return "hashtable" }
