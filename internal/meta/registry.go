package meta

import (
	"fmt"
	"sort"
	"strings"
)

// Scheme describes one registered metadata organization. The benchmark
// harness enumerates this registry to build its program × scheme × mode
// matrix, so adding a backend here is all it takes to get it measured.
type Scheme struct {
	Kind Kind
	Name string
	// New constructs a fresh facility. Instances share no state, so
	// concurrent runs may each call New and use the result in isolation.
	New func() Facility
}

var registry = map[string]Scheme{}

// RegisterScheme adds a scheme to the registry, rejecting invalid or
// duplicate registrations as errors so backends added at run time can
// propagate the failure instead of panicking the process.
func RegisterScheme(s Scheme) error {
	if s.Name == "" || s.New == nil {
		return fmt.Errorf("meta: scheme needs a name and a constructor")
	}
	if _, dup := registry[s.Name]; dup {
		return fmt.Errorf("meta: duplicate scheme %q", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// MustRegister is RegisterScheme for the init-time registration of
// built-in schemes, where a failure is a programmer error.
func MustRegister(s Scheme) {
	if err := RegisterScheme(s); err != nil {
		panic(err)
	}
}

func init() {
	MustRegister(Scheme{Kind: KindHashTable, Name: "hashtable",
		New: func() Facility { return MustHashTable(1 << 20) }})
	MustRegister(Scheme{Kind: KindShadowSpace, Name: "shadowspace",
		New: func() Facility { return NewShadowSpace() }})
	MustRegister(Scheme{Kind: KindHashTableCETS, Name: "hashtable-cets",
		New: func() Facility { return MustHashTableCETS(1 << 20) }})
	MustRegister(Scheme{Kind: KindShadowCETS, Name: "shadow-cets",
		New: func() Facility { return NewShadowCETS() }})
}

// Schemes returns every registered scheme, sorted by name for stable
// matrix and report ordering.
func Schemes() []Scheme {
	out := make([]Scheme, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SchemeByName resolves a registered scheme.
func SchemeByName(name string) (Scheme, bool) {
	s, ok := registry[name]
	return s, ok
}

// ParseSchemes resolves a comma-separated scheme list ("" = all).
func ParseSchemes(list string) ([]Scheme, error) {
	if strings.TrimSpace(list) == "" {
		return Schemes(), nil
	}
	var out []Scheme
	seen := make(map[string]bool)
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		s, ok := SchemeByName(name)
		if !ok {
			return nil, fmt.Errorf("meta: unknown scheme %q (have %s)",
				name, strings.Join(SchemeNames(), ", "))
		}
		seen[name] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("meta: empty scheme list %q", list)
	}
	return out, nil
}

// SchemeNames returns the sorted names of all registered schemes.
func SchemeNames() []string {
	all := Schemes()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}
