package meta

// ShadowSpace is the tag-less metadata organization (paper §5.1): a
// reserved region of the virtual address space big enough that every
// double-word of program memory has a dedicated metadata slot, so
// collisions cannot occur and no tag is stored or checked.
//
// The paper implements this by mmap-ing a zero-initialized region and
// letting the OS allocate physical pages on demand. We reproduce the same
// demand paging with a two-level page table: pages materialize on first
// touch, so Footprint grows with the program's actually-used pointer
// slots, just like resident set size would.
type ShadowSpace struct {
	pages map[uint64]*shadowPage
	live  int64 // slots with nonzero base/bound
}

const (
	shadowPageShift = 9 // 512 double-word slots per page
	shadowPageSlots = 1 << shadowPageShift
)

type shadowPage struct {
	base  [shadowPageSlots]uint64
	bound [shadowPageSlots]uint64
}

// NewShadowSpace returns an empty shadow space.
func NewShadowSpace() *ShadowSpace {
	return &ShadowSpace{pages: make(map[uint64]*shadowPage)}
}

func (s *ShadowSpace) slot(addr uint64) (uint64, uint64) {
	dw := addr >> 3
	return dw >> shadowPageShift, dw & (shadowPageSlots - 1)
}

// Lookup reads the slot for addr; untouched pages read as zero.
func (s *ShadowSpace) Lookup(addr uint64) Entry {
	pn, idx := s.slot(addr)
	p := s.pages[pn]
	if p == nil {
		return Entry{}
	}
	return Entry{Base: p.base[idx], Bound: p.bound[idx]}
}

// Update writes the slot for addr, materializing its page on first touch.
func (s *ShadowSpace) Update(addr uint64, e Entry) {
	pn, idx := s.slot(addr)
	p := s.pages[pn]
	if p == nil {
		p = new(shadowPage)
		s.pages[pn] = p
	}
	was := p.base[idx] != 0 || p.bound[idx] != 0
	is := e.Base != 0 || e.Bound != 0
	if is && !was {
		s.live++
	} else if was && !is {
		s.live--
	}
	p.base[idx] = e.Base
	p.bound[idx] = e.Bound
}

// Clear zeroes all slots covering [addr, addr+size).
func (s *ShadowSpace) Clear(addr, size uint64) {
	if size == 0 {
		return
	}
	start := addr &^ 7
	for a := start; a < addr+size; a += 8 {
		pn, idx := s.slot(a)
		if p := s.pages[pn]; p != nil {
			if p.base[idx] != 0 || p.bound[idx] != 0 {
				s.live--
			}
			p.base[idx] = 0
			p.bound[idx] = 0
		}
	}
}

// CopyRange copies slot metadata from src to dst for size bytes, with
// memmove semantics for overlapping ranges (instrumented memcpy/memmove
// both funnel through here, paper §5.2).
func (s *ShadowSpace) CopyRange(dst, src, size uint64) {
	forEachSlotOffset(dst, src, size, func(off uint64) {
		e := s.Lookup(src + off)
		if e == (Entry{}) {
			s.Clear(dst+off, 8)
		} else {
			s.Update(dst+off, e)
		}
	})
}

// Costs reports the paper's ~5-instruction lookup for the shadow scheme.
func (s *ShadowSpace) Costs() Costs { return Costs{Lookup: 5, Update: 5} }

// Footprint reports bytes of materialized shadow pages.
func (s *ShadowSpace) Footprint() int64 {
	return int64(len(s.pages)) * shadowPageSlots * 16
}

// Occupancy reports live slots and materialized shadow bytes.
func (s *ShadowSpace) Occupancy() Occupancy {
	return Occupancy{Live: s.live, Bytes: s.Footprint()}
}

// Name identifies the scheme.
func (s *ShadowSpace) Name() string { return "shadowspace" }
