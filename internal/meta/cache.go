package meta

// LookupCache is a small direct-mapped cache in front of a Facility's
// Lookup, modeling the bounds-lookaside structures HardBound proposes for
// hardware metadata schemes: the common case of re-looking-up the same
// pointer slot (loop-carried pointers, repeated traversals) hits a
// fixed-cost probe instead of the facility's full lookup sequence.
//
// Invalidation contract: the cache is write-through and must observe
// every mutation of the underlying facility — all Update, Clear, and
// CopyRange calls have to go through the cache once it is installed.
// The VM guarantees this by replacing its facility reference with the
// cache at construction time; nothing else holds the inner facility.
// Under fault injection the driver disables the cache entirely: the
// injector's Lookup is effectful (it consumes the scheduled drop/corrupt
// events), so serving hits from a cache would change which lookups the
// faults land on.
//
// The cache is an accelerator for the Go interpreter's wall clock, not a
// change to the simulated machine: SimInsts still charges the facility's
// modeled lookup cost for every KMetaLoad, so fast- and reference-engine
// runs stay bit-identical on all modeled stats. The cache's own modeled
// economics are reported separately (Hits/Misses and a derived cost line
// in metrics), priced at CacheHitCost instructions per probe.
type LookupCache struct {
	inner Facility
	// tags[i] holds the double-word key (addr>>3) cached in slot i, or 0
	// for empty; key 0 would be the first 8 bytes of the address space,
	// which is never a mapped pointer slot.
	tags [cacheSlots]uint64
	data [cacheSlots]Entry

	hits, misses uint64
}

const (
	// cacheSlots is the direct-mapped capacity; a power of two so the
	// index is a mask. 256 entries × 24 bytes keeps the whole structure
	// inside a few hardware cache lines per VM.
	cacheSlots = 256

	// CacheHitCost is the modeled x86 instruction footprint of one probe
	// (shift, mask, tag load+compare, two data loads — the same
	// accounting style as the facility costs in this package's doc).
	CacheHitCost = 4
)

// NewLookupCache wraps inner with an empty cache.
func NewLookupCache(inner Facility) *LookupCache {
	return &LookupCache{inner: inner}
}

// Lookup probes the cache and falls back to the inner facility on a
// miss, filling the slot (negative results — zero entries — are cached
// too; invalidation keeps them honest).
func (c *LookupCache) Lookup(addr uint64) Entry {
	k := addr >> 3
	s := k & (cacheSlots - 1)
	if c.tags[s] == k {
		c.hits++
		return c.data[s]
	}
	c.misses++
	e := c.inner.Lookup(addr)
	c.tags[s] = k
	c.data[s] = e
	return e
}

// Update writes through: the inner facility is updated and the slot is
// refreshed so a following Lookup hits.
func (c *LookupCache) Update(addr uint64, e Entry) {
	c.inner.Update(addr, e)
	k := addr >> 3
	s := k & (cacheSlots - 1)
	c.tags[s] = k
	c.data[s] = e
}

// Clear forwards to the inner facility and invalidates every cached slot
// the range could cover.
func (c *LookupCache) Clear(addr, size uint64) {
	c.inner.Clear(addr, size)
	c.invalidate(addr, size)
}

// CopyRange forwards to the inner facility and invalidates the
// destination range (the source is unchanged).
func (c *LookupCache) CopyRange(dst, src, size uint64) {
	c.inner.CopyRange(dst, src, size)
	c.invalidate(dst, size)
}

// invalidate drops cached entries for the double-word slots of
// [addr, addr+size). A range spanning at least cacheSlots keys (or one
// that wraps the address space) aliases every slot, so the whole cache
// is wiped instead of walking it.
func (c *LookupCache) invalidate(addr, size uint64) {
	if size == 0 {
		return
	}
	first := addr >> 3
	last := (addr + size - 1) >> 3
	if addr+size-1 < addr || last-first+1 >= cacheSlots {
		c.tags = [cacheSlots]uint64{}
		return
	}
	for k := first; k <= last; k++ {
		s := k & (cacheSlots - 1)
		if c.tags[s] == k {
			c.tags[s] = 0
		}
	}
}

// Costs, Footprint, and Name delegate to the inner facility: the cache
// does not change the modeled metadata scheme, only the interpreter's
// wall clock (see the type comment).
func (c *LookupCache) Costs() Costs { return c.inner.Costs() }

// Footprint delegates; the lookaside models a hardware structure and
// carries no simulated memory overhead.
func (c *LookupCache) Footprint() int64 { return c.inner.Footprint() }

// Occupancy delegates: the cache holds copies, not additional entries.
func (c *LookupCache) Occupancy() Occupancy { return c.inner.Occupancy() }

// Name delegates so scheme-keyed reporting is unchanged.
func (c *LookupCache) Name() string { return c.inner.Name() }

// Hits returns the number of Lookup calls served from the cache.
func (c *LookupCache) Hits() uint64 { return c.hits }

// Misses returns the number of Lookup calls that fell through.
func (c *LookupCache) Misses() uint64 { return c.misses }
