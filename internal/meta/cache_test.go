package meta

import (
	"math/rand"
	"testing"
)

// The lookup cache must be observationally transparent: any sequence of
// facility operations routed through the cache returns exactly what the
// bare facility would return. A random-operation differential over both
// backends is the main guard; targeted tests pin the invalidation edges.

func TestLookupCacheDifferentialRandomOps(t *testing.T) {
	backends := []struct {
		name string
		mk   func() Facility
	}{
		{"shadowspace", func() Facility { return NewShadowSpace() }},
		{"hashtable", func() Facility {
			h, err := NewHashTable(1 << 12)
			if err != nil {
				t.Fatal(err)
			}
			return h
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			bare := b.mk()
			cached := NewLookupCache(b.mk())
			rng := rand.New(rand.NewSource(42))
			// Addresses cluster in a window small enough to force slot
			// reuse and conflict evictions but larger than the cache.
			addr := func() uint64 { return 0x10000 + uint64(rng.Intn(1<<14))*8 }
			for i := 0; i < 50_000; i++ {
				switch rng.Intn(10) {
				case 0, 1:
					a := addr()
					e := Entry{Base: uint64(rng.Int63()), Bound: uint64(rng.Int63())}
					bare.Update(a, e)
					cached.Update(a, e)
				case 2:
					a, n := addr(), uint64(rng.Intn(256))
					bare.Clear(a, n)
					cached.Clear(a, n)
				case 3:
					d, s, n := addr(), addr(), uint64(rng.Intn(256))
					bare.CopyRange(d, s, n)
					cached.CopyRange(d, s, n)
				default:
					a := addr()
					if got, want := cached.Lookup(a), bare.Lookup(a); got != want {
						t.Fatalf("op %d: Lookup(%#x) = %+v, want %+v", i, a, got, want)
					}
				}
			}
			if cached.Hits() == 0 || cached.Misses() == 0 {
				t.Fatalf("degenerate run: hits=%d misses=%d", cached.Hits(), cached.Misses())
			}
		})
	}
}

func TestLookupCacheHitMissCounters(t *testing.T) {
	c := NewLookupCache(NewShadowSpace())
	c.Update(0x1000, Entry{Base: 1, Bound: 2})
	if e := c.Lookup(0x1000); e.Base != 1 {
		t.Fatalf("lookup after update: %+v", e)
	}
	if c.Hits() != 1 || c.Misses() != 0 {
		t.Fatalf("update must prime the slot: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	c.Lookup(0x2000) // cold
	c.Lookup(0x2000) // now cached (negative entry)
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits(), c.Misses())
	}
}

func TestLookupCacheNegativeCachingStaysHonest(t *testing.T) {
	c := NewLookupCache(NewShadowSpace())
	if e := c.Lookup(0x3000); e != (Entry{}) {
		t.Fatalf("empty facility returned %+v", e)
	}
	// The miss cached the zero entry; an Update must overwrite it.
	c.Update(0x3000, Entry{Base: 7, Bound: 8})
	if e := c.Lookup(0x3000); e.Base != 7 || e.Bound != 8 {
		t.Fatalf("stale negative entry served: %+v", e)
	}
}

func TestLookupCacheClearInvalidates(t *testing.T) {
	c := NewLookupCache(NewShadowSpace())
	c.Update(0x4000, Entry{Base: 1, Bound: 2})
	c.Update(0x4008, Entry{Base: 3, Bound: 4})
	c.Clear(0x4000, 8) // only the first slot
	if e := c.Lookup(0x4000); e != (Entry{}) {
		t.Fatalf("cleared slot served stale entry: %+v", e)
	}
	if e := c.Lookup(0x4008); e.Base != 3 {
		t.Fatalf("neighbour slot lost: %+v", e)
	}
	// Unaligned clear must still cover the slot containing addr.
	c.Update(0x5000, Entry{Base: 5, Bound: 6})
	c.Clear(0x5004, 1)
	if e := c.Lookup(0x5000); e != (Entry{}) {
		t.Fatalf("unaligned clear missed its slot: %+v", e)
	}
}

func TestLookupCacheBigRangeWipes(t *testing.T) {
	c := NewLookupCache(NewShadowSpace())
	// Two entries whose keys are cacheSlots apart share a slot index but
	// not a tag; a huge clear far away must still drop both (full wipe).
	c.Update(0x10000, Entry{Base: 1, Bound: 2})
	c.Update(0x10000+8*cacheSlots, Entry{Base: 3, Bound: 4})
	c.Clear(0x900000, 8*cacheSlots+64) // range aliases every slot
	if e := c.Lookup(0x10000); e.Base != 1 {
		t.Fatalf("inner facility damaged by wipe: %+v", e) // inner keeps it
	}
	// The lookup above was a miss (refilled); verify via counters.
	if c.Misses() == 0 {
		t.Fatal("big-range clear did not wipe the cache")
	}
}

func TestLookupCacheCopyRangeInvalidatesDestination(t *testing.T) {
	c := NewLookupCache(NewShadowSpace())
	c.Update(0x6000, Entry{Base: 11, Bound: 22}) // source
	c.Update(0x7000, Entry{Base: 99, Bound: 99}) // destination, cached
	c.CopyRange(0x7000, 0x6000, 8)
	if e := c.Lookup(0x7000); e.Base != 11 || e.Bound != 22 {
		t.Fatalf("destination served pre-copy entry: %+v", e)
	}
}

func TestLookupCacheDelegates(t *testing.T) {
	inner := NewShadowSpace()
	c := NewLookupCache(inner)
	if c.Name() != inner.Name() || c.Costs() != inner.Costs() {
		t.Fatal("cache must not change the modeled scheme identity")
	}
	c.Update(0x8000, Entry{Base: 1, Bound: 2})
	if c.Footprint() != inner.Footprint() {
		t.Fatal("footprint must delegate (the lookaside is modeled hardware)")
	}
}
