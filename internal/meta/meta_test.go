package meta

import (
	"testing"
	"testing/quick"
)

func facilities() []Facility {
	return []Facility{MustHashTable(1 << 10), NewShadowSpace()}
}

func TestLookupMissingIsZero(t *testing.T) {
	for _, f := range facilities() {
		if e := f.Lookup(0x1234560); e != (Entry{}) {
			t.Errorf("%s: missing lookup = %+v", f.Name(), e)
		}
	}
}

func TestUpdateLookupRoundTrip(t *testing.T) {
	for _, f := range facilities() {
		e := Entry{Base: 0x1000, Bound: 0x1040}
		f.Update(0x2000, e)
		if got := f.Lookup(0x2000); got != e {
			t.Errorf("%s: got %+v", f.Name(), got)
		}
		// Overwrite.
		e2 := Entry{Base: 0x3000, Bound: 0x3008}
		f.Update(0x2000, e2)
		if got := f.Lookup(0x2000); got != e2 {
			t.Errorf("%s: after overwrite got %+v", f.Name(), got)
		}
		// Neighbouring slots unaffected.
		if got := f.Lookup(0x2008); got != (Entry{}) {
			t.Errorf("%s: neighbour affected: %+v", f.Name(), got)
		}
	}
}

func TestClear(t *testing.T) {
	for _, f := range facilities() {
		for i := uint64(0); i < 8; i++ {
			f.Update(0x4000+i*8, Entry{Base: 1, Bound: 2})
		}
		f.Clear(0x4000+8, 24) // clears slots 1,2,3
		for i := uint64(0); i < 8; i++ {
			got := f.Lookup(0x4000 + i*8)
			cleared := i >= 1 && i <= 3
			if cleared && got != (Entry{}) {
				t.Errorf("%s: slot %d not cleared", f.Name(), i)
			}
			if !cleared && got == (Entry{}) {
				t.Errorf("%s: slot %d wrongly cleared", f.Name(), i)
			}
		}
	}
}

func TestCopyRange(t *testing.T) {
	for _, f := range facilities() {
		f.Update(0x5000, Entry{Base: 10, Bound: 20})
		f.Update(0x5008, Entry{Base: 30, Bound: 40})
		f.Update(0x6008, Entry{Base: 99, Bound: 100}) // stale dst metadata
		f.CopyRange(0x6000, 0x5000, 16)
		if got := f.Lookup(0x6000); got != (Entry{Base: 10, Bound: 20}) {
			t.Errorf("%s: copy slot 0: %+v", f.Name(), got)
		}
		if got := f.Lookup(0x6008); got != (Entry{Base: 30, Bound: 40}) {
			t.Errorf("%s: copy slot 1: %+v", f.Name(), got)
		}
		// Copying a region with no metadata clears the destination.
		f.CopyRange(0x6000, 0x7000, 16)
		if got := f.Lookup(0x6000); got != (Entry{}) {
			t.Errorf("%s: stale metadata survived copy: %+v", f.Name(), got)
		}
	}
}

func TestHashTableGrowth(t *testing.T) {
	h := MustHashTable(16)
	// Insert far more than 16 entries: growth must preserve contents.
	for i := uint64(0); i < 1000; i++ {
		h.Update(i*8, Entry{Base: i, Bound: i + 8})
	}
	for i := uint64(0); i < 1000; i++ {
		if got := h.Lookup(i * 8); got != (Entry{Base: i, Bound: i + 8}) {
			t.Fatalf("entry %d lost after growth: %+v", i, got)
		}
	}
}

func TestHashTableCollisions(t *testing.T) {
	h := MustHashTable(16)
	// Addresses that collide under the shift-and-mask hash.
	a1 := uint64(0x100)
	a2 := a1 + 16*8 // same hash bucket
	h.Update(a1, Entry{Base: 1, Bound: 2})
	h.Update(a2, Entry{Base: 3, Bound: 4})
	if got := h.Lookup(a1); got != (Entry{Base: 1, Bound: 2}) {
		t.Errorf("a1: %+v", got)
	}
	if got := h.Lookup(a2); got != (Entry{Base: 3, Bound: 4}) {
		t.Errorf("a2: %+v", got)
	}
	if h.Probes == 0 {
		t.Error("probe counter not counting")
	}
}

func TestCosts(t *testing.T) {
	h := MustHashTable(16)
	s := NewShadowSpace()
	// Paper §5.1: ~9 instructions for the hash table, ~5 for the
	// shadow space.
	if h.Costs().Lookup != 9 || s.Costs().Lookup != 5 {
		t.Fatalf("costs: hash=%d shadow=%d", h.Costs().Lookup, s.Costs().Lookup)
	}
	c := Costed(s, Costs{Lookup: 14, Update: 14})
	if c.Costs().Lookup != 14 {
		t.Fatal("Costed override ignored")
	}
}

func TestFootprintGrows(t *testing.T) {
	s := NewShadowSpace()
	f0 := s.Footprint()
	s.Update(1<<30, Entry{Base: 1, Bound: 2})
	if s.Footprint() <= f0 {
		t.Error("shadow footprint did not grow on first touch")
	}
}

// TestFacilitiesAgree property-checks that both organizations implement
// the same abstract map under arbitrary operation sequences.
func TestFacilitiesAgree(t *testing.T) {
	type op struct {
		Kind byte
		Slot uint16
		B, E uint32
	}
	f := func(ops []op) bool {
		h := MustHashTable(64)
		s := NewShadowSpace()
		for _, o := range ops {
			addr := uint64(o.Slot) * 8
			switch o.Kind % 4 {
			case 0:
				e := Entry{Base: uint64(o.B), Bound: uint64(o.E)}
				h.Update(addr, e)
				s.Update(addr, e)
			case 1:
				if h.Lookup(addr) != s.Lookup(addr) {
					return false
				}
			case 2:
				size := uint64(o.B % 64)
				h.Clear(addr, size)
				s.Clear(addr, size)
			case 3:
				src := uint64(o.E%1024) * 8
				size := uint64(o.B % 64)
				h.CopyRange(addr, src, size)
				s.CopyRange(addr, src, size)
			}
		}
		// Final states agree on every touched slot.
		for slot := uint64(0); slot < 1<<16; slot += 512 {
			if h.Lookup(slot*8) != s.Lookup(slot*8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
