package meta

import (
	"math/rand"
	"testing"
)

// Regression: Update/Lookup used the raw byte address as the key while
// Clear aligned it, so metadata written through an unaligned address
// survived Clear. All three paths must key on the double-word address.
func TestUnalignedUpdateThenClear(t *testing.T) {
	for _, f := range facilities() {
		e := Entry{Base: 0x1000, Bound: 0x1040}
		f.Update(0x2003, e) // unaligned store address
		if got := f.Lookup(0x2000); got != e {
			t.Errorf("%s: aligned lookup after unaligned update = %+v", f.Name(), got)
		}
		if got := f.Lookup(0x2007); got != e {
			t.Errorf("%s: unaligned lookup after unaligned update = %+v", f.Name(), got)
		}
		f.Clear(0x2000, 8)
		if got := f.Lookup(0x2003); got != (Entry{}) {
			t.Errorf("%s: unaligned metadata survived aligned Clear: %+v", f.Name(), got)
		}

		// And the converse: aligned update, clear through an unaligned
		// address covering the same double-word.
		f.Update(0x3000, e)
		f.Clear(0x3005, 3)
		if got := f.Lookup(0x3000); got != (Entry{}) {
			t.Errorf("%s: aligned metadata survived unaligned Clear: %+v", f.Name(), got)
		}
	}
}

// Regression: grow re-inserted cleared (tombstone) entries, so dead slots
// were copied forever and the load factor never recovered.
func TestGrowDropsClearedEntries(t *testing.T) {
	h := MustHashTable(64)
	live := Entry{Base: 0x9000, Bound: 0x9100}
	for i := uint64(0); i < 32; i++ {
		h.Update(i*8, Entry{Base: i + 1, Bound: i + 2})
	}
	for i := uint64(1); i < 32; i++ {
		h.Clear(i*8, 8)
	}
	h.Update(0x9000, live) // 2 live entries, 31 tombstones
	h.grow()
	if h.used != 2 {
		t.Fatalf("grow kept %d entries, want 2 (tombstones re-inserted)", h.used)
	}
	if got := h.Lookup(0); got != (Entry{Base: 1, Bound: 2}) {
		t.Errorf("live entry 0 lost across grow: %+v", got)
	}
	if got := h.Lookup(0x9000); got != live {
		t.Errorf("live entry 0x9000 lost across grow: %+v", got)
	}
	if got := h.Lookup(8); got != (Entry{}) {
		t.Errorf("cleared entry resurrected across grow: %+v", got)
	}
}

// Update/Clear churn over distinct addresses must not retain dead entries
// across growth: after heavy churn the table's live count stays tiny.
func TestChurnLoadFactorRecovers(t *testing.T) {
	h := MustHashTable(16)
	for i := uint64(0); i < 10000; i++ {
		h.Update(i*8, Entry{Base: 1, Bound: 2})
		h.Clear(i*8, 8)
	}
	h.grow()
	if h.used != 0 {
		t.Fatalf("after churn and rehash, %d dead entries retained", h.used)
	}
}

// Regression: Clear and CopyRange of size 0 touched one slot when the
// address was unaligned.
func TestZeroSizeOpsAreNoOps(t *testing.T) {
	for _, f := range facilities() {
		e := Entry{Base: 0x1000, Bound: 0x1040}
		f.Update(0x4000, e)
		f.Clear(0x4001, 0)
		if got := f.Lookup(0x4000); got != e {
			t.Errorf("%s: zero-size Clear removed metadata: %+v", f.Name(), got)
		}
		f.Update(0x5000, Entry{Base: 7, Bound: 8})
		f.CopyRange(0x4001, 0x5000, 0)
		if got := f.Lookup(0x4000); got != e {
			t.Errorf("%s: zero-size CopyRange touched dst: %+v", f.Name(), got)
		}
	}
}

// Regression: CopyRange copied forwards unconditionally, so an overlapping
// dst > src copy propagated already-overwritten slots. Both directions must
// follow memmove semantics in both schemes.
func TestCopyRangeOverlap(t *testing.T) {
	entry := func(i uint64) Entry { return Entry{Base: 0x100 * (i + 1), Bound: 0x100*(i+1) + 8} }
	for _, f := range facilities() {
		// dst > src overlap: shift 3 slots up by one slot.
		for i := uint64(0); i < 3; i++ {
			f.Update(0x1000+i*8, entry(i))
		}
		f.CopyRange(0x1008, 0x1000, 24)
		for i := uint64(0); i < 3; i++ {
			if got := f.Lookup(0x1008 + i*8); got != entry(i) {
				t.Errorf("%s: upward overlap slot %d = %+v, want %+v", f.Name(), i, got, entry(i))
			}
		}

		// dst < src overlap: shift 3 slots down by one slot.
		for i := uint64(0); i < 3; i++ {
			f.Update(0x2008+i*8, entry(i+10))
		}
		f.CopyRange(0x2000, 0x2008, 24)
		for i := uint64(0); i < 3; i++ {
			if got := f.Lookup(0x2000 + i*8); got != entry(i+10) {
				t.Errorf("%s: downward overlap slot %d = %+v, want %+v", f.Name(), i, got, entry(i+10))
			}
		}
	}
}

// TestFacilitiesAgreeUnaligned differentially fuzzes both schemes with
// byte-granularity (unaligned) addresses and overlapping CopyRanges — the
// op mix the fixed bugs were hiding in — and asserts the two organizations
// stay observationally identical.
func TestFacilitiesAgreeUnaligned(t *testing.T) {
	const window = 1 << 12 // byte window the ops land in
	rng := rand.New(rand.NewSource(1))
	h := MustHashTable(64)
	s := NewShadowSpace()
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(window))
		switch rng.Intn(4) {
		case 0:
			e := Entry{Base: uint64(rng.Intn(1 << 16)), Bound: uint64(rng.Intn(1 << 16))}
			h.Update(addr, e)
			s.Update(addr, e)
		case 1:
			if h.Lookup(addr) != s.Lookup(addr) {
				t.Fatalf("op %d: lookup(0x%x) disagrees: hash=%+v shadow=%+v",
					i, addr, h.Lookup(addr), s.Lookup(addr))
			}
		case 2:
			size := uint64(rng.Intn(64))
			h.Clear(addr, size)
			s.Clear(addr, size)
		case 3:
			// Bias src near dst so overlapping ranges are common.
			src := uint64(rng.Intn(window))
			if rng.Intn(2) == 0 {
				delta := uint64(rng.Intn(64))
				if rng.Intn(2) == 0 && addr >= delta {
					src = addr - delta
				} else {
					src = addr + delta
				}
			}
			size := uint64(rng.Intn(64))
			h.CopyRange(addr, src, size)
			s.CopyRange(addr, src, size)
		}
	}
	for a := uint64(0); a < window; a += 8 {
		if h.Lookup(a) != s.Lookup(a) {
			t.Fatalf("final state: lookup(0x%x) disagrees: hash=%+v shadow=%+v",
				a, h.Lookup(a), s.Lookup(a))
		}
	}
}

// TestRegistry covers the scheme registry the benchmark matrix enumerates.
func TestRegistry(t *testing.T) {
	all := Schemes()
	if len(all) < 2 {
		t.Fatalf("registry has %d schemes, want >= 2", len(all))
	}
	for _, sc := range all {
		f := sc.New()
		if f.Name() != sc.Name {
			t.Errorf("scheme %q constructs facility named %q", sc.Name, f.Name())
		}
		if got, ok := SchemeByName(sc.Name); !ok || got.Kind != sc.Kind {
			t.Errorf("SchemeByName(%q) = %+v, %v", sc.Name, got, ok)
		}
	}
	if _, ok := SchemeByName("nope"); ok {
		t.Error("SchemeByName accepted unknown scheme")
	}
	parsed, err := ParseSchemes(" hashtable , shadowspace ")
	if err != nil || len(parsed) != 2 {
		t.Errorf("ParseSchemes = %v, %v", parsed, err)
	}
	if _, err := ParseSchemes("hashtable,bogus"); err == nil {
		t.Error("ParseSchemes accepted unknown scheme")
	}
	if parsed, err = ParseSchemes(""); err != nil || len(parsed) != len(all) {
		t.Errorf("ParseSchemes(\"\") = %v, %v", parsed, err)
	}
}
