// Package meta implements SoftBound's disjoint metadata facility: the map
// from the address of a pointer in memory to that pointer's base and bound
// (paper §3.2, §5.1).
//
// Two implementations are provided, mirroring the paper:
//
//   - HashTable: an open-hashing table of (tag, base, bound) entries keyed
//     by the double-word address. A lookup costs ~9 x86 instructions
//     (shift, mask, multiply, add, three loads, compare, branch).
//   - ShadowSpace: a tag-less direct map over the whole address space; no
//     collisions are possible, so the tag check disappears and a lookup
//     costs ~5 instructions (shift, mask, add, two loads).
//
// The Go implementations are functionally exact; the per-operation
// instruction costs are reported through Costs so the benchmark harness
// can reproduce the paper's overhead accounting on simulated hardware.
package meta

import "fmt"

// Entry is a pointer's metadata: [Base, Bound) bracket the object.
// Under the CETS-style temporal schemes the entry additionally carries
// the allocation's key and its lock index into the VM's lock table; the
// dereference check verifies locks[Lock] == Key before the spatial
// compare. Spatial-only schemes leave Key and Lock zero, which fails the
// temporal check — fail-closed — but temporal checks are only emitted
// when a temporal scheme is selected, so spatial runs never consult them.
type Entry struct {
	Base  uint64
	Bound uint64
	Key   uint64
	Lock  uint64
}

// Costs models the x86 instruction footprint of facility operations,
// following the instruction counts given in paper §5.1.
type Costs struct {
	Lookup int
	Update int
}

// Occupancy is a facility's current population: Live counts pointer
// slots whose entry carries any nonzero metadata word, Bytes is the
// table's memory footprint. Long-running services watch this pair to
// see metadata growth (leaks, churn, shadow-page spread) rather than
// the one-shot Footprint number alone.
type Occupancy struct {
	Live  int64
	Bytes int64
}

// live reports whether an entry holds any metadata at all — the shared
// liveness predicate used by the occupancy accounting in every backend
// (cleared hashtable slots keep their tag but zero all four words, so
// tag presence is not liveness).
func (e Entry) live() bool {
	return e.Base != 0 || e.Bound != 0 || e.Key != 0 || e.Lock != 0
}

// Facility maps addresses of in-memory pointers to metadata.
type Facility interface {
	// Lookup returns the metadata for the pointer stored at addr.
	// Missing entries return the zero Entry (NULL bounds), which fails
	// any dereference check — the safe default.
	Lookup(addr uint64) Entry
	// Update records metadata for the pointer stored at addr.
	Update(addr uint64, e Entry)
	// Clear removes metadata for all pointer slots in [addr, addr+size).
	Clear(addr, size uint64)
	// CopyRange replicates metadata for size bytes from src to dst
	// (memcpy support, paper §5.2).
	CopyRange(dst, src, size uint64)
	// Costs reports the modeled per-operation instruction costs.
	Costs() Costs
	// Footprint returns the facility's current memory overhead in bytes.
	Footprint() int64
	// Occupancy reports live entry count and table bytes in O(1); the
	// backends maintain the live counter by transition accounting in
	// Update/Clear.
	Occupancy() Occupancy
	// Name identifies the scheme ("hashtable" or "shadowspace").
	Name() string
}

// Kind selects a facility implementation.
type Kind int

// Facility kinds. The -cets kinds are the lock-and-key temporal variants:
// same spatial organization, with each entry widened to carry (key, lock).
const (
	KindHashTable Kind = iota
	KindShadowSpace
	KindHashTableCETS
	KindShadowCETS
)

func (k Kind) String() string {
	switch k {
	case KindHashTable:
		return "hashtable"
	case KindHashTableCETS:
		return "hashtable-cets"
	case KindShadowCETS:
		return "shadow-cets"
	}
	return "shadowspace"
}

// Temporal reports whether the kind carries lock-and-key temporal
// metadata. The driver derives all temporal lowering and runtime
// behaviour from this single predicate, so selecting a spatial kind
// yields bit-identical execution to a build without temporal support.
func (k Kind) Temporal() bool {
	return k == KindHashTableCETS || k == KindShadowCETS
}

// New constructs a facility of the given kind via the scheme registry. An
// unregistered kind is a constructor error, propagated rather than
// panicked so a misconfigured run fails closed as a reported failure
// instead of taking down the whole process.
func New(k Kind) (Facility, error) {
	s, ok := SchemeByName(k.String())
	if !ok {
		return nil, fmt.Errorf("meta: no registered scheme for kind %q", k.String())
	}
	return s.New(), nil
}

// forEachSlotOffset visits every double-word offset of a size-byte copy in
// an order that is safe for overlapping ranges (memmove semantics): when
// dst overlaps src from above, iterating forwards would read slots the copy
// already overwrote, so the walk runs backwards instead.
func forEachSlotOffset(dst, src, size uint64, fn func(off uint64)) {
	if size == 0 {
		return
	}
	last := (size - 1) &^ 7 // offset of the final double-word slot
	if dst > src && dst-src < size {
		for off := last; ; off -= 8 {
			fn(off)
			if off == 0 {
				return
			}
		}
	}
	for off := uint64(0); off <= last; off += 8 {
		fn(off)
	}
}

// Costed wraps a facility with overridden per-operation instruction
// costs, used to model related schemes with heavier metadata sequences
// (e.g. MSCC's linked shadow structures, paper §6.5).
func Costed(f Facility, c Costs) Facility { return &costed{Facility: f, costs: c} }

type costed struct {
	Facility
	costs Costs
}

func (c *costed) Costs() Costs { return c.costs }
func (c *costed) Name() string { return c.Facility.Name() + "+costed" }
