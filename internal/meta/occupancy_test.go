package meta

import "testing"

// occupancyScan recomputes Live the slow way, by probing every address a
// test wrote through the public API, so the O(1) transition accounting
// can be checked against ground truth.
func occupancyScan(f Facility, addrs []uint64) int64 {
	var n int64
	seen := map[uint64]bool{}
	for _, a := range addrs {
		slot := a &^ 7
		if seen[slot] {
			continue
		}
		seen[slot] = true
		if f.Lookup(a).live() {
			n++
		}
	}
	return n
}

// TestOccupancyTransitions drives each backend through the liveness
// transitions the accounting must get right: insert, overwrite with live,
// overwrite with zero (tombstone), re-insert, and range clear.
func TestOccupancyTransitions(t *testing.T) {
	for _, s := range Schemes() {
		t.Run(s.Name, func(t *testing.T) {
			f := s.New()
			if got := f.Occupancy().Live; got != 0 {
				t.Fatalf("fresh facility Live = %d, want 0", got)
			}
			e := Entry{Base: 0x1000, Bound: 0x1040}
			var addrs []uint64
			for i := uint64(0); i < 100; i++ {
				a := 0x2000 + 8*i
				f.Update(a, e)
				addrs = append(addrs, a)
			}
			if got := f.Occupancy().Live; got != 100 {
				t.Fatalf("after 100 inserts Live = %d, want 100", got)
			}
			// Overwriting a live slot with live metadata is not a
			// transition.
			f.Update(0x2000, Entry{Base: 0x3000, Bound: 0x3010})
			if got := f.Occupancy().Live; got != 100 {
				t.Fatalf("after overwrite Live = %d, want 100", got)
			}
			// Storing the zero entry (a NULL-pointer store) kills the slot.
			f.Update(0x2008, Entry{})
			if got := f.Occupancy().Live; got != 99 {
				t.Fatalf("after zero store Live = %d, want 99", got)
			}
			// Clearing a range kills only the live slots inside it.
			f.Clear(0x2000, 10*8)
			if got := f.Occupancy().Live; got != 90 {
				t.Fatalf("after range clear Live = %d, want 90", got)
			}
			// Clearing already-dead slots is idempotent.
			f.Clear(0x2000, 10*8)
			if got := f.Occupancy().Live; got != 90 {
				t.Fatalf("after repeated clear Live = %d, want 90", got)
			}
			// Re-inserting over a tombstone counts again.
			f.Update(0x2000, e)
			if got := f.Occupancy().Live; got != 91 {
				t.Fatalf("after re-insert Live = %d, want 91", got)
			}
			if want := occupancyScan(f, addrs); f.Occupancy().Live != want {
				t.Fatalf("Live = %d disagrees with scan %d", f.Occupancy().Live, want)
			}
			if f.Occupancy().Bytes != f.Footprint() {
				t.Fatalf("Bytes = %d, want Footprint %d", f.Occupancy().Bytes, f.Footprint())
			}
		})
	}
}

// TestOccupancySurvivesGrow forces the hash tables through a rehash and
// checks the live counter is rebuilt, with tombstones dropped.
func TestOccupancySurvivesGrow(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    Facility
	}{
		{"hashtable", MustHashTable(16)},
		{"hashtable-cets", MustHashTableCETS(16)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := Entry{Base: 0x1000, Bound: 0x1040, Key: 7, Lock: 3}
			var addrs []uint64
			// Insert enough to grow several times, clearing every third
			// slot along the way so tombstones are present at each rehash.
			for i := uint64(0); i < 200; i++ {
				a := 0x9000 + 8*i
				tc.f.Update(a, e)
				addrs = append(addrs, a)
				if i%3 == 0 {
					tc.f.Clear(a, 8)
				}
			}
			want := occupancyScan(tc.f, addrs)
			if got := tc.f.Occupancy().Live; got != want {
				t.Fatalf("Live = %d after grow churn, scan says %d", got, want)
			}
		})
	}
}

// TestOccupancyThroughWrappers checks the lookaside cache and the costed
// wrapper both surface the inner facility's occupancy unchanged.
func TestOccupancyThroughWrappers(t *testing.T) {
	inner := NewShadowSpace()
	cache := NewLookupCache(inner)
	cache.Update(0x4000, Entry{Base: 1, Bound: 2})
	cache.Update(0x4008, Entry{Base: 1, Bound: 2})
	if got := cache.Occupancy().Live; got != 2 {
		t.Fatalf("cache Occupancy().Live = %d, want 2", got)
	}
	cache.Clear(0x4000, 8)
	if got := cache.Occupancy().Live; got != 1 {
		t.Fatalf("cache Occupancy().Live after clear = %d, want 1", got)
	}
	costed := Costed(inner, Costs{Lookup: 1, Update: 1})
	if got := costed.Occupancy().Live; got != 1 {
		t.Fatalf("costed Occupancy().Live = %d, want 1", got)
	}
}
