// Package opt implements the optimizer passes the pipeline runs before
// and after SoftBound instrumentation, mirroring the paper's use of
// LLVM's optimizer (§6.1): running SoftBound post-optimization keeps the
// instrumentation off register-promoted scalars, and re-running cleanup
// afterwards removes redundant checks and dead metadata manipulation.
//
// Block-local passes:
//   - ConstFold: folds constant arithmetic, comparisons, and branches.
//   - DeadCodeElim: removes pure instructions whose results are unused
//     (this is what deletes unused base/bound constants after
//     instrumentation).
//   - EliminateRedundantChecks: removes a spatial check identical to an
//     earlier check in the same block with no intervening redefinition.
//   - CSEMetaLoads: merges repeated metadata lookups of the same address
//     within a block when no metadata write or call intervenes.
//
// Whole-function (CFG) passes, enabled by Options.Global:
//   - EliminateRedundantChecksGlobal: available-check dataflow over the
//     CFG; removes a check covered by identical checks on every incoming
//     path (in particular, one dominated by an identical check with no
//     redefinition on any path between them).
//   - HoistLoopInvariantMetaLoads: moves loop-invariant metadata lookups
//     into loop preheaders.
//   - Dead metadata-load removal inside DeadCodeElim: a KMetaLoad whose
//     result registers are never read is deleted.
//
// The soundness contract every pass obeys (what may be assumed about
// register definitions, metadata effects, and checks) is documented in
// DESIGN.md; the differential fuzz tests in this package and in
// internal/driver hold the passes to it.
package opt

import (
	"softbound/internal/ir"
)

// Result reports what the passes changed (benchmarks surface this).
type Result struct {
	FoldedConsts int
	RemovedInsts int
	// RemovedChecks counts checks removed by the block-local pass;
	// RemovedChecksGlobal counts the additional cross-block removals by
	// the CFG availability pass (it runs after the local pass, so the
	// two never count the same check).
	RemovedChecks       int
	RemovedChecksGlobal int
	MergedMetaLoads     int
	HoistedMetaLoads    int
	DeadMetaLoads       int
	SimplifiedBlocks    int
}

func (r *Result) add(o Result) {
	r.FoldedConsts += o.FoldedConsts
	r.RemovedInsts += o.RemovedInsts
	r.RemovedChecks += o.RemovedChecks
	r.RemovedChecksGlobal += o.RemovedChecksGlobal
	r.MergedMetaLoads += o.MergedMetaLoads
	r.HoistedMetaLoads += o.HoistedMetaLoads
	r.DeadMetaLoads += o.DeadMetaLoads
	r.SimplifiedBlocks += o.SimplifiedBlocks
}

// Options selects which passes OptimizeWith runs.
type Options struct {
	// Global enables the whole-function CFG passes: cross-block
	// redundant-check elimination, loop-invariant metadata-load
	// hoisting, and dead metadata-load removal.
	Global bool
}

// Optimize runs the block-local pass pipeline over the module until
// fixpoint (bounded), returning aggregate results.
func Optimize(m *ir.Module) Result {
	return OptimizeWith(m, Options{})
}

// OptimizeWith runs the pass pipeline selected by o over the module
// until fixpoint (bounded), returning aggregate results.
func OptimizeWith(m *ir.Module, o Options) Result {
	var total Result
	for _, f := range m.Funcs {
		for iter := 0; iter < 8; iter++ {
			r := Result{}
			r.FoldedConsts = ConstFold(f)
			r.RemovedChecks = EliminateRedundantChecks(f)
			if o.Global {
				r.RemovedChecksGlobal = EliminateRedundantChecksGlobal(f)
			}
			r.MergedMetaLoads = CSEMetaLoads(f)
			if o.Global {
				r.HoistedMetaLoads = HoistLoopInvariantMetaLoads(f)
			}
			r.RemovedInsts, r.DeadMetaLoads = deadCodeElim(f, o.Global)
			total.add(r)
			if r == (Result{}) {
				break
			}
		}
	}
	return total
}

// ConstFold folds KBin/KUn/KCmp over constant operands and KCondBr over a
// constant condition.
func ConstFold(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			switch in.Kind {
			case ir.KBin:
				if in.A.Kind == ir.VConstInt && in.B.Kind == ir.VConstInt {
					if v, ok := foldBin(in); ok {
						*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst, A: ir.CI(v)}
						n++
					}
				}
			case ir.KUn:
				if in.A.Kind == ir.VConstInt {
					switch in.Op {
					case ir.OpNeg:
						*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst,
							A: ir.CI(truncS(-in.A.Int, in.IntWidth))}
						n++
					case ir.OpNot:
						*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst,
							A: ir.CI(truncS(^in.A.Int, in.IntWidth))}
						n++
					}
				}
			case ir.KCmp:
				if in.A.Kind == ir.VConstInt && in.B.Kind == ir.VConstInt {
					if v, ok := foldCmp(in); ok {
						*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst, A: ir.CI(v)}
						n++
					}
				}
			case ir.KCondBr:
				if in.A.Kind == ir.VConstInt {
					t := in.Target
					if in.A.Int == 0 {
						t = in.Else
					}
					*in = ir.Inst{Kind: ir.KBr, Target: t}
					n++
				}
			case ir.KGEP:
				// A bounds-shrinking GEP must survive to instrumentation:
				// the Shrink marker is what tells the SoftBound pass to
				// narrow the result's metadata to the sub-object (§3.1),
				// and a bare KConst would silently lose it.
				if in.Shrink {
					break
				}
				// gep c1 + c2*s + c3 with constant base folds to const.
				if in.A.Kind == ir.VConstInt && in.B.Kind == ir.VConstInt {
					v := in.A.Int + in.B.Int*in.Size + in.C.Int
					*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst, A: ir.CI(v)}
					n++
				}
			}
		}
	}
	return n
}

func truncS(v int64, width int) int64 {
	if width == 0 || width >= 64 {
		return v
	}
	mask := (uint64(1) << uint(width)) - 1
	u := uint64(v) & mask
	if u&(1<<uint(width-1)) != 0 {
		u |= ^mask
	}
	return int64(u)
}

func foldBin(in *ir.Inst) (int64, bool) {
	a, b := in.A.Int, in.B.Int
	var r int64
	switch in.Op {
	case ir.OpAdd:
		r = a + b
	case ir.OpSub:
		r = a - b
	case ir.OpMul:
		r = a * b
	case ir.OpDiv:
		if b == 0 {
			return 0, false // preserve the runtime fault
		}
		r = a / b
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		r = a % b
	case ir.OpAnd:
		r = a & b
	case ir.OpOr:
		r = a | b
	case ir.OpXor:
		r = a ^ b
	case ir.OpShl:
		r = a << (uint64(b) & 63)
	case ir.OpShr:
		if in.Signed {
			r = a >> (uint64(b) & 63)
		} else {
			r = int64(uint64(a) >> (uint64(b) & 63))
		}
	default:
		return 0, false
	}
	return truncS(r, in.IntWidth), true
}

func foldCmp(in *ir.Inst) (int64, bool) {
	a, b := in.A.Int, in.B.Int
	var res bool
	switch in.Pred {
	case ir.PredEQ:
		res = a == b
	case ir.PredNE:
		res = a != b
	case ir.PredLT:
		if in.Signed {
			res = a < b
		} else {
			res = uint64(a) < uint64(b)
		}
	case ir.PredLE:
		if in.Signed {
			res = a <= b
		} else {
			res = uint64(a) <= uint64(b)
		}
	case ir.PredGT:
		if in.Signed {
			res = a > b
		} else {
			res = uint64(a) > uint64(b)
		}
	case ir.PredGE:
		if in.Signed {
			res = a >= b
		} else {
			res = uint64(a) >= uint64(b)
		}
	default:
		return 0, false
	}
	if res {
		return 1, true
	}
	return 0, true
}

// DeadCodeElim removes side-effect-free instructions whose destination is
// never read. Because registers are mutable (non-SSA), an instruction is
// removable only if no instruction anywhere reads its destination
// register at all; this is conservative but removes exactly the unused
// metadata constants instrumentation introduces.
func DeadCodeElim(f *ir.Func) int {
	n, _ := deadCodeElim(f, false)
	return n
}

// deadCodeElim is DeadCodeElim plus, when removeMetaLoads is set, removal
// of KMetaLoads whose result registers are both unread (a table lookup
// has no effect other than writing them). The two counts are disjoint.
func deadCodeElim(f *ir.Func, removeMetaLoads bool) (removed, removedMetaLoads int) {
	used := make([]bool, f.NumRegs)
	markVal := func(v ir.Value) {
		if v.Kind == ir.VReg && int(v.Reg) < len(used) {
			used[v.Reg] = true
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			markVal(in.A)
			markVal(in.B)
			markVal(in.C)
			markVal(in.Base)
			markVal(in.Bound)
			markVal(in.Callee)
			markVal(in.SrcBase)
			markVal(in.SrcBound)
			markVal(in.RetBase)
			markVal(in.RetBound)
			markVal(in.MemcpyLen)
			markVal(in.MemSize)
			// Temporal operands are live only under the TMeta/Temporal
			// flags: ungated, the zero ir.Value would mark register 0 as
			// used in every spatial-only module.
			if in.TMeta {
				markVal(in.Key)
				markVal(in.Lock)
				markVal(in.SrcKey)
				markVal(in.SrcLock)
				markVal(in.RetKey)
				markVal(in.RetLock)
			}
			for _, a := range in.Args {
				markVal(a)
			}
			for _, s := range in.Shadow {
				markVal(s.Base)
				markVal(s.Bound)
				if s.Temporal {
					markVal(s.Key)
					markVal(s.Lock)
				}
			}
		}
	}
	regUsed := func(r ir.Reg) bool { return r >= 0 && int(r) < len(used) && used[r] }
	// Parameter registers (including appended metadata parameters) are
	// written by the calling convention and must survive.
	keepDst := func(in *ir.Inst) bool {
		switch in.Kind {
		case ir.KConst, ir.KMov, ir.KBin, ir.KUn, ir.KCmp, ir.KConv, ir.KGEP:
			return in.Dst != ir.NoReg && regUsed(in.Dst)
		case ir.KMetaLoad:
			if removeMetaLoads {
				if in.TMeta && (regUsed(in.DstKeyR) || regUsed(in.DstLockR)) {
					return true
				}
				return regUsed(in.DstBaseR) || regUsed(in.DstBndR)
			}
		}
		return true
	}
	for _, b := range f.Blocks {
		out := b.Insts[:0]
		for i := range b.Insts {
			in := b.Insts[i]
			if keepDst(&in) {
				out = append(out, in)
			} else if in.Kind == ir.KMetaLoad {
				removedMetaLoads++
			} else {
				removed++
			}
		}
		b.Insts = out
	}
	return removed, removedMetaLoads
}

// checkKey identifies a spatial check up to register/operand identity:
// two checks with equal keys over unchanged registers verify the same
// predicate.
type checkKey struct {
	a, b, c ir.Value
	size    int64
	kind    ir.CheckKind
	// Temporal checks additionally key on their (key, lock) operands;
	// tmeta keeps the zero ir.Value of spatial checks from aliasing
	// register 0.
	tmeta     bool
	key, lock ir.Value
}

func keyOf(in *ir.Inst) checkKey {
	k := checkKey{a: in.A, b: in.Base, c: in.Bound, size: in.AccessSize, kind: in.CheckK}
	if in.TMeta {
		k.tmeta, k.key, k.lock = true, in.Key, in.Lock
	}
	return k
}

func (k checkKey) mentions(r ir.Reg) bool {
	if mentionsReg(k.a, r) || mentionsReg(k.b, r) || mentionsReg(k.c, r) {
		return true
	}
	return k.tmeta && (mentionsReg(k.key, r) || mentionsReg(k.lock, r))
}

// EliminateRedundantChecks removes a KCheck identical to an earlier check
// in the same block when none of its operand registers were redefined in
// between. Checks have no side effect other than aborting, so the second
// of two identical checks can never fire first.
func EliminateRedundantChecks(f *ir.Func) int {
	removed := 0
	for _, blk := range f.Blocks {
		seen := make(map[checkKey]bool)
		out := blk.Insts[:0]
		for i := range blk.Insts {
			in := blk.Insts[i]
			if in.Kind == ir.KCheck {
				k := keyOf(&in)
				if seen[k] {
					removed++
					continue
				}
				seen[k] = true
				out = append(out, in)
				continue
			}
			// longjmp resumes after the setjmp call with whatever
			// register state the longjmp-ing callee left behind, so
			// nothing can be assumed available past it.
			if isSetjmpCall(&in) {
				seen = make(map[checkKey]bool)
				out = append(out, in)
				continue
			}
			// A temporal check's outcome depends on the lock table, which
			// any call can change (a callee may free or realloc the
			// allocation): calls kill temporal keys. Spatial keys are
			// pure functions of their registers and survive.
			if in.Kind == ir.KCall {
				for k := range seen {
					if k.tmeta {
						delete(seen, k)
					}
				}
			}
			// Any write to a register invalidates keys mentioning it.
			writtenRegs(&in, func(dst ir.Reg) {
				for k := range seen {
					if k.mentions(dst) {
						delete(seen, k)
					}
				}
			})
			out = append(out, in)
		}
		blk.Insts = out
	}
	return removed
}

// writtenRegs calls fn for every register the instruction defines. This
// is the kill set every caching pass must respect: it includes the
// metadata destinations of KMetaLoad (DstBaseR/DstBndR) and of
// pointer-returning KCall (DstBase/DstBound), not just Dst.
func writtenRegs(in *ir.Inst, fn func(ir.Reg)) {
	switch in.Kind {
	case ir.KConst, ir.KMov, ir.KBin, ir.KUn, ir.KCmp, ir.KConv,
		ir.KGEP, ir.KAlloca, ir.KLoad:
		if in.Dst != ir.NoReg {
			fn(in.Dst)
		}
	case ir.KCall:
		if in.Dst != ir.NoReg {
			fn(in.Dst)
		}
		if in.DstBase != ir.NoReg {
			fn(in.DstBase)
		}
		if in.DstBound != ir.NoReg {
			fn(in.DstBound)
		}
		if in.TMeta && in.DstBase != ir.NoReg {
			fn(in.DstKey)
			fn(in.DstLock)
		}
	case ir.KMetaLoad:
		fn(in.DstBaseR)
		fn(in.DstBndR)
		if in.TMeta {
			fn(in.DstKeyR)
			fn(in.DstLockR)
		}
	}
}

// isSetjmpCall reports whether in is a direct call to setjmp: the one
// instruction where control can re-enter mid-block (via longjmp) with
// register state from an arbitrary later program point.
func isSetjmpCall(in *ir.Inst) bool {
	return in.Kind == ir.KCall && in.Callee.Kind == ir.VFunc &&
		(in.Callee.Sym == "setjmp" || in.Callee.Sym == "_setjmp")
}

func mentionsReg(v ir.Value, r ir.Reg) bool {
	return v.Kind == ir.VReg && v.Reg == r
}

// CSEMetaLoads merges repeated KMetaLoad of the same address register in
// a block into register moves, invalidating on metadata writes, clears,
// calls (callees may update the table), redefinition of the address, and
// redefinition of the registers holding the cached metadata — including
// by another KMetaLoad, whose DstBaseR/DstBndR are definitions like any
// other.
func CSEMetaLoads(f *ir.Func) int {
	merged := 0
	for _, blk := range f.Blocks {
		type cached struct{ base, bound ir.Reg }
		avail := make(map[ir.Value]cached)
		evict := func(dst ir.Reg) {
			for k, c := range avail {
				if mentionsReg(k, dst) || c.base == dst || c.bound == dst {
					delete(avail, k)
				}
			}
		}
		// A merged metaload expands to two moves, so the output can be
		// longer than the input: build into a fresh slice.
		out := make([]ir.Inst, 0, len(blk.Insts))
		for i := range blk.Insts {
			in := blk.Insts[i]
			switch in.Kind {
			case ir.KMetaLoad:
				if in.TMeta {
					// A temporal metaload defines four registers; merging
					// it would need four ordered moves and the cache knows
					// nothing of its key/lock destinations. Keep the load
					// and evict everything it redefines.
					evict(in.DstBaseR)
					evict(in.DstBndR)
					evict(in.DstKeyR)
					evict(in.DstLockR)
					out = append(out, in)
					continue
				}
				c, hit := avail[in.A]
				replaced := false
				if hit {
					// Order the two moves so neither reads a register
					// the other just clobbered; when the destinations
					// swap the cached pair exactly, merging would need
					// a scratch register — keep the load instead.
					switch {
					case in.DstBaseR == c.bound && in.DstBndR == c.base && c.base != c.bound:
						// unmergeable swap
					case in.DstBaseR == c.bound:
						out = append(out,
							ir.Inst{Kind: ir.KMov, Dst: in.DstBndR, A: ir.R(c.bound)},
							ir.Inst{Kind: ir.KMov, Dst: in.DstBaseR, A: ir.R(c.base)})
						replaced = true
					default:
						out = append(out,
							ir.Inst{Kind: ir.KMov, Dst: in.DstBaseR, A: ir.R(c.base)},
							ir.Inst{Kind: ir.KMov, Dst: in.DstBndR, A: ir.R(c.bound)})
						replaced = true
					}
				}
				// Whether merged or not, DstBaseR/DstBndR were just
				// (re)defined: evict any entry reading them, then cache
				// the freshest copy of this address's metadata — unless
				// the load clobbered its own address register.
				evict(in.DstBaseR)
				evict(in.DstBndR)
				if !mentionsReg(in.A, in.DstBaseR) && !mentionsReg(in.A, in.DstBndR) {
					avail[in.A] = cached{in.DstBaseR, in.DstBndR}
				}
				if replaced {
					merged++
					continue
				}
			case ir.KMetaStore, ir.KMetaClear, ir.KCall:
				avail = make(map[ir.Value]cached)
			default:
				writtenRegs(&in, evict)
			}
			out = append(out, in)
		}
		blk.Insts = out
	}
	return merged
}
