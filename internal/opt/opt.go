// Package opt implements the optimizer passes the pipeline runs before
// and after SoftBound instrumentation, mirroring the paper's use of
// LLVM's optimizer (§6.1): running SoftBound post-optimization keeps the
// instrumentation off register-promoted scalars, and re-running cleanup
// afterwards removes redundant checks and dead metadata manipulation.
//
// Passes:
//   - ConstFold: folds constant arithmetic, comparisons, and branches.
//   - DeadCodeElim: removes pure instructions whose results are unused
//     (this is what deletes unused base/bound constants after
//     instrumentation).
//   - EliminateRedundantChecks: removes a spatial check dominated by an
//     identical check in the same block with no intervening redefinition
//     — the CSE effect the paper gets from re-running LLVM passes.
//   - CSEMetaLoads: merges repeated metadata lookups of the same address
//     within a block when no metadata write or call intervenes.
package opt

import (
	"softbound/internal/ir"
)

// Result reports what the passes changed (benchmarks surface this).
type Result struct {
	FoldedConsts     int
	RemovedInsts     int
	RemovedChecks    int
	MergedMetaLoads  int
	SimplifiedBlocks int
}

// Optimize runs the full pass pipeline over the module until fixpoint
// (bounded), returning aggregate results.
func Optimize(m *ir.Module) Result {
	var total Result
	for _, f := range m.Funcs {
		for iter := 0; iter < 8; iter++ {
			r := Result{}
			r.FoldedConsts += ConstFold(f)
			r.RemovedChecks += EliminateRedundantChecks(f)
			r.MergedMetaLoads += CSEMetaLoads(f)
			r.RemovedInsts += DeadCodeElim(f)
			total.FoldedConsts += r.FoldedConsts
			total.RemovedChecks += r.RemovedChecks
			total.MergedMetaLoads += r.MergedMetaLoads
			total.RemovedInsts += r.RemovedInsts
			if r == (Result{}) {
				break
			}
		}
	}
	return total
}

// ConstFold folds KBin/KUn/KCmp over constant operands and KCondBr over a
// constant condition.
func ConstFold(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			switch in.Kind {
			case ir.KBin:
				if in.A.Kind == ir.VConstInt && in.B.Kind == ir.VConstInt {
					if v, ok := foldBin(in); ok {
						*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst, A: ir.CI(v)}
						n++
					}
				}
			case ir.KUn:
				if in.A.Kind == ir.VConstInt {
					switch in.Op {
					case ir.OpNeg:
						*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst,
							A: ir.CI(truncS(-in.A.Int, in.IntWidth))}
						n++
					case ir.OpNot:
						*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst,
							A: ir.CI(truncS(^in.A.Int, in.IntWidth))}
						n++
					}
				}
			case ir.KCmp:
				if in.A.Kind == ir.VConstInt && in.B.Kind == ir.VConstInt {
					if v, ok := foldCmp(in); ok {
						*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst, A: ir.CI(v)}
						n++
					}
				}
			case ir.KCondBr:
				if in.A.Kind == ir.VConstInt {
					t := in.Target
					if in.A.Int == 0 {
						t = in.Else
					}
					*in = ir.Inst{Kind: ir.KBr, Target: t}
					n++
				}
			case ir.KGEP:
				// gep c1 + c2*s + c3 with constant base folds to const.
				if in.A.Kind == ir.VConstInt && in.B.Kind == ir.VConstInt {
					v := in.A.Int + in.B.Int*in.Size + in.C.Int
					*in = ir.Inst{Kind: ir.KConst, Dst: in.Dst, A: ir.CI(v)}
					n++
				}
			}
		}
	}
	return n
}

func truncS(v int64, width int) int64 {
	if width == 0 || width >= 64 {
		return v
	}
	mask := (uint64(1) << uint(width)) - 1
	u := uint64(v) & mask
	if u&(1<<uint(width-1)) != 0 {
		u |= ^mask
	}
	return int64(u)
}

func foldBin(in *ir.Inst) (int64, bool) {
	a, b := in.A.Int, in.B.Int
	var r int64
	switch in.Op {
	case ir.OpAdd:
		r = a + b
	case ir.OpSub:
		r = a - b
	case ir.OpMul:
		r = a * b
	case ir.OpDiv:
		if b == 0 {
			return 0, false // preserve the runtime fault
		}
		r = a / b
	case ir.OpRem:
		if b == 0 {
			return 0, false
		}
		r = a % b
	case ir.OpAnd:
		r = a & b
	case ir.OpOr:
		r = a | b
	case ir.OpXor:
		r = a ^ b
	case ir.OpShl:
		r = a << (uint64(b) & 63)
	case ir.OpShr:
		if in.Signed {
			r = a >> (uint64(b) & 63)
		} else {
			r = int64(uint64(a) >> (uint64(b) & 63))
		}
	default:
		return 0, false
	}
	return truncS(r, in.IntWidth), true
}

func foldCmp(in *ir.Inst) (int64, bool) {
	a, b := in.A.Int, in.B.Int
	var res bool
	switch in.Pred {
	case ir.PredEQ:
		res = a == b
	case ir.PredNE:
		res = a != b
	case ir.PredLT:
		if in.Signed {
			res = a < b
		} else {
			res = uint64(a) < uint64(b)
		}
	case ir.PredLE:
		if in.Signed {
			res = a <= b
		} else {
			res = uint64(a) <= uint64(b)
		}
	case ir.PredGT:
		if in.Signed {
			res = a > b
		} else {
			res = uint64(a) > uint64(b)
		}
	case ir.PredGE:
		if in.Signed {
			res = a >= b
		} else {
			res = uint64(a) >= uint64(b)
		}
	default:
		return 0, false
	}
	if res {
		return 1, true
	}
	return 0, true
}

// DeadCodeElim removes side-effect-free instructions whose destination is
// never read. Because registers are mutable (non-SSA), an instruction is
// removable only if no instruction anywhere reads its destination
// register at all; this is conservative but removes exactly the unused
// metadata constants instrumentation introduces.
func DeadCodeElim(f *ir.Func) int {
	used := make([]bool, f.NumRegs)
	markVal := func(v ir.Value) {
		if v.Kind == ir.VReg && int(v.Reg) < len(used) {
			used[v.Reg] = true
		}
	}
	for _, b := range f.Blocks {
		for i := range b.Insts {
			in := &b.Insts[i]
			markVal(in.A)
			markVal(in.B)
			markVal(in.C)
			markVal(in.Base)
			markVal(in.Bound)
			markVal(in.Callee)
			markVal(in.SrcBase)
			markVal(in.SrcBound)
			markVal(in.RetBase)
			markVal(in.RetBound)
			markVal(in.MemSize)
			for _, a := range in.Args {
				markVal(a)
			}
			for _, ma := range in.MetaArgs {
				if ma.Valid {
					markVal(ma.Base)
					markVal(ma.Bound)
				}
			}
		}
	}
	// Parameter registers (including appended metadata parameters) are
	// written by the calling convention and must survive.
	keepDst := func(in *ir.Inst) bool {
		switch in.Kind {
		case ir.KConst, ir.KMov, ir.KBin, ir.KUn, ir.KCmp, ir.KConv, ir.KGEP:
			return in.Dst != ir.NoReg && used[in.Dst]
		}
		return true
	}
	removed := 0
	for _, b := range f.Blocks {
		out := b.Insts[:0]
		for i := range b.Insts {
			in := b.Insts[i]
			if keepDst(&in) {
				out = append(out, in)
			} else {
				removed++
			}
		}
		b.Insts = out
	}
	return removed
}

// EliminateRedundantChecks removes a KCheck identical to an earlier check
// in the same block when none of its operand registers were redefined in
// between. Checks have no side effect other than aborting, so the second
// of two identical checks can never fire first.
func EliminateRedundantChecks(f *ir.Func) int {
	removed := 0
	type key struct {
		a, b, c ir.Value
		size    int64
		kind    ir.CheckKind
	}
	for _, blk := range f.Blocks {
		seen := make(map[key]bool)
		out := blk.Insts[:0]
		for i := range blk.Insts {
			in := blk.Insts[i]
			if in.Kind == ir.KCheck {
				k := key{in.A, in.Base, in.Bound, in.AccessSize, in.CheckK}
				if seen[k] {
					removed++
					continue
				}
				seen[k] = true
				out = append(out, in)
				continue
			}
			// Any write to a register invalidates keys mentioning it.
			if dst := writtenReg(&in); dst != ir.NoReg {
				for k := range seen {
					if mentionsReg(k.a, dst) || mentionsReg(k.b, dst) || mentionsReg(k.c, dst) {
						delete(seen, k)
					}
				}
			}
			out = append(out, in)
		}
		blk.Insts = out
	}
	return removed
}

func writtenReg(in *ir.Inst) ir.Reg {
	switch in.Kind {
	case ir.KConst, ir.KMov, ir.KBin, ir.KUn, ir.KCmp, ir.KConv,
		ir.KGEP, ir.KAlloca, ir.KLoad, ir.KCall:
		return in.Dst
	}
	return ir.NoReg
}

func mentionsReg(v ir.Value, r ir.Reg) bool {
	return v.Kind == ir.VReg && v.Reg == r
}

// CSEMetaLoads merges repeated KMetaLoad of the same address register in
// a block into register moves, invalidating on metadata writes, clears,
// calls (callees may update the table), and redefinition of the address.
func CSEMetaLoads(f *ir.Func) int {
	merged := 0
	for _, blk := range f.Blocks {
		type cached struct{ base, bound ir.Reg }
		avail := make(map[ir.Value]cached)
		// A merged metaload expands to two moves, so the output can be
		// longer than the input: build into a fresh slice.
		out := make([]ir.Inst, 0, len(blk.Insts))
		for i := range blk.Insts {
			in := blk.Insts[i]
			switch in.Kind {
			case ir.KMetaLoad:
				if c, ok := avail[in.A]; ok {
					out = append(out,
						ir.Inst{Kind: ir.KMov, Dst: in.DstBaseR, A: ir.R(c.base)},
						ir.Inst{Kind: ir.KMov, Dst: in.DstBndR, A: ir.R(c.bound)})
					merged++
					continue
				}
				avail[in.A] = cached{in.DstBaseR, in.DstBndR}
			case ir.KMetaStore, ir.KMetaClear, ir.KCall:
				avail = make(map[ir.Value]cached)
			default:
				if dst := writtenReg(&in); dst != ir.NoReg {
					for k, c := range avail {
						if mentionsReg(k, dst) || c.base == dst || c.bound == dst {
							delete(avail, k)
						}
					}
				}
			}
			out = append(out, in)
		}
		blk.Insts = out
	}
	return merged
}
