package opt

import (
	"testing"

	"softbound/internal/ir"
)

func chk(ptr, base, bound ir.Value) ir.Inst {
	return ir.Inst{Kind: ir.KCheck, A: ptr, Base: base, Bound: bound,
		AccessSize: 8, CheckK: ir.CheckLoad}
}

// mkCFGFunc assembles a function from per-block instruction slices; the
// caller supplies terminators.
func mkCFGFunc(nRegs int, blocks ...[]ir.Inst) *ir.Func {
	f := &ir.Func{Name: "t"}
	for i := 0; i < nRegs; i++ {
		f.NewReg(ir.ClassInt)
	}
	for _, insts := range blocks {
		f.Blocks = append(f.Blocks, &ir.Block{Insts: insts})
	}
	return f
}

func countChecks(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Kind == ir.KCheck {
				n++
			}
		}
	}
	return n
}

// A check available on both arms of a diamond (here: established in the
// entry) is redundant in the arms and at the join.
func TestGlobalCheckElimDiamond(t *testing.T) {
	c := chk(ir.R(0), ir.R(1), ir.R(2))
	f := mkCFGFunc(4,
		[]ir.Inst{c, {Kind: ir.KCondBr, A: ir.R(3), Target: 1, Else: 2}},
		[]ir.Inst{c, {Kind: ir.KBr, Target: 3}},
		[]ir.Inst{c, {Kind: ir.KBr, Target: 3}},
		[]ir.Inst{c, {Kind: ir.KRet}},
	)
	if n := EliminateRedundantChecksGlobal(f); n != 3 {
		t.Fatalf("removed %d, want 3 (both arms + join)", n)
	}
	if countChecks(f) != 1 {
		t.Fatalf("%d checks left, want the entry's", countChecks(f))
	}
}

// A check present on only one path to the join must stay.
func TestGlobalCheckElimOnePathOnly(t *testing.T) {
	c := chk(ir.R(0), ir.R(1), ir.R(2))
	f := mkCFGFunc(4,
		[]ir.Inst{{Kind: ir.KCondBr, A: ir.R(3), Target: 1, Else: 2}},
		[]ir.Inst{c, {Kind: ir.KBr, Target: 3}},
		[]ir.Inst{{Kind: ir.KBr, Target: 3}},
		[]ir.Inst{c, {Kind: ir.KRet}},
	)
	if n := EliminateRedundantChecksGlobal(f); n != 0 {
		t.Fatalf("removed %d checks not available on every path", n)
	}
}

// A redefinition of a check operand on one path kills availability at
// the join.
func TestGlobalCheckElimKilledOnOnePath(t *testing.T) {
	c := chk(ir.R(0), ir.R(1), ir.R(2))
	f := mkCFGFunc(4,
		[]ir.Inst{c, {Kind: ir.KCondBr, A: ir.R(3), Target: 1, Else: 2}},
		[]ir.Inst{{Kind: ir.KConst, Dst: 0, A: ir.CI(7)}, {Kind: ir.KBr, Target: 3}},
		[]ir.Inst{{Kind: ir.KBr, Target: 3}},
		[]ir.Inst{c, {Kind: ir.KRet}},
	)
	if n := EliminateRedundantChecksGlobal(f); n != 0 {
		t.Fatalf("removed %d checks across a one-path redefinition", n)
	}
}

// Availability flows around a loop back edge: a check before the loop
// covers an identical check in the header when nothing in the loop
// redefines its operands.
func TestGlobalCheckElimLoop(t *testing.T) {
	c := chk(ir.R(0), ir.R(1), ir.R(2))
	f := mkCFGFunc(5,
		[]ir.Inst{c, {Kind: ir.KBr, Target: 1}},
		[]ir.Inst{c, {Kind: ir.KBin, Dst: 4, Op: ir.OpSub, A: ir.R(4), B: ir.CI(1)},
			{Kind: ir.KCondBr, A: ir.R(4), Target: 2, Else: 3}},
		[]ir.Inst{{Kind: ir.KBr, Target: 1}},
		[]ir.Inst{{Kind: ir.KRet}},
	)
	if n := EliminateRedundantChecksGlobal(f); n != 1 {
		t.Fatalf("removed %d, want 1 (the header check)", n)
	}
	// ... but a redefinition in the loop body keeps the header check.
	f = mkCFGFunc(5,
		[]ir.Inst{c, {Kind: ir.KBr, Target: 1}},
		[]ir.Inst{c, {Kind: ir.KBin, Dst: 4, Op: ir.OpSub, A: ir.R(4), B: ir.CI(1)},
			{Kind: ir.KCondBr, A: ir.R(4), Target: 2, Else: 3}},
		[]ir.Inst{{Kind: ir.KConst, Dst: 1, A: ir.CI(9)}, {Kind: ir.KBr, Target: 1}},
		[]ir.Inst{{Kind: ir.KRet}},
	)
	if n := EliminateRedundantChecksGlobal(f); n != 0 {
		t.Fatalf("removed %d checks whose base is redefined in the loop", n)
	}
}

// A setjmp call clears all global availability, like in the local pass.
func TestGlobalCheckElimSetjmp(t *testing.T) {
	c := chk(ir.R(0), ir.R(1), ir.R(2))
	f := mkCFGFunc(4,
		[]ir.Inst{c, {Kind: ir.KCall, Dst: 3, Callee: ir.FV("setjmp"),
			DstBase: ir.NoReg, DstBound: ir.NoReg}, {Kind: ir.KBr, Target: 1}},
		[]ir.Inst{c, {Kind: ir.KRet}},
	)
	if n := EliminateRedundantChecksGlobal(f); n != 0 {
		t.Fatalf("removed %d checks across setjmp", n)
	}
}

// An invariant metaload that dominates the loop exit hoists into the
// preheader (here: the existing unconditional predecessor).
func TestHoistMetaLoad(t *testing.T) {
	f := mkCFGFunc(5,
		[]ir.Inst{{Kind: ir.KConst, Dst: 4, A: ir.CI(3)}, {Kind: ir.KBr, Target: 1}},
		[]ir.Inst{
			{Kind: ir.KMetaLoad, A: ir.GV("g", 0), DstBaseR: 0, DstBndR: 1},
			{Kind: ir.KBin, Dst: 2, Op: ir.OpAdd, A: ir.R(2), B: ir.R(0)},
			{Kind: ir.KBin, Dst: 4, Op: ir.OpSub, A: ir.R(4), B: ir.CI(1)},
			{Kind: ir.KCondBr, A: ir.R(4), Target: 1, Else: 2}},
		[]ir.Inst{{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(2), Mem: ir.MemI64}, {Kind: ir.KRet}},
	)
	if n := HoistLoopInvariantMetaLoads(f); n != 1 {
		t.Fatalf("hoisted %d, want 1", n)
	}
	// The metaload now sits in block 0 before its branch.
	b0 := f.Blocks[0].Insts
	if b0[len(b0)-2].Kind != ir.KMetaLoad {
		t.Fatalf("metaload not in preheader: %v", b0)
	}
	for i := range f.Blocks[1].Insts {
		if f.Blocks[1].Insts[i].Kind == ir.KMetaLoad {
			t.Fatal("metaload still in the loop")
		}
	}
}

// When the header has several outside predecessors, hoisting must create
// a preheader block and redirect them.
func TestHoistCreatesPreheader(t *testing.T) {
	f := mkCFGFunc(6,
		[]ir.Inst{{Kind: ir.KCondBr, A: ir.R(5), Target: 1, Else: 2}},
		[]ir.Inst{{Kind: ir.KConst, Dst: 4, A: ir.CI(2)}, {Kind: ir.KBr, Target: 3}},
		[]ir.Inst{{Kind: ir.KConst, Dst: 4, A: ir.CI(4)}, {Kind: ir.KBr, Target: 3}},
		[]ir.Inst{
			{Kind: ir.KMetaLoad, A: ir.GV("g", 8), DstBaseR: 0, DstBndR: 1},
			{Kind: ir.KBin, Dst: 2, Op: ir.OpAdd, A: ir.R(2), B: ir.R(1)},
			{Kind: ir.KBin, Dst: 4, Op: ir.OpSub, A: ir.R(4), B: ir.CI(1)},
			{Kind: ir.KCondBr, A: ir.R(4), Target: 3, Else: 4}},
		[]ir.Inst{{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(2), Mem: ir.MemI64}, {Kind: ir.KRet}},
	)
	nBlocks := len(f.Blocks)
	if n := HoistLoopInvariantMetaLoads(f); n != 1 {
		t.Fatalf("hoisted %d, want 1", n)
	}
	if len(f.Blocks) != nBlocks+1 {
		t.Fatalf("no preheader created (%d blocks)", len(f.Blocks))
	}
	pre := f.Blocks[nBlocks]
	if pre.Insts[0].Kind != ir.KMetaLoad || pre.Terminator().Target != 3 {
		t.Fatalf("preheader malformed: %v", pre.Insts)
	}
	// Both former predecessors now branch to the preheader, and the
	// back edge still targets the header.
	if f.Blocks[1].Terminator().Target != nBlocks || f.Blocks[2].Terminator().Target != nBlocks {
		t.Fatal("outside predecessors not redirected")
	}
	if f.Blocks[3].Terminator().Target != 3 {
		t.Fatal("back edge must keep targeting the header")
	}
}

// Negative hoisting cases: calls in the loop, a variant address, a
// conditionally executed metaload, and a second in-loop definition.
func TestHoistNegative(t *testing.T) {
	base := func(body ...ir.Inst) *ir.Func {
		insts := append(body,
			ir.Inst{Kind: ir.KBin, Dst: 4, Op: ir.OpSub, A: ir.R(4), B: ir.CI(1)},
			ir.Inst{Kind: ir.KCondBr, A: ir.R(4), Target: 1, Else: 2})
		return mkCFGFunc(6,
			[]ir.Inst{{Kind: ir.KConst, Dst: 4, A: ir.CI(3)}, {Kind: ir.KBr, Target: 1}},
			insts,
			[]ir.Inst{{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(2), Mem: ir.MemI64}, {Kind: ir.KRet}},
		)
	}

	cases := map[string]*ir.Func{
		"call in loop": base(
			ir.Inst{Kind: ir.KMetaLoad, A: ir.GV("g", 0), DstBaseR: 0, DstBndR: 1},
			ir.Inst{Kind: ir.KBin, Dst: 2, Op: ir.OpAdd, A: ir.R(2), B: ir.R(0)},
			ir.Inst{Kind: ir.KCall, Dst: 5, Callee: ir.FV("f"), DstBase: ir.NoReg, DstBound: ir.NoReg}),
		"metastore in loop": base(
			ir.Inst{Kind: ir.KMetaLoad, A: ir.GV("g", 0), DstBaseR: 0, DstBndR: 1},
			ir.Inst{Kind: ir.KBin, Dst: 2, Op: ir.OpAdd, A: ir.R(2), B: ir.R(0)},
			ir.Inst{Kind: ir.KMetaStore, A: ir.GV("g", 16), SrcBase: ir.R(0), SrcBound: ir.R(1)}),
		"variant address": base(
			ir.Inst{Kind: ir.KBin, Dst: 3, Op: ir.OpAdd, A: ir.R(3), B: ir.CI(8)},
			ir.Inst{Kind: ir.KMetaLoad, A: ir.R(3), DstBaseR: 0, DstBndR: 1},
			ir.Inst{Kind: ir.KBin, Dst: 2, Op: ir.OpAdd, A: ir.R(2), B: ir.R(0)}),
		"second def in loop": base(
			ir.Inst{Kind: ir.KMetaLoad, A: ir.GV("g", 0), DstBaseR: 0, DstBndR: 1},
			ir.Inst{Kind: ir.KConst, Dst: 0, A: ir.CI(1)},
			ir.Inst{Kind: ir.KBin, Dst: 2, Op: ir.OpAdd, A: ir.R(2), B: ir.R(0)}),
	}
	for name, f := range cases {
		if n := HoistLoopInvariantMetaLoads(f); n != 0 {
			t.Errorf("%s: hoisted %d, want 0", name, n)
		}
	}

	// Conditionally executed metaload (inside an if within the loop):
	// its block does not dominate the loop exit.
	f := mkCFGFunc(6,
		[]ir.Inst{{Kind: ir.KConst, Dst: 4, A: ir.CI(3)}, {Kind: ir.KBr, Target: 1}},
		[]ir.Inst{{Kind: ir.KCondBr, A: ir.R(5), Target: 2, Else: 3}},
		[]ir.Inst{
			{Kind: ir.KMetaLoad, A: ir.GV("g", 0), DstBaseR: 0, DstBndR: 1},
			{Kind: ir.KBin, Dst: 2, Op: ir.OpAdd, A: ir.R(2), B: ir.R(0)},
			{Kind: ir.KBr, Target: 3}},
		[]ir.Inst{
			{Kind: ir.KBin, Dst: 4, Op: ir.OpSub, A: ir.R(4), B: ir.CI(1)},
			{Kind: ir.KCondBr, A: ir.R(4), Target: 1, Else: 4}},
		[]ir.Inst{{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(2), Mem: ir.MemI64}, {Kind: ir.KRet}},
	)
	if n := HoistLoopInvariantMetaLoads(f); n != 0 {
		t.Errorf("conditional metaload: hoisted %d, want 0", n)
	}
}
