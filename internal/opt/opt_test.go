package opt

import (
	"testing"

	"softbound/internal/ir"
)

// buildFunc makes a single-block function from the instructions plus a
// return terminator.
func buildFunc(nRegs int, insts ...ir.Inst) *ir.Func {
	f := &ir.Func{Name: "t"}
	for i := 0; i < nRegs; i++ {
		f.NewReg(ir.ClassInt)
	}
	insts = append(insts, ir.Inst{Kind: ir.KRet})
	f.Blocks = []*ir.Block{{Name: "entry", Insts: insts}}
	return f
}

func TestConstFoldBinOps(t *testing.T) {
	f := buildFunc(2,
		ir.Inst{Kind: ir.KBin, Dst: 0, Op: ir.OpAdd, A: ir.CI(3), B: ir.CI(4), IntWidth: 32, Signed: true},
		ir.Inst{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(0), Mem: ir.MemI32},
	)
	n := ConstFold(f)
	if n != 1 {
		t.Fatalf("folded %d, want 1", n)
	}
	in := f.Blocks[0].Insts[0]
	if in.Kind != ir.KConst || in.A.Int != 7 {
		t.Fatalf("got %v", in.String())
	}
}

func TestConstFoldWraps(t *testing.T) {
	f := buildFunc(1,
		ir.Inst{Kind: ir.KBin, Dst: 0, Op: ir.OpMul,
			A: ir.CI(1 << 20), B: ir.CI(1 << 20), IntWidth: 32, Signed: true},
		ir.Inst{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(0), Mem: ir.MemI32},
	)
	ConstFold(f)
	in := f.Blocks[0].Insts[0]
	if in.Kind != ir.KConst || in.A.Int != 0 {
		t.Fatalf("32-bit wrap: got %v", in.String())
	}
}

func TestConstFoldPreservesDivByZero(t *testing.T) {
	f := buildFunc(1,
		ir.Inst{Kind: ir.KBin, Dst: 0, Op: ir.OpDiv, A: ir.CI(1), B: ir.CI(0)},
		ir.Inst{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(0), Mem: ir.MemI32},
	)
	if n := ConstFold(f); n != 0 {
		t.Fatal("folded a division by zero")
	}
}

func TestConstFoldCondBr(t *testing.T) {
	f := &ir.Func{Name: "t"}
	f.Blocks = []*ir.Block{
		{Insts: []ir.Inst{{Kind: ir.KCondBr, A: ir.CI(1), Target: 1, Else: 2}}},
		{Insts: []ir.Inst{{Kind: ir.KRet}}},
		{Insts: []ir.Inst{{Kind: ir.KRet}}},
	}
	ConstFold(f)
	in := f.Blocks[0].Insts[0]
	if in.Kind != ir.KBr || in.Target != 1 {
		t.Fatalf("got %v", in.String())
	}
}

func TestDeadCodeElim(t *testing.T) {
	// r0 is stored (live); r1 is never read (dead); r2 feeds r1 only
	// (dead after one more pass).
	f := buildFunc(3,
		ir.Inst{Kind: ir.KConst, Dst: 0, A: ir.CI(1)},
		ir.Inst{Kind: ir.KConst, Dst: 2, A: ir.CI(2)},
		ir.Inst{Kind: ir.KBin, Dst: 1, Op: ir.OpAdd, A: ir.R(2), B: ir.CI(1)},
		ir.Inst{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(0), Mem: ir.MemI32},
	)
	removed := DeadCodeElim(f)
	if removed != 1 {
		t.Fatalf("first pass removed %d, want 1 (r1)", removed)
	}
	removed = DeadCodeElim(f)
	if removed != 1 {
		t.Fatalf("second pass removed %d, want 1 (r2)", removed)
	}
	if len(f.Blocks[0].Insts) != 3 { // const r0, store, ret
		t.Fatalf("left %d insts", len(f.Blocks[0].Insts))
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	f := buildFunc(2,
		ir.Inst{Kind: ir.KLoad, Dst: 0, A: ir.GV("g", 0), Mem: ir.MemI32},
		ir.Inst{Kind: ir.KCall, Dst: 1, Callee: ir.FV("rand"), DstBase: ir.NoReg, DstBound: ir.NoReg},
	)
	if n := DeadCodeElim(f); n != 0 {
		t.Fatalf("removed %d side-effecting insts", n)
	}
}

func TestEliminateRedundantChecks(t *testing.T) {
	mk := func() *ir.Func {
		return buildFunc(3,
			ir.Inst{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2),
				AccessSize: 4, CheckK: ir.CheckLoad},
			ir.Inst{Kind: ir.KLoad, Dst: 0, A: ir.R(0), Mem: ir.MemI32},
		)
	}
	// Identical back-to-back checks: second one goes — but the load in
	// between WRITES r0, which invalidates. Use a separate dst.
	f := mk()
	f.Blocks[0].Insts = []ir.Inst{
		{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2), AccessSize: 4, CheckK: ir.CheckLoad},
		{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2), AccessSize: 4, CheckK: ir.CheckLoad},
		{Kind: ir.KRet},
	}
	if n := EliminateRedundantChecks(f); n != 1 {
		t.Fatalf("removed %d, want 1", n)
	}

	// A write to the checked register between checks blocks elimination.
	f = mk()
	f.Blocks[0].Insts = []ir.Inst{
		{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2), AccessSize: 4, CheckK: ir.CheckLoad},
		{Kind: ir.KGEP, Dst: 0, A: ir.R(0), B: ir.CI(1), Size: 4},
		{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2), AccessSize: 4, CheckK: ir.CheckLoad},
		{Kind: ir.KRet},
	}
	if n := EliminateRedundantChecks(f); n != 0 {
		t.Fatalf("removed %d checks across a redefinition", n)
	}

	// Different access sizes are different checks.
	f = mk()
	f.Blocks[0].Insts = []ir.Inst{
		{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2), AccessSize: 4, CheckK: ir.CheckLoad},
		{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2), AccessSize: 8, CheckK: ir.CheckLoad},
		{Kind: ir.KRet},
	}
	if n := EliminateRedundantChecks(f); n != 0 {
		t.Fatalf("merged checks of different sizes")
	}
}

func TestCSEMetaLoads(t *testing.T) {
	f := &ir.Func{Name: "t"}
	for i := 0; i < 6; i++ {
		f.NewReg(ir.ClassPtr)
	}
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 1, DstBndR: 2},
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 3, DstBndR: 4},
		{Kind: ir.KRet},
	}}}
	if n := CSEMetaLoads(f); n != 1 {
		t.Fatalf("merged %d, want 1", n)
	}
	// The merged metaload becomes two movs.
	insts := f.Blocks[0].Insts
	if insts[1].Kind != ir.KMov || insts[2].Kind != ir.KMov {
		t.Fatalf("expected movs, got %v %v", insts[1].String(), insts[2].String())
	}

	// A metadata store in between invalidates.
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 1, DstBndR: 2},
		{Kind: ir.KMetaStore, A: ir.R(5), SrcBase: ir.R(1), SrcBound: ir.R(2)},
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 3, DstBndR: 4},
		{Kind: ir.KRet},
	}}}
	if n := CSEMetaLoads(f); n != 0 {
		t.Fatalf("merged %d across a metastore", n)
	}
}
