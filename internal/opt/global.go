// Whole-function optimizer passes built on the internal/ir CFG analysis:
// available-check elimination across blocks and loop-invariant
// metadata-load hoisting. These recover, inside the SoftBound pipeline,
// the global redundancy elimination the paper gets by re-running LLVM's
// optimizer over the instrumented bitcode (§6.1).
package opt

import (
	"softbound/internal/ir"
)

// availState is the set of checks known to have executed (without any
// operand redefinition since) on every path reaching a program point.
// nil is ⊤ ("all checks available"), used to initialize blocks
// optimistically so facts propagate around loop back edges.
type availState map[checkKey]bool

func (s availState) clone() availState {
	c := make(availState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

// equal reports set equality; a nil receiver (⊤) equals only nil.
func (s availState) equal(o availState) bool {
	if (s == nil) != (o == nil) || len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// transferCheck applies one instruction to the available-check set,
// returning the updated set (mutating s in place).
func transferCheck(s availState, in *ir.Inst) availState {
	switch in.Kind {
	case ir.KCheck:
		s[keyOf(in)] = true
		return s
	default:
		if isSetjmpCall(in) {
			// longjmp re-enters after this instruction with register
			// state from an arbitrary later point: nothing stays known.
			return make(availState)
		}
		if in.Kind == ir.KCall {
			// Calls can revoke locks (callee free/realloc): temporal
			// keys do not survive them. See EliminateRedundantChecks.
			for k := range s {
				if k.tmeta {
					delete(s, k)
				}
			}
		}
		writtenRegs(in, func(dst ir.Reg) {
			for k := range s {
				if k.mentions(dst) {
					delete(s, k)
				}
			}
		})
		return s
	}
}

// EliminateRedundantChecksGlobal removes a KCheck that is available on
// entry to its position along every path from the function entry — in
// particular, a check dominated by an identical check with no
// redefinition of its operands on any intervening path. It is a forward
// dataflow ("available expressions" over check keys): meet is
// intersection over reachable predecessors, the transfer function adds
// executed checks and kills keys whose registers are redefined, and
// setjmp call sites clear everything (longjmp resumes after them with
// unknown register state). Run EliminateRedundantChecks first; this pass
// only pays off on cross-block redundancy, and its counter isolates the
// extra wins.
func EliminateRedundantChecksGlobal(f *ir.Func) int {
	cfg := ir.BuildCFG(f)
	if len(cfg.RPO) == 0 {
		return 0
	}
	n := len(f.Blocks)
	// availOut[b] is the fixpoint state at the end of block b; nil = ⊤
	// (not yet computed — only possible before a block's first visit).
	availOut := make([]availState, n)
	availIn := func(b int) availState {
		var s availState
		for _, p := range cfg.Preds[b] {
			po := availOut[p]
			if po == nil {
				continue // ⊤: imposes no constraint
			}
			if s == nil {
				s = po.clone()
				continue
			}
			for k := range s {
				if !po[k] {
					delete(s, k)
				}
			}
		}
		if s == nil {
			s = make(availState)
		}
		return s
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.RPO {
			s := availIn(b)
			if b == cfg.RPO[0] {
				s = make(availState) // nothing available at function entry
			}
			for i := range f.Blocks[b].Insts {
				s = transferCheck(s, &f.Blocks[b].Insts[i])
			}
			if !s.equal(availOut[b]) {
				availOut[b] = s
				changed = true
			}
		}
	}

	// Elimination sweep: replay each block from its fixpoint entry state
	// and drop checks already available.
	removed := 0
	for _, b := range cfg.RPO {
		s := availIn(b)
		if b == cfg.RPO[0] {
			s = make(availState)
		}
		blk := f.Blocks[b]
		out := blk.Insts[:0]
		for i := range blk.Insts {
			in := blk.Insts[i]
			if in.Kind == ir.KCheck && s[keyOf(&in)] {
				removed++
				continue
			}
			s = transferCheck(s, &in)
			out = append(out, in)
		}
		blk.Insts = out
	}
	return removed
}

// HoistLoopInvariantMetaLoads moves a loop-invariant KMetaLoad into a
// preheader block inserted before the loop header. A metaload is hoisted
// only when all of the following hold, keeping the motion observationally
// neutral:
//
//   - The loop contains no KCall, KMetaStore, or KMetaClear: nothing in
//     the loop (or in a callee, or via longjmp out of one) can change
//     what the lookup returns.
//   - Its address operand is a constant/symbol, or a register no loop
//     instruction writes: the lookup reads the same table slot every
//     iteration.
//   - Its destination registers are written by no other loop instruction
//     (and only once by this one): moving the single definition out of
//     the loop cannot change which value later reads observe.
//   - Its block dominates every loop exit: the lookup was unconditionally
//     executed before leaving the loop, so executing it earlier adds no
//     new behavior (a table lookup never faults, it only reads).
//   - Its block dominates every loop block that reads a destination
//     register, and no read precedes it inside its own block: every read
//     already saw this definition.
//
// The loop's header must not be the function entry (a preheader needs
// somewhere to splice in). One metaload is hoisted per CFG build; the
// caller's fixpoint loop re-runs the pass until it finds nothing.
func HoistLoopInvariantMetaLoads(f *ir.Func) int {
	hoisted := 0
	// Bound the rebuild loop defensively; each iteration either hoists
	// (changing the CFG) or stops.
	for iter := 0; iter < 64; iter++ {
		if !hoistOneMetaLoad(f) {
			return hoisted
		}
		hoisted++
	}
	return hoisted
}

func hoistOneMetaLoad(f *ir.Func) bool {
	cfg := ir.BuildCFG(f)
	for _, loop := range cfg.NaturalLoops() {
		if loop.Header == cfg.RPO[0] {
			continue // entry block cannot get a preheader
		}
		if b, i := findHoistableMetaLoad(f, cfg, loop); b >= 0 {
			hoistInto(f, cfg, loop, b, i)
			return true
		}
	}
	return false
}

// findHoistableMetaLoad returns the block index and instruction index of
// a metaload satisfying the conditions above, or (-1, -1).
func findHoistableMetaLoad(f *ir.Func, cfg *ir.CFG, loop *ir.Loop) (int, int) {
	// Pass 1 over the loop body: reject loops with calls or metadata
	// writes, and collect per-register write counts.
	writes := make(map[ir.Reg]int)
	for _, b := range loop.Blocks {
		for i := range f.Blocks[b].Insts {
			in := &f.Blocks[b].Insts[i]
			switch in.Kind {
			case ir.KCall, ir.KMetaStore, ir.KMetaClear:
				return -1, -1
			}
			writtenRegs(in, func(r ir.Reg) { writes[r]++ })
		}
	}
	exits := cfg.ExitBlocks(loop)

	for _, b := range loop.Blocks {
		for i := range f.Blocks[b].Insts {
			in := &f.Blocks[b].Insts[i]
			if in.Kind != ir.KMetaLoad {
				continue
			}
			// A temporal metaload also defines DstKeyR/DstLockR, which
			// this analysis does not model; never hoist one.
			if in.TMeta {
				continue
			}
			// Invariant address: non-register, or never written in-loop.
			if in.A.Kind == ir.VReg && writes[in.A.Reg] != 0 {
				continue
			}
			// Sole in-loop definition of both destinations. (A metaload
			// with DstBaseR == DstBndR writes that register twice.)
			if writes[in.DstBaseR] != 1 || writes[in.DstBndR] != 1 ||
				in.DstBaseR == in.DstBndR {
				continue
			}
			if !dominatesAll(cfg, b, exits) {
				continue
			}
			if !dominatesReads(f, cfg, loop, b, i, in.DstBaseR) ||
				!dominatesReads(f, cfg, loop, b, i, in.DstBndR) {
				continue
			}
			return b, i
		}
	}
	return -1, -1
}

func dominatesAll(cfg *ir.CFG, b int, blocks []int) bool {
	for _, o := range blocks {
		if !cfg.Dominates(b, o) {
			return false
		}
	}
	return true
}

// dominatesReads reports whether the definition at (defBlock, defIdx)
// dominates every read of reg inside the loop: reads in other loop
// blocks must be in blocks dominated by defBlock, and reads in defBlock
// itself must come after defIdx.
func dominatesReads(f *ir.Func, cfg *ir.CFG, loop *ir.Loop, defBlock, defIdx int, reg ir.Reg) bool {
	for _, b := range loop.Blocks {
		for i := range f.Blocks[b].Insts {
			if !readsReg(&f.Blocks[b].Insts[i], reg) {
				continue
			}
			if b == defBlock {
				if i < defIdx {
					return false
				}
				continue
			}
			if !cfg.Dominates(defBlock, b) {
				return false
			}
		}
	}
	return true
}

// readsReg reports whether in reads reg through any operand.
func readsReg(in *ir.Inst, reg ir.Reg) bool {
	is := func(v ir.Value) bool { return v.Kind == ir.VReg && v.Reg == reg }
	if is(in.A) || is(in.B) || is(in.C) || is(in.Base) || is(in.Bound) ||
		is(in.Callee) || is(in.SrcBase) || is(in.SrcBound) ||
		is(in.RetBase) || is(in.RetBound) || is(in.MemcpyLen) || is(in.MemSize) {
		return true
	}
	// Temporal operands are meaningful only under TMeta: the zero
	// ir.Value of a spatial instruction would otherwise read register 0.
	if in.TMeta && (is(in.Key) || is(in.Lock) || is(in.SrcKey) || is(in.SrcLock) ||
		is(in.RetKey) || is(in.RetLock)) {
		return true
	}
	for _, a := range in.Args {
		if is(a) {
			return true
		}
	}
	for _, sh := range in.Shadow {
		if is(sh.Base) || is(sh.Bound) {
			return true
		}
		if sh.Temporal && (is(sh.Key) || is(sh.Lock)) {
			return true
		}
	}
	return false
}

// hoistInto creates (or reuses) a preheader for the loop and moves the
// metaload at (b, i) to its end, before the terminator.
func hoistInto(f *ir.Func, cfg *ir.CFG, loop *ir.Loop, b, i int) {
	in := f.Blocks[b].Insts[i]
	f.Blocks[b].Insts = append(f.Blocks[b].Insts[:i], f.Blocks[b].Insts[i+1:]...)

	pre := makePreheader(f, cfg, loop)
	// Insert before the preheader's terminator (an unconditional branch
	// to the header).
	blk := f.Blocks[pre]
	term := blk.Insts[len(blk.Insts)-1]
	blk.Insts[len(blk.Insts)-1] = in
	blk.Insts = append(blk.Insts, term)
}

// makePreheader returns a block that is the unique non-loop predecessor
// of the loop header, creating one (and redirecting the other non-loop
// predecessors' terminators) if necessary.
func makePreheader(f *ir.Func, cfg *ir.CFG, loop *ir.Loop) int {
	h := loop.Header
	var outside []int
	for _, p := range cfg.Preds[h] {
		if !loop.Contains(p) {
			outside = append(outside, p)
		}
	}
	// A unique outside predecessor that only branches to the header
	// already serves as the preheader.
	if len(outside) == 1 {
		t := f.Blocks[outside[0]].Terminator()
		if t != nil && t.Kind == ir.KBr && t.Target == h {
			return outside[0]
		}
	}
	pre := f.NewBlock(f.Blocks[h].Name + ".preheader")
	f.Blocks[pre].Insts = []ir.Inst{{Kind: ir.KBr, Target: h}}
	for _, p := range outside {
		t := f.Blocks[p].Terminator()
		switch t.Kind {
		case ir.KBr:
			if t.Target == h {
				t.Target = pre
			}
		case ir.KCondBr:
			if t.Target == h {
				t.Target = pre
			}
			if t.Else == h {
				t.Else = pre
			}
		}
	}
	return pre
}
