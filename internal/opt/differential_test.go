package opt

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"softbound/internal/ir"
	"softbound/internal/meta"
	"softbound/internal/vm"
)

// Differential fuzzing at the IR level: random structured functions run
// through the VM unoptimized, block-local optimized, and globally
// optimized, asserting identical exit codes, traps, and check outcomes.
// This is the soundness gate for every pass in this package — including
// the CFG-based ones, which never see instrumented C otherwise.
//
// The generator keeps all memory accesses statically in bounds of the
// one global (DCE may delete a dead KLoad, so a faulting dead load would
// be a false divergence), but checks themselves may pass or fail — a
// trap is an outcome to preserve, not an error.

const (
	fuzzGlobalSize = 128
	// Register roles. r0..r5 accumulate; r6 holds freshly computed
	// addresses; r7/r8 receive metadata; loop counters are allocated
	// per loop above fuzzFixedRegs.
	fuzzAccums    = 6
	fuzzAddrReg   = 6
	fuzzMetaBase  = 7
	fuzzMetaBound = 8
	fuzzFixedRegs = 9
)

// fuzzBuilder grows one random function.
type fuzzBuilder struct {
	rng *rand.Rand
	f   *ir.Func
	cur int // block under construction
}

func (b *fuzzBuilder) emit(in ir.Inst) { blk := b.f.Blocks[b.cur]; blk.Insts = append(blk.Insts, in) }

func (b *fuzzBuilder) acc() ir.Reg { return ir.Reg(b.rng.Intn(fuzzAccums)) }

// operand is a random accumulator or small constant.
func (b *fuzzBuilder) operand() ir.Value {
	if b.rng.Intn(3) == 0 {
		return ir.CI(int64(b.rng.Intn(64)))
	}
	return ir.R(b.acc())
}

// gOff is a random aligned in-bounds offset into the global.
func (b *fuzzBuilder) gOff() int64 { return 8 * int64(b.rng.Intn(fuzzGlobalSize/8-1)) }

// straightOps emits n random side-effect-bearing or arithmetic
// instructions into the current block.
func (b *fuzzBuilder) straightOps(n int) {
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpAnd, ir.OpOr}
	for i := 0; i < n; i++ {
		switch b.rng.Intn(10) {
		case 0, 1: // arithmetic
			b.emit(ir.Inst{Kind: ir.KBin, Dst: b.acc(), Op: ops[b.rng.Intn(len(ops))],
				A: b.operand(), B: b.operand()})
		case 2: // comparison
			b.emit(ir.Inst{Kind: ir.KCmp, Dst: b.acc(), Pred: ir.Pred(b.rng.Intn(6)),
				A: b.operand(), B: b.operand(), Signed: true})
		case 3: // store to the global
			b.emit(ir.Inst{Kind: ir.KStore, A: ir.GV("g", b.gOff()), B: b.operand(),
				Mem: ir.MemI64})
		case 4: // load from the global
			b.emit(ir.Inst{Kind: ir.KLoad, Dst: b.acc(), A: ir.GV("g", b.gOff()),
				Mem: ir.MemI64})
		case 5: // gep + check + access through the address register
			off := b.gOff()
			b.emit(ir.Inst{Kind: ir.KGEP, Dst: fuzzAddrReg, A: ir.GV("g", 0),
				B: ir.CI(off / 8), Size: 8})
			b.emit(ir.Inst{Kind: ir.KCheck, A: ir.R(fuzzAddrReg),
				Base: ir.GV("g", 0), Bound: ir.GV("g", fuzzGlobalSize),
				AccessSize: 8, CheckK: ir.CheckLoad})
			if b.rng.Intn(2) == 0 {
				b.emit(ir.Inst{Kind: ir.KLoad, Dst: b.acc(), A: ir.R(fuzzAddrReg), Mem: ir.MemI64})
			} else {
				b.emit(ir.Inst{Kind: ir.KStore, A: ir.R(fuzzAddrReg), B: b.operand(), Mem: ir.MemI64})
			}
		case 6: // check with a random (possibly out-of-bounds) constant slot
			off := int64(b.rng.Intn(fuzzGlobalSize + 16))
			b.emit(ir.Inst{Kind: ir.KCheck, A: ir.GV("g", off),
				Base: ir.GV("g", 0), Bound: ir.GV("g", fuzzGlobalSize),
				AccessSize: 8, CheckK: ir.CheckStore})
		case 7: // metadata store
			b.emit(ir.Inst{Kind: ir.KMetaStore, A: ir.GV("g", b.gOff()),
				SrcBase: b.operand(), SrcBound: b.operand()})
		case 8: // metadata load folded into an accumulator
			b.emit(ir.Inst{Kind: ir.KMetaLoad, A: ir.GV("g", b.gOff()),
				DstBaseR: fuzzMetaBase, DstBndR: fuzzMetaBound})
			b.emit(ir.Inst{Kind: ir.KBin, Dst: b.acc(), Op: ir.OpAdd,
				A: ir.R(b.acc()), B: ir.R(fuzzMetaBase)})
			b.emit(ir.Inst{Kind: ir.KBin, Dst: b.acc(), Op: ir.OpXor,
				A: ir.R(b.acc()), B: ir.R(fuzzMetaBound)})
		default: // duplicated check pair (elimination fodder)
			k := b.gOff()
			c := ir.Inst{Kind: ir.KCheck, A: ir.GV("g", k), Base: ir.GV("g", 0),
				Bound: ir.GV("g", fuzzGlobalSize), AccessSize: 8, CheckK: ir.CheckLoad}
			b.emit(c)
			b.emit(c)
		}
	}
}

// diamond emits an if/else over a random accumulator.
func (b *fuzzBuilder) diamond() {
	thenB := b.f.NewBlock("then")
	elseB := b.f.NewBlock("else")
	join := b.f.NewBlock("join")
	b.emit(ir.Inst{Kind: ir.KCondBr, A: ir.R(b.acc()), Target: thenB, Else: elseB})
	b.cur = thenB
	b.straightOps(1 + b.rng.Intn(3))
	b.emit(ir.Inst{Kind: ir.KBr, Target: join})
	b.cur = elseB
	b.straightOps(1 + b.rng.Intn(3))
	b.emit(ir.Inst{Kind: ir.KBr, Target: join})
	b.cur = join
}

// loop emits a counted loop with a dedicated counter register the body
// never touches.
func (b *fuzzBuilder) loop() {
	counter := b.f.NewReg(ir.ClassInt)
	header := b.f.NewBlock("loop")
	exit := b.f.NewBlock("exit")
	b.emit(ir.Inst{Kind: ir.KConst, Dst: counter, A: ir.CI(int64(2 + b.rng.Intn(4)))})
	b.emit(ir.Inst{Kind: ir.KBr, Target: header})
	b.cur = header
	b.straightOps(1 + b.rng.Intn(4))
	b.emit(ir.Inst{Kind: ir.KBin, Dst: counter, Op: ir.OpSub, A: ir.R(counter), B: ir.CI(1)})
	b.emit(ir.Inst{Kind: ir.KCondBr, A: ir.R(counter), Target: header, Else: exit})
	b.cur = exit
}

// genModule builds a random single-function module.
func genModule(rng *rand.Rand) *ir.Module {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	for i := 0; i < fuzzFixedRegs; i++ {
		f.NewReg(ir.ClassInt)
	}
	entry := f.NewBlock("entry")
	b := &fuzzBuilder{rng: rng, f: f, cur: entry}
	// Deterministic accumulator seed.
	for i := 0; i < fuzzAccums; i++ {
		b.emit(ir.Inst{Kind: ir.KConst, Dst: ir.Reg(i), A: ir.CI(int64(i * 17))})
	}
	for seg, nSeg := 0, 2+rng.Intn(5); seg < nSeg; seg++ {
		switch rng.Intn(4) {
		case 0:
			b.diamond()
		case 1:
			b.loop()
		default:
			b.straightOps(2 + rng.Intn(5))
		}
	}
	// Fold every accumulator plus a final metadata lookup into r0.
	b.emit(ir.Inst{Kind: ir.KMetaLoad, A: ir.GV("g", 0),
		DstBaseR: fuzzMetaBase, DstBndR: fuzzMetaBound})
	for i := 1; i < fuzzAccums; i++ {
		b.emit(ir.Inst{Kind: ir.KBin, Dst: 0, Op: ir.OpAdd, A: ir.R(0), B: ir.R(ir.Reg(i))})
	}
	b.emit(ir.Inst{Kind: ir.KBin, Dst: 0, Op: ir.OpXor, A: ir.R(0), B: ir.R(fuzzMetaBase)})
	b.emit(ir.Inst{Kind: ir.KBin, Dst: 0, Op: ir.OpAdd, A: ir.R(0), B: ir.R(fuzzMetaBound)})
	b.emit(ir.Inst{Kind: ir.KRet, HasVal: true, A: ir.R(0)})

	m := ir.NewModule("fuzz")
	m.AddFunc(f)
	m.Globals = append(m.Globals, &ir.Global{Name: "g", Size: fuzzGlobalSize, Align: 8})
	return m
}

// cloneModule deep-copies a module so one variant can be optimized while
// another runs pristine.
func cloneModule(m *ir.Module) *ir.Module {
	out := ir.NewModule(m.Name)
	for _, g := range m.Globals {
		cg := *g
		cg.Init = append([]byte(nil), g.Init...)
		cg.PtrInits = append([]ir.PtrInit(nil), g.PtrInits...)
		out.Globals = append(out.Globals, &cg)
	}
	for _, f := range m.Funcs {
		cf := *f
		cf.Params = append([]ir.Param(nil), f.Params...)
		cf.ParamRegs = append([]ir.Reg(nil), f.ParamRegs...)
		cf.RegClass = append([]ir.Class(nil), f.RegClass...)
		cf.Allocas = append([]ir.AllocaSlot(nil), f.Allocas...)
		cf.ClearSlots = append([]ir.AllocaSlot(nil), f.ClearSlots...)
		cf.Blocks = nil
		for _, blk := range f.Blocks {
			cb := &ir.Block{Name: blk.Name}
			for _, in := range blk.Insts {
				ci := in
				ci.Args = append([]ir.Value(nil), in.Args...)
				ci.Shadow = append([]ir.ShadowSlot(nil), in.Shadow...)
				cb.Insts = append(cb.Insts, ci)
			}
			cf.Blocks = append(cf.Blocks, cb)
		}
		out.AddFunc(&cf)
	}
	return out
}

// fuzzOutcome is the observable result of one run.
type fuzzOutcome struct {
	exit    int64
	errKind string // "", "spatial:...", "runtime:..."
}

func runFuzzModule(m *ir.Module) fuzzOutcome {
	machine, err := vm.New(m, vm.Config{
		Mode:      vm.CheckFull,
		Meta:      meta.NewShadowSpace(),
		StepLimit: 500_000,
	})
	if err != nil {
		return fuzzOutcome{errKind: "new:" + err.Error()}
	}
	exit, runErr := machine.Run()
	o := fuzzOutcome{exit: exit}
	if runErr != nil {
		// The VM wraps errors with the faulting instruction position,
		// which legitimately moves under optimization; compare the
		// classified payload instead of the message.
		var sv *vm.SpatialViolation
		var re *vm.RuntimeError
		switch {
		case errors.As(runErr, &sv):
			o.errKind = fmt.Sprintf("spatial:%v ptr=%d base=%d bound=%d size=%d",
				sv.Kind, sv.Ptr, sv.Base, sv.Bound, sv.Size)
		case errors.As(runErr, &re):
			o.errKind = "runtime:" + re.Msg
		default:
			o.errKind = "other:" + runErr.Error()
		}
	}
	return o
}

func TestDifferentialOptIR(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 30
	}
	for seed := 0; seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		orig := genModule(rng)

		local := cloneModule(orig)
		global := cloneModule(orig)
		Optimize(local)
		rGlobal := OptimizeWith(global, Options{Global: true})

		want := runFuzzModule(orig)
		if got := runFuzzModule(local); got != want {
			t.Fatalf("seed %d: local opt diverged: %+v != %+v", seed, got, want)
		}
		if got := runFuzzModule(global); got != want {
			t.Fatalf("seed %d: global opt diverged: %+v != %+v (result %+v)",
				seed, got, want, rGlobal)
		}
		// Optimizing an already-optimized module must be a fixpoint
		// behaviorally as well.
		OptimizeWith(global, Options{Global: true})
		if got := runFuzzModule(global); got != want {
			t.Fatalf("seed %d: re-optimization diverged: %+v != %+v", seed, got, want)
		}
	}
}
