package opt

import (
	"testing"

	"softbound/internal/ir"
)

// Regression: EliminateRedundantChecks used to track only Inst.Dst as a
// definition, so a KMetaLoad clobbering a check's base/bound register
// left the cached key alive and the second (now different) check was
// unsoundly deleted.
func TestCheckElimKilledByMetaLoadDef(t *testing.T) {
	f := buildFunc(5,
		ir.Inst{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2),
			AccessSize: 4, CheckK: ir.CheckLoad},
		// Overwrites r1/r2 — the base and bound of the cached check.
		ir.Inst{Kind: ir.KMetaLoad, A: ir.R(3), DstBaseR: 1, DstBndR: 2},
		ir.Inst{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2),
			AccessSize: 4, CheckK: ir.CheckLoad},
	)
	if n := EliminateRedundantChecks(f); n != 0 {
		t.Fatalf("removed %d checks across a metaload clobbering base/bound", n)
	}
}

// Regression (same root cause): a pointer-returning call's DstBase and
// DstBound are definitions too.
func TestCheckElimKilledByCallMetaDef(t *testing.T) {
	f := buildFunc(6,
		ir.Inst{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2),
			AccessSize: 8, CheckK: ir.CheckLoad},
		ir.Inst{Kind: ir.KCall, Dst: 3, Callee: ir.FV("mk"), DstBase: 1, DstBound: 2},
		ir.Inst{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2),
			AccessSize: 8, CheckK: ir.CheckLoad},
	)
	if n := EliminateRedundantChecks(f); n != 0 {
		t.Fatalf("removed %d checks across a call writing DstBase/DstBound", n)
	}
}

// longjmp can resume right after a setjmp call with register state from
// an arbitrary later program point, so no check stays available across
// one.
func TestCheckElimInvalidatedBySetjmp(t *testing.T) {
	for _, name := range []string{"setjmp", "_setjmp"} {
		f := buildFunc(4,
			ir.Inst{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2),
				AccessSize: 4, CheckK: ir.CheckLoad},
			ir.Inst{Kind: ir.KCall, Dst: 3, Callee: ir.FV(name),
				Args: []ir.Value{ir.R(0)}, DstBase: ir.NoReg, DstBound: ir.NoReg},
			ir.Inst{Kind: ir.KCheck, A: ir.R(0), Base: ir.R(1), Bound: ir.R(2),
				AccessSize: 4, CheckK: ir.CheckLoad},
		)
		if n := EliminateRedundantChecks(f); n != 0 {
			t.Fatalf("removed %d checks across %s", n, name)
		}
	}
}

// Regression: CSEMetaLoads never treated a KMetaLoad's own destinations
// as definitions, so a later metaload overwriting a cached entry's
// base/bound register left the stale entry in the cache and the merged
// movs copied another pointer's metadata.
func TestCSEMetaLoadsEvictsClobberedEntry(t *testing.T) {
	f := &ir.Func{Name: "t"}
	for i := 0; i < 8; i++ {
		f.NewReg(ir.ClassPtr)
	}
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 1, DstBndR: 2},
		// Different address, clobbers r1: avail[r0] is now stale.
		{Kind: ir.KMetaLoad, A: ir.R(5), DstBaseR: 1, DstBndR: 3},
		// Must NOT be merged from the stale {r1, r2} pair.
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 6, DstBndR: 7},
		{Kind: ir.KRet},
	}}}
	if n := CSEMetaLoads(f); n != 0 {
		t.Fatalf("merged %d metaloads from a clobbered cache entry", n)
	}
	// The third metaload must survive as a real lookup.
	kinds := []ir.InstKind{}
	for _, in := range f.Blocks[0].Insts {
		kinds = append(kinds, in.Kind)
	}
	if kinds[2] != ir.KMetaLoad {
		t.Fatalf("third lookup rewritten: %v", kinds)
	}
}

// Regression companion: a metaload clobbering the *address* register of
// a cached entry must evict it — r0 no longer names the same pointer.
func TestCSEMetaLoadsEvictsClobberedAddress(t *testing.T) {
	f := &ir.Func{Name: "t"}
	for i := 0; i < 8; i++ {
		f.NewReg(ir.ClassPtr)
	}
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 1, DstBndR: 2},
		// Clobbers r0, the cached key's address register.
		{Kind: ir.KMetaLoad, A: ir.R(4), DstBaseR: 0, DstBndR: 5},
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 6, DstBndR: 7},
		{Kind: ir.KRet},
	}}}
	if n := CSEMetaLoads(f); n != 0 {
		t.Fatalf("merged %d metaloads whose address register was redefined", n)
	}
}

// The merged movs must read live registers: when the second load's base
// destination equals the cached bound register, emitting base-first
// would clobber the bound copy's source.
func TestCSEMetaLoadsMovOrdering(t *testing.T) {
	f := &ir.Func{Name: "t"}
	for i := 0; i < 4; i++ {
		f.NewReg(ir.ClassPtr)
	}
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 1, DstBndR: 2},
		// DstBaseR == cached bound (r2): the bound mov must come first.
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 2, DstBndR: 3},
		{Kind: ir.KRet},
	}}}
	if n := CSEMetaLoads(f); n != 1 {
		t.Fatalf("merged %d, want 1", n)
	}
	insts := f.Blocks[0].Insts
	// Expected: metaload; mov r3 <- r2; mov r2 <- r1; ret.
	if insts[1].Kind != ir.KMov || insts[1].Dst != 3 || insts[1].A != ir.R(2) ||
		insts[2].Kind != ir.KMov || insts[2].Dst != 2 || insts[2].A != ir.R(1) {
		t.Fatalf("movs mis-ordered: %v / %v", insts[1].String(), insts[2].String())
	}
}

// A fully swapped destination pair would need a scratch register; the
// pass must keep the lookup rather than emit clobbering movs.
func TestCSEMetaLoadsSwappedPairNotMerged(t *testing.T) {
	f := &ir.Func{Name: "t"}
	for i := 0; i < 3; i++ {
		f.NewReg(ir.ClassPtr)
	}
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 1, DstBndR: 2},
		{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 2, DstBndR: 1},
		{Kind: ir.KRet},
	}}}
	if n := CSEMetaLoads(f); n != 0 {
		t.Fatalf("merged a swap requiring a scratch register")
	}
	if f.Blocks[0].Insts[1].Kind != ir.KMetaLoad {
		t.Fatal("swapped-pair lookup was rewritten")
	}
}

// Regression: ConstFold used to fold a constant-operand KGEP carrying
// Shrink=true into a bare KConst, discarding the §3.1 sub-object
// narrowing marker before instrumentation could see it.
func TestConstFoldKeepsShrinkGEP(t *testing.T) {
	f := buildFunc(2,
		ir.Inst{Kind: ir.KGEP, Dst: 0, A: ir.CI(1000), B: ir.CI(0), Size: 1,
			C: ir.CI(8), Shrink: true, ShrinkLen: 8},
		ir.Inst{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(0), Mem: ir.MemI64},
	)
	if n := ConstFold(f); n != 0 {
		t.Fatalf("folded %d shrinking GEPs", n)
	}
	in := f.Blocks[0].Insts[0]
	if in.Kind != ir.KGEP || !in.Shrink || in.ShrinkLen != 8 {
		t.Fatalf("shrink marker lost: %v", in.String())
	}

	// A non-shrinking constant GEP still folds.
	f = buildFunc(2,
		ir.Inst{Kind: ir.KGEP, Dst: 0, A: ir.CI(1000), B: ir.CI(2), Size: 4, C: ir.CI(8)},
		ir.Inst{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(0), Mem: ir.MemI64},
	)
	if n := ConstFold(f); n != 1 {
		t.Fatalf("plain const GEP not folded")
	}
	if in := f.Blocks[0].Insts[0]; in.Kind != ir.KConst || in.A.Int != 1016 {
		t.Fatalf("folded to %v", in.String())
	}
}

// Dead metadata-load removal: enabled only in global mode, and only when
// both destination registers are unread.
func TestDeadMetaLoadElim(t *testing.T) {
	mk := func() *ir.Func {
		f := &ir.Func{Name: "t"}
		for i := 0; i < 4; i++ {
			f.NewReg(ir.ClassPtr)
		}
		f.Blocks = []*ir.Block{{Insts: []ir.Inst{
			{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 1, DstBndR: 2}, // dead
			{Kind: ir.KMetaLoad, A: ir.R(0), DstBaseR: 3, DstBndR: 2}, // r3 read below
			{Kind: ir.KStore, A: ir.GV("g", 0), B: ir.R(3), Mem: ir.MemI64},
			{Kind: ir.KRet},
		}}}
		return f
	}
	f := mk()
	removed, deadML := deadCodeElim(f, true)
	if removed != 0 || deadML != 1 {
		t.Fatalf("removed=%d deadML=%d, want 0/1", removed, deadML)
	}
	if f.Blocks[0].Insts[0].Kind != ir.KMetaLoad || f.Blocks[0].Insts[0].DstBaseR != 3 {
		t.Fatalf("wrong metaload removed: %v", f.Blocks[0].Insts[0].String())
	}
	// Local-only mode keeps every metaload.
	f = mk()
	if _, deadML := deadCodeElim(f, false); deadML != 0 {
		t.Fatal("local DCE removed a metaload")
	}
}
