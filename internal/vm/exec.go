package vm

import (
	"fmt"
	"math"

	"softbound/internal/ir"
	"softbound/internal/meta"
)

// Simulated x86 instruction costs per IR operation. Metadata costs come
// from the facility (paper §5.1).
const (
	costALU    = 1
	costMem    = 1
	costBr     = 1
	costCondBr = 2
	costCall   = 3
	costRet    = 3
	costCheck  = 3
	// costTemporalCheck models the CETS lock-and-key sequence a checked
	// dereference adds: load the lock word, compare against the key,
	// branch. Charged only for checks carrying temporal operands.
	costTemporalCheck = 3
)

// eval resolves an operand against the current frame. A malformed
// operand kind is a typed RuntimeError delivered by panic (the hot
// signature stays a plain uint64); the engine loops convert it back to
// an ordinary error via recoverRuntime.
func (v *VM) eval(f *frame, val ir.Value) uint64 {
	switch val.Kind {
	case ir.VReg:
		return f.regs[val.Reg]
	case ir.VConstInt:
		return uint64(val.Int)
	case ir.VConstFloat:
		return math.Float64bits(val.Float)
	case ir.VGlobal:
		return v.globalAddrs[val.Sym] + uint64(val.Off)
	case ir.VFunc:
		return v.funcAddrs[val.Sym]
	}
	panic(&RuntimeError{Msg: fmt.Sprintf("unknown operand kind %d in %s", val.Kind, f.fn.Name)})
}

// recoverRuntime converts a panicked *RuntimeError (raised by eval on a
// malformed operand) into the returned error; any other panic value is
// re-raised untouched.
func recoverRuntime(errp *error) {
	if r := recover(); r != nil {
		re, ok := r.(*RuntimeError)
		if !ok {
			panic(r)
		}
		*errp = re
	}
}

// loop runs until the outermost frame returns, exit() is called, or an
// error occurs.
func (v *VM) loop() (err error) {
	defer recoverRuntime(&err)
	for !v.halted && len(v.stack) > 0 {
		if err := v.step(); err != nil {
			// Attach the faulting site for diagnostics; callers unwrap
			// with errors.As to classify the failure.
			if f := &v.stack[len(v.stack)-1]; len(f.fn.Blocks) > f.block &&
				f.ip < len(f.fn.Blocks[f.block].Insts) {
				in := &f.fn.Blocks[f.block].Insts[f.ip]
				return fmt.Errorf("at %s b%d#%d [%s]: %w",
					f.fn.Name, f.block, f.ip, in.String(), err)
			}
			return err
		}
	}
	return nil
}

// deadlinePollMask sets how often the step loop polls the context: every
// 4096 steps, cheap enough to be noise yet bounding deadline-detection
// latency to microseconds of simulated work.
const deadlinePollMask = 4095

func (v *VM) step() error {
	v.steps++
	if v.steps > v.limit {
		return &Trap{Code: TrapStepLimit, Cause: &RuntimeError{Msg: fmt.Sprintf(
			"step limit (%d) exceeded (possible runaway program)", v.limit)}}
	}
	if v.steps&deadlinePollMask == 0 && v.ctx != nil && v.ctx.Err() != nil {
		return &Trap{Code: TrapDeadline, Cause: &RuntimeError{Msg: fmt.Sprintf(
			"deadline exceeded after %d steps: %v", v.steps, v.ctx.Err())}}
	}
	f := &v.stack[len(v.stack)-1]
	blk := f.fn.Blocks[f.block]
	if f.ip >= len(blk.Insts) {
		return &RuntimeError{Msg: fmt.Sprintf("fell off block b%d in %s", f.block, f.fn.Name)}
	}
	in := &blk.Insts[f.ip]
	v.stats.Insts++

	switch in.Kind {
	case ir.KConst, ir.KMov:
		f.regs[in.Dst] = v.eval(f, in.A)
		v.stats.SimInsts += costALU

	case ir.KBin:
		r, err := v.execBin(f, in)
		if err != nil {
			return err
		}
		f.regs[in.Dst] = r
		v.stats.SimInsts += costALU

	case ir.KUn:
		f.regs[in.Dst] = unOp(f.regs[in.Dst], v.eval(f, in.A), in)
		v.stats.SimInsts += costALU

	case ir.KCmp:
		f.regs[in.Dst] = v.execCmp(f, in)
		v.stats.SimInsts += costALU

	case ir.KConv:
		f.regs[in.Dst] = execConv(v.eval(f, in.A), in)
		v.stats.SimInsts += costALU

	case ir.KAlloca:
		f.regs[in.Dst] = f.fp + uint64(in.C.Int)
		if v.cfg.Checker != nil {
			v.cfg.Checker.OnAlloc(f.regs[in.Dst], uint64(in.Size), "stack")
		}
		v.stats.SimInsts += costALU

	case ir.KLoad:
		addr := v.eval(f, in.A)
		if v.cfg.Checker != nil {
			if err := v.cfg.Checker.OnLoad(addr, uint64(in.Mem.Size())); err != nil {
				return err
			}
		}
		val, err := v.loadMem(addr, in.Mem)
		if err != nil {
			return err
		}
		f.regs[in.Dst] = val
		v.stats.Loads++
		if in.Mem == ir.MemPtr {
			v.stats.PtrLoads++
		}
		v.stats.SimInsts += costMem

	case ir.KStore:
		addr := v.eval(f, in.A)
		if v.cfg.Checker != nil {
			if err := v.cfg.Checker.OnStore(addr, uint64(in.Mem.Size())); err != nil {
				return err
			}
		}
		val := v.eval(f, in.B)
		if err := v.storeMem(addr, val, in.Mem); err != nil {
			return err
		}
		v.stats.Stores++
		if in.Mem == ir.MemPtr {
			v.stats.PtrStores++
			// Fault-injection surface: flip bits in the committed pointer
			// word when the injector schedules it.
			if v.cfg.PtrStoreFault != nil {
				if mask := v.cfg.PtrStoreFault(addr, val); mask != 0 {
					_ = v.mem.WriteU64(addr, val^mask)
				}
			}
		}
		v.stats.SimInsts += costMem

	case ir.KGEP:
		base := v.eval(f, in.A)
		idx := v.eval(f, in.B)
		f.regs[in.Dst] = base + idx*uint64(in.Size) + uint64(in.C.Int)
		v.stats.SimInsts += costALU

	case ir.KCheck:
		ptr := v.eval(f, in.A)
		base := v.eval(f, in.Base)
		bound := v.eval(f, in.Bound)
		if in.CheckK == ir.CheckCall {
			v.stats.Checks++
			v.stats.SimInsts += v.cfg.CheckCost
			v.stats.CallChecks++
			// Function pointers use the base==ptr==bound encoding
			// (paper §5.2 "function pointers"); they carry no temporal
			// operands — functions are never deallocated.
			if base != ptr || bound != ptr || v.funcByAddr(ptr) == nil {
				return &SpatialViolation{Kind: in.CheckK, Ptr: ptr, Base: base,
					Bound: bound, Func: f.fn.Name}
			}
			f.ip++
			return nil
		}
		var key, lock uint64
		if in.TMeta {
			key = v.eval(f, in.Key)
			lock = v.eval(f, in.Lock)
		}
		if err := v.checkAccess(f.fn.Name, in.CheckK, ptr, base, bound,
			uint64(in.AccessSize), in.TMeta, key, lock); err != nil {
			return err
		}

	case ir.KMetaLoad:
		addr := v.eval(f, in.A)
		e := v.fac.Lookup(addr)
		f.regs[in.DstBaseR] = e.Base
		f.regs[in.DstBndR] = e.Bound
		if in.TMeta {
			f.regs[in.DstKeyR] = e.Key
			f.regs[in.DstLockR] = e.Lock
		}
		v.stats.MetaLoads++
		v.stats.SimInsts += uint64(v.fac.Costs().Lookup)

	case ir.KMetaStore:
		addr := v.eval(f, in.A)
		ent := meta.Entry{
			Base:  v.eval(f, in.SrcBase),
			Bound: v.eval(f, in.SrcBound),
		}
		if in.TMeta {
			ent.Key = v.eval(f, in.SrcKey)
			ent.Lock = v.eval(f, in.SrcLock)
		}
		v.fac.Update(addr, ent)
		v.stats.MetaStores++
		v.stats.SimInsts += uint64(v.fac.Costs().Update)

	case ir.KMetaClear:
		addr := v.eval(f, in.A)
		size := v.eval(f, in.MemSize)
		v.fac.Clear(addr, size)
		v.stats.MetaClears++
		v.stats.SimInsts += 2 * (size/8 + 1)

	case ir.KBr:
		f.block = in.Target
		f.ip = 0
		v.stats.SimInsts += costBr
		return nil

	case ir.KCondBr:
		if v.eval(f, in.A) != 0 {
			f.block = in.Target
		} else {
			f.block = in.Else
		}
		f.ip = 0
		v.stats.SimInsts += costCondBr
		return nil

	case ir.KCall:
		return v.execCall(f, in)

	case ir.KRet:
		return v.execRet(f, in)

	case ir.KUnreachable:
		return &RuntimeError{Msg: "reached unreachable code in " + f.fn.Name}

	default:
		return &RuntimeError{Msg: fmt.Sprintf("unknown instruction kind %v", in.Kind)}
	}
	f.ip++
	return nil
}

// checkAccess is the dereference check both engines share for load and
// store checks (CheckCall keeps its own encoding check): count and charge
// the spatial check, then — for temporal checks — verify the lock-and-key
// BEFORE the spatial compare, so a revoked allocation traps as
// temporal-violation even when its stale bounds still bracket the access.
// Keeping one implementation is what holds the engine-differential gates
// to bit-identical traps and statistics.
func (v *VM) checkAccess(fname string, kind ir.CheckKind, ptr, base, bound, size uint64,
	tmeta bool, key, lock uint64) error {
	v.stats.Checks++
	v.stats.SimInsts += v.cfg.CheckCost
	switch kind {
	case ir.CheckLoad:
		v.stats.LoadChecks++
	case ir.CheckStore:
		v.stats.StoreChecks++
	}
	if tmeta {
		v.stats.TemporalChecks++
		v.stats.SimInsts += costTemporalCheck
		if !v.lockLive(key, lock) {
			return &TemporalViolation{Kind: kind, Ptr: ptr, Key: key, Lock: lock, Func: fname}
		}
	}
	if ptr < base || ptr+size > bound {
		return &SpatialViolation{Kind: kind, Ptr: ptr, Base: base,
			Bound: bound, Size: size, Func: fname}
	}
	return nil
}

func (v *VM) loadMem(addr uint64, mt ir.MemType) (uint64, error) {
	switch mt {
	case ir.MemI8:
		b, err := v.mem.ReadU8(addr)
		return uint64(int64(int8(b))), err
	case ir.MemU8:
		b, err := v.mem.ReadU8(addr)
		return uint64(b), err
	case ir.MemI16:
		x, err := v.mem.ReadU16(addr)
		return uint64(int64(int16(x))), err
	case ir.MemU16:
		x, err := v.mem.ReadU16(addr)
		return uint64(x), err
	case ir.MemI32:
		x, err := v.mem.ReadU32(addr)
		return uint64(int64(int32(x))), err
	case ir.MemU32:
		x, err := v.mem.ReadU32(addr)
		return uint64(x), err
	case ir.MemF32:
		x, err := v.mem.ReadU32(addr)
		return math.Float64bits(float64(math.Float32frombits(x))), err
	case ir.MemF64, ir.MemI64, ir.MemPtr:
		return v.mem.ReadU64(addr)
	}
	return 0, &RuntimeError{Msg: "bad memory type"}
}

func (v *VM) storeMem(addr, val uint64, mt ir.MemType) error {
	switch mt {
	case ir.MemI8, ir.MemU8:
		return v.mem.WriteU8(addr, byte(val))
	case ir.MemI16, ir.MemU16:
		return v.mem.WriteU16(addr, uint16(val))
	case ir.MemI32, ir.MemU32:
		return v.mem.WriteU32(addr, uint32(val))
	case ir.MemF32:
		f := math.Float64frombits(val)
		return v.mem.WriteU32(addr, math.Float32bits(float32(f)))
	case ir.MemF64, ir.MemI64, ir.MemPtr:
		return v.mem.WriteU64(addr, val)
	}
	return &RuntimeError{Msg: "bad memory type"}
}

// wrapInt truncates v to width bits then extends per signedness.
func wrapInt(v uint64, width int, signed bool) uint64 {
	if width == 0 || width >= 64 {
		return v
	}
	mask := (uint64(1) << uint(width)) - 1
	v &= mask
	if signed && v&(1<<uint(width-1)) != 0 {
		v |= ^mask
	}
	return v
}

func floatOp(a, b uint64, width int, op func(x, y float64) float64) uint64 {
	x, y := math.Float64frombits(a), math.Float64frombits(b)
	r := op(x, y)
	if width == 32 {
		r = float64(float32(r))
	}
	return math.Float64bits(r)
}

func (v *VM) execBin(f *frame, in *ir.Inst) (uint64, error) {
	return binOp(v.eval(f, in.A), v.eval(f, in.B), in, f.fn.Name)
}

// unOp applies a unary operator; an unknown op leaves the destination
// unchanged (old), matching the reference dispatch.
func unOp(old, a uint64, in *ir.Inst) uint64 {
	switch in.Op {
	case ir.OpNeg:
		return wrapInt(-a, in.IntWidth, in.Signed)
	case ir.OpNot:
		return wrapInt(^a, in.IntWidth, in.Signed)
	case ir.OpFNeg:
		return floatOp(a, 0, in.IntWidth, func(x, _ float64) float64 { return -x })
	}
	return old
}

// binOp applies a binary operator to pre-evaluated operands; both
// engines share it so arithmetic semantics cannot drift.
func binOp(a, b uint64, in *ir.Inst, fname string) (uint64, error) {
	switch in.Op {
	case ir.OpFAdd:
		return floatOp(a, b, in.IntWidth, func(x, y float64) float64 { return x + y }), nil
	case ir.OpFSub:
		return floatOp(a, b, in.IntWidth, func(x, y float64) float64 { return x - y }), nil
	case ir.OpFMul:
		return floatOp(a, b, in.IntWidth, func(x, y float64) float64 { return x * y }), nil
	case ir.OpFDiv:
		return floatOp(a, b, in.IntWidth, func(x, y float64) float64 { return x / y }), nil
	}
	var r uint64
	switch in.Op {
	case ir.OpAdd:
		r = a + b
	case ir.OpSub:
		r = a - b
	case ir.OpMul:
		r = a * b
	case ir.OpDiv:
		if b == 0 {
			return 0, &RuntimeError{Msg: "division by zero in " + fname}
		}
		if in.Signed {
			r = uint64(int64(a) / int64(b))
		} else {
			r = a / b
		}
	case ir.OpRem:
		if b == 0 {
			return 0, &RuntimeError{Msg: "modulo by zero in " + fname}
		}
		if in.Signed {
			r = uint64(int64(a) % int64(b))
		} else {
			r = a % b
		}
	case ir.OpAnd:
		r = a & b
	case ir.OpOr:
		r = a | b
	case ir.OpXor:
		r = a ^ b
	case ir.OpShl:
		r = a << (b & 63)
	case ir.OpShr:
		if in.Signed {
			r = uint64(int64(a) >> (b & 63))
		} else {
			width := in.IntWidth
			if width == 0 {
				width = 64
			}
			// Logical shift of the width-masked value.
			if width < 64 {
				a &= (uint64(1) << uint(width)) - 1
			}
			r = a >> (b & 63)
		}
	default:
		return 0, &RuntimeError{Msg: "bad binary op"}
	}
	return wrapInt(r, in.IntWidth, in.Signed), nil
}

func (v *VM) execCmp(f *frame, in *ir.Inst) uint64 {
	return cmpOp(v.eval(f, in.A), v.eval(f, in.B), in)
}

// cmpOp applies a comparison predicate to pre-evaluated operands.
func cmpOp(a, b uint64, in *ir.Inst) uint64 {
	var res bool
	switch in.Pred {
	case ir.PredEQ:
		res = a == b
	case ir.PredNE:
		res = a != b
	case ir.PredLT:
		if in.Signed {
			res = int64(a) < int64(b)
		} else {
			res = a < b
		}
	case ir.PredLE:
		if in.Signed {
			res = int64(a) <= int64(b)
		} else {
			res = a <= b
		}
	case ir.PredGT:
		if in.Signed {
			res = int64(a) > int64(b)
		} else {
			res = a > b
		}
	case ir.PredGE:
		if in.Signed {
			res = int64(a) >= int64(b)
		} else {
			res = a >= b
		}
	default:
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		switch in.Pred {
		case ir.PredFEQ:
			res = x == y
		case ir.PredFNE:
			res = x != y
		case ir.PredFLT:
			res = x < y
		case ir.PredFLE:
			res = x <= y
		case ir.PredFGT:
			res = x > y
		case ir.PredFGE:
			res = x >= y
		}
	}
	if res {
		return 1
	}
	return 0
}

// execConv implements KConv per destination Mem and source ConvSrc.
func execConv(a uint64, in *ir.Inst) uint64 {
	switch in.Mem {
	case ir.MemF64, ir.MemF32:
		switch in.ConvSrc {
		case ir.MemF64, ir.MemF32:
			f := math.Float64frombits(a)
			if in.Mem == ir.MemF32 {
				f = float64(float32(f))
			}
			return math.Float64bits(f)
		default:
			var f float64
			if in.Signed {
				f = float64(int64(a))
			} else {
				f = float64(a)
			}
			if in.Mem == ir.MemF32 {
				f = float64(float32(f))
			}
			return math.Float64bits(f)
		}
	case ir.MemPtr:
		return a // integer reinterpreted as address
	default:
		// Destination is an integer type.
		if in.ConvSrc == ir.MemF64 || in.ConvSrc == ir.MemF32 {
			f := math.Float64frombits(a)
			if math.IsNaN(f) {
				return 0
			}
			// Clamp to avoid implementation-defined conversion.
			if f >= 9.22e18 {
				return wrapInt(uint64(math.MaxInt64), in.IntWidth, in.Signed)
			}
			if f <= -9.22e18 {
				minI := int64(math.MinInt64)
				return wrapInt(uint64(minI), in.IntWidth, in.Signed)
			}
			return wrapInt(uint64(int64(f)), in.IntWidth, in.Signed)
		}
		return wrapInt(a, in.IntWidth, in.Signed)
	}
}

// execCall dispatches direct, indirect, and builtin calls under the
// shadow-stack metadata ABI: the caller pushes a window of (base, bound)
// slots — slot 0 for return metadata, slot 1+i for argument i — and the
// callee pops slots by its *dynamic* parameter layout (paper §3.3), so
// indirect calls keep metadata even when the call site's static
// signature disagrees with the function actually reached.
func (v *VM) execCall(f *frame, in *ir.Inst) error {
	v.stats.Calls++
	v.stats.SimInsts += costCall + uint64(len(in.Args)) + 2*uint64(len(in.Shadow))
	if in.TMeta {
		// Temporal calls push key and lock alongside each slot's bounds.
		v.stats.SimInsts += 2 * uint64(len(in.Shadow))
	}

	args := make([]uint64, len(in.Args))
	for i, a := range in.Args {
		args[i] = v.eval(f, a)
	}

	var callee *ir.Func
	var name string
	switch in.Callee.Kind {
	case ir.VFunc:
		name = in.Callee.Sym
		callee = v.mod.Lookup(name)
	case ir.VReg:
		addr := f.regs[in.Callee.Reg]
		callee = v.funcByAddr(addr)
		if callee == nil {
			return &WildJumpError{Addr: addr, Func: f.fn.Name}
		}
		name = callee.Name
	default:
		return &RuntimeError{Msg: "bad call target"}
	}

	if callee == nil {
		// Control-transfer builtins run before any window is pushed, so
		// setjmp checkpoints never capture a transient builtin window.
		switch name {
		case "setjmp", "_setjmp":
			return v.doSetjmp(f, in, args)
		case "longjmp", "_longjmp":
			return v.doLongjmp(f, args)
		}
	}

	// Push and fill this call's shadow window in the caller's frame.
	wbase := v.pushShadow(len(in.Args))
	for _, s := range in.Shadow {
		if s.Arg >= 0 && s.Arg < len(in.Args) {
			e := meta.Entry{
				Base:  v.eval(f, s.Base),
				Bound: v.eval(f, s.Bound),
			}
			if s.Temporal {
				e.Key = v.eval(f, s.Key)
				e.Lock = v.eval(f, s.Lock)
			}
			v.shadow[wbase+1+s.Arg] = e
		}
	}

	if callee == nil {
		// Builtin (libc/runtime) call: its wrappers read argument
		// metadata straight from the window (a zero slot means "no
		// metadata flowed here"); the window pops when it returns.
		metas := v.shadow[wbase+1 : wbase+1+len(args)]
		ret, retMeta, err := v.callBuiltin(name, f, in, args, metas)
		if err != nil {
			return err
		}
		if in.Dst != ir.NoReg {
			f.regs[in.Dst] = ret
		}
		if in.DstBase != ir.NoReg {
			f.regs[in.DstBase] = retMeta.Base
			f.regs[in.DstBound] = retMeta.Bound
			if in.TMeta {
				f.regs[in.DstKey] = retMeta.Key
				f.regs[in.DstLock] = retMeta.Lock
			}
		}
		v.shadow = v.shadow[:wbase]
		f.ip++
		return nil
	}

	// User function. Fixed arguments seed parameter registers; for
	// variadic callees (paper §5.2) the extras go to the frame's vararg
	// area with their metadata aliasing the window slots, which stay
	// live (and immutable) for the callee's whole activation.
	callArgs := args
	var varargs []uint64
	var varMetas []meta.Entry
	if callee.Variadic && len(args) > callee.OrigParams {
		varargs = args[callee.OrigParams:]
		varMetas = v.shadow[wbase+1+callee.OrigParams : wbase+1+len(args)]
		callArgs = args[:callee.OrigParams]
	}
	if callee.Transformed && len(callArgs) > callee.OrigParams {
		// Excess arguments at a mismatched non-variadic site must not
		// spill into the appended metadata parameter registers.
		callArgs = callArgs[:callee.OrigParams]
	}
	f.ip++ // resume after the call upon return
	retKey, retLock := ir.NoReg, ir.NoReg
	if in.TMeta && in.DstBase != ir.NoReg {
		retKey, retLock = in.DstKey, in.DstLock
	}
	if err := v.pushFrame(callee, callArgs, in.Dst, in.DstBase, in.DstBound, retKey, retLock); err != nil {
		return err
	}
	top := &v.stack[len(v.stack)-1]
	top.shadowBase = wbase
	v.seedShadowParams(top, len(args))
	top.varargs = varargs
	top.varMetas = varMetas
	return nil
}

func (v *VM) execRet(f *frame, in *ir.Inst) error {
	v.stats.SimInsts += costRet
	var retVal uint64
	if in.HasVal {
		retVal = v.eval(f, in.A)
	}
	if in.RetMetaValid {
		// Return metadata travels through slot 0 of the returning
		// frame's shadow window, never inline (paper §3.3).
		v.stats.SimInsts += 2
		if in.TMeta {
			v.stats.SimInsts += 2
		}
		if f.shadowBase < len(v.shadow) {
			e := meta.Entry{
				Base:  v.eval(f, in.RetBase),
				Bound: v.eval(f, in.RetBound),
			}
			if in.TMeta {
				e.Key = v.eval(f, in.RetKey)
				e.Lock = v.eval(f, in.RetLock)
			}
			v.shadow[f.shadowBase] = e
		}
	}
	popped, err := v.popFrame()
	if err != nil {
		return err
	}
	if popped == nil {
		return nil // control was hijacked; a new frame is active
	}
	if v.cfg.Checker != nil {
		for _, slot := range popped.fn.Allocas {
			v.cfg.Checker.OnFree(popped.fp + uint64(slot.Offset))
		}
	}
	if len(v.stack) == 0 {
		v.shadow = v.shadow[:popped.shadowBase]
		if in.HasVal {
			v.exitCode = int64(retVal)
		}
		v.halted = true
		return nil
	}
	caller := &v.stack[len(v.stack)-1]
	if popped.retDst != ir.NoReg && in.HasVal {
		caller.regs[popped.retDst] = retVal
	}
	if popped.retBase != ir.NoReg {
		// The caller pops the return-metadata slot.
		var e meta.Entry
		if popped.shadowBase < len(v.shadow) {
			e = v.shadow[popped.shadowBase]
		}
		caller.regs[popped.retBase] = e.Base
		caller.regs[popped.retBound] = e.Bound
		if popped.retKey != ir.NoReg {
			caller.regs[popped.retKey] = e.Key
			caller.regs[popped.retLock] = e.Lock
		}
	}
	v.shadow = v.shadow[:popped.shadowBase]
	return nil
}
