package vm

import (
	"errors"
	"testing"

	"softbound/internal/ir"
)

// Regression test (ISSUE 7): realloc used to discard the errors from the
// ReadBytes/WriteBytes pair that copies the old contents into the new
// block, silently returning a half-initialized block with full bounds. A
// copy that faults must surface as a typed memory-fault trap instead.
//
// Allocator blocks are always mapped in normal operation, so the test
// forges the inconsistency directly: it registers a "live" block whose
// recorded size extends past the mapped heap segment, making the copy's
// read fault.
func TestReallocCopyFaultPropagates(t *testing.T) {
	f := &ir.Func{Name: "main", HasRet: true, RetClass: ir.ClassInt}
	f.Blocks = []*ir.Block{{Insts: []ir.Inst{
		{Kind: ir.KRet, HasVal: true, A: ir.CI(0)},
	}}}
	v, err := New(buildModule(f), Config{})
	if err != nil {
		t.Fatal(err)
	}

	p := v.mem.heapEnd - 16
	v.alloc.sizes[p] = 64 // claims 64 bytes; only 16 are mapped

	_, _, err = v.callBuiltin("realloc", nil, nil, []uint64{p, 64}, nil)
	if err == nil {
		t.Fatal("realloc with a faulting copy returned success")
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("realloc copy fault surfaced as %T (%v), want *FaultError", err, err)
	}
	if code := CodeOf(Classify(err)); code != TrapMemFault {
		t.Fatalf("trap code = %q, want %q", code, TrapMemFault)
	}
}
