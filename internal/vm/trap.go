package vm

import "errors"

// TrapCode is the machine-readable classification of a VM failure. Every
// error a VM run can return carries exactly one code, so harnesses and
// BENCH.json consumers can dispatch on failure class without parsing
// message strings. The taxonomy is the fail-closed contract's vocabulary
// (DESIGN.md "Failure model").
type TrapCode string

// Trap codes.
const (
	// TrapSpatial is a SoftBound bounds-check failure (SpatialViolation).
	TrapSpatial TrapCode = "spatial-violation"
	// TrapTemporal is a CETS lock-and-key check failure: the access went
	// through a pointer whose allocation has been freed (heap), popped
	// (stack frame), or superseded (realloc) — or whose temporal metadata
	// is absent, which fails closed (TemporalViolation). Non-retryable
	// like all detections, and like them it never trips serve breakers.
	TrapTemporal TrapCode = "temporal-violation"
	// TrapBaseline is a detection by a baseline Checker (BaselineViolation).
	TrapBaseline TrapCode = "baseline-violation"
	// TrapMemFault is an access to unmapped simulated memory (FaultError).
	TrapMemFault TrapCode = "memory-fault"
	// TrapWildJump is a call through a corrupted function pointer: the
	// callee operand does not decode to a function-table address
	// (WildJumpError). Memory-fault family — control left the program
	// text — but distinct, so breakers and BENCH.json consumers can
	// tell a hijacked call site from a stray data access.
	TrapWildJump TrapCode = "wild-jump"
	// TrapOOM is the heap-size cap firing (Config.HeapLimit exceeded).
	TrapOOM TrapCode = "oom"
	// TrapStepLimit is the instruction-step budget firing.
	TrapStepLimit TrapCode = "step-limit"
	// TrapDeadline is the wall-clock deadline (context) firing.
	TrapDeadline TrapCode = "deadline"
	// TrapStackOverflow is stack-segment or stack-depth exhaustion.
	TrapStackOverflow TrapCode = "stack-overflow"
	// TrapRuntime is any other execution error (wild jump, division by
	// zero, smashed stack, undefined function).
	TrapRuntime TrapCode = "runtime-error"
	// TrapPanic marks a recovered Go panic; the VM never produces it
	// itself, but the bench harness records contained cell panics with it.
	TrapPanic TrapCode = "panic"
)

// Retryable reports whether a failure of this class may be transient and
// is therefore eligible for a bounded retry. Only contained Go panics
// qualify: detections (spatial/baseline), resource-budget traps (oom,
// step-limit, stack-overflow), and genuine runtime faults are
// deterministic and replay identically, and a VM deadline trap means the
// program really ran past its time budget — rerunning it just doubles the
// wall clock to the same answer. This is the bench harness's containment
// rule (PR 3), shared with the execution service's retry policy.
func (c TrapCode) Retryable() bool { return c == TrapPanic }

// Trap is the typed failure every VM entry point returns: a machine-
// readable code plus the underlying cause. Unwrap exposes the cause, so
// errors.As against *SpatialViolation, *FaultError, etc. keeps working.
type Trap struct {
	Code  TrapCode
	Cause error
}

func (t *Trap) Error() string { return string(t.Code) + ": " + t.Cause.Error() }

// Unwrap exposes the underlying cause for errors.As / errors.Is.
func (t *Trap) Unwrap() error { return t.Cause }

// Classify wraps err in a Trap whose code matches the innermost typed
// error. It is idempotent (already-trapped errors pass through) and
// nil-preserving, so every error path out of Run/CallFunction can funnel
// through it.
func Classify(err error) error {
	if err == nil {
		return nil
	}
	var t *Trap
	if errors.As(err, &t) {
		return err
	}
	return &Trap{Code: codeFor(err), Cause: err}
}

func codeFor(err error) TrapCode {
	var tv *TemporalViolation
	if errors.As(err, &tv) {
		return TrapTemporal
	}
	var sv *SpatialViolation
	if errors.As(err, &sv) {
		return TrapSpatial
	}
	var bv *BaselineViolation
	if errors.As(err, &bv) {
		return TrapBaseline
	}
	var fe *FaultError
	if errors.As(err, &fe) {
		return TrapMemFault
	}
	var wj *WildJumpError
	if errors.As(err, &wj) {
		return TrapWildJump
	}
	return TrapRuntime
}

// CodeOf extracts the trap code from an error ("" for nil). Errors that
// did not originate in a Trap are classified on the fly, so callers can
// always rely on a non-empty code for a non-nil error.
func CodeOf(err error) TrapCode {
	if err == nil {
		return ""
	}
	var t *Trap
	if errors.As(err, &t) {
		return t.Code
	}
	return codeFor(err)
}
