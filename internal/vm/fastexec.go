package vm

import (
	"fmt"

	"softbound/internal/ir"
	"softbound/internal/meta"
)

// This file is the fast engine's execution loop over the decoded form
// (decode.go). It must be observationally identical to the reference
// loop in exec.go: same exit codes, same traps (including *where* a step
// limit lands inside a fused superinstruction), and bit-identical
// modeled statistics. The differential suite enforces this.
//
// The speed comes from four sources:
//   - pre-decoded dispatch: no per-step block/ip bookkeeping, no operand
//     kind switches, flat branch targets;
//   - superinstructions for the instrumentation's hot triples;
//   - batched accounting: Insts/SimInsts accumulate in locals and the
//     step-limit/deadline checks run as countdowns, flushed to the VM at
//     block/call/return/error boundaries;
//   - an allocation-free call path (pushFrame's slot pool plus per-VM
//     builtin scratch buffers).

// fastState is the batched accounting carried through one loopFast run.
type fastState struct {
	budget int64  // steps remaining before the step limit fires
	poll   int64  // steps until the next deadline poll
	insts  uint64 // Insts not yet flushed to v.stats
	sim    uint64 // SimInsts not yet flushed to v.stats
}

// flushFast commits the batched counters and synchronizes v.steps (the
// clock/time builtins and the deadline trap message read it).
func (v *VM) flushFast(st *fastState) {
	v.stats.Insts += st.insts
	v.stats.SimInsts += st.sim
	st.insts, st.sim = 0, 0
	v.steps = v.limit - uint64(st.budget)
}

// wrapFastErr attaches the faulting site, mirroring loop()'s wrapping.
// The fell-off sentinel has no source instruction and reports bare,
// exactly like the reference loop's out-of-range position.
func wrapFastErr(f *frame, d *dinst, err error) error {
	return wrapSiteErr(f.fn.Name, d, err)
}

// wrapSiteErr is wrapFastErr with the function name supplied directly,
// so the compiled engine can prebuild wrapped errors for sites whose
// failure is unconditional (unreachable, malformed) at compile time.
func wrapSiteErr(fname string, d *dinst, err error) error {
	if d.src == nil {
		return err
	}
	return fmt.Errorf("at %s b%d#%d [%s]: %w",
		fname, d.blk, d.ip, d.src.String(), err)
}

// fastCheck performs a non-call dereference check with reference-order
// statistics (the check is counted even when it fails). It resolves the
// decoded temporal operands, if any, and defers to the checkAccess
// implementation both engines share, so a temporal violation fires
// before the spatial compare exactly as in the reference loop.
func (v *VM) fastCheck(fname string, d *dinst, ptr, base, bound uint64, regs []uint64) error {
	var key, lock uint64
	if d.tmeta {
		key, lock = d.key.get(regs), d.lock.get(regs)
	}
	return v.checkAccess(fname, d.checkK, ptr, base, bound, d.asize, d.tmeta, key, lock)
}

// loopFast runs the decoded program until the outermost frame returns,
// exit() is called, or an error occurs.
func (v *VM) loopFast() (err error) {
	defer recoverRuntime(&err)
	st := fastState{
		budget: int64(v.limit) - int64(v.steps),
		poll:   int64(deadlinePollMask+1) - int64(v.steps&deadlinePollMask),
	}
	for !v.halted && len(v.stack) > 0 {
		f := &v.stack[len(v.stack)-1]
		df := f.df
		if df == nil || f.fip >= len(df.code) {
			v.flushFast(&st)
			return &RuntimeError{Msg: "no decoded code at resume point in " + f.fn.Name}
		}
		code := df.code
		regs := f.regs
		fip := f.fip
	dispatch:
		for {
			d := &code[fip]
			n := int64(d.nsteps)
			if st.budget < n || st.poll <= 0 {
				f.fip = fip
				if err := v.fastSlow(f, d, &st); err != nil {
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}
				continue // poll serviced; budget covers d again
			}
			st.budget -= n
			st.poll -= n

			switch d.op {
			case dConst:
				st.insts++
				st.sim += costALU
				regs[d.dst] = d.a.imm
				fip++

			case dMov:
				st.insts++
				st.sim += costALU
				regs[d.dst] = regs[d.a.reg]
				fip++

			case dAdd:
				st.insts++
				st.sim += costALU
				regs[d.dst] = d.a.get(regs) + d.b.get(regs)
				fip++

			case dSub:
				st.insts++
				st.sim += costALU
				regs[d.dst] = d.a.get(regs) - d.b.get(regs)
				fip++

			case dMul:
				st.insts++
				st.sim += costALU
				regs[d.dst] = d.a.get(regs) * d.b.get(regs)
				fip++

			case dBin:
				st.insts++
				r, err := binOp(d.a.get(regs), d.b.get(regs), d.src, f.fn.Name)
				if err != nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}
				regs[d.dst] = r
				st.sim += costALU
				fip++

			case dUn:
				st.insts++
				regs[d.dst] = unOp(regs[d.dst], d.a.get(regs), d.src)
				st.sim += costALU
				fip++

			case dCmp:
				st.insts++
				regs[d.dst] = cmpOp(d.a.get(regs), d.b.get(regs), d.src)
				st.sim += costALU
				fip++

			case dConv:
				st.insts++
				regs[d.dst] = execConv(d.a.get(regs), d.src)
				st.sim += costALU
				fip++

			case dAlloca:
				st.insts++
				addr := f.fp + uint64(d.off)
				regs[d.dst] = addr
				if v.cfg.Checker != nil {
					v.cfg.Checker.OnAlloc(addr, uint64(d.size), "stack")
				}
				st.sim += costALU
				fip++

			case dLoad:
				st.insts++
				addr := d.a.get(regs)
				if v.cfg.Checker != nil {
					if err := v.cfg.Checker.OnLoad(addr, uint64(d.mem.Size())); err != nil {
						f.fip = fip
						v.flushFast(&st)
						return wrapFastErr(f, d, err)
					}
				}
				val, err := v.loadMem(addr, d.mem)
				if err != nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}
				regs[d.dst] = val
				v.stats.Loads++
				if d.mem == ir.MemPtr {
					v.stats.PtrLoads++
				}
				st.sim += costMem
				fip++

			case dStore:
				st.insts++
				addr := d.a.get(regs)
				if v.cfg.Checker != nil {
					if err := v.cfg.Checker.OnStore(addr, uint64(d.mem.Size())); err != nil {
						f.fip = fip
						v.flushFast(&st)
						return wrapFastErr(f, d, err)
					}
				}
				val := d.b.get(regs)
				if err := v.storeMem(addr, val, d.mem); err != nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}
				v.stats.Stores++
				if d.mem == ir.MemPtr {
					v.stats.PtrStores++
					if v.cfg.PtrStoreFault != nil {
						if mask := v.cfg.PtrStoreFault(addr, val); mask != 0 {
							_ = v.mem.WriteU64(addr, val^mask)
						}
					}
				}
				st.sim += costMem
				fip++

			case dGEP:
				st.insts++
				regs[d.dst] = d.a.get(regs) + d.b.get(regs)*uint64(d.size) + uint64(d.off)
				st.sim += costALU
				fip++

			case dCheck:
				st.insts++
				if err := v.fastCheck(f.fn.Name, d,
					d.a.get(regs), d.base.get(regs), d.bnd.get(regs), regs); err != nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}
				fip++

			case dCheckCall:
				st.insts++
				ptr := d.a.get(regs)
				base := d.base.get(regs)
				bound := d.bnd.get(regs)
				v.stats.Checks++
				v.stats.SimInsts += v.cfg.CheckCost
				v.stats.CallChecks++
				if base != ptr || bound != ptr || v.funcByAddr(ptr) == nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, &SpatialViolation{Kind: ir.CheckCall,
						Ptr: ptr, Base: base, Bound: bound, Func: f.fn.Name})
				}
				fip++

			case dMetaLoad:
				st.insts++
				addr := d.a.get(regs)
				var e meta.Entry
				if v.mcache != nil {
					e = v.mcache.Lookup(addr)
				} else {
					e = v.fac.Lookup(addr)
				}
				regs[d.dst] = e.Base
				regs[d.dst2] = e.Bound
				if d.dst3 != ir.NoReg {
					regs[d.dst3] = e.Key
					regs[d.dst4] = e.Lock
				}
				v.stats.MetaLoads++
				st.sim += v.lookupCost
				fip++

			case dMetaStore:
				st.insts++
				addr := d.a.get(regs)
				e := meta.Entry{Base: d.base.get(regs), Bound: d.bnd.get(regs)}
				if d.tmeta {
					e.Key, e.Lock = d.key.get(regs), d.lock.get(regs)
				}
				if v.mcache != nil {
					v.mcache.Update(addr, e)
				} else {
					v.fac.Update(addr, e)
				}
				v.stats.MetaStores++
				st.sim += v.updateCost
				fip++

			case dMetaClear:
				st.insts++
				addr := d.a.get(regs)
				size := d.b.get(regs)
				v.fac.Clear(addr, size)
				v.stats.MetaClears++
				st.sim += 2 * (size/8 + 1)
				fip++

			case dBr:
				st.insts++
				st.sim += costBr
				fip = int(d.target)

			case dCondBr:
				st.insts++
				st.sim += costCondBr
				if d.a.get(regs) != 0 {
					fip = int(d.target)
				} else {
					fip = int(d.elseT)
				}

			case dCall:
				f.fip = fip
				if err := v.execCallFast(f, d, &st); err != nil {
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}
				break dispatch // the active frame may have changed

			case dRet:
				st.insts++
				f.fip = fip
				if err := v.execRet(f, d.src); err != nil {
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}
				break dispatch

			case dGEPCheckLoad:
				// Components execute in reference order with per-
				// component accounting, so a mid-superinstruction trap
				// is indistinguishable from the unfused sequence.
				st.insts++
				st.sim += costALU
				t := d.a.get(regs) + d.b.get(regs)*uint64(d.size) + uint64(d.off)
				regs[d.dst] = t

				st.insts++
				if err := v.fastCheck(f.fn.Name, d,
					t, d.base.get(regs), d.bnd.get(regs), regs); err != nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}

				st.insts++
				if v.cfg.Checker != nil {
					if err := v.cfg.Checker.OnLoad(t, uint64(d.mem.Size())); err != nil {
						f.fip = fip
						v.flushFast(&st)
						return wrapFastErr(f, d, err)
					}
				}
				val, err := v.loadMem(t, d.mem)
				if err != nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}
				regs[d.dst2] = val
				v.stats.Loads++
				if d.mem == ir.MemPtr {
					v.stats.PtrLoads++
				}
				st.sim += costMem
				fip++

			case dGEPCheckStore:
				st.insts++
				st.sim += costALU
				t := d.a.get(regs) + d.b.get(regs)*uint64(d.size) + uint64(d.off)
				regs[d.dst] = t

				st.insts++
				if err := v.fastCheck(f.fn.Name, d,
					t, d.base.get(regs), d.bnd.get(regs), regs); err != nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}

				st.insts++
				if v.cfg.Checker != nil {
					if err := v.cfg.Checker.OnStore(t, uint64(d.mem.Size())); err != nil {
						f.fip = fip
						v.flushFast(&st)
						return wrapFastErr(f, d, err)
					}
				}
				val := d.args[0].get(regs)
				if err := v.storeMem(t, val, d.mem); err != nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}
				v.stats.Stores++
				if d.mem == ir.MemPtr {
					v.stats.PtrStores++
					if v.cfg.PtrStoreFault != nil {
						if mask := v.cfg.PtrStoreFault(t, val); mask != 0 {
							_ = v.mem.WriteU64(t, val^mask)
						}
					}
				}
				st.sim += costMem
				fip++

			case dCheckMetaLoad:
				st.insts++
				if err := v.fastCheck(f.fn.Name, d,
					d.a.get(regs), d.base.get(regs), d.bnd.get(regs), regs); err != nil {
					f.fip = fip
					v.flushFast(&st)
					return wrapFastErr(f, d, err)
				}

				st.insts++
				addr := d.b.get(regs)
				var e meta.Entry
				if v.mcache != nil {
					e = v.mcache.Lookup(addr)
				} else {
					e = v.fac.Lookup(addr)
				}
				regs[d.dst] = e.Base
				regs[d.dst2] = e.Bound
				if d.dst3 != ir.NoReg {
					regs[d.dst3] = e.Key
					regs[d.dst4] = e.Lock
				}
				v.stats.MetaLoads++
				st.sim += v.lookupCost
				fip++

			case dUnreachable:
				st.insts++
				f.fip = fip
				v.flushFast(&st)
				return wrapFastErr(f, d, &RuntimeError{
					Msg: "reached unreachable code in " + f.fn.Name})

			case dFellOff:
				// The reference engine charges the step but not Insts.
				f.fip = fip
				v.flushFast(&st)
				return &RuntimeError{Msg: fmt.Sprintf(
					"fell off block b%d in %s", d.blk, f.fn.Name)}

			default: // dBad
				st.insts++
				f.fip = fip
				v.flushFast(&st)
				return wrapFastErr(f, d, &RuntimeError{Msg: fmt.Sprintf(
					"malformed instruction in %s", f.fn.Name)})
			}
		}
	}
	v.flushFast(&st)
	return nil
}

// fastSlow services the two countdown events: the periodic deadline poll
// and the step limit. A nil return means the poll was serviced and the
// budget still covers d, so the caller re-dispatches; otherwise the trap
// (after executing any fused components the remaining budget allows, in
// reference order) comes back as the run's error.
func (v *VM) fastSlow(f *frame, d *dinst, st *fastState) error {
	if st.poll <= 0 {
		v.flushFast(st)
		if v.ctx != nil && v.ctx.Err() != nil {
			return &Trap{Code: TrapDeadline, Cause: &RuntimeError{Msg: fmt.Sprintf(
				"deadline exceeded after %d steps: %v", v.steps, v.ctx.Err())}}
		}
		for st.poll <= 0 {
			st.poll += deadlinePollMask + 1
		}
	}
	if st.budget < int64(d.nsteps) {
		return v.stepLimited(f, d, st)
	}
	return nil
}

// stepLimited fires the step limit at exactly the component the
// reference engine would trap on: a superinstruction entered with a
// partial budget executes (and accounts) its leading components first,
// and a bounds violation inside those components still wins over the
// limit, just as in the unfused sequence.
func (v *VM) stepLimited(f *frame, d *dinst, st *fastState) error {
	trap := func() error {
		return &Trap{Code: TrapStepLimit, Cause: &RuntimeError{Msg: fmt.Sprintf(
			"step limit (%d) exceeded (possible runaway program)", v.limit)}}
	}
	if st.budget <= 0 {
		return trap()
	}
	regs := f.regs
	switch d.op {
	case dGEPCheckLoad, dGEPCheckStore:
		st.budget--
		st.insts++
		st.sim += costALU
		t := d.a.get(regs) + d.b.get(regs)*uint64(d.size) + uint64(d.off)
		regs[d.dst] = t
		if st.budget == 0 {
			return trap()
		}
		st.budget--
		st.insts++
		if err := v.fastCheck(f.fn.Name, d, t, d.base.get(regs), d.bnd.get(regs), regs); err != nil {
			return err
		}
	case dCheckMetaLoad:
		st.budget--
		st.insts++
		if err := v.fastCheck(f.fn.Name, d,
			d.a.get(regs), d.base.get(regs), d.bnd.get(regs), regs); err != nil {
			return err
		}
	}
	return trap()
}

// execCallFast dispatches calls under the fast engine without heap
// allocation on the steady-state path: builtin arguments marshal into
// per-VM scratch, metadata rides the reusable shadow stack, and
// user-call arguments are written straight into the callee's register
// file (frames come from pushFrame's slot pool). On a successful builtin
// the caller's fip is advanced past the call; on a user call the new
// frame is ready to run. The caller reloads its frame state afterwards
// in all cases.
func (v *VM) execCallFast(f *frame, d *dinst, st *fastState) error {
	in := d.src
	st.insts++
	st.sim += costCall + uint64(len(in.Args)) + 2*uint64(len(d.shadow))
	if in.TMeta {
		// Temporal calls push key and lock alongside each slot's bounds.
		st.sim += 2 * uint64(len(d.shadow))
	}
	v.stats.Calls++

	var callee *dfunc
	if d.callee != nil {
		callee = d.callee
	} else if in.Callee.Kind == ir.VReg {
		addr := f.regs[in.Callee.Reg]
		fn := v.funcByAddr(addr)
		if fn == nil {
			return &WildJumpError{Addr: addr, Func: f.fn.Name}
		}
		callee = v.prog.funcs[fn]
	}

	if callee == nil {
		// Builtin call: marshal arguments into the reusable scratch
		// buffer; metadata goes through a shadow window like any call.
		name := in.Callee.Sym
		args := v.argScratch
		if cap(args) < len(d.args) {
			args = make([]uint64, 0, len(d.args)+8)
		}
		args = args[:0]
		for _, a := range d.args {
			args = append(args, a.get(f.regs))
		}
		v.argScratch = args

		switch name {
		case "setjmp", "_setjmp":
			// The shared checkpoint code records block/ip/fip; keep the
			// reference-engine coordinates in sync first. Dispatched
			// before the window push, like the reference engine.
			f.block, f.ip = int(d.blk), int(d.ip)
			return v.doSetjmp(f, in, args)
		case "longjmp", "_longjmp":
			return v.doLongjmp(f, args)
		}

		wbase := v.pushShadow(len(in.Args))
		regs := f.regs
		for _, s := range d.shadow {
			if int(s.arg) < len(in.Args) {
				e := meta.Entry{
					Base:  s.base.get(regs),
					Bound: s.bnd.get(regs),
				}
				if s.tmeta {
					e.Key = s.key.get(regs)
					e.Lock = s.lock.get(regs)
				}
				v.shadow[wbase+1+int(s.arg)] = e
			}
		}
		metas := v.shadow[wbase+1 : wbase+1+len(args)]

		// Builtins observe v.steps (clock/time) and add their own
		// modeled costs; commit the batched state first.
		v.flushFast(st)
		ret, retMeta, err := v.callBuiltin(name, f, in, args, metas)
		if err != nil {
			return err
		}
		if in.Dst != ir.NoReg {
			f.regs[in.Dst] = ret
		}
		if in.DstBase != ir.NoReg {
			f.regs[in.DstBase] = retMeta.Base
			f.regs[in.DstBound] = retMeta.Bound
			if in.TMeta {
				f.regs[in.DstKey] = retMeta.Key
				f.regs[in.DstLock] = retMeta.Lock
			}
		}
		v.shadow = v.shadow[:wbase]
		f.fip++
		return nil
	}

	// User call. Fill the shadow window from the caller's registers
	// before the frame switch; the callee then pops slots by its own
	// parameter layout, whatever the call site's static signature was.
	fn := callee.fn
	nargs := len(d.args)
	wbase := v.pushShadow(nargs)
	{
		regs := f.regs
		for _, s := range d.shadow {
			if int(s.arg) < nargs {
				e := meta.Entry{
					Base:  s.base.get(regs),
					Bound: s.bnd.get(regs),
				}
				if s.tmeta {
					e.Key = s.key.get(regs)
					e.Lock = s.lock.get(regs)
				}
				v.shadow[wbase+1+int(s.arg)] = e
			}
		}
	}

	ci := len(v.stack) - 1
	f.fip++ // resume after the call upon return
	retKey, retLock := ir.NoReg, ir.NoReg
	if in.TMeta && in.DstBase != ir.NoReg {
		retKey, retLock = in.DstKey, in.DstLock
	}
	if err := v.pushFrame(fn, nil, in.Dst, in.DstBase, in.DstBound, retKey, retLock); err != nil {
		return err
	}
	// pushFrame may have grown the stack's backing array.
	f = &v.stack[ci]
	nf := &v.stack[ci+1]
	nf.shadowBase = wbase

	// Seed fixed arguments directly into the callee's registers. The
	// argument list is truncated to OrigParams when variadic extras
	// follow, and for transformed callees also at a mismatched
	// non-variadic site, so excess values never spill into the appended
	// metadata parameter registers.
	pr := fn.ParamRegs
	fixed := nargs
	variadicExtra := fn.Variadic && nargs > fn.OrigParams
	if variadicExtra || (fn.Transformed && nargs > fn.OrigParams) {
		fixed = fn.OrigParams
	}
	for i := 0; i < fixed && i < len(pr); i++ {
		nf.regs[pr[i]] = d.args[i].get(f.regs)
	}
	v.seedShadowParams(nf, nargs)

	// Variadic extras go to the frame's vararg area (paper §5.2); their
	// metadata aliases the window slots — including extras the caller
	// filled past OrigParams — which stay live for the whole activation.
	// The value slice must outlive the call for va_arg, so this one call
	// shape still allocates, the same cost the reference engine pays.
	if variadicExtra {
		n := nargs - fn.OrigParams
		varargs := make([]uint64, n)
		for i := 0; i < n; i++ {
			varargs[i] = d.args[fn.OrigParams+i].get(f.regs)
		}
		nf.varargs = varargs
		nf.varMetas = v.shadow[wbase+1+fn.OrigParams : wbase+1+nargs]
	}
	return nil
}
